// Hybrid streaming: the paper's §4.1 motivation — a constant-rate HD stream
// cares about *variance*, not just mean throughput. Run a 25 Mb/s stream
// over WiFi alone, PLC alone, and the capacity-split hybrid, and compare
// delivered rate stability and jitter.
//
// Build & run:  ./build/examples/hybrid_streaming
#include <cstdio>
#include <memory>

#include "src/core/capacity.hpp"
#include "src/hybrid/device.hpp"
#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/testbed/experiment.hpp"

using namespace efd;

namespace {

struct StreamResult {
  double mean_mbps, std_mbps, jitter_ms;
  std::uint64_t late_or_lost;
};

StreamResult stream_over(sim::Simulator& sim, net::Interface& tx, net::Interface& rx,
                         int src, int dst, double seconds) {
  net::ThroughputMeter meter{sim::seconds(1)};
  net::JitterMeter jitter;
  net::LossMeter loss;
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    meter.on_packet(p, t);
    jitter.on_packet(p, t);
    loss.on_packet(p, t);
  });
  net::UdpSource::Config cfg;
  cfg.src = src;
  cfg.dst = dst;
  cfg.rate_bps = 25e6;  // an HD stream
  cfg.packet_bytes = 1316;
  net::UdpSource source(sim, tx, cfg);
  const sim::Time start = sim.now();
  source.run(start, start + sim::seconds(seconds));
  sim.run_until(start + sim::seconds(seconds));
  meter.finish(sim.now());
  rx.set_rx_handler([](const net::Packet&, sim::Time) {});
  sim.run_until(sim.now() + sim::milliseconds(500));
  const auto stats = meter.stats();
  return {stats.mean(), stats.stddev(), jitter.mean_jitter_ms(), loss.lost()};
}

}  // namespace

int main() {
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  // A mid-distance pair where WiFi is usable but shaky.
  int src = -1, dst = -1;
  for (const auto& [a, b] : tb.plc_links()) {
    const double plc_snr = tb.plc_channel().mean_snr_db(a, b, 0, sim.now());
    const double wifi_snr = tb.wifi().channel().mean_snr_db(a, b);
    if (plc_snr > 22.0 && wifi_snr > 14.0 && wifi_snr < 24.0) {
      src = a;
      dst = b;
      break;
    }
  }
  std::printf("Streaming 25 Mb/s for 60 s on pair %d->%d\n\n", src, dst);

  // Warm up the PLC estimator first.
  (void)testbed::measure_plc_throughput(tb, src, dst, sim::seconds(5));
  const auto plc_cap = testbed::measure_plc_throughput(tb, src, dst, sim::seconds(5));
  const auto wifi_cap = testbed::measure_wifi_throughput(tb, src, dst, sim::seconds(5));

  const auto wifi = stream_over(sim, tb.wifi_station(src), tb.wifi_station(dst),
                                src, dst, 60.0);
  const auto plc = stream_over(sim, tb.plc_station(src).mac(),
                               tb.plc_station(dst).mac(), src, dst, 60.0);

  hybrid::HybridDevice tx(sim, {&tb.plc_station(src).mac(), &tb.wifi_station(src)},
                          std::make_unique<hybrid::CapacityScheduler>(sim::Rng{3}));
  hybrid::HybridDevice rx(sim, {&tb.plc_station(dst).mac(), &tb.wifi_station(dst)},
                          std::make_unique<hybrid::RoundRobinScheduler>(2));
  StreamResult hybrid_result{};
  {
    net::ThroughputMeter meter{sim::seconds(1)};
    net::JitterMeter jitter;
    net::LossMeter loss;
    rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
      meter.on_packet(p, t);
      jitter.on_packet(p, t);
      loss.on_packet(p, t);
    });
    rx.start_receiving();
    tx.set_capacities({plc_cap.mean_mbps, wifi_cap.mean_mbps});
    // Refresh the capacity estimates every second, as the paper's §7.4
    // implementation does (1 probe/s; BLE for PLC, MCS for WiFi).
    core::BleCapacityEstimator ble_to_t;
    std::function<void()> refresh = [&] {
      const double plc_mbps =
          ble_to_t.throughput_from_ble(tb.plc_network_of(dst).mm_average_ble(src, dst));
      const double wifi_mbps = 0.75 * tb.wifi().mcs_capacity_mbps(src, dst, sim.now());
      tx.set_capacities({plc_mbps, wifi_mbps});
      sim.after(sim::seconds(1), refresh);
    };
    sim.after(sim::seconds(1), refresh);
    net::UdpSource::Config scfg;
    scfg.src = src;
    scfg.dst = dst;
    scfg.rate_bps = 25e6;
    scfg.packet_bytes = 1316;
    net::UdpSource source(sim, tx, scfg);
    const sim::Time start = sim.now();
    source.run(start, start + sim::seconds(60));
    sim.run_until(start + sim::seconds(60));
    meter.finish(sim.now());
    const auto stats = meter.stats();
    hybrid_result = {stats.mean(), stats.stddev(), jitter.mean_jitter_ms(),
                     loss.lost()};
  }

  std::printf("%-10s %12s %10s %12s %12s\n", "medium", "rate Mb/s", "std", "jitter ms",
              "lost pkts");
  const auto row = [](const char* name, const StreamResult& r) {
    std::printf("%-10s %12.1f %10.2f %12.2f %12llu\n", name, r.mean_mbps, r.std_mbps,
                r.jitter_ms, static_cast<unsigned long long>(r.late_or_lost));
  };
  row("WiFi", wifi);
  row("PLC", plc);
  row("Hybrid", hybrid_result);
  std::printf("\n(the paper's point: at short range WiFi may be faster on "
              "average, but PLC's per-carrier adaptation gives far lower "
              "variance — what a constant-rate stream actually needs; the "
              "hybrid keeps the stream whole even when one medium dips)\n");
  return 0;
}

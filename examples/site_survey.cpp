// Site survey: walk the whole floor the way the paper's §4.1/§5 measurement
// campaign does — per-link PLC and WiFi quality, connectivity map, and an
// asymmetry report. This is the workflow a hybrid-network installer would
// run before placing extenders.
//
// Build & run:  ./build/examples/site_survey
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/core/classifier.hpp"
#include "src/core/sampler.hpp"
#include "src/testbed/experiment.hpp"

using namespace efd;

int main() {
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  core::BleCapacityEstimator capacity;
  core::LinkQualityClassifier classifier;

  struct Link {
    int a, b;
    double ble, wifi_mbps, cable_m, floor_m;
  };
  std::vector<Link> links;

  std::printf("Surveying %zu PLC links (plus WiFi on each pair)...\n\n",
              tb.plc_links().size());
  for (const auto& [a, b] : tb.plc_links()) {
    Link link{a, b, 0.0, 0.0, tb.plc_channel().cable_distance(a, b),
              tb.floor_distance_m(a, b)};
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) > 3.0) {
      // Converge the estimator with a short saturated burst, then read BLE
      // via the management interface.
      auto& est = tb.plc_network_of(b).estimator(b, a);
      core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b, sim::Rng{1});
      (void)sampler.run(sim.now(), sim.now() + sim::seconds(3));
      link.ble = est.average_ble_mbps();
    }
    link.wifi_mbps = tb.wifi().mcs_capacity_mbps(a, b, sim.now());
    links.push_back(link);
  }

  // --- Connectivity / quality map ------------------------------------------
  int plc_only = 0, wifi_better = 0, counts[3] = {0, 0, 0};
  for (const auto& l : links) {
    if (l.ble > 10.0 && l.wifi_mbps < 1.0) ++plc_only;
    if (l.wifi_mbps > capacity.throughput_from_ble(l.ble)) ++wifi_better;
    if (l.ble > 1.0) {
      ++counts[static_cast<int>(classifier.classify(l.ble))];
    }
  }
  std::printf("quality classes (by BLE): bad %d, average %d, good %d\n",
              counts[0], counts[1], counts[2]);
  std::printf("links only PLC can serve: %d;  links faster on WiFi: %d\n\n",
              plc_only, wifi_better);

  // --- Recommended backbone links ------------------------------------------
  std::sort(links.begin(), links.end(),
            [](const Link& x, const Link& y) { return x.ble > y.ble; });
  std::printf("top backbone candidates (PLC):\n");
  std::printf("%-8s %10s %12s %10s %10s\n", "link", "BLE Mb/s", "pred. T", "cable",
              "floor");
  for (std::size_t i = 0; i < 8 && i < links.size(); ++i) {
    const Link& l = links[i];
    std::printf("%2d->%-5d %10.1f %12.1f %9.0fm %9.0fm\n", l.a, l.b, l.ble,
                capacity.throughput_from_ble(l.ble), l.cable_m, l.floor_m);
  }

  // --- Asymmetry report (probe both directions before trusting a link) -----
  std::printf("\nasymmetric links (estimate both directions, Table 3):\n");
  int shown = 0;
  for (const auto& l : links) {
    if (shown >= 6) break;
    const auto rev = std::find_if(links.begin(), links.end(), [&](const Link& r) {
      return r.a == l.b && r.b == l.a;
    });
    if (rev == links.end() || l.ble < 5.0 || rev->ble < 5.0) continue;
    const double ratio = l.ble / rev->ble;
    if (ratio > 1.4) {
      std::printf("  %2d->%2d: %5.1f Mb/s but %2d->%2d: %5.1f Mb/s (%.1fx)\n", l.a,
                  l.b, l.ble, l.b, l.a, rev->ble, ratio);
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (none above 1.4x right now)\n");
  return 0;
}

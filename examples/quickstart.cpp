// Quickstart: bring up the 19-station testbed, saturate one PLC link, and
// read the two IEEE 1905 link metrics the library is built around — BLE
// (capacity) and PBerr (loss) — then compare with WiFi on the same pair.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/capacity.hpp"
#include "src/testbed/experiment.hpp"

int main() {
  efd::sim::Simulator sim;
  efd::testbed::Testbed tb(sim);

  // Fast-forward to a weekday afternoon so the office appliances are on.
  sim.run_until(efd::testbed::weekday_afternoon());

  const efd::net::StationId src = 11;
  const efd::net::StationId dst = 9;

  std::printf("== Electri-Fi quickstart: link %d -> %d ==\n", src, dst);

  // 1. Saturate the PLC link for 30 s and measure UDP throughput.
  const auto plc = efd::testbed::measure_plc_throughput(tb, src, dst,
                                                        efd::sim::seconds(30));
  std::printf("PLC  throughput: %6.1f Mb/s  (std %.1f)\n", plc.mean_mbps,
              plc.std_mbps);

  // 2. Read the link metrics via management messages (int6krate/ampstat).
  auto& network = tb.plc_network_of(src);
  efd::core::MmPoller poller(network, src, dst);
  const double ble = poller.average_ble_mbps(sim.now());
  const double pberr = poller.pberr(sim.now());
  std::printf("PLC  BLE:        %6.1f Mb/s   PBerr: %.4f\n", ble, pberr);

  // 3. Predict capacity from BLE with the paper's linear fit (Fig. 15).
  efd::core::BleCapacityEstimator estimator;
  std::printf("PLC  predicted:  %6.1f Mb/s  (from BLE)\n",
              estimator.throughput_from_ble(ble));

  // 4. Same pair over WiFi.
  const auto wifi = efd::testbed::measure_wifi_throughput(tb, src, dst,
                                                          efd::sim::seconds(30));
  std::printf("WiFi throughput: %6.1f Mb/s  (std %.1f)\n", wifi.mean_mbps,
              wifi.std_mbps);

  std::printf("\nfloor distance: %.1f m, cable distance: %.1f m\n",
              tb.floor_distance_m(src, dst),
              tb.plc_channel().cable_distance(src, dst));
  return 0;
}

// Adaptive probing: operate the paper's §7.3 quality-adaptive probing
// method live on the testbed — classify every link from its BLE, assign
// per-class probe intervals (bad: 5 s, average: 40 s, good: 80 s), and
// report the overhead saved vs probing everything at the base interval
// while tracking estimation accuracy.
//
// Build & run:  ./build/examples/adaptive_probing
#include <cstdio>
#include <vector>

#include "src/core/probing.hpp"
#include "src/core/sampler.hpp"
#include "src/testbed/experiment.hpp"

using namespace efd;

int main() {
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  const core::QualityAdaptivePolicy adaptive;
  const core::FixedIntervalPolicy fixed{sim::seconds(5)};
  core::LinkQualityClassifier classifier;

  std::printf("Tracing all live links for 120 s at the 50 ms MM cadence...\n\n");
  struct LinkEval {
    int a, b;
    double ble;
    core::LinkQuality klass;
    core::ProbingEvaluation adaptive_eval, fixed_eval;
  };
  std::vector<LinkEval> evals;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 5.0) continue;
    auto& est = tb.plc_network_of(b).estimator(b, a);
    core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b, sim::Rng{4});
    const auto trace = sampler.run(sim.now(), sim.now() + sim::seconds(120));
    LinkEval e{a, b, 0.0, core::LinkQuality::kBad, {}, {}};
    e.ble = trace.back().ble_mbps;
    e.klass = classifier.classify(e.ble);
    e.adaptive_eval = core::evaluate_policy(trace, adaptive);
    e.fixed_eval = core::evaluate_policy(trace, fixed);
    evals.push_back(e);
  }

  const char* names[] = {"bad", "average", "good"};
  int class_counts[3] = {0, 0, 0};
  std::uint64_t adaptive_probes = 0, fixed_probes = 0;
  double adaptive_err = 0.0, fixed_err = 0.0;
  std::size_t n_err = 0;
  for (const auto& e : evals) {
    ++class_counts[static_cast<int>(e.klass)];
    adaptive_probes += e.adaptive_eval.probes;
    fixed_probes += e.fixed_eval.probes;
    adaptive_err += e.adaptive_eval.mean_error();
    fixed_err += e.fixed_eval.mean_error();
    ++n_err;
  }

  std::printf("link classes: bad %d (probe every 5 s), average %d (40 s), "
              "good %d (80 s)\n\n",
              class_counts[0], class_counts[1], class_counts[2]);
  std::printf("%-22s %12s %16s\n", "policy", "probes", "mean error Mb/s");
  std::printf("%-22s %12llu %16.2f\n", "fixed 5 s everywhere",
              static_cast<unsigned long long>(fixed_probes), fixed_err / n_err);
  std::printf("%-22s %12llu %16.2f\n", "quality-adaptive",
              static_cast<unsigned long long>(adaptive_probes),
              adaptive_err / n_err);
  std::printf("\noverhead reduction: %.0f%% (paper reports 32%% on its mix of "
              "link qualities)\n",
              100.0 * (1.0 - static_cast<double>(adaptive_probes) /
                                 static_cast<double>(fixed_probes)));
  std::printf("probing bandwidth at 1500 B probes: %.0f kb/s -> %.0f kb/s\n",
              fixed_probes * 1500 * 8.0 / 120.0 / 1e3,
              adaptive_probes * 1500 * 8.0 / 120.0 / 1e3);

  std::printf("\nper-class interval sanity (Table 3: adapt frequency to "
              "quality):\n");
  for (int k = 0; k < 3; ++k) {
    double ble_example = k == 0 ? 30.0 : (k == 1 ? 80.0 : 140.0);
    std::printf("  %-8s -> probe every %.0f s\n", names[k],
                adaptive.interval(ble_example).seconds());
  }
  return 0;
}

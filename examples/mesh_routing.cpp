// Mesh routing: the paper's §4.3 end-game — populate an IEEE 1905-style
// link-metric table from live estimation on both mediums, then compute
// minimum-ETT hybrid routes, including multi-hop relays around bad direct
// links and medium alternation along the path.
//
// Build & run:  ./build/examples/mesh_routing
#include <cstdio>

#include "src/core/capacity.hpp"
#include "src/core/sampler.hpp"
#include "src/hybrid/routing.hpp"
#include "src/testbed/experiment.hpp"

using namespace efd;

int main() {
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  core::BleCapacityEstimator capacity;
  hybrid::LinkMetricTable table;

  std::printf("Populating the 1905 link-metric table from live estimation...\n");
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 4.0) continue;
    auto& est = tb.plc_network_of(b).estimator(b, a);
    core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b, sim::Rng{2});
    (void)sampler.run(sim.now(), sim.now() + sim::seconds(2));
    hybrid::LinkMetric m;
    m.capacity_mbps = capacity.throughput_from_ble(est.average_ble_mbps());
    m.loss_rate = est.measured_pberr();
    m.updated = sim.now();
    table.update(a, b, hybrid::Medium::kPlc, m);
  }
  for (const auto& [a, b] : tb.all_pairs()) {
    const double mcs = tb.wifi().mcs_capacity_mbps(a, b, sim.now());
    if (mcs < 1.0) continue;
    // WiFi UDP goodput is roughly 3/4 of the MCS PHY rate.
    table.update(a, b, hybrid::Medium::kWifi,
                 {0.75 * mcs, 0.0, sim.now()});
  }
  std::printf("table entries: %zu\n\n", table.size());

  hybrid::MeshRouter router(table);
  const auto show = [&](int src, int dst) {
    const auto path = router.route(src, dst, sim.now());
    std::printf("route %2d -> %2d: ", src, dst);
    if (path.empty()) {
      std::printf("unreachable\n");
      return;
    }
    std::printf("%d", src);
    for (const auto& hop : path) {
      std::printf(" -[%s]-> %d", to_string(hop.medium).c_str(), hop.to);
    }
    std::printf("   (ETT %.2f ms over %zu hop%s)\n",
                router.path_ett_ms(path, sim.now()), path.size(),
                path.size() == 1 ? "" : "s");
  };

  std::printf("sample routes (working hours):\n");
  show(11, 9);   // short, good
  show(1, 11);   // the floor's long diagonal: direct PLC is poor
  show(1, 10);
  show(0, 8);
  show(12, 16);  // left wing
  show(15, 18);
  show(11, 15);  // cross-wing: no PLC network in common, no WiFi through
                 // the core — unreachable without an extra relay box
  std::printf("\n(multi-hop relays appear exactly where §4.1 finds residual "
              "bad pairs; cross-wing stays unreachable, which is why the "
              "paper's floor runs two separate PLC networks)\n");
  return 0;
}

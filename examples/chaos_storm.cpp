// Chaos storm: scripted fault injection against the hybrid failover stack.
// A 12 Mb/s stream runs over PLC+WiFi while a deterministic fault plan
// kills the PLC network with an appliance surge, then jams the WiFi
// channel. Health monitors trip the dead member, salvage its backlog onto
// the survivor, and close again once reprobes succeed — the per-second
// delivery trace printed below shows throughput degrading to the
// survivor's capacity instead of collapsing, and the fault/recovery event
// trace is byte-identical for a given seed (try running it twice).
//
// With --campus the storm instead hits the sharded campus (DESIGN.md §15):
// a distribution board blacks out, a WiFi bridge between buildings is
// partitioned (its traffic failing over to the powerline backbone), and a
// backbone crossing is severed outright. The run prints the fault trace,
// failover accounting, and the digest — identical for any EFD_SHARDS.
//
// Build & run:  ./build/examples/chaos_storm [--campus]
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/fault/fault.hpp"
#include "src/fault/injector.hpp"
#include "src/grid/campus.hpp"
#include "src/hybrid/device.hpp"
#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/sim/sharded.hpp"
#include "src/testbed/campus.hpp"
#include "src/testbed/experiment.hpp"

using namespace efd;

/// --campus: board blackout + bridge/backbone partitions on a 10-board
/// campus, end to end through the sharded engine and gateway failover.
static int run_campus_storm() {
  testbed::CampusRunConfig cfg;
  cfg.campus.n_outlets = 200;
  cfg.campus.outlets_per_board = 20;  // 10 boards
  cfg.campus.stations_per_board = 4;
  cfg.campus.boards_per_building = 4;
  cfg.campus.seed = 7;
  cfg.n_shards = sim::ShardedSimulator::env_shards(4);
  cfg.duration = sim::milliseconds(200);
  cfg.p_remote = 0.4;

  // Pick one crossing of each kind so the partition demo shows both a
  // failover (bridge -> backbone) and a deterministic drop (backbone cut).
  const grid::CampusTopology topo = grid::CampusTopology::generate(cfg.campus);
  int bridge = -1, backbone = -1;
  for (std::size_t i = 0; i < topo.links().size(); ++i) {
    if (topo.links()[i].kind == grid::BoundaryKind::kWifiBridge && bridge < 0)
      bridge = static_cast<int>(i);
    if (topo.links()[i].kind == grid::BoundaryKind::kPlcBackbone && backbone < 0)
      backbone = static_cast<int>(i);
  }

  cfg.faults.board_blackout(sim::milliseconds(40), sim::milliseconds(60), 2)
      .board_brownout(sim::milliseconds(60), sim::milliseconds(80), 7, 0.6);
  if (bridge >= 0)
    cfg.faults.link_partition(sim::milliseconds(50), sim::milliseconds(80), bridge);
  if (backbone >= 0)
    cfg.faults.link_partition(sim::milliseconds(80), sim::milliseconds(60), backbone);

  std::printf("Campus chaos storm: %d boards, %d crossings, %d shard(s)\n",
              topo.n_boards(), static_cast<int>(topo.links().size()),
              cfg.n_shards);
  std::printf("  blackout board 2 @40-100ms, brownout board 7 @60-140ms\n");
  if (bridge >= 0)
    std::printf("  partition bridge link %d @50-130ms (fails over to backbone)\n",
                bridge);
  if (backbone >= 0)
    std::printf("  partition backbone link %d @80-140ms (drops deterministically)\n",
                backbone);

  const testbed::CampusResult r = testbed::run_campus(cfg);

  std::printf("\nFault/recovery trace (byte-identical for any EFD_SHARDS):\n%s",
              r.fault_trace.c_str());
  std::printf("\nevents=%llu delivered=%llu boundary=%llu/%llu\n",
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.boundary_delivered),
              static_cast<unsigned long long>(r.boundary_posted));
  std::printf("fault_events=%llu dead_drops=%llu partition_drops=%llu\n",
              static_cast<unsigned long long>(r.fault_events),
              static_cast<unsigned long long>(r.dead_drops),
              static_cast<unsigned long long>(r.partition_drops));
  std::printf("failovers=%llu failbacks=%llu mailbox_peak=%llu\n",
              static_cast<unsigned long long>(r.failovers),
              static_cast<unsigned long long>(r.failbacks),
              static_cast<unsigned long long>(r.mailbox_peak));
  std::printf("digest=%016llx\n", static_cast<unsigned long long>(r.digest));
  return 0;
}

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--campus") == 0) {
    return run_campus_storm();
  }
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  // A pair where both mediums hold a usable link, so failover always has a
  // live survivor.
  int src = 0, dst = 1;
  for (const auto& [a, b] : tb.plc_links()) {
    const double plc_snr = tb.plc_channel().mean_snr_db(a, b, 0, sim.now());
    const double wifi_snr = tb.wifi().channel().mean_snr_db(a, b);
    if (plc_snr > 22.0 && wifi_snr > 16.0) {
      src = a;
      dst = b;
      break;
    }
  }

  (void)testbed::measure_plc_throughput(tb, src, dst, sim::seconds(3));
  const auto plc_cap = testbed::measure_plc_throughput(tb, src, dst, sim::seconds(2));
  const auto wifi_cap = testbed::measure_wifi_throughput(tb, src, dst, sim::seconds(2));
  std::printf("Pair %d->%d: PLC %.1f Mb/s, WiFi %.1f Mb/s\n\n", src, dst,
              plc_cap.mean_mbps, wifi_cap.mean_mbps);

  const sim::Time t0 = sim.now();
  hybrid::HybridDevice tx(sim, {&tb.plc_station(src).mac(), &tb.wifi_station(src)},
                          std::make_unique<hybrid::CapacityScheduler>(sim::Rng{3}));
  hybrid::HybridDevice rx(sim, {&tb.plc_station(dst).mac(), &tb.wifi_station(dst)},
                          std::make_unique<hybrid::RoundRobinScheduler>(2));

  net::ThroughputMeter meter{sim::seconds(1)};
  net::OrderMeter order;
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    meter.on_packet(p, t);
    order.on_packet(p, t);
  });
  rx.start_receiving();
  tx.set_capacities({plc_cap.mean_mbps, wifi_cap.mean_mbps});

  // Fault plan: a 4 s PLC blackout, then a 3 s WiFi jam after PLC has
  // recovered. Each medium dies while the other is the survivor.
  fault::FaultInjector inj(sim);
  plc::PlcMedium& plc_medium = tb.plc_network_of(src).medium();
  inj.set_hooks(fault::FaultKind::kPlcBlackout,
                {[&](const fault::FaultSpec& s, sim::Time t) {
                   plc_medium.set_fault_pb_error(s.severity);
                   tb.plc_network_of(src).estimator(dst, src).invalidate_tone_maps(t);
                 },
                 [&](const fault::FaultSpec&, sim::Time) {
                   plc_medium.set_fault_pb_error(0.0);
                 }});
  inj.set_hooks(fault::FaultKind::kWifiJam,
                {[&](const fault::FaultSpec& s, sim::Time) {
                   tb.wifi().medium().set_jamming_db(s.severity);
                 },
                 [&](const fault::FaultSpec&, sim::Time) {
                   tb.wifi().medium().set_jamming_db(0.0);
                 }});

  hybrid::HybridDevice::FailoverConfig fc;
  fc.self = src;
  fc.peer = dst;
  fc.health.probe_interval = sim::milliseconds(100);
  fc.health.probe_timeout = sim::milliseconds(60);
  fc.health.trip_threshold = 3;
  fc.health.backoff_initial = sim::milliseconds(200);
  fc.health.backoff_max = sim::seconds(1);
  fc.health.recovery_successes = 2;
  fc.on_transition = [&](int m, fault::HealthMonitor::State s, sim::Time) {
    using State = fault::HealthMonitor::State;
    const auto kind =
        m == 0 ? fault::FaultKind::kPlcBlackout : fault::FaultKind::kWifiJam;
    if (s == State::kOpen) inj.record(fault::FaultPhase::kTrip, kind, m);
    if (s == State::kHalfOpen) inj.record(fault::FaultPhase::kHalfOpen, kind, m);
    if (s == State::kClosed) inj.record(fault::FaultPhase::kRecover, kind, m);
  };
  tx.enable_failover(fc);

  fault::FaultPlan plan;
  plan.blackout(t0 + sim::seconds(4), sim::seconds(4));
  plan.wifi_jam(t0 + sim::seconds(12), sim::seconds(3), /*target=*/1,
                /*severity_db=*/40.0);
  inj.install(plan);

  net::UdpSource::Config scfg;
  scfg.src = src;
  scfg.dst = dst;
  scfg.rate_bps = 12e6;
  scfg.packet_bytes = 1316;
  net::UdpSource source(sim, tx, scfg);
  source.run(t0, t0 + sim::seconds(20));
  sim.run_until(t0 + sim::seconds(21));
  meter.finish(sim.now());

  std::printf("Per-second delivered rate (blackout at 4-8 s, jam at 12-15 s):\n");
  int second = 0;
  for (const double mbps : meter.samples_mbps()) {
    std::printf("  %2d s  %6.1f Mb/s  %s\n", second, mbps,
                mbps < 1.0 ? "(!)" : "");
    ++second;
  }

  std::printf("\nFault/recovery event trace (deterministic for this seed):\n%s",
              inj.trace_lines().c_str());
  std::printf("\nsalvaged=%llu salvage_drops=%llu out_of_order=%llu\n",
              static_cast<unsigned long long>(tx.salvaged_packets()),
              static_cast<unsigned long long>(tx.salvage_drops()),
              static_cast<unsigned long long>(order.out_of_order()));
  std::printf("PLC live=%d  WiFi live=%d\n", tx.member_live(0) ? 1 : 0,
              tx.member_live(1) ? 1 : 0);
  return 0;
}

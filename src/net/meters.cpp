#include "src/net/meters.hpp"

#include <cmath>

namespace efd::net {

void ThroughputMeter::roll_to(sim::Time now) {
  while (now >= window_start_ + window_) {
    samples_.push_back(static_cast<double>(window_bytes_) * 8.0 /
                       window_.seconds() / 1e6);
    window_bytes_ = 0;
    window_start_ += window_;
  }
}

void ThroughputMeter::on_packet(const Packet& p, sim::Time now) {
  if (!started_) {
    started_ = true;
    window_start_ = sim::Time{(now.ns() / window_.ns()) * window_.ns()};
  }
  roll_to(now);
  window_bytes_ += p.size_bytes;
  total_bytes_ += p.size_bytes;
  ++total_packets_;
}

void ThroughputMeter::finish(sim::Time now) {
  if (!started_) return;
  roll_to(now);
}

sim::RunningStats ThroughputMeter::stats() const {
  sim::RunningStats s;
  for (double v : samples_) s.add(v);
  return s;
}

double ThroughputMeter::average_mbps(sim::Time duration) const {
  if (duration.ns() <= 0) return 0.0;
  return static_cast<double>(total_bytes_) * 8.0 / duration.seconds() / 1e6;
}

void JitterMeter::on_packet(const Packet& p, sim::Time now) {
  const double transit_ms = (now - p.created).ms();
  if (has_prev_) {
    const double d = std::abs(transit_ms - prev_transit_ms_);
    jitter_ms_ += (d - jitter_ms_) / 16.0;  // RFC 3550 smoothing
    history_.add(jitter_ms_);
  }
  prev_transit_ms_ = transit_ms;
  has_prev_ = true;
}

void LossMeter::on_packet(const Packet& p, sim::Time) {
  ++received_;
  if (!any_ || p.seq > max_seq_) max_seq_ = p.seq;
  any_ = true;
}

std::uint64_t LossMeter::lost() const {
  if (!any_) return 0;
  const std::uint64_t expected = static_cast<std::uint64_t>(max_seq_) + 1;
  return expected > received_ ? expected - received_ : 0;
}

double LossMeter::loss_rate() const {
  if (!any_) return 0.0;
  const double expected = static_cast<double>(max_seq_) + 1.0;
  return static_cast<double>(lost()) / expected;
}

void OrderMeter::on_packet(const Packet& p, sim::Time) {
  ++received_;
  if (any_ && p.seq < last_seq_) ++out_of_order_;
  if (!any_ || p.seq > last_seq_) last_seq_ = p.seq;
  any_ = true;
}

}  // namespace efd::net

#pragma once

#include <functional>
#include <vector>

#include "src/net/packet.hpp"

namespace efd::net {

/// The service boundary between the IP layer and a technology MAC (PLC or
/// WiFi). Mirrors how the paper's boards expose each medium as an Ethernet
/// interface. Queues are non-blocking, as on real PLC adapters (§7.4
/// footnote): `enqueue` returns false and drops when the MAC queue is full.
class Interface {
 public:
  using RxHandler = std::function<void(const Packet&, sim::Time)>;

  virtual ~Interface() = default;

  /// Hand a packet to the MAC. Returns false if the queue is full (packet
  /// dropped), true otherwise.
  virtual bool enqueue(const Packet& p) = 0;

  [[nodiscard]] virtual std::size_t queue_length() const = 0;

  /// Register the upper-layer receive callback at the *destination* side.
  virtual void set_rx_handler(RxHandler handler) = 0;

  /// Drop everything still queued (an adapter reset / interface flush).
  /// Back-to-back experiments use this so one run's retransmission backlog
  /// cannot contend with the next run's traffic.
  virtual void clear_queue() {}

  /// Remove and return the queued packets, in queue order (each packet
  /// once, even if the MAC had segmented it). Failover uses this to salvage
  /// a dead interface's backlog onto a surviving medium; the default (a
  /// queue that cannot be drained externally) returns nothing.
  virtual std::vector<Packet> take_queue() { return {}; }
};

}  // namespace efd::net

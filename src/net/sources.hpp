#pragma once

#include <cstdint>

#include "src/net/interface.hpp"
#include "src/sim/simulator.hpp"

namespace efd::net {

/// iperf-style UDP constant-bit-rate source. Saturation (the paper's default
/// workload, §3.2) is a CBR source whose rate exceeds link capacity: the MAC
/// queue stays full and excess packets are dropped, exactly like iperf UDP
/// against a non-blocking PLC adapter.
class UdpSource {
 public:
  struct Config {
    double rate_bps = 300e6;        ///< offered load; >capacity => saturation
    std::size_t packet_bytes = 1470;
    StationId src = 0;
    StationId dst = 0;
    int flow_id = 0;
    int priority = 1;               ///< channel-access class (CA0..CA3)
  };

  UdpSource(sim::Simulator& simulator, Interface& interface, Config config);
  UdpSource(const UdpSource&) = delete;
  UdpSource& operator=(const UdpSource&) = delete;
  /// Cancels the pending emission event (its callback captures `this`).
  ~UdpSource() { pending_.cancel(); }

  /// Start emitting packets at `at` and stop at `until`.
  void run(sim::Time at, sim::Time until);

  /// Stop emitting (idempotent; also stops a scheduled run).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t offered_packets() const { return offered_; }
  [[nodiscard]] std::uint64_t dropped_packets() const { return dropped_; }

 private:
  void emit();

  sim::Simulator& sim_;
  Interface& interface_;
  Config config_;
  sim::Time until_;
  sim::EventHandle pending_;
  bool stopped_ = false;
  std::uint32_t seq_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Probe-packet source for link-metric estimation (paper §7-§8): `count`
/// packets per burst, bursts every `interval`. A single-packet burst at a
/// 1 s interval is the paper's "1 packet per second" probe; 20-packet bursts
/// reproduce §8.2's aggregation-friendly probing.
class ProbeSource {
 public:
  struct Config {
    sim::Time interval = sim::seconds(1);
    int burst_count = 1;
    std::size_t packet_bytes = 1300;
    StationId src = 0;
    StationId dst = 0;  ///< kBroadcast for broadcast probing
    int flow_id = 0;
    int priority = 1;   ///< channel-access class (CA0..CA3)
  };

  ProbeSource(sim::Simulator& simulator, Interface& interface, Config config);
  ProbeSource(const ProbeSource&) = delete;
  ProbeSource& operator=(const ProbeSource&) = delete;
  /// Cancels the pending emission event (its callback captures `this`).
  ~ProbeSource() { pending_.cancel(); }

  void run(sim::Time at, sim::Time until);
  void stop() { stopped_ = true; }
  /// Re-arm after a stop (paper Fig. 17 pause/resume experiment).
  void resume(sim::Time at, sim::Time until);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint32_t last_seq() const { return seq_; }

 private:
  void emit();

  sim::Simulator& sim_;
  Interface& interface_;
  Config config_;
  sim::Time until_;
  sim::EventHandle pending_;
  bool stopped_ = false;
  std::uint32_t seq_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace efd::net

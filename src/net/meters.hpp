#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/time.hpp"

namespace efd::net {

/// Receiver-side throughput instrumentation, equivalent to the paper's
/// iperf/ifstat readings (§3.2): bytes are binned into fixed windows
/// (100 ms in the paper's Fig. 3 experiment) and reported in Mb/s.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(sim::Time window = sim::milliseconds(100))
      : window_(window) {}

  /// Record a delivered packet (call from the interface rx handler).
  void on_packet(const Packet& p, sim::Time now);

  /// Close the current window; call once at the end of the experiment.
  void finish(sim::Time now);

  /// Mb/s samples per completed window.
  [[nodiscard]] const std::vector<double>& samples_mbps() const { return samples_; }

  /// Mean and stddev over windows that overlap [from, to) of the experiment.
  [[nodiscard]] sim::RunningStats stats() const;

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }

  /// Average goodput in Mb/s between the first and last delivery.
  [[nodiscard]] double average_mbps(sim::Time duration) const;

 private:
  void roll_to(sim::Time now);

  sim::Time window_;
  sim::Time window_start_{};
  bool started_ = false;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::vector<double> samples_;
};

/// Inter-arrival jitter per RFC 3550: a smoothed estimate of the variation
/// in (arrival - send) transit times. The paper's hybrid experiment (§7.4)
/// checks that load balancing does not worsen jitter.
class JitterMeter {
 public:
  void on_packet(const Packet& p, sim::Time now);

  /// Current RFC 3550 jitter estimate in milliseconds.
  [[nodiscard]] double jitter_ms() const { return jitter_ms_; }

  /// Mean of the jitter estimate over all updates.
  [[nodiscard]] double mean_jitter_ms() const { return history_.mean(); }

 private:
  bool has_prev_ = false;
  double prev_transit_ms_ = 0.0;
  double jitter_ms_ = 0.0;
  sim::RunningStats history_;
};

/// Counts sequence gaps in a probe flow; the paper's broadcast-ETX
/// experiment (§8.1) counts missed broadcast probes by sequence number.
class LossMeter {
 public:
  void on_packet(const Packet& p, sim::Time now);

  [[nodiscard]] std::uint64_t received() const { return received_; }
  /// Packets missing, inferred from the highest sequence seen.
  [[nodiscard]] std::uint64_t lost() const;
  [[nodiscard]] double loss_rate() const;

 private:
  std::uint64_t received_ = 0;
  bool any_ = false;
  std::uint32_t max_seq_ = 0;
};

/// Tracks in-order delivery of a re-ordered flow and reports out-of-order
/// arrivals; used to validate the hybrid reorder buffer.
class OrderMeter {
 public:
  void on_packet(const Packet& p, sim::Time now);

  [[nodiscard]] std::uint64_t out_of_order() const { return out_of_order_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  bool any_ = false;
  std::uint32_t last_seq_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t out_of_order_ = 0;
};

}  // namespace efd::net

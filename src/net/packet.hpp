#pragma once

#include <cstddef>
#include <cstdint>

#include "src/sim/time.hpp"

namespace efd::net {

/// Station identifier within a network technology (PLC or WiFi).
using StationId = int;

constexpr StationId kBroadcast = -1;

/// An Ethernet-layer packet handed to a MAC. The simulation carries
/// metadata, not payload bytes; `size_bytes` is the wire size used for
/// segmentation and airtime computations.
struct Packet {
  std::uint64_t id = 0;        ///< globally unique (for tracing)
  int flow_id = 0;             ///< traffic-source identifier
  std::uint32_t seq = 0;       ///< sequence number within the flow
  std::size_t size_bytes = 1500;
  StationId src = 0;
  StationId dst = 0;           ///< kBroadcast for broadcast frames
  sim::Time created;           ///< enqueue time at the source
  /// Channel-access priority (IEEE 1901 CA0..CA3, mapped from VLAN tags on
  /// real adapters). Higher wins the priority-resolution slots.
  int priority = 1;
};

}  // namespace efd::net

#include "src/net/sources.hpp"

#include <cassert>

namespace efd::net {

namespace {
std::uint64_t next_packet_id() {
  static std::uint64_t counter = 0;
  return ++counter;
}
}  // namespace

UdpSource::UdpSource(sim::Simulator& simulator, Interface& interface, Config config)
    : sim_(simulator), interface_(interface), config_(config) {
  assert(config_.rate_bps > 0.0);
  assert(config_.packet_bytes > 0);
}

void UdpSource::run(sim::Time at, sim::Time until) {
  until_ = until;
  stopped_ = false;
  pending_ = sim_.at_inline(at, [this] { emit(); });
}

void UdpSource::emit() {
  if (stopped_ || sim_.now() >= until_) return;
  Packet p;
  p.id = next_packet_id();
  p.flow_id = config_.flow_id;
  p.seq = seq_++;
  p.size_bytes = config_.packet_bytes;
  p.src = config_.src;
  p.dst = config_.dst;
  p.created = sim_.now();
  p.priority = config_.priority;
  ++offered_;
  if (!interface_.enqueue(p)) ++dropped_;
  const double pkt_seconds =
      static_cast<double>(config_.packet_bytes) * 8.0 / config_.rate_bps;
  pending_ = sim_.after_inline(sim::seconds(pkt_seconds), [this] { emit(); });
}

ProbeSource::ProbeSource(sim::Simulator& simulator, Interface& interface, Config config)
    : sim_(simulator), interface_(interface), config_(config) {
  assert(config_.burst_count >= 1);
  assert(config_.interval.ns() > 0);
}

void ProbeSource::run(sim::Time at, sim::Time until) {
  until_ = until;
  stopped_ = false;
  pending_ = sim_.at_inline(at, [this] { emit(); });
}

void ProbeSource::resume(sim::Time at, sim::Time until) { run(at, until); }

void ProbeSource::emit() {
  if (stopped_ || sim_.now() >= until_) return;
  for (int i = 0; i < config_.burst_count; ++i) {
    Packet p;
    p.id = next_packet_id();
    p.flow_id = config_.flow_id;
    p.seq = seq_++;
    p.size_bytes = config_.packet_bytes;
    p.src = config_.src;
    p.dst = config_.dst;
    p.created = sim_.now();
    p.priority = config_.priority;
    if (interface_.enqueue(p)) ++sent_;
  }
  pending_ = sim_.after_inline(config_.interval, [this] { emit(); });
}

}  // namespace efd::net

#include "src/testbed/nan.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <utility>

#include "src/core/etx.hpp"
#include "src/fault/injector.hpp"
#include "src/hybrid/gateway.hpp"
#include "src/hybrid/reorder.hpp"
#include "src/hybrid/scheduler.hpp"
#include "src/obs/obs.hpp"
#include "src/plc/channel.hpp"
#include "src/plc/network.hpp"
#include "src/sim/rng.hpp"
#include "src/wifi/network.hpp"

namespace efd::testbed {

namespace {

/// Station-id space: transformer t owns ids [t*64, t*64+64). PLC stations
/// sit at +0..+stations-1 (the concentrator at +0); each station's WiFi
/// radio mirrors it at +32..+32+stations-1 (the concentrator's at +32).
constexpr int kIdStride = 64;
constexpr int kWifiOff = 32;

/// Flows at or above this carry cross-transformer reports. The flow id
/// packs BOTH endpoints — kRemoteFlowBase + dst_station_id*64 + origin_k —
/// because the origin meter keys the dedup buffer at the local concentrator
/// while the destination station survives the boundary crossing.
constexpr int kRemoteFlowBase = 1 << 24;

constexpr std::uint32_t kKindBackbone = 0;
constexpr std::uint32_t kKindBridge = 1;

[[nodiscard]] int origin_of(int flow_id) {
  return flow_id >= kRemoteFlowBase
             ? (flow_id - kRemoteFlowBase) % kIdStride
             : (flow_id / kIdStride) % kIdStride;
}

[[nodiscard]] int remote_dst_id(int flow_id) {
  return (flow_id - kRemoteFlowBase) / kIdStride;
}

/// Planning-time PB error estimate from the channel's own SNR physics:
/// deterministic at build (no estimator warm-up), monotone in attenuation.
/// Links above ~16 dB mean SNR decode cleanly; the long daisy-chained LV
/// drops push far meters well below that.
[[nodiscard]] double planning_pberr(double mean_snr_db) {
  return std::clamp((16.0 - mean_snr_db) / 22.0, 0.0, 0.98);
}

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
};

}  // namespace

const char* to_string(DiversityMode mode) {
  switch (mode) {
    case DiversityMode::kPlcOnly: return "plc_only";
    case DiversityMode::kWifiOnly: return "wifi_only";
    case DiversityMode::kLoadBalance: return "load_balance";
    case DiversityMode::kDiversity: return "diversity";
  }
  return "?";
}

/// Everything one transformer cell owns. After build() only the shard
/// thread executing the cell touches any of it.
struct NanWorld::TransformerWorld {
  int t = 0;
  int n_stations = 0;
  grid::PowerGrid grid;
  std::unique_ptr<plc::PlcChannel> channel;
  std::unique_ptr<plc::PlcNetwork> plc;
  std::unique_ptr<wifi::WifiNetwork> wifi;
  sim::Rng rng{0};

  /// Load-balance mode only: the §7.4 capacity-proportional splitter.
  std::unique_ptr<hybrid::CapacityScheduler> scheduler;

  /// Per-meter first-wins dedup / resequencing at the concentrator,
  /// indexed by station k (slot 0, the concentrator itself, stays null).
  std::vector<std::unique_ptr<hybrid::ReorderBuffer>> dedup;
  std::vector<std::uint32_t> meter_seq;

  /// Relay forwarding table: (origin station k, current station id) ->
  /// next station id on the planned path to the concentrator.
  std::map<std::pair<int, int>, int> next_hop;
  int relay_meters = 0;
  int relay_hops_max = 0;

  struct Crossing {
    int neighbor = 0;
    grid::BoundaryKind kind = grid::BoundaryKind::kPlcBackbone;
    std::int64_t lookahead_ns = 0;
    int link = -1;  ///< index into topo_.links(); kLinkPartition targets it
  };
  std::vector<Crossing> crossings;

  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<hybrid::GatewayFailover> failover;
  bool dead = false;
  std::uint64_t dead_drops = 0;

  /// Order-exact stream fold: deliveries, egress posts and boundary
  /// arrivals, mixed the instant they happen.
  Fnv1a digest;
  std::uint64_t offered = 0;
  std::uint64_t offered_remote = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_remote = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t relay_forwards = 0;
  std::uint64_t dup_copies = 0;
  std::uint64_t dup_bytes = 0;
  std::uint64_t wins_plc = 0;
  std::uint64_t wins_wifi = 0;

  [[nodiscard]] int conc_id() const { return t * kIdStride; }
  [[nodiscard]] int wifi_id(int k) const { return t * kIdStride + kWifiOff + k; }
};

NanWorld::NanWorld(const NanRunConfig& cfg)
    : cfg_(cfg), topo_(grid::NanTopology::generate(cfg.nan)) {
  sim::ShardedSimulator::Config ec;
  ec.n_cells = topo_.n_transformers();
  ec.n_shards = cfg_.n_shards;
  for (const grid::BoundaryLink& l : topo_.links()) {
    ec.links.push_back({l.board_a, l.board_b, l.lookahead});
    ec.links.push_back({l.board_b, l.board_a, l.lookahead});
  }
  ec.mailbox_capacity = cfg_.mailbox_capacity;
  ec.watchdog.budget_ns = cfg_.watchdog_budget_ns;
  engine_ = std::make_unique<sim::ShardedSimulator>(std::move(ec));
  build();
}

NanWorld::~NanWorld() = default;

void NanWorld::build() {
  EFD_PROF_SCOPE("nan.build");
  cells_.clear();
  cells_.reserve(static_cast<std::size_t>(topo_.n_transformers()));

  for (int t = 0; t < topo_.n_transformers(); ++t) {
    auto tw = std::make_unique<TransformerWorld>();
    tw->t = t;
    tw->n_stations = topo_.stations_on_transformer(t);
    tw->rng = sim::Rng{cfg_.nan.seed}.fork(
        0x5AFE7000 + static_cast<std::uint64_t>(t));
    topo_.build_transformer_grid(t, tw->grid);

    for (std::size_t li = 0; li < topo_.links().size(); ++li) {
      const grid::BoundaryLink& l = topo_.links()[li];
      if (l.board_a == t) {
        tw->crossings.push_back(
            {l.board_b, l.kind, l.lookahead.ns(), static_cast<int>(li)});
      } else if (l.board_b == t) {
        tw->crossings.push_back(
            {l.board_a, l.kind, l.lookahead.ns(), static_cast<int>(li)});
      }
    }

    sim::Simulator& sim = engine_->cell_sim(t);
    tw->channel =
        std::make_unique<plc::PlcChannel>(tw->grid, plc::PhyParams::hpav());
    tw->plc = std::make_unique<plc::PlcNetwork>(
        sim, *tw->channel,
        sim::Rng{cfg_.nan.seed}.fork(0xA17E00 + static_cast<std::uint64_t>(t)));
    tw->wifi = std::make_unique<wifi::WifiNetwork>(
        sim, sim::Rng{cfg_.nan.seed}.fork(
                 0x31F1000 + static_cast<std::uint64_t>(t)));

    TransformerWorld* w = tw.get();

    // Per-meter dedup buffers at the concentrator. The deliver callback is
    // the app layer: a local report counts here; a remote-bound report
    // leaves for the crossing only AFTER dedup, so the boundary stream
    // carries exactly one copy per sequence no matter how many media (or
    // relay hops) raced to the concentrator.
    tw->meter_seq.assign(static_cast<std::size_t>(tw->n_stations), 0);
    tw->dedup.resize(static_cast<std::size_t>(tw->n_stations));
    for (int k = 1; k < tw->n_stations; ++k) {
      hybrid::ReorderBuffer::Config rc;
      rc.hold_timeout = cfg_.gap_timeout;
      auto rb = std::make_unique<hybrid::ReorderBuffer>(
          sim,
          [this, w](const net::Packet& p, sim::Time when) {
            if (p.flow_id >= kRemoteFlowBase) {
              egress(*w, p);
              return;
            }
            ++w->delivered;
            w->digest.mix(w->conc_id());
            w->digest.mix(p.flow_id);
            w->digest.mix(static_cast<std::uint64_t>(p.seq));
            w->digest.mix(when.ns());
          },
          rc);
      rb->set_win_listener([w](const net::Packet&, int tag) {
        if (tag == 0) {
          ++w->wins_plc;
        } else if (tag == 1) {
          ++w->wins_wifi;
          EFD_COUNTER_INC("nan.diversity.wifi_wins");
        }
      });
      tw->dedup[static_cast<std::size_t>(k)] = std::move(rb);
    }

    for (int k = 0; k < tw->n_stations; ++k) {
      const int id = t * kIdStride + k;
      const int outlet = topo_.station_outlet(t, k);
      tw->channel->attach_station(id, outlet);
      tw->plc->add_station(id, outlet);
      if (k == 0) {
        // Concentrator: every PLC frame it receives is a report from one
        // of its own meters (direct or relayed) — feed the origin meter's
        // dedup buffer tagged "PLC copy".
        tw->plc->station(id).mac().set_rx_handler(
            [w](const net::Packet& p, sim::Time when) {
              const int k_origin = origin_of(p.flow_id);
              if (k_origin >= 1 && k_origin < w->n_stations) {
                w->dedup[static_cast<std::size_t>(k_origin)]->on_packet(
                    p, when, 0);
              }
            });
      } else {
        // Meter: either the final destination of a cross-transformer
        // report, or an intermediate relay hop on another meter's path to
        // the concentrator.
        tw->plc->station(id).mac().set_rx_handler(
            [w, id](const net::Packet& p, sim::Time when) {
              if (p.flow_id >= kRemoteFlowBase &&
                  remote_dst_id(p.flow_id) == id) {
                ++w->delivered_remote;
                w->digest.mix(id);
                w->digest.mix(p.flow_id);
                w->digest.mix(static_cast<std::uint64_t>(p.seq));
                w->digest.mix(when.ns());
                return;
              }
              const auto it =
                  w->next_hop.find({origin_of(p.flow_id), id});
              if (it == w->next_hop.end()) return;  // misdirected; drop
              net::Packet q = p;
              q.src = id;
              q.dst = it->second;
              ++w->relay_forwards;
              EFD_COUNTER_INC("nan.relay.forwards");
              if (!w->plc->station(id).mac().enqueue(q)) ++w->queue_drops;
            });
      }

      // The WiFi mirror: meters uplink straight to the concentrator's
      // radio (no relaying — the diversity partner is single-hop).
      const double x = static_cast<double>(outlet) * 6.0;
      tw->wifi->add_station(tw->wifi_id(k), x, 0.0);
      if (k == 0) {
        tw->wifi->station(tw->wifi_id(0))
            .set_rx_handler([w](const net::Packet& p, sim::Time when) {
              const int k_origin = origin_of(p.flow_id);
              if (k_origin >= 1 && k_origin < w->n_stations) {
                w->dedup[static_cast<std::size_t>(k_origin)]->on_packet(
                    p, when, 1);
              }
            });
      }
    }
    tw->plc->set_cco(tw->conc_id());
    tw->plc->set_boundary_gateway(tw->conc_id());

    if (cfg_.mode == DiversityMode::kLoadBalance) {
      tw->scheduler = std::make_unique<hybrid::CapacityScheduler>(
          sim::Rng{cfg_.nan.seed}.fork(
              0x5CED00 + static_cast<std::uint64_t>(t)));
      // Build-time capacity estimates from the same deterministic physics
      // the relay planner uses: mean PLC SNR as a rate proxy, and the
      // radio's MCS pick at t=0.
      double plc_cap = 0.0;
      double wifi_cap = 0.0;
      for (int k = 1; k < tw->n_stations; ++k) {
        plc_cap += std::clamp(
            tw->channel->mean_snr_db(t * kIdStride + k, tw->conc_id(), 0,
                                     sim::Time{}),
            0.0, 40.0);
        wifi_cap += tw->wifi->mcs_capacity_mbps(tw->wifi_id(k),
                                                tw->wifi_id(0), sim::Time{});
      }
      tw->scheduler->set_capacities({plc_cap, wifi_cap});
    }

    if (cfg_.relay_enabled && tw->n_stations >= 3) plan_relays(*tw);

    engine_->set_cell_handler(t, [this, w](const sim::BoundaryEvent& e,
                                           sim::Simulator&) {
      // Fold the arrival stream before acting on it: (t, src, payload) in
      // delivery order is exactly what conservative sync must make
      // grouping-invariant.
      w->digest.mix(e.t_ns);
      w->digest.mix(e.src_cell);
      w->digest.mix(static_cast<std::uint64_t>(e.kind));
      w->digest.mix(e.a);
      w->digest.mix(e.b);
      w->digest.mix(e.c);
      if (w->dead) {
        ++w->dead_drops;
        return;
      }
      net::Packet p;
      p.flow_id = static_cast<int>(e.b >> 32);
      p.seq = static_cast<std::uint32_t>(e.b & 0xffffffffu);
      p.size_bytes = e.bytes;
      p.created = sim::Time{static_cast<std::int64_t>(e.c)};
      p.priority = 1;
      // Whatever medium carried the crossing, the concentrator re-frames
      // the report onto its own LV side for the final hop.
      p.src = w->conc_id();
      p.dst = remote_dst_id(p.flow_id);
      if (!w->plc->inject_boundary(p)) ++w->queue_drops;
    });

    if (!cfg_.faults.empty()) wire_faults(*tw);
    schedule_tick(*tw);
    cells_.push_back(std::move(tw));
  }
}

void NanWorld::plan_relays(TransformerWorld& tw) {
  // ETX costs from the channel's deterministic SNR physics (ABB-style NAN
  // relaying): the planner itself is a pure graph layer, so the world is
  // where PHY estimates become link costs.
  hybrid::RelayPlanner planner(cfg_.relay);
  for (int a = 0; a < tw.n_stations; ++a) {
    for (int b = 0; b < tw.n_stations; ++b) {
      if (a == b) continue;
      const int ida = tw.t * kIdStride + a;
      const int idb = tw.t * kIdStride + b;
      const double snr =
          tw.channel->mean_snr_db(ida, idb, 0, sim::Time{});
      planner.set_link(ida, idb,
                       core::predicted_u_etx(planning_pberr(snr), 3));
    }
  }
  for (int k = 1; k < tw.n_stations; ++k) {
    const int meter = tw.t * kIdStride + k;
    if (!planner.needs_relay(meter, tw.conc_id())) continue;
    const std::vector<net::StationId> path =
        planner.plan(meter, tw.conc_id());
    if (path.size() <= 2) continue;  // unreachable, or direct is cheapest
    ++tw.relay_meters;
    tw.relay_hops_max = std::max(tw.relay_hops_max,
                                 static_cast<int>(path.size()) - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      tw.next_hop[{k, path[i]}] = path[i + 1];
    }
  }
}

void NanWorld::wire_faults(TransformerWorld& tw) {
  // Slice the NAN-wide plan into this transformer's specs: transformer-
  // targeted kinds stay on their cell; a link partition lands on BOTH
  // endpoint cells (each schedules the same apply/clear instants on its
  // own cell clock, so both sides observe the cut simultaneously).
  fault::FaultPlan local;
  for (const fault::FaultSpec& s : cfg_.faults.specs()) {
    if (s.kind == fault::FaultKind::kLinkPartition) {
      if (s.target < 0 ||
          s.target >= static_cast<int>(topo_.links().size())) {
        continue;
      }
      const grid::BoundaryLink& l =
          topo_.links()[static_cast<std::size_t>(s.target)];
      if (l.board_a == tw.t || l.board_b == tw.t) local.add(s);
    } else if (s.target == tw.t) {
      local.add(s);
    }
  }

  // NAN crossings have no parallel second medium (the feeder run IS the
  // path between its transformers): a partition always drops.
  tw.failover = std::make_unique<hybrid::GatewayFailover>(
      std::vector<bool>(tw.crossings.size(), false));

  if (local.empty()) return;

  TransformerWorld* w = &tw;
  tw.injector =
      std::make_unique<fault::FaultInjector>(engine_->cell_sim(tw.t));
  tw.failover->set_listener(
      [w](int crossing, hybrid::GatewayFailover::Path path, sim::Time) {
        const auto link = w->crossings[static_cast<std::size_t>(crossing)].link;
        if (path == hybrid::GatewayFailover::Path::kPrimary) {
          w->injector->record(fault::FaultPhase::kRecover,
                              fault::FaultKind::kLinkPartition, link);
        } else {
          w->injector->record(
              fault::FaultPhase::kTrip, fault::FaultKind::kLinkPartition, link,
              path == hybrid::GatewayFailover::Path::kFallback ? 1.0 : 0.0);
        }
      });

  tw.injector->set_hooks(
      fault::FaultKind::kPlcBlackout,
      {[w](const fault::FaultSpec& s, sim::Time) {
         w->plc->medium().set_fault_pb_error(s.severity);
       },
       [w](const fault::FaultSpec&, sim::Time) {
         w->plc->medium().set_fault_pb_error(0.0);
       }});
  tw.injector->set_hooks(
      fault::FaultKind::kWifiJam,
      {[w](const fault::FaultSpec& s, sim::Time) {
         w->wifi->medium().set_jamming_db(s.severity);
       },
       [w](const fault::FaultSpec&, sim::Time) {
         w->wifi->medium().set_jamming_db(0.0);
       }});
  tw.injector->set_hooks(
      fault::FaultKind::kBoardBlackout,
      {[w](const fault::FaultSpec&, sim::Time) {
         w->dead = true;
         w->plc->medium().set_fault_pb_error(1.0);
         w->wifi->medium().set_jamming_db(200.0);
       },
       [w](const fault::FaultSpec&, sim::Time) {
         w->dead = false;
         w->plc->medium().set_fault_pb_error(0.0);
         w->wifi->medium().set_jamming_db(0.0);
       }});
  tw.injector->set_hooks(
      fault::FaultKind::kBoardBrownout,
      {[w](const fault::FaultSpec& s, sim::Time) {
         w->plc->medium().set_fault_pb_error(s.severity);
       },
       [w](const fault::FaultSpec&, sim::Time) {
         w->plc->medium().set_fault_pb_error(0.0);
       }});
  tw.injector->set_hooks(
      fault::FaultKind::kLinkPartition,
      {[w](const fault::FaultSpec& s, sim::Time t) {
         for (std::size_t ci = 0; ci < w->crossings.size(); ++ci) {
           if (w->crossings[ci].link == s.target) {
             w->failover->on_partition(static_cast<int>(ci), t);
           }
         }
       },
       [w](const fault::FaultSpec& s, sim::Time t) {
         for (std::size_t ci = 0; ci < w->crossings.size(); ++ci) {
           if (w->crossings[ci].link == s.target) {
             w->failover->on_restore(static_cast<int>(ci), t);
           }
         }
       }});

  tw.injector->install(local);
}

void NanWorld::schedule_tick(TransformerWorld& tw) {
  const auto jitter = static_cast<std::int64_t>(
      static_cast<double>(cfg_.report_interval.ns()) * tw.rng.uniform(0.6, 1.4));
  TransformerWorld* w = &tw;
  engine_->cell_sim(tw.t).after_inline(sim::Time{jitter},
                                       [this, w] { tick(*w); });
}

void NanWorld::tick(TransformerWorld& tw) {
  schedule_tick(tw);
  if (tw.n_stations < 2) return;
  // A blacked-out transformer offers nothing; the tick chain keeps
  // running so reporting resumes the instant power returns.
  if (tw.dead) return;

  // The draw sequence below is identical for every DiversityMode, so runs
  // that differ only in mode offer the exact same report pattern — that is
  // what makes "diversity never delivers less than either medium alone"
  // testable as a deterministic assertion.
  const int src_k =
      1 + static_cast<int>(tw.rng.uniform_int(0, tw.n_stations - 2));
  const int src_id = tw.t * kIdStride + src_k;

  net::Packet p;
  p.seq = tw.meter_seq[static_cast<std::size_t>(src_k)]++;
  p.size_bytes = static_cast<std::size_t>(tw.rng.uniform_int(150, 900));
  p.created = engine_->cell_sim(tw.t).now();
  p.priority = 1;
  p.flow_id = src_id * kIdStride;

  const bool remote =
      !tw.crossings.empty() && tw.rng.bernoulli(cfg_.p_remote);
  if (remote) {
    const auto& c = tw.crossings[static_cast<std::size_t>(tw.rng.uniform_int(
        0, static_cast<std::int64_t>(tw.crossings.size()) - 1))];
    const int dst_stations = topo_.stations_on_transformer(c.neighbor);
    if (dst_stations >= 2) {
      // Never address the destination concentrator itself: the final PLC
      // hop would be a station transmitting to itself.
      const int dst_k =
          1 + static_cast<int>(tw.rng.uniform_int(0, dst_stations - 2));
      p.flow_id = kRemoteFlowBase +
                  (c.neighbor * kIdStride + dst_k) * kIdStride + src_k;
      ++tw.offered_remote;
    }
  }
  ++tw.offered;

  switch (cfg_.mode) {
    case DiversityMode::kPlcOnly:
      send_plc(tw, src_k, p);
      break;
    case DiversityMode::kWifiOnly:
      send_wifi(tw, src_k, p);
      break;
    case DiversityMode::kLoadBalance:
      if (tw.scheduler->pick(p) == 0) {
        send_plc(tw, src_k, p);
      } else {
        send_wifi(tw, src_k, p);
      }
      break;
    case DiversityMode::kDiversity: {
      const bool on_plc = send_plc(tw, src_k, p);
      const bool on_wifi = send_wifi(tw, src_k, p);
      if (on_plc && on_wifi) {
        // The second accepted copy is the redundancy spend.
        ++tw.dup_copies;
        tw.dup_bytes += p.size_bytes;
        EFD_COUNTER_INC("nan.diversity.dup_copies");
        EFD_COUNTER_ADD("nan.diversity.dup_bytes",
                        static_cast<std::int64_t>(p.size_bytes));
      }
      break;
    }
  }
}

bool NanWorld::send_plc(TransformerWorld& tw, int meter_k,
                        const net::Packet& p) {
  net::Packet q = p;
  q.src = tw.t * kIdStride + meter_k;
  const auto it = tw.next_hop.find({meter_k, q.src});
  q.dst = it != tw.next_hop.end() ? it->second : tw.conc_id();
  if (!tw.plc->station(q.src).mac().enqueue(q)) {
    ++tw.queue_drops;
    return false;
  }
  return true;
}

bool NanWorld::send_wifi(TransformerWorld& tw, int meter_k,
                         const net::Packet& p) {
  net::Packet q = p;
  q.src = tw.wifi_id(meter_k);
  q.dst = tw.wifi_id(0);
  if (!tw.wifi->station(q.src).enqueue(q)) {
    ++tw.queue_drops;
    return false;
  }
  return true;
}

void NanWorld::egress(TransformerWorld& tw, const net::Packet& p) {
  const int dst_cell = remote_dst_id(p.flow_id) / kIdStride;
  const auto it = std::find_if(
      tw.crossings.begin(), tw.crossings.end(),
      [dst_cell](const auto& c) { return c.neighbor == dst_cell; });
  assert(it != tw.crossings.end() && "remote flow targets a non-neighbor");
  const int ci = static_cast<int>(it - tw.crossings.begin());
  if (tw.failover && !tw.failover->usable(ci)) {
    // Partitioned crossing with no fallback medium: deterministic drop.
    tw.failover->record_drop();
    return;
  }
  tw.plc->record_boundary_egress();
  post_crossing(tw, p, dst_cell);
}

void NanWorld::post_crossing(TransformerWorld& tw, const net::Packet& p,
                             int dst_cell) {
  const auto it = std::find_if(
      tw.crossings.begin(), tw.crossings.end(),
      [dst_cell](const auto& c) { return c.neighbor == dst_cell; });
  assert(it != tw.crossings.end());
  const sim::Time now = engine_->cell_sim(tw.t).now();
  sim::BoundaryEvent e;
  e.t_ns = now.ns() + it->lookahead_ns;
  e.src_cell = tw.t;
  e.dst_cell = dst_cell;
  e.kind = it->kind == grid::BoundaryKind::kWifiBridge ? kKindBridge
                                                       : kKindBackbone;
  e.bytes = static_cast<std::uint32_t>(p.size_bytes);
  e.a = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.src)) << 32) |
        static_cast<std::uint32_t>(p.dst);
  e.b = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.flow_id))
         << 32) |
        p.seq;
  e.c = static_cast<std::uint64_t>(p.created.ns());
  tw.digest.mix(e.t_ns);
  tw.digest.mix(e.dst_cell);
  tw.digest.mix(e.b);
  engine_->post(e);
}

void NanWorld::run() { run_until(cfg_.duration); }

void NanWorld::run_until(sim::Time end) {
  EFD_PROF_SCOPE("nan.run");
  engine_->run_until(end);
}

NanResult NanWorld::result() const {
  NanResult r;
  r.n_transformers = topo_.n_transformers();
  r.n_shards = engine_->n_shards();
  r.events = engine_->events_dispatched();
  r.shards = engine_->shard_stats();

  Fnv1a f;
  for (const auto& tw : cells_) {
    std::uint64_t suppressed = 0;
    std::uint64_t stragglers = 0;
    for (const auto& rb : tw->dedup) {
      if (!rb) continue;
      suppressed += rb->duplicates_dropped();
      stragglers += rb->stragglers_dropped();
    }

    f.mix(tw->t);
    f.mix(tw->digest.h);
    for (const std::uint32_t s : tw->meter_seq) {
      f.mix(static_cast<std::uint64_t>(s));
    }
    f.mix(tw->offered);
    f.mix(tw->offered_remote);
    f.mix(tw->delivered);
    f.mix(tw->delivered_remote);
    f.mix(tw->queue_drops);
    f.mix(tw->relay_forwards);
    f.mix(tw->dup_copies);
    f.mix(tw->dup_bytes);
    f.mix(tw->wins_plc);
    f.mix(tw->wins_wifi);
    f.mix(suppressed);
    f.mix(stragglers);
    f.mix(tw->plc->boundary_ingress());
    f.mix(tw->plc->boundary_egress());

    r.offered += tw->offered;
    r.offered_remote += tw->offered_remote;
    r.delivered += tw->delivered;
    r.delivered_remote += tw->delivered_remote;
    r.queue_drops += tw->queue_drops;
    r.dup_copies += tw->dup_copies;
    r.dup_bytes += tw->dup_bytes;
    r.wins_plc += tw->wins_plc;
    r.wins_wifi += tw->wins_wifi;
    r.suppressed += suppressed;
    r.stragglers += stragglers;
    r.relay_meters += static_cast<std::uint64_t>(tw->relay_meters);
    r.relay_forwards += tw->relay_forwards;
    r.relay_hops_max = std::max(r.relay_hops_max, tw->relay_hops_max);
  }
  r.digest = f.h;

  // Fault-domain accounting rides outside the digest fold above, so the
  // fault-free digest is bit-for-bit independent of fault wiring.
  r.transformer_digests.reserve(cells_.size());
  for (const auto& tw : cells_) {
    r.transformer_digests.push_back(tw->digest.h);
    r.dead_drops += tw->dead_drops;
    if (tw->injector) {
      r.fault_events += tw->injector->trace().size();
      r.fault_trace += tw->injector->trace_lines();
    }
    if (tw->failover) {
      r.failovers += tw->failover->failovers();
      r.failbacks += tw->failover->failbacks();
      r.partition_drops += tw->failover->drops();
    }
  }
  r.mailbox_peak = engine_->mailbox_peak_occupancy();

  std::int64_t busy_max = 0;
  std::int64_t busy_sum = 0;
  for (const auto& s : r.shards) {
    r.boundary_posted += s.boundary_posted;
    r.boundary_delivered += s.boundary_delivered;
    busy_max = std::max(busy_max, s.busy_ns);
    busy_sum += s.busy_ns;
  }
  if (!r.shards.empty() && busy_sum > 0) {
    const double mean = static_cast<double>(busy_sum) /
                        static_cast<double>(r.shards.size());
    r.load_balance = static_cast<double>(busy_max) / mean;
  }
  return r;
}

void NanWorld::reset_and_rebuild() {
  engine_->reset();
  build();
}

NanResult run_nan(const NanRunConfig& cfg) {
  NanWorld world(cfg);
  world.run();
  return world.result();
}

}  // namespace efd::testbed

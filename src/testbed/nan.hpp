#pragma once

// NanWorld — a neighborhood-area network built onto the sharded event
// engine: one transformer cell = one engine cell, holding the LV drop-line
// PowerGrid, a PlcChannel/PlcNetwork for the meters, and a parallel
// WifiNetwork mirroring the same stations (the diversity partner). Meters
// report to their transformer's data concentrator; a run-wide DiversityMode
// selects how each report travels:
//
//   kPlcOnly / kWifiOnly — single-medium baselines;
//   kLoadBalance         — the paper's §7.4 capacity-proportional split;
//   kDiversity           — per-packet duplication on BOTH media with
//                          first-wins dedup at the concentrator (per-meter
//                          sequence-keyed ReorderBuffer; the losing copy is
//                          suppressed and accounted, Sung & Evans style).
//
// Meters whose direct PLC link to the concentrator is below the
// connectivity threshold get a multi-hop relay path over intermediate
// meters (hybrid::RelayPlanner fed with core::predicted_u_etx costs from
// the channel's own SNR physics — ABB's multi-interface NAN routing).
// Cross-transformer reports ride the MV feeder runs / feeder-head WiFi
// crossings as BoundaryEvents, so every digest is byte-identical across
// EFD_SHARDS, faults included.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/grid/nan.hpp"
#include "src/hybrid/routing.hpp"
#include "src/net/packet.hpp"
#include "src/sim/sharded.hpp"
#include "src/sim/time.hpp"

namespace efd::testbed {

/// Run-wide transport mode for meter reports.
enum class DiversityMode : std::uint8_t {
  kPlcOnly,
  kWifiOnly,
  kLoadBalance,
  kDiversity,
};

[[nodiscard]] const char* to_string(DiversityMode mode);

struct NanRunConfig {
  grid::NanConfig nan;
  int n_shards = 1;
  DiversityMode mode = DiversityMode::kDiversity;
  sim::Time duration = sim::milliseconds(200);
  /// Mean spacing of per-transformer report ticks (each offers one report).
  sim::Time report_interval = sim::milliseconds(4);
  /// Probability a report targets a meter behind a neighboring transformer
  /// (one boundary crossing; the NAN does not route multi-cell).
  double p_remote = 0.2;
  /// First-wins dedup / resequencing gap timeout at the concentrator.
  sim::Time gap_timeout = sim::milliseconds(30);
  /// Multi-hop PLC relaying for below-threshold meters. max_hops=1 turns
  /// relaying off (only the direct link is a 1-hop path).
  bool relay_enabled = true;
  hybrid::RelayPlanner::Config relay;
  /// Transformer-domain fault plan: kPlcBlackout / kWifiJam /
  /// kBoardBrownout / kBoardBlackout target a transformer index,
  /// kLinkPartition a topology link index. Empty = fault-free.
  fault::FaultPlan faults;
  std::size_t mailbox_capacity = 0;
  std::int64_t watchdog_budget_ns = 30'000'000'000;
};

struct NanResult {
  /// Order-exact fold of every transformer's delivery and boundary
  /// streams, combined in transformer order. Invariant across shard
  /// counts and EFD_SIMD legs.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t offered = 0;           ///< reports generated at meters
  std::uint64_t offered_remote = 0;    ///< subset bound for another cell
  std::uint64_t delivered = 0;         ///< reports landed at own concentrator
  std::uint64_t delivered_remote = 0;  ///< reports landed across a crossing
  std::uint64_t boundary_posted = 0;
  std::uint64_t boundary_delivered = 0;
  std::uint64_t queue_drops = 0;

  // Redundancy-vs-throughput accounting (diversity mode).
  std::uint64_t dup_copies = 0;     ///< redundant copies actually enqueued
  std::uint64_t dup_bytes = 0;      ///< bytes those copies cost
  std::uint64_t wins_plc = 0;       ///< reports whose PLC copy arrived first
  std::uint64_t wins_wifi = 0;
  std::uint64_t suppressed = 0;     ///< losing copies dropped by the dedup
  std::uint64_t stragglers = 0;     ///< late copies of abandoned gaps

  // Relay accounting.
  std::uint64_t relay_meters = 0;   ///< meters planned onto a relay path
  std::uint64_t relay_forwards = 0; ///< store-and-forward hops executed
  int relay_hops_max = 0;           ///< longest planned path (links)

  int n_transformers = 0;
  int n_shards = 0;
  std::vector<sim::ShardedSimulator::ShardStats> shards;
  double load_balance = 1.0;

  /// Per-transformer digest stream values, in transformer order.
  std::vector<std::uint64_t> transformer_digests;
  std::string fault_trace;
  std::uint64_t fault_events = 0;
  std::uint64_t dead_drops = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t mailbox_peak = 0;
};

class NanWorld {
 public:
  explicit NanWorld(const NanRunConfig& cfg);
  ~NanWorld();

  void run();
  void run_until(sim::Time end);

  [[nodiscard]] NanResult result() const;

  /// Reset the engine and rebuild every transformer cell; a subsequent
  /// run() replays the identical NAN (same digest).
  void reset_and_rebuild();

  [[nodiscard]] sim::ShardedSimulator& engine() { return *engine_; }
  [[nodiscard]] const grid::NanTopology& topology() const { return topo_; }

 private:
  struct TransformerWorld;

  void build();
  void plan_relays(TransformerWorld& tw);
  void wire_faults(TransformerWorld& tw);
  void tick(TransformerWorld& tw);
  void schedule_tick(TransformerWorld& tw);
  bool send_plc(TransformerWorld& tw, int meter_k, const net::Packet& p);
  bool send_wifi(TransformerWorld& tw, int meter_k, const net::Packet& p);
  void egress(TransformerWorld& tw, const net::Packet& p);
  void post_crossing(TransformerWorld& tw, const net::Packet& p, int dst_cell);

  NanRunConfig cfg_;
  grid::NanTopology topo_;
  std::unique_ptr<sim::ShardedSimulator> engine_;
  std::vector<std::unique_ptr<TransformerWorld>> cells_;
};

/// Build, run and summarize one NAN in a single call.
[[nodiscard]] NanResult run_nan(const NanRunConfig& cfg);

}  // namespace efd::testbed

#include "src/testbed/campus.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "src/fault/injector.hpp"
#include "src/hybrid/gateway.hpp"
#include "src/obs/obs.hpp"
#include "src/plc/channel.hpp"
#include "src/plc/network.hpp"
#include "src/sim/rng.hpp"
#include "src/wifi/network.hpp"

namespace efd::testbed {

namespace {

/// Station-id space: board b owns ids [b*64, b*64+64). PLC stations sit at
/// +0..+stations-1 (the gateway at +0), the WiFi bridge radio at +48 and
/// the building AP at +49.
constexpr int kIdStride = 64;
constexpr int kWifiRadioOff = 48;
constexpr int kWifiApOff = 49;

/// Flows at or above this carry cross-board traffic; the flow id encodes
/// the FINAL destination station, which survives the per-hop address
/// rewrites (PLC -> WiFi -> boundary -> PLC).
constexpr int kRemoteFlowBase = 1 << 24;

constexpr std::uint32_t kKindBackbone = 0;
constexpr std::uint32_t kKindBridge = 1;

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
};

}  // namespace

/// Everything one distribution board owns. After build() only the shard
/// thread executing the board's cell touches any of it.
struct CampusWorld::BoardWorld {
  int board = 0;
  int n_stations = 0;
  grid::PowerGrid grid;
  std::unique_ptr<plc::PlcChannel> channel;
  std::unique_ptr<plc::PlcNetwork> plc;
  std::unique_ptr<wifi::WifiNetwork> wifi;  ///< bridge endpoints only
  sim::Rng rng{0};

  struct Crossing {
    int neighbor = 0;
    grid::BoundaryKind kind = grid::BoundaryKind::kPlcBackbone;
    std::int64_t lookahead_ns = 0;
    int link = -1;  ///< index into topo_.links(); kLinkPartition targets it
  };
  std::vector<Crossing> crossings;

  /// Fault-domain state (null on fault-free runs; the fault-free digest
  /// and allocation profile are untouched).
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<hybrid::GatewayFailover> failover;
  bool dead = false;            ///< board blacked out right now
  std::uint64_t dead_drops = 0; ///< boundary ingress dropped while dead

  /// Order-exact stream fold: deliveries, egress posts and boundary
  /// arrivals, mixed the instant they happen (no buffering, so the steady
  /// state stays allocation-free).
  Fnv1a digest;
  std::uint32_t seq = 0;
  std::uint64_t offered_local = 0;
  std::uint64_t offered_remote = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_drops = 0;

  [[nodiscard]] int gateway_id() const { return board * kIdStride; }
  [[nodiscard]] int radio_id() const { return board * kIdStride + kWifiRadioOff; }
  [[nodiscard]] int ap_id() const { return board * kIdStride + kWifiApOff; }
};

CampusWorld::CampusWorld(const CampusRunConfig& cfg)
    : cfg_(cfg), topo_(grid::CampusTopology::generate(cfg.campus)) {
  sim::ShardedSimulator::Config ec;
  ec.n_cells = topo_.n_boards();
  ec.n_shards = cfg_.n_shards;
  for (const grid::BoundaryLink& l : topo_.links()) {
    ec.links.push_back({l.board_a, l.board_b, l.lookahead});
    ec.links.push_back({l.board_b, l.board_a, l.lookahead});
  }
  ec.mailbox_capacity = cfg_.mailbox_capacity;
  ec.watchdog.budget_ns = cfg_.watchdog_budget_ns;
  engine_ = std::make_unique<sim::ShardedSimulator>(std::move(ec));
  build();
}

CampusWorld::~CampusWorld() = default;

void CampusWorld::build() {
  EFD_PROF_SCOPE("campus.build");
  boards_.clear();
  boards_.reserve(static_cast<std::size_t>(topo_.n_boards()));

  for (int b = 0; b < topo_.n_boards(); ++b) {
    auto bw = std::make_unique<BoardWorld>();
    bw->board = b;
    bw->n_stations =
        std::min(cfg_.campus.stations_per_board, topo_.outlets_on_board(b));
    bw->rng = sim::Rng{cfg_.campus.seed}.fork(
        0x7AFF1C00 + static_cast<std::uint64_t>(b));
    topo_.build_board_grid(b, bw->grid);

    for (std::size_t li = 0; li < topo_.links().size(); ++li) {
      const grid::BoundaryLink& l = topo_.links()[li];
      if (l.board_a == b) {
        bw->crossings.push_back(
            {l.board_b, l.kind, l.lookahead.ns(), static_cast<int>(li)});
      } else if (l.board_b == b) {
        bw->crossings.push_back(
            {l.board_a, l.kind, l.lookahead.ns(), static_cast<int>(li)});
      }
    }

    sim::Simulator& sim = engine_->cell_sim(b);
    bw->channel =
        std::make_unique<plc::PlcChannel>(bw->grid, plc::PhyParams::hpav());
    bw->plc = std::make_unique<plc::PlcNetwork>(
        sim, *bw->channel,
        sim::Rng{cfg_.campus.seed}.fork(0x9E7B00 + static_cast<std::uint64_t>(b)));

    BoardWorld* w = bw.get();
    for (int k = 0; k < bw->n_stations; ++k) {
      const int id = b * kIdStride + k;
      const int outlet = topo_.station_outlet(b, k);
      bw->channel->attach_station(id, outlet);
      bw->plc->add_station(id, outlet);
      bw->plc->station(id).mac().set_rx_handler(
          [this, w, id](const net::Packet& p, sim::Time when) {
            if (p.flow_id >= kRemoteFlowBase &&
                (p.flow_id - kRemoteFlowBase) / kIdStride != w->board) {
              // Transit traffic at the gateway: hand it off-board.
              egress(*w, p);
              return;
            }
            ++w->delivered;
            w->digest.mix(id);
            w->digest.mix(p.flow_id);
            w->digest.mix(static_cast<std::uint64_t>(p.seq));
            w->digest.mix(when.ns());
          });
    }
    bw->plc->set_cco(bw->gateway_id());
    bw->plc->set_boundary_gateway(bw->gateway_id());

    const bool bridge_endpoint = std::any_of(
        bw->crossings.begin(), bw->crossings.end(), [](const auto& c) {
          return c.kind == grid::BoundaryKind::kWifiBridge;
        });
    if (bridge_endpoint && cfg_.with_wifi) {
      bw->wifi = std::make_unique<wifi::WifiNetwork>(
          sim, sim::Rng{cfg_.campus.seed}.fork(
                   0x31F1000 + static_cast<std::uint64_t>(b)));
      bw->wifi->add_station(bw->radio_id(), 0.0, 0.0);
      bw->wifi->add_station(bw->ap_id(), 18.0, 4.0);
      bw->wifi->set_boundary_gateway(bw->radio_id());
      // Roof radio: every frame it receives is egress-bound for a
      // neighboring building.
      bw->wifi->station(bw->radio_id())
          .set_rx_handler([this, w](const net::Packet& p, sim::Time) {
            const int dst_board = (p.flow_id - kRemoteFlowBase) / kIdStride;
            post_crossing(*w, p, dst_board);
          });
      // Building AP: every frame it receives came over the bridge and
      // continues onto the board's mains.
      bw->wifi->station(bw->ap_id())
          .set_rx_handler([w](const net::Packet& p, sim::Time) {
            net::Packet q = p;
            q.src = w->gateway_id();
            q.dst = p.flow_id - kRemoteFlowBase;
            if (!w->plc->inject_boundary(q)) ++w->queue_drops;
          });
    }

    engine_->set_cell_handler(b, [this, w](const sim::BoundaryEvent& e,
                                           sim::Simulator&) {
      // Fold the arrival stream before acting on it: (t, src, payload) in
      // delivery order is exactly what conservative sync must make
      // grouping-invariant.
      w->digest.mix(e.t_ns);
      w->digest.mix(e.src_cell);
      w->digest.mix(static_cast<std::uint64_t>(e.kind));
      w->digest.mix(e.a);
      w->digest.mix(e.b);
      w->digest.mix(e.c);
      if (w->dead) {
        // The arrival is folded (it crossed the boundary either way) but a
        // blacked-out board has nothing powered to hand it to.
        ++w->dead_drops;
        return;
      }
      net::Packet p;
      p.flow_id = static_cast<int>(e.b >> 32);
      p.seq = static_cast<std::uint32_t>(e.b & 0xffffffffu);
      p.size_bytes = e.bytes;
      p.created = sim::Time{static_cast<std::int64_t>(e.c)};
      p.priority = 1;
      if (e.kind == kKindBridge && w->wifi) {
        p.src = w->radio_id();
        p.dst = w->ap_id();
        if (!w->wifi->inject_boundary(p)) ++w->queue_drops;
      } else {
        p.src = w->gateway_id();
        p.dst = p.flow_id - kRemoteFlowBase;
        if (!w->plc->inject_boundary(p)) ++w->queue_drops;
      }
    });

    if (!cfg_.faults.empty()) wire_faults(*bw);
    schedule_tick(*bw);
    boards_.push_back(std::move(bw));
  }
}

void CampusWorld::wire_faults(BoardWorld& bw) {
  // Slice the campus-wide plan into this board's specs: board-targeted
  // kinds stay on their board; a link partition lands on BOTH endpoint
  // boards (each schedules the same apply/clear instants on its own cell
  // clock, so both sides observe the cut simultaneously in sim time).
  fault::FaultPlan local;
  for (const fault::FaultSpec& s : cfg_.faults.specs()) {
    if (s.kind == fault::FaultKind::kLinkPartition) {
      if (s.target < 0 ||
          s.target >= static_cast<int>(topo_.links().size())) {
        continue;
      }
      const grid::BoundaryLink& l =
          topo_.links()[static_cast<std::size_t>(s.target)];
      if (l.board_a == bw.board || l.board_b == bw.board) local.add(s);
    } else if (s.target == bw.board) {
      local.add(s);
    }
  }

  std::vector<bool> has_fallback;
  has_fallback.reserve(bw.crossings.size());
  for (const auto& c : bw.crossings) {
    // A severed WiFi bridge falls back to the shared powerline backbone;
    // a severed backbone crossing has no second medium and goes down.
    has_fallback.push_back(c.kind == grid::BoundaryKind::kWifiBridge);
  }
  bw.failover = std::make_unique<hybrid::GatewayFailover>(std::move(has_fallback));

  if (local.empty()) return;

  BoardWorld* w = &bw;
  bw.injector =
      std::make_unique<fault::FaultInjector>(engine_->cell_sim(bw.board));
  bw.failover->set_listener(
      [w](int crossing, hybrid::GatewayFailover::Path path, sim::Time) {
        // Recovery-side trace: reroutes/downs record as trips, primary
        // restoration as recovery; severity 1 = fallback carried traffic.
        const auto link = w->crossings[static_cast<std::size_t>(crossing)].link;
        if (path == hybrid::GatewayFailover::Path::kPrimary) {
          w->injector->record(fault::FaultPhase::kRecover,
                              fault::FaultKind::kLinkPartition, link);
        } else {
          w->injector->record(
              fault::FaultPhase::kTrip, fault::FaultKind::kLinkPartition, link,
              path == hybrid::GatewayFailover::Path::kFallback ? 1.0 : 0.0);
        }
      });

  bw.injector->set_hooks(
      fault::FaultKind::kBoardBlackout,
      {[w](const fault::FaultSpec&, sim::Time) {
         w->dead = true;
         w->plc->medium().set_fault_pb_error(1.0);
         if (w->wifi) w->wifi->medium().set_jamming_db(200.0);
       },
       [w](const fault::FaultSpec&, sim::Time) {
         w->dead = false;
         w->plc->medium().set_fault_pb_error(0.0);
         if (w->wifi) w->wifi->medium().set_jamming_db(0.0);
       }});
  bw.injector->set_hooks(
      fault::FaultKind::kBoardBrownout,
      {[w](const fault::FaultSpec& s, sim::Time) {
         w->plc->medium().set_fault_pb_error(s.severity);
       },
       [w](const fault::FaultSpec&, sim::Time) {
         w->plc->medium().set_fault_pb_error(0.0);
       }});
  bw.injector->set_hooks(
      fault::FaultKind::kLinkPartition,
      {[w](const fault::FaultSpec& s, sim::Time t) {
         for (std::size_t ci = 0; ci < w->crossings.size(); ++ci) {
           if (w->crossings[ci].link == s.target) {
             w->failover->on_partition(static_cast<int>(ci), t);
           }
         }
       },
       [w](const fault::FaultSpec& s, sim::Time t) {
         for (std::size_t ci = 0; ci < w->crossings.size(); ++ci) {
           if (w->crossings[ci].link == s.target) {
             w->failover->on_restore(static_cast<int>(ci), t);
           }
         }
       }});

  bw.injector->install(local);
}

void CampusWorld::schedule_tick(BoardWorld& bw) {
  const auto jitter = static_cast<std::int64_t>(
      static_cast<double>(cfg_.traffic_interval.ns()) * bw.rng.uniform(0.6, 1.4));
  BoardWorld* w = &bw;
  engine_->cell_sim(bw.board).after_inline(sim::Time{jitter},
                                           [this, w] { tick(*w); });
}

void CampusWorld::tick(BoardWorld& bw) {
  schedule_tick(bw);
  if (bw.n_stations < 2) return;
  // A blacked-out board offers nothing: its stations are unpowered. The
  // tick chain keeps running so traffic resumes the instant power returns.
  if (bw.dead) return;

  const int src_k =
      static_cast<int>(bw.rng.uniform_int(0, bw.n_stations - 1));
  const int src_id = bw.board * kIdStride + src_k;

  net::Packet p;
  p.seq = bw.seq++;
  p.size_bytes = static_cast<std::size_t>(bw.rng.uniform_int(200, 1500));
  p.created = engine_->cell_sim(bw.board).now();
  p.priority = 1;
  p.src = src_id;

  const bool remote =
      !bw.crossings.empty() && bw.rng.bernoulli(cfg_.p_remote);
  if (remote) {
    const auto& c = bw.crossings[static_cast<std::size_t>(
        bw.rng.uniform_int(0, static_cast<std::int64_t>(bw.crossings.size()) - 1))];
    const int dst_stations = std::min(
        cfg_.campus.stations_per_board, topo_.outlets_on_board(c.neighbor));
    if (dst_stations >= 2) {
      // Never address the destination gateway itself: the final PLC hop
      // would be a station transmitting to itself.
      const int dst_k =
          1 + static_cast<int>(bw.rng.uniform_int(0, dst_stations - 2));
      p.flow_id = kRemoteFlowBase + c.neighbor * kIdStride + dst_k;
      p.dst = bw.gateway_id();
      ++bw.offered_remote;
      if (src_k == 0) {
        // The gateway sourcing off-board traffic skips its own medium.
        egress(bw, p);
      } else if (!bw.plc->station(p.src).mac().enqueue(p)) {
        ++bw.queue_drops;
      }
      return;
    }
  }

  int dst_k = static_cast<int>(bw.rng.uniform_int(0, bw.n_stations - 2));
  if (dst_k >= src_k) ++dst_k;
  p.flow_id = src_id * kIdStride + dst_k;
  p.dst = bw.board * kIdStride + dst_k;
  ++bw.offered_local;
  if (!bw.plc->station(p.src).mac().enqueue(p)) ++bw.queue_drops;
}

void CampusWorld::egress(BoardWorld& bw, const net::Packet& p) {
  const int dst_board = (p.flow_id - kRemoteFlowBase) / kIdStride;
  const auto it = std::find_if(
      bw.crossings.begin(), bw.crossings.end(),
      [dst_board](const auto& c) { return c.neighbor == dst_board; });
  assert(it != bw.crossings.end() && "remote flow targets a non-neighbor");
  const int ci = static_cast<int>(it - bw.crossings.begin());
  if (bw.failover && !bw.failover->usable(ci)) {
    // Partitioned crossing with no fallback medium: deterministic drop.
    bw.failover->record_drop();
    return;
  }
  bw.plc->record_boundary_egress();
  if (it->kind == grid::BoundaryKind::kWifiBridge && bw.wifi &&
      !(bw.failover && bw.failover->rerouted(ci))) {
    // Local AP -> roof radio hop first; the radio's rx handler posts the
    // crossing when the frame actually clears the WiFi medium.
    net::Packet q = p;
    q.src = bw.ap_id();
    q.dst = bw.radio_id();
    bw.wifi->record_boundary_egress();
    if (!bw.wifi->station(q.src).enqueue(q)) ++bw.queue_drops;
    return;
  }
  post_crossing(bw, p, dst_board);
}

void CampusWorld::post_crossing(BoardWorld& bw, const net::Packet& p,
                                int dst_board) {
  const auto it = std::find_if(
      bw.crossings.begin(), bw.crossings.end(),
      [dst_board](const auto& c) { return c.neighbor == dst_board; });
  assert(it != bw.crossings.end());
  const int ci = static_cast<int>(it - bw.crossings.begin());
  // A bridge crossing rerouted by a partition travels the backbone: the
  // destination hands it straight to its mains instead of its AP.
  const bool bridge = it->kind == grid::BoundaryKind::kWifiBridge &&
                      !(bw.failover && bw.failover->rerouted(ci));
  const sim::Time now = engine_->cell_sim(bw.board).now();
  sim::BoundaryEvent e;
  e.t_ns = now.ns() + it->lookahead_ns;
  e.src_cell = bw.board;
  e.dst_cell = dst_board;
  e.kind = bridge ? kKindBridge : kKindBackbone;
  e.bytes = static_cast<std::uint32_t>(p.size_bytes);
  e.a = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.src)) << 32) |
        static_cast<std::uint32_t>(p.dst);
  e.b = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.flow_id))
         << 32) |
        p.seq;
  e.c = static_cast<std::uint64_t>(p.created.ns());
  // Egress leaves the board's digest stream too: the post time is a pure
  // function of board-local evolution, so it is grouping-invariant.
  bw.digest.mix(e.t_ns);
  bw.digest.mix(e.dst_cell);
  bw.digest.mix(e.b);
  engine_->post(e);
}

void CampusWorld::run() { run_until(cfg_.duration); }

void CampusWorld::run_until(sim::Time end) {
  EFD_PROF_SCOPE("campus.run");
  engine_->run_until(end);
}

CampusCheckpoint CampusWorld::checkpoint() const {
  CampusCheckpoint cp;
  cp.engine = engine_->checkpoint();
  cp.t = sim::Time{cp.engine.t_ns - 1};  // engine horizons are exclusive
  cp.world_digest = result().digest;
  return cp;
}

bool CampusWorld::restore(const CampusCheckpoint& cp) {
  engine_->reset();
  build();
  engine_->run_until(cp.t);
  return engine_->matches(cp.engine) && result().digest == cp.world_digest;
}

CampusResult CampusWorld::result() const {
  CampusResult r;
  r.n_boards = topo_.n_boards();
  r.n_shards = engine_->n_shards();
  r.events = engine_->events_dispatched();
  r.shards = engine_->shard_stats();

  Fnv1a f;
  for (const auto& bw : boards_) {
    f.mix(bw->board);
    f.mix(bw->digest.h);
    f.mix(static_cast<std::uint64_t>(bw->seq));
    f.mix(bw->offered_local);
    f.mix(bw->offered_remote);
    f.mix(bw->delivered);
    f.mix(bw->queue_drops);
    f.mix(bw->plc->boundary_ingress());
    f.mix(bw->plc->boundary_egress());
    if (bw->wifi) {
      f.mix(bw->wifi->boundary_ingress());
      f.mix(bw->wifi->boundary_egress());
    }
    r.packets_local += bw->offered_local;
    r.packets_remote += bw->offered_remote;
    r.delivered += bw->delivered;
  }
  r.digest = f.h;

  // Fault-domain accounting rides outside the digest fold above, so the
  // fault-free digest is bit-for-bit what it was before fault domains.
  r.board_digests.reserve(boards_.size());
  for (const auto& bw : boards_) {
    r.board_digests.push_back(bw->digest.h);
    r.dead_drops += bw->dead_drops;
    if (bw->injector) {
      r.fault_events += bw->injector->trace().size();
      r.fault_trace += bw->injector->trace_lines();
    }
    if (bw->failover) {
      r.failovers += bw->failover->failovers();
      r.failbacks += bw->failover->failbacks();
      r.partition_drops += bw->failover->drops();
    }
  }
  r.mailbox_peak = engine_->mailbox_peak_occupancy();

  std::int64_t busy_max = 0;
  std::int64_t busy_sum = 0;
  for (const auto& s : r.shards) {
    r.boundary_posted += s.boundary_posted;
    r.boundary_delivered += s.boundary_delivered;
    r.backpressure_waits += s.backpressure_waits;
    busy_max = std::max(busy_max, s.busy_ns);
    busy_sum += s.busy_ns;
  }
  if (!r.shards.empty() && busy_sum > 0) {
    const double mean = static_cast<double>(busy_sum) /
                        static_cast<double>(r.shards.size());
    r.load_balance = static_cast<double>(busy_max) / mean;
  }
  return r;
}

void CampusWorld::reset_and_rebuild() {
  engine_->reset();
  build();
}

CampusResult run_campus(const CampusRunConfig& cfg) {
  CampusWorld world(cfg);
  world.run();
  return world.result();
}

}  // namespace efd::testbed

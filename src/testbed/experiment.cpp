#include "src/testbed/experiment.hpp"

#include <chrono>

#include "src/obs/obs.hpp"

namespace efd::testbed {

sim::Time weekday_afternoon() { return sim::days(1) + sim::hours(14); }

sim::Time weekend_night() { return sim::days(5) + sim::hours(3); }

namespace {

ThroughputResult measure(net::Interface& tx, net::Interface& rx,
                         sim::Simulator& sim, net::StationId src,
                         net::StationId dst, sim::Time duration) {
  EFD_TRACE_SPAN("testbed", "measure_throughput");
  const auto wall_start = std::chrono::steady_clock::now();
  net::ThroughputMeter meter;
  rx.set_rx_handler(
      [&meter](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });

  net::UdpSource::Config cfg;
  cfg.src = src;
  cfg.dst = dst;
  cfg.rate_bps = 400e6;  // far above any link capacity: saturation
  net::UdpSource source(sim, tx, cfg);

  const sim::Time start = sim.now();
  source.run(start, start + duration);
  sim.run_until(start + duration);
  source.stop();
  meter.finish(sim.now());
  // Flush leftover retransmission backlog so the next back-to-back
  // experiment does not contend with this one's tail.
  rx.set_rx_handler([](const net::Packet&, sim::Time) {});
  tx.clear_queue();
  sim.run_until(sim.now() + sim::milliseconds(100));

  // Wall-clock per simulated second: the hot-path health number every
  // scaling PR watches (lower is faster; ratio < 1 means faster than
  // real time).
  // [[maybe_unused]]: EFD_GAUGE_SET does not evaluate its arguments when
  // the observability layer is compiled out (EFD_OBS_ENABLED=0).
  [[maybe_unused]] const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (duration.seconds() > 0.0) {
    EFD_GAUGE_SET("sim.wall_sim_ratio", wall_s / duration.seconds());
  }

  ThroughputResult result;
  const auto stats = meter.stats();
  result.mean_mbps = stats.mean();
  result.std_mbps = stats.stddev();
  result.total_mbps = meter.average_mbps(duration);
  return result;
}

}  // namespace

ThroughputResult measure_plc_throughput(Testbed& tb, net::StationId src,
                                        net::StationId dst, sim::Time duration,
                                        PlcGeneration g) {
  return measure(tb.plc_station(src, g).mac(), tb.plc_station(dst, g).mac(),
                 tb.simulator(), src, dst, duration);
}

ThroughputResult measure_wifi_throughput(Testbed& tb, net::StationId src,
                                         net::StationId dst, sim::Time duration) {
  return measure(tb.wifi_station(src), tb.wifi_station(dst), tb.simulator(), src,
                 dst, duration);
}

}  // namespace efd::testbed

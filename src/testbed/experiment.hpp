#pragma once

#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/testbed/testbed.hpp"

namespace efd::testbed {

/// Mean / stddev of windowed throughput samples, Fig. 3 style.
struct ThroughputResult {
  double mean_mbps = 0.0;
  double std_mbps = 0.0;
  double total_mbps = 0.0;  ///< bytes delivered over the whole duration
};

/// Wall-clock anchors for "working hours" vs "night" experiments: the
/// simulation epoch is Monday 00:00, so Tuesday 14:00 is a weekday
/// afternoon and Saturday 03:00 a quiet night (§3.2, §6.2).
[[nodiscard]] sim::Time weekday_afternoon();
[[nodiscard]] sim::Time weekend_night();

/// Saturate a PLC link with UDP (iperf-style) and measure the receiver-side
/// throughput in 100 ms windows for `duration`, starting at the simulator's
/// current time. Leaves a short drain period so back-to-back measurements
/// do not bleed into each other.
ThroughputResult measure_plc_throughput(Testbed& tb, net::StationId src,
                                        net::StationId dst, sim::Time duration,
                                        PlcGeneration g = PlcGeneration::kHpav);

/// Same measurement over the WiFi interface.
ThroughputResult measure_wifi_throughput(Testbed& tb, net::StationId src,
                                         net::StationId dst, sim::Time duration);

}  // namespace efd::testbed

#include "src/testbed/parallel_runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "src/core/env.hpp"
#include "src/obs/obs.hpp"

namespace efd::testbed {

ParallelRunner::ParallelRunner(int n_threads) : n_threads_(n_threads) {
  if (n_threads_ <= 0) {
    n_threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (n_threads_ <= 0) n_threads_ = 1;
  }
}

void ParallelRunner::run(int n_tasks, const std::function<void(int)>& fn) const {
  if (n_tasks <= 0) return;
  const int workers = std::min(n_threads_, n_tasks);
  EFD_GAUGE_SET("testbed.workers", workers);
  EFD_TRACE_SPAN("testbed", "parallel_run");
  EFD_PROF_SCOPE("testbed.parallel_run");
  if (workers <= 1) {
    // Serial fast path: same claim order, no thread machinery.
    for (int i = 0; i < n_tasks; ++i) {
      EFD_TRACE_SPAN("testbed", "task");
      EFD_PROF_SCOPE("testbed.task");
      fn(i);
      EFD_COUNTER_INC("testbed.tasks_run");
    }
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n_tasks) return;
          try {
            EFD_TRACE_SPAN("testbed", "task");
            EFD_PROF_SCOPE("testbed.task");
            fn(i);
            EFD_COUNTER_INC("testbed.tasks_run");
          } catch (...) {
            const std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelRunner::run_with_sim(
    int n_tasks, const std::function<void(int, sim::Simulator&)>& fn) const {
  run_with_sim(n_tasks, [&fn](int i, sim::Simulator& sim, core::Arena&) {
    fn(i, sim);
  });
}

void ParallelRunner::run_with_sim(
    int n_tasks,
    const std::function<void(int, sim::Simulator&, core::Arena&)>& fn) const {
  if (n_tasks <= 0) return;
  const int workers = std::min(n_threads_, n_tasks);
  EFD_GAUGE_SET("testbed.workers", workers);
  EFD_TRACE_SPAN("testbed", "parallel_run");
  EFD_PROF_SCOPE("testbed.parallel_run");
  if (workers <= 1) {
    sim::Simulator sim;
    core::Arena arena;
    for (int i = 0; i < n_tasks; ++i) {
      EFD_TRACE_SPAN("testbed", "task");
      EFD_PROF_SCOPE("testbed.task");
      sim.reset();
      arena.reset();
      fn(i, sim, arena);
      EFD_COUNTER_INC("testbed.tasks_run");
      EFD_COUNTER_INC("testbed.sim_reuses");
    }
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        sim::Simulator sim;  // worker-lifetime engine, reset between tasks
        core::Arena arena;   // worker-lifetime scenario storage, ditto
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n_tasks) return;
          try {
            EFD_TRACE_SPAN("testbed", "task");
            EFD_PROF_SCOPE("testbed.task");
            sim.reset();
            arena.reset();
            fn(i, sim, arena);
            EFD_COUNTER_INC("testbed.tasks_run");
            EFD_COUNTER_INC("testbed.sim_reuses");
          } catch (...) {
            const std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
}

int ParallelRunner::env_threads() {
  // 0 = "unset" (sequential legacy sweep); anything unparsable, empty,
  // zero or negative degrades to the same. Absurd values clamp: a worker
  // pool past 4096 threads is a typo, not a request.
  return core::env_count("EFD_BENCH_THREADS", 0, 4096);
}

}  // namespace efd::testbed

#pragma once

// CampusWorld — a multi-board campus built onto the sharded event engine
// (DESIGN.md §14, §15). One distribution board = one engine cell: the
// board's PowerGrid, PlcChannel and PlcNetwork (plus, at WiFi-bridge
// endpoints, a small WifiNetwork) live entirely inside the cell, touched
// only by the shard thread that owns it. The ONLY cross-board interaction
// is a BoundaryEvent through a gateway station, so the campus digest is
// byte-identical for every EFD_SHARDS value — the property the scale bench
// and the sharded tier-1 tests pin.
//
// Fault domains (DESIGN.md §15): a CampusRunConfig may carry a FaultPlan
// over the board-level kinds (kBoardBlackout / kBoardBrownout /
// kLinkPartition). Each board gets its own FaultInjector scheduled on the
// board's cell clock at absolute plan times, so the per-board fault traces
// and digests stay byte-identical across any shard count. Partitioned WiFi
// bridges fail over to the powerline backbone through a per-board
// hybrid::GatewayFailover; partitioned backbone crossings drop traffic
// deterministically.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/grid/campus.hpp"
#include "src/net/packet.hpp"
#include "src/sim/checkpoint.hpp"
#include "src/sim/sharded.hpp"
#include "src/sim/time.hpp"

namespace efd::testbed {

struct CampusRunConfig {
  grid::CampusConfig campus;
  int n_shards = 1;
  sim::Time duration = sim::milliseconds(200);
  /// Mean spacing of per-board traffic ticks (each offers one packet).
  sim::Time traffic_interval = sim::milliseconds(4);
  /// Probability a generated packet targets a neighboring board (one
  /// boundary crossing; the campus does not route multi-hop).
  double p_remote = 0.3;
  /// Model WiFi-bridge crossings as a real local WiFi hop (AP -> roof
  /// radio) before the boundary event; false posts straight from the PLC
  /// gateway.
  bool with_wifi = true;
  /// Board-domain fault plan (kBoardBlackout/kBoardBrownout target a board
  /// index, kLinkPartition a topology link index). Empty = fault-free; the
  /// fault-free digest is unchanged by this feature.
  fault::FaultPlan faults;
  /// Soft per-mailbox capacity forwarded to the engine (0 = unbounded).
  std::size_t mailbox_capacity = 0;
  /// Shard-watchdog wall-clock budget (0 disables). The default is far
  /// above any legitimate window's wall time, so it only fires on real
  /// stalls/deadlocks — failing CI fast instead of hanging it.
  std::int64_t watchdog_budget_ns = 30'000'000'000;
};

struct CampusResult {
  /// Order-exact fold of every board's delivery and boundary streams,
  /// combined in board order. Invariant across shard counts and across
  /// reset-and-rebuild replays.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;            ///< engine events across all shards
  std::uint64_t packets_local = 0;     ///< offered, intra-board
  std::uint64_t packets_remote = 0;    ///< offered, cross-board
  std::uint64_t delivered = 0;         ///< handed to a destination station
  std::uint64_t boundary_posted = 0;
  std::uint64_t boundary_delivered = 0;
  int n_boards = 0;
  int n_shards = 0;
  std::vector<sim::ShardedSimulator::ShardStats> shards;
  /// max/mean of per-shard busy wall time; 1.0 = perfectly balanced.
  double load_balance = 1.0;

  /// Per-board digest stream values, in board order — the fault-domain
  /// determinism artifact (byte-identical across shard counts).
  std::vector<std::uint64_t> board_digests;
  /// Concatenated per-board fault/recovery traces in board order; empty on
  /// fault-free runs. Byte-identical across shard counts.
  std::string fault_trace;
  std::uint64_t fault_events = 0;      ///< trace records across all boards
  std::uint64_t dead_drops = 0;        ///< ingress dropped at dead boards
  std::uint64_t partition_drops = 0;   ///< egress dropped at kDown crossings
  std::uint64_t failovers = 0;         ///< bridge -> backbone reroutes
  std::uint64_t failbacks = 0;         ///< primary-path restorations
  std::uint64_t backpressure_waits = 0;
  std::uint64_t mailbox_peak = 0;      ///< high-water boundary-mailbox depth
};

/// Fingerprint of a campus at a quiescent horizon: the engine checkpoint
/// plus the campus-level digest. Restore is reset-and-replay
/// (CampusWorld::restore), verified against both digests.
struct CampusCheckpoint {
  sim::Time t{};                  ///< horizon the checkpoint was taken at
  sim::EngineCheckpoint engine;
  std::uint64_t world_digest = 0; ///< CampusResult::digest at t
};

class CampusWorld {
 public:
  explicit CampusWorld(const CampusRunConfig& cfg);
  ~CampusWorld();

  /// Advance the whole campus through cfg.duration.
  void run();
  /// Advance through `end` (inclusive); callable repeatedly with
  /// increasing horizons — run(); is run_until(cfg.duration).
  void run_until(sim::Time end);

  [[nodiscard]] CampusResult result() const;

  /// Fingerprint the quiescent campus (between run_until calls).
  [[nodiscard]] CampusCheckpoint checkpoint() const;

  /// Reset-and-replay restore: drop all engine/world state, rebuild, and
  /// deterministically replay to cp.t. Returns true when both the engine
  /// fingerprint and the campus digest match the checkpoint (FNV-1a
  /// verified); on false the campus diverged (or cp was corrupted) and the
  /// world is left at cp.t for inspection.
  [[nodiscard]] bool restore(const CampusCheckpoint& cp);

  /// Reset the engine and rebuild every board world from scratch; a
  /// subsequent run() replays the identical campus (same digest).
  void reset_and_rebuild();

  [[nodiscard]] sim::ShardedSimulator& engine() { return *engine_; }
  [[nodiscard]] const grid::CampusTopology& topology() const { return topo_; }

 private:
  struct BoardWorld;

  void build();
  /// Slice cfg_.faults into this board's specs and wire its injector,
  /// effect hooks and gateway failover.
  void wire_faults(BoardWorld& bw);
  void tick(BoardWorld& bw);
  void schedule_tick(BoardWorld& bw);
  /// Egress half of a crossing: forward `p` (flow marks the final station)
  /// out of `bw`, over the WiFi hop when the crossing is a bridge.
  void egress(BoardWorld& bw, const net::Packet& p);
  void post_crossing(BoardWorld& bw, const net::Packet& p, int dst_board);

  CampusRunConfig cfg_;
  grid::CampusTopology topo_;
  std::unique_ptr<sim::ShardedSimulator> engine_;
  std::vector<std::unique_ptr<BoardWorld>> boards_;
};

/// Build, run and summarize one campus in a single call.
[[nodiscard]] CampusResult run_campus(const CampusRunConfig& cfg);

}  // namespace efd::testbed

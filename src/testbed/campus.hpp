#pragma once

// CampusWorld — a multi-board campus built onto the sharded event engine
// (DESIGN.md §14). One distribution board = one engine cell: the board's
// PowerGrid, PlcChannel and PlcNetwork (plus, at WiFi-bridge endpoints, a
// small WifiNetwork) live entirely inside the cell, touched only by the
// shard thread that owns it. The ONLY cross-board interaction is a
// BoundaryEvent through a gateway station, so the campus digest is
// byte-identical for every EFD_SHARDS value — the property the scale bench
// and the sharded tier-1 tests pin.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/grid/campus.hpp"
#include "src/net/packet.hpp"
#include "src/sim/sharded.hpp"
#include "src/sim/time.hpp"

namespace efd::testbed {

struct CampusRunConfig {
  grid::CampusConfig campus;
  int n_shards = 1;
  sim::Time duration = sim::milliseconds(200);
  /// Mean spacing of per-board traffic ticks (each offers one packet).
  sim::Time traffic_interval = sim::milliseconds(4);
  /// Probability a generated packet targets a neighboring board (one
  /// boundary crossing; the campus does not route multi-hop).
  double p_remote = 0.3;
  /// Model WiFi-bridge crossings as a real local WiFi hop (AP -> roof
  /// radio) before the boundary event; false posts straight from the PLC
  /// gateway.
  bool with_wifi = true;
};

struct CampusResult {
  /// Order-exact fold of every board's delivery and boundary streams,
  /// combined in board order. Invariant across shard counts and across
  /// reset-and-rebuild replays.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;            ///< engine events across all shards
  std::uint64_t packets_local = 0;     ///< offered, intra-board
  std::uint64_t packets_remote = 0;    ///< offered, cross-board
  std::uint64_t delivered = 0;         ///< handed to a destination station
  std::uint64_t boundary_posted = 0;
  std::uint64_t boundary_delivered = 0;
  int n_boards = 0;
  int n_shards = 0;
  std::vector<sim::ShardedSimulator::ShardStats> shards;
  /// max/mean of per-shard busy wall time; 1.0 = perfectly balanced.
  double load_balance = 1.0;
};

class CampusWorld {
 public:
  explicit CampusWorld(const CampusRunConfig& cfg);
  ~CampusWorld();

  /// Advance the whole campus through cfg.duration.
  void run();

  [[nodiscard]] CampusResult result() const;

  /// Reset the engine and rebuild every board world from scratch; a
  /// subsequent run() replays the identical campus (same digest).
  void reset_and_rebuild();

  [[nodiscard]] sim::ShardedSimulator& engine() { return *engine_; }
  [[nodiscard]] const grid::CampusTopology& topology() const { return topo_; }

 private:
  struct BoardWorld;

  void build();
  void tick(BoardWorld& bw);
  void schedule_tick(BoardWorld& bw);
  /// Egress half of a crossing: forward `p` (flow marks the final station)
  /// out of `bw`, over the WiFi hop when the crossing is a bridge.
  void egress(BoardWorld& bw, const net::Packet& p);
  void post_crossing(BoardWorld& bw, const net::Packet& p, int dst_board);

  CampusRunConfig cfg_;
  grid::CampusTopology topo_;
  std::unique_ptr<sim::ShardedSimulator> engine_;
  std::vector<std::unique_ptr<BoardWorld>> boards_;
};

/// Build, run and summarize one campus in a single call.
[[nodiscard]] CampusResult run_campus(const CampusRunConfig& cfg);

}  // namespace efd::testbed

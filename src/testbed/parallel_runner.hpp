#pragma once

#include <functional>
#include <vector>

#include "src/core/arena.hpp"
#include "src/sim/simulator.hpp"

namespace efd::testbed {

/// Deterministic fan-out of independent experiment closures across a small
/// pool of std::jthread workers.
///
/// Contract: every task is self-contained — it constructs its own
/// sim::Simulator / Testbed from a deterministic per-task seed and touches
/// no shared mutable state (the grid/channel caches are mutable and not
/// thread-safe, so they must stay thread-confined). Task `i`'s result is
/// then a pure function of `i`, results are collected by index, and a run
/// is bit-identical for ANY worker count, including 1 (the serial order).
/// That property is what makes the link-sweep benches parallelizable
/// without perturbing the reproduction: parallelism changes wall-clock
/// only, never output.
class ParallelRunner {
 public:
  /// `n_threads <= 0` uses the hardware concurrency.
  explicit ParallelRunner(int n_threads = 0);

  [[nodiscard]] int thread_count() const { return n_threads_; }

  /// Run `fn(i)` for every `i` in [0, n_tasks). Tasks are claimed from an
  /// atomic counter, so scheduling is dynamic but results must not depend
  /// on claim order (see the class contract). The first exception thrown
  /// by a task is rethrown here after all workers drain.
  void run(int n_tasks, const std::function<void(int)>& fn) const;

  /// Map variant: `results[i] = fn(i)`.
  template <typename R>
  [[nodiscard]] std::vector<R> map(int n_tasks,
                                   const std::function<R(int)>& fn) const {
    std::vector<R> results(static_cast<std::size_t>(n_tasks));
    run(n_tasks, [&](int i) { results[static_cast<std::size_t>(i)] = fn(i); });
    return results;
  }

  /// Like run(), but each worker owns ONE sim::Simulator for its whole
  /// lifetime and hands it to every task after a reset(): the event slab,
  /// heap, and free-list capacity are reused across experiments instead of
  /// being reconstructed per task. Simulator::reset restores the
  /// as-constructed state (clock, FIFO sequence, dispatch count), so task
  /// results — and therefore the collected output — are bit-identical to
  /// the construct-per-task formulation for any worker count.
  void run_with_sim(
      int n_tasks, const std::function<void(int, sim::Simulator&)>& fn) const;

  /// Arena variant: alongside its Simulator, each worker owns ONE
  /// core::Arena, reset() before every task. Scenario-sized object graphs
  /// built from it are torn down wholesale, so after warm-up a task's
  /// construction/teardown performs zero heap allocations (the proptest
  /// zero-alloc pins). Anything the task allocates from the arena must die
  /// with the task — the next task's reset() reclaims the memory.
  void run_with_sim(
      int n_tasks,
      const std::function<void(int, sim::Simulator&, core::Arena&)>& fn) const;

  /// Map variant of run_with_sim: `results[i] = fn(i, worker_sim)`.
  template <typename R>
  [[nodiscard]] std::vector<R> map_with_sim(
      int n_tasks, const std::function<R(int, sim::Simulator&)>& fn) const {
    std::vector<R> results(static_cast<std::size_t>(n_tasks));
    run_with_sim(n_tasks, [&](int i, sim::Simulator& sim) {
      results[static_cast<std::size_t>(i)] = fn(i, sim);
    });
    return results;
  }

  /// Map variant of the arena overload: `results[i] = fn(i, sim, arena)`.
  /// Results are copied out of the task, so they must not themselves hold
  /// arena-backed storage (Scenario's copy constructor escapes to the heap;
  /// see ArenaAllocator::select_on_container_copy_construction).
  template <typename R>
  [[nodiscard]] std::vector<R> map_with_sim(
      int n_tasks,
      const std::function<R(int, sim::Simulator&, core::Arena&)>& fn) const {
    std::vector<R> results(static_cast<std::size_t>(n_tasks));
    run_with_sim(n_tasks,
                 [&](int i, sim::Simulator& sim, core::Arena& arena) {
                   results[static_cast<std::size_t>(i)] = fn(i, sim, arena);
                 });
    return results;
  }

  /// Worker count requested via the EFD_BENCH_THREADS environment variable;
  /// 0 when unset or unparsable. The figure benches treat 0 as "legacy
  /// shared-testbed sequential sweep" (byte-identical to the seed output)
  /// and any n >= 1 as the per-task-testbed decomposition run on n workers
  /// (whose output is identical for every n, per the class contract).
  [[nodiscard]] static int env_threads();

 private:
  int n_threads_;
};

}  // namespace efd::testbed

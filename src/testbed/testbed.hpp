#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/grid/power_grid.hpp"
#include "src/plc/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/wifi/network.hpp"

namespace efd::testbed {

/// Which PLC generation a stack runs (the paper validates its findings on
/// both HomePlug AV and HPAV500 hardware, §3.1).
enum class PlcGeneration { kHpav, kHpav500 };

/// Reproduction of the paper's Fig. 2 testbed: 19 stations (ids 0-18) on
/// one 70 m x 40 m office floor, wired to two distribution boards (B1 on
/// the right serving stations 0-11, B2 on the left serving 12-18) that are
/// only connected through a long basement run. Each board hosts one PLC
/// logical network with a statically pinned CCo (stations 11 and 15).
///
/// The same floor carries the WiFi deployment (one AR9220-like interface
/// per station) and, in parallel, an HPAV500 PLC stack over the identical
/// wiring for the validation experiments.
class Testbed {
 public:
  static constexpr int kStations = 19;

  struct Config {
    std::uint64_t seed = 42;
    plc::PlcNetwork::Config plc;
    wifi::WifiNetwork::Config wifi;
    /// Instantiate the HPAV500 stack too (costs a second set of MACs).
    bool with_hpav500 = true;
  };

  Testbed(sim::Simulator& simulator, Config config);
  explicit Testbed(sim::Simulator& simulator) : Testbed(simulator, Config{}) {}

  [[nodiscard]] grid::PowerGrid& grid() { return grid_; }
  [[nodiscard]] const grid::PowerGrid& grid() const { return grid_; }

  [[nodiscard]] plc::PlcChannel& plc_channel(PlcGeneration g = PlcGeneration::kHpav);

  /// The logical network a station belongs to, for the given generation.
  [[nodiscard]] plc::PlcNetwork& plc_network_of(net::StationId id,
                                                PlcGeneration g = PlcGeneration::kHpav);

  [[nodiscard]] plc::PlcStation& plc_station(net::StationId id,
                                             PlcGeneration g = PlcGeneration::kHpav);

  [[nodiscard]] wifi::WifiNetwork& wifi() { return *wifi_; }
  [[nodiscard]] wifi::WifiMac& wifi_station(net::StationId id) {
    return wifi_->station(id);
  }

  [[nodiscard]] bool same_plc_network(net::StationId a, net::StationId b) const;

  /// All directed intra-network station pairs — the testbed's PLC links
  /// ("in total, 144 links are formed", §3.1).
  [[nodiscard]] std::vector<std::pair<net::StationId, net::StationId>> plc_links() const;

  /// All directed station pairs (for the WiFi-vs-PLC comparison, which is
  /// restricted to pairs that can hold a PLC link).
  [[nodiscard]] std::vector<std::pair<net::StationId, net::StationId>> all_pairs() const;

  /// Grid outlet node of a station.
  [[nodiscard]] int outlet_of(net::StationId id) const {
    return outlets_[static_cast<std::size_t>(id)];
  }

  /// Line-of-floor distance between two stations (meters).
  [[nodiscard]] double floor_distance_m(net::StationId a, net::StationId b) const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::uint64_t seed() const { return cfg_.seed; }

 private:
  struct PlcStack {
    std::unique_ptr<plc::PlcChannel> channel;
    std::unique_ptr<plc::PlcNetwork> net_b1;  ///< stations 0-11, CCo 11
    std::unique_ptr<plc::PlcNetwork> net_b2;  ///< stations 12-18, CCo 15
  };

  void build_grid();
  PlcStack build_plc_stack(const plc::PhyParams& phy, std::uint64_t salt);

  sim::Simulator& sim_;
  Config cfg_;
  grid::PowerGrid grid_;
  std::vector<int> outlets_;  ///< station id -> grid node
  PlcStack hpav_;
  PlcStack hpav500_;
  std::unique_ptr<wifi::WifiNetwork> wifi_;
};

/// Floor coordinates of the 19 stations (meters), approximating Fig. 2.
[[nodiscard]] std::pair<double, double> station_position(net::StationId id);

/// True for stations wired to board B1 (the right-hand network, CCo 11).
[[nodiscard]] bool on_board_b1(net::StationId id);

}  // namespace efd::testbed

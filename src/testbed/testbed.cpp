#include "src/testbed/testbed.hpp"

#include <cassert>
#include <cmath>

namespace efd::testbed {

namespace {

struct Pos { double x, y; };

/// Approximate floor positions from Fig. 2 (70 m x 40 m office floor;
/// board B2 serves the left wing, B1 the right wing).
constexpr Pos kPositions[Testbed::kStations] = {
    /* 0*/ {37, 25}, /* 1*/ {32, 15}, /* 2*/ {44, 25}, /* 3*/ {49, 35},
    /* 4*/ {53, 25}, /* 5*/ {58, 35}, /* 6*/ {53, 5},  /* 7*/ {46, 5},
    /* 8*/ {60, 5},  /* 9*/ {65, 15}, /*10*/ {68, 35}, /*11*/ {69, 25},
    /*12*/ {6, 26},  /*13*/ {10, 32}, /*14*/ {12, 26}, /*15*/ {16, 32},
    /*16*/ {22, 32}, /*17*/ {18, 26}, /*18*/ {26, 28},
};

}  // namespace

std::pair<double, double> station_position(net::StationId id) {
  assert(id >= 0 && id < Testbed::kStations);
  const Pos& p = kPositions[static_cast<std::size_t>(id)];
  return {p.x, p.y};
}

bool on_board_b1(net::StationId id) { return id <= 11; }

Testbed::Testbed(sim::Simulator& simulator, Config config)
    : sim_(simulator), cfg_(config) {
  build_grid();
  hpav_ = build_plc_stack(plc::PhyParams::hpav(), 0x0aULL);
  if (cfg_.with_hpav500) {
    hpav500_ = build_plc_stack(plc::PhyParams::hpav500(), 0x500ULL);
  }

  sim::Rng rng{cfg_.seed};
  wifi_ = std::make_unique<wifi::WifiNetwork>(sim_, rng.fork(0x31f1ULL), cfg_.wifi);
  // The concrete core between the wings: no cross-wing WiFi link survives
  // it, matching the paper's observation that every WiFi-connected pair is
  // also PLC-connected (§4.1).
  wifi_->channel().add_wall(30.0, 28.0);
  for (net::StationId id = 0; id < kStations; ++id) {
    const auto [x, y] = station_position(id);
    wifi_->add_station(id, x, y);
  }
}

void Testbed::build_grid() {
  sim::Rng rng{cfg_.seed ^ 0x9219ULL};
  std::uint64_t seed_counter = cfg_.seed;
  const auto next_seed = [&] { return ++seed_counter * 0x9e3779b97f4a7c15ULL; };

  // --- Nodes: boards, corridor junctions, station outlets ----------------
  const int b1 = grid_.add_node("board-B1");
  const int b2 = grid_.add_node("board-B2");
  const int basement = grid_.add_node("basement");

  // Right wing (B1): a long corridor trunk with four junction boxes.
  const int j1 = grid_.add_node("B1-J1");
  const int j2 = grid_.add_node("B1-J2");
  const int j3 = grid_.add_node("B1-J3");
  const int j4 = grid_.add_node("B1-J4");
  grid_.add_cable(b1, j1, 20.0);
  grid_.add_cable(j1, j2, 18.0);
  grid_.add_cable(j2, j3, 16.0);
  // J4 hangs off a sub-panel: lumped insertion loss makes the far cluster
  // reachable but poor (the "30-100 m can be good or bad" regime of Fig. 7).
  grid_.add_cable(j3, j4, 20.0, 6.0);

  // Left wing (B2): a shorter trunk with three junction boxes.
  const int k1 = grid_.add_node("B2-K1");
  const int k2 = grid_.add_node("B2-K2");
  const int k3 = grid_.add_node("B2-K3");
  grid_.add_cable(b2, k1, 12.0);
  grid_.add_cable(k1, k2, 14.0);
  grid_.add_cable(k2, k3, 16.0, 4.0);

  // Inter-board basement run: electrically present but heavily attenuated
  // (>200 m plus two panel crossings) — cross-board PLC is hopeless (§3.1).
  grid_.add_cable(b1, basement, 100.0, 25.0);
  grid_.add_cable(basement, b2, 100.0, 25.0);

  // Station outlets: (junction, branch length). Layout tuned so intra-
  // network cable distances span ~15-95 m.
  struct OutletSpec { int junction; double branch_m; };
  const OutletSpec specs[kStations] = {
      /* 0*/ {j4, 6.0},  /* 1*/ {j4, 9.0},  /* 2*/ {j4, 4.0},  /* 3*/ {j3, 5.0},
      /* 4*/ {j3, 3.0},  /* 5*/ {j2, 3.0},  /* 6*/ {j2, 7.0},  /* 7*/ {j3, 8.0},
      /* 8*/ {j2, 4.0},  /* 9*/ {j1, 6.0},  /*10*/ {j1, 4.0},  /*11*/ {j1, 2.0},
      /*12*/ {k1, 6.0},  /*13*/ {k1, 3.0},  /*14*/ {k2, 7.0},  /*15*/ {k2, 2.0},
      /*16*/ {k3, 4.0},  /*17*/ {k2, 5.0},  /*18*/ {k3, 8.0},
  };
  outlets_.resize(kStations);
  for (int s = 0; s < kStations; ++s) {
    const int node = grid_.add_node("outlet-" + std::to_string(s));
    grid_.add_cable(specs[s].junction, node, specs[s].branch_m);
    outlets_[static_cast<std::size_t>(s)] = node;
  }

  // --- Appliances ---------------------------------------------------------
  using grid::ApplianceType;
  // A workstation + monitor at every station outlet (it is an office).
  for (int s = 0; s < kStations; ++s) {
    const int node = outlets_[static_cast<std::size_t>(s)];
    grid_.add_appliance(make_appliance(ApplianceType::kWorkstation, node, next_seed()));
    grid_.add_appliance(make_appliance(ApplianceType::kMonitor, node, next_seed()));
  }
  // Lighting circuits on every junction: the whole wing's lights switch off
  // at 21:00 sharp (the Fig. 12 step).
  for (int j : {j1, j2, j3, j4, k1, k2, k3}) {
    grid_.add_appliance(make_appliance(ApplianceType::kLightBank, j, next_seed()));
  }
  // Kitchen cluster near J2 (right wing): fridge + microwave + coffee
  // machine — the heavy, noisy, low-impedance loads that create asymmetry
  // for the stations plugged nearby (5, 6, 8).
  const int kitchen = grid_.add_node("kitchen");
  grid_.add_cable(j2, kitchen, 3.0);
  grid_.add_appliance(make_appliance(ApplianceType::kFridge, kitchen, next_seed()));
  grid_.add_appliance(make_appliance(ApplianceType::kMicrowave, kitchen, next_seed()));
  grid_.add_appliance(make_appliance(ApplianceType::kCoffeeMachine, kitchen, next_seed()));
  // Kitchenette in the left wing near K3.
  const int kitchenette = grid_.add_node("kitchenette");
  grid_.add_cable(k3, kitchenette, 2.0);
  grid_.add_appliance(make_appliance(ApplianceType::kCoffeeMachine, kitchenette, next_seed()));
  grid_.add_appliance(make_appliance(ApplianceType::kFridge, kitchenette, next_seed()));
  // Print rooms.
  grid_.add_appliance(make_appliance(ApplianceType::kPrinter, j3, next_seed()));
  grid_.add_appliance(make_appliance(ApplianceType::kPrinter, k2, next_seed()));
  // HVAC fan-coils at the boards.
  grid_.add_appliance(make_appliance(ApplianceType::kHvac, b1, next_seed()));
  grid_.add_appliance(make_appliance(ApplianceType::kHvac, b2, next_seed()));
  // A few phone chargers left plugged in around the floor.
  for (int s : {1, 4, 9, 13, 16}) {
    grid_.add_appliance(make_appliance(ApplianceType::kPhoneCharger,
                                       outlets_[static_cast<std::size_t>(s)],
                                       next_seed()));
  }
  // Structural wiring stubs: unterminated branch lines at junction boxes.
  // They create static multipath notches around the clock, so link quality
  // differences persist at night (§6.2's night traces still show bad links
  // in the tens of Mb/s). The far J4/K3 clusters get the worst wiring.
  for (int j : {j2, j3, k2}) {
    grid_.add_appliance(make_appliance(ApplianceType::kPassiveStub, j, next_seed()));
  }
  for (int j : {j4, k3}) {
    grid_.add_appliance(make_appliance(ApplianceType::kPassiveStub, j, next_seed()));
    grid_.add_appliance(make_appliance(ApplianceType::kPassiveStub, j, next_seed()));
  }
}

Testbed::PlcStack Testbed::build_plc_stack(const plc::PhyParams& phy,
                                           std::uint64_t salt) {
  PlcStack stack;
  stack.channel = std::make_unique<plc::PlcChannel>(grid_, phy);
  for (int s = 0; s < kStations; ++s) {
    stack.channel->attach_station(s, outlets_[static_cast<std::size_t>(s)]);
  }
  sim::Rng rng{cfg_.seed ^ salt};
  stack.net_b1 = std::make_unique<plc::PlcNetwork>(sim_, *stack.channel,
                                                   rng.fork(1), cfg_.plc);
  stack.net_b2 = std::make_unique<plc::PlcNetwork>(sim_, *stack.channel,
                                                   rng.fork(2), cfg_.plc);
  for (int s = 0; s < kStations; ++s) {
    if (on_board_b1(s)) {
      stack.net_b1->add_station(s, outlets_[static_cast<std::size_t>(s)]);
    } else {
      stack.net_b2->add_station(s, outlets_[static_cast<std::size_t>(s)]);
    }
  }
  stack.net_b1->set_cco(11);
  stack.net_b2->set_cco(15);
  return stack;
}

plc::PlcChannel& Testbed::plc_channel(PlcGeneration g) {
  if (g == PlcGeneration::kHpav) return *hpav_.channel;
  assert(cfg_.with_hpav500 && "testbed built without the HPAV500 stack");
  return *hpav500_.channel;
}

plc::PlcNetwork& Testbed::plc_network_of(net::StationId id, PlcGeneration g) {
  PlcStack& stack = g == PlcGeneration::kHpav ? hpav_ : hpav500_;
  assert(stack.net_b1 && "testbed built without this PLC stack");
  return on_board_b1(id) ? *stack.net_b1 : *stack.net_b2;
}

plc::PlcStation& Testbed::plc_station(net::StationId id, PlcGeneration g) {
  return plc_network_of(id, g).station(id);
}

bool Testbed::same_plc_network(net::StationId a, net::StationId b) const {
  return on_board_b1(a) == on_board_b1(b);
}

std::vector<std::pair<net::StationId, net::StationId>> Testbed::plc_links() const {
  std::vector<std::pair<net::StationId, net::StationId>> links;
  for (int a = 0; a < kStations; ++a) {
    for (int b = 0; b < kStations; ++b) {
      if (a != b && same_plc_network(a, b)) links.emplace_back(a, b);
    }
  }
  return links;
}

std::vector<std::pair<net::StationId, net::StationId>> Testbed::all_pairs() const {
  std::vector<std::pair<net::StationId, net::StationId>> pairs;
  for (int a = 0; a < kStations; ++a) {
    for (int b = 0; b < kStations; ++b) {
      if (a != b) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

double Testbed::floor_distance_m(net::StationId a, net::StationId b) const {
  const auto [ax, ay] = station_position(a);
  const auto [bx, by] = station_position(b);
  return std::hypot(ax - bx, ay - by);
}

}  // namespace efd::testbed

#include "src/obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace efd::obs {

namespace prof_detail {

namespace {
bool env_enabled() {
  const char* env = std::getenv("EFD_PROF");
  return env == nullptr || std::string_view(env) != "0";
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};
thread_local ProfShard* t_shard = nullptr;

ProfShard& make_shard() { return ProfileRegistry::instance().shard(); }

}  // namespace prof_detail

void set_prof_enabled(bool on) {
  prof_detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t prof_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

ProfileRegistry& ProfileRegistry::instance() {
  static ProfileRegistry* registry = new ProfileRegistry();  // never destroyed
  return *registry;
}

ProfShard& ProfileRegistry::shard() {
  if (prof_detail::t_shard != nullptr) return *prof_detail::t_shard;
  const std::scoped_lock lock(mutex_);
  shards_.push_back(std::make_unique<ProfShard>());
  prof_detail::t_shard = shards_.back().get();
  return *prof_detail::t_shard;
}

namespace {

/// Scan `parent`'s child list (or the root list) for `name` — pointer
/// equality first (all call sites pass literals or the static dispatch-table
/// names, so this is the common hit), content equality as the fallback that
/// merges equal literals from different TUs.
std::int32_t find_child(const ProfShard& s, std::int32_t parent,
                        const char* name) {
  std::int32_t i = parent < 0
                       ? s.root_head.load(std::memory_order_acquire)
                       : s.cells[static_cast<std::size_t>(parent)]
                             .first_child.load(std::memory_order_acquire);
  while (i >= 0) {
    const auto& c = s.cells[static_cast<std::size_t>(i)];
    if (c.name == name || std::strcmp(c.name, name) == 0) return i;
    i = c.next_sibling.load(std::memory_order_acquire);
  }
  return -1;
}

}  // namespace

std::int32_t ProfileRegistry::find_or_create(ProfShard& s, std::int32_t parent,
                                             const char* name) {
  const std::scoped_lock lock(mutex_);
  // Re-scan under the lock: another enter() on this thread cannot race us,
  // but the lock-free scan above may have run before a concurrent snapshot
  // settled; cheap and keeps the invariant in one place.
  const std::int32_t found = find_child(s, parent, name);
  if (found >= 0) return found;
  if (s.n_cells >= kMaxProfNodes) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "efd::obs: profile cell capacity (%d) exhausted; "
                   "'%s' dropped\n",
                   kMaxProfNodes, name);
    }
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  const std::int32_t idx = s.n_cells++;
  auto& cell = s.cells[static_cast<std::size_t>(idx)];
  cell.name = name;
  cell.parent = parent;
  // Publish at the head of the sibling list with a release store so the
  // name/parent writes above are visible to lock-free readers.
  auto& head = parent < 0
                   ? s.root_head
                   : s.cells[static_cast<std::size_t>(parent)].first_child;
  cell.next_sibling.store(head.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  head.store(idx, std::memory_order_release);
  return idx;
}

std::int32_t ProfileRegistry::enter(ProfShard& s, const char* name,
                                    std::int64_t start_ns) {
  const std::int32_t depth = s.depth.load(std::memory_order_relaxed);
  if (depth >= kMaxProfDepth) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  const std::int32_t parent =
      depth == 0 ? -1
                 : s.stack[static_cast<std::size_t>(depth - 1)].cell.load(
                       std::memory_order_relaxed);
  std::int32_t cell = find_child(s, parent, name);
  if (cell < 0) cell = find_or_create(s, parent, name);
  if (cell < 0) return -1;  // pool exhausted
  auto& frame = s.stack[static_cast<std::size_t>(depth)];
  frame.cell.store(cell, std::memory_order_relaxed);
  frame.start_ns.store(start_ns, std::memory_order_relaxed);
  s.depth.store(depth + 1, std::memory_order_release);
  return cell;
}

void ProfileRegistry::leave(ProfShard& s, std::int32_t cell,
                            std::int64_t start_ns, std::int64_t end_ns) {
  // Pop before accumulating: a snapshot racing this exit either sees the
  // open frame (elapsed-so-far) or the accumulated total, never both.
  const std::int32_t depth = s.depth.load(std::memory_order_relaxed);
  if (depth > 0) s.depth.store(depth - 1, std::memory_order_release);
  auto& c = s.cells[static_cast<std::size_t>(cell)];
  c.total_ns.fetch_add(end_ns - start_ns, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Mutable fold node keyed by name content under one parent.
ProfileNode* fold_child(ProfileNode& parent, const char* name) {
  for (auto& c : parent.children) {
    if (c.name == name) return &c;
  }
  parent.children.emplace_back();
  parent.children.back().name = name;
  return &parent.children.back();
}

struct ShardFold {
  const ProfShard* shard;
  int thread;
  std::vector<std::int64_t> open_extra_ns;  // per-cell still-open elapsed
};

void fold_level(ProfileNode& into, const ShardFold& f, std::int32_t head) {
  for (std::int32_t i = head; i >= 0;) {
    const auto& cell = f.shard->cells[static_cast<std::size_t>(i)];
    const std::int64_t total =
        cell.total_ns.load(std::memory_order_relaxed) +
        f.open_extra_ns[static_cast<std::size_t>(i)];
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (total != 0 || count != 0) {
      ProfileNode* node = fold_child(into, cell.name);
      node->total_ns += total;
      node->count += count;
      node->threads.push_back({f.thread, total, count});
      fold_level(*node, f,
                 cell.first_child.load(std::memory_order_acquire));
    }
    i = cell.next_sibling.load(std::memory_order_acquire);
  }
}

void finalize(ProfileNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.name < b.name;
            });
  std::int64_t children_ns = 0;
  for (auto& c : node.children) {
    finalize(c);
    children_ns += c.total_ns;
  }
  node.self_ns = std::max<std::int64_t>(0, node.total_ns - children_ns);
}

}  // namespace

ProfileSnapshot ProfileRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  const std::int64_t now = prof_now_ns();
  ProfileSnapshot snap;
  snap.enabled = prof_enabled();
  snap.threads = static_cast<int>(shards_.size());
  snap.root.name = "(root)";
  std::int64_t max_thread_top_ns = 0;
  for (std::size_t t = 0; t < shards_.size(); ++t) {
    const ProfShard& s = *shards_[t];
    snap.dropped += s.dropped.load(std::memory_order_relaxed);
    ShardFold f{&s, static_cast<int>(t),
                std::vector<std::int64_t>(
                    static_cast<std::size_t>(kMaxProfNodes), 0)};
    // Credit still-open frames with their elapsed-so-far: this is what makes
    // the bench root total track wall clock while the outermost scope is
    // still alive at snapshot (the JsonReporter destructor), and what makes
    // unbalanced usage degrade gracefully instead of vanishing.
    const std::int32_t depth = s.depth.load(std::memory_order_acquire);
    for (std::int32_t j = 0; j < depth; ++j) {
      const auto& frame = s.stack[static_cast<std::size_t>(j)];
      const std::int32_t cell = frame.cell.load(std::memory_order_relaxed);
      const std::int64_t start =
          frame.start_ns.load(std::memory_order_relaxed);
      if (cell >= 0 && now > start) {
        f.open_extra_ns[static_cast<std::size_t>(cell)] += now - start;
      }
    }
    fold_level(snap.root, f, s.root_head.load(std::memory_order_acquire));
    std::int64_t top_ns = 0;
    for (std::int32_t i = s.root_head.load(std::memory_order_acquire); i >= 0;
         i = s.cells[static_cast<std::size_t>(i)].next_sibling.load(
             std::memory_order_acquire)) {
      top_ns += s.cells[static_cast<std::size_t>(i)].total_ns.load(
                    std::memory_order_relaxed) +
                f.open_extra_ns[static_cast<std::size_t>(i)];
    }
    snap.cpu_total_ns += top_ns;
    max_thread_top_ns = std::max(max_thread_top_ns, top_ns);
  }
  // The synthetic root reports the busiest single thread, not the CPU sum:
  // with the main thread's outermost scope covering the run this is the
  // wall clock; worker threads only widen cpu_total_ns.
  snap.root.total_ns = max_thread_top_ns;
  finalize(snap.root);
  return snap;
}

void ProfileRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  const std::int64_t now = prof_now_ns();
  for (const auto& s : shards_) {
    for (std::int32_t i = 0; i < s->n_cells; ++i) {
      auto& c = s->cells[static_cast<std::size_t>(i)];
      c.total_ns.store(0, std::memory_order_relaxed);
      c.count.store(0, std::memory_order_relaxed);
    }
    s->dropped.store(0, std::memory_order_relaxed);
    // Re-base open frames so scopes straddling the reset only report the
    // post-reset portion of their period.
    const std::int32_t depth = s->depth.load(std::memory_order_acquire);
    for (std::int32_t j = 0; j < depth; ++j) {
      s->stack[static_cast<std::size_t>(j)].start_ns.store(
          now, std::memory_order_relaxed);
    }
  }
}

const ProfileNode* ProfileSnapshot::find(std::string_view path) const {
  const ProfileNode* node = &root;
  while (!path.empty()) {
    const std::size_t slash = path.find('/');
    const std::string_view head = path.substr(0, slash);
    path = slash == std::string_view::npos ? std::string_view{}
                                           : path.substr(slash + 1);
    const ProfileNode* next = nullptr;
    for (const auto& c : node->children) {
      if (c.name == head) {
        next = &c;
        break;
      }
    }
    if (next == nullptr) return nullptr;
    node = next;
  }
  return node;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_node(std::string& out, const ProfileNode& node,
                 const std::string& pad) {
  out += "{\n";
  out += pad + "  \"name\": \"";
  append_escaped(out, node.name);
  out += "\",\n";
  out += pad + "  \"count\": " + std::to_string(node.count) + ",\n";
  out += pad + "  \"total_ns\": " + std::to_string(node.total_ns) + ",\n";
  out += pad + "  \"self_ns\": " + std::to_string(node.self_ns) + ",\n";
  out += pad + "  \"threads\": [";
  for (std::size_t i = 0; i < node.threads.size(); ++i) {
    const auto& t = node.threads[i];
    if (i != 0) out += ", ";
    out += "{\"thread\": " + std::to_string(t.thread) +
           ", \"total_ns\": " + std::to_string(t.total_ns) +
           ", \"count\": " + std::to_string(t.count) + "}";
  }
  out += "],\n";
  out += pad + "  \"children\": [";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "    ";
    append_node(out, node.children[i], pad + "    ");
  }
  out += node.children.empty() ? "]\n" : "\n" + pad + "  ]\n";
  out += pad + "}";
}

}  // namespace

std::string ProfileSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"enabled\": " + std::string(enabled ? "true" : "false") +
         ",\n";
  out += pad + "  \"threads\": " + std::to_string(threads) + ",\n";
  out += pad + "  \"dropped\": " + std::to_string(dropped) + ",\n";
  out += pad + "  \"cpu_total_ns\": " + std::to_string(cpu_total_ns) + ",\n";
  out += pad + "  \"root\": ";
  append_node(out, root, pad + "  ");
  out += "\n" + pad + "}";
  return out;
}

}  // namespace efd::obs

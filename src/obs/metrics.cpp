#include "src/obs/metrics.hpp"

#include "src/obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace efd::obs {

namespace detail {

namespace {
bool env_enabled() {
  const char* env = std::getenv("EFD_OBS");
  return env == nullptr || std::string_view(env) != "0";
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};
thread_local Shard* t_shard = nullptr;

Shard& make_shard() { return MetricsRegistry::instance().shard(); }

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Shard& MetricsRegistry::shard() {
  if (detail::t_shard != nullptr) return *detail::t_shard;
  const std::scoped_lock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  detail::t_shard = shards_.back().get();
  return *detail::t_shard;
}

namespace {

/// Shared registration: the names vector owns the string; the index map
/// keys view into it (stable — vectors of std::string never relocate the
/// character data on push_back for existing entries... but the string
/// objects themselves move, so key views must point at heap buffers; keep
/// keys viewing the stored std::string's data, which is stable under vector
/// growth only for non-SSO strings. To be safe regardless of SSO, the map
/// is rebuilt from the names vector on every insertion.)
int register_name(std::string_view name, std::vector<std::string>& names,
                  std::unordered_map<std::string_view, int>& index, int capacity,
                  const char* kind) {
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  if (static_cast<int>(names.size()) >= capacity) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "efd::obs: %s capacity (%d) exhausted; '%.*s' dropped\n",
                   kind, capacity, static_cast<int>(name.size()), name.data());
    }
    return -1;
  }
  names.emplace_back(name);
  index.clear();
  for (std::size_t i = 0; i < names.size(); ++i) {
    index.emplace(names[i], static_cast<int>(i));
  }
  return static_cast<int>(names.size()) - 1;
}

}  // namespace

CounterId MetricsRegistry::counter_id(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return CounterId{register_name(name, counter_names_, counter_index_,
                                 kMaxCounters, "counter")};
}

GaugeId MetricsRegistry::gauge_id(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return GaugeId{
      register_name(name, gauge_names_, gauge_index_, kMaxGauges, "gauge")};
}

HistogramId MetricsRegistry::histogram_id(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return HistogramId{register_name(name, histogram_names_, histogram_index_,
                                   kMaxHistograms, "histogram")};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    double total = 0.0;
    for (const auto& s : shards_) {
      total += s->gauges[i].load(std::memory_order_relaxed);
    }
    snap.gauges.emplace_back(gauge_names_[i], total);
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramData h;
    for (const auto& s : shards_) {
      h.count += s->histo_count[i].load(std::memory_order_relaxed);
      h.sum += s->histo_sum[i].load(std::memory_order_relaxed);
      for (int b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[static_cast<std::size_t>(b)] +=
            s->histo_buckets[i][static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
    }
    snap.histograms.emplace_back(histogram_names_[i], h);
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (const auto& s : shards_) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : s->gauges) g.store(0.0, std::memory_order_relaxed);
    for (auto& c : s->histo_count) c.store(0, std::memory_order_relaxed);
    for (auto& v : s->histo_sum) v.store(0.0, std::memory_order_relaxed);
    for (auto& row : s->histo_buckets) {
      for (auto& b : row) b.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json(int indent,
                                     std::string_view profile_json) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "    \"";
    append_escaped(out, counters[i].first);
    out += "\": " + std::to_string(counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "    \"";
    append_escaped(out, gauges[i].first);
    out += "\": ";
    append_double(out, gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    const auto& [name, h] = histograms[i];
    out += pad + "    \"";
    append_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    append_double(out, h.sum);
    // Only non-empty buckets, as {"le_exp": count}: key i means v < 2^i.
    out += ", \"buckets\": {";
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" + std::to_string(b) + "\": " + std::to_string(n);
    }
    out += "}}";
  }
  if (profile_json.empty()) {
    out += histograms.empty() ? "}\n" : "\n" + pad + "  }\n";
  } else {
    out += histograms.empty() ? "},\n" : "\n" + pad + "  },\n";
    out += pad + "  \"profile\": ";
    out += profile_json;
    out += "\n";
  }
  out += pad + "}";
  return out;
}

std::string snapshot_json(int indent) {
#if EFD_OBS_ENABLED
  // Embedding is conditional on the compile-time tier, not the runtime
  // switch: an EFD_OBS_ENABLED=0 build must not pull ProfileRegistry out of
  // the archive (the CI compile-out leg asserts no profiler symbols), while
  // a runtime-disabled profiler still reports {"enabled": false, ...} so
  // consumers can tell "off" from "absent".
  const std::string profile =
      ProfileRegistry::instance().snapshot().to_json(indent + 2);
  return MetricsRegistry::instance().snapshot().to_json(indent, profile);
#else
  return MetricsRegistry::instance().snapshot().to_json(indent);
#endif
}

}  // namespace efd::obs

#pragma once

// efd::obs — structured event tracing (DESIGN.md §8).
//
// A process-wide EventTracer recording instant events and RAII-scoped spans
// into a bounded ring buffer (oldest entries overwritten), flushed on demand
// as JSONL — one JSON object per line, Chrome-trace-style fields, so the
// output loads into trace viewers and greps cleanly. Disabled by default;
// when disabled, recording is one relaxed atomic load + branch.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#ifndef EFD_OBS_ENABLED
#define EFD_OBS_ENABLED 1
#endif

namespace efd::obs {

/// `cat`/`name` must be string literals (or otherwise outlive the tracer):
/// the ring stores pointers, never copies.
struct TraceEvent {
  std::int64_t ts_ns = 0;   ///< wall clock, relative to enable()
  std::int64_t dur_ns = -1; ///< span duration; -1 for instant events
  std::uint64_t tid = 0;    ///< hashed thread id
  char phase = 'i';         ///< 'X' complete span, 'i' instant
  const char* cat = "";
  const char* name = "";
};

class EventTracer {
 public:
  static EventTracer& instance();

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Start capturing into a fresh ring of `capacity` events.
  void enable(std::size_t capacity = 1 << 14);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since enable() on the tracer's steady clock.
  [[nodiscard]] std::int64_t now_ns() const;

  void instant(const char* cat, const char* name);
  void complete(const char* cat, const char* name, std::int64_t start_ns,
                std::int64_t end_ns);

  /// Write buffered events, oldest first, one JSON object per line; drains
  /// the ring. Returns the number of events written.
  std::size_t flush_jsonl(std::FILE* out);

  /// Events overwritten (ring full) since enable().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Buffered (unflushed) event count.
  [[nodiscard]] std::size_t buffered() const;

 private:
  EventTracer() = default;
  void record(const TraceEvent& ev);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;  ///< valid events in the ring
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII span: captures the start time at construction and records one
/// complete ('X') event at destruction. Snapshotting enabled-ness at
/// construction keeps begin/end pairing consistent across a mid-span
/// enable()/disable().
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name) {
    EventTracer& tracer = EventTracer::instance();
    if (tracer.enabled()) {
      cat_ = cat;
      name_ = name;
      start_ns_ = tracer.now_ns();
      active_ = true;
    }
  }
  ~ScopedSpan() {
    if (active_) {
      EventTracer& tracer = EventTracer::instance();
      tracer.complete(cat_, name_, start_ns_, tracer.now_ns());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_ = "";
  const char* name_ = "";
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace efd::obs

#include "src/obs/trace.hpp"

#include <functional>
#include <thread>

namespace efd::obs {

namespace {
std::uint64_t this_thread_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
}
}  // namespace

EventTracer& EventTracer::instance() {
  static EventTracer* tracer = new EventTracer();  // never destroyed
  return *tracer;
}

void EventTracer::enable(std::size_t capacity) {
  const std::scoped_lock lock(mutex_);
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void EventTracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::int64_t EventTracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventTracer::record(const TraceEvent& ev) {
  const std::scoped_lock lock(mutex_);
  if (ring_.empty()) return;
  if (size_ == ring_.size()) ++dropped_;
  ring_[head_] = ev;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

void EventTracer::instant(const char* cat, const char* name) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ts_ns = now_ns();
  ev.tid = this_thread_tid();
  ev.phase = 'i';
  ev.cat = cat;
  ev.name = name;
  record(ev);
}

void EventTracer::complete(const char* cat, const char* name,
                           std::int64_t start_ns, std::int64_t end_ns) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ts_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.tid = this_thread_tid();
  ev.phase = 'X';
  ev.cat = cat;
  ev.name = name;
  record(ev);
}

std::size_t EventTracer::flush_jsonl(std::FILE* out) {
  const std::scoped_lock lock(mutex_);
  const std::size_t n = size_;
  if (n == 0 || out == nullptr) {
    size_ = 0;
    return 0;
  }
  // Oldest event sits at head_ when the ring has wrapped, else at 0.
  const std::size_t first = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = ring_[(first + i) % ring_.size()];
    if (ev.phase == 'X') {
      std::fprintf(out,
                   "{\"ts_us\": %.3f, \"dur_us\": %.3f, \"tid\": %llu, "
                   "\"ph\": \"X\", \"cat\": \"%s\", \"name\": \"%s\"}\n",
                   static_cast<double>(ev.ts_ns) / 1e3,
                   static_cast<double>(ev.dur_ns) / 1e3,
                   static_cast<unsigned long long>(ev.tid), ev.cat, ev.name);
    } else {
      std::fprintf(out,
                   "{\"ts_us\": %.3f, \"tid\": %llu, \"ph\": \"i\", "
                   "\"cat\": \"%s\", \"name\": \"%s\"}\n",
                   static_cast<double>(ev.ts_ns) / 1e3,
                   static_cast<unsigned long long>(ev.tid), ev.cat, ev.name);
    }
  }
  head_ = 0;
  size_ = 0;
  return n;
}

std::uint64_t EventTracer::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::size_t EventTracer::buffered() const {
  const std::scoped_lock lock(mutex_);
  return size_;
}

}  // namespace efd::obs

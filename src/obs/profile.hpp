#pragma once

// efd::obs — scoped hierarchical profiler (DESIGN.md §13).
//
// EFD_PROF_SCOPE("name") opens a named period on the calling thread; nested
// scopes form a call tree. Each thread owns a fixed-capacity shard (same
// shard pattern as MetricsRegistry): a node pool holding one cell per
// distinct (parent, name) pair, aggregated online — a scope exit is two
// steady-clock reads plus two relaxed RMWs, never an allocation — and a
// shadow stack of open frames. ProfileRegistry::snapshot() folds every
// shard into one flamegraph-style tree (name, self/total ns, count,
// per-thread breakdown), which snapshot_json() embeds as "profile" so every
// BENCH_*.json carries the attribution of the run it measured.
//
// Open (not yet exited) frames are included in a snapshot with their
// elapsed-so-far, so the root of a bench whose outermost scope is still
// open reports ~the process wall clock. A snapshot taken while other
// threads are mid-scope is race-free (all hot fields are atomics) but
// approximate; quiescent snapshots are exact and deterministic in structure
// and counts.
//
// Three cost tiers, mirroring the metrics layer:
//  - EFD_OBS_ENABLED=0 at compile time: EFD_PROF_SCOPE expands to nothing
//    and ProfScope collapses to an empty class — zero instructions, no
//    profiler symbols in the binary.
//  - compiled in, runtime-disabled (set_prof_enabled(false) or EFD_PROF=0
//    in the environment): one relaxed atomic load + branch per scope.
//  - enabled: + two steady_clock reads, a sibling scan (first visit only a
//    mutex), and two relaxed fetch_adds.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef EFD_OBS_ENABLED
#define EFD_OBS_ENABLED 1
#endif

namespace efd::obs {

/// Fixed shard geometry, like the metrics shards: per-thread pools so the
/// hot path never resizes under concurrent snapshot readers. Scopes beyond
/// either limit are counted in `dropped` and otherwise ignored.
inline constexpr int kMaxProfNodes = 256;   ///< distinct (parent, name) cells
inline constexpr int kMaxProfDepth = 48;    ///< open scopes per thread

/// Nanoseconds since the process-wide profiling epoch (first use).
[[nodiscard]] std::int64_t prof_now_ns();

/// One thread's private call tree. Cells are append-only; linkage is
/// published with release stores and traversed with acquire loads, so a
/// snapshot from another thread sees a consistent (if slightly stale) tree.
struct ProfShard {
  struct Cell {
    const char* name = nullptr;  ///< set once before the cell is published
    std::int32_t parent = -1;    ///< cell index; -1 = thread root level
    std::atomic<std::int32_t> first_child{-1};
    std::atomic<std::int32_t> next_sibling{-1};
    std::atomic<std::int64_t> total_ns{0};
    std::atomic<std::uint64_t> count{0};
  };
  struct OpenFrame {
    std::atomic<std::int32_t> cell{-1};
    std::atomic<std::int64_t> start_ns{0};
  };

  std::array<Cell, static_cast<std::size_t>(kMaxProfNodes)> cells{};
  std::atomic<std::int32_t> root_head{-1};  ///< first top-level cell
  std::int32_t n_cells = 0;                 ///< guarded by registry mutex
  std::array<OpenFrame, static_cast<std::size_t>(kMaxProfDepth)> stack{};
  std::atomic<std::int32_t> depth{0};
  std::atomic<std::uint64_t> dropped{0};
};

/// Per-shard slice of a folded node (shard index = thread registration
/// order: 0 is the first thread that ever profiled, usually main).
struct ProfileThreadSlice {
  int thread = 0;
  std::int64_t total_ns = 0;
  std::uint64_t count = 0;
};

/// One node of the folded tree. Children are sorted by name; nodes from
/// different threads (or different string literals with equal content)
/// merge by name content along the path from the root.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;       ///< completed periods (open ones excluded)
  std::int64_t total_ns = 0;     ///< includes elapsed of still-open periods
  std::int64_t self_ns = 0;      ///< total minus children totals, >= 0
  std::vector<ProfileThreadSlice> threads;
  std::vector<ProfileNode> children;
};

/// Point-in-time fold of every shard. The synthetic root's total is the
/// busiest thread's top-level total — wall-clock-like when the outermost
/// scope of the main thread covers the run — while `cpu_total_ns` sums all
/// threads.
struct ProfileSnapshot {
  ProfileNode root;              ///< name "(root)", children = top scopes
  std::int64_t cpu_total_ns = 0;
  std::uint64_t dropped = 0;
  bool enabled = false;
  int threads = 0;

  /// Walk "a/b/c" paths from the root; nullptr when absent.
  [[nodiscard]] const ProfileNode* find(std::string_view path) const;

  /// Render as a JSON object. `indent` spaces prefix every line after the
  /// first, as in MetricsSnapshot::to_json, so the block nests inside the
  /// metrics snapshot document.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

class ProfileRegistry {
 public:
  static ProfileRegistry& instance();

  ProfileRegistry(const ProfileRegistry&) = delete;
  ProfileRegistry& operator=(const ProfileRegistry&) = delete;

  /// Fold every shard ever created into one tree (see ProfileSnapshot).
  [[nodiscard]] ProfileSnapshot snapshot() const;

  /// Zero every cell's totals/counts and re-base open frames to now; cell
  /// linkage (registered names) is kept. Tests use this to isolate
  /// workloads inside one process.
  void reset();

  /// The calling thread's shard, created and registered on first use.
  ProfShard& shard();

  /// Cold path of ProfScope: find-or-create the child of the current open
  /// cell named `name` (pointer match on the fast path, content match under
  /// the mutex on first visit) and push an open frame. Returns the cell
  /// index, or -1 when the scope was dropped (pool or stack exhausted).
  std::int32_t enter(ProfShard& s, const char* name, std::int64_t start_ns);

  /// Close the innermost open frame of `s` against cell `cell`.
  void leave(ProfShard& s, std::int32_t cell, std::int64_t start_ns,
             std::int64_t end_ns);

 private:
  ProfileRegistry() = default;

  std::int32_t find_or_create(ProfShard& s, std::int32_t parent,
                              const char* name);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ProfShard>> shards_;
};

namespace prof_detail {
extern std::atomic<bool> g_enabled;
extern thread_local ProfShard* t_shard;
ProfShard& make_shard();
}  // namespace prof_detail

/// Runtime switch, initialized from the EFD_PROF environment variable
/// (anything but "0" enables); independent of the metrics switch so the
/// profiler can be A/B-toggled without losing counters.
[[nodiscard]] inline bool prof_enabled() {
  return prof_detail::g_enabled.load(std::memory_order_relaxed);
}
void set_prof_enabled(bool on);

[[nodiscard]] inline ProfShard& this_thread_prof_shard() {
  ProfShard* s = prof_detail::t_shard;
  return s != nullptr ? *s : prof_detail::make_shard();
}

#if EFD_OBS_ENABLED

/// RAII scope: one period in the calling thread's call tree. `name` must
/// outlive the registry (the macro passes string literals; the carrier
/// kernels pass their static dispatch-entry names). Enabled-ness is
/// snapshotted at construction so a mid-scope toggle cannot unbalance the
/// shadow stack.
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    if (!prof_enabled()) return;
    start_ns_ = prof_now_ns();
    shard_ = &this_thread_prof_shard();
    cell_ = ProfileRegistry::instance().enter(*shard_, name, start_ns_);
  }
  ~ProfScope() {
    if (shard_ != nullptr && cell_ >= 0) {
      ProfileRegistry::instance().leave(*shard_, cell_, start_ns_,
                                        prof_now_ns());
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfShard* shard_ = nullptr;
  std::int32_t cell_ = -1;
  std::int64_t start_ns_ = 0;
};

#else  // !EFD_OBS_ENABLED — zero-size scope class, compiles to nothing.

class ProfScope {
 public:
  explicit ProfScope(const char*) {}
};

#endif  // EFD_OBS_ENABLED

}  // namespace efd::obs

#pragma once

// efd::obs umbrella header — the instrumentation macros every layer uses.
//
// All macros take string-literal metric names of the form
// "layer.component.metric" (taxonomy in DESIGN.md §8). Each call site
// resolves its name to a stable id exactly once (function-local static);
// afterwards a disabled registry costs one relaxed load + branch, and
// compiling with EFD_OBS_ENABLED=0 removes the call sites entirely.

#include "src/obs/metrics.hpp"
#include "src/obs/profile.hpp"
#include "src/obs/trace.hpp"

#if EFD_OBS_ENABLED

#define EFD_OBS_CONCAT2(a, b) a##b
#define EFD_OBS_CONCAT(a, b) EFD_OBS_CONCAT2(a, b)

#define EFD_COUNTER_ADD(name, v)                                       \
  do {                                                                 \
    static const ::efd::obs::CounterId efd_obs_cid =                   \
        ::efd::obs::MetricsRegistry::instance().counter_id(name);      \
    ::efd::obs::counter_add(efd_obs_cid, static_cast<std::uint64_t>(v)); \
  } while (0)

#define EFD_COUNTER_INC(name) EFD_COUNTER_ADD(name, 1)

#define EFD_GAUGE_SET(name, v)                                    \
  do {                                                            \
    static const ::efd::obs::GaugeId efd_obs_gid =                \
        ::efd::obs::MetricsRegistry::instance().gauge_id(name);   \
    ::efd::obs::gauge_set(efd_obs_gid, static_cast<double>(v));   \
  } while (0)

#define EFD_HISTO_OBSERVE(name, v)                                    \
  do {                                                                \
    static const ::efd::obs::HistogramId efd_obs_hid =                \
        ::efd::obs::MetricsRegistry::instance().histogram_id(name);   \
    ::efd::obs::histogram_observe(efd_obs_hid, static_cast<double>(v)); \
  } while (0)

/// Instant trace event. `cat`/`name` must be string literals.
#define EFD_TRACE_EVENT(cat, name) \
  ::efd::obs::EventTracer::instance().instant(cat, name)

/// RAII span covering the rest of the enclosing scope.
#define EFD_TRACE_SPAN(cat, name) \
  ::efd::obs::ScopedSpan EFD_OBS_CONCAT(efd_obs_span_, __LINE__)(cat, name)

/// Hierarchical profiler period covering the rest of the enclosing scope.
/// `name` is a const char* that must outlive the process (string literal or
/// the carrier dispatch table's static entry names); nesting builds the
/// flamegraph tree emitted as "profile" by snapshot_json (DESIGN.md §13).
#define EFD_PROF_SCOPE(name) \
  ::efd::obs::ProfScope EFD_OBS_CONCAT(efd_obs_prof_, __LINE__)(name)

#else  // !EFD_OBS_ENABLED — every macro compiles to nothing.

#define EFD_COUNTER_ADD(name, v) \
  do {                           \
  } while (0)
#define EFD_COUNTER_INC(name) \
  do {                        \
  } while (0)
#define EFD_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define EFD_HISTO_OBSERVE(name, v) \
  do {                             \
  } while (0)
#define EFD_TRACE_EVENT(cat, name) \
  do {                             \
  } while (0)
#define EFD_TRACE_SPAN(cat, name) \
  do {                            \
  } while (0)
#define EFD_PROF_SCOPE(name) \
  do {                       \
  } while (0)

#endif  // EFD_OBS_ENABLED

#pragma once

// efd::obs — low-overhead process-wide metrics (DESIGN.md §8).
//
// A MetricsRegistry of named counters, gauges, and fixed-bucket histograms.
// Writes go to lock-free thread-local shards (relaxed atomics on
// thread-private cache lines), so ParallelRunner workers never contend;
// snapshot() merges all shards ever created. Call sites resolve a name to a
// stable id once (function-local static) and then pay one enabled-flag load
// plus one relaxed fetch_add per update.
//
// Three cost tiers:
//  - EFD_OBS_ENABLED=0 at compile time: the EFD_* macros (obs.hpp) expand to
//    nothing — zero instructions, zero allocations.
//  - compiled in, runtime-disabled (set_enabled(false) or EFD_OBS=0 in the
//    environment): one relaxed atomic bool load + branch per call site.
//  - enabled: + one relaxed RMW on a thread-local shard.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#ifndef EFD_OBS_ENABLED
#define EFD_OBS_ENABLED 1
#endif

namespace efd::obs {

/// Fixed shard geometry: ids are slots in per-thread arrays, so registration
/// beyond the capacity is dropped (id -1, updates become no-ops) rather than
/// reallocating shards under concurrent writers.
inline constexpr int kMaxCounters = 192;
inline constexpr int kMaxGauges = 64;
inline constexpr int kMaxHistograms = 64;
/// Power-of-two buckets: bucket 0 holds v < 1, bucket i >= 1 holds
/// [2^(i-1), 2^i). Cheap to compute (bit_width, no libm) and wide enough for
/// the occupancy/size/index distributions the simulator records.
inline constexpr int kHistogramBuckets = 32;

struct CounterId { int index = -1; };
struct GaugeId { int index = -1; };
struct HistogramId { int index = -1; };

/// One thread's private slice of every metric. Heap-allocated on first use
/// per thread, owned (and retained after thread exit) by the registry so
/// completed workers' counts survive into the merge.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> histo_count{};
  std::array<std::atomic<double>, kMaxHistograms> histo_sum{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
             kMaxHistograms>
      histo_buckets{};
};

struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Point-in-time merge of all shards, sorted by name (deterministic for a
/// deterministic workload — the tests diff two runs' snapshots).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;

  /// Render as a JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets}}}. `indent` spaces prefix
  /// every line after the first, so the block nests inside another document
  /// (the bench JSON embeds it this way). A non-empty `profile_json` (an
  /// already-rendered JSON object, see ProfileSnapshot::to_json) is embedded
  /// verbatim as a trailing "profile" key — snapshot_json() passes the
  /// profiler's fold so every exported snapshot carries the flamegraph.
  [[nodiscard]] std::string to_json(int indent = 0,
                                    std::string_view profile_json = {}) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve (registering on first use) a metric name. Cold path — call
  /// sites cache the result in a function-local static. Names must outlive
  /// the call (the macros pass string literals). Returns index -1 when the
  /// shard capacity for the kind is exhausted; updates through a -1 id are
  /// silently dropped.
  CounterId counter_id(std::string_view name);
  GaugeId gauge_id(std::string_view name);
  HistogramId histogram_id(std::string_view name);

  /// Merge every shard into one snapshot. Counters/histogram cells sum;
  /// gauges sum across shards (each parallel worker simulates a disjoint
  /// world, so the sum is the fleet-wide value; single-threaded runs read
  /// back the last value set).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every cell of every shard (registered names are kept, ids remain
  /// valid). Tests use this to isolate workloads inside one process.
  void reset();

  /// The calling thread's shard, created and registered on first use.
  Shard& shard();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string_view, int> counter_index_;
  std::unordered_map<std::string_view, int> gauge_index_;
  std::unordered_map<std::string_view, int> histogram_index_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

namespace detail {
extern std::atomic<bool> g_enabled;
Shard& make_shard();
extern thread_local Shard* t_shard;
}  // namespace detail

/// Runtime master switch. Initialized from the EFD_OBS environment variable
/// (anything but "0" enables); flippable at runtime for A/B overhead runs.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

[[nodiscard]] inline Shard& this_thread_shard() {
  Shard* s = detail::t_shard;
  return s != nullptr ? *s : detail::make_shard();
}

// --- Hot-path update primitives (the EFD_* macros land here) --------------

inline void counter_add(CounterId id, std::uint64_t v = 1) {
  if (!enabled() || id.index < 0) return;
  this_thread_shard()
      .counters[static_cast<std::size_t>(id.index)]
      .fetch_add(v, std::memory_order_relaxed);
}

inline void gauge_set(GaugeId id, double v) {
  if (!enabled() || id.index < 0) return;
  this_thread_shard()
      .gauges[static_cast<std::size_t>(id.index)]
      .store(v, std::memory_order_relaxed);
}

/// Bucket index for a histogram observation (see kHistogramBuckets).
[[nodiscard]] inline int histogram_bucket(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  constexpr double kMaxExact = 9.0e18;  // below 2^63; larger -> top bucket
  if (v >= kMaxExact) return kHistogramBuckets - 1;
  const int w = std::bit_width(static_cast<std::uint64_t>(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

inline void histogram_observe(HistogramId id, double v) {
  if (!enabled() || id.index < 0) return;
  Shard& s = this_thread_shard();
  const auto i = static_cast<std::size_t>(id.index);
  s.histo_count[i].fetch_add(1, std::memory_order_relaxed);
  s.histo_sum[i].fetch_add(v, std::memory_order_relaxed);
  s.histo_buckets[i][static_cast<std::size_t>(histogram_bucket(v))].fetch_add(
      1, std::memory_order_relaxed);
}

/// Convenience: full-registry snapshot rendered as JSON (the exporter the
/// bench JsonReporter and efd_cli consume).
[[nodiscard]] std::string snapshot_json(int indent = 0);

}  // namespace efd::obs

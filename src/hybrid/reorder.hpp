#pragma once

#include <cstdint>
#include <map>

#include "src/net/interface.hpp"
#include "src/sim/simulator.hpp"

namespace efd::hybrid {

/// Destination-side packet re-sequencer: packets of one flow fan out over
/// two mediums with different latencies and arrive out of order; this
/// buffer releases them by the IP identification sequence, with a gap
/// timeout so a loss on one medium cannot stall the flow (§7.4's "simple
/// algorithm that checks the identification sequence of the IP header").
///
/// Failure semantics: when a sequence gap times out (a packet lost forever
/// on a failed medium), delivery skips past it; a copy of the skipped
/// packet arriving later — a straggler that survived a dead interface's
/// retransmission queue, or a duplicate created by failover salvage — is
/// DROPPED, never delivered out of order or twice. The app layer therefore
/// sees a strictly increasing sequence, faults or not.
class ReorderBuffer {
 public:
  struct Config {
    /// How long one head-of-line gap may block delivery before it is
    /// abandoned (the failover gap timeout).
    sim::Time hold_timeout = sim::milliseconds(40);
    std::size_t max_buffered = 2048;
  };

  ReorderBuffer(sim::Simulator& simulator, net::Interface::RxHandler deliver,
                Config config);
  ReorderBuffer(sim::Simulator& simulator, net::Interface::RxHandler deliver)
      : ReorderBuffer(simulator, std::move(deliver), Config{}) {}
  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;
  /// Disarms the pending hold timer — its callback captures `this`.
  ~ReorderBuffer() { timeout_.cancel(); }

  /// Feed a packet arriving from either interface.
  void on_packet(const net::Packet& p, sim::Time now);

  /// Adapter reset: drop everything buffered and return to the fresh
  /// (pre-warm-up) state; the next packet restarts sequence locking.
  /// Counters survive the reset.
  void clear();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Packets that arrived after their gap was abandoned and were dropped
  /// to preserve in-order delivery.
  [[nodiscard]] std::uint64_t stragglers_dropped() const { return straggler_drops_; }

 private:
  void drain();
  void arm_timeout();
  void on_timeout();
  void overflow_valve();

  sim::Simulator& sim_;
  net::Interface::RxHandler deliver_;
  Config cfg_;
  std::map<std::uint32_t, net::Packet> buffer_;
  std::uint32_t next_seq_ = 0;
  bool started_ = false;
  bool warmup_ = false;        ///< buffering before locking a start sequence
  bool blocked_ = false;       ///< a gap is currently blocking the head
  sim::Time block_start_{};    ///< when the current gap started blocking
  sim::EventHandle timeout_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t straggler_drops_ = 0;
};

}  // namespace efd::hybrid

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "src/net/interface.hpp"
#include "src/sim/simulator.hpp"

namespace efd::hybrid {

/// Destination-side packet re-sequencer: packets of one flow fan out over
/// two mediums with different latencies and arrive out of order; this
/// buffer releases them by the IP identification sequence, with a gap
/// timeout so a loss on one medium cannot stall the flow (§7.4's "simple
/// algorithm that checks the identification sequence of the IP header").
///
/// Failure semantics: when a sequence gap times out (a packet lost forever
/// on a failed medium), delivery skips past it; a copy of the skipped
/// packet arriving later — a straggler that survived a dead interface's
/// retransmission queue — is DROPPED and counted as a straggler. A copy of
/// a sequence that was already *delivered* (failover salvage, or a losing
/// copy under per-packet duplication) is DROPPED and counted as a
/// duplicate. The app layer therefore sees a strictly increasing sequence,
/// faults or not, and every fed packet lands in exactly one of
/// {delivered, straggler drop, duplicate drop}.
///
/// Diversity combining: the tagged `on_packet` overload records which
/// interface a copy arrived on; the first copy of a sequence to be
/// delivered is the "win" (reported through the win listener with its
/// tag), and every later copy of the same sequence is suppressed as a
/// duplicate — first-wins selection in the sense of Sung & Evans.
class ReorderBuffer {
 public:
  struct Config {
    /// How long one head-of-line gap may block delivery before it is
    /// abandoned (the failover gap timeout).
    sim::Time hold_timeout = sim::milliseconds(40);
    std::size_t max_buffered = 2048;
  };

  /// Called once per delivered packet with the tag of the winning copy
  /// (the interface index passed to the tagged `on_packet`). Untagged
  /// feeds (tag < 0) do not invoke the listener.
  using WinListener = std::function<void(const net::Packet&, int tag)>;

  ReorderBuffer(sim::Simulator& simulator, net::Interface::RxHandler deliver,
                Config config);
  ReorderBuffer(sim::Simulator& simulator, net::Interface::RxHandler deliver)
      : ReorderBuffer(simulator, std::move(deliver), Config{}) {}
  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;
  /// Disarms the pending hold timer — its callback captures `this`.
  ~ReorderBuffer() { timeout_.cancel(); }

  /// Feed a packet arriving from either interface.
  void on_packet(const net::Packet& p, sim::Time now) {
    on_packet(p, now, kUntagged);
  }
  /// Feed a packet together with the index of the member interface it
  /// arrived on; the tag of the winning copy is reported to the win
  /// listener at delivery time.
  void on_packet(const net::Packet& p, sim::Time now, int tag);

  /// Installs (or replaces) the per-delivery win listener.
  void set_win_listener(WinListener listener) { win_ = std::move(listener); }

  /// Adapter reset: drop everything buffered and return to the fresh
  /// (pre-warm-up) state; the next packet restarts sequence locking.
  /// Counters survive the reset.
  void clear();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Packets whose sequence gap was abandoned (gap timeout / overflow
  /// valve) before they arrived; dropped to preserve in-order delivery.
  [[nodiscard]] std::uint64_t stragglers_dropped() const { return straggler_drops_; }
  /// Stale copies of sequences that were already delivered (or already
  /// buffered): losing diversity copies and failover-salvage re-sends.
  [[nodiscard]] std::uint64_t duplicates_dropped() const { return duplicate_drops_; }

 private:
  static constexpr int kUntagged = -1;

  /// One buffered copy plus the interface tag it arrived with.
  struct Buffered {
    net::Packet p;
    int tag;
  };

  void deliver(const net::Packet& p, int tag);
  void drop_duplicate();
  void drain();
  void abandon_through(std::uint32_t target);
  void arm_timeout();
  void on_timeout();
  void overflow_valve();

  sim::Simulator& sim_;
  net::Interface::RxHandler deliver_;
  WinListener win_;
  Config cfg_;
  std::map<std::uint32_t, Buffered> buffer_;
  /// Sequences skipped by a lock-forward, kept (bounded by max_buffered)
  /// so a late arrival can be told apart from a duplicate of a delivered
  /// packet.
  std::set<std::uint32_t> abandoned_;
  std::uint32_t next_seq_ = 0;
  bool started_ = false;
  bool warmup_ = false;        ///< buffering before locking a start sequence
  bool blocked_ = false;       ///< a gap is currently blocking the head
  sim::Time block_start_{};    ///< when the current gap started blocking
  sim::EventHandle timeout_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t straggler_drops_ = 0;
  std::uint64_t duplicate_drops_ = 0;
};

}  // namespace efd::hybrid

#include "src/hybrid/scheduler.hpp"

namespace efd::hybrid {

int CapacityScheduler::pick(const net::Packet&) {
  if (capacities_.empty()) return 0;
  double total = 0.0;
  for (double c : capacities_) total += c;
  if (total <= 0.0) return 0;
  double x = rng_.uniform(0.0, total);
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    x -= capacities_[i];
    if (x <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(capacities_.size()) - 1;
}

int RoundRobinScheduler::pick(const net::Packet&) {
  const int i = next_;
  next_ = (next_ + 1) % n_;
  return i;
}

}  // namespace efd::hybrid

#include "src/hybrid/scheduler.hpp"

#include "src/obs/obs.hpp"

namespace efd::hybrid {

namespace {
void record_decision(int interface_index) {
  EFD_COUNTER_INC("hybrid.sched.decisions");
  EFD_HISTO_OBSERVE("hybrid.sched.interface", interface_index);
}
}  // namespace

int CapacityScheduler::pick(const net::Packet&) {
  int picked = 0;
  if (!capacities_.empty()) {
    double total = 0.0;
    for (double c : capacities_) total += c;
    if (total > 0.0) {
      double x = rng_.uniform(0.0, total);
      picked = static_cast<int>(capacities_.size()) - 1;
      for (std::size_t i = 0; i < capacities_.size(); ++i) {
        x -= capacities_[i];
        if (x <= 0.0) {
          picked = static_cast<int>(i);
          break;
        }
      }
    } else {
      // All-zero capacities: round-robin so no interface is starved of the
      // traffic that would reveal its recovery.
      picked = rr_next_;
      rr_next_ = (rr_next_ + 1) % static_cast<int>(capacities_.size());
      EFD_COUNTER_INC("hybrid.sched.zero_cap_fallbacks");
    }
  }
  record_decision(picked);
  return picked;
}

int RoundRobinScheduler::pick(const net::Packet&) {
  const int i = next_;
  next_ = (next_ + 1) % n_;
  record_decision(i);
  return i;
}

}  // namespace efd::hybrid

#include "src/hybrid/routing.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>

namespace efd::hybrid {

namespace {
constexpr double kDeadMs = 1e9;
}  // namespace

double expected_transmission_time_ms(const LinkMetric& metric,
                                     std::size_t packet_bytes) {
  if (metric.capacity_mbps <= 0.0) return kDeadMs;
  const double delivery = 1.0 - std::clamp(metric.loss_rate, 0.0, 0.999);
  const double etx = 1.0 / delivery;
  const double airtime_ms =
      static_cast<double>(packet_bytes) * 8.0 / (metric.capacity_mbps * 1e3);
  return etx * airtime_ms;
}

std::vector<Hop> MeshRouter::route(net::StationId src, net::StationId dst,
                                   sim::Time now) const {
  if (src == dst) return {};

  // Collect fresh edges and the node set.
  struct Edge {
    net::StationId to;
    Medium medium;
    double ett_ms;
  };
  std::map<net::StationId, std::vector<Edge>> adjacency;
  for (const auto& e : table_.entries()) {
    if (now - e.metric.updated > cfg_.metric_max_age) continue;
    const double ett = expected_transmission_time_ms(e.metric, cfg_.packet_bytes);
    if (ett >= kDeadMs) continue;
    adjacency[e.src].push_back({e.dst, e.medium, ett});
  }

  // Dijkstra over (station, last-hop medium) states so the alternation
  // discount composes correctly along the path.
  struct State {
    net::StationId node;
    int last_medium;  // -1 at the source
    int hops;
  };
  using Key = std::pair<net::StationId, int>;
  std::map<Key, double> best;
  std::map<Key, std::pair<Key, Medium>> parent;
  using QItem = std::pair<double, State>;
  const auto cmp = [](const QItem& a, const QItem& b) { return a.first > b.first; };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> queue(cmp);

  best[{src, -1}] = 0.0;
  queue.push({0.0, {src, -1, 0}});
  Key goal{-1, -1};
  double goal_cost = std::numeric_limits<double>::infinity();

  while (!queue.empty()) {
    const auto [cost, state] = queue.top();
    queue.pop();
    const Key key{state.node, state.last_medium};
    const auto it = best.find(key);
    if (it == best.end() || cost > it->second) continue;  // stale entry
    if (state.node == dst) {
      if (cost < goal_cost) {
        goal_cost = cost;
        goal = key;
      }
      continue;
    }
    if (state.hops >= cfg_.max_hops) continue;
    const auto adj = adjacency.find(state.node);
    if (adj == adjacency.end()) continue;
    for (const Edge& edge : adj->second) {
      double hop_cost = edge.ett_ms;
      if (state.last_medium >= 0 &&
          state.last_medium != static_cast<int>(edge.medium)) {
        hop_cost *= cfg_.alternation_discount;
      }
      const Key next{edge.to, static_cast<int>(edge.medium)};
      const double next_cost = cost + hop_cost;
      const auto bit = best.find(next);
      if (bit == best.end() || next_cost < bit->second) {
        best[next] = next_cost;
        parent[next] = {key, edge.medium};
        queue.push({next_cost, {edge.to, static_cast<int>(edge.medium),
                                state.hops + 1}});
      }
    }
  }

  if (goal.first == -1) return {};
  // Walk parents back to the source.
  std::vector<Hop> path;
  Key cur = goal;
  while (cur.first != src || cur.second != -1) {
    const auto pit = parent.find(cur);
    if (pit == parent.end()) break;
    const auto& [prev, medium] = pit->second;
    path.push_back({prev.first, cur.first, medium});
    cur = prev;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double MeshRouter::path_ett_ms(const std::vector<Hop>& path, sim::Time now) const {
  double total = 0.0;
  for (const Hop& hop : path) {
    const auto metric = table_.get(hop.from, hop.to, hop.medium);
    if (!metric || now - metric->updated > cfg_.metric_max_age) return kDeadMs;
    total += expected_transmission_time_ms(*metric, cfg_.packet_bytes);
  }
  return total;
}

void RelayPlanner::set_link(net::StationId src, net::StationId dst, double etx) {
  auto& out = links_[src];
  for (auto& [to, cost] : out) {
    if (to == dst) {
      cost = etx;
      return;
    }
  }
  out.emplace_back(dst, etx);
}

double RelayPlanner::link_etx(net::StationId src, net::StationId dst) const {
  const auto it = links_.find(src);
  if (it == links_.end()) return kUnreachable;
  for (const auto& [to, cost] : it->second) {
    if (to == dst) return cost;
  }
  return kUnreachable;
}

bool RelayPlanner::needs_relay(net::StationId src, net::StationId dst) const {
  return link_etx(src, dst) > cfg_.connect_etx;
}

std::vector<net::StationId> RelayPlanner::plan(net::StationId src,
                                               net::StationId dst) const {
  if (src == dst) return {src};

  // Dijkstra keyed (cost, node) with node id as the tie-break, so equal-cost
  // plans are identical on every shard and platform.
  std::map<net::StationId, double> best;
  std::map<net::StationId, net::StationId> parent;
  std::map<net::StationId, int> depth;
  using QItem = std::pair<double, net::StationId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> queue;

  best[src] = 0.0;
  depth[src] = 0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    const auto [cost, node] = queue.top();
    queue.pop();
    const auto bit = best.find(node);
    if (bit == best.end() || cost > bit->second) continue;  // stale entry
    if (node == dst) break;
    const int hops = depth[node];
    if (hops >= cfg_.max_hops) continue;
    const auto adj = links_.find(node);
    if (adj == links_.end()) continue;
    for (const auto& [to, etx] : adj->second) {
      if (etx > cfg_.max_link_etx) continue;  // unusable even as a relay hop
      const double next_cost = cost + etx;
      const auto nit = best.find(to);
      if (nit != best.end() &&
          (next_cost > nit->second ||
           (next_cost == nit->second && node >= parent[to]))) {
        continue;
      }
      best[to] = next_cost;
      parent[to] = node;
      depth[to] = hops + 1;
      queue.push({next_cost, to});
    }
  }

  if (best.find(dst) == best.end()) return {};
  std::vector<net::StationId> path;
  for (net::StationId cur = dst; cur != src; cur = parent[cur]) {
    path.push_back(cur);
  }
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

double RelayPlanner::path_etx(const std::vector<net::StationId>& path) const {
  if (path.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double etx = link_etx(path[i], path[i + 1]);
    if (etx > cfg_.max_link_etx) return kUnreachable;
    total += etx;
  }
  return total;
}

}  // namespace efd::hybrid

#pragma once

// GatewayFailover — deterministic per-crossing failover state for a campus
// gateway (DESIGN.md §15). A distribution board reaches each neighbor over
// one boundary crossing whose primary path is either the powerline backbone
// or a WiFi roof bridge. When a fault partitions the crossing, traffic
// fails over to the fallback path if the crossing has one (a severed WiFi
// bridge falls back to the shared powerline backbone — the paper's
// media-diversity argument at building scale); a crossing with no fallback
// goes down and its traffic is dropped deterministically. Restoration fails
// traffic back to the primary.
//
// The machine is driven exclusively by fault-injector hooks on the board's
// own simulator clock, so its transition sequence — and every counter — is
// a pure function of the fault plan, independent of shard count.

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/time.hpp"

namespace efd::hybrid {

class GatewayFailover {
 public:
  enum class Path : std::uint8_t {
    kPrimary,   ///< crossing healthy, primary medium carries traffic
    kFallback,  ///< partitioned, but rerouted over the fallback medium
    kDown,      ///< partitioned with no fallback: traffic is dropped
  };

  /// Invoked after every path change with (crossing index, new path, when).
  using Listener = std::function<void(int crossing, Path path, sim::Time t)>;

  /// `has_fallback[i]` declares whether crossing i can reroute when
  /// partitioned (true for WiFi bridges backed by the powerline backbone).
  explicit GatewayFailover(std::vector<bool> has_fallback)
      : has_fallback_(std::move(has_fallback)),
        path_(has_fallback_.size(), Path::kPrimary) {}

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  [[nodiscard]] int n_crossings() const { return static_cast<int>(path_.size()); }
  [[nodiscard]] Path path(int crossing) const {
    return path_[static_cast<std::size_t>(crossing)];
  }
  /// True when the crossing can carry traffic at all (primary or fallback).
  [[nodiscard]] bool usable(int crossing) const {
    return path(crossing) != Path::kDown;
  }
  /// True when the crossing's traffic is rerouted over the fallback.
  [[nodiscard]] bool rerouted(int crossing) const {
    return path(crossing) == Path::kFallback;
  }

  /// Fault onset: the crossing's primary path is severed.
  void on_partition(int crossing, sim::Time t) {
    auto& p = path_[static_cast<std::size_t>(crossing)];
    const Path next = has_fallback_[static_cast<std::size_t>(crossing)]
                          ? Path::kFallback
                          : Path::kDown;
    if (p == next) return;
    p = next;
    if (next == Path::kFallback) ++failovers_;
    if (listener_) listener_(crossing, next, t);
  }

  /// Fault cleared: the primary path carries traffic again.
  void on_restore(int crossing, sim::Time t) {
    auto& p = path_[static_cast<std::size_t>(crossing)];
    if (p == Path::kPrimary) return;
    if (p == Path::kFallback) ++failbacks_;
    p = Path::kPrimary;
    if (listener_) listener_(crossing, Path::kPrimary, t);
  }

  /// Account one packet dropped at a kDown crossing.
  void record_drop() { ++drops_; }

  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t failbacks() const { return failbacks_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  std::vector<bool> has_fallback_;
  std::vector<Path> path_;
  Listener listener_;
  std::uint64_t failovers_ = 0;
  std::uint64_t failbacks_ = 0;
  std::uint64_t drops_ = 0;
};

[[nodiscard]] const char* to_string(GatewayFailover::Path path);

}  // namespace efd::hybrid

#include "src/hybrid/device.hpp"

#include <cassert>

namespace efd::hybrid {

HybridDevice::HybridDevice(sim::Simulator& simulator,
                           std::vector<net::Interface*> interfaces,
                           std::unique_ptr<PacketScheduler> scheduler)
    : sim_(simulator),
      interfaces_(std::move(interfaces)),
      scheduler_(std::move(scheduler)),
      sent_(interfaces_.size(), 0) {
  assert(!interfaces_.empty());
}

bool HybridDevice::enqueue(const net::Packet& p) {
  const int i = scheduler_->pick(p);
  assert(i >= 0 && i < static_cast<int>(interfaces_.size()));
  ++sent_[static_cast<std::size_t>(i)];
  return interfaces_[static_cast<std::size_t>(i)]->enqueue(p);
}

std::size_t HybridDevice::queue_length() const {
  std::size_t total = 0;
  for (const net::Interface* ifc : interfaces_) total += ifc->queue_length();
  return total;
}

void HybridDevice::set_rx_handler(RxHandler handler) {
  rx_ = std::move(handler);
  reorder_ = std::make_unique<ReorderBuffer>(
      sim_, [this](const net::Packet& p, sim::Time t) { rx_(p, t); });
}

void HybridDevice::start_receiving() {
  assert(reorder_ && "set_rx_handler must be called first");
  receiving_ = true;
  for (net::Interface* ifc : interfaces_) {
    ifc->set_rx_handler(
        [this](const net::Packet& p, sim::Time t) { reorder_->on_packet(p, t); });
  }
}

HybridDevice::~HybridDevice() {
  if (!receiving_) return;
  for (net::Interface* ifc : interfaces_) {
    ifc->set_rx_handler([](const net::Packet&, sim::Time) {});
  }
}

void HybridDevice::set_capacities(std::vector<double> capacities_mbps) {
  assert(capacities_mbps.size() == interfaces_.size());
  scheduler_->set_capacities(std::move(capacities_mbps));
}

RoundRobinSplitter::RoundRobinSplitter(sim::Simulator& simulator,
                                       std::vector<net::Interface*> interfaces,
                                       Config config)
    : sim_(simulator), interfaces_(std::move(interfaces)), cfg_(config) {
  assert(!interfaces_.empty());
}

bool RoundRobinSplitter::enqueue(const net::Packet& p) {
  if (staged_.size() >= cfg_.stage_limit) return false;
  staged_.push_back(p);
  pump();
  return true;
}

void RoundRobinSplitter::set_rx_handler(RxHandler handler) {
  // Receiving is symmetric: hand the same upper-layer callback to every
  // member interface (use a HybridDevice with a reorder buffer when
  // in-order delivery matters).
  for (net::Interface* ifc : interfaces_) ifc->set_rx_handler(handler);
}

void RoundRobinSplitter::pump() {
  while (!staged_.empty()) {
    net::Interface* target = interfaces_[next_];
    if (target->queue_length() >= cfg_.watermark) {
      // Head-of-line stall: strict alternation waits for *this* interface.
      if (!retry_.pending()) {
        retry_ = sim_.after_inline(cfg_.retry, [this] { pump(); });
      }
      return;
    }
    target->enqueue(staged_.front());
    staged_.pop_front();
    next_ = (next_ + 1) % interfaces_.size();
  }
}

}  // namespace efd::hybrid

#include "src/hybrid/device.hpp"

#include <cassert>
#include <utility>

#include "src/obs/obs.hpp"

namespace efd::hybrid {

namespace {
/// Probe ids carry a tag plus the member index so they cannot collide with
/// traffic-source packet ids inside a MAC queue, and the nonce in the low
/// bits so the echo maps back onto the member's monitor.
constexpr std::uint64_t kProbeIdTag = 0xFA17ull << 48;
constexpr std::uint64_t kProbeNonceMask = (1ull << 40) - 1;

std::uint64_t probe_id(std::size_t member, std::uint64_t nonce) {
  return kProbeIdTag | (static_cast<std::uint64_t>(member) << 40) |
         (nonce & kProbeNonceMask);
}
}  // namespace

HybridDevice::HybridDevice(sim::Simulator& simulator,
                           std::vector<net::Interface*> interfaces,
                           std::unique_ptr<PacketScheduler> scheduler)
    : sim_(simulator),
      interfaces_(std::move(interfaces)),
      scheduler_(std::move(scheduler)),
      sent_(interfaces_.size(), 0),
      wins_(interfaces_.size(), 0) {
  assert(!interfaces_.empty());
}

bool HybridDevice::enqueue(const net::Packet& p) {
  EFD_PROF_SCOPE("hybrid.enqueue");
  if (mode_for(p.flow_id) == SplitMode::kDiversity) return enqueue_diverse(p);
  int i = scheduler_->pick(p);
  assert(i >= 0 && i < static_cast<int>(interfaces_.size()));
  if (failover_ && !live_[static_cast<std::size_t>(i)]) {
    // The scheduler's masked weights make dead picks rare (only the
    // round-robin / all-zero fallback paths can land here); redirect to the
    // next live member instead of feeding a queue no one is draining.
    const int n = static_cast<int>(interfaces_.size());
    for (int k = 1; k < n; ++k) {
      const int j = (i + k) % n;
      if (live_[static_cast<std::size_t>(j)]) {
        i = j;
        EFD_COUNTER_INC("hybrid.failover.redirects");
        break;
      }
    }
    // All members dead: fall through to the original pick — the packet
    // waits in the dead queue and is salvaged or replaced on recovery.
  }
  ++sent_[static_cast<std::size_t>(i)];
  return interfaces_[static_cast<std::size_t>(i)]->enqueue(p);
}

bool HybridDevice::enqueue_diverse(const net::Packet& p) {
  // Per-packet duplication: one copy on every live member. The first
  // accepted copy is the packet proper; every further accepted copy is
  // redundancy spend, tracked so the bench figures can price diversity
  // against load balancing.
  bool accepted = false;
  for (std::size_t j = 0; j < interfaces_.size(); ++j) {
    if (failover_ && !live_[j]) continue;
    if (!interfaces_[j]->enqueue(p)) continue;
    ++sent_[j];
    if (accepted) {
      ++dup_tx_packets_;
      dup_tx_bytes_ += p.size_bytes;
      EFD_COUNTER_INC("hybrid.diversity.dup_packets");
      EFD_COUNTER_ADD("hybrid.diversity.dup_bytes", p.size_bytes);
    }
    accepted = true;
  }
  if (!accepted) {
    // Every live member refused (or all are dead): behave like the
    // load-balance path and let the scheduler's pick queue it, so the
    // packet is salvaged or replaced on recovery instead of vanishing.
    const int i = scheduler_->pick(p);
    assert(i >= 0 && i < static_cast<int>(interfaces_.size()));
    ++sent_[static_cast<std::size_t>(i)];
    return interfaces_[static_cast<std::size_t>(i)]->enqueue(p);
  }
  return true;
}

std::size_t HybridDevice::queue_length() const {
  std::size_t total = 0;
  for (const net::Interface* ifc : interfaces_) total += ifc->queue_length();
  return total;
}

void HybridDevice::rebuild_reorder() {
  reorder_ = std::make_unique<ReorderBuffer>(
      sim_, [this](const net::Packet& p, sim::Time t) { rx_(p, t); },
      reorder_cfg_);
  // First-wins attribution: the member whose copy the resequencer actually
  // delivered gets the win; losing copies show up as duplicates_dropped().
  reorder_->set_win_listener([this](const net::Packet&, int tag) {
    if (tag >= 0 && tag < static_cast<int>(wins_.size())) {
      ++wins_[static_cast<std::size_t>(tag)];
      EFD_COUNTER_INC("hybrid.diversity.wins");
    }
  });
}

void HybridDevice::set_rx_handler(RxHandler handler) {
  rx_ = std::move(handler);
  rebuild_reorder();
}

void HybridDevice::set_reorder_config(ReorderBuffer::Config config) {
  reorder_cfg_ = config;
  if (reorder_) rebuild_reorder();
}

void HybridDevice::clear_queue() {
  for (net::Interface* ifc : interfaces_) ifc->clear_queue();
  if (reorder_) reorder_->clear();
}

void HybridDevice::install_member_handlers() {
  if (handlers_installed_) return;
  handlers_installed_ = true;
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    interfaces_[i]->set_rx_handler(
        [this, i](const net::Packet& p, sim::Time t) { on_member_rx(i, p, t); });
  }
}

void HybridDevice::on_member_rx(std::size_t i, const net::Packet& p, sim::Time t) {
  if (p.flow_id == kProbeFlowId) {
    // The peer's liveness probe: echo it straight back on the member it
    // arrived on — a round trip proves that member alive in both directions.
    net::Packet echo = p;
    echo.flow_id = kProbeEchoFlowId;
    echo.src = p.dst;
    echo.dst = p.src;
    echo.created = t;
    interfaces_[i]->enqueue(echo);
    EFD_COUNTER_INC("hybrid.failover.probe_echoes");
    return;
  }
  if (p.flow_id == kProbeEchoFlowId) {
    if (failover_) {
      monitors_[i]->on_probe_result(p.id & kProbeNonceMask, /*ok=*/true);
    }
    return;
  }
  if (receiving_ && reorder_) {
    reorder_->on_packet(p, t, static_cast<int>(i));
  }
}

void HybridDevice::start_receiving() {
  assert(reorder_ && "set_rx_handler must be called first");
  receiving_ = true;
  install_member_handlers();
}

void HybridDevice::enable_failover(FailoverConfig config) {
  assert(!failover_ && "enable_failover must be called at most once");
  failover_ = true;
  fcfg_ = std::move(config);
  live_.assign(interfaces_.size(), 1);
  if (raw_capacities_.empty()) {
    raw_capacities_.assign(interfaces_.size(), 0.0);
  }
  sim::Rng rng{fcfg_.seed};
  monitors_.reserve(interfaces_.size());
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    auto mon = std::make_unique<fault::HealthMonitor>(
        sim_, rng.fork(static_cast<std::uint64_t>(i)), fcfg_.health,
        [this, i](std::uint64_t nonce) { send_probe(i, nonce); });
    mon->set_listener([this, i](fault::HealthMonitor::State s, sim::Time t) {
      on_member_state(i, s, t);
    });
    monitors_.push_back(std::move(mon));
  }
  install_member_handlers();
  for (auto& mon : monitors_) mon->start();
}

void HybridDevice::send_probe(std::size_t i, std::uint64_t nonce) {
  net::Packet p;
  p.id = probe_id(i, nonce);
  p.flow_id = kProbeFlowId;
  p.seq = static_cast<std::uint32_t>(nonce);
  p.size_bytes = fcfg_.probe_bytes;
  p.src = fcfg_.self;
  p.dst = fcfg_.peer;
  p.created = sim_.now();
  EFD_COUNTER_INC("hybrid.failover.probes_tx");
  if (!interfaces_[i]->enqueue(p)) {
    // Queue full — the probe never left; count it as an immediate failure
    // rather than burning the whole probe timeout.
    monitors_[i]->on_probe_result(nonce, /*ok=*/false);
  }
}

void HybridDevice::on_member_state(std::size_t i, fault::HealthMonitor::State s,
                                   sim::Time t) {
  using State = fault::HealthMonitor::State;
  const bool was_live = live_[i] != 0;
  if (s == State::kOpen && was_live) {
    // Trip: zero the member's scheduler weight *now* (don't wait for the
    // next capacity refresh) and rescue its queued backlog.
    live_[i] = 0;
    push_masked_capacities();
    salvage(i);
    EFD_COUNTER_INC("hybrid.failover.trips");
    EFD_TRACE_EVENT("hybrid", "failover.trip");
  } else if (s == State::kClosed && !was_live) {
    live_[i] = 1;
    push_masked_capacities();
    EFD_COUNTER_INC("hybrid.failover.recoveries");
    EFD_TRACE_EVENT("hybrid", "failover.recovery");
  }
  // Half-open keeps the member masked: probes may flow, traffic may not.
  if (fcfg_.on_transition) fcfg_.on_transition(static_cast<int>(i), s, t);
}

void HybridDevice::set_capacities(std::vector<double> capacities_mbps) {
  assert(capacities_mbps.size() == interfaces_.size());
  raw_capacities_ = std::move(capacities_mbps);
  push_masked_capacities();
}

void HybridDevice::push_masked_capacities() {
  if (!failover_) {
    scheduler_->set_capacities(raw_capacities_);
    return;
  }
  std::vector<double> masked = raw_capacities_;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!live_[i]) masked[i] = 0.0;
  }
  scheduler_->set_capacities(std::move(masked));
}

void HybridDevice::salvage(std::size_t dead) {
  std::vector<net::Packet> orphans = interfaces_[dead]->take_queue();
  std::size_t budget = fcfg_.salvage_budget;
  const std::size_t n = interfaces_.size();
  for (const net::Packet& p : orphans) {
    if (p.flow_id == kProbeFlowId || p.flow_id == kProbeEchoFlowId) continue;
    bool rescued = false;
    if (budget > 0) {
      // Bounded retry: offer the packet to each live survivor once, in
      // construction order starting after the dead member.
      for (std::size_t k = 1; k < n && !rescued; ++k) {
        const std::size_t j = (dead + k) % n;
        if (!live_[j]) continue;
        if (interfaces_[j]->enqueue(p)) {
          rescued = true;
          ++sent_[j];
        }
      }
    }
    if (rescued) {
      --budget;
      ++salvaged_;
      EFD_COUNTER_INC("hybrid.failover.salvaged");
    } else {
      ++salvage_drops_;
      EFD_COUNTER_INC("hybrid.failover.salvage_drops");
    }
  }
}

HybridDevice::~HybridDevice() {
  // Monitors first: their probe callbacks capture `this`.
  monitors_.clear();
  if (!handlers_installed_) return;
  for (net::Interface* ifc : interfaces_) {
    ifc->set_rx_handler([](const net::Packet&, sim::Time) {});
  }
}

RoundRobinSplitter::RoundRobinSplitter(sim::Simulator& simulator,
                                       std::vector<net::Interface*> interfaces,
                                       Config config)
    : sim_(simulator), interfaces_(std::move(interfaces)), cfg_(config) {
  assert(!interfaces_.empty());
}

bool RoundRobinSplitter::enqueue(const net::Packet& p) {
  if (staged_.size() >= cfg_.stage_limit) return false;
  staged_.push_back(p);
  pump();
  return true;
}

void RoundRobinSplitter::set_rx_handler(RxHandler handler) {
  // Receiving is symmetric: hand the same upper-layer callback to every
  // member interface (use a HybridDevice with a reorder buffer when
  // in-order delivery matters).
  for (net::Interface* ifc : interfaces_) ifc->set_rx_handler(handler);
}

void RoundRobinSplitter::pump() {
  while (!staged_.empty()) {
    net::Interface* target = interfaces_[next_];
    if (target->queue_length() >= cfg_.watermark) {
      // Head-of-line stall: strict alternation waits for *this* interface.
      if (!retry_.pending()) {
        retry_ = sim_.after_inline(cfg_.retry, [this] { pump(); });
      }
      return;
    }
    target->enqueue(staged_.front());
    staged_.pop_front();
    next_ = (next_ + 1) % interfaces_.size();
  }
}

}  // namespace efd::hybrid

#include "src/hybrid/link_metrics.hpp"

namespace efd::hybrid {

std::string to_string(Medium m) {
  switch (m) {
    case Medium::kPlc: return "plc";
    case Medium::kWifi: return "wifi";
  }
  return "unknown";
}

void LinkMetricTable::update(net::StationId src, net::StationId dst, Medium medium,
                             LinkMetric metric) {
  table_[{src, dst, medium}] = metric;
}

std::optional<LinkMetric> LinkMetricTable::get(net::StationId src, net::StationId dst,
                                               Medium medium) const {
  const auto it = table_.find({src, dst, medium});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

double LinkMetricTable::fresh_capacity_mbps(net::StationId src, net::StationId dst,
                                            Medium medium, sim::Time now,
                                            sim::Time max_age) const {
  const auto m = get(src, dst, medium);
  if (!m) return 0.0;
  if (now - m->updated > max_age) return 0.0;
  return m->capacity_mbps;
}

std::vector<LinkMetricTable::Entry> LinkMetricTable::entries() const {
  std::vector<Entry> out;
  out.reserve(table_.size());
  for (const auto& [key, metric] : table_) {
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key), metric});
  }
  return out;
}

}  // namespace efd::hybrid

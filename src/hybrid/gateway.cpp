#include "src/hybrid/gateway.hpp"

namespace efd::hybrid {

const char* to_string(GatewayFailover::Path path) {
  switch (path) {
    case GatewayFailover::Path::kPrimary: return "primary";
    case GatewayFailover::Path::kFallback: return "fallback";
    case GatewayFailover::Path::kDown: return "down";
  }
  return "?";
}

}  // namespace efd::hybrid

#include "src/hybrid/reorder.hpp"

#include <utility>

#include "src/obs/obs.hpp"

namespace efd::hybrid {

ReorderBuffer::ReorderBuffer(sim::Simulator& simulator,
                             net::Interface::RxHandler deliver, Config config)
    : sim_(simulator), deliver_(std::move(deliver)), cfg_(config) {}

void ReorderBuffer::on_packet(const net::Packet& p, sim::Time now, int tag) {
  if (!started_) {
    // Warm-up: the first packets of a split flow can arrive out of order
    // (the flow's true first sequence may be in flight on the slower
    // medium), so buffer for one hold period before locking onto a start.
    started_ = true;
    warmup_ = true;
    blocked_ = true;
    block_start_ = now;
    buffer_.emplace(p.seq, Buffered{p, tag});
    arm_timeout();
    return;
  }
  if (warmup_) {
    if (!buffer_.emplace(p.seq, Buffered{p, tag}).second) {
      drop_duplicate();
      return;
    }
    overflow_valve();
    return;
  }
  if (p.seq < next_seq_) {
    const auto it = abandoned_.find(p.seq);
    if (it == abandoned_.end()) {
      // A copy of a sequence that was already delivered — the losing copy
      // of a duplicated packet, or a failover-salvage re-send.
      drop_duplicate();
      return;
    }
    // Late straggler: its gap was abandoned before it arrived. Delivering
    // it now would hand the app layer an out-of-order packet — drop it.
    abandoned_.erase(it);
    ++straggler_drops_;
    EFD_COUNTER_INC("hybrid.reorder.straggler_drops");
    return;
  }
  if (buffer_.empty() && p.seq == next_seq_) {
    // Steady-state fast path: the expected sequence with nothing queued
    // ahead of it delivers immediately, allocation-free.
    deliver(p, tag);
    ++next_seq_;
    blocked_ = false;
    return;
  }
  if (!buffer_.emplace(p.seq, Buffered{p, tag}).second) {
    // Same sequence already waiting in the buffer: a duplicate straddling
    // an open reorder gap. First(-buffered) copy wins.
    drop_duplicate();
    return;
  }
  EFD_HISTO_OBSERVE("hybrid.reorder.occupancy", buffer_.size());
  EFD_GAUGE_SET("hybrid.reorder.buffered", buffer_.size());
  const std::uint32_t before = next_seq_;
  drain();
  if (buffer_.empty()) {
    blocked_ = false;
    return;
  }
  // A (possibly new) gap blocks the head. The hold timer measures how long
  // *this* gap has been blocking, so it restarts whenever progress is made.
  if (!blocked_ || next_seq_ != before) {
    blocked_ = true;
    block_start_ = now;
  }
  arm_timeout();
  overflow_valve();
}

void ReorderBuffer::clear() {
  timeout_.cancel();
  buffer_.clear();
  abandoned_.clear();
  next_seq_ = 0;
  started_ = false;
  warmup_ = false;
  blocked_ = false;
  block_start_ = sim::Time{};
  EFD_GAUGE_SET("hybrid.reorder.buffered", 0);
}

void ReorderBuffer::deliver(const net::Packet& p, int tag) {
  deliver_(p, sim_.now());
  EFD_COUNTER_INC("hybrid.reorder.delivered");
  if (win_ && tag != kUntagged) win_(p, tag);
}

void ReorderBuffer::drop_duplicate() {
  ++duplicate_drops_;
  EFD_COUNTER_INC("hybrid.reorder.duplicate_drops");
}

void ReorderBuffer::abandon_through(std::uint32_t target) {
  // Remember which sequences a lock-forward skipped so their late copies
  // read as stragglers, not duplicates. Bounded: only the max_buffered
  // skipped sequences nearest the new head are kept; older entries are the
  // least likely to ever show up again.
  std::uint32_t from = next_seq_;
  if (target - from > cfg_.max_buffered) {
    from = target - static_cast<std::uint32_t>(cfg_.max_buffered);
  }
  for (std::uint32_t s = from; s != target; ++s) abandoned_.insert(s);
  while (abandoned_.size() > cfg_.max_buffered) {
    abandoned_.erase(abandoned_.begin());
  }
}

void ReorderBuffer::overflow_valve() {
  // A burst of losses must not hold memory hostage.
  if (buffer_.size() <= cfg_.max_buffered) return;
  EFD_COUNTER_INC("hybrid.reorder.overflows");
  warmup_ = false;
  abandon_through(buffer_.begin()->first);
  next_seq_ = buffer_.begin()->first;
  drain();
  if (buffer_.empty()) blocked_ = false;
}

void ReorderBuffer::drain() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_seq_) {
    deliver(it->second.p, it->second.tag);
    it = buffer_.erase(it);
    ++next_seq_;
  }
}

void ReorderBuffer::arm_timeout() {
  if (timeout_.pending()) return;
  const sim::Time waited = sim_.now() - block_start_;
  const sim::Time remaining =
      waited < cfg_.hold_timeout ? cfg_.hold_timeout - waited : sim::Time{};
  timeout_ = sim_.after_inline(remaining, [this] { on_timeout(); });
}

void ReorderBuffer::on_timeout() {
  if (buffer_.empty()) {
    blocked_ = false;
    warmup_ = false;
    return;
  }
  if (!warmup_ && sim_.now() - block_start_ < cfg_.hold_timeout) {
    // Progress was made since this timer was armed; wait out the remainder
    // of the *current* gap's budget.
    arm_timeout();
    return;
  }
  // Warm-up over, or a gap timed out: (re)lock onto the earliest sequence.
  if (!warmup_) {
    ++timeouts_;
    EFD_COUNTER_INC("hybrid.reorder.timeouts");
  }
  warmup_ = false;
  abandon_through(buffer_.begin()->first);
  next_seq_ = buffer_.begin()->first;
  drain();
  if (!buffer_.empty()) {
    block_start_ = sim_.now();
    arm_timeout();
  } else {
    blocked_ = false;
  }
}

}  // namespace efd::hybrid

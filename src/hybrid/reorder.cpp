#include "src/hybrid/reorder.hpp"

#include <utility>

#include "src/obs/obs.hpp"

namespace efd::hybrid {

ReorderBuffer::ReorderBuffer(sim::Simulator& simulator,
                             net::Interface::RxHandler deliver, Config config)
    : sim_(simulator), deliver_(std::move(deliver)), cfg_(config) {}

void ReorderBuffer::on_packet(const net::Packet& p, sim::Time now) {
  if (!started_) {
    // Warm-up: the first packets of a split flow can arrive out of order
    // (the flow's true first sequence may be in flight on the slower
    // medium), so buffer for one hold period before locking onto a start.
    started_ = true;
    warmup_ = true;
    blocked_ = true;
    block_start_ = now;
    buffer_.emplace(p.seq, p);
    arm_timeout();
    return;
  }
  if (warmup_) {
    buffer_.emplace(p.seq, p);
    overflow_valve();
    return;
  }
  if (p.seq < next_seq_) {
    // Late straggler: its gap was already abandoned (or it is a duplicate
    // from failover salvage). Delivering it now would hand the app layer an
    // out-of-order or duplicate packet — drop it instead.
    ++straggler_drops_;
    EFD_COUNTER_INC("hybrid.reorder.straggler_drops");
    return;
  }
  buffer_.emplace(p.seq, p);
  EFD_HISTO_OBSERVE("hybrid.reorder.occupancy", buffer_.size());
  EFD_GAUGE_SET("hybrid.reorder.buffered", buffer_.size());
  const std::uint32_t before = next_seq_;
  drain();
  if (buffer_.empty()) {
    blocked_ = false;
    return;
  }
  // A (possibly new) gap blocks the head. The hold timer measures how long
  // *this* gap has been blocking, so it restarts whenever progress is made.
  if (!blocked_ || next_seq_ != before) {
    blocked_ = true;
    block_start_ = now;
  }
  arm_timeout();
  overflow_valve();
}

void ReorderBuffer::clear() {
  timeout_.cancel();
  buffer_.clear();
  next_seq_ = 0;
  started_ = false;
  warmup_ = false;
  blocked_ = false;
  block_start_ = sim::Time{};
  EFD_GAUGE_SET("hybrid.reorder.buffered", 0);
}

void ReorderBuffer::overflow_valve() {
  // A burst of losses must not hold memory hostage.
  if (buffer_.size() <= cfg_.max_buffered) return;
  EFD_COUNTER_INC("hybrid.reorder.overflows");
  warmup_ = false;
  next_seq_ = buffer_.begin()->first;
  drain();
  if (buffer_.empty()) blocked_ = false;
}

void ReorderBuffer::drain() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_seq_) {
    deliver_(it->second, sim_.now());
    EFD_COUNTER_INC("hybrid.reorder.delivered");
    it = buffer_.erase(it);
    ++next_seq_;
  }
}

void ReorderBuffer::arm_timeout() {
  if (timeout_.pending()) return;
  const sim::Time waited = sim_.now() - block_start_;
  const sim::Time remaining =
      waited < cfg_.hold_timeout ? cfg_.hold_timeout - waited : sim::Time{};
  timeout_ = sim_.after_inline(remaining, [this] { on_timeout(); });
}

void ReorderBuffer::on_timeout() {
  if (buffer_.empty()) {
    blocked_ = false;
    warmup_ = false;
    return;
  }
  if (!warmup_ && sim_.now() - block_start_ < cfg_.hold_timeout) {
    // Progress was made since this timer was armed; wait out the remainder
    // of the *current* gap's budget.
    arm_timeout();
    return;
  }
  // Warm-up over, or a gap timed out: (re)lock onto the earliest sequence.
  if (!warmup_) {
    ++timeouts_;
    EFD_COUNTER_INC("hybrid.reorder.timeouts");
  }
  warmup_ = false;
  next_seq_ = buffer_.begin()->first;
  drain();
  if (!buffer_.empty()) {
    block_start_ = sim_.now();
    arm_timeout();
  } else {
    blocked_ = false;
  }
}

}  // namespace efd::hybrid

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "src/hybrid/reorder.hpp"
#include "src/hybrid/scheduler.hpp"
#include "src/net/interface.hpp"
#include "src/sim/simulator.hpp"

namespace efd::hybrid {

/// A hybrid WiFi/PLC endpoint: one logical interface that fans packets out
/// over the member interfaces according to a scheduler, with a matching
/// re-sequencer at the destination device. This is the paper's Click-based
/// bandwidth-aggregation shim (§7.4), sitting between IP and the MACs.
///
/// A `HybridDevice` acts as the *sending* half; attach the destination
/// device's `receiver()` as the rx handler path by calling `bind_peer`.
class HybridDevice final : public net::Interface {
 public:
  HybridDevice(sim::Simulator& simulator, std::vector<net::Interface*> interfaces,
               std::unique_ptr<PacketScheduler> scheduler);
  HybridDevice(const HybridDevice&) = delete;
  HybridDevice& operator=(const HybridDevice&) = delete;
  /// Unhooks the member interfaces' rx handlers (they capture `this` after
  /// `start_receiving`), so the MACs can outlive the device safely.
  ~HybridDevice() override;

  // net::Interface — the sending side.
  bool enqueue(const net::Packet& p) override;
  [[nodiscard]] std::size_t queue_length() const override;
  /// Registers the upper-layer delivery callback at the *receiving* device;
  /// packets pass through the reorder buffer first.
  void set_rx_handler(RxHandler handler) override;

  /// Feed fresh capacity estimates to the scheduler (Mb/s, one per member
  /// interface, in construction order).
  void set_capacities(std::vector<double> capacities_mbps);

  /// Wire this device to receive from its member interfaces (call once on
  /// the destination-side device).
  void start_receiving();

  [[nodiscard]] const ReorderBuffer& reorder() const { return *reorder_; }
  [[nodiscard]] std::uint64_t sent_per_interface(int i) const {
    return sent_[static_cast<std::size_t>(i)];
  }

 private:
  sim::Simulator& sim_;
  std::vector<net::Interface*> interfaces_;
  std::unique_ptr<PacketScheduler> scheduler_;
  std::unique_ptr<ReorderBuffer> reorder_;
  RxHandler rx_;
  std::vector<std::uint64_t> sent_;
  bool receiving_ = false;
};

/// The paper's round-robin baseline (§7.4, Fig. 20), with the blocking
/// semantics of a Click pull path: packets leave a small staging queue in
/// strict alternation, and when the next interface in turn is full the
/// *whole* splitter stalls — head-of-line blocking. That is why round-robin
/// throughput is capped at twice the slower medium's capacity.
class RoundRobinSplitter final : public net::Interface {
 public:
  struct Config {
    std::size_t stage_limit = 128;   ///< staging queue bound (packets)
    std::size_t watermark = 40;      ///< per-interface queue high watermark
    sim::Time retry = sim::microseconds(500);
  };

  RoundRobinSplitter(sim::Simulator& simulator, std::vector<net::Interface*> interfaces,
                     Config config);
  RoundRobinSplitter(sim::Simulator& simulator, std::vector<net::Interface*> interfaces)
      : RoundRobinSplitter(simulator, std::move(interfaces), Config{}) {}
  RoundRobinSplitter(const RoundRobinSplitter&) = delete;
  RoundRobinSplitter& operator=(const RoundRobinSplitter&) = delete;
  ~RoundRobinSplitter() override { retry_.cancel(); }

  bool enqueue(const net::Packet& p) override;
  [[nodiscard]] std::size_t queue_length() const override { return staged_.size(); }
  void set_rx_handler(RxHandler handler) override;

 private:
  void pump();

  sim::Simulator& sim_;
  std::vector<net::Interface*> interfaces_;
  Config cfg_;
  std::deque<net::Packet> staged_;
  std::size_t next_ = 0;
  sim::EventHandle retry_;
};

}  // namespace efd::hybrid

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/fault/health.hpp"
#include "src/hybrid/reorder.hpp"
#include "src/hybrid/scheduler.hpp"
#include "src/net/interface.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/simulator.hpp"

namespace efd::hybrid {

/// How the sending side maps a flow's packets onto the member interfaces.
enum class SplitMode {
  /// Scheduler-picked single copy per packet — the paper's §7.4
  /// capacity-proportional aggregation (throughput-first).
  kLoadBalance,
  /// Per-packet duplication: one copy on every live member, first copy to
  /// arrive wins at the receiver, later copies are suppressed by the
  /// sequence-keyed dedup (reliability-first diversity combining in the
  /// sense of Sung & Evans' smart-grid testbed).
  kDiversity,
};

/// A hybrid WiFi/PLC endpoint: one logical interface that fans packets out
/// over the member interfaces according to a scheduler, with a matching
/// re-sequencer at the destination device. This is the paper's Click-based
/// bandwidth-aggregation shim (§7.4), sitting between IP and the MACs.
///
/// A `HybridDevice` acts as the *sending* half; attach the destination
/// device's `receiver()` as the rx handler path by calling `bind_peer`.
///
/// Failover (`enable_failover`): each member interface gets a
/// `fault::HealthMonitor` circuit breaker driven by liveness probes that
/// round-trip to the peer device and back. When a member's breaker trips,
/// the device immediately zeroes that member's scheduler weight, salvages
/// the dead member's queued backlog onto the survivors (bounded by
/// `FailoverConfig::salvage_budget`, overflow dropped with a metric), and
/// keeps probing on an exponential backoff until the breaker's half-open
/// probes succeed and the member rejoins the split. The receive side's
/// `ReorderBuffer` gap timeout releases the sequence holes the dead medium
/// left behind, so delivery degrades to the survivor's capacity instead of
/// stalling.
class HybridDevice final : public net::Interface {
 public:
  struct FailoverConfig {
    fault::HealthMonitor::Config health;
    /// Station ids stamped onto probe packets (src=self, dst=peer) so the
    /// member MACs route them like ordinary traffic.
    net::StationId self = 0;
    net::StationId peer = 0;
    std::size_t probe_bytes = 64;
    /// How many salvaged packets may be re-enqueued on survivors per trip;
    /// the rest of the backlog is dropped (and counted) — an unbounded
    /// retry burst would just re-congest the surviving medium.
    std::size_t salvage_budget = 256;
    /// Seed for the monitors' backoff jitter (forked per member).
    std::uint64_t seed = 0x0e11;
    /// Optional observer for breaker transitions (member, state, time).
    std::function<void(int, fault::HealthMonitor::State, sim::Time)> on_transition;
  };

  /// Probe packets ride the member MACs as ordinary packets, tagged by
  /// flow id; the peer device echoes them back outside the reorder path.
  static constexpr int kProbeFlowId = -1001;
  static constexpr int kProbeEchoFlowId = -1002;

  HybridDevice(sim::Simulator& simulator, std::vector<net::Interface*> interfaces,
               std::unique_ptr<PacketScheduler> scheduler);
  HybridDevice(const HybridDevice&) = delete;
  HybridDevice& operator=(const HybridDevice&) = delete;
  /// Stops the health monitors and unhooks the member interfaces' rx
  /// handlers (they capture `this`), so the MACs can outlive the device.
  ~HybridDevice() override;

  // net::Interface — the sending side.
  bool enqueue(const net::Packet& p) override;
  [[nodiscard]] std::size_t queue_length() const override;
  /// Registers the upper-layer delivery callback at the *receiving* device;
  /// packets pass through the reorder buffer first.
  void set_rx_handler(RxHandler handler) override;
  /// Adapter reset: flush every member interface's queue and the reorder
  /// buffer (a fanned-out flush — the logical interface owns its members'
  /// backlog).
  void clear_queue() override;

  /// Feed fresh capacity estimates to the scheduler (Mb/s, one per member
  /// interface, in construction order). With failover enabled, tripped
  /// members are masked to zero before the scheduler sees them.
  void set_capacities(std::vector<double> capacities_mbps);

  /// Split mode for flows without a per-flow override (kLoadBalance keeps
  /// the historical behaviour).
  void set_default_mode(SplitMode mode) { default_mode_ = mode; }
  /// Per-flow override: duplication and load balancing coexist on one
  /// device, selected by flow id (probes always bypass both paths).
  void set_flow_mode(int flow_id, SplitMode mode) { flow_modes_[flow_id] = mode; }
  [[nodiscard]] SplitMode mode_for(int flow_id) const {
    const auto it = flow_modes_.find(flow_id);
    return it == flow_modes_.end() ? default_mode_ : it->second;
  }

  /// Configure the receive-side reorder buffer (gap timeout etc.). Call
  /// before `set_rx_handler`; later calls rebuild the buffer empty.
  void set_reorder_config(ReorderBuffer::Config config);

  /// Wire this device to receive from its member interfaces (call once on
  /// the destination-side device). Also answers the peer's liveness probes.
  void start_receiving();

  /// Start per-member health monitoring and failover (sending side).
  void enable_failover(FailoverConfig config);

  [[nodiscard]] bool failover_enabled() const { return failover_; }
  /// Member liveness under failover; always true when failover is off.
  [[nodiscard]] bool member_live(int i) const {
    return live_.empty() || live_[static_cast<std::size_t>(i)] != 0;
  }
  [[nodiscard]] const fault::HealthMonitor& monitor(int i) const {
    return *monitors_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] fault::HealthMonitor& monitor(int i) {
    return *monitors_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] const ReorderBuffer& reorder() const { return *reorder_; }
  [[nodiscard]] std::uint64_t sent_per_interface(int i) const {
    return sent_[static_cast<std::size_t>(i)];
  }

  // Redundancy-vs-throughput accounting for diversity mode. The redundant
  // copies (beyond the first accepted one) are the price paid for first-wins
  // latency/reliability; `wins` counts which member delivered each winning
  // copy at the receive side, and `suppressed_copies` the late losers the
  // dedup dropped before the app layer.
  [[nodiscard]] std::uint64_t diversity_dup_packets() const { return dup_tx_packets_; }
  [[nodiscard]] std::uint64_t diversity_dup_bytes() const { return dup_tx_bytes_; }
  [[nodiscard]] std::uint64_t wins(int i) const {
    return wins_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t suppressed_copies() const {
    return reorder_ ? reorder_->duplicates_dropped() : 0;
  }
  /// Packets rescued from tripped members' queues onto survivors / dropped
  /// because the salvage budget or the survivors' queues were exhausted.
  [[nodiscard]] std::uint64_t salvaged_packets() const { return salvaged_; }
  [[nodiscard]] std::uint64_t salvage_drops() const { return salvage_drops_; }

 private:
  bool enqueue_diverse(const net::Packet& p);
  void rebuild_reorder();
  void install_member_handlers();
  void on_member_rx(std::size_t i, const net::Packet& p, sim::Time t);
  void on_member_state(std::size_t i, fault::HealthMonitor::State s, sim::Time t);
  void send_probe(std::size_t i, std::uint64_t nonce);
  void push_masked_capacities();
  void salvage(std::size_t dead);

  sim::Simulator& sim_;
  std::vector<net::Interface*> interfaces_;
  std::unique_ptr<PacketScheduler> scheduler_;
  std::unique_ptr<ReorderBuffer> reorder_;
  ReorderBuffer::Config reorder_cfg_;
  RxHandler rx_;
  std::vector<std::uint64_t> sent_;
  SplitMode default_mode_ = SplitMode::kLoadBalance;
  std::map<int, SplitMode> flow_modes_;
  std::vector<std::uint64_t> wins_;
  std::uint64_t dup_tx_packets_ = 0;
  std::uint64_t dup_tx_bytes_ = 0;
  bool receiving_ = false;
  bool handlers_installed_ = false;

  // Failover state (empty / inert until enable_failover).
  bool failover_ = false;
  FailoverConfig fcfg_;
  std::vector<std::unique_ptr<fault::HealthMonitor>> monitors_;
  std::vector<std::uint8_t> live_;
  std::vector<double> raw_capacities_;
  std::uint64_t salvaged_ = 0;
  std::uint64_t salvage_drops_ = 0;
};

/// The paper's round-robin baseline (§7.4, Fig. 20), with the blocking
/// semantics of a Click pull path: packets leave a small staging queue in
/// strict alternation, and when the next interface in turn is full the
/// *whole* splitter stalls — head-of-line blocking. That is why round-robin
/// throughput is capped at twice the slower medium's capacity.
class RoundRobinSplitter final : public net::Interface {
 public:
  struct Config {
    std::size_t stage_limit = 128;   ///< staging queue bound (packets)
    std::size_t watermark = 40;      ///< per-interface queue high watermark
    sim::Time retry = sim::microseconds(500);
  };

  RoundRobinSplitter(sim::Simulator& simulator, std::vector<net::Interface*> interfaces,
                     Config config);
  RoundRobinSplitter(sim::Simulator& simulator, std::vector<net::Interface*> interfaces)
      : RoundRobinSplitter(simulator, std::move(interfaces), Config{}) {}
  RoundRobinSplitter(const RoundRobinSplitter&) = delete;
  RoundRobinSplitter& operator=(const RoundRobinSplitter&) = delete;
  ~RoundRobinSplitter() override { retry_.cancel(); }

  bool enqueue(const net::Packet& p) override;
  [[nodiscard]] std::size_t queue_length() const override { return staged_.size(); }
  void set_rx_handler(RxHandler handler) override;

 private:
  void pump();

  sim::Simulator& sim_;
  std::vector<net::Interface*> interfaces_;
  Config cfg_;
  std::deque<net::Packet> staged_;
  std::size_t next_ = 0;
  sim::EventHandle retry_;
};

}  // namespace efd::hybrid

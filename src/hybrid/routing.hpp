#pragma once

#include <map>
#include <utility>
#include <vector>

#include "src/hybrid/link_metrics.hpp"

namespace efd::hybrid {

/// Expected transmission time (ETT, Draves et al. [8], which the paper's
/// §4.3 names as the metric hybrid routing needs): the expected airtime to
/// push `packet_bytes` across the link, accounting for retransmissions.
/// Returns milliseconds; infinity-like (1e9) for dead links.
[[nodiscard]] double expected_transmission_time_ms(const LinkMetric& metric,
                                                   std::size_t packet_bytes);

/// One hop of a hybrid route: which station forwards to which, over which
/// medium.
struct Hop {
  net::StationId from = 0;
  net::StationId to = 0;
  Medium medium = Medium::kPlc;
};

/// Minimum-ETT routing over the hybrid link-metric table — the mesh
/// forwarding the paper's §4.3 calls for. Works on the directed, per-medium
/// graph the IEEE 1905 abstraction layer exposes, and (following the hybrid
/// study [17] the paper cites) discounts hops that *alternate* mediums,
/// because consecutive same-medium hops contend with each other while a
/// PLC hop and a WiFi hop can run concurrently.
class MeshRouter {
 public:
  struct Config {
    std::size_t packet_bytes = 1500;
    /// Metrics older than this are treated as unknown (stale-metric policy;
    /// the probing study of §6-§7 governs how fresh they can be kept).
    sim::Time metric_max_age = sim::minutes(5);
    /// Cost multiplier for a hop whose medium differs from the previous
    /// hop's: < 1 rewards alternation, 1 disables the preference.
    double alternation_discount = 0.85;
    int max_hops = 6;
  };

  MeshRouter(const LinkMetricTable& table, Config config)
      : table_(table), cfg_(config) {}
  explicit MeshRouter(const LinkMetricTable& table)
      : MeshRouter(table, Config{}) {}

  /// Cheapest route src -> dst by summed (alternation-discounted) ETT.
  /// Empty when unreachable with fresh metrics.
  [[nodiscard]] std::vector<Hop> route(net::StationId src, net::StationId dst,
                                       sim::Time now) const;

  /// Summed raw ETT of a route (no alternation discount), for reporting.
  [[nodiscard]] double path_ett_ms(const std::vector<Hop>& path, sim::Time now) const;

 private:
  const LinkMetricTable& table_;
  Config cfg_;
};

/// Multi-hop PLC relay planning for neighborhood-area networks: meters at
/// the far end of a long feeder run see an attenuated direct link to the
/// concentrator; ABB's multi-interface smart-grid study routes them over
/// intermediate meters instead. The planner works on plain per-link ETX
/// costs (expected transmissions; callers typically produce them with
/// `core::predicted_u_etx` from the PHY's PB error estimate) so it stays a
/// pure graph layer — no dependency on the estimation machinery.
class RelayPlanner {
 public:
  struct Config {
    /// A direct link costlier than this is "below the connectivity
    /// threshold" and needs relaying (cf. the paper's §5 coverage study).
    double connect_etx = 3.0;
    /// Links costlier than this are unusable even as relay hops.
    double max_link_etx = 8.0;
    int max_hops = 4;
  };

  RelayPlanner() : RelayPlanner(Config{}) {}
  explicit RelayPlanner(Config config) : cfg_(config) {}

  /// Installs (or refreshes) the directed link src -> dst with the given
  /// ETX cost. Costs above `max_link_etx` register the link as unusable.
  void set_link(net::StationId src, net::StationId dst, double etx);

  /// True when the direct src -> dst link is missing or costlier than the
  /// connectivity threshold — the meter needs a relay path.
  [[nodiscard]] bool needs_relay(net::StationId src, net::StationId dst) const;

  /// Cheapest usable path src -> dst by summed ETX (deterministic
  /// Dijkstra, ties broken by station id), inclusive of both endpoints.
  /// Acyclic by construction; empty when unreachable within max_hops.
  [[nodiscard]] std::vector<net::StationId> plan(net::StationId src,
                                                 net::StationId dst) const;

  /// Summed ETX of a planned path; kUnreachable if any hop is unusable.
  [[nodiscard]] double path_etx(const std::vector<net::StationId>& path) const;

  static constexpr double kUnreachable = 1e9;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  [[nodiscard]] double link_etx(net::StationId src, net::StationId dst) const;

  Config cfg_;
  std::map<net::StationId, std::vector<std::pair<net::StationId, double>>> links_;
};

}  // namespace efd::hybrid

#pragma once

#include <vector>

#include "src/hybrid/link_metrics.hpp"

namespace efd::hybrid {

/// Expected transmission time (ETT, Draves et al. [8], which the paper's
/// §4.3 names as the metric hybrid routing needs): the expected airtime to
/// push `packet_bytes` across the link, accounting for retransmissions.
/// Returns milliseconds; infinity-like (1e9) for dead links.
[[nodiscard]] double expected_transmission_time_ms(const LinkMetric& metric,
                                                   std::size_t packet_bytes);

/// One hop of a hybrid route: which station forwards to which, over which
/// medium.
struct Hop {
  net::StationId from = 0;
  net::StationId to = 0;
  Medium medium = Medium::kPlc;
};

/// Minimum-ETT routing over the hybrid link-metric table — the mesh
/// forwarding the paper's §4.3 calls for. Works on the directed, per-medium
/// graph the IEEE 1905 abstraction layer exposes, and (following the hybrid
/// study [17] the paper cites) discounts hops that *alternate* mediums,
/// because consecutive same-medium hops contend with each other while a
/// PLC hop and a WiFi hop can run concurrently.
class MeshRouter {
 public:
  struct Config {
    std::size_t packet_bytes = 1500;
    /// Metrics older than this are treated as unknown (stale-metric policy;
    /// the probing study of §6-§7 governs how fresh they can be kept).
    sim::Time metric_max_age = sim::minutes(5);
    /// Cost multiplier for a hop whose medium differs from the previous
    /// hop's: < 1 rewards alternation, 1 disables the preference.
    double alternation_discount = 0.85;
    int max_hops = 6;
  };

  MeshRouter(const LinkMetricTable& table, Config config)
      : table_(table), cfg_(config) {}
  explicit MeshRouter(const LinkMetricTable& table)
      : MeshRouter(table, Config{}) {}

  /// Cheapest route src -> dst by summed (alternation-discounted) ETT.
  /// Empty when unreachable with fresh metrics.
  [[nodiscard]] std::vector<Hop> route(net::StationId src, net::StationId dst,
                                       sim::Time now) const;

  /// Summed raw ETT of a route (no alternation discount), for reporting.
  [[nodiscard]] double path_ett_ms(const std::vector<Hop>& path, sim::Time now) const;

 private:
  const LinkMetricTable& table_;
  Config cfg_;
};

}  // namespace efd::hybrid

#pragma once

#include <memory>
#include <vector>

#include "src/net/packet.hpp"
#include "src/sim/rng.hpp"

namespace efd::hybrid {

/// Decides which interface each IP packet leaves on. The paper's Click
/// implementation sits between the IP and MAC layers (§7.4).
class PacketScheduler {
 public:
  virtual ~PacketScheduler() = default;

  /// Interface index in [0, n_interfaces) for this packet.
  [[nodiscard]] virtual int pick(const net::Packet& p) = 0;

  /// Feed the current capacity estimates (Mb/s per interface).
  virtual void set_capacities(std::vector<double> capacities_mbps) = 0;
};

/// The paper's load balancer: forward each packet to medium `i` with
/// probability proportional to its estimated capacity (§7.4). When every
/// estimate is zero (cold start before the first probe, or every member
/// tripped by failover) it degrades to round-robin over all interfaces
/// instead of silently pinning interface 0 — packets keep probing every
/// medium so the first one to recover is noticed.
class CapacityScheduler final : public PacketScheduler {
 public:
  explicit CapacityScheduler(sim::Rng rng) : rng_(rng) {}

  [[nodiscard]] int pick(const net::Packet& p) override;
  void set_capacities(std::vector<double> capacities_mbps) override {
    capacities_ = std::move(capacities_mbps);
  }

 private:
  sim::Rng rng_;
  std::vector<double> capacities_;
  int rr_next_ = 0;  ///< all-zero-capacity fallback cursor
};

/// The paper's baseline (§7.4, Fig. 20): equal packet counts per medium,
/// which bottlenecks at twice the slower medium's capacity.
class RoundRobinScheduler final : public PacketScheduler {
 public:
  explicit RoundRobinScheduler(int n_interfaces) : n_(n_interfaces) {}

  [[nodiscard]] int pick(const net::Packet& p) override;
  void set_capacities(std::vector<double>) override {}  // capacity-oblivious

 private:
  int n_;
  int next_ = 0;
};

}  // namespace efd::hybrid

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/net/packet.hpp"
#include "src/sim/time.hpp"

namespace efd::hybrid {

/// The medium a link runs over, in the sense of the IEEE 1905 abstraction
/// layer the paper targets (§1, §4.3).
enum class Medium { kPlc, kWifi };

[[nodiscard]] std::string to_string(Medium m);

/// The two link metrics IEEE 1905 requires (§1): capacity (PHY rate) and
/// packet-error related loss. Every entry records when it was estimated —
/// staleness is the central tension of the paper's §6-§7 probing study.
struct LinkMetric {
  double capacity_mbps = 0.0;
  double loss_rate = 0.0;
  sim::Time updated{};
};

/// Directed per-medium link-metric table, as an IEEE 1905 abstraction-layer
/// entity would maintain it from the technology-specific estimators.
class LinkMetricTable {
 public:
  void update(net::StationId src, net::StationId dst, Medium medium,
              LinkMetric metric);

  [[nodiscard]] std::optional<LinkMetric> get(net::StationId src, net::StationId dst,
                                              Medium medium) const;

  /// Capacity if known and fresh (younger than `max_age`), otherwise 0.
  [[nodiscard]] double fresh_capacity_mbps(net::StationId src, net::StationId dst,
                                           Medium medium, sim::Time now,
                                           sim::Time max_age) const;

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  struct Entry {
    net::StationId src;
    net::StationId dst;
    Medium medium;
    LinkMetric metric;
  };
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  using Key = std::tuple<net::StationId, net::StationId, Medium>;
  std::map<Key, LinkMetric> table_;
};

}  // namespace efd::hybrid

#include "src/fault/injector.hpp"

#include <cassert>

#include "src/obs/obs.hpp"

namespace efd::fault {

FaultInjector::~FaultInjector() {
  for (sim::EventHandle& h : pending_) h.cancel();
}

void FaultInjector::set_hooks(FaultKind kind, Hooks hooks) {
  hooks_for(kind) = std::move(hooks);
}

void FaultInjector::install(const FaultPlan& plan) {
  // Reserve up front: firing a scheduled fault then appends to the trace
  // without allocating (slack absorbs a few recovery records per fault).
  trace_.reserve(trace_.size() + 2 * plan.size() + 64);
  pending_.reserve(pending_.size() + 2 * plan.size());
  for (const FaultSpec& spec : plan.specs()) {
    assert(spec.onset >= sim_.now() && "fault onset is in the simulator's past");
    pending_.push_back(
        sim_.at_inline(spec.onset, [this, spec] { fire(spec, FaultPhase::kApply); }));
    // Zero-duration faults (modem reset) are one-shot: no clear event.
    if (spec.duration > sim::Time{}) {
      pending_.push_back(sim_.at_inline(spec.onset + spec.duration, [this, spec] {
        fire(spec, FaultPhase::kClear);
      }));
    }
  }
}

void FaultInjector::fire(const FaultSpec& spec, FaultPhase phase) {
  trace_.push_back({sim_.now(), spec.kind, phase, spec.target, spec.severity});
  Hooks& hooks = hooks_for(spec.kind);
  if (phase == FaultPhase::kApply) {
    ++applied_;
    if (spec.duration > sim::Time{}) ++active_;
    EFD_COUNTER_INC("fault.injector.applied");
    EFD_TRACE_EVENT("fault", "apply");
    if (hooks.apply) hooks.apply(spec, sim_.now());
  } else {
    ++cleared_;
    --active_;
    EFD_COUNTER_INC("fault.injector.cleared");
    EFD_TRACE_EVENT("fault", "clear");
    if (hooks.clear) hooks.clear(spec, sim_.now());
  }
}

void FaultInjector::record(FaultPhase phase, FaultKind kind, int target,
                           double severity) {
  trace_.push_back({sim_.now(), kind, phase, target, severity});
  EFD_COUNTER_INC("fault.injector.recovery_events");
}

std::string FaultInjector::trace_lines() const {
  std::string out;
  out.reserve(trace_.size() * 64);
  for (const FaultEvent& e : trace_) {
    out += to_line(e);
    out += '\n';
  }
  return out;
}

}  // namespace efd::fault

#include "src/fault/health.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.hpp"

namespace efd::fault {

const char* to_string(HealthMonitor::State state) {
  switch (state) {
    case HealthMonitor::State::kClosed: return "closed";
    case HealthMonitor::State::kOpen: return "open";
    case HealthMonitor::State::kHalfOpen: return "half_open";
  }
  return "?";
}

HealthMonitor::HealthMonitor(sim::Simulator& simulator, sim::Rng rng, Config config,
                             ProbeFn probe)
    : sim_(simulator), rng_(rng), cfg_(config), probe_(std::move(probe)) {
  // First stage whose delay saturates at backoff_max; deepen_backoff()
  // clamps here so an open breaker's repeated probe timeouts cannot grow
  // the stage (and pow()'s argument) without bound.
  double delay_ns = static_cast<double>(cfg_.backoff_initial.ns());
  const double max_ns = static_cast<double>(cfg_.backoff_max.ns());
  while (delay_ns < max_ns && cfg_.backoff_factor > 1.0 &&
         max_backoff_stage_ < 64) {
    delay_ns *= cfg_.backoff_factor;
    ++max_backoff_stage_;
  }
}

void HealthMonitor::start() {
  if (running_) return;
  running_ = true;
  arm_next(cfg_.probe_interval);
}

void HealthMonitor::stop() {
  running_ = false;
  next_.cancel();
  timeout_.cancel();
  outstanding_ = false;
}

void HealthMonitor::arm_next(sim::Time delay) {
  next_.cancel();
  next_ = sim_.after_inline(delay, [this] { send_probe(); });
}

void HealthMonitor::send_probe() {
  if (!running_) return;
  ++nonce_;
  outstanding_ = true;
  ++probes_sent_;
  EFD_COUNTER_INC("fault.health.probes");
  // Arm the deadline before issuing the probe: a probe that completes
  // synchronously (loopback stubs) must find its timeout to cancel.
  timeout_ = sim_.after_inline(cfg_.probe_timeout, [this] { on_probe_timeout(); });
  probe_(nonce_);
}

void HealthMonitor::on_probe_timeout() {
  if (!outstanding_) return;
  outstanding_ = false;
  EFD_COUNTER_INC("fault.health.probe_timeouts");
  on_failure();
}

void HealthMonitor::on_probe_result(std::uint64_t nonce, bool ok) {
  if (!outstanding_ || nonce != nonce_) {
    // A late echo racing the timeout that already counted it as a failure.
    ++stale_results_;
    EFD_COUNTER_INC("fault.health.stale_results");
    return;
  }
  outstanding_ = false;
  timeout_.cancel();
  if (ok) {
    on_success();
  } else {
    on_failure();
  }
}

void HealthMonitor::report_failure() { on_failure(); }
void HealthMonitor::report_success() { on_success(); }

void HealthMonitor::deepen_backoff() {
  backoff_stage_ = std::min(backoff_stage_ + 1, max_backoff_stage_);
}

sim::Time HealthMonitor::reprobe_backoff() {
  double base_ns = static_cast<double>(cfg_.backoff_initial.ns()) *
                   std::pow(cfg_.backoff_factor, backoff_stage_);
  base_ns = std::min(base_ns, static_cast<double>(cfg_.backoff_max.ns()));
  const double jitter_ns = base_ns * cfg_.jitter_frac * rng_.uniform();
  return sim::Time{static_cast<std::int64_t>(base_ns + jitter_ns)};
}

void HealthMonitor::transition(State next) {
  state_ = next;
  if (listener_) listener_(next, sim_.now());
}

void HealthMonitor::on_failure() {
  ++consecutive_failures_;
  recovery_streak_ = 0;
  ++probes_failed_;
  EFD_COUNTER_INC("fault.health.failures");
  switch (state_) {
    case State::kClosed:
      if (consecutive_failures_ >= cfg_.trip_threshold) {
        ++trips_;
        backoff_stage_ = 0;
        EFD_COUNTER_INC("fault.health.trips");
        transition(State::kOpen);
        arm_next(reprobe_backoff());
      } else if (running_) {
        arm_next(cfg_.probe_interval);
      }
      break;
    case State::kHalfOpen:
      // A trial failure re-opens the breaker with a deeper backoff.
      deepen_backoff();
      EFD_COUNTER_INC("fault.health.reopen");
      transition(State::kOpen);
      arm_next(reprobe_backoff());
      break;
    case State::kOpen:
      deepen_backoff();
      arm_next(reprobe_backoff());
      break;
  }
}

void HealthMonitor::on_success() {
  consecutive_failures_ = 0;
  const auto close = [this] {
    backoff_stage_ = 0;
    recovery_streak_ = 0;
    ++recoveries_;
    EFD_COUNTER_INC("fault.health.recoveries");
    transition(State::kClosed);
    if (running_) arm_next(cfg_.probe_interval);
  };
  switch (state_) {
    case State::kClosed:
      if (running_) arm_next(cfg_.probe_interval);
      break;
    case State::kOpen:
      recovery_streak_ = 1;
      if (recovery_streak_ >= cfg_.recovery_successes) {
        close();
      } else {
        transition(State::kHalfOpen);
        arm_next(cfg_.probe_interval);
      }
      break;
    case State::kHalfOpen:
      ++recovery_streak_;
      if (recovery_streak_ >= cfg_.recovery_successes) {
        close();
      } else {
        arm_next(cfg_.probe_interval);
      }
      break;
  }
}

}  // namespace efd::fault

#pragma once

#include <array>
#include <functional>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/sim/simulator.hpp"

namespace efd::fault {

/// Drives a FaultPlan against the simulator clock. The injector itself is
/// mechanism-free: per-kind hooks (wired by the harness) apply and clear
/// the concrete effect — an impulse-noise floor on a PlcMedium, a jamming
/// penalty on a WifiMedium, a MAC queue stall. The injector owns the
/// schedule and the fault/recovery event trace.
///
/// Determinism: install() schedules every apply/clear at plan-defined
/// absolute times, so the trace is a pure function of (plan, simulator
/// event order). Recovery-side components append their transitions through
/// record(), on the same clock. No wall time, no global state — the same
/// seed and plan yield a byte-identical trace on any host and under any
/// EFD_BENCH_THREADS fan-out (injectors are per-simulator).
///
/// Steady-state cost: between scheduled fault events the injector executes
/// nothing; trace capacity is reserved at install time, so firing events
/// performs no allocation (pinned by fault_test).
class FaultInjector {
 public:
  struct Hooks {
    std::function<void(const FaultSpec&, sim::Time)> apply;
    std::function<void(const FaultSpec&, sim::Time)> clear;
  };

  explicit FaultInjector(sim::Simulator& simulator) : sim_(simulator) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  /// Disarms pending fault events — their callbacks capture `this`.
  ~FaultInjector();

  /// Install the apply/clear hooks for one fault kind. A kind with no hooks
  /// installed is still traced (the schedule fires, the trace records it) —
  /// useful for dry runs.
  void set_hooks(FaultKind kind, Hooks hooks);

  /// Schedule every fault in `plan`. May be called more than once; each
  /// call adds its plan's events to the schedule. Onsets must not be in
  /// the simulator's past.
  void install(const FaultPlan& plan);

  /// Append a recovery-side event to the trace (health-monitor trips,
  /// salvage outcomes). `severity` is phase-defined (e.g. packets salvaged).
  void record(FaultPhase phase, FaultKind kind, int target, double severity = 0.0);

  [[nodiscard]] const std::vector<FaultEvent>& trace() const { return trace_; }
  /// Newline-joined to_line() rendering of the whole trace; the
  /// byte-identical determinism artifact.
  [[nodiscard]] std::string trace_lines() const;

  /// Faults currently in force (applied, not yet cleared).
  [[nodiscard]] int active_faults() const { return active_; }
  [[nodiscard]] std::uint64_t faults_applied() const { return applied_; }
  [[nodiscard]] std::uint64_t faults_cleared() const { return cleared_; }

 private:
  void fire(const FaultSpec& spec, FaultPhase phase);
  [[nodiscard]] Hooks& hooks_for(FaultKind kind) {
    return hooks_[static_cast<std::size_t>(kind)];
  }

  sim::Simulator& sim_;
  std::array<Hooks, kFaultKindCount> hooks_;
  std::vector<sim::EventHandle> pending_;
  std::vector<FaultEvent> trace_;
  int active_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t cleared_ = 0;
};

}  // namespace efd::fault

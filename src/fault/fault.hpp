#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.hpp"
#include "src/sim/time.hpp"

namespace efd::fault {

/// The fault taxonomy (DESIGN.md §10). Each kind maps onto one of the
/// failure modes the paper observes: PLC links collapse under appliance
/// impulsive noise and tone-map invalidation (§5-§6), WiFi degrades under
/// interference (§4), and real adapters occasionally reset or wedge their
/// transmit queues (§7.1 power-cycles devices between runs for a reason).
enum class FaultKind : std::uint8_t {
  /// Appliance surge on the mains: PB decodes fail at `severity`
  /// probability (1.0 = total blackout) and tone maps are invalidated,
  /// forcing a ROBO re-sound when the surge clears.
  kPlcBlackout,
  /// Interferer burst on the WiFi channel: receiver SNR drops by
  /// `severity` dB for the duration (large values kill even MCS0).
  kWifiJam,
  /// Adapter/modem reset: transmit queue flushed, backoff and estimator
  /// state restarted. `severity` is unused.
  kModemReset,
  /// Random corruption: PB/MPDU decodes additionally fail with
  /// probability `severity` (a milder, persistent cousin of blackout).
  kPacketCorruption,
  /// The interface's transmit path wedges: the queue accepts packets but
  /// stops draining until the fault clears. `severity` is unused.
  kQueueStall,
  /// Campus fault domain (DESIGN.md §15): a whole distribution board loses
  /// power — every station on it goes dark, its media stop decoding and
  /// boundary ingress is dropped until the fault clears. `target` is the
  /// board index; `severity` is unused (a blackout is total).
  kBoardBlackout,
  /// Campus fault domain: a board browns out — its mains keep (barely)
  /// working while PB decodes additionally fail with probability
  /// `severity`. `target` is the board index.
  kBoardBrownout,
  /// Campus fault domain: a boundary link between two boards is severed
  /// (backhoe through the backbone, bridge radio knocked out). `target` is
  /// the campus topology's link index; both endpoint boards observe the
  /// same apply/clear instants. `severity` is unused.
  kLinkPartition,
};

/// Number of FaultKind values; sizes the injector's per-kind hook table.
inline constexpr std::size_t kFaultKindCount = 8;

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault: (onset, duration, kind, target, severity).
/// `target` is hook-defined — a medium index, station id, or interface
/// index, whatever the installed hook for `kind` expects.
struct FaultSpec {
  sim::Time onset{};
  sim::Time duration{};
  FaultKind kind = FaultKind::kPlcBlackout;
  int target = 0;
  double severity = 1.0;
};

/// Lifecycle phase of a fault/recovery trace record. kApply/kClear come
/// from the injector itself; the rest are recovery-side events recorded by
/// the failover machinery (health-monitor transitions, salvage outcomes).
enum class FaultPhase : std::uint8_t {
  kApply,     ///< fault onset took effect
  kClear,     ///< fault duration elapsed, effect removed
  kTrip,      ///< a health monitor opened (interface declared dead)
  kHalfOpen,  ///< reprobe succeeded once, trial traffic allowed
  kRecover,   ///< monitor closed again (interface declared live)
  kRequeue,   ///< a queued packet was salvaged onto a surviving interface
  kDrop,      ///< a queued packet exhausted its salvage budget
};

[[nodiscard]] const char* to_string(FaultPhase phase);

/// One record of the fault/recovery event trace. The trace is the
/// determinism contract: identical seed + identical plan must produce a
/// byte-identical sequence of these (see FaultInjector::trace_lines).
struct FaultEvent {
  sim::Time t{};
  FaultKind kind = FaultKind::kPlcBlackout;
  FaultPhase phase = FaultPhase::kApply;
  int target = 0;
  double severity = 0.0;

  bool operator==(const FaultEvent&) const = default;
};

/// Fixed-format rendering ("<ns> <kind> <phase> target=<n> sev=<x>"); used
/// by the byte-identical trace comparisons.
[[nodiscard]] std::string to_line(const FaultEvent& e);

/// An ordered set of faults to inject, composable declaratively or drawn
/// from a seeded Rng. Specs are kept sorted by (onset, insertion order) so
/// the injector's schedule — and therefore the event trace — is a pure
/// function of the plan.
class FaultPlan {
 public:
  FaultPlan& add(const FaultSpec& spec);

  /// Convenience composers.
  FaultPlan& blackout(sim::Time onset, sim::Time duration, int target = 0,
                      double severity = 1.0) {
    return add({onset, duration, FaultKind::kPlcBlackout, target, severity});
  }
  FaultPlan& wifi_jam(sim::Time onset, sim::Time duration, int target = 0,
                      double severity_db = 40.0) {
    return add({onset, duration, FaultKind::kWifiJam, target, severity_db});
  }
  FaultPlan& modem_reset(sim::Time onset, int target = 0) {
    return add({onset, sim::Time{}, FaultKind::kModemReset, target, 0.0});
  }
  FaultPlan& corruption(sim::Time onset, sim::Time duration, int target,
                        double probability) {
    return add({onset, duration, FaultKind::kPacketCorruption, target, probability});
  }
  FaultPlan& queue_stall(sim::Time onset, sim::Time duration, int target = 0) {
    return add({onset, duration, FaultKind::kQueueStall, target, 0.0});
  }
  FaultPlan& board_blackout(sim::Time onset, sim::Time duration, int board) {
    return add({onset, duration, FaultKind::kBoardBlackout, board, 1.0});
  }
  FaultPlan& board_brownout(sim::Time onset, sim::Time duration, int board,
                            double severity = 0.5) {
    return add({onset, duration, FaultKind::kBoardBrownout, board, severity});
  }
  FaultPlan& link_partition(sim::Time onset, sim::Time duration, int link) {
    return add({onset, duration, FaultKind::kLinkPartition, link, 0.0});
  }

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// Time at which the last fault has cleared.
  [[nodiscard]] sim::Time end() const;

  /// Parameters for a seeded random fault storm.
  struct StormConfig {
    sim::Time start = sim::seconds(1);
    sim::Time horizon = sim::seconds(60);   ///< onsets drawn in [start, horizon)
    int n_faults = 8;
    sim::Time min_duration = sim::milliseconds(200);
    sim::Time max_duration = sim::seconds(5);
    /// Kinds to draw from (uniformly). Empty = all duration-bearing kinds.
    std::vector<FaultKind> kinds;
    int n_targets = 1;                      ///< targets drawn in [0, n_targets)
    double min_severity = 0.5;
    double max_severity = 1.0;
  };

  /// Draw a storm from a seeded Rng: the same seed + config always yields
  /// the same plan (and therefore the same injector trace).
  [[nodiscard]] static FaultPlan random_storm(sim::Rng rng, const StormConfig& cfg);

  /// Parameters for a seeded campus-scale storm over the fault-domain
  /// kinds (DESIGN.md §15): board blackouts/brownouts draw targets in
  /// [0, n_boards), link partitions in [0, n_links).
  struct CampusStormConfig {
    sim::Time start = sim::milliseconds(20);
    sim::Time horizon = sim::milliseconds(150);  ///< onsets in [start, horizon)
    sim::Time min_duration = sim::milliseconds(10);
    sim::Time max_duration = sim::milliseconds(60);
    int n_blackouts = 2;
    int n_brownouts = 2;
    int n_partitions = 2;
    int n_boards = 1;
    int n_links = 0;   ///< 0 draws no partitions regardless of n_partitions
    double min_severity = 0.3;  ///< brownout PB-error floor
    double max_severity = 0.8;
  };

  /// Draw a campus fault-domain storm; same determinism contract as
  /// random_storm.
  [[nodiscard]] static FaultPlan random_campus_storm(sim::Rng rng,
                                                     const CampusStormConfig& cfg);

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace efd::fault

#include "src/fault/fault.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace efd::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPlcBlackout: return "plc_blackout";
    case FaultKind::kWifiJam: return "wifi_jam";
    case FaultKind::kModemReset: return "modem_reset";
    case FaultKind::kPacketCorruption: return "corruption";
    case FaultKind::kQueueStall: return "queue_stall";
    case FaultKind::kBoardBlackout: return "board_blackout";
    case FaultKind::kBoardBrownout: return "board_brownout";
    case FaultKind::kLinkPartition: return "link_partition";
  }
  return "?";
}

const char* to_string(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::kApply: return "apply";
    case FaultPhase::kClear: return "clear";
    case FaultPhase::kTrip: return "trip";
    case FaultPhase::kHalfOpen: return "half_open";
    case FaultPhase::kRecover: return "recover";
    case FaultPhase::kRequeue: return "requeue";
    case FaultPhase::kDrop: return "drop";
  }
  return "?";
}

std::string to_line(const FaultEvent& e) {
  // %.17g round-trips doubles exactly, so the rendering is byte-stable for
  // any severity a plan or Rng can produce.
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " %s %s target=%d sev=%.17g",
                e.t.ns(), to_string(e.kind), to_string(e.phase), e.target,
                e.severity);
  return buf;
}

FaultPlan& FaultPlan::add(const FaultSpec& spec) {
  // Keep sorted by onset; equal onsets keep insertion order so composing a
  // plan is deterministic regardless of how it was assembled.
  const auto it = std::upper_bound(
      specs_.begin(), specs_.end(), spec,
      [](const FaultSpec& a, const FaultSpec& b) { return a.onset < b.onset; });
  specs_.insert(it, spec);
  return *this;
}

sim::Time FaultPlan::end() const {
  sim::Time last{};
  for (const FaultSpec& s : specs_) last = std::max(last, s.onset + s.duration);
  return last;
}

FaultPlan FaultPlan::random_storm(sim::Rng rng, const StormConfig& cfg) {
  static const std::vector<FaultKind> kDefaultKinds = {
      FaultKind::kPlcBlackout, FaultKind::kWifiJam, FaultKind::kPacketCorruption,
      FaultKind::kQueueStall};
  const std::vector<FaultKind>& kinds =
      cfg.kinds.empty() ? kDefaultKinds : cfg.kinds;
  FaultPlan plan;
  for (int i = 0; i < cfg.n_faults; ++i) {
    FaultSpec s;
    s.onset = sim::Time{rng.uniform_int(cfg.start.ns(), cfg.horizon.ns() - 1)};
    s.duration =
        sim::Time{rng.uniform_int(cfg.min_duration.ns(), cfg.max_duration.ns())};
    s.kind = kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    s.target = static_cast<int>(rng.uniform_int(0, cfg.n_targets - 1));
    s.severity = rng.uniform(cfg.min_severity, cfg.max_severity);
    if (s.kind == FaultKind::kModemReset) s.duration = sim::Time{};
    plan.add(s);
  }
  return plan;
}

FaultPlan FaultPlan::random_campus_storm(sim::Rng rng,
                                         const CampusStormConfig& cfg) {
  FaultPlan plan;
  const auto draw = [&](FaultKind kind, int n, int n_targets) {
    for (int i = 0; i < n && n_targets > 0; ++i) {
      FaultSpec s;
      s.onset = sim::Time{rng.uniform_int(cfg.start.ns(), cfg.horizon.ns() - 1)};
      s.duration = sim::Time{
          rng.uniform_int(cfg.min_duration.ns(), cfg.max_duration.ns())};
      s.kind = kind;
      s.target = static_cast<int>(rng.uniform_int(0, n_targets - 1));
      s.severity = kind == FaultKind::kBoardBrownout
                       ? rng.uniform(cfg.min_severity, cfg.max_severity)
                       : (kind == FaultKind::kBoardBlackout ? 1.0 : 0.0);
      plan.add(s);
    }
  };
  // Fixed draw order (blackouts, brownouts, partitions) keeps the plan a
  // pure function of (rng seed, config).
  draw(FaultKind::kBoardBlackout, cfg.n_blackouts, cfg.n_boards);
  draw(FaultKind::kBoardBrownout, cfg.n_brownouts, cfg.n_boards);
  draw(FaultKind::kLinkPartition, cfg.n_partitions, cfg.n_links);
  return plan;
}

}  // namespace efd::fault

#pragma once

#include <cstdint>
#include <functional>

#include "src/sim/rng.hpp"
#include "src/sim/simulator.hpp"

namespace efd::fault {

/// Circuit-breaker health monitor for one interface (DESIGN.md §10).
///
/// States: closed (healthy, probing at `probe_interval`), open (tripped
/// after `trip_threshold` consecutive failures; reprobes with exponential
/// backoff plus deterministic jitter), half-open (one probe succeeded;
/// `recovery_successes` consecutive successes close the breaker again, any
/// failure re-opens it with a deeper backoff).
///
/// Probing is pluggable: each probe calls `probe(nonce)` and the subject
/// must answer via on_probe_result(nonce, ok) before `probe_timeout`, or
/// the probe counts as a failure. Data-path outcomes can feed the same
/// failure accounting through report_failure()/report_success().
///
/// Determinism: all timing lives on the simulator clock and the reprobe
/// jitter comes from the seeded Rng handed in at construction, so a given
/// (seed, fault schedule) replays the exact transition sequence. Steady
/// state (closed, probes succeeding) performs no heap allocation: the
/// probe/timeout events use inline captures and all bookkeeping is in
/// fixed-size members (pinned by fault_test).
class HealthMonitor {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Config {
    sim::Time probe_interval = sim::milliseconds(100);
    sim::Time probe_timeout = sim::milliseconds(40);
    /// Consecutive failures (probe timeouts or reported) that trip the
    /// breaker open.
    int trip_threshold = 3;
    /// Reprobe backoff while open: initial delay, growth factor, cap.
    sim::Time backoff_initial = sim::milliseconds(200);
    double backoff_factor = 2.0;
    sim::Time backoff_max = sim::seconds(5);
    /// Jitter fraction added to each backoff (drawn from the seeded Rng;
    /// decorrelates reprobe storms across members, stays reproducible).
    double jitter_frac = 0.1;
    /// Consecutive half-open successes required to close again.
    int recovery_successes = 2;
  };

  using ProbeFn = std::function<void(std::uint64_t nonce)>;
  using StateListener = std::function<void(State state, sim::Time t)>;

  HealthMonitor(sim::Simulator& simulator, sim::Rng rng, Config config,
                ProbeFn probe);
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;
  /// Disarms pending probe/timeout events — their callbacks capture `this`.
  ~HealthMonitor() { stop(); }

  /// Invoked on every state transition, after internal bookkeeping.
  void set_listener(StateListener listener) { listener_ = std::move(listener); }

  /// Begin probing (first probe after one probe_interval). Idempotent.
  void start();
  /// Cancel all pending probe activity. Idempotent; start() rearms.
  void stop();

  /// Probe answer path. Stale nonces (a late echo racing the timeout that
  /// already failed it) are counted and ignored.
  void on_probe_result(std::uint64_t nonce, bool ok);

  /// Data-path outcome feedback: counts toward the same consecutive-failure
  /// trip threshold / recovery streak as probes.
  void report_failure();
  void report_success();

  [[nodiscard]] State state() const { return state_; }
  /// True when the scheduler should carry traffic on this member (closed);
  /// half-open allows probes only, so it reads as not healthy.
  [[nodiscard]] bool healthy() const { return state_ == State::kClosed; }

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t probes_failed() const { return probes_failed_; }
  [[nodiscard]] std::uint64_t stale_results() const { return stale_results_; }
  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] int consecutive_failures() const { return consecutive_failures_; }
  /// Current reprobe-backoff stage; clamped to the stage whose delay first
  /// reaches backoff_max, so repeated probe timeouts while the breaker is
  /// already open cannot deepen it unboundedly.
  [[nodiscard]] int backoff_stage() const { return backoff_stage_; }

 private:
  void send_probe();
  void on_probe_timeout();
  void on_failure();
  void on_success();
  void transition(State next);
  /// (Re)arm the next probe after `delay`, replacing any pending one.
  void arm_next(sim::Time delay);
  [[nodiscard]] sim::Time reprobe_backoff();
  /// Deepen the reprobe backoff one stage, saturating at max_backoff_stage_.
  void deepen_backoff();

  sim::Simulator& sim_;
  mutable sim::Rng rng_;
  Config cfg_;
  ProbeFn probe_;
  StateListener listener_;

  State state_ = State::kClosed;
  bool running_ = false;
  bool outstanding_ = false;   ///< a probe is in flight
  std::uint64_t nonce_ = 0;    ///< nonce of the in-flight probe
  int consecutive_failures_ = 0;
  int recovery_streak_ = 0;
  int backoff_stage_ = 0;
  int max_backoff_stage_ = 0;  ///< first stage whose delay hits backoff_max

  sim::EventHandle next_;      ///< next scheduled probe
  sim::EventHandle timeout_;   ///< in-flight probe's deadline

  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_failed_ = 0;
  std::uint64_t stale_results_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t recoveries_ = 0;
};

[[nodiscard]] const char* to_string(HealthMonitor::State state);

}  // namespace efd::fault

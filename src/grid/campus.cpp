#include "src/grid/campus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "src/sim/rng.hpp"

namespace efd::grid {

namespace {

// Signal speed on mains copper (~0.6 c) vs. air. Propagation is the floor
// of the lookahead, never the bulk of it — the gateway's store-and-forward
// step dominates.
constexpr double kPlcNsPerMeter = 5.6;
constexpr double kWifiNsPerMeter = 3.34;

/// Minimum frame a gateway must fully receive before it can forward.
constexpr double kMinFrameBits = 64.0 * 8.0;

/// Gateway processing floors (decode + re-encode + queue). These set the
/// window granularity of the conservative protocol: ~0.5 ms of lookahead
/// means a 200 ms campus run synchronizes a few hundred times, not
/// millions.
constexpr std::int64_t kPlcGatewayFloorNs = 750'000;
constexpr std::int64_t kWifiGatewayFloorNs = 400'000;

}  // namespace

const char* to_string(BoundaryKind k) {
  switch (k) {
    case BoundaryKind::kPlcBackbone: return "plc_backbone";
    case BoundaryKind::kWifiBridge: return "wifi_bridge";
  }
  return "unknown";
}

sim::Time CampusTopology::derive_lookahead(BoundaryKind kind, double length_m,
                                           double budget_db) {
  const bool plc = kind == BoundaryKind::kPlcBackbone;
  const double prop_ns = (plc ? kPlcNsPerMeter : kWifiNsPerMeter) * length_m;
  // Budget-limited forwarding rate: every dB of crossing attenuation costs
  // carriers/bit-loading, so the worst crossings serialize slowest. The
  // clamp keeps even an absurd budget from zeroing the rate.
  const double rate_mbps =
      std::clamp((plc ? 200.0 : 150.0) - 2.0 * budget_db, 4.0, 200.0);
  const double ser_ns = kMinFrameBits / rate_mbps * 1e3;
  const std::int64_t floor_ns = plc ? kPlcGatewayFloorNs : kWifiGatewayFloorNs;
  return sim::Time{floor_ns + static_cast<std::int64_t>(prop_ns + ser_ns)};
}

CampusTopology CampusTopology::generate(const CampusConfig& cfg) {
  assert(cfg.n_outlets >= 1);
  assert(cfg.outlets_per_board >= 1);
  assert(cfg.boards_per_building >= 1);

  CampusTopology t;
  t.cfg_ = cfg;
  t.n_boards_ = (cfg.n_outlets + cfg.outlets_per_board - 1) / cfg.outlets_per_board;
  t.n_buildings_ =
      (t.n_boards_ + cfg.boards_per_building - 1) / cfg.boards_per_building;
  t.building_of_.resize(static_cast<std::size_t>(t.n_boards_));
  for (int b = 0; b < t.n_boards_; ++b) {
    t.building_of_[static_cast<std::size_t>(b)] = b / cfg.boards_per_building;
  }

  sim::Rng rng = sim::Rng{cfg.seed}.fork(0xCA3905);

  // Riser chain: consecutive boards of one building share a backbone cable
  // through the shaft, the path the paper's testbed measured as barely
  // usable for direct PLC.
  for (int b = 0; b + 1 < t.n_boards_; ++b) {
    if (t.building_of_[static_cast<std::size_t>(b)] !=
        t.building_of_[static_cast<std::size_t>(b + 1)]) {
      continue;
    }
    BoundaryLink l;
    l.board_a = b;
    l.board_b = b + 1;
    l.kind = BoundaryKind::kPlcBackbone;
    l.length_m = rng.uniform(10.0, 35.0);
    l.budget_db = rng.uniform(40.0, 60.0);
    l.lookahead = derive_lookahead(l.kind, l.length_m, l.budget_db);
    t.links_.push_back(l);
  }

  // Building-to-building WiFi bridges between the ground-floor boards,
  // chaining the campus. (The hybrid story of the paper: where the copper
  // gives out, the radio carries the traffic.)
  for (int bld = 0; bld + 1 < t.n_buildings_; ++bld) {
    BoundaryLink l;
    l.board_a = bld * cfg.boards_per_building;
    l.board_b = (bld + 1) * cfg.boards_per_building;
    l.kind = BoundaryKind::kWifiBridge;
    l.length_m = rng.uniform(40.0, 150.0);
    l.budget_db = rng.uniform(65.0, 80.0);
    l.lookahead = derive_lookahead(l.kind, l.length_m, l.budget_db);
    t.links_.push_back(l);
  }

  return t;
}

std::vector<int> CampusTopology::neighbors(int board) const {
  std::vector<int> out;
  for (const BoundaryLink& l : links_) {
    if (l.board_a == board) out.push_back(l.board_b);
    if (l.board_b == board) out.push_back(l.board_a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int CampusTopology::outlets_on_board(int board) const {
  const int first = board * cfg_.outlets_per_board;
  return std::min(cfg_.outlets_per_board, cfg_.n_outlets - first);
}

int CampusTopology::station_outlet(int board, int k) const {
  const int outlets = outlets_on_board(board);
  const int stations = std::min(cfg_.stations_per_board, outlets);
  assert(k >= 0 && k < stations);
  return k * outlets / stations;
}

int CampusTopology::shard_of_board(int board, int n_shards) const {
  const int k = std::clamp(n_shards, 1, n_boards_);
  return static_cast<int>(static_cast<std::int64_t>(board) * k / n_boards_);
}

void CampusTopology::build_board_grid(int board, PowerGrid& grid) const {
  // Board-local structure comes from a per-board fork, so the grid a board
  // gets never depends on which shard (or thread) builds it.
  sim::Rng rng = sim::Rng{cfg_.seed}.fork(0xB0A2D000 + static_cast<std::uint64_t>(board));
  const int outlets = outlets_on_board(board);

  for (int i = 0; i < outlets; ++i) {
    grid.add_node("b" + std::to_string(board) + "o" + std::to_string(i));
  }

  // Outlet 0 is the panel. Runs mostly daisy-chain room to room, with the
  // occasional home-run straight back to the panel; a few joints carry
  // lumped loss (junction boxes, a sub-panel).
  for (int i = 1; i < outlets; ++i) {
    const int parent = rng.bernoulli(0.3) ? 0 : i - 1;
    const double length = rng.uniform(3.0, 14.0);
    const double extra = rng.bernoulli(0.15) ? rng.uniform(1.0, 4.0) : 0.0;
    grid.add_cable(parent, i, length, extra);
  }

  // Office appliance population: roughly one load per outlet plus a few
  // stubs, drawn from a fixed weighted palette.
  static constexpr ApplianceType kPalette[] = {
      ApplianceType::kWorkstation, ApplianceType::kWorkstation,
      ApplianceType::kMonitor,     ApplianceType::kLightBank,
      ApplianceType::kPhoneCharger, ApplianceType::kHvac,
      ApplianceType::kPrinter,     ApplianceType::kFridge,
      ApplianceType::kPassiveStub, ApplianceType::kPassiveStub,
  };
  constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));
  for (int i = 0; i < outlets; ++i) {
    if (rng.bernoulli(0.2)) continue;  // empty outlet
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, kPaletteSize - 1));
    const std::uint64_t seed =
        cfg_.seed ^ (static_cast<std::uint64_t>(board) << 20) ^
        static_cast<std::uint64_t>(i);
    grid.add_appliance(make_appliance(kPalette[pick], i, seed));
  }
}

std::string CampusTopology::to_json(int n_shards) const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"n_outlets\": " + std::to_string(cfg_.n_outlets);
  out += ",\n  \"n_boards\": " + std::to_string(n_boards_);
  out += ",\n  \"n_buildings\": " + std::to_string(n_buildings_);
  out += ",\n  \"n_shards\": " + std::to_string(std::clamp(n_shards, 1, n_boards_));
  out += ",\n  \"seed\": " + std::to_string(cfg_.seed);
  out += ",\n  \"boards\": [";
  for (int b = 0; b < n_boards_; ++b) {
    out += b == 0 ? "\n" : ",\n";
    out += "    {\"board\": " + std::to_string(b);
    out += ", \"building\": " + std::to_string(building_of(b));
    out += ", \"outlets\": " + std::to_string(outlets_on_board(b));
    out += ", \"stations\": " +
           std::to_string(std::min(cfg_.stations_per_board, outlets_on_board(b)));
    out += ", \"shard\": " + std::to_string(shard_of_board(b, n_shards)) + "}";
  }
  out += "\n  ],\n  \"boundary_links\": [";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const BoundaryLink& l = links_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"a\": " + std::to_string(l.board_a);
    out += ", \"b\": " + std::to_string(l.board_b);
    out += ", \"kind\": \"" + std::string(to_string(l.kind)) + "\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", l.length_m);
    out += ", \"length_m\": " + std::string(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", l.budget_db);
    out += ", \"budget_db\": " + std::string(buf);
    out += ", \"lookahead_ns\": " + std::to_string(l.lookahead.ns());
    out += ", \"cross_shard\": ";
    out += shard_of_board(l.board_a, n_shards) != shard_of_board(l.board_b, n_shards)
               ? "true"
               : "false";
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace efd::grid

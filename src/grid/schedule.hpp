#pragma once

#include <cstdint>

#include "src/sim/time.hpp"

namespace efd::grid {

/// Day-of-week and time-of-day helpers. Simulation time zero is Monday 00:00.
struct Calendar {
  static int day_index(sim::Time t) { return static_cast<int>(t.ns() / sim::days(1).ns()); }
  static bool is_weekend(sim::Time t) { return day_index(t) % 7 >= 5; }
  /// Hours since midnight, in [0, 24).
  static double hour_of_day(sim::Time t) {
    const auto day_ns = sim::days(1).ns();
    return static_cast<double>(t.ns() % day_ns) / static_cast<double>(sim::hours(1).ns());
  }
};

/// When an appliance is powered. Deterministic function of time so that the
/// whole grid state is reproducible and can be queried at any instant without
/// simulating the schedule event-by-event.
class ActivitySchedule {
 public:
  enum class Kind {
    kAlwaysOn,
    /// Office lighting: on 07:30-21:00 on weekdays; the building turns all
    /// lights off at 21:00 sharp (the step visible in the paper's Fig. 12).
    kOfficeLights,
    /// A workstation/monitor: weekdays, with a per-appliance arrival offset
    /// in [0,2) h after 08:00 and departure offset before/after 17:30.
    kWorkstation,
    /// Periodic duty cycle (fridge compressor, HVAC): fixed period and duty.
    kDutyCycle,
    /// Short random uses during working hours (microwave, coffee machine,
    /// printer): deterministic pseudo-random bursts.
    kIntermittent,
  };

  ActivitySchedule() = default;
  ActivitySchedule(Kind kind, std::uint64_t seed) : kind_(kind), seed_(seed) {}

  static ActivitySchedule always_on() { return {Kind::kAlwaysOn, 0}; }
  static ActivitySchedule office_lights() { return {Kind::kOfficeLights, 0}; }
  static ActivitySchedule workstation(std::uint64_t seed) { return {Kind::kWorkstation, seed}; }
  static ActivitySchedule duty_cycle(sim::Time period, double duty, std::uint64_t seed);
  static ActivitySchedule intermittent(double uses_per_hour, sim::Time use_duration,
                                       std::uint64_t seed);

  [[nodiscard]] bool is_on(sim::Time t) const;
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_ = Kind::kAlwaysOn;
  std::uint64_t seed_ = 0;
  sim::Time period_ = sim::minutes(10);
  double duty_ = 0.5;
  double uses_per_hour_ = 1.0;
  sim::Time use_duration_ = sim::minutes(3);
};

}  // namespace efd::grid

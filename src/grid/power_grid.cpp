#include "src/grid/power_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "src/grid/db_units.hpp"
#include "src/grid/simd.hpp"
#include "src/grid/value_noise.hpp"
#include "src/obs/obs.hpp"

namespace efd::grid {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cable attenuation coefficients: a small per-meter term plus a
/// frequency-dependent term (skin effect / dielectric loss grow with
/// frequency), cable_loss_db(d, f) = kCableLossPerM*d + kCableLossPerMMhz*d*f.
/// Calibrated so that a bare 70 m cable costs only a few dB — the paper
/// observes at most a 2 Mb/s throughput drop over 70 m of unloaded cable
/// (§5). The large distance losses observed in buildings come from branch
/// taps, not the cable itself.
constexpr double kCableLossPerM = 0.015;
constexpr double kCableLossPerMMhz = 0.0012;

/// Insertion loss of one branch tap (T-junction) along the path: every
/// junction splits signal power into the side branches.
constexpr double kTapLossDb = 1.5;

/// Reflection coefficient magnitude of a load Z against the line impedance.
double reflection(double z_load) {
  return std::abs(z_load - PowerGrid::kZ0) / (z_load + PowerGrid::kZ0);
}

/// Per-appliance mains-synchronous noise weight for a tone-map slot: a
/// smooth per-appliance phase over the half cycle, in [0, 1].
double slot_weight(const Appliance& a, int slot, int n_slots) {
  const double phase =
      2.0 * std::numbers::pi * ValueNoise::hash01(a.seed, 200);
  const double x = (static_cast<double>(slot) + 0.5) / static_cast<double>(n_slots);
  return 0.5 * (1.0 + std::sin(2.0 * std::numbers::pi * x + phase));
}

}  // namespace

int PowerGrid::add_node(std::string name) {
  distances_valid_ = false;
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size()) - 1;
}

void PowerGrid::add_cable(int a, int b, double length_m, double extra_loss_db) {
  assert(a >= 0 && a < node_count() && b >= 0 && b < node_count());
  assert(length_m > 0.0 && extra_loss_db >= 0.0);
  distances_valid_ = false;
  cables_.push_back({a, b, length_m, extra_loss_db});
}

int PowerGrid::add_appliance(Appliance appliance) {
  assert(appliance.outlet >= 0 && appliance.outlet < node_count());
  distances_valid_ = false;  // noise-neighbor lists must be rebuilt
  epoch_bucket_ = -1;
  profiles_.clear();  // per-(appliance, band) tables must be rebuilt
  appliances_.push_back(std::move(appliance));
  return static_cast<int>(appliances_.size()) - 1;
}

const PowerGrid::BandProfiles& PowerGrid::ensure_profiles(const CarrierBand& band) const {
  for (const BandProfiles& p : profiles_) {
    if (p.band.f_min_mhz == band.f_min_mhz && p.band.f_max_mhz == band.f_max_mhz &&
        p.band.n_carriers == band.n_carriers) {
      return p;
    }
  }
  EFD_COUNTER_INC("grid.profiles.rebuilds");
  EFD_PROF_SCOPE("grid.profiles");  // rebuild path only; hits return above
  BandProfiles p;
  p.band = band;
  const auto n = static_cast<std::size_t>(band.n_carriers);
  p.freq_mhz.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.freq_mhz[i] = band.carrier_mhz(static_cast<int>(i));
  }
  p.notch_sin.resize(appliances_.size() * n);
  p.color_lin.resize(appliances_.size() * n);
  for (std::size_t k = 0; k < appliances_.size(); ++k) {
    const Appliance& j = appliances_[k];
    const double phi = 2.0 * std::numbers::pi * ValueNoise::hash01(j.seed, 300);
    double* notch = &p.notch_sin[k * n];
    double* color = &p.color_lin[k * n];
    for (std::size_t i = 0; i < n; ++i) {
      const double f = p.freq_mhz[i];
      notch[i] = std::sin(2.0 * std::numbers::pi * f * j.branch_delay_us + phi);
      color[i] = db_to_linear(j.noise.base_db + j.noise.color_db_per_mhz * f);
    }
  }
  profiles_.push_back(std::move(p));
  return profiles_.back();
}

void PowerGrid::ensure_distances() const {
  if (distances_valid_) return;
  EFD_PROF_SCOPE("grid.distances");
  const auto n = names_.size();
  dist_.assign(n * n, kInf);
  extra_.assign(n * n, 0.0);
  hops_.assign(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) dist_[i * n + i] = 0.0;
  for (const Cable& c : cables_) {
    const auto a = static_cast<std::size_t>(c.a);
    const auto b = static_cast<std::size_t>(c.b);
    if (c.length_m < dist_[a * n + b]) {
      dist_[a * n + b] = dist_[b * n + a] = c.length_m;
      extra_[a * n + b] = extra_[b * n + a] = c.extra_loss_db;
      hops_[a * n + b] = hops_[b * n + a] = 1;
    }
  }
  // Floyd-Warshall; the grid has at most a few dozen nodes. The lumped
  // extra loss and the tap count ride along the shortest-by-length path.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist_[i * n + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double alt = dik + dist_[k * n + j];
        if (alt < dist_[i * n + j]) {
          dist_[i * n + j] = alt;
          extra_[i * n + j] = extra_[i * n + k] + extra_[k * n + j];
          hops_[i * n + j] = hops_[i * n + k] + hops_[k * n + j];
        }
      }
    }
  }
  distances_valid_ = true;

  // Precompute, per node, the appliances whose noise can reach it.
  noise_neighbors_.assign(n, {});
  for (std::size_t node = 0; node < n; ++node) {
    for (std::size_t k = 0; k < appliances_.size(); ++k) {
      if (noise_coupling(appliances_[k], static_cast<int>(node)) >= 1e-3) {
        noise_neighbors_[node].push_back(static_cast<int>(k));
      }
    }
  }
}

double PowerGrid::cable_distance(int a, int b) const {
  ensure_distances();
  return dist(a, b);
}

double PowerGrid::path_extra_loss_db(int a, int b) const {
  ensure_distances();
  return extra(a, b);
}

double PowerGrid::noise_coupling(const Appliance& j, int node) const {
  const double d = dist(j.outlet, node);
  if (d == kInf) return 0.0;
  // Noise travels along the same lossy line, decaying over a ~9 m scale.
  return std::exp(-d / 9.0);
}

double PowerGrid::path_weight(const Appliance& j, int a, int b) const {
  const double dab = dist(a, b);
  const double detour = dist(a, j.outlet) + dist(j.outlet, b) - dab;
  if (!(detour < kInf)) return 0.0;
  // On-path appliances (detour ~ 0) matter fully; branches decay over ~8 m.
  return std::exp(-std::max(0.0, detour) / 8.0);
}

std::vector<double> PowerGrid::attenuation_db(int a, int b, const CarrierBand& band,
                                              sim::Time t) const {
  std::vector<double> att;
  attenuation_db(a, b, band, t, att);
  return att;
}

std::span<const double> PowerGrid::attenuation_db(int a, int b, const CarrierBand& band,
                                                  sim::Time t, CarrierWorkspace& ws) const {
  CarrierWorkspace::Guard guard(ws);
  ws.att_db.resize(static_cast<std::size_t>(band.n_carriers));
  attenuation_into(a, b, band, t, ws.att_db.data());
  return ws.att_db;
}

void PowerGrid::attenuation_db(int a, int b, const CarrierBand& band, sim::Time t,
                               std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(band.n_carriers));
  attenuation_into(a, b, band, t, out.data());
}

void PowerGrid::attenuation_into(int a, int b, const CarrierBand& band, sim::Time t,
                                 double* out) const {
  EFD_COUNTER_INC("grid.atten.queries");
  EFD_PROF_SCOPE("grid.atten");
  ensure_distances();
  assert(a >= 0 && a < node_count() && b >= 0 && b < node_count());
  const simd::CarrierKernels& kernels = simd::active_kernels();
  const auto n = static_cast<std::size_t>(band.n_carriers);
  const double d = dist(a, b);
  if (d == kInf) {
    std::fill(out, out + n, 200.0);  // no electrical path
    return;
  }
  const BandProfiles& prof = ensure_profiles(band);

  // Transmitter-side injection loss: low-impedance loads plugged near the
  // transmitter shunt the injected signal, and the outlet's own coupling
  // quality (socket contact, extension strips) varies from a fraction of a
  // dB to several dB. Both depend on the *transmitter* end only, which is
  // what makes links asymmetric (§5: ~30% of pairs exceed 1.5x).
  double injection_db = 6.0 * ValueNoise::hash01(0x1aeceULL, a);
  for (const Appliance& j : appliances_) {
    if (!j.schedule.is_on(t)) continue;
    const double dj = dist(j.outlet, a);
    if (dj == kInf) continue;
    const double proximity = std::exp(-dj / 7.0);
    // Passive stubs do not shunt the transmitter the way operating loads
    // do; their effect is pure multipath.
    if (j.type == ApplianceType::kPassiveStub) continue;
    injection_db += proximity * 2.5 * (kZ0 / (kZ0 + j.impedance_ohm));
  }

  // Slow drift of the transfer function (thermal, minor load changes): a
  // fraction of a dB over hours.
  const std::uint64_t link_seed =
      0x5eedULL ^ (static_cast<std::uint64_t>(a) << 32) ^ static_cast<std::uint64_t>(b);
  const double drift_db = 0.6 * ValueNoise::fractal(link_seed, t.seconds() / 3600.0, 2);

  // Lumped panel losses plus tap loss at every junction crossed. A direct
  // cable (one hop) has no taps, which keeps the paper's bare-70 m-cable
  // observation intact.
  const double lumped_db =
      extra(a, b) + kTapLossDb * std::max(0, hops(a, b) - 1);
  // Cable loss is affine in carrier frequency, so the whole base spectrum is
  // one affine map of the precomputed carrier-frequency vector.
  const double base_db = kCableLossPerM * d + lumped_db + injection_db + drift_db;
  // The batched carrier work attributes to the live dispatch entry
  // ("scalar"/"avx2"/"neon"), so the profile tree separates per-carrier
  // kernel time from the per-appliance scalar prologue above.
  EFD_PROF_SCOPE(kernels.name);
  kernels.affine_n(base_db, kCableLossPerMMhz * d, prof.freq_mhz.data(), out, n);

  // Multipath notches from impedance mismatches of powered appliances near
  // the path. Each appliance's branch line creates frequency-periodic
  // notches at spacing 1/branch_delay; the sine profile is time-invariant
  // and read from the band table.
  for (std::size_t k = 0; k < appliances_.size(); ++k) {
    const Appliance& j = appliances_[k];
    if (!j.schedule.is_on(t)) continue;
    const double w = path_weight(j, a, b);
    if (w < 1e-3) continue;
    const double gamma = reflection(j.impedance_ohm);
    const double depth = j.notch_depth_db * gamma * w;
    const double broadband = 0.5 * gamma * w;
    kernels.accumulate_notch_n(broadband, depth, &prof.notch_sin[k * n], out, n);
  }
}

std::vector<double> PowerGrid::noise_psd_db(int b, const CarrierBand& band, sim::Time t,
                                            int slot, int n_slots) const {
  CarrierWorkspace ws;
  const auto span = noise_psd_db(b, band, t, slot, n_slots, ws);
  return {span.begin(), span.end()};
}

std::span<const double> PowerGrid::noise_psd_db(int b, const CarrierBand& band,
                                                sim::Time t, int slot, int n_slots,
                                                CarrierWorkspace& ws) const {
  CarrierWorkspace::Guard guard(ws);
  const auto n = static_cast<std::size_t>(band.n_carriers);
  ws.power.resize(n);
  ws.noise_db.resize(n);
  noise_psd_into(b, band, t, slot, n_slots, ws.power.data(), ws.noise_db.data());
  return ws.noise_db;
}

void PowerGrid::noise_psd_into(int b, const CarrierBand& band, sim::Time t,
                               int slot, int n_slots, double* power,
                               double* out) const {
  EFD_COUNTER_INC("grid.noise.queries");
  EFD_PROF_SCOPE("grid.noise");
  ensure_distances();
  assert(b >= 0 && b < node_count());
  assert(slot >= 0 && slot < n_slots);
  const simd::CarrierKernels& kernels = simd::active_kernels();
  const BandProfiles& prof = ensure_profiles(band);
  const auto n = static_cast<std::size_t>(band.n_carriers);
  // Background mains noise: the grid outside the building couples in a
  // residual wideband, mains-synchronous component that never switches off
  // (why night traces still wiggle, §6.2). It sits over the 0 dB floor.
  const double bg_phase = (static_cast<double>(slot) + 0.5) / n_slots;
  const double bg_db =
      1.0 + 1.5 * 0.5 * (1.0 + std::sin(2.0 * std::numbers::pi * bg_phase + 0.7));
  // Accumulate appliance contributions in the power domain over the floor.
  // Each appliance factors into (per-query scalar) x (precomputed spectral
  // profile), so the inner loop carries no transcendentals.
  std::fill(power, power + n, 1.0 + db_to_linear(bg_db));
  EFD_PROF_SCOPE(kernels.name);
  for (int k : noise_neighbors_[static_cast<std::size_t>(b)]) {
    const Appliance& j = appliances_[static_cast<std::size_t>(k)];
    if (!j.schedule.is_on(t)) continue;
    const double coupling = noise_coupling(j, b);
    // The -3 dB injection factor models the appliance's own EMI filtering;
    // calibrated so working-hours load costs links a few dB of SNR, not
    // their lives (the paper's day/night swing is a handful of Mb/s).
    const double coupling_db = 10.0 * std::log10(coupling) - 6.0;
    const double sync_db = j.noise.sync_db * slot_weight(j, slot, n_slots);
    const double scale = db_to_linear(sync_db + coupling_db);
    kernels.accumulate_scaled_n(scale, &prof.color_lin[static_cast<std::size_t>(k) * n],
                                power, n);
  }
  kernels.linear_to_db_n(power, out, n);
}

double PowerGrid::fast_noise_offset_db(int b, sim::Time t) const {
  ensure_distances();
  const std::vector<int>& neighbors =
      noise_neighbors_[static_cast<std::size_t>(b)];
  // Residual grid-wide jitter, present around the clock.
  double offset = 2.5 * ValueNoise::fractal(0xb6dULL ^ static_cast<std::uint64_t>(b),
                                            t.seconds() / 0.12, 2);
  // Background impulsive noise: switching transients elsewhere in the
  // building arrive as ~10 ms bursts whose magnitude varies widely. A link
  // with little SNR headroom errors on most of them (frequent tone-map
  // updates, ~100 ms scale); a link with ample headroom only on the rare
  // big ones — which is exactly the quality/update-rate coupling of §6.2.
  {
    const auto window = sim::milliseconds(10);
    const auto idx = t.ns() / window.ns();
    const std::uint64_t bs = static_cast<std::uint64_t>(b);
    if (ValueNoise::hash01(0x1497ULL ^ bs, idx) < 0.012) {
      const double u = ValueNoise::hash01(0x1498ULL ^ bs, idx);
      offset += 2.0 + 12.0 * u * u;
    }
  }
  for (int k : neighbors) {
    const Appliance& j = appliances_[static_cast<std::size_t>(k)];
    if (!j.schedule.is_on(t)) continue;
    const double coupling = noise_coupling(j, b);
    // Cycle-scale jitter: smooth value noise with a ~100 ms lattice.
    offset += coupling * j.noise.jitter_db *
              ValueNoise::fractal(j.seed ^ 0x11c7ULL, t.seconds() / 0.1, 2);
    // Switching impulses: 10 ms windows active at the appliance's rate.
    if (j.noise.impulse_rate_hz > 0.0) {
      const auto window = sim::milliseconds(10);
      const auto idx = t.ns() / window.ns();
      const double p = j.noise.impulse_rate_hz * window.seconds();
      if (ValueNoise::hash01(j.seed ^ 0x1337ULL, idx) < p) {
        offset += coupling * j.noise.impulse_db;
      }
    }
  }
  return offset;
}

std::uint64_t PowerGrid::state_epoch(sim::Time t) const {
  // Memoize per 1 s bucket: this is called on every channel query, and
  // appliance schedules only move on second scales.
  const std::int64_t bucket = t.ns() / sim::seconds(1).ns();
  if (bucket == epoch_bucket_) return epoch_value_;
  std::uint64_t epoch = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::size_t k = 0; k < appliances_.size(); ++k) {
    const bool on = appliances_[k].schedule.is_on(t);
    epoch ^= (static_cast<std::uint64_t>(on) << (k % 63)) + k * 0x100000001b3ULL;
    epoch *= 0x100000001b3ULL;
  }
  EFD_COUNTER_INC("grid.epoch.recomputes");
  if (epoch_bucket_ >= 0 && epoch != epoch_value_) {
    EFD_COUNTER_INC("grid.epoch.advances");
  }
  epoch_bucket_ = bucket;
  epoch_value_ = epoch;
  return epoch;
}

int PowerGrid::appliances_on(sim::Time t) const {
  int n = 0;
  for (const Appliance& j : appliances_) n += j.schedule.is_on(t) ? 1 : 0;
  return n;
}

}  // namespace efd::grid

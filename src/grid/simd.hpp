#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace efd::grid::simd {

/// View of a row-interpolated lookup table (the BER LUT of plc/modulation):
/// `rows` rows of `size` doubles, row-major, sampled every `step_db` starting
/// at `min_db`. A batch kernel gathers two neighbouring samples per element
/// and interpolates, exactly like the scalar `plc::uncoded_ber`.
struct InterpTableView {
  const double* table = nullptr;  ///< [rows][size], row-major
  std::int32_t rows = 0;
  std::int32_t size = 0;
  double min_db = 0.0;
  double step_db = 1.0;
};

/// One interchangeable set of *batch* carrier-domain kernels — the
/// structure-of-arrays counterpart of `efd::testkit::CarrierMathImpl`. The
/// five hot per-carrier loops of the channel stack (attenuation assembly,
/// noise accumulation, dB<->linear conversion, SNR assembly, BER-LUT
/// reduction) route through the table returned by `active_kernels()`, so a
/// SIMD implementation is one more entry selected at runtime: no `#ifdef`
/// forks at call sites, every variant lives in every binary and can be
/// differentially checked against the others (testkit DiffRunner).
///
/// Kernel contracts (all sizes in elements, buffers may overlap only where
/// a kernel reads and writes the same array):
///  - db_to_linear_n:   out[i] = 2^(db[i] * log2(10)/10)      (= 10^(db/10))
///  - linear_to_db_n:   out[i] = log2(lin[i]) * 10*log10(2)   (lin[i] > 0,
///                      normal; the carrier power domain never underflows)
///  - affine_n:         out[i] = add + slope * x[i]
///  - accumulate_notch_n: acc[i] += broadband + depth * s[i]^2
///  - accumulate_scaled_n: acc[i] += scale * x[i]
///  - assemble_snr_n:   out[i] = c - a[i] - b[i]
///  - shift_n:          out[i] = in[i] - offset   (in == out allowed)
///  - sum_db_to_linear_n: returns sum_i 10^(db[i]/10)  (ROBO combining)
///  - ber_weighted_sum_n: per element, row = row_off[i] (premultiplied row
///    index * lut.size), clamped-lerp lookup of lut at snr[i] + gain_db,
///    then *weighted_ber += value * bits[i], *total_bits += bits[i].
///
/// The scalar entry reproduces the PR 1 fast-path loops operation for
/// operation (bit-identical figures under EFD_SIMD=scalar); vector entries
/// may reassociate sums and use FMA, and are gated by the DiffRunner
/// tolerance contract instead (DESIGN.md §11/§12).
struct CarrierKernels {
  const char* name;
  void (*db_to_linear_n)(const double* db, double* out, std::size_t n);
  void (*linear_to_db_n)(const double* lin, double* out, std::size_t n);
  void (*affine_n)(double add, double slope, const double* x, double* out,
                   std::size_t n);
  void (*accumulate_notch_n)(double broadband, double depth, const double* s,
                             double* acc, std::size_t n);
  void (*accumulate_scaled_n)(double scale, const double* x, double* acc,
                              std::size_t n);
  void (*assemble_snr_n)(double c, const double* a, const double* b, double* out,
                         std::size_t n);
  void (*shift_n)(const double* in, double offset, double* out, std::size_t n);
  double (*sum_db_to_linear_n)(const double* db, std::size_t n);
  void (*ber_weighted_sum_n)(const InterpTableView& lut,
                             const std::int32_t* row_off, const double* bits,
                             const double* snr_db, double gain_db, std::size_t n,
                             double* weighted_ber, double* total_bits);
};

/// The portable scalar entry (always available).
[[nodiscard]] const CarrierKernels& scalar_kernels();

/// AVX2+FMA / NEON entries: null when the binary was not compiled with the
/// implementation or the CPU lacks the feature. Exposed so tests and the
/// DiffRunner can exercise every compiled-in entry explicitly.
[[nodiscard]] const CarrierKernels* avx2_kernels();
[[nodiscard]] const CarrierKernels* neon_kernels();

/// Every entry usable on this machine (scalar first). Differential tests
/// iterate this: each entry must agree with the naive reference within the
/// DiffRunner tolerance contract.
[[nodiscard]] std::span<const CarrierKernels* const> available_kernels();

/// Pure selection logic (unit-testable): resolve an EFD_SIMD-style request
/// ("scalar" | "avx2" | "neon" | "auto" | "") against what is available.
/// Unknown names and unavailable implementations fall back to the best
/// available entry ("auto"); "scalar" always honours the request.
[[nodiscard]] const CarrierKernels& select_kernels(std::string_view want);

/// The process-wide selection: EFD_SIMD environment override resolved via
/// select_kernels() on first use, then memoized. Records the chosen entry in
/// the `carrier_math.impl` efd::obs gauge (0 scalar, 1 avx2, 2 neon) so every
/// BENCH_*.json / --metrics snapshot names the code path it measured.
[[nodiscard]] const CarrierKernels& active_kernels();

/// Stable index of an entry for metrics (0 scalar, 1 avx2, 2 neon).
[[nodiscard]] int impl_index(const CarrierKernels& k);
[[nodiscard]] int active_impl_index();
[[nodiscard]] const char* active_impl_name();

}  // namespace efd::grid::simd

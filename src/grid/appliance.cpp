#include "src/grid/appliance.hpp"

#include "src/grid/value_noise.hpp"

namespace efd::grid {

std::string to_string(ApplianceType t) {
  switch (t) {
    case ApplianceType::kLightBank: return "light-bank";
    case ApplianceType::kWorkstation: return "workstation";
    case ApplianceType::kMonitor: return "monitor";
    case ApplianceType::kFridge: return "fridge";
    case ApplianceType::kMicrowave: return "microwave";
    case ApplianceType::kCoffeeMachine: return "coffee-machine";
    case ApplianceType::kPrinter: return "printer";
    case ApplianceType::kHvac: return "hvac";
    case ApplianceType::kPhoneCharger: return "phone-charger";
    case ApplianceType::kPassiveStub: return "passive-stub";
  }
  return "unknown";
}

Appliance make_appliance(ApplianceType type, int outlet, std::uint64_t seed) {
  Appliance a;
  a.type = type;
  a.outlet = outlet;
  a.seed = seed;
  // Individual spread around the type presets below.
  const double u0 = ValueNoise::hash01(seed, 100);
  const double u1 = ValueNoise::hash01(seed, 101);
  const double u2 = ValueNoise::hash01(seed, 102);

  switch (type) {
    case ApplianceType::kLightBank:
      a.impedance_ohm = 40.0 + 40.0 * u0;
      a.noise = {.base_db = 6.0, .sync_db = 5.0, .jitter_db = 1.5,
                 .impulse_rate_hz = 0.0, .impulse_db = 8.0,
                 .color_db_per_mhz = -0.10};
      a.schedule = ActivitySchedule::office_lights();
      a.notch_depth_db = 4.0 + 2.0 * u1;
      break;
    case ApplianceType::kWorkstation:
      a.impedance_ohm = 60.0 + 80.0 * u0;
      a.noise = {.base_db = 5.0, .sync_db = 4.0, .jitter_db = 2.5,
                 .impulse_rate_hz = 0.02, .impulse_db = 10.0,
                 .color_db_per_mhz = -0.08};
      a.schedule = ActivitySchedule::workstation(seed);
      a.notch_depth_db = 3.0 + 2.0 * u1;
      break;
    case ApplianceType::kMonitor:
      a.impedance_ohm = 120.0 + 120.0 * u0;
      a.noise = {.base_db = 3.0, .sync_db = 3.0, .jitter_db = 1.5,
                 .impulse_rate_hz = 0.01, .impulse_db = 6.0,
                 .color_db_per_mhz = -0.06};
      a.schedule = ActivitySchedule::workstation(seed ^ 0xabcdULL);
      a.notch_depth_db = 2.0 + 1.5 * u1;
      break;
    case ApplianceType::kFridge:
      a.impedance_ohm = 25.0 + 25.0 * u0;
      a.noise = {.base_db = 7.0, .sync_db = 6.0, .jitter_db = 3.0,
                 .impulse_rate_hz = 0.005, .impulse_db = 14.0,
                 .color_db_per_mhz = -0.12};
      a.schedule = ActivitySchedule::duty_cycle(sim::minutes(12.0 + 8.0 * u2), 0.45, seed);
      a.notch_depth_db = 5.0 + 3.0 * u1;
      break;
    case ApplianceType::kMicrowave:
      a.impedance_ohm = 15.0 + 10.0 * u0;
      a.noise = {.base_db = 12.0, .sync_db = 8.0, .jitter_db = 4.0,
                 .impulse_rate_hz = 0.05, .impulse_db = 16.0,
                 .color_db_per_mhz = -0.15};
      a.schedule = ActivitySchedule::intermittent(0.6, sim::minutes(2), seed);
      a.notch_depth_db = 6.0 + 3.0 * u1;
      break;
    case ApplianceType::kCoffeeMachine:
      a.impedance_ohm = 30.0 + 20.0 * u0;
      a.noise = {.base_db = 8.0, .sync_db = 5.0, .jitter_db = 3.0,
                 .impulse_rate_hz = 0.03, .impulse_db = 12.0,
                 .color_db_per_mhz = -0.10};
      a.schedule = ActivitySchedule::intermittent(1.2, sim::minutes(4), seed);
      a.notch_depth_db = 4.0 + 2.0 * u1;
      break;
    case ApplianceType::kPrinter:
      a.impedance_ohm = 20.0 + 20.0 * u0;
      a.noise = {.base_db = 6.0, .sync_db = 4.0, .jitter_db = 3.5,
                 .impulse_rate_hz = 0.08, .impulse_db = 18.0,
                 .color_db_per_mhz = -0.10};
      a.schedule = ActivitySchedule::intermittent(0.8, sim::minutes(3), seed);
      a.notch_depth_db = 4.5 + 2.5 * u1;
      break;
    case ApplianceType::kHvac:
      a.impedance_ohm = 35.0 + 30.0 * u0;
      a.noise = {.base_db = 6.0, .sync_db = 5.0, .jitter_db = 2.0,
                 .impulse_rate_hz = 0.002, .impulse_db = 10.0,
                 .color_db_per_mhz = -0.08};
      a.schedule = ActivitySchedule::duty_cycle(sim::minutes(30.0 + 20.0 * u2), 0.6, seed);
      a.notch_depth_db = 3.5 + 2.0 * u1;
      break;
    case ApplianceType::kPhoneCharger:
      a.impedance_ohm = 400.0 + 400.0 * u0;
      a.noise = {.base_db = 2.0, .sync_db = 2.0, .jitter_db = 1.0,
                 .impulse_rate_hz = 0.0, .impulse_db = 4.0,
                 .color_db_per_mhz = -0.04};
      a.schedule = ActivitySchedule::always_on();
      a.notch_depth_db = 1.0 + 1.0 * u1;
      break;
    case ApplianceType::kPassiveStub:
      // Open/short stub: strong mismatch, zero noise, always "on".
      a.impedance_ohm = 4.0 + 8.0 * u0;
      a.noise = {};
      a.schedule = ActivitySchedule::always_on();
      a.notch_depth_db = 16.0 + 12.0 * u1;
      break;
  }
  // Branch-line delay in [0.05, 0.6] µs: reflections from a few meters to
  // ~100 m of branch wiring; sets the notch spacing in frequency.
  a.branch_delay_us = 0.05 + 0.55 * ValueNoise::hash01(seed, 103);
  return a;
}

}  // namespace efd::grid

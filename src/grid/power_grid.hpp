#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/grid/appliance.hpp"
#include "src/grid/carrier_workspace.hpp"
#include "src/sim/time.hpp"

namespace efd::grid {

/// A set of equally spaced OFDM carriers in a frequency band. HomePlug AV
/// uses 1.8-30 MHz with 917 usable carriers; AV500 extends to 68 MHz.
struct CarrierBand {
  double f_min_mhz = 1.8;
  double f_max_mhz = 30.0;
  int n_carriers = 917;

  [[nodiscard]] double carrier_mhz(int i) const {
    return f_min_mhz + (f_max_mhz - f_min_mhz) *
                           (static_cast<double>(i) + 0.5) /
                           static_cast<double>(n_carriers);
  }
};

/// The electrical wiring of a building as a transmission-line network:
/// outlets and junctions (nodes) joined by cable segments, with appliances
/// plugged into outlets. The grid answers the two questions PLC modeling
/// reduces to (paper §5): what is the *attenuation* between two outlets, and
/// what is the *noise* seen at an outlet — per carrier, per tone-map slot,
/// at a given simulated instant.
///
/// Temporal behaviour is a deterministic function of time (schedules plus
/// hash-based value noise), so traces can be queried at arbitrary rates
/// without simulating the grid event-by-event. The three timescales of the
/// paper's §6 map to:
///  - invariance scale: per-slot noise weights of each appliance,
///  - cycle scale:      `fast_noise_offset_db` jitter + impulses,
///  - random scale:     appliance on/off schedules (changes `state_epoch`).
class PowerGrid {
 public:
  /// Characteristic impedance of the mains cable (ohms).
  static constexpr double kZ0 = 85.0;

  int add_node(std::string name);

  /// Join two nodes with `length_m` of cable. `extra_loss_db` models lumped
  /// insertion loss beyond plain cable attenuation — breaker panels,
  /// sub-panels, and the inter-distribution-board basement path that makes
  /// cross-board PLC "challenging" in the paper's testbed (§3.1).
  void add_cable(int a, int b, double length_m, double extra_loss_db = 0.0);

  int add_appliance(Appliance appliance);

  [[nodiscard]] int node_count() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] int appliance_count() const { return static_cast<int>(appliances_.size()); }
  [[nodiscard]] const Appliance& appliance(int id) const { return appliances_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const std::string& node_name(int id) const { return names_[static_cast<std::size_t>(id)]; }

  /// Cable distance in meters along the shortest wiring path; infinity if
  /// the outlets are not electrically connected.
  [[nodiscard]] double cable_distance(int a, int b) const;

  /// Accumulated lumped insertion loss (dB) along the shortest wiring path.
  [[nodiscard]] double path_extra_loss_db(int a, int b) const;

  /// Directed-link attenuation per carrier, in dB, transmitter `a` to
  /// receiver `b`. Includes cable loss, multipath notches from the
  /// appliances that are ON at `t` near the path, slow drift, and the
  /// transmitter-side injection loss (the asymmetry mechanism of §5).
  [[nodiscard]] std::vector<double> attenuation_db(int a, int b, const CarrierBand& band,
                                                   sim::Time t) const;

  /// Allocation-free variant: writes the per-carrier attenuation into `out`
  /// (resized to the band's carrier count, no reallocation once warm). The
  /// per-carrier work runs off profile tables precomputed per (appliance,
  /// band) — the notch phase and spectral shape are time-invariant; only the
  /// on/off schedule and the scalar coupling terms are evaluated per query.
  void attenuation_db(int a, int b, const CarrierBand& band, sim::Time t,
                      std::vector<double>& out) const;

  /// Workspace variant: writes into `ws.att_db` and returns a span over it.
  std::span<const double> attenuation_db(int a, int b, const CarrierBand& band,
                                         sim::Time t, CarrierWorkspace& ws) const;

  /// Noise PSD per carrier, in dB above the receiver floor, at outlet `b`
  /// for tone-map slot `slot` of `n_slots`. Captures the static shape and
  /// the mains-synchronous (invariance-scale) component; the fast jitter is
  /// factored out into `fast_noise_offset_db` so PHY-layer callers can cache
  /// this vector per state epoch.
  [[nodiscard]] std::vector<double> noise_psd_db(int b, const CarrierBand& band, sim::Time t,
                                                 int slot, int n_slots) const;

  /// Allocation-free variant: accumulates in `ws.power`, writes the dB
  /// result into `ws.noise_db` and returns a span over it. Each powered
  /// neighboring appliance contributes scalar x precomputed-spectral-profile
  /// in the linear power domain, so the per-carrier loop is multiply-add
  /// only (no pow/log per carrier).
  std::span<const double> noise_psd_db(int b, const CarrierBand& band, sim::Time t,
                                       int slot, int n_slots,
                                       CarrierWorkspace& ws) const;

  /// Cycle-scale scalar noise offset at outlet `b` (dB): appliance jitter
  /// plus switching impulses, varying over tens of milliseconds.
  [[nodiscard]] double fast_noise_offset_db(int b, sim::Time t) const;

  /// Changes whenever any appliance toggles on/off (random-scale events);
  /// used by channel caches.
  [[nodiscard]] std::uint64_t state_epoch(sim::Time t) const;

  [[nodiscard]] bool appliance_on(int id, sim::Time t) const {
    return appliances_[static_cast<std::size_t>(id)].schedule.is_on(t);
  }
  [[nodiscard]] int appliances_on(sim::Time t) const;

 private:
  /// Time-invariant per-carrier tables for one carrier band: the carrier
  /// frequencies, and per appliance the squared-sine notch profile (the
  /// `sin` phase and branch-delay period never change) plus the linear-
  /// domain spectral noise profile 10^((base_db + color_db_per_mhz*f)/10).
  /// Rebuilt lazily whenever an appliance is added; a grid typically serves
  /// one or two bands (HPAV / HPAV500).
  struct BandProfiles {
    CarrierBand band;
    std::vector<double> freq_mhz;   ///< [n_carriers]
    std::vector<double> notch_sin;  ///< [appliance][carrier], row-major
    std::vector<double> color_lin;  ///< [appliance][carrier], row-major
  };

  void ensure_distances() const;
  [[nodiscard]] const BandProfiles& ensure_profiles(const CarrierBand& band) const;

  /// Coupling weight in [0,1] of appliance `j`'s noise as seen from outlet
  /// `node`: decays with cable distance.
  [[nodiscard]] double noise_coupling(const Appliance& j, int node) const;

  /// Weight in [0,1] of appliance `j`'s impedance mismatch on path a->b:
  /// 1 when the appliance sits on the path, decaying with detour distance.
  [[nodiscard]] double path_weight(const Appliance& j, int a, int b) const;

  /// Batch core of attenuation_db: writes band.n_carriers values into `out`
  /// through the active carrier kernels (grid/simd.hpp). Both public
  /// variants delegate here, so vector- and workspace-callers run the exact
  /// same arithmetic.
  void attenuation_into(int a, int b, const CarrierBand& band, sim::Time t,
                        double* out) const;

  /// Batch core of noise_psd_db: accumulates the linear power spectrum in
  /// `power` and writes the dB result into `out` (both band.n_carriers).
  void noise_psd_into(int b, const CarrierBand& band, sim::Time t, int slot,
                      int n_slots, double* power, double* out) const;

  std::vector<std::string> names_;
  struct Cable { int a; int b; double length_m; double extra_loss_db; };
  std::vector<Cable> cables_;
  std::vector<Appliance> appliances_;

  mutable bool distances_valid_ = false;
  mutable std::vector<double> dist_;   // node_count^2 shortest cable distances
  mutable std::vector<double> extra_;  // lumped loss along those paths
  mutable std::vector<int> hops_;      // cable segments along those paths

  /// state_epoch is queried on every channel access; appliance schedules
  /// only move on second scales, so memoize per 1 s bucket.
  mutable std::int64_t epoch_bucket_ = -1;
  mutable std::uint64_t epoch_value_ = 0;

  /// Per-node list of appliances with non-negligible noise coupling,
  /// rebuilt with the distance matrix.
  mutable std::vector<std::vector<int>> noise_neighbors_;

  /// Lazily built per-band profile tables (see BandProfiles).
  mutable std::vector<BandProfiles> profiles_;

  [[nodiscard]] double dist(int a, int b) const {
    return dist_[static_cast<std::size_t>(a) * names_.size() + static_cast<std::size_t>(b)];
  }
  [[nodiscard]] double extra(int a, int b) const {
    return extra_[static_cast<std::size_t>(a) * names_.size() + static_cast<std::size_t>(b)];
  }
  [[nodiscard]] int hops(int a, int b) const {
    return hops_[static_cast<std::size_t>(a) * names_.size() + static_cast<std::size_t>(b)];
  }
};

}  // namespace efd::grid

#pragma once

// Neighborhood-area-network (NAN) topology for the sharded engine: a
// smart-grid distribution feeder instead of an office floor. Each MV/LV
// transformer serves a cluster of household meters over long LV drop
// lines; transformers along one feeder are chained by the MV feeder run
// (PLC backbone over hundreds of meters), and adjacent feeders are stitched
// by point-to-point WiFi at their head ends. This is the deployment shape
// of the smart-grid diversity literature (Sung & Evans' PLC+wireless
// testbed; ABB's multi-interface NAN simulation): links are long, lossy and
// tree-shaped, which is what makes per-packet duplication and multi-hop
// PLC relaying worth their overhead.

#include <cstdint>
#include <string>
#include <vector>

#include "src/grid/campus.hpp"
#include "src/grid/power_grid.hpp"
#include "src/sim/time.hpp"

namespace efd::grid {

struct NanConfig {
  int n_meters = 120;
  int meters_per_transformer = 12;
  int transformers_per_feeder = 4;
  /// Communicating stations per transformer cell (concentrator + the
  /// metered endpoints that actually report); capped by the meter count.
  int stations_per_transformer = 6;
  std::uint64_t seed = 1;
};

/// Deterministic NAN generator, the feeder-shaped sibling of
/// `CampusTopology`: same `derive_lookahead`/`to_json`/shard-split
/// contract, so a NAN drops into `ShardedSimulator` exactly like a campus —
/// one cell per transformer, boundary crossings with physics-derived
/// lookahead. Transformer-local structure comes from a per-transformer
/// forked Rng stream, so it never depends on shard count or threads.
class NanTopology {
 public:
  [[nodiscard]] static NanTopology generate(const NanConfig& cfg);

  [[nodiscard]] const NanConfig& config() const { return cfg_; }
  [[nodiscard]] int n_transformers() const { return n_transformers_; }
  [[nodiscard]] int n_feeders() const { return n_feeders_; }
  [[nodiscard]] int feeder_of(int transformer) const {
    return feeder_of_[static_cast<std::size_t>(transformer)];
  }
  /// Crossings reuse the campus BoundaryLink: board_a/board_b are
  /// transformer indices here.
  [[nodiscard]] const std::vector<BoundaryLink>& links() const { return links_; }

  /// Transformers reachable from `transformer` over one crossing, ascending.
  [[nodiscard]] std::vector<int> neighbors(int transformer) const;

  /// Meters hanging off this transformer's LV side (the last transformer
  /// takes the remainder of cfg.n_meters).
  [[nodiscard]] int meters_on_transformer(int transformer) const;

  /// Communicating stations in this transformer cell (concentrator
  /// included), capped by the meter count.
  [[nodiscard]] int stations_on_transformer(int transformer) const;

  /// Outlet index (within the transformer cell) where station `k` plugs in;
  /// station 0 sits at outlet 0, the transformer's data concentrator — it
  /// is the cell's boundary gateway.
  [[nodiscard]] int station_outlet(int transformer, int k) const;

  /// Populate `grid` with this transformer's LV side: meter outlets along
  /// long daisy-chained drop lines, and a household appliance population.
  void build_transformer_grid(int transformer, PowerGrid& grid) const;

  /// Shard owning `transformer` under the engine's contiguous-block split.
  [[nodiscard]] int shard_of(int transformer, int n_shards) const;

  /// Conservative delivery-time bound for one crossing, the NAN analogue
  /// of CampusTopology::derive_lookahead: concentrators are slower
  /// store-and-forward hops than office gateways, and feeder-run rates sag
  /// faster with attenuation. Strictly positive by construction.
  [[nodiscard]] static sim::Time derive_lookahead(BoundaryKind kind, double length_m,
                                                  double budget_db);

  /// The whole NAN as JSON, shaped like CampusTopology::to_json (drives
  /// the `efd topology` subcommand's --nan variant).
  [[nodiscard]] std::string to_json(int n_shards) const;

 private:
  NanConfig cfg_;
  int n_transformers_ = 0;
  int n_feeders_ = 0;
  std::vector<int> feeder_of_;
  std::vector<BoundaryLink> links_;
};

}  // namespace efd::grid

#pragma once

#include <cmath>

namespace efd::grid {

/// dB <-> linear power conversions on the exp2/log2 pair. libm's pow(10, x)
/// funnels through a generic powi/exp path that costs several times an
/// exp2 call, and these conversions sit inside per-carrier loops; routing
/// them through exp2/log2 keeps the result within an ulp or two of the
/// pow/log10 formulation while being markedly cheaper.
inline constexpr double kDbToLog2 = 0.332192809488736234787;  // log2(10)/10
inline constexpr double kLog2ToDb = 3.010299956639811952137;  // 10*log10(2)

[[nodiscard]] inline double db_to_linear(double db) {
  return std::exp2(db * kDbToLog2);
}

[[nodiscard]] inline double linear_to_db(double linear) {
  return std::log2(linear) * kLog2ToDb;
}

}  // namespace efd::grid

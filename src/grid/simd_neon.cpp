// NEON (AArch64 Advanced SIMD) entry of the carrier-kernel dispatch table —
// the 2-lane float64 counterpart of simd_avx2.cpp, same range reductions and
// polynomial degrees, so it inherits the same precision analysis (exp2/log2
// relative error a few 1e-16, reductions reassociated across two lanes).
// Advanced SIMD with double lanes is baseline on AArch64, so this TU needs
// no special flags and no cpuid gate; it is only added to the build on
// aarch64 targets.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/grid/db_units.hpp"
#include "src/grid/simd.hpp"

namespace efd::grid::simd {
namespace {

constexpr double kLn2 = 0.6931471805599453094172321;
constexpr double kTwoOverLn2 = 2.8853900817779268147198494;  // 2 / ln(2)

/// 2^x per lane; see simd_avx2.cpp for the derivation and error bounds.
inline float64x2_t v_exp2(float64x2_t x) {
  x = vmaxq_f64(x, vdupq_n_f64(-1000.0));
  x = vminq_f64(x, vdupq_n_f64(1000.0));
  const float64x2_t k = vrndnq_f64(x);  // round to nearest, ties to even
  const float64x2_t r = vsubq_f64(x, k);
  const float64x2_t t = vmulq_f64(r, vdupq_n_f64(kLn2));
  // exp(t) via Horner, coefficients 1/k!; vfmaq_f64(a, b, c) = a + b*c.
  float64x2_t p = vdupq_n_f64(1.0 / 479001600.0);            // 1/12!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 39916800.0), p, t);        // 1/11!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 3628800.0), p, t);         // 1/10!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 362880.0), p, t);          // 1/9!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 40320.0), p, t);           // 1/8!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 5040.0), p, t);            // 1/7!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 720.0), p, t);             // 1/6!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 120.0), p, t);             // 1/5!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 24.0), p, t);              // 1/4!
  p = vfmaq_f64(vdupq_n_f64(1.0 / 6.0), p, t);               // 1/3!
  p = vfmaq_f64(vdupq_n_f64(0.5), p, t);                     // 1/2!
  p = vfmaq_f64(vdupq_n_f64(1.0), p, t);
  p = vfmaq_f64(vdupq_n_f64(1.0), p, t);
  // 2^k through the exponent bits (k integral in [-1000, 1000]).
  const int64x2_t k64 = vcvtq_s64_f64(k);
  const int64x2_t bits = vshlq_n_s64(vaddq_s64(k64, vdupq_n_s64(1023)), 52);
  return vmulq_f64(p, vreinterpretq_f64_s64(bits));
}

/// log2(x) per lane for positive, finite, normal x; see simd_avx2.cpp.
inline float64x2_t v_log2(float64x2_t x) {
  const uint64x2_t ubits = vreinterpretq_u64_f64(x);
  const int64x2_t e64 = vsubq_s64(
      vreinterpretq_s64_u64(vshrq_n_u64(ubits, 52)), vdupq_n_s64(1023));
  float64x2_t e = vcvtq_f64_s64(e64);
  float64x2_t m = vreinterpretq_f64_u64(
      vorrq_u64(vandq_u64(ubits, vdupq_n_u64(0x000FFFFFFFFFFFFFULL)),
                vdupq_n_u64(0x3FF0000000000000ULL)));
  const uint64x2_t big = vcgeq_f64(m, vdupq_n_f64(1.4142135623730951));
  m = vbslq_f64(big, vmulq_f64(m, vdupq_n_f64(0.5)), m);
  e = vaddq_f64(e, vbslq_f64(big, vdupq_n_f64(1.0), vdupq_n_f64(0.0)));
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t s = vdivq_f64(vsubq_f64(m, one), vaddq_f64(m, one));
  const float64x2_t s2 = vmulq_f64(s, s);
  float64x2_t p = vdupq_n_f64(1.0 / 19.0);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 17.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 15.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 13.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 11.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 9.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 7.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 5.0), p, s2);
  p = vfmaq_f64(vdupq_n_f64(1.0 / 3.0), p, s2);
  p = vfmaq_f64(one, p, s2);
  return vfmaq_f64(e, vmulq_f64(s, p), vdupq_n_f64(kTwoOverLn2));
}

inline double hsum(float64x2_t v) {
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}

// --- kernels ---------------------------------------------------------------
// Same tail policy as the AVX2 entry: transcendental/gather kernels pad the
// final odd element through the 2-lane code, element-wise kernels finish with
// an (identical) scalar op.

void n_db_to_linear_n(const double* db, double* out, std::size_t n) {
  const float64x2_t c = vdupq_n_f64(kDbToLog2);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, v_exp2(vmulq_f64(vld1q_f64(db + i), c)));
  }
  if (i < n) {
    double in[2] = {db[i], 0.0};
    double tmp[2];
    vst1q_f64(tmp, v_exp2(vmulq_f64(vld1q_f64(in), c)));
    out[i] = tmp[0];
  }
}

void n_linear_to_db_n(const double* lin, double* out, std::size_t n) {
  const float64x2_t c = vdupq_n_f64(kLog2ToDb);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(v_log2(vld1q_f64(lin + i)), c));
  }
  if (i < n) {
    double in[2] = {lin[i], 1.0};
    double tmp[2];
    vst1q_f64(tmp, vmulq_f64(v_log2(vld1q_f64(in)), c));
    out[i] = tmp[0];
  }
}

void n_affine_n(double add, double slope, const double* x, double* out,
                std::size_t n) {
  const float64x2_t va = vdupq_n_f64(add);
  const float64x2_t vs = vdupq_n_f64(slope);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(va, vmulq_f64(vs, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) out[i] = add + slope * x[i];
}

void n_accumulate_notch_n(double broadband, double depth, const double* s,
                          double* acc, std::size_t n) {
  const float64x2_t vb = vdupq_n_f64(broadband);
  const float64x2_t vd = vdupq_n_f64(depth);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(s + i);
    const float64x2_t term = vaddq_f64(vb, vmulq_f64(vmulq_f64(vd, v), v));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), term));
  }
  for (; i < n; ++i) {
    const double v = s[i];
    acc[i] += broadband + depth * v * v;
  }
}

void n_accumulate_scaled_n(double scale, const double* x, double* acc,
                           std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(acc + i,
              vaddq_f64(vld1q_f64(acc + i), vmulq_f64(vs, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) acc[i] += scale * x[i];
}

void n_assemble_snr_n(double c, const double* a, const double* b, double* out,
                      std::size_t n) {
  const float64x2_t vc = vdupq_n_f64(c);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vsubq_f64(vc, vld1q_f64(a + i)),
                                 vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = c - a[i] - b[i];
}

void n_shift_n(const double* in, double offset, double* out, std::size_t n) {
  const float64x2_t vo = vdupq_n_f64(offset);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(in + i), vo));
  }
  for (; i < n; ++i) out[i] = in[i] - offset;
}

double n_sum_db_to_linear_n(const double* db, std::size_t n) {
  const float64x2_t c = vdupq_n_f64(kDbToLog2);
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, v_exp2(vmulq_f64(vld1q_f64(db + i), c)));
  }
  double tail = 0.0;
  if (i < n) {
    double in[2] = {db[i], 0.0};
    double tmp[2];
    vst1q_f64(tmp, v_exp2(vmulq_f64(vld1q_f64(in), c)));
    tail = tmp[0];
  }
  return hsum(acc) + tail;
}

void n_ber_weighted_sum_n(const InterpTableView& lut, const std::int32_t* row_off,
                          const double* bits, const double* snr_db, double gain_db,
                          std::size_t n, double* weighted_ber, double* total_bits) {
  const float64x2_t vgain = vdupq_n_f64(gain_db);
  const float64x2_t vmin = vdupq_n_f64(lut.min_db);
  const float64x2_t vstep = vdupq_n_f64(lut.step_db);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  const float64x2_t vlast = vdupq_n_f64(static_cast<double>(lut.size - 1));
  const float64x2_t vmaxcell = vdupq_n_f64(static_cast<double>(lut.size - 2));
  float64x2_t wb = vdupq_n_f64(0.0);
  float64x2_t tb = vdupq_n_f64(0.0);

  const auto block = [&](const double* snr2, const std::int32_t* row2,
                         const double* bits2) {
    const float64x2_t eff = vaddq_f64(vld1q_f64(snr2), vgain);
    float64x2_t pos = vdivq_f64(vsubq_f64(eff, vmin), vstep);
    pos = vmaxq_f64(pos, vzero);
    pos = vminq_f64(pos, vlast);
    float64x2_t cell = vrndmq_f64(pos);  // floor
    cell = vminq_f64(cell, vmaxcell);
    const float64x2_t frac = vsubq_f64(pos, cell);
    // NEON has no gather: extract lane indices and load the cell pairs.
    const auto c0 = static_cast<std::int32_t>(vgetq_lane_f64(cell, 0));
    const auto c1 = static_cast<std::int32_t>(vgetq_lane_f64(cell, 1));
    const double* p0 = lut.table + row2[0] + c0;
    const double* p1 = lut.table + row2[1] + c1;
    const double lo[2] = {p0[0], p1[0]};
    const double hi[2] = {p0[1], p1[1]};
    const float64x2_t v0 = vld1q_f64(lo);
    const float64x2_t v1 = vld1q_f64(hi);
    const float64x2_t v =
        vaddq_f64(v0, vmulq_f64(frac, vsubq_f64(v1, v0)));
    const float64x2_t b = vld1q_f64(bits2);
    wb = vaddq_f64(wb, vmulq_f64(v, b));
    tb = vaddq_f64(tb, b);
  };

  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) block(snr_db + i, row_off + i, bits + i);
  if (i < n) {
    // Padded final element: the pad lane carries bits 0 and row 0 (the all-
    // zero kOff row), contributing an exact +0.0 to both accumulators.
    const double snr2[2] = {snr_db[i], 0.0};
    const std::int32_t row2[2] = {row_off[i], 0};
    const double bits2[2] = {bits[i], 0.0};
    block(snr2, row2, bits2);
  }
  *weighted_ber = hsum(wb);
  *total_bits = hsum(tb);
}

constexpr CarrierKernels kNeon = {
    "neon",
    &n_db_to_linear_n,
    &n_linear_to_db_n,
    &n_affine_n,
    &n_accumulate_notch_n,
    &n_accumulate_scaled_n,
    &n_assemble_snr_n,
    &n_shift_n,
    &n_sum_db_to_linear_n,
    &n_ber_weighted_sum_n,
};

}  // namespace

namespace detail {
const CarrierKernels* neon_kernels_impl() { return &kNeon; }
}  // namespace detail

}  // namespace efd::grid::simd

#endif  // __aarch64__

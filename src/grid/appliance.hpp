#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/grid/schedule.hpp"

namespace efd::grid {

/// Categories of electrical loads found in an office building. Each category
/// maps to a characteristic impedance and noise signature (the paper cites
/// Guzelgoz et al. [9] for the time-frequency structure of load noise).
enum class ApplianceType {
  kLightBank,      // fluorescent lighting with electronic ballast
  kWorkstation,    // PC + switched-mode power supply
  kMonitor,
  kFridge,         // compressor, duty-cycled
  kMicrowave,
  kCoffeeMachine,
  kPrinter,        // laser printer: large impulsive loads when fusing
  kHvac,           // fan-coil unit
  kPhoneCharger,   // small SMPS, always plugged
  /// Not a load at all: an unterminated branch line / wiring stub. Produces
  /// static multipath notches around the clock but injects no noise — the
  /// reason bad links stay bad at night (§6.2's night experiments still see
  /// BLE in the tens of Mb/s on poor links).
  kPassiveStub,
};

[[nodiscard]] std::string to_string(ApplianceType t);

/// Noise a powered appliance injects into the line, decomposed the way the
/// paper's §6 decomposes temporal variation:
///  - a stationary colored floor (contributes to attenuation-side SNR),
///  - a mains-synchronous component varying over the tone-map slots
///    (invariance scale, paper Fig. 9),
///  - a fast jitter term (cycle scale), and
///  - impulse events (switching transients).
struct NoiseProfile {
  double base_db = 0.0;            ///< stationary injected noise (dB over floor)
  double sync_db = 0.0;            ///< peak of the mains-synchronous component
  double jitter_db = 0.0;          ///< amplitude of cycle-scale jitter
  double impulse_rate_hz = 0.0;    ///< switching impulses per second
  double impulse_db = 0.0;         ///< impulse magnitude
  double color_db_per_mhz = 0.0;   ///< spectral tilt (low carriers noisier)
};

/// One electrical load plugged into an outlet of the grid.
struct Appliance {
  ApplianceType type = ApplianceType::kPhoneCharger;
  int outlet = -1;                 ///< node index in the PowerGrid
  double impedance_ohm = 1000.0;   ///< operating impedance (mismatch source)
  NoiseProfile noise;
  ActivitySchedule schedule;
  std::uint64_t seed = 0;          ///< per-appliance stochastic stream

  /// Multipath signature: a branch-line delay (µs) controlling where this
  /// appliance's reflection notches fall in frequency, plus a notch depth.
  double branch_delay_us = 0.1;
  double notch_depth_db = 6.0;
};

/// Factory with calibrated per-type presets. `seed` individualizes the
/// appliance's schedule phase, noise stream and branch-line signature.
[[nodiscard]] Appliance make_appliance(ApplianceType type, int outlet, std::uint64_t seed);

}  // namespace efd::grid

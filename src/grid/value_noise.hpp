#pragma once

#include <cstdint>

namespace efd::grid {

/// Deterministic smooth value noise: hashes integer lattice points to
/// uniform values in [-1, 1] and smoothstep-interpolates between them.
/// Used for every stochastic-but-reproducible temporal process in the grid
/// (noise-floor jitter, slow drift) so that a trace can be *queried* at any
/// instant rather than generated sequentially.
struct ValueNoise {
  /// Noise value in [-1, 1] at coordinate `x` for stream `seed`.
  static double sample(std::uint64_t seed, double x);

  /// Sum of `octaves` octaves of value noise (fractal), still in ~[-1, 1].
  static double fractal(std::uint64_t seed, double x, int octaves);

  /// Uniform [0, 1) hash of (seed, n) — the lattice generator.
  static double hash01(std::uint64_t seed, std::int64_t n);
};

}  // namespace efd::grid

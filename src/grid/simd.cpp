#include "src/grid/simd.hpp"

#include <array>
#include <cstdlib>

#include "src/grid/db_units.hpp"
#include "src/obs/obs.hpp"

namespace efd::grid::simd {

namespace {

// --- scalar entry ----------------------------------------------------------
// Operation-for-operation transcriptions of the loops these kernels replaced
// (power_grid.cpp / tone_map.cpp / channel.cpp as of PR 1): same op order,
// same libm calls, so EFD_SIMD=scalar figures are byte-identical to the
// pre-dispatch binaries and the scalar entry doubles as the bit-exact
// reference the vector entries are diffed against.

void s_db_to_linear_n(const double* db, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = db_to_linear(db[i]);
}

void s_linear_to_db_n(const double* lin, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = linear_to_db(lin[i]);
}

void s_affine_n(double add, double slope, const double* x, double* out,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = add + slope * x[i];
}

void s_accumulate_notch_n(double broadband, double depth, const double* s,
                          double* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = s[i];
    acc[i] += broadband + depth * v * v;
  }
}

void s_accumulate_scaled_n(double scale, const double* x, double* acc,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += scale * x[i];
}

void s_assemble_snr_n(double c, const double* a, const double* b, double* out,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = c - a[i] - b[i];
}

void s_shift_n(const double* in, double offset, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] - offset;
}

double s_sum_db_to_linear_n(const double* db, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += db_to_linear(db[i]);
  return sum;
}

void s_ber_weighted_sum_n(const InterpTableView& lut, const std::int32_t* row_off,
                          const double* bits, const double* snr_db, double gain_db,
                          std::size_t n, double* weighted_ber, double* total_bits) {
  const double last = static_cast<double>(lut.size - 1);
  double wb = 0.0;
  double tb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = lut.table + row_off[i];
    const double pos = (snr_db[i] + gain_db - lut.min_db) / lut.step_db;
    double v;
    if (pos <= 0.0) {
      v = row[0];
    } else if (pos >= last) {
      v = row[lut.size - 1];
    } else {
      const auto idx = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(idx);
      v = row[idx] + frac * (row[idx + 1] - row[idx]);
    }
    wb += v * bits[i];
    tb += bits[i];
  }
  *weighted_ber = wb;
  *total_bits = tb;
}

constexpr CarrierKernels kScalar = {
    "scalar",
    &s_db_to_linear_n,
    &s_linear_to_db_n,
    &s_affine_n,
    &s_accumulate_notch_n,
    &s_accumulate_scaled_n,
    &s_assemble_snr_n,
    &s_shift_n,
    &s_sum_db_to_linear_n,
    &s_ber_weighted_sum_n,
};

}  // namespace

const CarrierKernels& scalar_kernels() { return kScalar; }

#if defined(__x86_64__) || defined(_M_X64)
namespace detail {
// Defined in simd_avx2.cpp, the only TU compiled with -mavx2 -mfma.
const CarrierKernels* avx2_kernels_impl();
}  // namespace detail
#endif

#if defined(__aarch64__)
namespace detail {
// Defined in simd_neon.cpp; Advanced SIMD is baseline on AArch64.
const CarrierKernels* neon_kernels_impl();
}  // namespace detail
#endif

const CarrierKernels* avx2_kernels() {
#if defined(__x86_64__) || defined(_M_X64)
  static const CarrierKernels* k = []() -> const CarrierKernels* {
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
      return nullptr;
    }
    return detail::avx2_kernels_impl();
  }();
  return k;
#else
  return nullptr;
#endif
}

const CarrierKernels* neon_kernels() {
#if defined(__aarch64__)
  return detail::neon_kernels_impl();
#else
  return nullptr;
#endif
}

std::span<const CarrierKernels* const> available_kernels() {
  static const auto list = [] {
    std::array<const CarrierKernels*, 3> a{};
    std::size_t n = 0;
    a[n++] = &kScalar;
    if (const CarrierKernels* k = avx2_kernels()) a[n++] = k;
    if (const CarrierKernels* k = neon_kernels()) a[n++] = k;
    return std::pair{a, n};
  }();
  return {list.first.data(), list.second};
}

namespace {
/// Best available entry: the widest vector unit wins; scalar is the floor.
const CarrierKernels& best_kernels() {
  if (const CarrierKernels* k = avx2_kernels()) return *k;
  if (const CarrierKernels* k = neon_kernels()) return *k;
  return kScalar;
}
}  // namespace

const CarrierKernels& select_kernels(std::string_view want) {
  if (want == "scalar") return kScalar;
  if (want == "avx2") {
    if (const CarrierKernels* k = avx2_kernels()) return *k;
    return best_kernels();
  }
  if (want == "neon") {
    if (const CarrierKernels* k = neon_kernels()) return *k;
    return best_kernels();
  }
  // "auto", "", and anything unrecognized: take the best this machine has.
  return best_kernels();
}

int impl_index(const CarrierKernels& k) {
  if (&k == avx2_kernels()) return 1;
  if (&k == neon_kernels()) return 2;
  return 0;
}

const CarrierKernels& active_kernels() {
  static const CarrierKernels& k = []() -> const CarrierKernels& {
    const char* env = std::getenv("EFD_SIMD");
    return select_kernels(env != nullptr ? env : "auto");
  }();
  // Record the chosen code path so every BENCH_*.json / --metrics snapshot
  // names what it measured (0 scalar, 1 avx2, 2 neon). Re-asserted on every
  // call (one relaxed store per batch query) so the gauge survives metric
  // resets in tests and long-lived tools.
  EFD_GAUGE_SET("carrier_math.impl", impl_index(k));
  return k;
}

int active_impl_index() { return impl_index(active_kernels()); }

const char* active_impl_name() { return active_kernels().name; }

}  // namespace efd::grid::simd

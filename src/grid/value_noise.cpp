#include "src/grid/value_noise.hpp"

#include <cmath>

namespace efd::grid {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

double ValueNoise::hash01(std::uint64_t seed, std::int64_t n) {
  const std::uint64_t h = mix(seed ^ mix(static_cast<std::uint64_t>(n)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double ValueNoise::sample(std::uint64_t seed, double x) {
  const double fl = std::floor(x);
  const auto n = static_cast<std::int64_t>(fl);
  const double f = x - fl;
  // Smoothstep interpolation keeps the derivative continuous at lattice points.
  const double u = f * f * (3.0 - 2.0 * f);
  const double a = 2.0 * hash01(seed, n) - 1.0;
  const double b = 2.0 * hash01(seed, n + 1) - 1.0;
  return a + (b - a) * u;
}

double ValueNoise::fractal(std::uint64_t seed, double x, int octaves) {
  double sum = 0.0;
  double amp = 0.5;
  double freq = 1.0;
  for (int i = 0; i < octaves; ++i) {
    sum += amp * sample(seed + static_cast<std::uint64_t>(i) * 0x51ed2701ULL, x * freq);
    freq *= 2.0;
    amp *= 0.5;
  }
  return sum;
}

}  // namespace efd::grid

#include "src/grid/nan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "src/sim/rng.hpp"

namespace efd::grid {

namespace {

constexpr double kPlcNsPerMeter = 5.6;
constexpr double kWifiNsPerMeter = 3.34;

/// Minimum frame a concentrator must fully receive before forwarding.
constexpr double kMinFrameBits = 64.0 * 8.0;

/// Concentrator processing floors: a NAN data concentrator batches,
/// decodes and re-frames — slower than an office gateway, which buys the
/// conservative protocol even more lookahead per crossing.
constexpr std::int64_t kPlcConcentratorFloorNs = 900'000;
constexpr std::int64_t kWifiConcentratorFloorNs = 500'000;

}  // namespace

sim::Time NanTopology::derive_lookahead(BoundaryKind kind, double length_m,
                                        double budget_db) {
  const bool plc = kind == BoundaryKind::kPlcBackbone;
  const double prop_ns = (plc ? kPlcNsPerMeter : kWifiNsPerMeter) * length_m;
  // Feeder runs are long and noisy: the usable forwarding rate sags faster
  // with attenuation than a campus riser, and bottoms out lower.
  const double rate_mbps =
      std::clamp((plc ? 120.0 : 100.0) - 1.5 * budget_db, 2.0, 120.0);
  const double ser_ns = kMinFrameBits / rate_mbps * 1e3;
  const std::int64_t floor_ns =
      plc ? kPlcConcentratorFloorNs : kWifiConcentratorFloorNs;
  return sim::Time{floor_ns + static_cast<std::int64_t>(prop_ns + ser_ns)};
}

NanTopology NanTopology::generate(const NanConfig& cfg) {
  assert(cfg.n_meters >= 1);
  assert(cfg.meters_per_transformer >= 1);
  assert(cfg.transformers_per_feeder >= 1);

  NanTopology t;
  t.cfg_ = cfg;
  t.n_transformers_ =
      (cfg.n_meters + cfg.meters_per_transformer - 1) / cfg.meters_per_transformer;
  t.n_feeders_ = (t.n_transformers_ + cfg.transformers_per_feeder - 1) /
                 cfg.transformers_per_feeder;
  t.feeder_of_.resize(static_cast<std::size_t>(t.n_transformers_));
  for (int i = 0; i < t.n_transformers_; ++i) {
    t.feeder_of_[static_cast<std::size_t>(i)] = i / cfg.transformers_per_feeder;
  }

  sim::Rng rng = sim::Rng{cfg.seed}.fork(0x4A6E17);

  // MV feeder runs: consecutive transformers of one feeder share the
  // medium-voltage cable — hundreds of meters of it, with the budgets that
  // make the far meters' direct links marginal (the relay workload).
  for (int i = 0; i + 1 < t.n_transformers_; ++i) {
    if (t.feeder_of_[static_cast<std::size_t>(i)] !=
        t.feeder_of_[static_cast<std::size_t>(i + 1)]) {
      continue;
    }
    BoundaryLink l;
    l.board_a = i;
    l.board_b = i + 1;
    l.kind = BoundaryKind::kPlcBackbone;
    l.length_m = rng.uniform(80.0, 300.0);
    l.budget_db = rng.uniform(55.0, 75.0);
    l.lookahead = derive_lookahead(l.kind, l.length_m, l.budget_db);
    t.links_.push_back(l);
  }

  // Feeder-head WiFi: adjacent feeders' head-end transformers carry a
  // point-to-point radio — the diversity partner where one medium alone is
  // not dependable enough for meter data.
  for (int f = 0; f + 1 < t.n_feeders_; ++f) {
    BoundaryLink l;
    l.board_a = f * cfg.transformers_per_feeder;
    l.board_b = (f + 1) * cfg.transformers_per_feeder;
    l.kind = BoundaryKind::kWifiBridge;
    l.length_m = rng.uniform(100.0, 400.0);
    l.budget_db = rng.uniform(65.0, 80.0);
    l.lookahead = derive_lookahead(l.kind, l.length_m, l.budget_db);
    t.links_.push_back(l);
  }

  return t;
}

std::vector<int> NanTopology::neighbors(int transformer) const {
  std::vector<int> out;
  for (const BoundaryLink& l : links_) {
    if (l.board_a == transformer) out.push_back(l.board_b);
    if (l.board_b == transformer) out.push_back(l.board_a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int NanTopology::meters_on_transformer(int transformer) const {
  const int first = transformer * cfg_.meters_per_transformer;
  return std::min(cfg_.meters_per_transformer, cfg_.n_meters - first);
}

int NanTopology::stations_on_transformer(int transformer) const {
  return std::min(cfg_.stations_per_transformer,
                  meters_on_transformer(transformer));
}

int NanTopology::station_outlet(int transformer, int k) const {
  const int meters = meters_on_transformer(transformer);
  const int stations = stations_on_transformer(transformer);
  assert(k >= 0 && k < stations);
  return k * meters / stations;
}

int NanTopology::shard_of(int transformer, int n_shards) const {
  const int k = std::clamp(n_shards, 1, n_transformers_);
  return static_cast<int>(static_cast<std::int64_t>(transformer) * k /
                          n_transformers_);
}

void NanTopology::build_transformer_grid(int transformer, PowerGrid& grid) const {
  // Transformer-local structure comes from a per-transformer fork, so the
  // grid a cell gets never depends on which shard (or thread) builds it.
  sim::Rng rng =
      sim::Rng{cfg_.seed}.fork(0x4EED00 + static_cast<std::uint64_t>(transformer));
  const int meters = meters_on_transformer(transformer);

  for (int i = 0; i < meters; ++i) {
    grid.add_node("t" + std::to_string(transformer) + "m" + std::to_string(i));
  }

  // Outlet 0 is the concentrator at the transformer. Drop lines mostly
  // daisy-chain meter to meter along the lateral — long LV spans, far
  // longer than office room-to-room runs — with the occasional direct tap
  // back at the transformer and lumped joint losses at splice boxes.
  for (int i = 1; i < meters; ++i) {
    const int parent = rng.bernoulli(0.15) ? 0 : i - 1;
    const double length = rng.uniform(35.0, 110.0);
    const double extra = rng.bernoulli(0.2) ? rng.uniform(2.0, 6.0) : 0.0;
    grid.add_cable(parent, i, length, extra);
  }

  // Household appliance population behind the meters: duty-cycled
  // compressors, impulsive kitchen loads and plenty of unterminated stubs.
  static constexpr ApplianceType kPalette[] = {
      ApplianceType::kFridge,       ApplianceType::kFridge,
      ApplianceType::kMicrowave,    ApplianceType::kCoffeeMachine,
      ApplianceType::kLightBank,    ApplianceType::kPhoneCharger,
      ApplianceType::kHvac,         ApplianceType::kMonitor,
      ApplianceType::kPassiveStub,  ApplianceType::kPassiveStub,
  };
  constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));
  for (int i = 0; i < meters; ++i) {
    if (rng.bernoulli(0.25)) continue;  // vacant / de-energized drop
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, kPaletteSize - 1));
    const std::uint64_t seed =
        cfg_.seed ^ (static_cast<std::uint64_t>(transformer) << 22) ^
        static_cast<std::uint64_t>(i);
    grid.add_appliance(make_appliance(kPalette[pick], i, seed));
  }
}

std::string NanTopology::to_json(int n_shards) const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"n_meters\": " + std::to_string(cfg_.n_meters);
  out += ",\n  \"n_transformers\": " + std::to_string(n_transformers_);
  out += ",\n  \"n_feeders\": " + std::to_string(n_feeders_);
  out += ",\n  \"n_shards\": " +
         std::to_string(std::clamp(n_shards, 1, n_transformers_));
  out += ",\n  \"seed\": " + std::to_string(cfg_.seed);
  out += ",\n  \"transformers\": [";
  for (int i = 0; i < n_transformers_; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"transformer\": " + std::to_string(i);
    out += ", \"feeder\": " + std::to_string(feeder_of(i));
    out += ", \"meters\": " + std::to_string(meters_on_transformer(i));
    out += ", \"stations\": " + std::to_string(stations_on_transformer(i));
    out += ", \"shard\": " + std::to_string(shard_of(i, n_shards)) + "}";
  }
  out += "\n  ],\n  \"boundary_links\": [";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const BoundaryLink& l = links_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"a\": " + std::to_string(l.board_a);
    out += ", \"b\": " + std::to_string(l.board_b);
    out += ", \"kind\": \"" + std::string(to_string(l.kind)) + "\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", l.length_m);
    out += ", \"length_m\": " + std::string(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", l.budget_db);
    out += ", \"budget_db\": " + std::string(buf);
    out += ", \"lookahead_ns\": " + std::to_string(l.lookahead.ns());
    out += ", \"cross_shard\": ";
    out += shard_of(l.board_a, n_shards) != shard_of(l.board_b, n_shards)
               ? "true"
               : "false";
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace efd::grid

#pragma once

#include "src/sim/time.hpp"

namespace efd::grid {

/// European mains: 50 Hz AC. HomePlug AV channel adaptation operates on the
/// *half* cycle (10 ms) because noise is symmetric in the two half-waves; the
/// standard splits the half cycle into tone-map slots (IEEE 1901 / paper §6).
struct Mains {
  static constexpr double kFrequencyHz = 50.0;
  static constexpr sim::Time cycle() { return sim::milliseconds(1000.0 / kFrequencyHz); }
  static constexpr sim::Time half_cycle() { return sim::Time{cycle().ns() / 2}; }

  /// Phase within the half cycle in [0, 1).
  static double half_cycle_phase(sim::Time t) {
    const auto period = half_cycle().ns();
    const auto r = t.ns() % period;
    return static_cast<double>(r) / static_cast<double>(period);
  }
};

}  // namespace efd::grid

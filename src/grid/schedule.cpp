#include "src/grid/schedule.hpp"

#include <cmath>

#include "src/grid/value_noise.hpp"

namespace efd::grid {

ActivitySchedule ActivitySchedule::duty_cycle(sim::Time period, double duty,
                                              std::uint64_t seed) {
  ActivitySchedule s{Kind::kDutyCycle, seed};
  s.period_ = period;
  s.duty_ = duty;
  return s;
}

ActivitySchedule ActivitySchedule::intermittent(double uses_per_hour,
                                                sim::Time use_duration,
                                                std::uint64_t seed) {
  ActivitySchedule s{Kind::kIntermittent, seed};
  s.uses_per_hour_ = uses_per_hour;
  s.use_duration_ = use_duration;
  return s;
}

bool ActivitySchedule::is_on(sim::Time t) const {
  switch (kind_) {
    case Kind::kAlwaysOn:
      return true;

    case Kind::kOfficeLights: {
      if (Calendar::is_weekend(t)) return false;
      const double h = Calendar::hour_of_day(t);
      return h >= 7.5 && h < 21.0;
    }

    case Kind::kWorkstation: {
      if (Calendar::is_weekend(t)) return false;
      const int day = Calendar::day_index(t);
      // Per-appliance, per-day arrival/departure jitter.
      const double arrive = 8.0 + 2.0 * ValueNoise::hash01(seed_, day * 2);
      const double leave = 16.5 + 3.0 * ValueNoise::hash01(seed_, day * 2 + 1);
      const double h = Calendar::hour_of_day(t);
      return h >= arrive && h < leave;
    }

    case Kind::kDutyCycle: {
      // Per-appliance phase offset so fridges do not all cycle in lockstep.
      const auto phase =
          static_cast<std::int64_t>(ValueNoise::hash01(seed_, 0) *
                                    static_cast<double>(period_.ns()));
      const auto r = (t.ns() + phase) % period_.ns();
      return static_cast<double>(r) <
             duty_ * static_cast<double>(period_.ns());
    }

    case Kind::kIntermittent: {
      const double h = Calendar::hour_of_day(t);
      const bool working_hours = !Calendar::is_weekend(t) && h >= 8.0 && h < 19.0;
      if (!working_hours) return false;
      // Divide time into candidate-use windows; a window is active with
      // probability uses_per_hour * window_hours, and within an active
      // window the appliance runs for use_duration_ from the window start.
      const auto window = sim::minutes(15);
      const auto idx = t.ns() / window.ns();
      const double p = uses_per_hour_ * (window.seconds() / 3600.0);
      if (ValueNoise::hash01(seed_, idx) >= p) return false;
      const auto offset = t.ns() % window.ns();
      return offset < use_duration_.ns();
    }
  }
  return false;
}

}  // namespace efd::grid

// AVX2+FMA entry of the carrier-kernel dispatch table (simd.hpp). This is
// the only TU compiled with -mavx2 -mfma (plus -ffp-contract=off so the
// scalar tail expressions cannot silently fuse into FMAs and drift from the
// scalar entry); selection guards it behind __builtin_cpu_supports.
//
// Precision contract (DESIGN.md §12): the element-wise kernels (affine,
// notch, scaled accumulate, SNR assembly, shift) use explicit mul/add/sub
// intrinsics in the scalar entry's operation order, so they are bit-identical
// to it lane for lane. The transcendental kernels replace libm exp2/log2 with
// 4-lane polynomial evaluations whose relative error is below 1e-14 — two
// orders of magnitude inside the DiffRunner's 1e-12 dB contract — and the
// reductions (ROBO sum, BER-weighted sum) keep vector-lane partial
// accumulators, which reassociates the sum within the PBerr tolerance.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/grid/db_units.hpp"
#include "src/grid/simd.hpp"

namespace efd::grid::simd {
namespace {

// --- 4-lane exp2 / log2 ----------------------------------------------------

constexpr double kLn2 = 0.6931471805599453094172321;
constexpr double kTwoOverLn2 = 2.8853900817779268147198494;  // 2 / ln(2)

/// 2^x per lane. Range-reduce x = k + r with k integral and |r| <= 0.5, then
/// e^(r ln2) by a degree-11 Taylor polynomial (truncation < 7e-15 relative on
/// the reduced range, two orders inside the 1e-12 dB contract) and scale by
/// 2^k through the exponent bits. Inputs are clamped to +-1000 so
/// out-of-domain values saturate near 2^+-1000 instead of producing garbage
/// bit patterns; the carrier dB domain is hundreds at most.
inline __m256d v_exp2(__m256d x) {
  x = _mm256_max_pd(x, _mm256_set1_pd(-1000.0));
  x = _mm256_min_pd(x, _mm256_set1_pd(1000.0));
  const __m256d k =
      _mm256_round_pd(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d r = _mm256_sub_pd(x, k);  // exact: |r| <= 0.5, aligned ulps
  const __m256d t = _mm256_mul_pd(r, _mm256_set1_pd(kLn2));
  // exp(t), coefficients 1/k!, split into even/odd Horner chains in t^2 so
  // the dependency chain is half as deep as a straight Horner ladder (the
  // FMA ladder's latency, not its throughput, limits these kernels).
  const __m256d t2 = _mm256_mul_pd(t, t);
  __m256d pe = _mm256_set1_pd(1.0 / 3628800.0);                  // 1/10!
  pe = _mm256_fmadd_pd(pe, t2, _mm256_set1_pd(1.0 / 40320.0));   // 1/8!
  pe = _mm256_fmadd_pd(pe, t2, _mm256_set1_pd(1.0 / 720.0));     // 1/6!
  pe = _mm256_fmadd_pd(pe, t2, _mm256_set1_pd(1.0 / 24.0));      // 1/4!
  pe = _mm256_fmadd_pd(pe, t2, _mm256_set1_pd(0.5));             // 1/2!
  pe = _mm256_fmadd_pd(pe, t2, _mm256_set1_pd(1.0));
  __m256d po = _mm256_set1_pd(1.0 / 39916800.0);                 // 1/11!
  po = _mm256_fmadd_pd(po, t2, _mm256_set1_pd(1.0 / 362880.0));  // 1/9!
  po = _mm256_fmadd_pd(po, t2, _mm256_set1_pd(1.0 / 5040.0));    // 1/7!
  po = _mm256_fmadd_pd(po, t2, _mm256_set1_pd(1.0 / 120.0));     // 1/5!
  po = _mm256_fmadd_pd(po, t2, _mm256_set1_pd(1.0 / 6.0));       // 1/3!
  po = _mm256_fmadd_pd(po, t2, _mm256_set1_pd(1.0));
  const __m256d p = _mm256_fmadd_pd(t, po, pe);
  // 2^k: k is integral in [-1000, 1000] after the clamp, so it survives the
  // int32 round trip and (k + 1023) << 52 is a normal double's bit pattern.
  const __m128i ki = _mm256_cvtpd_epi32(k);
  const __m256i k64 = _mm256_cvtepi32_epi64(ki);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
}

/// log2(x) per lane for positive, finite, normal x (the carrier power domain:
/// accumulated linear powers are >= 1). Split x = m * 2^e with m in [1, 2),
/// fold m into [sqrt2/2, sqrt2) so log2(m) stays centred on zero (no
/// catastrophic cancellation for x near 1), then
/// log2(m) = (2/ln2) * atanh(s) with s = (m-1)/(m+1), |s| <= 0.1716, via the
/// odd series up to s^19 (truncation < 3e-17 relative).
inline __m256d v_log2(__m256d x) {
  const __m256i bits = _mm256_castpd_si256(x);
  // Biased exponent lanes are in [1, 2046]: compress the low 32 bits of each
  // 64-bit lane and convert via cvtepi32_pd.
  const __m256i e64 = _mm256_srli_epi64(bits, 52);
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m128i e32 =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(e64, perm));
  __m256d e = _mm256_sub_pd(_mm256_cvtepi32_pd(e32), _mm256_set1_pd(1023.0));
  const __m256i mant_mask = _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL);
  const __m256i one_bits = _mm256_set1_epi64x(0x3FF0000000000000LL);
  __m256d m = _mm256_castsi256_pd(
      _mm256_or_si256(_mm256_and_si256(bits, mant_mask), one_bits));
  const __m256d sqrt2 = _mm256_set1_pd(1.4142135623730951);
  const __m256d big = _mm256_cmp_pd(m, sqrt2, _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), big);
  e = _mm256_add_pd(e, _mm256_and_pd(big, _mm256_set1_pd(1.0)));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d s =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d s2 = _mm256_mul_pd(s, s);
  // Same even/odd chain split as v_exp2, here in s^4.
  const __m256d s4 = _mm256_mul_pd(s2, s2);
  __m256d pe = _mm256_set1_pd(1.0 / 17.0);
  pe = _mm256_fmadd_pd(pe, s4, _mm256_set1_pd(1.0 / 13.0));
  pe = _mm256_fmadd_pd(pe, s4, _mm256_set1_pd(1.0 / 9.0));
  pe = _mm256_fmadd_pd(pe, s4, _mm256_set1_pd(1.0 / 5.0));
  pe = _mm256_fmadd_pd(pe, s4, one);
  __m256d po = _mm256_set1_pd(1.0 / 19.0);
  po = _mm256_fmadd_pd(po, s4, _mm256_set1_pd(1.0 / 15.0));
  po = _mm256_fmadd_pd(po, s4, _mm256_set1_pd(1.0 / 11.0));
  po = _mm256_fmadd_pd(po, s4, _mm256_set1_pd(1.0 / 7.0));
  po = _mm256_fmadd_pd(po, s4, _mm256_set1_pd(1.0 / 3.0));
  const __m256d p = _mm256_fmadd_pd(s2, po, pe);
  return _mm256_fmadd_pd(_mm256_mul_pd(s, p),
                         _mm256_set1_pd(kTwoOverLn2), e);
}

/// Fixed-order horizontal sum: (l0 + l2) + (l1 + l3).
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

// --- kernels ---------------------------------------------------------------
// Tails: the transcendental/gather kernels route the final partial block
// through the same 4-lane code on padded copies, so an element's value never
// depends on its position in the array; the element-wise kernels finish with
// a scalar loop (identical operations, identical result either way).

void a_db_to_linear_n(const double* db, double* out, std::size_t n) {
  const __m256d c = _mm256_set1_pd(kDbToLog2);
  std::size_t i = 0;
  // Two independent polynomial chains per iteration: v_exp2 is a serial
  // FMA ladder, so a single chain leaves the FMA ports half idle.
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i), c));
    const __m256d r1 = v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i + 4), c));
    _mm256_storeu_pd(out + i, r0);
    _mm256_storeu_pd(out + i + 4, r1);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i), c)));
  }
  if (i < n) {
    alignas(32) double in[4] = {0.0, 0.0, 0.0, 0.0};
    alignas(32) double tmp[4];
    std::memcpy(in, db + i, (n - i) * sizeof(double));
    _mm256_store_pd(tmp, v_exp2(_mm256_mul_pd(_mm256_load_pd(in), c)));
    std::memcpy(out + i, tmp, (n - i) * sizeof(double));
  }
}

void a_linear_to_db_n(const double* lin, double* out, std::size_t n) {
  const __m256d c = _mm256_set1_pd(kLog2ToDb);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_mul_pd(v_log2(_mm256_loadu_pd(lin + i)), c);
    const __m256d r1 = _mm256_mul_pd(v_log2(_mm256_loadu_pd(lin + i + 4)), c);
    _mm256_storeu_pd(out + i, r0);
    _mm256_storeu_pd(out + i + 4, r1);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(v_log2(_mm256_loadu_pd(lin + i)), c));
  }
  if (i < n) {
    alignas(32) double in[4] = {1.0, 1.0, 1.0, 1.0};
    alignas(32) double tmp[4];
    std::memcpy(in, lin + i, (n - i) * sizeof(double));
    _mm256_store_pd(tmp, _mm256_mul_pd(v_log2(_mm256_load_pd(in)), c));
    std::memcpy(out + i, tmp, (n - i) * sizeof(double));
  }
}

void a_affine_n(double add, double slope, const double* x, double* out,
                std::size_t n) {
  const __m256d va = _mm256_set1_pd(add);
  const __m256d vs = _mm256_set1_pd(slope);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(va, _mm256_mul_pd(vs, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) out[i] = add + slope * x[i];
}

void a_accumulate_notch_n(double broadband, double depth, const double* s,
                          double* acc, std::size_t n) {
  const __m256d vb = _mm256_set1_pd(broadband);
  const __m256d vd = _mm256_set1_pd(depth);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(s + i);
    const __m256d term =
        _mm256_add_pd(vb, _mm256_mul_pd(_mm256_mul_pd(vd, v), v));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), term));
  }
  for (; i < n; ++i) {
    const double v = s[i];
    acc[i] += broadband + depth * v * v;
  }
}

void a_accumulate_scaled_n(double scale, const double* x, double* acc,
                           std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d term = _mm256_mul_pd(vs, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), term));
  }
  for (; i < n; ++i) acc[i] += scale * x[i];
}

void a_assemble_snr_n(double c, const double* a, const double* b, double* out,
                      std::size_t n) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_sub_pd(_mm256_sub_pd(vc, _mm256_loadu_pd(a + i)),
                      _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = c - a[i] - b[i];
}

void a_shift_n(const double* in, double offset, double* out, std::size_t n) {
  const __m256d vo = _mm256_set1_pd(offset);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(in + i), vo));
  }
  for (; i < n; ++i) out[i] = in[i] - offset;
}

double a_sum_db_to_linear_n(const double* db, std::size_t n) {
  const __m256d c = _mm256_set1_pd(kDbToLog2);
  __m256d acc = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm256_add_pd(acc,
                        v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i), c)));
    acc1 = _mm256_add_pd(
        acc1, v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i + 4), c)));
    acc2 = _mm256_add_pd(
        acc2, v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i + 8), c)));
    acc3 = _mm256_add_pd(
        acc3, v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i + 12), c)));
  }
  acc = _mm256_add_pd(_mm256_add_pd(acc, acc1), _mm256_add_pd(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc,
                        v_exp2(_mm256_mul_pd(_mm256_loadu_pd(db + i), c)));
  }
  double tail = 0.0;
  if (i < n) {
    alignas(32) double in[4] = {0.0, 0.0, 0.0, 0.0};
    alignas(32) double tmp[4];
    std::memcpy(in, db + i, (n - i) * sizeof(double));
    _mm256_store_pd(tmp, v_exp2(_mm256_mul_pd(_mm256_load_pd(in), c)));
    for (std::size_t j = 0; j < n - i; ++j) tail += tmp[j];
  }
  return hsum(acc) + tail;
}

void a_ber_weighted_sum_n(const InterpTableView& lut, const std::int32_t* row_off,
                          const double* bits, const double* snr_db, double gain_db,
                          std::size_t n, double* weighted_ber, double* total_bits) {
  const __m256d vgain = _mm256_set1_pd(gain_db);
  const __m256d vmin = _mm256_set1_pd(lut.min_db);
  // Multiplying by the reciprocal step instead of dividing can move pos by
  // an ulp; a flipped cell at a boundary changes the interpolated BER by at
  // most one cell's curvature, far inside the PBerr tolerance.
  const __m256d vinvstep = _mm256_set1_pd(1.0 / lut.step_db);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vlast = _mm256_set1_pd(static_cast<double>(lut.size - 1));
  // Clamping the cell index to size-2 makes the pos >= last case read the
  // last cell with frac 1.0 instead of gathering one past the row's end.
  const __m256d vmaxcell = _mm256_set1_pd(static_cast<double>(lut.size - 2));
  __m256d wb = _mm256_setzero_pd();
  __m256d tb = _mm256_setzero_pd();

  const auto block = [&](const double* snr4, const std::int32_t* row4,
                         const double* bits4) {
    const __m256d eff = _mm256_add_pd(_mm256_loadu_pd(snr4), vgain);
    __m256d pos = _mm256_mul_pd(_mm256_sub_pd(eff, vmin), vinvstep);
    pos = _mm256_max_pd(pos, vzero);
    pos = _mm256_min_pd(pos, vlast);
    __m256d cell = _mm256_floor_pd(pos);
    cell = _mm256_min_pd(cell, vmaxcell);
    const __m256d frac = _mm256_sub_pd(pos, cell);
    const __m128i idx = _mm256_cvtpd_epi32(cell);
    const __m128i rows =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row4));
    const __m128i base = _mm_add_epi32(rows, idx);
    // Each lane needs the adjacent pair table[k], table[k+1] (k <= row end
    // minus one after the size-2 clamp), so four 128-bit pair loads plus
    // unpacks are cheaper than two hardware gathers on every AVX2 core.
    alignas(16) std::int32_t k4[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(k4), base);
    const __m128d p0 = _mm_loadu_pd(lut.table + k4[0]);
    const __m128d p1 = _mm_loadu_pd(lut.table + k4[1]);
    const __m128d p2 = _mm_loadu_pd(lut.table + k4[2]);
    const __m128d p3 = _mm_loadu_pd(lut.table + k4[3]);
    const __m256d v0 = _mm256_set_m128d(_mm_unpacklo_pd(p2, p3),
                                        _mm_unpacklo_pd(p0, p1));
    const __m256d v1 = _mm256_set_m128d(_mm_unpackhi_pd(p2, p3),
                                        _mm_unpackhi_pd(p0, p1));
    const __m256d v =
        _mm256_add_pd(v0, _mm256_mul_pd(frac, _mm256_sub_pd(v1, v0)));
    const __m256d b = _mm256_loadu_pd(bits4);
    wb = _mm256_add_pd(wb, _mm256_mul_pd(v, b));
    tb = _mm256_add_pd(tb, b);
  };

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) block(snr_db + i, row_off + i, bits + i);
  if (i < n) {
    // Padded final block: pad lanes carry bits 0, so they contribute an
    // exact +0.0 to both accumulators.
    alignas(32) double snr4[4] = {0.0, 0.0, 0.0, 0.0};
    alignas(16) std::int32_t row4[4] = {0, 0, 0, 0};
    alignas(32) double bits4[4] = {0.0, 0.0, 0.0, 0.0};
    std::memcpy(snr4, snr_db + i, (n - i) * sizeof(double));
    std::memcpy(row4, row_off + i, (n - i) * sizeof(std::int32_t));
    std::memcpy(bits4, bits + i, (n - i) * sizeof(double));
    block(snr4, row4, bits4);
  }
  *weighted_ber = hsum(wb);
  *total_bits = hsum(tb);
}

constexpr CarrierKernels kAvx2 = {
    "avx2",
    &a_db_to_linear_n,
    &a_linear_to_db_n,
    &a_affine_n,
    &a_accumulate_notch_n,
    &a_accumulate_scaled_n,
    &a_assemble_snr_n,
    &a_shift_n,
    &a_sum_db_to_linear_n,
    &a_ber_weighted_sum_n,
};

}  // namespace

namespace detail {
const CarrierKernels* avx2_kernels_impl() { return &kAvx2; }
}  // namespace detail

}  // namespace efd::grid::simd

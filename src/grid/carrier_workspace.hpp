#pragma once

#include <vector>

namespace efd::grid {

/// Caller-owned scratch buffers for the allocation-free per-carrier query
/// variants of PowerGrid / PlcChannel. Multi-day trace generation calls the
/// per-carrier kernels millions of times; routing every query through a
/// workspace keeps the hot path free of std::vector allocations. Buffers
/// grow to the band's carrier count on first use and are reused afterwards.
///
/// A workspace is NOT thread-safe: use one per thread (the channel layer
/// keeps a thread_local instance for its own internal queries).
struct CarrierWorkspace {
  std::vector<double> att_db;    ///< attenuation_db output
  std::vector<double> noise_db;  ///< noise_psd_db output
  std::vector<double> power;     ///< linear-domain accumulator (noise kernel)
  std::vector<double> snr_db;    ///< channel-layer SNR output
};

}  // namespace efd::grid

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <utility>

namespace efd::grid {

/// Grow-only 64-byte-aligned double buffer — the storage behind
/// CarrierWorkspace. The per-carrier batch kernels (grid/simd.hpp) load and
/// store full vector registers; 64-byte alignment keeps every block load on
/// one cache line and lets the AVX2/NEON entries use aligned moves for the
/// whole structure-of-arrays workspace. The interface is the subset of
/// std::vector<double> the carrier hot paths use (resize / assign / data /
/// operator[] / span conversion); growth never shrinks capacity, so steady
/// state does zero allocations, matching the PR 1 workspace contract.
class AlignedVec {
 public:
  static constexpr std::size_t kAlign = 64;

  AlignedVec() = default;
  AlignedVec(const AlignedVec&) = delete;
  AlignedVec& operator=(const AlignedVec&) = delete;
  AlignedVec(AlignedVec&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cap_(std::exchange(other.cap_, 0)) {}
  AlignedVec& operator=(AlignedVec&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      cap_ = std::exchange(other.cap_, 0);
    }
    return *this;
  }
  ~AlignedVec() { release(); }

  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] double& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const double& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] double* begin() { return data_; }
  [[nodiscard]] double* end() { return data_ + size_; }
  [[nodiscard]] const double* begin() const { return data_; }
  [[nodiscard]] const double* end() const { return data_ + size_; }

  operator std::span<double>() { return {data_, size_}; }               // NOLINT
  operator std::span<const double>() const { return {data_, size_}; }   // NOLINT

  /// Grow capacity to at least `n` doubles (64-byte aligned), preserving the
  /// current contents. Never shrinks.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    auto* fresh = static_cast<double*>(
        ::operator new(n * sizeof(double), std::align_val_t{kAlign}));
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(double));
    release();
    data_ = fresh;
    cap_ = n;
  }

  /// Set the logical size; newly exposed elements are uninitialized (the
  /// kernels overwrite every slot before reading).
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  /// resize(n) then fill with `v` (the std::vector::assign the noise kernel
  /// used for its linear-power accumulator).
  void assign(std::size_t n, double v) {
    resize(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
  }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlign});
    }
  }

  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

/// Caller-owned scratch buffers for the allocation-free per-carrier query
/// variants of PowerGrid / PlcChannel. Multi-day trace generation calls the
/// per-carrier kernels millions of times; routing every query through a
/// workspace keeps the hot path free of std::vector allocations. Buffers are
/// structure-of-arrays, 64-byte aligned for the batch SIMD kernels, grow to
/// the band's carrier count on first use and are reused afterwards.
///
/// A workspace is NOT thread-safe: use one per thread (the channel layer
/// keeps a thread_local instance for its own internal queries). Debug builds
/// trip an assert on concurrent or reentrant use via CarrierWorkspace::Guard;
/// release builds pay one relaxed atomic store per guarded query.
struct CarrierWorkspace {
  AlignedVec att_db;    ///< attenuation_db output
  AlignedVec noise_db;  ///< noise_psd_db output
  AlignedVec power;     ///< linear-domain accumulator (noise kernel)
  AlignedVec snr_db;    ///< channel-layer SNR output

  /// Grow every buffer's capacity to `n` carriers in one shot, so a caller
  /// can front-load the (only) allocations before entering the hot loop.
  void reserve_carriers(std::size_t n) {
    att_db.reserve(n);
    noise_db.reserve(n);
    power.reserve(n);
    snr_db.reserve(n);
  }

  /// Reentrancy tripwire: each workspace-taking query holds a Guard for its
  /// duration. Two overlapping guards on one workspace — two threads, or a
  /// reentrant call chain sharing the thread_local scratch — assert in debug
  /// builds instead of silently corrupting the shared buffers.
  class Guard {
   public:
    explicit Guard(CarrierWorkspace& ws) : ws_(ws) {
#ifndef NDEBUG
      const bool was_in_use = ws_.in_use_.exchange(true, std::memory_order_acquire);
      assert(!was_in_use && "CarrierWorkspace used concurrently/reentrantly");
#else
      ws_.in_use_.store(true, std::memory_order_relaxed);
#endif
    }
    ~Guard() { ws_.in_use_.store(false, std::memory_order_release); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    CarrierWorkspace& ws_;
  };

 private:
  // Unconditional member so debug and release layouts agree.
  std::atomic<bool> in_use_{false};
};

}  // namespace efd::grid

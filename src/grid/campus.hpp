#pragma once

// Campus-scale topology for the sharded engine (DESIGN.md §14): many
// distribution boards, each an independent PowerGrid, joined by explicit
// boundary crossings. The paper's testbed (§3.1) found PLC across
// distribution boards "challenging" — the basement path eats most of the
// link budget — which is exactly what makes boards natural partition
// boundaries: almost all channel interaction is intra-board, and the rare
// cross-board traffic goes through a gateway (a PLC backbone repeater or a
// building-to-building WiFi bridge) slow enough to give the conservative
// protocol real lookahead.

#include <cstdint>
#include <string>
#include <vector>

#include "src/grid/power_grid.hpp"
#include "src/sim/time.hpp"

namespace efd::grid {

enum class BoundaryKind {
  kPlcBackbone,  ///< riser/feeder cable between boards of one building
  kWifiBridge,   ///< point-to-point WiFi link between buildings
};

[[nodiscard]] const char* to_string(BoundaryKind k);

/// One undirected crossing between two distribution boards. The engine
/// turns it into two directed links with the same lookahead.
struct BoundaryLink {
  int board_a = 0;
  int board_b = 0;
  BoundaryKind kind = BoundaryKind::kPlcBackbone;
  double length_m = 0.0;
  double budget_db = 0.0;    ///< attenuation budget of the crossing
  sim::Time lookahead{};     ///< derived: see derive_lookahead()
};

struct CampusConfig {
  int n_outlets = 100;
  int outlets_per_board = 20;
  int stations_per_board = 4;
  int boards_per_building = 8;
  std::uint64_t seed = 1;
};

/// Deterministic campus generator: `generate(cfg)` always produces the same
/// boards, wiring, appliances and crossings for the same config, regardless
/// of shard count or thread schedule — board-local structure comes from a
/// per-board forked Rng stream.
class CampusTopology {
 public:
  [[nodiscard]] static CampusTopology generate(const CampusConfig& cfg);

  [[nodiscard]] const CampusConfig& config() const { return cfg_; }
  [[nodiscard]] int n_boards() const { return n_boards_; }
  [[nodiscard]] int n_buildings() const { return n_buildings_; }
  [[nodiscard]] int building_of(int board) const {
    return building_of_[static_cast<std::size_t>(board)];
  }
  [[nodiscard]] const std::vector<BoundaryLink>& links() const { return links_; }

  /// Boards reachable from `board` over one crossing, ascending.
  [[nodiscard]] std::vector<int> neighbors(int board) const;

  /// Outlets wired to this board's panel (the last board takes the
  /// remainder of cfg.n_outlets).
  [[nodiscard]] int outlets_on_board(int board) const;

  /// Outlet index (within the board) where station `k` of the board plugs
  /// in; station 0 sits at outlet 0, next to the panel — it is the board's
  /// boundary gateway.
  [[nodiscard]] int station_outlet(int board, int k) const;

  /// Populate `grid` with this board's wiring: outlet nodes, panel-rooted
  /// cable runs, and the appliance population. Deterministic per board.
  void build_board_grid(int board, PowerGrid& grid) const;

  /// Shard owning `board` under the engine's contiguous-block split:
  /// floor(board * n_shards / n_boards).
  [[nodiscard]] int shard_of_board(int board, int n_shards) const;

  /// Conservative delivery-time bound for one crossing: propagation over
  /// `length_m`, plus store-and-forward serialization of a minimum frame at
  /// the rate the crossing's attenuation budget supports, plus the
  /// gateway's processing floor. Strictly positive by construction.
  [[nodiscard]] static sim::Time derive_lookahead(BoundaryKind kind, double length_m,
                                                  double budget_db);

  /// The whole campus as JSON: boards (building, outlets, stations, shard
  /// under `n_shards`), crossings, and summary counts. Drives the
  /// `efd topology` subcommand.
  [[nodiscard]] std::string to_json(int n_shards) const;

 private:
  CampusConfig cfg_;
  int n_boards_ = 0;
  int n_buildings_ = 0;
  std::vector<int> building_of_;
  std::vector<BoundaryLink> links_;
};

}  // namespace efd::grid

#include "src/testkit/diff.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "src/grid/simd.hpp"
#include "src/plc/channel_estimator.hpp"
#include "src/sim/rng.hpp"
#include "src/testkit/reference.hpp"

namespace efd::testkit {

namespace {

struct DiffAccum {
  DiffResult r;

  explicit DiffAccum(std::string what, double tolerance) {
    r.what = std::move(what);
    r.tolerance = tolerance;
  }

  void sample(double err, const char* fmt, auto... args) {
    ++r.samples;
    if (err > r.max_abs_err) {
      r.max_abs_err = err;
      char buf[192];
      std::snprintf(buf, sizeof buf, fmt, args...);
      r.worst_detail = buf;
    }
  }

  DiffResult finish() {
    r.ok = r.max_abs_err <= r.tolerance;
    return r;
  }
};

/// Directed unicast links with built tone maps: the state the run exercised.
struct Link {
  net::StationId tx;
  net::StationId rx;
  const plc::ChannelEstimator* est;
};

std::vector<Link> run_links(ScenarioWorld& world) {
  std::vector<Link> links;
  std::set<std::pair<net::StationId, net::StationId>> seen;
  for (const Scenario::TrafficSpec& t : world.scenario().traffic) {
    if (t.dst < 0) continue;
    const auto& stations = world.scenario().stations;
    const net::StationId tx = stations[static_cast<std::size_t>(t.src)].id;
    const net::StationId rx = stations[static_cast<std::size_t>(t.dst)].id;
    if (!seen.insert({tx, rx}).second) continue;
    const plc::ChannelEstimator& est = world.network().estimator(rx, tx);
    if (est.has_tone_maps()) links.push_back({tx, rx, &est});
  }
  return links;
}

DiffResult diff_db_conversions(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("db-conversions", tol.db_conversion_rel);
  const CarrierMathImpl& fast = fast_impl();
  const CarrierMathImpl& ref = reference_impl();
  sim::Rng rng = sim::Rng{world.scenario().world_seed}.fork(0xd1ffu);
  for (int i = 0; i < 256; ++i) {
    const double db = rng.uniform(-120.0, 80.0);
    const double f = fast.db_to_linear(db);
    const double r = ref.db_to_linear(db);
    acc.sample(std::abs(f - r) / std::max(std::abs(r), 1e-300),
               "db_to_linear(%.6f): fast %.17g ref %.17g", db, f, r);
    const double lin = ref.db_to_linear(rng.uniform(-120.0, 80.0));
    const double fb = fast.linear_to_db(lin);
    const double rb = ref.linear_to_db(lin);
    acc.sample(std::abs(fb - rb) / std::max(std::abs(rb), 1e-12),
               "linear_to_db(%.17g): fast %.12f ref %.12f", lin, fb, rb);
  }
  return acc.finish();
}

DiffResult diff_uncoded_ber(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("uncoded-ber-lut", tol.uncoded_ber_abs);
  const CarrierMathImpl& fast = fast_impl();
  const CarrierMathImpl& ref = reference_impl();
  sim::Rng rng = sim::Rng{world.scenario().world_seed}.fork(0xbe4u);
  for (int i = 0; i < 512; ++i) {
    // Enumerator range: kBpsk (1) .. kQam1024 (7); kOff is trivially 0.
    const auto m = static_cast<plc::Modulation>(rng.uniform_int(1, 7));
    const double snr = rng.uniform(-85.0, 65.0);
    const double f = fast.uncoded_ber(m, snr);
    const double r = ref.uncoded_ber(m, snr);
    acc.sample(std::abs(f - r), "mod %d @ %.3f dB: LUT %.8f exact %.8f",
               static_cast<int>(m), snr, f, r);
  }
  return acc.finish();
}

DiffResult diff_static_snr(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("static-snr-cache", tol.static_snr_abs_db);
  const plc::PlcChannel& ch = world.channel();
  const plc::PhyParams& phy = ch.phy();
  const sim::Time now = world.sim().now();
  // The world channel's cache may have been filled earlier in the epoch
  // (the slow drift term is continuous in t, so its entries differ from a
  // recompute at `now` by the drift delta, legitimately). A cold-cache
  // channel over the same grid builds its entries at exactly `now`, so the
  // production assembly path (tx PSD - attenuation - noise, carrier by
  // carrier) must match the naive recompute to rounding.
  plc::PlcChannel cold(ch.grid(), phy);
  for (const Scenario::StationSpec& st : world.scenario().stations) {
    cold.attach_station(st.id, st.outlet);
  }
  for (const Link& l : run_links(world)) {
    const int oa = ch.outlet(l.tx);
    const int ob = ch.outlet(l.rx);
    for (int slot = 0; slot < phy.tone_map_slots; ++slot) {
      const std::vector<double>& cached = cold.static_snr_db(l.tx, l.rx, slot, now);
      const std::vector<double> att =
          ch.grid().attenuation_db(oa, ob, phy.band, now);
      const std::vector<double> noise =
          ch.grid().noise_psd_db(ob, phy.band, now, slot, phy.tone_map_slots);
      for (std::size_t i = 0; i < cached.size(); ++i) {
        const double fresh = phy.tx_psd_db - att[i] - noise[i];
        acc.sample(std::abs(cached[i] - fresh),
                   "link %d->%d slot %d carrier %zu: cached %.12f fresh %.12f",
                   l.tx, l.rx, slot, i, cached[i], fresh);
      }
    }
  }
  return acc.finish();
}

DiffResult diff_pberr(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("pb-error-probability", tol.pberr_abs);
  const plc::PlcChannel& ch = world.channel();
  const sim::Time now = world.sim().now();
  for (const Link& l : run_links(world)) {
    const auto& maps = l.est->tone_maps();
    // Replicate the production path's 0.25 dB offset quantization so the
    // diff isolates LUT-vs-exact carrier math, not the documented
    // quantization (which is part of the fast path's contract, bounded
    // separately by construction).
    const double offset = ch.fast_offset_db(l.rx, now);
    const double off = std::lround(offset * 4.0) / 4.0;
    int slot = 0;
    for (const plc::ToneMap& tm : maps.slots) {
      const double fast = ch.pb_error_probability(tm, l.tx, l.rx, slot, now);
      std::vector<double> snr = ch.static_snr_db(l.tx, l.rx, slot, now);
      for (double& v : snr) v -= off;
      const double reps = tm.is_robo() ? tm.robo_repetitions() : 1;
      const double refp = ref::pb_error_probability(
          tm.carriers(), snr, static_cast<int>(reps), reference_impl());
      acc.sample(std::abs(fast - refp),
                 "link %d->%d slot %d map %u: fast %.8f ref %.8f", l.tx, l.rx,
                 slot, tm.id(), fast, refp);
      ++slot;
    }
  }
  return acc.finish();
}

DiffResult diff_ble(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("ble-eq1", tol.ble_rel);
  const plc::PhyParams& phy = world.channel().phy();
  for (const Link& l : run_links(world)) {
    auto compare = [&](const plc::ToneMap& tm, const char* kind) {
      const double fast = tm.ble_mbps();
      const double ref = ref::ble_mbps(tm, phy);
      acc.sample(std::abs(fast - ref) / std::max(std::abs(ref), 1e-12),
                 "link %d->%d %s map %u: cached %.12f recomputed %.12f", l.tx,
                 l.rx, kind, tm.id(), fast, ref);
    };
    for (const plc::ToneMap& tm : l.est->tone_maps().slots) compare(tm, "slot");
    compare(l.est->tone_maps().robo, "robo");
  }
  return acc.finish();
}

/// Batch-kernel dB arithmetic of one dispatch entry vs the naive reference:
/// the conversion and reduction kernels within db_conversion_rel, and the
/// element-wise kernels against the scalar entry (which they are required to
/// match far tighter than the same bound). Odd vector lengths exercise every
/// entry's tail path.
DiffResult diff_kernels_db(ScenarioWorld& world, const DiffTolerances& tol,
                           const grid::simd::CarrierKernels& k) {
  DiffAccum acc(std::string("kernels-") + k.name + "-db", tol.db_conversion_rel);
  const CarrierMathImpl& ref = reference_impl();
  const grid::simd::CarrierKernels& sc = grid::simd::scalar_kernels();
  sim::Rng rng = sim::Rng{world.scenario().world_seed}.fork(0x51d1u);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{916},
                              std::size_t{917}}) {
    std::vector<double> db(n), x(n), out(n), tmp(n), scout(n), sctmp(n);
    for (std::size_t i = 0; i < n; ++i) {
      db[i] = rng.uniform(-120.0, 80.0);
      x[i] = rng.uniform(-50.0, 50.0);
    }
    k.db_to_linear_n(db.data(), out.data(), n);
    double ref_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ref.db_to_linear(db[i]);
      ref_sum += r;
      acc.sample(std::abs(out[i] - r) / std::max(std::abs(r), 1e-300),
                 "%s db_to_linear_n[%zu/%zu]: %.17g ref %.17g", k.name, i, n,
                 out[i], r);
    }
    const double sum = k.sum_db_to_linear_n(db.data(), n);
    acc.sample(std::abs(sum - ref_sum) / std::max(std::abs(ref_sum), 1e-300),
               "%s sum_db_to_linear_n(n=%zu): %.17g ref %.17g", k.name, n, sum,
               ref_sum);
    k.linear_to_db_n(out.data(), tmp.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ref.linear_to_db(out[i]);
      acc.sample(std::abs(tmp[i] - r) / std::max(std::abs(r), 1e-12),
                 "%s linear_to_db_n[%zu/%zu]: %.12f ref %.12f", k.name, i, n,
                 tmp[i], r);
    }
    // Element-wise kernels vs the scalar entry.
    k.affine_n(3.25, 0.125, x.data(), out.data(), n);
    sc.affine_n(3.25, 0.125, x.data(), scout.data(), n);
    k.assemble_snr_n(55.0, db.data(), x.data(), tmp.data(), n);
    sc.assemble_snr_n(55.0, db.data(), x.data(), sctmp.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      acc.sample(std::abs(out[i] - scout[i]) / std::max(std::abs(scout[i]), 1e-12),
                 "%s affine_n[%zu/%zu]: %.17g scalar %.17g", k.name, i, n,
                 out[i], scout[i]);
      acc.sample(std::abs(tmp[i] - sctmp[i]) / std::max(std::abs(sctmp[i]), 1e-12),
                 "%s assemble_snr_n[%zu/%zu]: %.17g scalar %.17g", k.name, i, n,
                 tmp[i], sctmp[i]);
    }
    k.accumulate_notch_n(0.75, 4.5, x.data(), out.data(), n);
    sc.accumulate_notch_n(0.75, 4.5, x.data(), scout.data(), n);
    k.accumulate_scaled_n(0.3, db.data(), out.data(), n);
    sc.accumulate_scaled_n(0.3, db.data(), scout.data(), n);
    k.shift_n(out.data(), 1.5, out.data(), n);
    sc.shift_n(scout.data(), 1.5, scout.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      acc.sample(std::abs(out[i] - scout[i]) / std::max(std::abs(scout[i]), 1e-12),
                 "%s notch+scaled+shift[%zu/%zu]: %.17g scalar %.17g", k.name, i,
                 n, out[i], scout[i]);
    }
  }
  return acc.finish();
}

/// One dispatch entry's BER-LUT gather/reduction through the full ToneMap
/// path vs the naive closed-form reference, including the ROBO combining
/// branch, at the PB-error tolerance.
DiffResult diff_kernels_pberr(ScenarioWorld& world, const DiffTolerances& tol,
                              const grid::simd::CarrierKernels& k) {
  DiffAccum acc(std::string("kernels-") + k.name + "-pberr", tol.pberr_abs);
  const plc::PhyParams& phy = world.channel().phy();
  sim::Rng rng = sim::Rng{world.scenario().world_seed}.fork(0x51d2u);
  const auto n = static_cast<std::size_t>(phy.band.n_carriers);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> snr(n);
    for (double& v : snr) v = rng.uniform(-20.0, 45.0);
    const plc::ToneMap tm =
        plc::ToneMap::from_snr(snr, 2.0, phy, 0.0, static_cast<std::uint32_t>(trial));
    const double fast = tm.pb_error_probability(snr, phy, k);
    const double refp =
        ref::pb_error_probability(tm.carriers(), snr, 1, reference_impl());
    acc.sample(std::abs(fast - refp), "%s trial %d: fast %.8f ref %.8f", k.name,
               trial, fast, refp);
    const plc::ToneMap robo = plc::ToneMap::robo(phy);
    const double fast_robo = robo.pb_error_probability(snr, phy, k);
    const double ref_robo = ref::pb_error_probability(
        robo.carriers(), snr, robo.robo_repetitions(), reference_impl());
    acc.sample(std::abs(fast_robo - ref_robo),
               "%s robo trial %d: fast %.8f ref %.8f", k.name, trial, fast_robo,
               ref_robo);
  }
  return acc.finish();
}

}  // namespace

std::vector<DiffResult> run_diff(ScenarioWorld& world, const DiffTolerances& tol) {
  std::vector<DiffResult> out{
      diff_db_conversions(world, tol), diff_uncoded_ber(world, tol),
      diff_static_snr(world, tol),     diff_pberr(world, tol),
      diff_ble(world, tol),
  };
  // Every dispatch entry this machine can run: scalar always, plus the
  // vector implementations whose ISA the CPU reports.
  for (const grid::simd::CarrierKernels* k : grid::simd::available_kernels()) {
    out.push_back(diff_kernels_db(world, tol, *k));
    out.push_back(diff_kernels_pberr(world, tol, *k));
  }
  return out;
}

std::vector<DiffResult> diff_failures(const std::vector<DiffResult>& r) {
  std::vector<DiffResult> out;
  for (const DiffResult& d : r) {
    if (!d.ok) out.push_back(d);
  }
  return out;
}

}  // namespace efd::testkit

#include "src/testkit/diff.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "src/plc/channel_estimator.hpp"
#include "src/sim/rng.hpp"
#include "src/testkit/reference.hpp"

namespace efd::testkit {

namespace {

struct DiffAccum {
  DiffResult r;

  explicit DiffAccum(std::string what, double tolerance) {
    r.what = std::move(what);
    r.tolerance = tolerance;
  }

  void sample(double err, const char* fmt, auto... args) {
    ++r.samples;
    if (err > r.max_abs_err) {
      r.max_abs_err = err;
      char buf[192];
      std::snprintf(buf, sizeof buf, fmt, args...);
      r.worst_detail = buf;
    }
  }

  DiffResult finish() {
    r.ok = r.max_abs_err <= r.tolerance;
    return r;
  }
};

/// Directed unicast links with built tone maps: the state the run exercised.
struct Link {
  net::StationId tx;
  net::StationId rx;
  const plc::ChannelEstimator* est;
};

std::vector<Link> run_links(ScenarioWorld& world) {
  std::vector<Link> links;
  std::set<std::pair<net::StationId, net::StationId>> seen;
  for (const Scenario::TrafficSpec& t : world.scenario().traffic) {
    if (t.dst < 0) continue;
    const auto& stations = world.scenario().stations;
    const net::StationId tx = stations[static_cast<std::size_t>(t.src)].id;
    const net::StationId rx = stations[static_cast<std::size_t>(t.dst)].id;
    if (!seen.insert({tx, rx}).second) continue;
    const plc::ChannelEstimator& est = world.network().estimator(rx, tx);
    if (est.has_tone_maps()) links.push_back({tx, rx, &est});
  }
  return links;
}

DiffResult diff_db_conversions(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("db-conversions", tol.db_conversion_rel);
  const CarrierMathImpl& fast = fast_impl();
  const CarrierMathImpl& ref = reference_impl();
  sim::Rng rng = sim::Rng{world.scenario().world_seed}.fork(0xd1ffu);
  for (int i = 0; i < 256; ++i) {
    const double db = rng.uniform(-120.0, 80.0);
    const double f = fast.db_to_linear(db);
    const double r = ref.db_to_linear(db);
    acc.sample(std::abs(f - r) / std::max(std::abs(r), 1e-300),
               "db_to_linear(%.6f): fast %.17g ref %.17g", db, f, r);
    const double lin = ref.db_to_linear(rng.uniform(-120.0, 80.0));
    const double fb = fast.linear_to_db(lin);
    const double rb = ref.linear_to_db(lin);
    acc.sample(std::abs(fb - rb) / std::max(std::abs(rb), 1e-12),
               "linear_to_db(%.17g): fast %.12f ref %.12f", lin, fb, rb);
  }
  return acc.finish();
}

DiffResult diff_uncoded_ber(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("uncoded-ber-lut", tol.uncoded_ber_abs);
  const CarrierMathImpl& fast = fast_impl();
  const CarrierMathImpl& ref = reference_impl();
  sim::Rng rng = sim::Rng{world.scenario().world_seed}.fork(0xbe4u);
  for (int i = 0; i < 512; ++i) {
    // Enumerator range: kBpsk (1) .. kQam1024 (7); kOff is trivially 0.
    const auto m = static_cast<plc::Modulation>(rng.uniform_int(1, 7));
    const double snr = rng.uniform(-85.0, 65.0);
    const double f = fast.uncoded_ber(m, snr);
    const double r = ref.uncoded_ber(m, snr);
    acc.sample(std::abs(f - r), "mod %d @ %.3f dB: LUT %.8f exact %.8f",
               static_cast<int>(m), snr, f, r);
  }
  return acc.finish();
}

DiffResult diff_static_snr(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("static-snr-cache", tol.static_snr_abs_db);
  const plc::PlcChannel& ch = world.channel();
  const plc::PhyParams& phy = ch.phy();
  const sim::Time now = world.sim().now();
  // The world channel's cache may have been filled earlier in the epoch
  // (the slow drift term is continuous in t, so its entries differ from a
  // recompute at `now` by the drift delta, legitimately). A cold-cache
  // channel over the same grid builds its entries at exactly `now`, so the
  // production assembly path (tx PSD - attenuation - noise, carrier by
  // carrier) must match the naive recompute to rounding.
  plc::PlcChannel cold(ch.grid(), phy);
  for (const Scenario::StationSpec& st : world.scenario().stations) {
    cold.attach_station(st.id, st.outlet);
  }
  for (const Link& l : run_links(world)) {
    const int oa = ch.outlet(l.tx);
    const int ob = ch.outlet(l.rx);
    for (int slot = 0; slot < phy.tone_map_slots; ++slot) {
      const std::vector<double>& cached = cold.static_snr_db(l.tx, l.rx, slot, now);
      const std::vector<double> att =
          ch.grid().attenuation_db(oa, ob, phy.band, now);
      const std::vector<double> noise =
          ch.grid().noise_psd_db(ob, phy.band, now, slot, phy.tone_map_slots);
      for (std::size_t i = 0; i < cached.size(); ++i) {
        const double fresh = phy.tx_psd_db - att[i] - noise[i];
        acc.sample(std::abs(cached[i] - fresh),
                   "link %d->%d slot %d carrier %zu: cached %.12f fresh %.12f",
                   l.tx, l.rx, slot, i, cached[i], fresh);
      }
    }
  }
  return acc.finish();
}

DiffResult diff_pberr(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("pb-error-probability", tol.pberr_abs);
  const plc::PlcChannel& ch = world.channel();
  const sim::Time now = world.sim().now();
  for (const Link& l : run_links(world)) {
    const auto& maps = l.est->tone_maps();
    // Replicate the production path's 0.25 dB offset quantization so the
    // diff isolates LUT-vs-exact carrier math, not the documented
    // quantization (which is part of the fast path's contract, bounded
    // separately by construction).
    const double offset = ch.fast_offset_db(l.rx, now);
    const double off = std::lround(offset * 4.0) / 4.0;
    int slot = 0;
    for (const plc::ToneMap& tm : maps.slots) {
      const double fast = ch.pb_error_probability(tm, l.tx, l.rx, slot, now);
      std::vector<double> snr = ch.static_snr_db(l.tx, l.rx, slot, now);
      for (double& v : snr) v -= off;
      const double reps = tm.is_robo() ? tm.robo_repetitions() : 1;
      const double refp = ref::pb_error_probability(
          tm.carriers(), snr, static_cast<int>(reps), reference_impl());
      acc.sample(std::abs(fast - refp),
                 "link %d->%d slot %d map %u: fast %.8f ref %.8f", l.tx, l.rx,
                 slot, tm.id(), fast, refp);
      ++slot;
    }
  }
  return acc.finish();
}

DiffResult diff_ble(ScenarioWorld& world, const DiffTolerances& tol) {
  DiffAccum acc("ble-eq1", tol.ble_rel);
  const plc::PhyParams& phy = world.channel().phy();
  for (const Link& l : run_links(world)) {
    auto compare = [&](const plc::ToneMap& tm, const char* kind) {
      const double fast = tm.ble_mbps();
      const double ref = ref::ble_mbps(tm, phy);
      acc.sample(std::abs(fast - ref) / std::max(std::abs(ref), 1e-12),
                 "link %d->%d %s map %u: cached %.12f recomputed %.12f", l.tx,
                 l.rx, kind, tm.id(), fast, ref);
    };
    for (const plc::ToneMap& tm : l.est->tone_maps().slots) compare(tm, "slot");
    compare(l.est->tone_maps().robo, "robo");
  }
  return acc.finish();
}

}  // namespace

std::vector<DiffResult> run_diff(ScenarioWorld& world, const DiffTolerances& tol) {
  return {
      diff_db_conversions(world, tol), diff_uncoded_ber(world, tol),
      diff_static_snr(world, tol),     diff_pberr(world, tol),
      diff_ble(world, tol),
  };
}

std::vector<DiffResult> diff_failures(const std::vector<DiffResult>& r) {
  std::vector<DiffResult> out;
  for (const DiffResult& d : r) {
    if (!d.ok) out.push_back(d);
  }
  return out;
}

}  // namespace efd::testkit

#pragma once

#include <string>
#include <vector>

#include "src/testkit/world.hpp"

namespace efd::testkit {

/// Agreement bounds between the production fast paths and the naive
/// double-precision reference implementations. Defaults are the contract
/// documented in DESIGN.md §11; tests may tighten them to measure slack.
struct DiffTolerances {
  /// exp2/log2 dB conversions vs pow(10, x/10) / 10*log10 — both are a
  /// handful of correctly-rounded libm calls apart, so relative error.
  double db_conversion_rel = 1e-12;
  /// BER lookup table vs closed-form erfc, absolute (the LUT's own stated
  /// contract, regression-tested in plc tests).
  double uncoded_ber_abs = 1e-4;
  /// Cached per-carrier static SNR vs a fresh recompute from the grid at
  /// the same epoch, absolute dB (identical code path, so near-zero).
  double static_snr_abs_db = 1e-9;
  /// Memoized+LUT PB error probability vs the reference recompute with the
  /// same 0.25 dB offset quantization. The waterfall slope amplifies the
  /// LUT's 1e-4 BER error, hence the looser bound.
  double pberr_abs = 5e-3;
  /// ToneMap's cached Eq. (1) BLE vs the recompute, relative.
  double ble_rel = 1e-12;
};

/// Outcome of one differential check: the worst disagreement observed over
/// `samples` comparisons against its tolerance.
struct DiffResult {
  std::string what;
  double max_abs_err = 0.0;
  double tolerance = 0.0;
  int samples = 0;
  bool ok = true;
  std::string worst_detail;  ///< where the max error occurred
};

/// Execute a completed scenario's carrier-domain state through both the
/// fast and reference implementations and bound their disagreement:
/// dB conversions, the BER LUT, the channel's cached static SNR, the
/// memoized PB error probability and the tone maps' Eq. (1) BLE.
[[nodiscard]] std::vector<DiffResult> run_diff(ScenarioWorld& world,
                                               const DiffTolerances& tol = {});

/// Convenience: results that exceeded their tolerance.
[[nodiscard]] std::vector<DiffResult> diff_failures(const std::vector<DiffResult>& r);

}  // namespace efd::testkit

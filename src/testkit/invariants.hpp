#pragma once

#include <string>
#include <vector>

#include "src/testkit/scenario.hpp"
#include "src/testkit/world.hpp"

namespace efd::testkit {

/// One invariant violation: which checker fired and a human-readable detail
/// that names the offending quantity (a failing proptest prints these next
/// to the shrunk scenario).
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Deliberate-corruption hooks for the acceptance test of the harness
/// itself: each hook simulates a specific bug class (a removed clamp, a
/// broken Eq. (1) cache, an off-by-one in slot accounting) by perturbing the
/// checked quantity *before* its invariant runs. With all hooks at their
/// neutral values the checks see the production values unmodified. A test
/// turns one hook on, asserts the corresponding invariant fires on an
/// arbitrary scenario, and shrinks to a minimal reproducer.
struct InvariantOptions {
  /// Added to every PB error probability before the [0, 1] range check
  /// (simulates pb_error_probability losing its clamp).
  double inject_pberr_offset = 0.0;
  /// Multiplies the recomputed Eq. (1) BLE before comparing against the
  /// tone map's cached value (simulates a stale recompute() cache).
  double inject_ble_scale = 1.0;
  /// Shifts every recorded SoF start earlier by this much before the
  /// airtime-conservation check (simulates broken CSMA slot accounting).
  sim::Time inject_airtime_shift{};
  /// Subtracted from every sampled deferral counter before the
  /// non-negativity check (simulates a double decrement).
  int inject_dc_offset = 0;
  /// Delivers one extra raw copy of an already-delivered sequence to the
  /// app layer, bypassing the dedup buffer (simulates a diversity copy
  /// path that skips first-wins suppression).
  bool inject_dup_leak = false;
  /// Multiplies the measured duplicate-bytes counter before the
  /// conservation check (simulates double counting / a missed copy).
  double inject_dup_bytes_skew = 1.0;
  /// Appends the origin back onto every planned relay path before the
  /// acyclicity check (simulates a next-hop table loop).
  bool inject_relay_cycle = false;
};

/// Run every checker against a completed scenario run. `world` must be the
/// world that produced `trace` (the estimator / channel state it holds is
/// part of what is checked).
[[nodiscard]] std::vector<Violation> check_invariants(ScenarioWorld& world,
                                                      const RunTrace& trace,
                                                      const InvariantOptions& opts = {});

/// The hybrid-layer fuzz checks (ReorderBuffer in-order/no-dup delivery and
/// conservation, scheduler load conservation and round-robin fallback, the
/// NAN diversity dedup/accounting harnesses and relay-path acyclicity) run
/// against the scenario's HybridFuzz/NanFuzz parameters in their own
/// simulator — they do not need the PLC world.
[[nodiscard]] std::vector<Violation> check_hybrid_invariants(
    const Scenario& s, const InvariantOptions& opts = {});

/// Names of all checkers, for documentation / reporting.
[[nodiscard]] std::vector<std::string> invariant_names();

}  // namespace efd::testkit

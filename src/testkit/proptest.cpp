#include "src/testkit/proptest.hpp"

#include <algorithm>
#include <cstdio>

#include "src/sim/simulator.hpp"
#include "src/testbed/parallel_runner.hpp"
#include "src/testkit/world.hpp"

namespace efd::testkit {

namespace {

ScenarioVerdict check_scenario_with(const Scenario& s, sim::Simulator& sim,
                                    const ProptestOptions& opts) {
  ScenarioVerdict v;
  v.index = s.index;

  // Determinism gate: two worlds from the same scenario, each on a freshly
  // reset engine, must produce byte-identical traces. A mismatch means
  // hidden cross-run state (simulator reuse, address-ordered iteration,
  // uninitialized reads) leaked into the observable surface.
  std::uint64_t first_digest = 0;
  {
    ScenarioWorld warmup(s, sim);
    first_digest = warmup.run().digest();
  }
  sim.reset();
  ScenarioWorld world(s, sim);
  const RunTrace trace = world.run();
  v.digest = trace.digest();
  v.determinism_ok = (v.digest == first_digest);

  v.violations = check_invariants(world, trace, opts.invariants);
  for (Violation& hv : check_hybrid_invariants(s, opts.invariants)) {
    v.violations.push_back(std::move(hv));
  }
  v.diff_failed = diff_failures(run_diff(world, opts.tolerances));
  return v;
}

std::string describe_verdict(const Scenario& s, const ScenarioVerdict& v) {
  std::string out = s.describe();
  if (!v.determinism_ok) out += "\n  determinism: same-seed digests differ";
  for (const Violation& viol : v.violations) {
    out += "\n  violation [" + viol.invariant + "]: " + viol.detail;
  }
  for (const DiffResult& d : v.diff_failed) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\n  diff [%s]: max err %.3e > tol %.3e over %d samples (%s)",
                  d.what.c_str(), d.max_abs_err, d.tolerance, d.samples,
                  d.worst_detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace

ScenarioVerdict check_scenario(const Scenario& s, const ProptestOptions& opts) {
  sim::Simulator sim;
  return check_scenario_with(s, sim, opts);
}

ProptestReport run_proptest(std::uint64_t seed, int n, const ProptestOptions& opts) {
  ProptestReport report;
  report.seed = seed;
  report.n = n;

  ScenarioGen gen(seed);
  const int threads =
      opts.threads > 0 ? opts.threads
                       : (testbed::ParallelRunner::env_threads() > 0
                              ? testbed::ParallelRunner::env_threads()
                              : 0);
  testbed::ParallelRunner runner(threads);
  // Per-task storage discipline: the scenario's lists live on the worker's
  // arena (reset before every task), so after each worker has warmed up its
  // chunk the whole generate/check/teardown cycle is heap-free. The
  // ScenarioVerdict result is plain value data and owns no arena storage.
  const std::vector<ScenarioVerdict> verdicts =
      runner.map_with_sim<ScenarioVerdict>(
          n, [&gen, &opts](int i, sim::Simulator& sim, core::Arena& arena) {
            Scenario s(arena);
            gen.generate_into(static_cast<std::uint64_t>(i), s);
            return check_scenario_with(s, sim, opts);
          });

  // Fold in index order: identical for any worker count.
  std::uint64_t combined = 0xcbf29ce484222325ULL;
  for (const ScenarioVerdict& v : verdicts) {
    combined ^= v.digest;
    combined *= 0x100000001b3ULL;
  }
  report.combined_digest = combined;

  for (const ScenarioVerdict& v : verdicts) {
    if (!v.ok()) report.failures.push_back(v);
  }
  if (!report.failures.empty()) {
    const ScenarioVerdict& first = report.failures.front();
    Scenario failing = gen.generate(first.index);
    report.first_failure = describe_verdict(failing, first);
    if (opts.shrink_on_failure) {
      report.shrunk = shrink(
          failing,
          [&opts](const Scenario& cand) {
            return !check_scenario(cand, opts).ok();
          },
          opts.max_shrink_steps);
      report.has_shrunk = true;
    }
  }
  return report;
}

std::string ProptestReport::summary() const {
  char head[160];
  std::snprintf(head, sizeof head,
                "proptest seed=%llu n=%d: %zu failing scenario(s), combined "
                "digest %016llx",
                static_cast<unsigned long long>(seed), n, failures.size(),
                static_cast<unsigned long long>(combined_digest));
  std::string out = head;
  if (!failures.empty()) {
    out += "\nfirst failure:\n" + first_failure;
    if (has_shrunk) {
      out += "\nshrunk reproducer:\n" + shrunk.describe();
    }
  }
  return out;
}

}  // namespace efd::testkit

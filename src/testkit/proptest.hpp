#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/testkit/diff.hpp"
#include "src/testkit/invariants.hpp"
#include "src/testkit/scenario.hpp"

namespace efd::testkit {

struct ProptestOptions {
  /// Worker threads for the sweep; <= 0 resolves EFD_BENCH_THREADS, then
  /// hardware concurrency (testbed::ParallelRunner semantics).
  int threads = 0;
  /// Deliberate-corruption hooks; neutral by default.
  InvariantOptions invariants;
  DiffTolerances tolerances;
  /// On the first failing scenario, shrink it to a minimal reproducer.
  bool shrink_on_failure = true;
  int max_shrink_steps = 256;
};

/// Verdict for one scenario: everything that went wrong, plus the trace
/// digest (the determinism surface).
struct ScenarioVerdict {
  std::uint64_t index = 0;
  std::vector<Violation> violations;
  std::vector<DiffResult> diff_failed;
  bool determinism_ok = true;
  std::uint64_t digest = 0;

  [[nodiscard]] bool ok() const {
    return violations.empty() && diff_failed.empty() && determinism_ok;
  }
};

/// Aggregate result of a sweep. `combined_digest` folds every scenario's
/// digest in index order, so it is identical for any worker count and
/// byte-identical across same-seed reruns.
struct ProptestReport {
  std::uint64_t seed = 0;
  int n = 0;
  std::vector<ScenarioVerdict> failures;  ///< only the scenarios that failed
  std::uint64_t combined_digest = 0;
  Scenario shrunk;              ///< minimal reproducer of the first failure
  bool has_shrunk = false;
  std::string first_failure;    ///< human-readable description

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Run one scenario through the full gauntlet: build the world twice from
/// the same seed (digests must agree — the determinism gate), then the
/// invariant checkers, the differential checks, and the hybrid fuzz.
[[nodiscard]] ScenarioVerdict check_scenario(const Scenario& s,
                                             const ProptestOptions& opts = {});

/// Sweep scenarios [0, n) from `seed` across a ParallelRunner. On failure
/// (and if opts.shrink_on_failure) the lowest-index failing scenario is
/// shrunk with check_scenario as the predicate.
[[nodiscard]] ProptestReport run_proptest(std::uint64_t seed, int n,
                                          const ProptestOptions& opts = {});

}  // namespace efd::testkit

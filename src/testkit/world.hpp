#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/grid/power_grid.hpp"
#include "src/net/sources.hpp"
#include "src/plc/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/testkit/scenario.hpp"

namespace efd::testkit {

/// One packet handed to the app layer at a receiving station.
struct DeliveredPacket {
  net::StationId at = 0;
  int flow_id = 0;
  std::uint32_t seq = 0;
  sim::Time when;
};

/// Everything observable a scenario run produced, in a canonical order, so
/// two same-seed runs can be compared byte-for-byte via `digest()`.
struct RunTrace {
  std::vector<plc::SofRecord> sofs;
  std::vector<DeliveredPacket> delivered;
  /// IEEE 1901 deferral-counter samples: every registered MAC, sampled at
  /// every sniffed SoF (the invariant layer asserts they never go negative).
  std::vector<int> dc_samples;
  std::uint64_t offered = 0;          ///< packets emitted by all sources
  /// Packets each traffic flow emitted, indexed by flow id (= position in
  /// Scenario::traffic); the delivery-conservation invariant bounds
  /// deliveries per flow by this.
  std::vector<std::uint64_t> offered_per_flow;
  std::uint64_t collisions = 0;
  std::uint64_t frames = 0;
  std::uint64_t beacons = 0;
  /// mm_average_ble / mm_pberr per traffic flow's directed link, queried
  /// once after the run (part of the determinism surface).
  std::vector<double> link_ble_mbps;
  std::vector<double> link_pberr;

  /// FNV-1a over every field above, doubles hashed by bit pattern: equal
  /// digests <=> byte-identical observable traces.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Materializes a Scenario: grid -> channel -> network -> stations ->
/// sources, with a sniffer recording every SoF and per-station rx handlers
/// recording deliveries. The world borrows a Simulator so proptest sweeps
/// can reuse one engine per worker (testbed::ParallelRunner::map_with_sim).
class ScenarioWorld {
 public:
  ScenarioWorld(const Scenario& scenario, sim::Simulator& sim);
  ScenarioWorld(const ScenarioWorld&) = delete;
  ScenarioWorld& operator=(const ScenarioWorld&) = delete;
  ~ScenarioWorld();

  /// Run traffic from the scenario's start to start + duration (plus a
  /// short drain window) and return the trace. Call at most once.
  RunTrace run();

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  [[nodiscard]] const grid::PowerGrid& grid() const { return grid_; }
  [[nodiscard]] const plc::PlcChannel& channel() const { return *channel_; }
  [[nodiscard]] plc::PlcNetwork& network() { return *network_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }

 private:
  Scenario scenario_;
  sim::Simulator& sim_;
  grid::PowerGrid grid_;
  std::unique_ptr<plc::PlcChannel> channel_;
  std::unique_ptr<plc::PlcNetwork> network_;
  std::vector<std::unique_ptr<net::UdpSource>> udp_sources_;
  std::vector<std::unique_ptr<net::ProbeSource>> probe_sources_;
  /// Per flow id: which source vector holds it ({is_udp, index}), so the
  /// per-flow offered counters can be collected in flow order after the run.
  std::vector<std::pair<bool, std::size_t>> flow_source_;
  plc::PlcMedium::SnifferId sniffer_ = 0;
  bool sniffer_added_ = false;
  RunTrace trace_;
};

}  // namespace efd::testkit

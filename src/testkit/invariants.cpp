#include "src/testkit/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "src/grid/mains.hpp"
#include "src/hybrid/reorder.hpp"
#include "src/hybrid/routing.hpp"
#include "src/hybrid/scheduler.hpp"
#include "src/sim/rng.hpp"
#include "src/testkit/reference.hpp"

namespace efd::testkit {

namespace {

void report(std::vector<Violation>& out, const char* invariant, const char* fmt,
            auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out.push_back({invariant, buf});
}

double mean(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

// --- 1. grid: attenuation monotone in distance at fixed taps ---------------
//
// Raw scenario grids rarely contain comparable outlet pairs (per-link drift,
// notch phases and tap counts all differ), so the checker derives an
// auxiliary chain grid from the scenario: the same appliance mix, but every
// appliance plugged into node 0 so its multipath contribution is identical
// for every receiver along the chain, and 40 m segments so each step's cable
// plus tap loss (> 2 dB) strictly dominates the worst-case +-1.2 dB drift
// difference between links. Mean attenuation from node 0 must then be
// non-decreasing along the chain.
void check_attenuation_monotone(const ScenarioWorld& world,
                                std::vector<Violation>& out) {
  constexpr int kChain = 6;
  grid::PowerGrid chain;
  for (int i = 0; i < kChain; ++i) chain.add_node("c" + std::to_string(i));
  for (int i = 1; i < kChain; ++i) chain.add_cable(i - 1, i, 40.0);
  for (const Scenario::ApplianceSpec& a : world.scenario().appliances) {
    chain.add_appliance(grid::make_appliance(a.type, 0, a.seed));
  }
  const grid::CarrierBand& band = world.channel().phy().band;
  const sim::Time t = world.scenario().start_time();
  double prev = -1e9;
  for (int k = 1; k < kChain; ++k) {
    const double m = mean(chain.attenuation_db(0, k, band, t));
    if (m < prev) {
      report(out, "attenuation-monotone",
             "chain node %d mean att %.3f dB < node %d mean att %.3f dB", k, m,
             k - 1, prev);
    }
    prev = m;
  }
}

// --- 2. grid: noise PSD mains-periodic -------------------------------------
void check_noise_mains_periodic(const ScenarioWorld& world,
                                std::vector<Violation>& out) {
  const grid::PowerGrid& g = world.grid();
  const plc::PhyParams& phy = world.channel().phy();
  const sim::Time t0 = world.scenario().start_time();
  const sim::Time t1 = t0 + 2 * grid::Mains::cycle();
  for (int id = 0; id < g.appliance_count(); ++id) {
    if (g.appliance_on(id, t0) != g.appliance_on(id, t1)) return;  // toggled
  }
  for (const Scenario::StationSpec& st : world.scenario().stations) {
    for (int slot : {0, phy.tone_map_slots - 1}) {
      const auto a = g.noise_psd_db(st.outlet, phy.band, t0, slot, phy.tone_map_slots);
      const auto b = g.noise_psd_db(st.outlet, phy.band, t1, slot, phy.tone_map_slots);
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
          report(out, "noise-mains-periodic",
                 "outlet %d slot %d carrier %zu: %.9f dB at t vs %.9f dB two "
                 "mains cycles later (same appliance state)",
                 st.outlet, slot, i, a[i], b[i]);
          return;
        }
      }
    }
  }
}

// --- 3. grid: attenuation finite and sane ----------------------------------
void check_attenuation_finite(const ScenarioWorld& world,
                              std::vector<Violation>& out) {
  const grid::PowerGrid& g = world.grid();
  const plc::PhyParams& phy = world.channel().phy();
  const sim::Time t = world.scenario().start_time();
  const auto& stations = world.scenario().stations;
  for (const auto& a : stations) {
    for (const auto& b : stations) {
      if (a.outlet == b.outlet) continue;
      for (double v : g.attenuation_db(a.outlet, b.outlet, phy.band, t)) {
        // The slow drift term can dip 0.6 dB below the deterministic loss,
        // so very short cables may graze zero; anything below -1 dB would
        // mean real amplification, anything non-finite a poisoned path sum.
        if (!std::isfinite(v) || v < -1.0 || v > 1000.0) {
          report(out, "attenuation-finite", "att(%d->%d) = %.3f dB out of range",
                 a.outlet, b.outlet, v);
          return;
        }
      }
    }
  }
}

/// Estimators with tone maps, one per unicast traffic flow: (rx, tx, est*).
struct LinkEstimator {
  net::StationId tx;
  net::StationId rx;
  plc::ChannelEstimator* est;
};

std::vector<LinkEstimator> link_estimators(ScenarioWorld& world) {
  std::vector<LinkEstimator> links;
  std::set<std::pair<net::StationId, net::StationId>> seen;
  for (const Scenario::TrafficSpec& t : world.scenario().traffic) {
    if (t.dst < 0) continue;
    const auto& stations = world.scenario().stations;
    const net::StationId tx = stations[static_cast<std::size_t>(t.src)].id;
    const net::StationId rx = stations[static_cast<std::size_t>(t.dst)].id;
    if (!seen.insert({tx, rx}).second) continue;
    plc::ChannelEstimator& est = world.network().estimator(rx, tx);
    if (est.has_tone_maps()) links.push_back({tx, rx, &est});
  }
  return links;
}

// --- 4. plc: per-carrier bits within BPSK..1024-QAM bounds -----------------
void check_carrier_bits(ScenarioWorld& world, std::vector<Violation>& out) {
  const plc::PhyParams& phy = world.channel().phy();
  for (const LinkEstimator& l : link_estimators(world)) {
    for (const plc::ToneMap& tm : l.est->tone_maps().slots) {
      if (static_cast<int>(tm.carriers().size()) != phy.band.n_carriers) {
        report(out, "carrier-bits-bounds",
               "link %d->%d map %u: %zu carriers, band has %d", l.tx, l.rx,
               tm.id(), tm.carriers().size(), phy.band.n_carriers);
        return;
      }
      for (plc::Modulation m : tm.carriers()) {
        const int bits = plc::bits_per_symbol(m);
        if (bits < 0 || bits > 10) {
          report(out, "carrier-bits-bounds",
                 "link %d->%d map %u: carrier loads %d bits (BPSK..1024-QAM "
                 "is 0..10)",
                 l.tx, l.rx, tm.id(), bits);
          return;
        }
      }
    }
  }
}

// --- 5. plc: BLE matches Eq. (1) recomputed from the tone map --------------
void check_ble_eq1(ScenarioWorld& world, const InvariantOptions& opts,
                   std::vector<Violation>& out) {
  const plc::PhyParams& phy = world.channel().phy();
  for (const LinkEstimator& l : link_estimators(world)) {
    auto check_map = [&](const plc::ToneMap& tm, const char* kind) {
      const double want = ref::ble_mbps(tm, phy) * opts.inject_ble_scale;
      const double got = tm.ble_mbps();
      if (std::abs(got - want) > 1e-9 * std::max(1.0, std::abs(want))) {
        report(out, "ble-eq1",
               "link %d->%d %s map %u: ble_mbps %.9f but Eq.(1) recompute "
               "gives %.9f",
               l.tx, l.rx, kind, tm.id(), got, want);
      }
    };
    for (const plc::ToneMap& tm : l.est->tone_maps().slots) check_map(tm, "slot");
    check_map(l.est->tone_maps().robo, "robo");
  }
}

// --- 6. plc: PB error probabilities in [0, 1] ------------------------------
void check_pberr_range(ScenarioWorld& world, const InvariantOptions& opts,
                       std::vector<Violation>& out) {
  const sim::Time now = world.sim().now();
  auto in_range = [&](double p, const char* what, net::StationId tx,
                      net::StationId rx) {
    const double v = p + opts.inject_pberr_offset;
    if (!(v >= 0.0 && v <= 1.0)) {
      report(out, "pberr-range", "link %d->%d %s = %.6f outside [0,1]", tx, rx,
             what, v);
    }
  };
  for (const LinkEstimator& l : link_estimators(world)) {
    in_range(l.est->measured_pberr(), "measured_pberr", l.tx, l.rx);
    int slot = 0;
    for (const plc::ToneMap& tm : l.est->tone_maps().slots) {
      in_range(tm.expected_pberr(), "expected_pberr", l.tx, l.rx);
      in_range(world.channel().pb_error_probability(tm, l.tx, l.rx, slot, now),
               "channel pberr", l.tx, l.rx);
      ++slot;
    }
  }
}

// --- 7. plc: estimator never exceeds channel capacity ----------------------
//
// The estimator gambles below the safe margin (the goodput ladder) on
// Gaussian-perturbed SNR, so per-carrier comparisons against the true
// channel fire spuriously; the sound bound is aggregate: each slot's BLE
// must stay below (a) the rate of a reference map built from the TRUE static
// SNR with a very generous -15 dB margin and (b) the hardware ceiling of
// 10 bits on every carrier.
void check_estimator_capacity(ScenarioWorld& world, std::vector<Violation>& out) {
  const plc::PhyParams& phy = world.channel().phy();
  const sim::Time now = world.sim().now();
  const double hw_ceiling =
      10.0 * phy.band.n_carriers * phy.fec_rate / phy.symbol.us();
  for (const LinkEstimator& l : link_estimators(world)) {
    for (int slot = 0;
         slot < static_cast<int>(l.est->tone_maps().slots.size()); ++slot) {
      const auto& snr = world.channel().static_snr_db(l.tx, l.rx, slot, now);
      const double reference_rate =
          plc::ToneMap::from_snr(snr, -15.0, phy, 0.0, 0).phy_rate_mbps();
      const double ble = l.est->tone_maps().slots[static_cast<std::size_t>(slot)].ble_mbps();
      const double bound = std::min(1.0001 * reference_rate + 1e-6, hw_ceiling + 1e-6);
      if (ble > bound) {
        report(out, "estimator-capacity",
               "link %d->%d slot %d: BLE %.3f Mb/s exceeds capacity bound "
               "%.3f Mb/s (reference rate %.3f, hw ceiling %.3f)",
               l.tx, l.rx, slot, ble, bound, reference_rate, hw_ceiling);
      }
    }
  }
}

// --- 8. plc: the ROBO map is the robust default it claims to be ------------
void check_robo_map(ScenarioWorld& world, std::vector<Violation>& out) {
  const plc::PhyParams& phy = world.channel().phy();
  const plc::ToneMap robo = plc::ToneMap::robo(phy);
  if (!robo.is_robo() || robo.robo_repetitions() < 2) {
    report(out, "robo-map", "ROBO map reports %d repetitions",
           robo.robo_repetitions());
    return;
  }
  if (robo.expected_pberr() != 0.0) {
    report(out, "robo-map", "ROBO map carries expected_pberr %.6f",
           robo.expected_pberr());
  }
  const double want = ref::ble_mbps(robo, phy);
  if (std::abs(robo.ble_mbps() - want) > 1e-9 * std::max(1.0, want)) {
    report(out, "robo-map", "ROBO BLE %.6f != Eq.(1) recompute %.6f",
           robo.ble_mbps(), want);
  }
  (void)world;
}

// --- 9. mac: delivery conservation (no SACK-completed undelivered PBs) -----
void check_sack_delivery(const ScenarioWorld& world, const RunTrace& trace,
                         std::vector<Violation>& out) {
  const auto& traffic = world.scenario().traffic;
  const auto& stations = world.scenario().stations;
  std::map<int, std::uint64_t> delivered_per_flow;
  std::set<std::tuple<net::StationId, int, std::uint32_t>> seen;
  for (const DeliveredPacket& d : trace.delivered) {
    ++delivered_per_flow[d.flow_id];
    if (!seen.insert({d.at, d.flow_id, d.seq}).second) {
      report(out, "sack-delivery",
             "flow %d seq %u delivered twice at station %d", d.flow_id, d.seq,
             d.at);
      return;
    }
    if (d.flow_id < 0 || d.flow_id >= static_cast<int>(traffic.size())) {
      report(out, "sack-delivery", "delivery with unknown flow id %d", d.flow_id);
      return;
    }
    const Scenario::TrafficSpec& t = traffic[static_cast<std::size_t>(d.flow_id)];
    if (t.dst >= 0 &&
        d.at != stations[static_cast<std::size_t>(t.dst)].id) {
      report(out, "sack-delivery",
             "unicast flow %d delivered at station %d, destination is %d",
             d.flow_id, d.at, stations[static_cast<std::size_t>(t.dst)].id);
      return;
    }
  }
  for (const auto& [flow, n] : delivered_per_flow) {
    const std::uint64_t offered =
        flow < static_cast<int>(trace.offered_per_flow.size())
            ? trace.offered_per_flow[static_cast<std::size_t>(flow)]
            : 0;
    // A unicast packet is handed up exactly once; broadcast at most once per
    // receiving station.
    const std::uint64_t receivers =
        traffic[static_cast<std::size_t>(flow)].dst < 0
            ? world.scenario().stations.size() - 1
            : 1;
    if (n > offered * receivers) {
      report(out, "sack-delivery",
             "flow %d delivered %llu packets but only %llu were offered "
             "(x%llu receivers)",
             flow, static_cast<unsigned long long>(n),
             static_cast<unsigned long long>(offered),
             static_cast<unsigned long long>(receivers));
    }
  }
}

// --- 10. mac: deferral counter never negative ------------------------------
void check_deferral_counter(const RunTrace& trace, const InvariantOptions& opts,
                            std::vector<Violation>& out) {
  for (int dc : trace.dc_samples) {
    const int v = dc - opts.inject_dc_offset;
    if (v < 0 || v > 15) {
      report(out, "deferral-counter", "sampled deferral counter %d outside [0,15]", v);
      return;
    }
  }
}

// --- 11. mac: CSMA slot accounting conserves airtime -----------------------
//
// Colliding frames share one contention round and legitimately overlap each
// other; ROUNDS must not overlap, and total round airtime cannot exceed the
// elapsed span.
void check_airtime(const ScenarioWorld& world, const RunTrace& trace,
                   const InvariantOptions& opts, std::vector<Violation>& out) {
  struct Round {
    sim::Time start;
    sim::Time end;
  };
  std::map<std::int64_t, Round> rounds;
  for (const plc::SofRecord& s : trace.sofs) {
    const sim::Time start = s.start - opts.inject_airtime_shift;
    auto [it, fresh] = rounds.try_emplace(start.ns(), Round{start, s.end});
    if (!fresh) it->second.end = std::max(it->second.end, s.end);
  }
  sim::Time prev_end{};
  sim::Time busy{};
  bool first = true;
  for (const auto& [_, r] : rounds) {
    if (!first && r.start < prev_end) {
      report(out, "airtime-conservation",
             "round at %.3f us starts before the previous round ends (%.3f us)",
             r.start.us(), prev_end.us());
      return;
    }
    busy += r.end - r.start;
    prev_end = std::max(prev_end, r.end);
    first = false;
  }
  if (rounds.empty()) return;
  const sim::Time span =
      prev_end - sim::Time{rounds.begin()->second.start.ns()};
  if (busy > span) {
    report(out, "airtime-conservation",
           "total frame airtime %.3f us exceeds elapsed span %.3f us",
           busy.us(), span.us());
  }
  (void)world;
}

// --- 12. mac: frame geometry -----------------------------------------------
void check_frame_geometry(const ScenarioWorld& world, const RunTrace& trace,
                          std::vector<Violation>& out) {
  const int slots = world.channel().phy().tone_map_slots;
  std::set<net::StationId> station_ids;
  for (const auto& st : world.scenario().stations) station_ids.insert(st.id);
  for (const plc::SofRecord& s : trace.sofs) {
    if (s.end <= s.start || s.n_pbs < 1 || s.n_symbols < 1 || s.slot < 0 ||
        s.slot >= slots || s.ble_mbps < 0.0) {
      report(out, "frame-geometry",
             "SoF src=%d dst=%d: start %.3f end %.3f n_pbs %d n_symbols %d "
             "slot %d ble %.3f",
             s.src, s.dst, s.start.us(), s.end.us(), s.n_pbs, s.n_symbols,
             s.slot, s.ble_mbps);
      return;
    }
    if (!station_ids.contains(s.src) ||
        (!s.broadcast && !station_ids.contains(s.dst))) {
      report(out, "frame-geometry", "SoF names unknown station %d->%d", s.src,
             s.dst);
      return;
    }
    if (s.broadcast != (s.dst == net::kBroadcast)) {
      report(out, "frame-geometry",
             "SoF broadcast flag %d inconsistent with dst %d", s.broadcast,
             s.dst);
      return;
    }
  }
}

// --- 13/14. hybrid: ReorderBuffer fuzz -------------------------------------
void check_reorder(const Scenario& s, std::vector<Violation>& out) {
  const Scenario::HybridFuzz& fz = s.hybrid;
  sim::Simulator sim;
  std::vector<std::uint32_t> delivered;
  hybrid::ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(fz.gap_timeout_ms);
  hybrid::ReorderBuffer buffer(
      sim, [&](const net::Packet& p, sim::Time) { delivered.push_back(p.seq); },
      cfg);

  sim::Rng rng = sim::Rng{s.world_seed}.fork(0x4e04de4);
  std::set<std::uint32_t> fed_unique;
  std::uint64_t fed_total = 0;
  sim::Time last_arrival{};
  for (int i = 0; i < fz.n_packets; ++i) {
    if (rng.bernoulli(fz.loss_prob)) continue;
    const sim::Time sent = sim::milliseconds(0.8 * i);
    int copies = 1 + (rng.bernoulli(fz.dup_prob) ? 1 : 0);
    for (int c = 0; c < copies; ++c) {
      const sim::Time arrival =
          sent + sim::milliseconds(rng.uniform(0.0, fz.reorder_jitter_ms * (c + 1)));
      net::Packet p;
      p.flow_id = 7;
      p.seq = static_cast<std::uint32_t>(i);
      p.created = sent;
      sim.at(arrival, [&buffer, p, &sim] { buffer.on_packet(p, sim.now()); });
      fed_unique.insert(p.seq);
      ++fed_total;
      last_arrival = std::max(last_arrival, arrival);
    }
  }
  // Horizon: worst case every remaining gap times out sequentially.
  sim.run_until(last_arrival +
                (fz.n_packets + 2) * sim::milliseconds(fz.gap_timeout_ms) +
                sim::seconds(1));

  for (std::size_t i = 1; i < delivered.size(); ++i) {
    if (delivered[i] <= delivered[i - 1]) {
      report(out, "reorder-order",
             "delivery %zu: seq %u after seq %u (duplicate or out of order)", i,
             delivered[i], delivered[i - 1]);
      return;
    }
  }
  if (buffer.buffered() != 0) {
    report(out, "reorder-conservation",
           "%zu packets still buffered after full drain", buffer.buffered());
  }
  if (delivered.size() > fed_unique.size()) {
    report(out, "reorder-conservation",
           "delivered %zu distinct packets but only %zu distinct sequences fed",
           delivered.size(), fed_unique.size());
  }
  // Exact conservation: every fed copy lands in exactly one of
  // {delivered, straggler drop, duplicate drop} once the buffer drains.
  if (delivered.size() + buffer.stragglers_dropped() +
          buffer.duplicates_dropped() !=
      fed_total) {
    report(out, "reorder-conservation",
           "delivered %zu + straggler-dropped %llu + duplicate-dropped %llu "
           "!= %llu copies fed",
           delivered.size(),
           static_cast<unsigned long long>(buffer.stragglers_dropped()),
           static_cast<unsigned long long>(buffer.duplicates_dropped()),
           static_cast<unsigned long long>(fed_total));
  }
}

// --- 15. hybrid: scheduler weights conserve offered load -------------------
void check_scheduler_load(const Scenario& s, std::vector<Violation>& out) {
  const Scenario::HybridFuzz& fz = s.hybrid;
  const int n = fz.n_interfaces;
  constexpr int kPicks = 2000;
  hybrid::CapacityScheduler sched(sim::Rng{s.world_seed}.fork(0x5c4ed));
  // The fuzz spec may be arena-backed; the scheduler owns its copy on the
  // heap.
  sched.set_capacities(
      {fz.capacities_mbps.begin(), fz.capacities_mbps.end()});
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  net::Packet p;
  for (int i = 0; i < kPicks; ++i) {
    const int pick = sched.pick(p);
    if (pick < 0 || pick >= n) {
      report(out, "scheduler-load", "pick %d outside [0,%d)", pick, n);
      return;
    }
    ++counts[static_cast<std::size_t>(pick)];
  }
  double total_cap = 0.0;
  for (double c : fz.capacities_mbps) total_cap += c;
  if (total_cap > 0.0) {
    for (int i = 0; i < n; ++i) {
      const double p_i = fz.capacities_mbps[static_cast<std::size_t>(i)] / total_cap;
      const double expect = kPicks * p_i;
      const double slack = 6.0 * std::sqrt(kPicks * p_i * (1.0 - p_i)) + 10.0;
      if (std::abs(counts[static_cast<std::size_t>(i)] - expect) > slack) {
        report(out, "scheduler-load",
               "interface %d got %d of %d picks, expected %.1f +- %.1f "
               "(capacity share %.3f)",
               i, counts[static_cast<std::size_t>(i)], kPicks, expect, slack, p_i);
      }
      if (p_i == 0.0 && counts[static_cast<std::size_t>(i)] != 0) {
        report(out, "scheduler-load",
               "interface %d has zero capacity but got %d picks", i,
               counts[static_cast<std::size_t>(i)]);
      }
    }
  }
  // All-zero capacities must degrade to exact round-robin, not pin one
  // interface.
  hybrid::CapacityScheduler zero(sim::Rng{s.world_seed}.fork(0x5c4ee));
  zero.set_capacities(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  std::vector<int> rr(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < 3 * n; ++i) ++rr[static_cast<std::size_t>(zero.pick(p))];
  const auto [lo, hi] = std::minmax_element(rr.begin(), rr.end());
  if (*hi - *lo > 1) {
    report(out, "scheduler-load",
           "all-zero capacities: round-robin fallback uneven (min %d max %d)",
           *lo, *hi);
  }
}

// --- 16/17. hybrid: NAN diversity dedup and redundancy accounting ----------
//
// A mini per-packet-duplication session: every report is fed to a tagged
// ReorderBuffer as TWO copies (tags 0 and 1) with independent jitter, like
// the NAN concentrator sees a PLC copy and a WiFi copy race in. Checks:
// the app layer never sees a sequence twice (16), and the redundancy
// accounting conserves — wins by tag sum to deliveries, and every fed copy
// is either delivered, suppressed as a duplicate or dropped as a straggler,
// with duplicate bytes matching the losing copies' bytes exactly (17).
void check_nan_diversity(const Scenario& s, const InvariantOptions& opts,
                         std::vector<Violation>& out) {
  const Scenario::NanFuzz& fz = s.nan;
  sim::Simulator sim;
  std::vector<std::uint32_t> delivered;
  std::uint64_t wins[2] = {0, 0};
  hybrid::ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(fz.gap_timeout_ms);
  hybrid::ReorderBuffer buffer(
      sim, [&](const net::Packet& p, sim::Time) { delivered.push_back(p.seq); },
      cfg);
  buffer.set_win_listener([&](const net::Packet&, int tag) {
    if (tag >= 0 && tag < 2) ++wins[tag];
  });

  sim::Rng rng = sim::Rng{s.world_seed}.fork(0xD177E);
  std::uint64_t fed_copies = 0;
  std::uint64_t fed_bytes_second_copy = 0;
  sim::Time last_arrival{};
  for (int i = 0; i < fz.n_reports; ++i) {
    const sim::Time sent = sim::milliseconds(1.0 * i);
    const std::size_t bytes =
        static_cast<std::size_t>(rng.uniform_int(150, 900));
    for (int tag = 0; tag < 2; ++tag) {
      const sim::Time arrival =
          sent + sim::milliseconds(rng.uniform(0.0, fz.dup_jitter_ms));
      net::Packet p;
      p.flow_id = 42;
      p.seq = static_cast<std::uint32_t>(i);
      p.size_bytes = bytes;
      p.created = sent;
      sim.at(arrival, [&buffer, p, tag, &sim] {
        buffer.on_packet(p, sim.now(), tag);
      });
      ++fed_copies;
      if (tag == 1) fed_bytes_second_copy += bytes;
      last_arrival = std::max(last_arrival, arrival);
    }
  }
  sim.run_until(last_arrival + sim::milliseconds(fz.gap_timeout_ms) *
                                   (fz.n_reports + 2) +
                sim::seconds(1));

  if (opts.inject_dup_leak && !delivered.empty()) {
    // Simulated bug: one copy bypasses the dedup buffer straight to the
    // app layer.
    delivered.push_back(delivered.front());
  }
  std::set<std::uint32_t> unique(delivered.begin(), delivered.end());
  if (unique.size() != delivered.size()) {
    report(out, "diversity-no-dup-delivery",
           "app layer saw %zu deliveries but only %zu distinct sequences "
           "(first-wins suppression leaked a losing copy)",
           delivered.size(), unique.size());
  }

  if (wins[0] + wins[1] != delivered.size() -
                               (opts.inject_dup_leak && !delivered.empty()
                                    ? 1u
                                    : 0u)) {
    report(out, "diversity-accounting",
           "wins %llu (plc) + %llu (wifi) != %zu deliveries",
           static_cast<unsigned long long>(wins[0]),
           static_cast<unsigned long long>(wins[1]), delivered.size());
  }
  const std::uint64_t accounted = wins[0] + wins[1] +
                                  buffer.duplicates_dropped() +
                                  buffer.stragglers_dropped() +
                                  buffer.buffered();
  if (accounted != fed_copies) {
    report(out, "diversity-accounting",
           "wins + suppressed + stragglers + buffered = %llu but %llu "
           "copies were fed",
           static_cast<unsigned long long>(accounted),
           static_cast<unsigned long long>(fed_copies));
  }
  // Duplicate-bytes conservation: with both copies always sent and no
  // losses, suppressed bytes are bounded by the redundant copies' bytes.
  const auto measured = static_cast<std::uint64_t>(
      static_cast<double>(fed_bytes_second_copy) * opts.inject_dup_bytes_skew);
  if (measured != fed_bytes_second_copy) {
    report(out, "diversity-accounting",
           "duplicate-bytes counter %llu != %llu bytes of redundant copies",
           static_cast<unsigned long long>(measured),
           static_cast<unsigned long long>(fed_bytes_second_copy));
  }
}

// --- 18. hybrid: relay paths acyclic and within bounds ---------------------
//
// Seeded random ETX graphs through the RelayPlanner: every planned path
// must be loop-free, start and end at its endpoints, respect max_hops and
// use only links below max_link_etx.
void check_relay_acyclic(const Scenario& s, const InvariantOptions& opts,
                         std::vector<Violation>& out) {
  const Scenario::NanFuzz& fz = s.nan;
  hybrid::RelayPlanner::Config cfg;
  cfg.connect_etx = fz.connect_etx;
  cfg.max_link_etx = fz.max_link_etx;
  cfg.max_hops = fz.max_hops;
  hybrid::RelayPlanner planner(cfg);

  sim::Rng rng = sim::Rng{s.world_seed}.fork(0x4E1A9);
  const int n = fz.relay_nodes;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b || !rng.bernoulli(fz.relay_edge_prob)) continue;
      planner.set_link(a, b, rng.uniform(1.0, 1.5 * fz.max_link_etx));
    }
  }

  for (int src = 1; src < n; ++src) {
    std::vector<net::StationId> path = planner.plan(src, 0);
    if (path.empty()) continue;  // unreachable within bounds: fine
    if (opts.inject_relay_cycle) path.push_back(path.front());
    if (path.front() != src || path.back() != 0) {
      report(out, "relay-acyclic", "path for %d->0 runs %d..%d", src,
             path.front(), path.back());
      return;
    }
    std::set<net::StationId> seen;
    for (const net::StationId hop : path) {
      if (!seen.insert(hop).second) {
        report(out, "relay-acyclic",
               "path for %d->0 visits station %d twice (forwarding loop)",
               src, hop);
        return;
      }
    }
    if (static_cast<int>(path.size()) - 1 > fz.max_hops) {
      report(out, "relay-acyclic", "path for %d->0 uses %zu hops, max is %d",
             src, path.size() - 1, fz.max_hops);
      return;
    }
    if (planner.path_etx(path) >= hybrid::RelayPlanner::kUnreachable) {
      report(out, "relay-acyclic",
             "path for %d->0 crosses an unusable link (etx above %.2f)", src,
             fz.max_link_etx);
      return;
    }
  }
}

}  // namespace

std::vector<Violation> check_invariants(ScenarioWorld& world, const RunTrace& trace,
                                        const InvariantOptions& opts) {
  std::vector<Violation> out;
  check_attenuation_monotone(world, out);
  check_noise_mains_periodic(world, out);
  check_attenuation_finite(world, out);
  check_carrier_bits(world, out);
  check_ble_eq1(world, opts, out);
  check_pberr_range(world, opts, out);
  check_estimator_capacity(world, out);
  check_robo_map(world, out);
  check_sack_delivery(world, trace, out);
  check_deferral_counter(trace, opts, out);
  check_airtime(world, trace, opts, out);
  check_frame_geometry(world, trace, out);
  return out;
}

std::vector<Violation> check_hybrid_invariants(const Scenario& s,
                                               const InvariantOptions& opts) {
  std::vector<Violation> out;
  check_reorder(s, out);
  check_scheduler_load(s, out);
  check_nan_diversity(s, opts, out);
  check_relay_acyclic(s, opts, out);
  return out;
}

std::vector<std::string> invariant_names() {
  return {
      "attenuation-monotone", "noise-mains-periodic", "attenuation-finite",
      "carrier-bits-bounds",  "ble-eq1",              "pberr-range",
      "estimator-capacity",   "robo-map",             "sack-delivery",
      "deferral-counter",     "airtime-conservation", "frame-geometry",
      "reorder-order",        "reorder-conservation", "scheduler-load",
      "diversity-no-dup-delivery", "diversity-accounting", "relay-acyclic",
  };
}

}  // namespace efd::testkit

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/arena.hpp"
#include "src/grid/appliance.hpp"
#include "src/net/packet.hpp"
#include "src/sim/time.hpp"

namespace efd::testkit {

/// A fully explicit, value-type description of one randomized experiment:
/// everything a simulation world needs, and nothing that cannot be printed,
/// mutated by the shrinker, or rebuilt bit-identically from the struct
/// alone. `ScenarioGen` draws these from a seed; `ScenarioWorld`
/// materializes them; the invariant/diff/determinism layers consume them.
///
/// Storage is allocator-parameterized: a default-constructed Scenario lives
/// on the heap as before, while Scenario(core::Arena&) puts every list on
/// the arena so the proptest sweep's per-task churn is heap-free after
/// warm-up (ParallelRunner hands each worker an arena, reset() per task).
/// Copies always escape to the heap (ArenaAllocator's
/// select_on_container_copy_construction), so shrink candidates and stored
/// reproducers never dangle into a reset arena; moving an arena-backed
/// Scenario keeps the arena binding and must not outlive the task.
struct Scenario {
  template <class T>
  using Vec = std::vector<T, core::ArenaAllocator<T>>;
  struct Cable {
    int a = 0;
    int b = 0;
    double length_m = 5.0;
    double extra_loss_db = 0.0;
  };

  struct ApplianceSpec {
    grid::ApplianceType type = grid::ApplianceType::kPhoneCharger;
    int outlet = 0;
    std::uint64_t seed = 0;
  };

  struct StationSpec {
    net::StationId id = 0;
    int outlet = 0;
  };

  struct TrafficSpec {
    enum class Kind { kSaturatedUdp, kProbes };
    Kind kind = Kind::kSaturatedUdp;
    int src = 0;  ///< index into `stations`
    int dst = 0;  ///< index into `stations`; -1 = broadcast (probes only)
    double rate_mbps = 100.0;       ///< offered load for kSaturatedUdp
    double probe_interval_ms = 100.0;
    int burst_count = 1;
    int packet_bytes = 1470;
    int priority = 1;               ///< CA0..CA3
  };

  /// Parameters of the randomized hybrid-layer harness (reorder buffer and
  /// capacity scheduler are fuzzed directly; they do not need the PLC
  /// world).
  struct HybridFuzz {
    HybridFuzz() = default;
    explicit HybridFuzz(core::Arena& arena)
        : capacities_mbps(core::ArenaAllocator<double>(arena)) {}

    int n_interfaces = 2;
    Vec<double> capacities_mbps;  ///< size n_interfaces
    int n_packets = 200;
    double loss_prob = 0.0;
    double dup_prob = 0.0;
    double reorder_jitter_ms = 5.0;  ///< max per-packet delivery jitter
    double gap_timeout_ms = 40.0;
  };

  /// Parameters of the randomized NAN diversity/relay harnesses: the
  /// first-wins dedup session (per-packet duplication across two tagged
  /// interfaces), its redundancy accounting, and the relay planner's
  /// random link graph. Plain values only — drawn AFTER every other field
  /// so adding them left all previous scenario draws byte-identical.
  struct NanFuzz {
    int n_transformers = 3;
    int stations_per_transformer = 4;
    int mode = 3;              ///< DiversityMode index (0..3)
    double p_remote = 0.2;
    double gap_timeout_ms = 30.0;
    int n_reports = 80;        ///< packets through the diversity harness
    double dup_jitter_ms = 4.0;  ///< max skew between the two copies
    double connect_etx = 3.0;
    double max_link_etx = 8.0;
    int max_hops = 3;
    int relay_nodes = 6;       ///< stations in the relay fuzz graph
    double relay_edge_prob = 0.6;
  };

  Scenario() = default;
  explicit Scenario(core::Arena& arena)
      : cables(core::ArenaAllocator<Cable>(arena)),
        appliances(core::ArenaAllocator<ApplianceSpec>(arena)),
        stations(core::ArenaAllocator<StationSpec>(arena)),
        traffic(core::ArenaAllocator<TrafficSpec>(arena)),
        hybrid(arena) {}

  std::uint64_t gen_seed = 0;  ///< seed of the generator that produced this
  std::uint64_t index = 0;     ///< scenario index within the generator

  // --- Grid -----------------------------------------------------------------
  int n_outlets = 2;
  Vec<Cable> cables;
  Vec<ApplianceSpec> appliances;

  // --- PHY / network --------------------------------------------------------
  bool hpav500 = false;
  int tone_map_slots = 6;
  bool beacons = false;
  double fault_pb_error = 0.0;  ///< PlcMedium::set_fault_pb_error level
  std::uint64_t world_seed = 1;

  // --- Stations / traffic ---------------------------------------------------
  Vec<StationSpec> stations;
  Vec<TrafficSpec> traffic;
  double start_hours = 12.0;    ///< simulated start, hours since Monday 00:00
  double duration_s = 0.25;     ///< traffic duration

  HybridFuzz hybrid;
  NanFuzz nan;

  [[nodiscard]] sim::Time start_time() const { return sim::hours(start_hours); }
  [[nodiscard]] sim::Time duration() const { return sim::seconds(duration_s); }

  /// One-line-per-field human-readable rendering, stable across runs; this
  /// is what a failing proptest prints so the scenario can be rebuilt from
  /// the log alone.
  [[nodiscard]] std::string describe() const;
};

/// Draws random scenarios from a single seed. `generate(i)` is a pure
/// function of (seed, i): the same pair always yields the same scenario, on
/// any thread, which is what lets the proptest sweep fan out through
/// testbed::ParallelRunner without perturbing results.
class ScenarioGen {
 public:
  explicit ScenarioGen(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] Scenario generate(std::uint64_t index) const;

  /// Allocator-preserving variant: resets `out` to the default-constructed
  /// field values (keeping whatever allocator its lists were built with —
  /// the arena path) and fills it with scenario `index`. `generate(i)` is
  /// exactly `Scenario s; generate_into(i, s); return s;`, so both
  /// formulations yield byte-identical scenarios.
  void generate_into(std::uint64_t index, Scenario& out) const;

 private:
  std::uint64_t seed_;
};

/// One generation of shrink candidates: strictly simpler variants of `s`
/// (fewer appliances, fewer flows, fewer outlets, shorter duration, fewer
/// stations), most aggressive first. Every candidate is structurally valid.
[[nodiscard]] std::vector<Scenario> shrink_candidates(const Scenario& s);

/// Greedy minimisation: repeatedly replace `s` by the first candidate that
/// still fails `fails`, until no candidate fails or `max_steps` shrink
/// steps were taken. `fails` must be deterministic (same scenario -> same
/// verdict); the result is a locally minimal failing scenario.
[[nodiscard]] Scenario shrink(Scenario s,
                              const std::function<bool(const Scenario&)>& fails,
                              int max_steps = 256);

}  // namespace efd::testkit

#include "src/testkit/reference.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/grid/db_units.hpp"

namespace efd::testkit {

namespace {

double ref_db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double ref_linear_to_db(double linear) { return 10.0 * std::log10(linear); }

}  // namespace

const CarrierMathImpl& fast_impl() {
  static const CarrierMathImpl impl{
      "fast",
      &grid::db_to_linear,
      &grid::linear_to_db,
      &plc::uncoded_ber,
  };
  return impl;
}

const CarrierMathImpl& reference_impl() {
  static const CarrierMathImpl impl{
      "reference",
      &ref_db_to_linear,
      &ref_linear_to_db,
      &plc::uncoded_ber_exact,
  };
  return impl;
}

namespace ref {

namespace {
/// Coding gain of the rate-16/21 turbo code (tone_map.cpp's kCodingGainDb).
constexpr double kCodingGainDb = 7.0;
}  // namespace

double fec_waterfall(double mean_ber) {
  if (mean_ber <= 0.0) return 0.0;
  const double x = std::log10(mean_ber);
  return 1.0 / (1.0 + std::exp(-6.0 * (x + 2.7)));
}

double pb_error_probability(std::span<const plc::Modulation> carriers,
                            std::span<const double> actual_snr_db,
                            int robo_repetitions, const CarrierMathImpl& impl) {
  assert(carriers.size() == actual_snr_db.size());
  if (robo_repetitions > 1) {
    double mean_linear = 0.0;
    for (double snr : actual_snr_db) mean_linear += impl.db_to_linear(snr);
    mean_linear /= static_cast<double>(actual_snr_db.size());
    const double combined_db =
        impl.linear_to_db(robo_repetitions * std::max(1e-6, mean_linear));
    const double ber =
        impl.uncoded_ber(plc::Modulation::kQpsk, combined_db + kCodingGainDb);
    return fec_waterfall(ber);
  }
  double weighted_ber = 0.0;
  double total_bits = 0.0;
  for (std::size_t i = 0; i < carriers.size(); ++i) {
    const int b = plc::bits_per_symbol(carriers[i]);
    if (b == 0) continue;
    weighted_ber += impl.uncoded_ber(carriers[i], actual_snr_db[i] + kCodingGainDb) * b;
    total_bits += b;
  }
  if (total_bits == 0.0) return 1.0;
  return fec_waterfall(weighted_ber / total_bits);
}

double ble_mbps(const plc::ToneMap& tm, const plc::PhyParams& phy) {
  double bits = 0.0;
  for (plc::Modulation m : tm.carriers()) {
    bits += plc::bits_per_symbol(m);
  }
  bits /= tm.robo_repetitions();
  const double fec_rate = tm.is_robo() ? 0.5 : phy.fec_rate;
  const double phy_rate = bits * fec_rate / phy.symbol.us();
  return phy_rate * (1.0 - tm.expected_pberr());
}

}  // namespace ref

}  // namespace efd::testkit

#include "src/testkit/world.hpp"

#include <bit>
#include <string>

#include "src/obs/obs.hpp"

namespace efd::testkit {

namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(sim::Time t) { mix(static_cast<std::uint64_t>(t.ns())); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
};

}  // namespace

std::uint64_t RunTrace::digest() const {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(sofs.size()));
  for (const plc::SofRecord& s : sofs) {
    f.mix(s.start);
    f.mix(s.end);
    f.mix(s.src);
    f.mix(s.dst);
    f.mix(s.slot);
    f.mix(s.ble_mbps);
    f.mix(s.n_pbs);
    f.mix(s.n_symbols);
    f.mix(s.robo);
    f.mix(s.sound);
    f.mix(s.broadcast);
  }
  f.mix(static_cast<std::uint64_t>(delivered.size()));
  for (const DeliveredPacket& d : delivered) {
    f.mix(d.at);
    f.mix(d.flow_id);
    f.mix(static_cast<std::uint64_t>(d.seq));
    f.mix(d.when);
  }
  f.mix(static_cast<std::uint64_t>(dc_samples.size()));
  for (int dc : dc_samples) f.mix(dc);
  f.mix(offered);
  for (std::uint64_t n : offered_per_flow) f.mix(n);
  f.mix(collisions);
  f.mix(frames);
  f.mix(beacons);
  for (double v : link_ble_mbps) f.mix(v);
  for (double v : link_pberr) f.mix(v);
  return f.h;
}

ScenarioWorld::ScenarioWorld(const Scenario& scenario, sim::Simulator& sim)
    : scenario_(scenario), sim_(sim) {
  EFD_PROF_SCOPE("testkit.world_build");
  for (int i = 0; i < scenario_.n_outlets; ++i) {
    grid_.add_node("o" + std::to_string(i));
  }
  for (const Scenario::Cable& c : scenario_.cables) {
    grid_.add_cable(c.a, c.b, c.length_m, c.extra_loss_db);
  }
  for (const Scenario::ApplianceSpec& a : scenario_.appliances) {
    grid_.add_appliance(grid::make_appliance(a.type, a.outlet, a.seed));
  }

  plc::PhyParams phy =
      scenario_.hpav500 ? plc::PhyParams::hpav500() : plc::PhyParams::hpav();
  phy.tone_map_slots = scenario_.tone_map_slots;
  channel_ = std::make_unique<plc::PlcChannel>(grid_, phy);
  network_ = std::make_unique<plc::PlcNetwork>(
      sim_, *channel_, sim::Rng{scenario_.world_seed}, plc::PlcNetwork::Config{});
  for (const Scenario::StationSpec& st : scenario_.stations) {
    channel_->attach_station(st.id, st.outlet);
    network_->add_station(st.id, st.outlet);
  }
  if (scenario_.beacons) network_->medium().enable_beacons();
  if (scenario_.fault_pb_error > 0.0) {
    network_->medium().set_fault_pb_error(scenario_.fault_pb_error);
  }

  // Record every SoF, and sample each MAC's deferral counter at each SoF —
  // the cheapest deterministic probe point the MAC state machine exposes.
  sniffer_ = network_->medium().add_sniffer([this](const plc::SofRecord& sof) {
    trace_.sofs.push_back(sof);
    for (const Scenario::StationSpec& st : scenario_.stations) {
      trace_.dc_samples.push_back(
          network_->station(st.id).mac().deferral_counter());
    }
  });
  sniffer_added_ = true;

  for (const Scenario::StationSpec& st : scenario_.stations) {
    const net::StationId at = st.id;
    network_->station(at).mac().set_rx_handler(
        [this, at](const net::Packet& p, sim::Time when) {
          trace_.delivered.push_back({at, p.flow_id, p.seq, when});
        });
  }

  int flow_id = 0;
  for (const Scenario::TrafficSpec& t : scenario_.traffic) {
    net::Interface& src_mac =
        network_->station(scenario_.stations[static_cast<std::size_t>(t.src)].id)
            .mac();
    const net::StationId src_id =
        scenario_.stations[static_cast<std::size_t>(t.src)].id;
    const net::StationId dst_id =
        t.dst < 0 ? net::kBroadcast
                  : scenario_.stations[static_cast<std::size_t>(t.dst)].id;
    if (t.kind == Scenario::TrafficSpec::Kind::kSaturatedUdp) {
      net::UdpSource::Config cfg;
      cfg.rate_bps = t.rate_mbps * 1e6;
      cfg.packet_bytes = static_cast<std::size_t>(t.packet_bytes);
      cfg.src = src_id;
      cfg.dst = dst_id;
      cfg.flow_id = flow_id;
      cfg.priority = t.priority;
      flow_source_.emplace_back(true, udp_sources_.size());
      udp_sources_.push_back(
          std::make_unique<net::UdpSource>(sim_, src_mac, cfg));
    } else {
      net::ProbeSource::Config cfg;
      cfg.interval = sim::milliseconds(t.probe_interval_ms);
      cfg.burst_count = t.burst_count;
      cfg.packet_bytes = static_cast<std::size_t>(t.packet_bytes);
      cfg.src = src_id;
      cfg.dst = dst_id;
      cfg.flow_id = flow_id;
      cfg.priority = t.priority;
      flow_source_.emplace_back(false, probe_sources_.size());
      probe_sources_.push_back(
          std::make_unique<net::ProbeSource>(sim_, src_mac, cfg));
    }
    ++flow_id;
  }
}

ScenarioWorld::~ScenarioWorld() {
  if (sniffer_added_) network_->medium().remove_sniffer(sniffer_);
}

RunTrace ScenarioWorld::run() {
  EFD_PROF_SCOPE("testkit.scenario_run");
  const sim::Time start = scenario_.start_time();
  const sim::Time end = start + scenario_.duration();
  sim_.run_until(start);
  for (auto& s : udp_sources_) s->run(start, end);
  for (auto& s : probe_sources_) s->run(start, end);
  // Drain window: in-flight frames, SACK exchanges and the retransmission
  // tail complete before the trace is frozen.
  sim_.run_until(end + sim::milliseconds(50));

  for (const auto& [is_udp, idx] : flow_source_) {
    const std::uint64_t n = is_udp ? udp_sources_[idx]->offered_packets()
                                   : probe_sources_[idx]->sent();
    trace_.offered_per_flow.push_back(n);
    trace_.offered += n;
  }
  trace_.collisions = network_->medium().collisions();
  trace_.frames = network_->medium().frames_sent();
  trace_.beacons = network_->medium().beacons_sent();
  for (const Scenario::TrafficSpec& t : scenario_.traffic) {
    if (t.dst < 0) continue;  // broadcast: no directed estimator to query
    const net::StationId src_id =
        scenario_.stations[static_cast<std::size_t>(t.src)].id;
    const net::StationId dst_id =
        scenario_.stations[static_cast<std::size_t>(t.dst)].id;
    trace_.link_ble_mbps.push_back(network_->mm_average_ble(src_id, dst_id));
    trace_.link_pberr.push_back(network_->mm_pberr(src_id, dst_id));
  }
  return trace_;
}

}  // namespace efd::testkit

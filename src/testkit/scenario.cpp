#include "src/testkit/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "src/sim/rng.hpp"

namespace efd::testkit {

namespace {

const char* traffic_kind_name(Scenario::TrafficSpec::Kind k) {
  return k == Scenario::TrafficSpec::Kind::kSaturatedUdp ? "udp" : "probe";
}

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

grid::ApplianceType draw_appliance_type(sim::Rng& rng) {
  // All ten types, passive stubs included (they are what keeps bad links
  // bad at night and exercise the pure-multipath path of the grid).
  static constexpr grid::ApplianceType kTypes[] = {
      grid::ApplianceType::kLightBank,    grid::ApplianceType::kWorkstation,
      grid::ApplianceType::kMonitor,      grid::ApplianceType::kFridge,
      grid::ApplianceType::kMicrowave,    grid::ApplianceType::kCoffeeMachine,
      grid::ApplianceType::kPrinter,      grid::ApplianceType::kHvac,
      grid::ApplianceType::kPhoneCharger, grid::ApplianceType::kPassiveStub,
  };
  return kTypes[rng.uniform_int(0, 9)];
}

}  // namespace

std::string Scenario::describe() const {
  std::string out;
  appendf(out, "scenario{gen_seed=%llu index=%llu world_seed=%llu\n",
          static_cast<unsigned long long>(gen_seed),
          static_cast<unsigned long long>(index),
          static_cast<unsigned long long>(world_seed));
  appendf(out, "  phy=%s slots=%d beacons=%d fault_pberr=%.3f\n",
          hpav500 ? "hpav500" : "hpav", tone_map_slots, beacons ? 1 : 0,
          fault_pb_error);
  appendf(out, "  start=%.3fh duration=%.3fs\n", start_hours, duration_s);
  appendf(out, "  outlets=%d cables=[", n_outlets);
  for (const Cable& c : cables) {
    appendf(out, "(%d-%d %.1fm +%.1fdB)", c.a, c.b, c.length_m, c.extra_loss_db);
  }
  out += "]\n  appliances=[";
  for (const ApplianceSpec& a : appliances) {
    appendf(out, "(%s@%d #%llu)", grid::to_string(a.type).c_str(), a.outlet,
            static_cast<unsigned long long>(a.seed));
  }
  out += "]\n  stations=[";
  for (const StationSpec& s : stations) {
    appendf(out, "(%d@%d)", s.id, s.outlet);
  }
  out += "]\n  traffic=[";
  for (const TrafficSpec& t : traffic) {
    appendf(out, "(%s %d->%d %.1fMb/s %.1fms x%d %dB ca%d)",
            traffic_kind_name(t.kind), t.src, t.dst, t.rate_mbps,
            t.probe_interval_ms, t.burst_count, t.packet_bytes, t.priority);
  }
  appendf(out, "]\n  hybrid{ifaces=%d pkts=%d loss=%.3f dup=%.3f jitter=%.1fms "
               "gap=%.1fms caps=[",
          hybrid.n_interfaces, hybrid.n_packets, hybrid.loss_prob,
          hybrid.dup_prob, hybrid.reorder_jitter_ms, hybrid.gap_timeout_ms);
  for (double c : hybrid.capacities_mbps) appendf(out, "%.1f ", c);
  out += "]}\n";
  appendf(out,
          "  nan{tx=%d st=%d mode=%d p_remote=%.3f gap=%.1fms reports=%d "
          "jitter=%.1fms etx=[%.2f,%.2f] hops=%d relay=(%d nodes p=%.2f)}}",
          nan.n_transformers, nan.stations_per_transformer, nan.mode,
          nan.p_remote, nan.gap_timeout_ms, nan.n_reports, nan.dup_jitter_ms,
          nan.connect_etx, nan.max_link_etx, nan.max_hops, nan.relay_nodes,
          nan.relay_edge_prob);
  return out;
}

Scenario ScenarioGen::generate(std::uint64_t index) const {
  Scenario s;
  generate_into(index, s);
  return s;
}

void ScenarioGen::generate_into(std::uint64_t index, Scenario& s) const {
  // One substream per scenario index: scenario i is a pure function of
  // (seed, i), independent of how many scenarios were drawn before it.
  sim::Rng rng = sim::Rng{seed_}.fork(index + 1);
  // Restore default field values while keeping s's allocators: vector move
  // assignment does not propagate ArenaAllocator (POCMA is false), so an
  // arena-backed Scenario stays arena-backed, and the empty temporary
  // touches no heap.
  s = Scenario{};
  s.gen_seed = seed_;
  s.index = index;
  s.world_seed = seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1));

  // --- Grid topology: a random tree plus an occasional cross-link --------
  s.n_outlets = static_cast<int>(rng.uniform_int(2, 10));
  for (int node = 1; node < s.n_outlets; ++node) {
    Scenario::Cable c;
    c.a = static_cast<int>(rng.uniform_int(0, node - 1));
    c.b = node;
    c.length_m = rng.uniform(2.0, 45.0);
    // Occasional lumped loss: breaker panels / inter-board basement paths.
    c.extra_loss_db = rng.bernoulli(0.2) ? rng.uniform(3.0, 25.0) : 0.0;
    s.cables.push_back(c);
  }
  if (s.n_outlets >= 4 && rng.bernoulli(0.3)) {
    // A wiring loop, so shortest-path selection gets exercised too.
    Scenario::Cable c;
    c.a = 0;
    c.b = s.n_outlets - 1;
    c.length_m = rng.uniform(10.0, 60.0);
    s.cables.push_back(c);
  }

  const int n_appliances = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < n_appliances; ++i) {
    Scenario::ApplianceSpec a;
    a.type = draw_appliance_type(rng);
    a.outlet = static_cast<int>(rng.uniform_int(0, s.n_outlets - 1));
    a.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    s.appliances.push_back(a);
  }

  // --- PHY / network -------------------------------------------------------
  s.hpav500 = rng.bernoulli(0.25);
  s.tone_map_slots = static_cast<int>(rng.uniform_int(2, 6));
  s.beacons = rng.bernoulli(0.2);
  s.fault_pb_error = rng.bernoulli(0.15) ? rng.uniform(0.02, 0.35) : 0.0;

  // --- Stations ------------------------------------------------------------
  const int n_stations =
      static_cast<int>(rng.uniform_int(2, std::min(5, s.n_outlets + 1)));
  for (int i = 0; i < n_stations; ++i) {
    Scenario::StationSpec st;
    st.id = i;
    st.outlet = static_cast<int>(rng.uniform_int(0, s.n_outlets - 1));
    s.stations.push_back(st);
  }

  // --- Traffic -------------------------------------------------------------
  const int n_flows = static_cast<int>(rng.uniform_int(1, 3));
  for (int f = 0; f < n_flows; ++f) {
    Scenario::TrafficSpec t;
    t.src = static_cast<int>(rng.uniform_int(0, n_stations - 1));
    do {
      t.dst = static_cast<int>(rng.uniform_int(0, n_stations - 1));
    } while (t.dst == t.src);
    if (rng.bernoulli(0.6)) {
      t.kind = Scenario::TrafficSpec::Kind::kSaturatedUdp;
      t.rate_mbps = rng.uniform(5.0, 250.0);
      t.packet_bytes = static_cast<int>(rng.uniform_int(200, 1500));
    } else {
      t.kind = Scenario::TrafficSpec::Kind::kProbes;
      t.probe_interval_ms = rng.uniform(5.0, 60.0);
      t.burst_count = static_cast<int>(rng.uniform_int(1, 20));
      t.packet_bytes = static_cast<int>(rng.uniform_int(64, 1500));
      if (rng.bernoulli(0.1)) t.dst = -1;  // broadcast probing (§8.1)
    }
    t.priority = static_cast<int>(rng.uniform_int(0, 3));
    s.traffic.push_back(t);
  }
  s.start_hours = rng.uniform(0.0, 24.0 * 7.0);
  s.duration_s = rng.uniform(0.1, 0.5);

  // --- Hybrid fuzz ---------------------------------------------------------
  s.hybrid.n_interfaces = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 0; i < s.hybrid.n_interfaces; ++i) {
    s.hybrid.capacities_mbps.push_back(
        rng.bernoulli(0.15) ? 0.0 : rng.uniform(1.0, 200.0));
  }
  s.hybrid.n_packets = static_cast<int>(rng.uniform_int(50, 400));
  s.hybrid.loss_prob = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.15) : 0.0;
  s.hybrid.dup_prob = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.05) : 0.0;
  s.hybrid.reorder_jitter_ms = rng.uniform(0.5, 30.0);
  s.hybrid.gap_timeout_ms = rng.uniform(5.0, 60.0);

  // --- NAN diversity / relay fuzz ------------------------------------------
  // Drawn strictly after every pre-existing field, so scenarios generated
  // before these harnesses existed are byte-identical prefixes.
  s.nan.n_transformers = static_cast<int>(rng.uniform_int(2, 4));
  s.nan.stations_per_transformer = static_cast<int>(rng.uniform_int(3, 6));
  s.nan.mode = static_cast<int>(rng.uniform_int(0, 3));
  s.nan.p_remote = rng.uniform(0.0, 0.4);
  s.nan.gap_timeout_ms = rng.uniform(5.0, 40.0);
  s.nan.n_reports = static_cast<int>(rng.uniform_int(30, 150));
  s.nan.dup_jitter_ms = rng.uniform(0.5, 10.0);
  s.nan.connect_etx = rng.uniform(1.5, 4.0);
  s.nan.max_link_etx = rng.uniform(6.0, 12.0);
  s.nan.max_hops = static_cast<int>(rng.uniform_int(1, 4));
  s.nan.relay_nodes = static_cast<int>(rng.uniform_int(4, 10));
  s.nan.relay_edge_prob = rng.uniform(0.3, 0.9);
}

namespace {

/// Remove outlet `node` from the scenario: cables re-rooted past it,
/// appliances/stations moved to outlet 0. Keeps the topology a connected
/// tree by collapsing the removed node onto its lowest-numbered neighbor.
Scenario drop_outlet(const Scenario& s, int node) {
  Scenario out = s;
  out.cables.clear();
  // Collapse `node` onto outlet 0, then renumber nodes > node down by one.
  const auto remap = [&](int n) {
    if (n == node) return 0;
    return n > node ? n - 1 : n;
  };
  for (const Scenario::Cable& c : s.cables) {
    Scenario::Cable nc = c;
    nc.a = remap(c.a);
    nc.b = remap(c.b);
    if (nc.a == nc.b) continue;  // collapsed onto itself: drop the cable
    if (nc.a > nc.b) std::swap(nc.a, nc.b);
    out.cables.push_back(nc);
  }
  out.n_outlets = s.n_outlets - 1;
  for (auto& a : out.appliances) a.outlet = remap(a.outlet);
  for (auto& st : out.stations) st.outlet = remap(st.outlet);
  return out;
}

}  // namespace

std::vector<Scenario> shrink_candidates(const Scenario& s) {
  std::vector<Scenario> out;
  // Halve the appliance list before dropping one at a time: big cuts first
  // makes the greedy loop logarithmic on the common path.
  if (s.appliances.size() > 1) {
    Scenario c = s;
    c.appliances.resize(s.appliances.size() / 2);
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < s.appliances.size(); ++i) {
    Scenario c = s;
    c.appliances.erase(c.appliances.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  if (s.traffic.size() > 1) {
    for (std::size_t i = 0; i < s.traffic.size(); ++i) {
      Scenario c = s;
      c.traffic.erase(c.traffic.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(c));
    }
  }
  // Drop stations that no traffic references (after remapping indices).
  if (s.stations.size() > 2) {
    for (std::size_t i = 0; i < s.stations.size(); ++i) {
      bool referenced = false;
      for (const auto& t : s.traffic) {
        if (t.src == static_cast<int>(i) || t.dst == static_cast<int>(i)) {
          referenced = true;
        }
      }
      if (referenced) continue;
      Scenario c = s;
      c.stations.erase(c.stations.begin() + static_cast<std::ptrdiff_t>(i));
      for (std::size_t j = 0; j < c.stations.size(); ++j) {
        c.stations[j].id = static_cast<int>(j);
      }
      for (auto& t : c.traffic) {
        if (t.src > static_cast<int>(i)) --t.src;
        if (t.dst > static_cast<int>(i)) --t.dst;
      }
      out.push_back(std::move(c));
    }
  }
  // Drop outlets (highest first so station/appliance homes at low indices
  // survive).
  if (s.n_outlets > 2) {
    for (int node = s.n_outlets - 1; node >= 1; --node) {
      out.push_back(drop_outlet(s, node));
    }
  }
  if (s.duration_s > 0.1) {
    Scenario c = s;
    c.duration_s = std::max(0.1, s.duration_s / 2.0);
    out.push_back(std::move(c));
  }
  if (s.fault_pb_error > 0.0) {
    Scenario c = s;
    c.fault_pb_error = 0.0;
    out.push_back(std::move(c));
  }
  if (s.beacons) {
    Scenario c = s;
    c.beacons = false;
    out.push_back(std::move(c));
  }
  if (s.hybrid.n_packets > 10) {
    Scenario c = s;
    c.hybrid.n_packets = s.hybrid.n_packets / 2;
    out.push_back(std::move(c));
  }
  if (s.nan.n_reports > 10) {
    Scenario c = s;
    c.nan.n_reports = s.nan.n_reports / 2;
    out.push_back(std::move(c));
  }
  if (s.nan.max_hops > 1) {
    // Relaying off entirely: only the direct link is a 1-hop path.
    Scenario c = s;
    c.nan.max_hops = 1;
    out.push_back(std::move(c));
  }
  return out;
}

Scenario shrink(Scenario s, const std::function<bool(const Scenario&)>& fails,
                int max_steps) {
  for (int step = 0; step < max_steps; ++step) {
    bool shrunk = false;
    for (Scenario& candidate : shrink_candidates(s)) {
      if (fails(candidate)) {
        s = std::move(candidate);
        shrunk = true;
        break;
      }
    }
    if (!shrunk) return s;
  }
  return s;
}

}  // namespace efd::testkit

#pragma once

#include <span>

#include "src/plc/modulation.hpp"
#include "src/plc/phy.hpp"
#include "src/plc/tone_map.hpp"

namespace efd::testkit {

/// One interchangeable set of carrier-domain math kernels. Two instances
/// exist: `fast_impl()` routes through the production exp2/log2 conversions
/// and the BER lookup table (PR 1's fast paths); `reference_impl()` is the
/// naive pow(10,x/10) / 10*log10 / closed-form-erfc formulation. Selection
/// is a runtime function-pointer table — no #ifdef, both variants live in
/// every binary — so the DiffRunner can execute the same scenario through
/// both and bound their disagreement.
struct CarrierMathImpl {
  const char* name;
  double (*db_to_linear)(double db);
  double (*linear_to_db)(double linear);
  double (*uncoded_ber)(plc::Modulation m, double snr_db);
};

[[nodiscard]] const CarrierMathImpl& fast_impl();
[[nodiscard]] const CarrierMathImpl& reference_impl();

namespace ref {

/// The turbo-FEC waterfall of tone_map.cpp, reproduced from its documented
/// definition: p = logistic(6 * (log10(ber) + 2.7)).
[[nodiscard]] double fec_waterfall(double mean_ber);

/// PB error probability of a per-carrier modulation assignment against the
/// actual per-carrier SNR — an independent reimplementation of
/// ToneMap::pb_error_probability with the carrier math supplied by `impl`
/// (pass `reference_impl()` for the all-double-precision recompute).
/// `robo_repetitions > 1` activates the ROBO linear-SNR-mean combining.
[[nodiscard]] double pb_error_probability(std::span<const plc::Modulation> carriers,
                                          std::span<const double> actual_snr_db,
                                          int robo_repetitions,
                                          const CarrierMathImpl& impl);

/// Eq. (1) recomputed from first principles off a tone map's public
/// surface: BLE = B * R * (1 - PBerr) / Tsym, with B summed over the
/// carrier constellations, R the FEC rate (16/21 data, 1/2 ROBO) and Tsym
/// from the PHY parameters. Disagrees with ToneMap::ble_mbps() only if the
/// tone map's cached derived quantities are corrupt.
[[nodiscard]] double ble_mbps(const plc::ToneMap& tm, const plc::PhyParams& phy);

}  // namespace ref

}  // namespace efd::testkit

#include "src/core/probing.hpp"

#include <cmath>

namespace efd::core {

sim::Time QualityAdaptivePolicy::interval(double average_ble_mbps) const {
  switch (cfg_.classifier.classify(average_ble_mbps)) {
    case LinkQuality::kBad: return cfg_.base;
    case LinkQuality::kAverage: return cfg_.base * cfg_.average_factor;
    case LinkQuality::kGood: return cfg_.base * cfg_.good_factor;
  }
  return cfg_.base;
}

double ProbingEvaluation::mean_error() const {
  if (errors_mbps.empty()) return 0.0;
  double sum = 0.0;
  for (double e : errors_mbps) sum += e;
  return sum / static_cast<double>(errors_mbps.size());
}

ProbingEvaluation evaluate_policy(const std::vector<BleSample>& trace,
                                  const ProbingPolicy& policy) {
  ProbingEvaluation eval;
  if (trace.empty()) return eval;

  std::size_t i = 0;
  while (i < trace.size()) {
    const double estimate = trace[i].ble_mbps;
    ++eval.probes;
    const sim::Time next_probe = trace[i].t + policy.interval(estimate);
    // Exact capacity over the blind window: mean of the trace samples from
    // this probe (inclusive) until the next probe.
    double sum = 0.0;
    std::size_t n = 0;
    std::size_t j = i;
    while (j < trace.size() && trace[j].t < next_probe) {
      sum += trace[j].ble_mbps;
      ++n;
      ++j;
    }
    if (n > 0) {
      eval.errors_mbps.push_back(std::abs(estimate - sum / static_cast<double>(n)));
    }
    if (j == i) break;  // trace exhausted / zero-length interval guard
    i = j;
  }
  return eval;
}

}  // namespace efd::core

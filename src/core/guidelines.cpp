#include "src/core/guidelines.hpp"

namespace efd::core {

namespace {
constexpr Guideline kGuidelines[] = {
    {"Metrics",
     "Use BLE and PBerr, the quantities IEEE 1901 itself defines.", "7, 8.1"},
    {"Unicast probing only",
     "Broadcast probes ride the ROBO modulation and carry no information "
     "about real link quality.",
     "8.1"},
    {"Shortest time-scale",
     "Average BLE over the mains cycle (all tone-map slots).", "6.1"},
    {"Size of probes",
     "Send probes larger than one PB / one OFDM symbol, or the rate "
     "adaptation converges to the single-symbol rate.",
     "7.2"},
    {"Frequency of probes",
     "Adapt the probing interval to link quality: good links change slowly "
     "and can be probed an order of magnitude less often.",
     "6.2, 6.3, 7.3"},
    {"Burstiness of probes",
     "Probe in bursts that aggregate into full-length frames to avoid "
     "capture-effect pollution of BLE under background traffic.",
     "7.2, 8.2"},
    {"Asymmetry in probing",
     "Estimate metrics in both directions: PLC links are asymmetric in "
     "both average quality and temporal variability.",
     "5, 6.2"},
};
}  // namespace

std::span<const Guideline> guidelines() { return kGuidelines; }

}  // namespace efd::core

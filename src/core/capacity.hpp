#pragma once

#include "src/plc/network.hpp"
#include "src/sim/time.hpp"

namespace efd::core {

/// BLE-based capacity estimation (paper §7). BLE is carried in every SoF
/// delimiter and reported by management messages; the paper shows it is a
/// linear predictor of saturated UDP throughput: BLE = 1.7 * T - 0.65
/// (Fig. 15), so T ≈ (BLE + 0.65) / 1.7. These defaults can be re-fitted
/// with `fit` against measurements (the Fig. 15 bench does exactly that).
class BleCapacityEstimator {
 public:
  struct Fit {
    double slope = 1.7;       ///< BLE per unit of throughput
    double intercept = -0.65; ///< Mb/s
  };

  BleCapacityEstimator() = default;
  explicit BleCapacityEstimator(Fit fit) : fit_(fit) {}

  /// Achievable UDP throughput predicted from an average BLE (Mb/s).
  [[nodiscard]] double throughput_from_ble(double ble_mbps) const {
    const double t = (ble_mbps - fit_.intercept) / fit_.slope;
    return t > 0.0 ? t : 0.0;
  }

  [[nodiscard]] double ble_from_throughput(double throughput_mbps) const {
    return fit_.slope * throughput_mbps + fit_.intercept;
  }

  [[nodiscard]] const Fit& fit() const { return fit_; }

 private:
  Fit fit_;
};

/// Rate-limited management-message poller for a directed PLC link — the
/// paper's `int6krate`/`ampstat` workflow. MMs can be issued at most once
/// per 50 ms (§6.2: "the fastest rate at which we can currently send MMs to
/// the PLC chip"); faster queries return the cached value.
class MmPoller {
 public:
  static constexpr sim::Time kMinInterval = sim::milliseconds(50);

  MmPoller(plc::PlcNetwork& network, net::StationId tx, net::StationId rx)
      : network_(network), tx_(tx), rx_(rx) {}

  /// Average BLE over the 6 tone-map slots (`int6krate`).
  [[nodiscard]] double average_ble_mbps(sim::Time now);

  /// Smoothed PB error rate (`ampstat`).
  [[nodiscard]] double pberr(sim::Time now);

  [[nodiscard]] std::uint64_t mm_count() const { return mm_count_; }

 private:
  void refresh(sim::Time now);

  plc::PlcNetwork& network_;
  net::StationId tx_;
  net::StationId rx_;
  bool have_ = false;
  sim::Time last_{};
  double ble_ = 0.0;
  double pberr_ = 0.0;
  std::uint64_t mm_count_ = 0;
};

}  // namespace efd::core

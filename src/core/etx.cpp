#include "src/core/etx.hpp"

#include <algorithm>

namespace efd::core {

double predicted_u_etx(double pberr, int pbs_per_packet) {
  const double p = std::clamp(pberr, 0.0, 0.999);
  // With selective PB retransmission, a packet of n PBs completes when its
  // slowest PB completes; PB completion is geometric with success 1 - p.
  // E[max of n geometrics] = sum_{k>=0} (1 - (1 - p^k)^n).
  double expected = 0.0;
  double pk = 1.0;  // p^k
  for (int k = 0; k < 10000; ++k) {
    const double term = 1.0 - std::pow(1.0 - pk, pbs_per_packet);
    expected += term;
    if (term < 1e-9) break;
    pk *= p;
  }
  return expected;
}

}  // namespace efd::core

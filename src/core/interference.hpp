#pragma once

#include <cstdint>

#include "src/sim/time.hpp"

namespace efd::core {

/// Interference indicator — the extension the paper sketches in §8.2:
/// "PBerr can be used ... to indicate interference in PLC" but "estimating
/// the amount of interference is challenging". The detector works on the
/// signature the paper identifies: under capture-effect contention the
/// *measured* PB error rate (ampstat) explodes while the tone map was built
/// for a channel that, between collisions, is fine — so errors are bursty
/// and correlated with a BLE *decline* rather than with any channel change.
///
/// Feed it the periodic MM readings (BLE + PBerr); it flags sustained
/// error pressure that channel adaptation fails to cure — which on a
/// tone-mapped link means the errors are not channel errors.
class InterferenceDetector {
 public:
  struct Config {
    /// Sustained measured PBerr above this is suspicious: the estimator
    /// would have retuned away genuine channel errors (IEEE 1901 tone maps
    /// target residual error rates well below this).
    double pberr_floor = 0.02;
    /// Number of consecutive suspicious samples before flagging.
    int confirm_samples = 3;
    /// Fractional BLE decline (from the window's maximum) that corroborates
    /// the collision signature.
    double ble_decline = 0.10;
  };

  InterferenceDetector() : InterferenceDetector(Config{}) {}
  explicit InterferenceDetector(Config config) : cfg_(config) {}

  /// Feed one MM sample (average BLE + measured PBerr).
  void on_sample(double ble_mbps, double pberr, sim::Time now);

  /// True while the collision signature is present.
  [[nodiscard]] bool interference_suspected() const { return suspected_; }

  /// Samples flagged so far (diagnostic).
  [[nodiscard]] std::uint64_t flagged_samples() const { return flagged_; }

  /// Reset the detection state (e.g. after a route change).
  void reset();

 private:
  Config cfg_;
  double ble_peak_ = 0.0;
  int streak_ = 0;
  bool suspected_ = false;
  std::uint64_t flagged_ = 0;
};

}  // namespace efd::core

#include "src/core/sof_capture.hpp"

#include "src/sim/stats.hpp"

namespace efd::core {

SofCapture::SofCapture(plc::PlcMedium& medium) : medium_(medium) {
  sniffer_id_ = medium_.add_sniffer([this](const plc::SofRecord& rec) {
    if (filtered_ && (rec.src != f_src_ || rec.dst != f_dst_)) return;
    records_.push_back(rec);
  });
}

SofCapture::~SofCapture() { medium_.remove_sniffer(sniffer_id_); }

void SofCapture::filter(net::StationId src, net::StationId dst) {
  filtered_ = true;
  f_src_ = src;
  f_dst_ = dst;
}

std::vector<plc::SofRecord> SofCapture::link_records(net::StationId src,
                                                     net::StationId dst) const {
  std::vector<plc::SofRecord> out;
  for (const auto& r : records_) {
    if (r.src == src && r.dst == dst) out.push_back(r);
  }
  return out;
}

double SofCapture::average_ble_mbps(net::StationId src, net::StationId dst,
                                    int n) const {
  double sum = 0.0;
  int count = 0;
  for (auto it = records_.rbegin(); it != records_.rend() && count < n; ++it) {
    if (it->src != src || it->dst != dst) continue;
    sum += it->ble_mbps;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double RetransmissionAnalysis::Result::u_etx() const {
  if (tx_counts.empty()) return 0.0;
  double sum = 0.0;
  for (int c : tx_counts) sum += c;
  return sum / static_cast<double>(tx_counts.size());
}

double RetransmissionAnalysis::Result::tx_count_stddev() const {
  sim::RunningStats s;
  for (int c : tx_counts) s.add(c);
  return s.stddev();
}

RetransmissionAnalysis::Result RetransmissionAnalysis::analyze(
    const std::vector<plc::SofRecord>& link_records) const {
  Result result;
  int current_count = 0;
  bool any = false;
  sim::Time last{};
  for (const auto& r : link_records) {
    const bool retx = any && (r.start - last) < retx_window;
    if (retx) {
      ++result.retransmissions;
      ++current_count;
    } else {
      if (any) result.tx_counts.push_back(current_count);
      ++result.new_transmissions;
      current_count = 1;
    }
    last = r.start;
    any = true;
  }
  if (any) result.tx_counts.push_back(current_count);
  return result;
}

}  // namespace efd::core

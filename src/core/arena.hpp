#pragma once

// efd::core::Arena — grow-only chunked bump allocator (DESIGN.md §13).
//
// Scenario churn (testkit proptest sweeps, ParallelRunner workers) builds
// and tears down whole Scenario object graphs millions of times; the object
// lifetimes are strictly nested inside one task, so a bump pointer with a
// wholesale reset() beats per-object heap traffic. Rules of engagement:
//
//  - allocate() never frees; deallocate() is a no-op. reset() rewinds the
//    bump pointer to the start of the FIRST chunk and keeps every chunk for
//    reuse, so after warm-up (one task of each size) a reset/rebuild cycle
//    performs zero heap allocations — the property the proptest zero-alloc
//    pins assert.
//  - Anything allocated from an arena must be destroyed (or abandoned — the
//    arena never runs destructors) BEFORE the next reset(); containers using
//    ArenaAllocator must not outlive the arena or its reset.
//  - One arena, one thread: no locks. ParallelRunner gives each worker its
//    own arena alongside its own Simulator.
//
// ArenaAllocator<T> adapts an Arena to the std allocator interface so
// std::vector and friends can live on it. A default-constructed
// ArenaAllocator (no arena) falls back to operator new — this keeps arena
// types usable as ordinary values in tests — and container copies escape to
// the heap (select_on_container_copy_construction returns the fallback), so
// a copied Scenario can safely outlive the source arena's reset.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace efd::core {

class Arena {
 public:
  /// First chunk size; subsequent chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 4 * 1024 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `size` bytes at `align` alignment; never returns nullptr (throws
  /// std::bad_alloc like operator new on exhaustion).
  void* allocate(std::size_t size, std::size_t align) {
    if (size == 0) size = 1;
    if (chunk_ < chunks_.size()) {
      void* p = bump(chunks_[chunk_], size, align);
      if (p != nullptr) return p;
    }
    return allocate_slow(size, align);
  }

  template <class T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewind to empty, keeping every chunk. O(#chunks), no heap traffic.
  void reset() {
    for (auto& c : chunks_) c.used = 0;
    chunk_ = 0;
  }

  /// Total bytes handed out since the last reset (diagnostic, includes
  /// alignment padding).
  [[nodiscard]] std::size_t bytes_used() const {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += c.used;
    return n;
  }

  /// Total chunk capacity owned (grows monotonically; warm-up watermark).
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += c.data.size();
    return n;
  }

  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::vector<std::byte> data;
    std::size_t used = 0;
  };

  static void* bump(Chunk& c, std::size_t size, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.data());
    const std::uintptr_t aligned = (base + c.used + (align - 1)) & ~(align - 1);
    const std::size_t offset = static_cast<std::size_t>(aligned - base);
    if (offset + size > c.data.size()) return nullptr;
    c.used = offset + size;
    return c.data.data() + offset;
  }

  void* allocate_slow(std::size_t size, std::size_t align) {
    // Advance through already-owned chunks (post-reset reuse) before growing.
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      if (void* p = bump(chunks_[chunk_], size, align)) return p;
    }
    std::size_t want = next_chunk_bytes_;
    while (want < size + align) want *= 2;
    chunks_.emplace_back();
    chunks_.back().data.resize(want);
    next_chunk_bytes_ = want < kMaxChunkBytes ? want * 2 : kMaxChunkBytes;
    chunk_ = chunks_.size() - 1;
    void* p = bump(chunks_.back(), size, align);
    if (p == nullptr) throw std::bad_alloc();
    return p;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  ///< current bump chunk index
  std::size_t next_chunk_bytes_;
};

/// std-allocator adapter. Propagation traits are all false and copies
/// "escape" to the heap-fallback allocator, so container copy/move across
/// arena boundaries follows value semantics instead of dangling into a
/// reset arena. Equality compares the arena pointer: two heap-fallback
/// allocators are equal, two different arenas are not.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed wholesale by Arena::reset().
  }

  /// Container copies get the heap fallback, never the source's arena.
  [[nodiscard]] ArenaAllocator select_on_container_copy_construction() const {
    return ArenaAllocator{};
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <class U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace efd::core

#pragma once

#include <vector>

#include "src/core/probing.hpp"
#include "src/plc/channel_estimator.hpp"
#include "src/sim/rng.hpp"

namespace efd::core {

/// Metric-sampling driver: exercises a ChannelEstimator against the true
/// channel at a fixed cadence *without* running the frame-level MAC. This
/// mirrors how the paper produced its long traces — saturated (or probe)
/// traffic on the link while BLE/PBerr are polled via MMs every 50 ms-1 s
/// (§6.2, §6.3) — and makes multi-day experiments tractable.
class LinkTraceSampler {
 public:
  struct Config {
    /// Sampling cadence (50 ms in §6.2; 1 s in §6.3).
    sim::Time step = sim::milliseconds(50);
    /// PBs of saturated traffic flowing between samples, spread over the
    /// tone-map slots. Saturated HPAV pushes roughly 2700 PBs per 100 ms.
    int pbs_per_step = 1300;
    /// OFDM symbols per emulated frame (saturated frames are long).
    int symbols_per_frame = 40;
  };

  LinkTraceSampler(const plc::PlcChannel& channel, plc::ChannelEstimator& estimator,
                   net::StationId tx, net::StationId rx, sim::Rng rng, Config config);
  LinkTraceSampler(const plc::PlcChannel& channel, plc::ChannelEstimator& estimator,
                   net::StationId tx, net::StationId rx, sim::Rng rng)
      : LinkTraceSampler(channel, estimator, tx, rx, rng, Config{}) {}

  /// Advance one step ending at `now`: push saturated-traffic PB statistics
  /// through the estimator and return the updated average BLE.
  double step(sim::Time now);

  /// Run from `from` to `to`, returning the BLE trace at the sampling
  /// cadence.
  std::vector<BleSample> run(sim::Time from, sim::Time to);

 private:
  const plc::PlcChannel& channel_;
  plc::ChannelEstimator& estimator_;
  net::StationId tx_;
  net::StationId rx_;
  sim::Rng rng_;
  Config cfg_;
};

/// Probe-driven estimation driver for the convergence experiments of
/// §7.1-§7.2 (Figs. 16-18): sends `packets_per_second` probes of
/// `packet_bytes` each and tracks the estimated capacity (average BLE).
class ProbeTraceSampler {
 public:
  struct Config {
    double packets_per_second = 1.0;
    std::size_t packet_bytes = 1300;
  };

  ProbeTraceSampler(const plc::PlcChannel& channel, plc::ChannelEstimator& estimator,
                    net::StationId tx, net::StationId rx, sim::Rng rng, Config config);

  /// Process the probes falling in (last, now] and return the estimated
  /// capacity after them.
  double step(sim::Time now);

  /// Sampled estimated capacity every `sample_every` from `from` to `to`.
  std::vector<BleSample> run(sim::Time from, sim::Time to, sim::Time sample_every);

 private:
  const plc::PlcChannel& channel_;
  plc::ChannelEstimator& estimator_;
  net::StationId tx_;
  net::StationId rx_;
  sim::Rng rng_;
  Config cfg_;
  sim::Time last_{};
  bool started_ = false;
};

}  // namespace efd::core

#include "src/core/trace_io.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace efd::core {

void write_ble_trace_csv(std::ostream& out, const std::vector<BleSample>& trace) {
  out << "t_s,ble_mbps\n";
  char line[64];
  for (const BleSample& s : trace) {
    std::snprintf(line, sizeof line, "%.6f,%.3f\n", s.t.seconds(), s.ble_mbps);
    out << line;
  }
}

std::vector<BleSample> read_ble_trace_csv(std::istream& in) {
  std::vector<BleSample> trace;
  std::string line;
  if (!std::getline(in, line) || line.rfind("t_s,ble_mbps", 0) != 0) {
    throw std::runtime_error("ble trace csv: missing header");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("ble trace csv: malformed line " +
                               std::to_string(line_no));
    }
    try {
      const double t = std::stod(line.substr(0, comma));
      const double ble = std::stod(line.substr(comma + 1));
      trace.push_back({sim::seconds(t), ble});
    } catch (const std::exception&) {
      throw std::runtime_error("ble trace csv: bad number on line " +
                               std::to_string(line_no));
    }
  }
  return trace;
}

void write_sof_records_csv(std::ostream& out,
                           const std::vector<plc::SofRecord>& records) {
  out << "t_start_s,t_end_s,src,dst,slot,ble_mbps,n_pbs,n_symbols,robo,sound,"
         "bcast\n";
  char line[160];
  for (const plc::SofRecord& r : records) {
    std::snprintf(line, sizeof line, "%.9f,%.9f,%d,%d,%d,%.3f,%d,%d,%d,%d,%d\n",
                  r.start.seconds(), r.end.seconds(), r.src, r.dst, r.slot,
                  r.ble_mbps, r.n_pbs, r.n_symbols, r.robo ? 1 : 0,
                  r.sound ? 1 : 0, r.broadcast ? 1 : 0);
    out << line;
  }
}

std::string ble_trace_to_string(const std::vector<BleSample>& trace) {
  std::ostringstream out;
  write_ble_trace_csv(out, trace);
  return out.str();
}

}  // namespace efd::core

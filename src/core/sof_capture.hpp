#pragma once

#include <vector>

#include "src/plc/medium.hpp"

namespace efd::core {

/// Passive SoF-delimiter capture (Table 2: "arrival timestamp t" and
/// "bit loading estimate BLE" are measured with the SoF delimiter). Attach
/// to a PLC medium and filter per directed link.
class SofCapture {
 public:
  /// Subscribes to the medium's sniffer feed. Records every SoF; use the
  /// filtered accessors to study one link.
  explicit SofCapture(plc::PlcMedium& medium);
  SofCapture(const SofCapture&) = delete;
  SofCapture& operator=(const SofCapture&) = delete;
  /// Unregisters from the medium (the callback captures `this`).
  ~SofCapture();

  /// Restrict capture to one directed link (optional; saves memory on
  /// long runs). Must be called before traffic starts.
  void filter(net::StationId src, net::StationId dst);

  [[nodiscard]] const std::vector<plc::SofRecord>& records() const { return records_; }

  /// Records for a directed link, in capture order.
  [[nodiscard]] std::vector<plc::SofRecord> link_records(net::StationId src,
                                                         net::StationId dst) const;

  /// Average BLE over the last `n` captured frames of a link — the paper's
  /// Fig. 4 estimates capacity by averaging BLE over 50 packets.
  [[nodiscard]] double average_ble_mbps(net::StationId src, net::StationId dst,
                                        int n) const;

  void clear() { records_.clear(); }

 private:
  plc::PlcMedium& medium_;
  plc::PlcMedium::SnifferId sniffer_id_ = 0;
  bool filtered_ = false;
  net::StationId f_src_ = 0;
  net::StationId f_dst_ = 0;
  std::vector<plc::SofRecord> records_;
};

/// Splits a captured unicast probe stream into transmissions vs
/// retransmissions using the paper's §8.1 heuristic: a frame arriving
/// within `retx_window` of the previous frame on the same link is a
/// retransmission (there is no retransmission flag in the PLC SoF).
struct RetransmissionAnalysis {
  sim::Time retx_window = sim::milliseconds(10);

  struct Result {
    std::uint64_t new_transmissions = 0;
    std::uint64_t retransmissions = 0;
    /// Per-packet transmission counts (1 = no retransmission needed).
    std::vector<int> tx_counts;

    [[nodiscard]] double u_etx() const;
    [[nodiscard]] double tx_count_stddev() const;
  };

  [[nodiscard]] Result analyze(const std::vector<plc::SofRecord>& link_records) const;
};

}  // namespace efd::core

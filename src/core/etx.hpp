#pragma once

#include <cmath>
#include <vector>

#include "src/core/sof_capture.hpp"
#include "src/net/meters.hpp"

namespace efd::core {

/// Expected transmission count metrics for PLC (paper §8.1).
///
/// Broadcast ETX — the classic formulation (De Couto et al., used by the
/// works the paper cites [7], [8]) — counts broadcast probe losses. The
/// paper shows it is *noisy and misleading* on PLC: broadcast frames ride
/// the most robust (ROBO) modulation, so a wide range of link qualities see
/// ~1e-4 loss and ETX reads as ~1.
struct BroadcastEtx {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;

  [[nodiscard]] double loss_rate() const {
    if (sent == 0) return 0.0;
    const auto lost = sent > received ? sent - received : 0;
    return static_cast<double>(lost) / static_cast<double>(sent);
  }

  /// ETX = 1 / (delivery ratio); infinity-free (capped) for fully dead links.
  [[nodiscard]] double etx() const {
    const double d = 1.0 - loss_rate();
    return d > 1e-6 ? 1.0 / d : 1e6;
  }
};

/// Unicast ETX (U-ETX, §8.1): the average number of transmissions a packet
/// needs on the real (tone-mapped) link, recovered from sniffed SoF
/// timestamps with the 10 ms retransmission heuristic. Unlike broadcast
/// ETX, U-ETX reflects true link quality and correlates almost linearly
/// with PBerr (Fig. 22).
class UnicastEtxEstimator {
 public:
  explicit UnicastEtxEstimator(sim::Time retx_window = sim::milliseconds(10))
      : analysis_{retx_window} {}

  [[nodiscard]] RetransmissionAnalysis::Result analyze(
      const std::vector<plc::SofRecord>& link_records) const {
    return analysis_.analyze(link_records);
  }

 private:
  RetransmissionAnalysis analysis_;
};

/// Closed-form U-ETX prediction from PBerr for an n-PB packet: the packet
/// needs a retransmission whenever at least one of its PBs fails, and
/// transmissions repeat (selectively) until every PB has made it. This is
/// the model the paper validates empirically in Fig. 22.
[[nodiscard]] double predicted_u_etx(double pberr, int pbs_per_packet);

}  // namespace efd::core

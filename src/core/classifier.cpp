// LinkQualityClassifier is header-only.
#include "src/core/classifier.hpp"

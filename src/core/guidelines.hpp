#pragma once

#include <span>
#include <string_view>

namespace efd::core {

/// One row of the paper's Table 3: the link-metric estimation guidelines
/// distilled from the whole study. Exposed programmatically so hybrid
/// controllers can surface them in diagnostics.
struct Guideline {
  std::string_view policy;
  std::string_view guideline;
  std::string_view paper_section;
};

/// The complete Table 3 of the paper.
[[nodiscard]] std::span<const Guideline> guidelines();

}  // namespace efd::core

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/probing.hpp"
#include "src/plc/frame.hpp"

namespace efd::core {

/// CSV export/import for measurement traces — the interchange format the
/// toolkit uses to hand data to plotting scripts (the paper's figures are
/// exactly such traces). Columns use SI base units (seconds, Mb/s).

/// Write a BLE trace: header `t_s,ble_mbps`.
void write_ble_trace_csv(std::ostream& out, const std::vector<BleSample>& trace);

/// Parse a BLE trace written by `write_ble_trace_csv`. Throws
/// `std::runtime_error` on malformed input.
[[nodiscard]] std::vector<BleSample> read_ble_trace_csv(std::istream& in);

/// Write sniffer SoF records: header
/// `t_start_s,t_end_s,src,dst,slot,ble_mbps,n_pbs,n_symbols,robo,sound,bcast`.
void write_sof_records_csv(std::ostream& out,
                           const std::vector<plc::SofRecord>& records);

/// Convenience: render a trace to a string (tests, logging).
[[nodiscard]] std::string ble_trace_to_string(const std::vector<BleSample>& trace);

}  // namespace efd::core

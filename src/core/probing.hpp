#pragma once

#include <vector>

#include "src/core/classifier.hpp"
#include "src/sim/time.hpp"

namespace efd::core {

/// A (time, BLE) sample of a link trace, typically at the 50 ms MM cadence.
struct BleSample {
  sim::Time t;
  double ble_mbps;
};

/// Probing policies for link-metric estimation (paper §7.3): how often to
/// spend a probe on a link. The paper's contribution is the quality-adaptive
/// policy — bad links are probed at the base interval, average links 8x
/// slower, good links 16x slower — cutting overhead ~32 % at almost no
/// accuracy cost (Fig. 19).
class ProbingPolicy {
 public:
  virtual ~ProbingPolicy() = default;
  /// Probe interval for a link whose (last known) average BLE is given.
  [[nodiscard]] virtual sim::Time interval(double average_ble_mbps) const = 0;
};

class FixedIntervalPolicy final : public ProbingPolicy {
 public:
  explicit FixedIntervalPolicy(sim::Time interval) : interval_(interval) {}
  [[nodiscard]] sim::Time interval(double) const override { return interval_; }

 private:
  sim::Time interval_;
};

class QualityAdaptivePolicy final : public ProbingPolicy {
 public:
  struct Config {
    sim::Time base = sim::seconds(5);  ///< bad links
    int average_factor = 8;            ///< average links probe 8x slower
    int good_factor = 16;              ///< good links probe 16x slower
    LinkQualityClassifier classifier;
  };

  QualityAdaptivePolicy() : QualityAdaptivePolicy(Config{}) {}
  explicit QualityAdaptivePolicy(Config config) : cfg_(config) {}

  [[nodiscard]] sim::Time interval(double average_ble_mbps) const override;

 private:
  Config cfg_;
};

/// Replays a BLE trace under a probing policy and scores it the way the
/// paper's §7.3 does: the estimate at probe time t is BLE_t; the "exact"
/// capacity is the mean of the trace until the next probe; the error is
/// their absolute difference. Also counts probes (overhead).
struct ProbingEvaluation {
  std::vector<double> errors_mbps;  ///< one per probing interval
  std::uint64_t probes = 0;

  [[nodiscard]] double mean_error() const;
};

[[nodiscard]] ProbingEvaluation evaluate_policy(const std::vector<BleSample>& trace,
                                                const ProbingPolicy& policy);

}  // namespace efd::core

#include "src/core/sampler.hpp"

#include <algorithm>
#include <cmath>

namespace efd::core {

namespace {

/// Binomial draw for PB errors: exact sampling is wasteful for thousands of
/// PBs per step; use a normal approximation above a small-n cutoff.
int draw_errors(sim::Rng& rng, int n, double p) {
  if (p <= 0.0 || n <= 0) return 0;
  if (p >= 1.0) return n;
  if (n <= 32) {
    int errors = 0;
    for (int i = 0; i < n; ++i) errors += rng.bernoulli(p) ? 1 : 0;
    return errors;
  }
  const double mean = n * p;
  const double sd = std::sqrt(n * p * (1.0 - p));
  const int e = static_cast<int>(std::lround(rng.normal(mean, sd)));
  return std::clamp(e, 0, n);
}

}  // namespace

LinkTraceSampler::LinkTraceSampler(const plc::PlcChannel& channel,
                                   plc::ChannelEstimator& estimator,
                                   net::StationId tx, net::StationId rx, sim::Rng rng,
                                   Config config)
    : channel_(channel),
      estimator_(estimator),
      tx_(tx),
      rx_(rx),
      rng_(rng),
      cfg_(config) {}

double LinkTraceSampler::step(sim::Time now) {
  if (!estimator_.has_tone_maps()) estimator_.on_sound_frame(now);
  const int slots = channel_.phy().tone_map_slots;
  const int pbs_per_slot = std::max(1, cfg_.pbs_per_step / slots);
  for (int s = 0; s < slots; ++s) {
    const plc::ToneMap& tm =
        estimator_.tone_maps().slots[static_cast<std::size_t>(s)];
    const double p = channel_.pb_error_probability(tm, tx_, rx_, s, now);
    // Batch the slot's traffic into a handful of statistically equivalent
    // frame reports — the estimator consumes PB counts, so a long step need
    // not be replayed frame by frame.
    const int frames = std::clamp(
        pbs_per_slot * 8 / (cfg_.symbols_per_frame * 10), 1, 6);
    const int pbs_per_frame = std::max(1, pbs_per_slot / frames);
    for (int f = 0; f < frames; ++f) {
      const int errors = draw_errors(rng_, pbs_per_frame, p);
      estimator_.on_frame_received(s, pbs_per_frame, errors,
                                   cfg_.symbols_per_frame, now);
    }
  }
  return estimator_.average_ble_mbps();
}

std::vector<BleSample> LinkTraceSampler::run(sim::Time from, sim::Time to) {
  std::vector<BleSample> trace;
  trace.reserve(static_cast<std::size_t>((to - from) / cfg_.step) + 1);
  for (sim::Time t = from; t < to; t += cfg_.step) {
    trace.push_back({t, step(t)});
  }
  return trace;
}

ProbeTraceSampler::ProbeTraceSampler(const plc::PlcChannel& channel,
                                     plc::ChannelEstimator& estimator,
                                     net::StationId tx, net::StationId rx,
                                     sim::Rng rng, Config config)
    : channel_(channel),
      estimator_(estimator),
      tx_(tx),
      rx_(rx),
      rng_(rng),
      cfg_(config) {}

double ProbeTraceSampler::step(sim::Time now) {
  if (!started_) {
    last_ = now;
    started_ = true;
  }
  const double elapsed = (now - last_).seconds();
  const int probes = static_cast<int>(std::floor(elapsed * cfg_.packets_per_second));
  if (probes <= 0) return estimator_.average_ble_mbps();
  last_ += sim::seconds(probes / cfg_.packets_per_second);

  const plc::PhyParams& phy = channel_.phy();
  const auto pb_payload =
      static_cast<std::size_t>(plc::PhyParams::kPbPayloadBytes);
  const int pbs = std::max(
      1, static_cast<int>((cfg_.packet_bytes + pb_payload - 1) / pb_payload));
  for (int k = 0; k < probes; ++k) {
    if (!estimator_.has_tone_maps()) estimator_.on_sound_frame(now);
    // Probes land at an arbitrary point of the mains cycle.
    const int slot = static_cast<int>(rng_.uniform_int(0, phy.tone_map_slots - 1));
    const plc::ToneMap& tm =
        estimator_.tone_maps().slots[static_cast<std::size_t>(slot)];
    const double bits_per_symbol = std::max(
        1.0, tm.phy_rate_mbps() * phy.symbol.us() * phy.pb_wire_efficiency);
    const int n_symbols = std::max(
        1, static_cast<int>(std::ceil(pbs * plc::PhyParams::pb_bits() / bits_per_symbol)));
    const double p = channel_.pb_error_probability(tm, tx_, rx_, slot, now);
    const int errors = draw_errors(rng_, pbs, p);
    estimator_.on_frame_received(slot, pbs, errors, n_symbols, now);
  }
  return estimator_.average_ble_mbps();
}

std::vector<BleSample> ProbeTraceSampler::run(sim::Time from, sim::Time to,
                                              sim::Time sample_every) {
  std::vector<BleSample> trace;
  for (sim::Time t = from; t < to; t += sample_every) {
    trace.push_back({t, step(t)});
  }
  return trace;
}

}  // namespace efd::core

#pragma once

namespace efd::core {

/// Quality classes for PLC links, derived from average BLE. The paper's
/// §7.3 heuristic for its adaptive probing method: bad links have BLE below
/// 60 Mb/s, good links above 100 Mb/s, average links in between. Thresholds
/// are configurable because the classification depends on the PLC
/// generation (§6.2 footnote).
enum class LinkQuality { kBad, kAverage, kGood };

class LinkQualityClassifier {
 public:
  struct Thresholds {
    double bad_below_mbps = 60.0;
    double good_above_mbps = 100.0;
  };

  LinkQualityClassifier() = default;
  explicit LinkQualityClassifier(Thresholds t) : t_(t) {}

  [[nodiscard]] LinkQuality classify(double average_ble_mbps) const {
    if (average_ble_mbps < t_.bad_below_mbps) return LinkQuality::kBad;
    if (average_ble_mbps > t_.good_above_mbps) return LinkQuality::kGood;
    return LinkQuality::kAverage;
  }

  [[nodiscard]] const Thresholds& thresholds() const { return t_; }

 private:
  Thresholds t_;
};

}  // namespace efd::core

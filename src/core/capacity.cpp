#include "src/core/capacity.hpp"

namespace efd::core {

void MmPoller::refresh(sim::Time now) {
  if (have_ && now - last_ < kMinInterval) return;
  ble_ = network_.mm_average_ble(tx_, rx_);
  pberr_ = network_.mm_pberr(tx_, rx_);
  last_ = now;
  have_ = true;
  ++mm_count_;
}

double MmPoller::average_ble_mbps(sim::Time now) {
  refresh(now);
  return ble_;
}

double MmPoller::pberr(sim::Time now) {
  refresh(now);
  return pberr_;
}

}  // namespace efd::core

#pragma once

// Robust parsing for the small family of EFD_* "count" environment
// variables (EFD_BENCH_THREADS, EFD_SHARDS, EFD_PROPTEST_N, ...). These are
// typed by hand in CI YAML and shell one-liners, so empty strings, stray
// whitespace, negative numbers and plain garbage must all degrade to the
// caller's fallback instead of UB (atoi on "9999999999999") or a throw.

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace efd::core {

/// Parse environment variable `name` as a positive decimal count.
/// Returns `fallback` when the variable is unset, empty, non-numeric, has
/// trailing garbage, overflows long, or is zero/negative; values above
/// `max_value` clamp to `max_value`. Never throws.
[[nodiscard]] inline int env_count(const char* name, int fallback,
                                   int max_value = 1 << 20) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const char* p = raw;
  while (std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  if (*p == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(p, &end, 10);
  if (end == p || errno == ERANGE) return fallback;
  while (std::isspace(static_cast<unsigned char>(*end)) != 0) ++end;
  if (*end != '\0') return fallback;
  if (v <= 0) return fallback;
  if (v > static_cast<long>(max_value)) return max_value;
  return static_cast<int>(v);
}

}  // namespace efd::core

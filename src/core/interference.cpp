#include "src/core/interference.hpp"

#include <algorithm>

namespace efd::core {

void InterferenceDetector::on_sample(double ble_mbps, double pberr, sim::Time) {
  // Track the recent best BLE with a slow leak, so a genuine long-term
  // channel degradation eventually stops reading as "decline".
  ble_peak_ = std::max(ble_mbps, ble_peak_ * 0.995);

  const bool errors_persist = pberr > cfg_.pberr_floor;
  const bool ble_declined =
      ble_peak_ > 0.0 && ble_mbps < (1.0 - cfg_.ble_decline) * ble_peak_;
  if (errors_persist && ble_declined) {
    ++streak_;
  } else {
    streak_ = 0;
  }
  suspected_ = streak_ >= cfg_.confirm_samples;
  if (suspected_) ++flagged_;
}

void InterferenceDetector::reset() {
  ble_peak_ = 0.0;
  streak_ = 0;
  suspected_ = false;
  flagged_ = 0;
}

}  // namespace efd::core

#pragma once

#include <unordered_map>
#include <vector>

#include "src/net/packet.hpp"
#include "src/sim/time.hpp"

namespace efd::wifi {

/// Indoor 802.11n channel between stations placed on a floor plan:
/// log-distance path loss with per-link shadowing, plus fast fading and
/// interference bursts. The model is calibrated against the paper's §4
/// comparison: connectivity dies beyond ~35 m of office walls, and the
/// short-timescale variability is much higher than PLC's (σ_W up to
/// ~19 Mb/s vs σ_P below 4 Mb/s in Fig. 3).
class WifiChannel {
 public:
  struct Config {
    double tx_power_dbm = 17.0;
    double noise_floor_dbm = -92.0;
    /// Log-distance exponent; 3.85 models an office floor with many walls.
    double path_loss_exponent = 3.85;
    double path_loss_ref_db = 47.0;   ///< at 1 m, 2.4/5 GHz indoor
    double shadowing_sigma_db = 4.0;  ///< per-link lognormal shadowing
    /// Fast-fading swing (dB) and its time scale.
    double fading_db = 7.0;
    sim::Time fading_scale = sim::milliseconds(120);
    /// Occasional deep-fade / interference bursts: rate and depth.
    double burst_rate_hz = 0.15;
    double burst_depth_db = 18.0;
    sim::Time burst_duration = sim::milliseconds(300);
    /// Per-direction receiver noise-figure skew (small WiFi asymmetry, §5).
    double asymmetry_sigma_db = 1.0;
    std::uint64_t seed = 0x31f1ULL;
  };

  explicit WifiChannel(Config config) : cfg_(config) {}
  WifiChannel() : WifiChannel(Config{}) {}

  /// Place station `id` at floor coordinates (meters).
  void place_station(net::StationId id, double x, double y);

  /// Add a vertical obstruction (concrete core / firewall) at `x_m`: links
  /// whose endpoints straddle it lose `loss_db`. This is what separates the
  /// two wings of the paper's floor so thoroughly that no cross-wing pair
  /// holds a WiFi link (§4.1: every WiFi-connected pair is PLC-connected).
  void add_wall(double x_m, double loss_db);

  [[nodiscard]] double distance_m(net::StationId a, net::StationId b) const;

  /// Instantaneous link SNR (dB) at the receiver, direction a -> b.
  [[nodiscard]] double snr_db(net::StationId a, net::StationId b, sim::Time t) const;

  /// SNR without the fast-fading term (what long-term averaging sees).
  [[nodiscard]] double mean_snr_db(net::StationId a, net::StationId b) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Pos { double x, y; };
  struct Wall { double x; double loss_db; };
  Config cfg_;
  std::unordered_map<net::StationId, Pos> pos_;
  std::vector<Wall> walls_;
};

}  // namespace efd::wifi

#pragma once

namespace efd::wifi {

/// 802.11n modulation-and-coding-scheme table for 20 MHz channels, long
/// guard interval, up to 2 spatial streams — the paper's configuration
/// (§4.1 footnote: "2 spatial streams, 20 MHz, max PHY rate 130 Mbps").
/// Contrary to PLC, one MCS applies to *all* carriers (§2.1), which is why
/// WiFi reacts to narrowband trouble by lowering the whole link rate.
struct Mcs {
  static constexpr int kCount = 16;  ///< MCS 0-15

  /// PHY rate in Mb/s for the given index.
  static double rate_mbps(int index);

  /// Minimum link SNR (dB) at which the index sustains a low error rate.
  static double required_snr_db(int index);

  /// Number of spatial streams used by the index (1 for 0-7, 2 for 8-15).
  static int streams(int index) { return index < 8 ? 1 : 2; }

  /// Highest index whose threshold is at or below `snr_db`, or -1 when even
  /// MCS 0 cannot be sustained (no connectivity — a "blind spot").
  static int pick(double snr_db);

  /// Frame/MPDU error probability when using `index` at actual SNR.
  static double mpdu_error_probability(int index, double snr_db);
};

}  // namespace efd::wifi

#include "src/wifi/mac.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/obs/obs.hpp"

namespace efd::wifi {

// --------------------------------------------------------------------------
// WifiMedium
// --------------------------------------------------------------------------

WifiMedium::WifiMedium(sim::Simulator& simulator, const WifiChannel& channel,
                       sim::Rng rng)
    : sim_(simulator), channel_(channel), rng_(rng) {}

void WifiMedium::register_mac(WifiMac& mac) { macs_.push_back(&mac); }

void WifiMedium::add_mcs_listener(std::function<void(const McsRecord&)> fn) {
  listeners_.push_back(std::move(fn));
}

void WifiMedium::notify_ready(WifiMac&) {
  if (!busy_ && !contention_scheduled_) schedule_contention();
}

void WifiMedium::schedule_contention() {
  contention_scheduled_ = true;
  sim_.after_inline(kDifs, [this] { resolve_contention(); });
}

void WifiMedium::resolve_contention() {
  contention_scheduled_ = false;
  if (busy_) return;
  std::vector<WifiMac*> contenders;
  for (WifiMac* m : macs_) {
    if (m->has_pending()) contenders.push_back(m);
  }
  if (contenders.empty()) return;

  int min_backoff = std::numeric_limits<int>::max();
  for (WifiMac* m : contenders) {
    min_backoff = std::min(min_backoff, m->current_backoff());
  }
  std::vector<WifiMac*> winners;
  for (WifiMac* m : contenders) {
    if (m->current_backoff() == min_backoff) {
      winners.push_back(m);
    } else {
      m->on_medium_busy(min_backoff);
    }
  }
  busy_ = true;
  const sim::Time tx_start = sim_.now() + (min_backoff + 1) * kSlot;
  sim_.at_inline(tx_start, [this, winners] {
    // Fault injection can empty a winner's queue (modem reset) or stall it
    // between the backoff win and the preamble; skip those senders. The
    // no-fault path never takes the branch.
    std::vector<WifiFrame> frames;
    std::vector<WifiMac*> senders;
    frames.reserve(winners.size());
    senders.reserve(winners.size());
    for (WifiMac* m : winners) {
      if (!m->has_pending()) continue;
      senders.push_back(m);
      frames.push_back(m->build_frame(sim_.now()));
    }
    if (frames.empty()) {
      busy_ = false;
      for (WifiMac* m : macs_) {
        if (m->has_pending()) {
          schedule_contention();
          break;
        }
      }
      return;
    }
    finish_round(std::move(frames), std::move(senders));
  });
}

void WifiMedium::finish_round(std::vector<WifiFrame> frames,
                              std::vector<WifiMac*> senders) {
  const bool collision = frames.size() > 1;
  if (collision) {
    ++collisions_;
    EFD_COUNTER_INC("wifi.medium.collisions");
  }

  sim::Time payload_end = frames[0].end;
  for (const WifiFrame& f : frames) payload_end = std::max(payload_end, f.end);

  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    const WifiFrame& f = frames[fi];
    WifiMac* sender = senders[fi];
    for (const auto& fn : listeners_) {
      fn(McsRecord{f.start, f.src, f.dst, f.mcs, Mcs::rate_mbps(f.mcs)});
    }

    WifiMac* rx_mac = nullptr;
    for (WifiMac* m : macs_) {
      if (m->id() == f.dst) {
        rx_mac = m;
        break;
      }
    }
    bool decodable = rx_mac != nullptr;
    if (decodable && collision) {
      const double own = channel_.snr_db(f.src, f.dst, f.start);
      double worst = -1e9;
      for (std::size_t gi = 0; gi < frames.size(); ++gi) {
        if (gi == fi) continue;
        worst = std::max(worst, channel_.snr_db(frames[gi].src, f.dst, f.start));
      }
      decodable = own - worst >= kCaptureThresholdDb;
    }

    if (decodable) {
      const double snr = channel_.snr_db(f.src, f.dst, f.start) - jam_db_;
      const double p = Mcs::mpdu_error_probability(f.mcs, snr);
      std::vector<int> failed;
      for (std::size_t i = 0; i < f.mpdus.size(); ++i) {
        if (rng_.bernoulli(p)) failed.push_back(static_cast<int>(i));
      }
      rx_mac->on_frame_received(f, failed, payload_end);
      const sim::Time ack_end = payload_end + kSifs + sender->config().blockack;
      sim_.at(ack_end, [sender, f, failed] { sender->on_block_ack(f, failed); });
    } else {
      const sim::Time timeout = payload_end + kSifs + sender->config().blockack;
      sim_.at(timeout, [sender, f] { sender->on_no_ack(f); });
    }
  }

  const sim::Time idle_at =
      payload_end + kSifs + senders[0]->config().blockack;
  sim_.at_inline(idle_at, [this] {
    busy_ = false;
    for (WifiMac* m : macs_) {
      if (m->has_pending()) {
        schedule_contention();
        break;
      }
    }
  });
}

// --------------------------------------------------------------------------
// WifiMac
// --------------------------------------------------------------------------

WifiMac::WifiMac(sim::Simulator& simulator, WifiMedium& medium,
                 const WifiChannel& channel, net::StationId self, sim::Rng rng,
                 Config config)
    : sim_(simulator),
      medium_(medium),
      channel_(channel),
      self_(self),
      rng_(rng),
      cfg_(config),
      cw_(config.cw_min) {}

bool WifiMac::enqueue(const net::Packet& p) {
  if (queue_.size() >= cfg_.queue_limit) {
    ++drops_;
    return false;
  }
  queue_.push_back(p);
  retry_counts_.push_back(0);
  if (queue_.size() == 1) medium_.notify_ready(*this);
  return true;
}

void WifiMac::redraw_backoff() {
  backoff_ = static_cast<int>(rng_.uniform_int(0, cw_ - 1));
}

int WifiMac::current_backoff() {
  if (backoff_ < 0) redraw_backoff();
  return backoff_;
}

void WifiMac::on_medium_busy(int slots_elapsed) {
  // 802.11: the counter freezes during busy and resumes; no stage change.
  if (backoff_ >= 0) backoff_ = std::max(0, backoff_ - slots_elapsed);
}

WifiFrame WifiMac::build_frame(sim::Time now) {
  assert(!queue_.empty());
  WifiFrame f;
  f.src = self_;
  f.dst = queue_.front().dst;
  f.start = now;

  // Rate control: a stale, noisy view of the receiver SNR (the transmitter
  // learns the channel from acked history, not from the instant of TX).
  const sim::Time stale_at =
      now >= cfg_.snr_staleness ? now - cfg_.snr_staleness : sim::Time{};
  const double est_snr = channel_.snr_db(self_, f.dst, stale_at) +
                         rng_.normal(0.0, cfg_.snr_noise_db);
  int mcs = Mcs::pick(est_snr - cfg_.margin_db);
  if (mcs < 0) mcs = 0;  // no sustainable MCS: transmit robust and fail
  f.mcs = mcs;
  EFD_COUNTER_INC("wifi.mac.mcs_selections");
  EFD_HISTO_OBSERVE("wifi.mac.mcs_index", mcs);

  const double rate_mbps = Mcs::rate_mbps(mcs);
  sim::Time airtime = cfg_.preamble;
  while (!queue_.empty() && static_cast<int>(f.mpdus.size()) < cfg_.max_ampdu) {
    if (queue_.front().dst != f.dst) break;
    const auto mpdu_air = sim::microseconds(
        static_cast<double>(queue_.front().size_bytes + 40) * 8.0 / rate_mbps);
    if (!f.mpdus.empty() && airtime + mpdu_air > cfg_.max_airtime) break;
    airtime += mpdu_air;
    f.mpdus.push_back(queue_.front());
    f.retries.push_back(retry_counts_.front());
    queue_.pop_front();
    retry_counts_.pop_front();
  }
  f.end = now + airtime;
  EFD_COUNTER_INC("wifi.mac.frames_tx");
  EFD_HISTO_OBSERVE("wifi.mac.ampdu_mpdus", f.mpdus.size());
  return f;
}

void WifiMac::on_block_ack(const WifiFrame& frame, const std::vector<int>& failed) {
  cw_ = cfg_.cw_min;
  backoff_ = -1;
  EFD_COUNTER_ADD("wifi.mac.mpdu_errors", failed.size());
  for (auto it = failed.rbegin(); it != failed.rend(); ++it) {
    const auto i = static_cast<std::size_t>(*it);
    if (frame.retries[i] >= cfg_.max_retries) {
      ++drops_;
      EFD_COUNTER_INC("wifi.mac.drops");
      continue;
    }
    EFD_COUNTER_INC("wifi.mac.retries");
    queue_.push_front(frame.mpdus[i]);
    retry_counts_.push_front(frame.retries[i] + 1);
  }
  if (!queue_.empty()) medium_.notify_ready(*this);
}

void WifiMac::on_no_ack(const WifiFrame& frame) {
  EFD_COUNTER_INC("wifi.mac.no_acks");
  cw_ = std::min(cw_ * 2, cfg_.cw_max);
  for (auto i = frame.mpdus.size(); i-- > 0;) {
    if (frame.retries[i] >= cfg_.max_retries) {
      ++drops_;
      EFD_COUNTER_INC("wifi.mac.drops");
      continue;
    }
    EFD_COUNTER_INC("wifi.mac.retries");
    queue_.push_front(frame.mpdus[i]);
    retry_counts_.push_front(frame.retries[i] + 1);
  }
  redraw_backoff();
  if (!queue_.empty()) medium_.notify_ready(*this);
}

void WifiMac::on_frame_received(const WifiFrame& frame, const std::vector<int>& failed,
                                sim::Time now) {
  std::vector<bool> bad(frame.mpdus.size(), false);
  for (int i : failed) bad[static_cast<std::size_t>(i)] = true;
  for (std::size_t i = 0; i < frame.mpdus.size(); ++i) {
    if (bad[i]) continue;
    ++delivered_;
    EFD_COUNTER_INC("wifi.mac.packets_delivered");
    if (rx_) rx_(frame.mpdus[i], now);
  }
}

}  // namespace efd::wifi

#pragma once

#include <map>
#include <memory>

#include "src/wifi/mac.hpp"

namespace efd::wifi {

/// A WiFi BSS-like deployment: one channel, one contention domain, one MAC
/// per station. Mirrors the paper's setup — every board carries an Atheros
/// AR9220 interface on a clean frequency (§4.1), so the only interference
/// is internal plus the channel's own burst model.
class WifiNetwork {
 public:
  struct Config {
    WifiChannel::Config channel;
    WifiMac::Config mac;
  };

  WifiNetwork(sim::Simulator& simulator, sim::Rng rng, Config config);
  WifiNetwork(sim::Simulator& simulator, sim::Rng rng)
      : WifiNetwork(simulator, rng, Config{}) {}

  /// Create a station at floor position (x, y) meters.
  WifiMac& add_station(net::StationId id, double x, double y);

  [[nodiscard]] WifiMac& station(net::StationId id);
  [[nodiscard]] WifiChannel& channel() { return channel_; }
  [[nodiscard]] const WifiChannel& channel() const { return channel_; }
  [[nodiscard]] WifiMedium& medium() { return medium_; }

  /// Capacity estimate from the MCS in the frame control (Table 2): PHY
  /// rate of the MCS the transmitter currently selects for the link.
  [[nodiscard]] double mcs_capacity_mbps(net::StationId a, net::StationId b,
                                         sim::Time t) const;

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  Config cfg_;
  WifiChannel channel_;
  WifiMedium medium_;
  std::map<net::StationId, std::unique_ptr<WifiMac>> stations_;
  std::uint64_t rng_streams_ = 0;
};

}  // namespace efd::wifi

#pragma once

#include <map>
#include <memory>

#include "src/wifi/mac.hpp"

namespace efd::wifi {

/// A WiFi BSS-like deployment: one channel, one contention domain, one MAC
/// per station. Mirrors the paper's setup — every board carries an Atheros
/// AR9220 interface on a clean frequency (§4.1), so the only interference
/// is internal plus the channel's own burst model.
class WifiNetwork {
 public:
  struct Config {
    WifiChannel::Config channel;
    WifiMac::Config mac;
  };

  WifiNetwork(sim::Simulator& simulator, sim::Rng rng, Config config);
  WifiNetwork(sim::Simulator& simulator, sim::Rng rng)
      : WifiNetwork(simulator, rng, Config{}) {}

  /// Create a station at floor position (x, y) meters.
  WifiMac& add_station(net::StationId id, double x, double y);

  [[nodiscard]] WifiMac& station(net::StationId id);
  [[nodiscard]] WifiChannel& channel() { return channel_; }
  [[nodiscard]] const WifiChannel& channel() const { return channel_; }
  [[nodiscard]] WifiMedium& medium() { return medium_; }

  /// Capacity estimate from the MCS in the frame control (Table 2): PHY
  /// rate of the MCS the transmitter currently selects for the link.
  [[nodiscard]] double mcs_capacity_mbps(net::StationId a, net::StationId b,
                                         sim::Time t) const;

  /// Boundary gateway: the station bridging this contention domain to
  /// another board (the building-to-building bridge of the campus layer).
  /// The channel stays cell-local; this is the one explicit crossing.
  void set_boundary_gateway(net::StationId id) { gateway_ = id; }
  [[nodiscard]] net::StationId boundary_gateway() const { return gateway_; }

  /// Ingress half of a crossing: enqueue at the gateway MAC, which then
  /// contends for this cell's medium normally.
  bool inject_boundary(const net::Packet& p);

  void record_boundary_egress() { ++boundary_egress_; }
  [[nodiscard]] std::uint64_t boundary_ingress() const { return boundary_ingress_; }
  [[nodiscard]] std::uint64_t boundary_egress() const { return boundary_egress_; }

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  Config cfg_;
  WifiChannel channel_;
  WifiMedium medium_;
  std::map<net::StationId, std::unique_ptr<WifiMac>> stations_;
  net::StationId gateway_ = -1;
  std::uint64_t boundary_ingress_ = 0;
  std::uint64_t boundary_egress_ = 0;
  std::uint64_t rng_streams_ = 0;
};

}  // namespace efd::wifi

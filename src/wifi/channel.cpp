#include "src/wifi/channel.hpp"

#include <cassert>
#include <cmath>

#include "src/grid/value_noise.hpp"

namespace efd::wifi {

namespace {
std::uint64_t link_stream(std::uint64_t seed, net::StationId a, net::StationId b) {
  return seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}
std::uint64_t pair_stream(std::uint64_t seed, net::StationId a, net::StationId b) {
  // Symmetric in (a, b): shadowing and fading affect both directions alike.
  if (a > b) std::swap(a, b);
  return link_stream(seed, a, b);
}
}  // namespace

void WifiChannel::place_station(net::StationId id, double x, double y) {
  pos_[id] = {x, y};
}

void WifiChannel::add_wall(double x_m, double loss_db) {
  walls_.push_back({x_m, loss_db});
}

double WifiChannel::distance_m(net::StationId a, net::StationId b) const {
  const auto ia = pos_.find(a);
  const auto ib = pos_.find(b);
  assert(ia != pos_.end() && ib != pos_.end() && "station not placed");
  const double dx = ia->second.x - ib->second.x;
  const double dy = ia->second.y - ib->second.y;
  return std::max(1.0, std::hypot(dx, dy));
}

double WifiChannel::mean_snr_db(net::StationId a, net::StationId b) const {
  const double d = distance_m(a, b);
  double pl =
      cfg_.path_loss_ref_db + 10.0 * cfg_.path_loss_exponent * std::log10(d);
  const double xa = pos_.at(a).x;
  const double xb = pos_.at(b).x;
  for (const Wall& w : walls_) {
    if ((xa - w.x) * (xb - w.x) < 0.0) pl += w.loss_db;
  }
  // Fixed per-pair shadowing (walls, furniture) — symmetric.
  const double shadow =
      cfg_.shadowing_sigma_db *
      (2.0 * grid::ValueNoise::hash01(pair_stream(cfg_.seed, a, b), 7) - 1.0) * 1.5;
  // Small direction-dependent skew (receiver noise figure): WiFi links are
  // mildly asymmetric (§5), far less than PLC.
  const double skew =
      cfg_.asymmetry_sigma_db *
      (2.0 * grid::ValueNoise::hash01(link_stream(cfg_.seed ^ 0xa5, a, b), 9) - 1.0);
  return cfg_.tx_power_dbm - pl - cfg_.noise_floor_dbm + shadow + skew;
}

double WifiChannel::snr_db(net::StationId a, net::StationId b, sim::Time t) const {
  const std::uint64_t fade_seed = pair_stream(cfg_.seed ^ 0xfade, a, b);
  const double x = t.seconds() / cfg_.fading_scale.seconds();
  double snr = mean_snr_db(a, b) +
               cfg_.fading_db * grid::ValueNoise::fractal(fade_seed, x, 3);
  // Interference / deep-fade bursts in fixed windows.
  const auto window = cfg_.burst_duration;
  const auto idx = t.ns() / window.ns();
  const double p = cfg_.burst_rate_hz * window.seconds();
  if (grid::ValueNoise::hash01(fade_seed ^ 0xb1157ULL, idx) < p) {
    snr -= cfg_.burst_depth_db;
  }
  return snr;
}

}  // namespace efd::wifi

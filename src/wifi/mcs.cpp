#include "src/wifi/mcs.hpp"

#include <algorithm>
#include <cmath>

namespace efd::wifi {

namespace {
// 20 MHz, 800 ns GI. MCS 8-15 are the two-stream duplicates of 0-7.
constexpr double kRates[Mcs::kCount] = {
    6.5,  13.0, 19.5, 26.0, 39.0,  52.0,  58.5,  65.0,
    13.0, 26.0, 39.0, 52.0, 78.0, 104.0, 117.0, 130.0,
};
// Receiver sensitivity ladder (dB SNR). Two-stream indices need a few dB
// more than their single-stream twins for the same constellation.
constexpr double kSnr[Mcs::kCount] = {
    3.0,  6.0,  9.0,  12.0, 15.5, 19.5, 21.5, 23.5,
    6.0,  9.0,  12.0, 15.0, 18.5, 22.5, 24.5, 26.5,
};
}  // namespace

double Mcs::rate_mbps(int index) { return kRates[index]; }

double Mcs::required_snr_db(int index) { return kSnr[index]; }

int Mcs::pick(double snr_db) {
  int best = -1;
  double best_rate = 0.0;
  for (int i = 0; i < kCount; ++i) {
    if (snr_db >= kSnr[i] && kRates[i] > best_rate) {
      best = i;
      best_rate = kRates[i];
    }
  }
  return best;
}

double Mcs::mpdu_error_probability(int index, double snr_db) {
  // Logistic waterfall around the sensitivity threshold: ~2 dB of margin
  // makes an MPDU safe, ~3 dB of deficit loses nearly all of them.
  const double margin = snr_db - kSnr[index];
  return std::clamp(1.0 / (1.0 + std::exp(2.2 * margin)), 0.0, 1.0);
}

}  // namespace efd::wifi

#include "src/wifi/network.hpp"

#include <cassert>

namespace efd::wifi {

WifiNetwork::WifiNetwork(sim::Simulator& simulator, sim::Rng rng, Config config)
    : sim_(simulator),
      rng_(rng),
      cfg_(config),
      channel_(config.channel),
      medium_(simulator, channel_, rng.fork(0xf1ULL)) {}

WifiMac& WifiNetwork::add_station(net::StationId id, double x, double y) {
  assert(!stations_.contains(id));
  channel_.place_station(id, x, y);
  auto mac = std::make_unique<WifiMac>(sim_, medium_, channel_, id,
                                       rng_.fork(++rng_streams_), cfg_.mac);
  WifiMac& ref = *mac;
  medium_.register_mac(ref);
  stations_.emplace(id, std::move(mac));
  return ref;
}

WifiMac& WifiNetwork::station(net::StationId id) {
  const auto it = stations_.find(id);
  assert(it != stations_.end());
  return *it->second;
}

double WifiNetwork::mcs_capacity_mbps(net::StationId a, net::StationId b,
                                      sim::Time t) const {
  const int mcs = Mcs::pick(channel_.snr_db(a, b, t));
  return mcs < 0 ? 0.0 : Mcs::rate_mbps(mcs);
}

bool WifiNetwork::inject_boundary(const net::Packet& p) {
  assert(gateway_ >= 0 && "inject_boundary before set_boundary_gateway");
  ++boundary_ingress_;
  return station(gateway_).enqueue(p);
}

}  // namespace efd::wifi

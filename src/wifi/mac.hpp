#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/net/interface.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/simulator.hpp"
#include "src/wifi/channel.hpp"
#include "src/wifi/mcs.hpp"

namespace efd::wifi {

class WifiMac;

/// An 802.11 A-MPDU on the air.
struct WifiFrame {
  net::StationId src = 0;
  net::StationId dst = 0;
  std::vector<net::Packet> mpdus;
  std::vector<int> retries;  ///< per-MPDU retry count, parallel to mpdus
  int mcs = 0;
  sim::Time start;
  sim::Time end;
};

/// Record of a transmitted frame's rate selection — the 802.11n frame
/// control exposes the MCS index, which the paper uses as the WiFi capacity
/// metric (Table 2).
struct McsRecord {
  sim::Time t;
  net::StationId src = 0;
  net::StationId dst = 0;
  int mcs = 0;
  double phy_rate_mbps = 0.0;
};

/// 802.11 DCF contention domain (one BSS channel). Same tournament
/// arbitration as the PLC medium, but with the plain binary-exponential
/// backoff of 802.11: sensing the medium busy never escalates the stage —
/// the key MAC difference from IEEE 1901 (§2.2).
class WifiMedium {
 public:
  static constexpr sim::Time kSlot = sim::microseconds(9.0);
  static constexpr sim::Time kDifs = sim::microseconds(34.0);
  static constexpr sim::Time kSifs = sim::microseconds(16.0);
  static constexpr double kCaptureThresholdDb = 10.0;

  WifiMedium(sim::Simulator& simulator, const WifiChannel& channel, sim::Rng rng);

  void register_mac(WifiMac& mac);
  void notify_ready(WifiMac& mac);
  void add_mcs_listener(std::function<void(const McsRecord&)> fn);

  /// Fault injection (fault::FaultKind::kWifiJam): an interferer burst
  /// drops every receiver's effective SNR by `db` for the duration. Rate
  /// control keeps choosing MCSes from its stale, jam-blind estimate, so a
  /// deep jam turns into wholesale MPDU loss and retry exhaustion — the
  /// §4 "WiFi degrades under interference" failure mode. 0 restores the
  /// clean channel and the exact pre-fault RNG sequence.
  void set_jamming_db(double db) { jam_db_ = db; }
  [[nodiscard]] double jamming_db() const { return jam_db_; }

  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

 private:
  void schedule_contention();
  void resolve_contention();
  void finish_round(std::vector<WifiFrame> frames, std::vector<WifiMac*> senders);

  sim::Simulator& sim_;
  const WifiChannel& channel_;
  mutable sim::Rng rng_;
  std::vector<WifiMac*> macs_;
  std::vector<std::function<void(const McsRecord&)>> listeners_;
  bool busy_ = false;
  bool contention_scheduled_ = false;
  double jam_db_ = 0.0;  ///< injected interferer SNR penalty at receivers
  std::uint64_t collisions_ = 0;
};

/// 802.11n MAC for one station: DCF backoff, A-MPDU aggregation with
/// BlockAck and per-MPDU retransmission, and SNR-driven rate selection
/// (the transmitter tracks a slightly stale, noisy SNR estimate — which is
/// what makes WiFi capacity jumpy compared to PLC's per-carrier adaptation).
class WifiMac final : public net::Interface {
 public:
  struct Config {
    std::size_t queue_limit = 200;   ///< packets
    int cw_min = 16;
    int cw_max = 1024;
    int max_retries = 7;
    int max_ampdu = 16;              ///< MPDUs per aggregate
    sim::Time max_airtime = sim::milliseconds(2.0);
    sim::Time preamble = sim::microseconds(60.0);
    sim::Time blockack = sim::microseconds(80.0);
    /// Rate-control estimate: staleness and measurement noise.
    sim::Time snr_staleness = sim::milliseconds(50.0);
    double snr_noise_db = 1.2;
    double margin_db = 1.0;
  };

  WifiMac(sim::Simulator& simulator, WifiMedium& medium, const WifiChannel& channel,
          net::StationId self, sim::Rng rng, Config config);

  // net::Interface
  bool enqueue(const net::Packet& p) override;
  [[nodiscard]] std::size_t queue_length() const override { return queue_.size(); }
  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }
  void clear_queue() override {
    queue_.clear();
    retry_counts_.clear();
  }

  /// Remove and return the queued packets; failover salvages a dead
  /// interface's backlog through this.
  std::vector<net::Packet> take_queue() override {
    std::vector<net::Packet> out(queue_.begin(), queue_.end());
    queue_.clear();
    retry_counts_.clear();
    return out;
  }

  [[nodiscard]] net::StationId id() const { return self_; }

  // --- Fault hooks (fault::FaultInjector) ----------------------------------

  /// Queue-stall fault: enqueue still accepts, but the MAC stops contending
  /// until the stall clears.
  void set_stalled(bool stalled) {
    stalled_ = stalled;
    if (!stalled_ && !queue_.empty()) medium_.notify_ready(*this);
  }
  [[nodiscard]] bool stalled() const { return stalled_; }

  /// Modem reset fault: flush the queue and restart the backoff machinery.
  void reset_modem() {
    queue_.clear();
    retry_counts_.clear();
    cw_ = cfg_.cw_min;
    backoff_ = -1;
  }

  // Medium hooks.
  [[nodiscard]] bool has_pending() const { return !stalled_ && !queue_.empty(); }
  [[nodiscard]] int current_backoff();
  void on_medium_busy(int slots_elapsed);
  [[nodiscard]] WifiFrame build_frame(sim::Time now);
  void on_block_ack(const WifiFrame& frame, const std::vector<int>& failed);
  void on_no_ack(const WifiFrame& frame);
  void on_frame_received(const WifiFrame& frame, const std::vector<int>& failed,
                         sim::Time now);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return drops_; }

 private:
  void redraw_backoff();

  sim::Simulator& sim_;
  WifiMedium& medium_;
  const WifiChannel& channel_;
  net::StationId self_;
  sim::Rng rng_;
  Config cfg_;
  RxHandler rx_;

  std::deque<net::Packet> queue_;
  std::deque<int> retry_counts_;  ///< parallel to queue_
  bool stalled_ = false;
  int cw_ = 16;
  int backoff_ = -1;
  std::uint64_t delivered_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace efd::wifi

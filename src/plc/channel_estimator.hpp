#pragma once

#include <cstdint>

#include "src/plc/channel.hpp"
#include "src/plc/tone_map.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/time.hpp"

namespace efd::plc {

/// Receiver-side channel estimation for one directed link, in the style of
/// the vendor-specific algorithms IEEE 1901 leaves unspecified (§2.2). It
/// reproduces the observable behaviours the paper measures:
///
///  - sound frames bootstrap tone maps from a default ROBO start (§2.1);
///  - estimates converge as PBs accumulate — convergence time shrinks with
///    probe rate (Fig. 16) because per-carrier statistics need samples;
///  - statistics persist across probing pauses (Fig. 17);
///  - tone maps expire after 30 s or when the error rate crosses a
///    threshold (§2.1), so bad links retune often (Fig. 10/11);
///  - single-PB, single-symbol probe frames give the rate adaptation no
///    airtime gradient, clamping BLE at R1sym ≈ 89.4 Mb/s (Fig. 18);
///  - PB errors caused by collisions are indistinguishable from channel
///    errors, so capture-effect losses drag BLE down (Fig. 23).
class ChannelEstimator {
 public:
  struct Config {
    /// Bit-loading back-off over the constellation thresholds when the
    /// channel is perfectly known.
    double base_margin_db = 1.0;
    /// Initial estimation uncertainty (dB), decaying as samples accumulate.
    double uncertainty_db = 12.0;
    /// PB samples that halve-ish the uncertainty: penalty = A/sqrt(1+n/n0).
    double uncertainty_n0 = 400.0;
    /// Retune when the smoothed PB error rate exceeds this (high trigger).
    double error_retune_threshold = 0.03;
    /// Tone maps expire after this long (IEEE 1901: 30 s).
    sim::Time expiry = sim::seconds(30);
    /// EWMA weight for the measured PB error rate.
    double pberr_alpha = 0.2;
    /// Fraction of the instantaneous noise offset the estimator bakes into
    /// a retune. The chip's SNR statistics average over many frames, so the
    /// zero-mean cycle-scale jitter washes out: 0 by default. (Non-zero
    /// values model a naive estimator that trusts instantaneous SNR — kept
    /// for the estimator ablation bench.)
    double offset_tracking = 0.0;
    /// Extra margin added per error-triggered retune, decaying afterwards;
    /// produces the impulsive BLE drops and recovery of Fig. 10.
    double panic_margin_db = 0.8;
    double panic_decay = 0.8;  ///< multiplicative decay per clean retune
    /// Smoothed PBs-per-frame below which the single-PB clamp engages
    /// (Fig. 18: probes of at most one PB give the rate adaptation no
    /// airtime gradient above R1sym).
    double clamp_pb_threshold = 1.05;
    /// Re-estimate when the accumulated samples would shift the bit-loading
    /// margin by this much (the improvement path of the convergence in
    /// Fig. 16), at most once per `improve_min_interval`.
    double improve_margin_db = 0.8;
    sim::Time improve_min_interval = sim::milliseconds(500);
  };

  ChannelEstimator(const PlcChannel& channel, net::StationId tx, net::StationId rx,
                   sim::Rng rng, Config config);

  /// Process a sound frame: (re)estimate all slots from scratch if no valid
  /// tone maps exist.
  void on_sound_frame(sim::Time now);

  /// Account a received data frame: `n_pbs` physical blocks of which
  /// `n_errors` arrived corrupted, occupying `n_symbols` OFDM symbols in
  /// slot `slot`. Collisions that corrupt PBs are reported here too — the
  /// estimator cannot tell them apart (paper §8.2).
  void on_frame_received(int slot, int n_pbs, int n_errors, int n_symbols,
                         sim::Time now);

  /// Time-driven maintenance: expiry-based retunes. Called opportunistically
  /// by the MAC / samplers.
  void maybe_expire(sim::Time now);

  /// Device reset (paper §7.1 resets devices between runs): drops all
  /// accumulated statistics and tone maps.
  void reset(sim::Time now);

  /// Fault injection (fault::FaultKind::kPlcBlackout): the surge corrupted
  /// the negotiated tone maps — drop them (forcing the next frame back to
  /// a ROBO sound exchange, §2.1) but keep the accumulated per-carrier
  /// statistics, so re-estimation after the fault clears is fast.
  void invalidate_tone_maps(sim::Time now);

  [[nodiscard]] const ToneMapSet& tone_maps() const { return maps_; }
  [[nodiscard]] bool has_tone_maps() const { return has_maps_; }

  /// BLE of one slot / averaged over slots (Mb/s), as reported in SoF
  /// delimiters and by `int6krate`-style MMs.
  [[nodiscard]] double ble_mbps(int slot) const;
  [[nodiscard]] double average_ble_mbps() const { return maps_.average_ble_mbps(); }

  /// Smoothed measured PB error rate (`ampstat`-style MM). Unlike the
  /// internal trigger EWMA, this one is never relaxed at retunes: it is the
  /// error rate the chip's counters actually accumulated, which is why bad
  /// links report PBerr well above zero (paper Figs. 7, 22) even though
  /// each individual tone map is retuned away from its errors.
  [[nodiscard]] double measured_pberr() const { return ampstat_ewma_; }

  /// Total PB samples accumulated (diagnostic).
  [[nodiscard]] std::uint64_t pb_samples() const { return pb_samples_; }

  /// Number of tone-map updates so far (alpha statistic of Fig. 11 counts
  /// update inter-arrival times).
  [[nodiscard]] std::uint64_t update_count() const { return update_count_; }
  [[nodiscard]] sim::Time last_update() const { return last_update_; }

  /// One slot's bit-loading pass: perturbed-SNR measurement plus the
  /// goodput-maximizing margin ladder. Public so the micro benches can time
  /// the kernel in isolation; simulation code goes through retunes.
  [[nodiscard]] ToneMap build_slot_map(int slot, sim::Time now, double margin_db,
                                       std::uint32_t id) const;

 private:
  void retune(sim::Time now, bool error_triggered);
  [[nodiscard]] double current_uncertainty_db() const;
  static void clamp_to_rate(ToneMap& map, double rate_mbps, const PhyParams& phy,
                            std::uint32_t id);

  const PlcChannel& channel_;
  net::StationId tx_;
  net::StationId rx_;
  mutable sim::Rng rng_;
  Config cfg_;

  ToneMapSet maps_;
  bool has_maps_ = false;
  sim::Time created_{};         ///< when current maps were generated
  sim::Time last_update_{};
  std::uint64_t update_count_ = 0;
  std::uint32_t next_id_ = 1;

  std::uint64_t pb_samples_ = 0;
  /// Average expected PBerr of the current maps (aggressive loading runs at
  /// a nonzero design error rate; triggers compare against it).
  double expected_pberr_ = 0.0;
  double pberr_ewma_ = 0.0;
  /// Slow EWMA of the error rate: distinguishes sustained error pressure
  /// (capture-effect contention) from isolated bursts.
  double pberr_ewma_slow_ = 0.0;
  /// Reporting accumulator for `measured_pberr` (never relaxed).
  double ampstat_ewma_ = 0.0;
  double panic_margin_db_ = 0.0;
  double margin_at_last_retune_ = 0.0;
  double symbols_per_frame_ewma_ = 10.0;
  double pbs_per_frame_ewma_ = 10.0;
  /// Perturbed-SNR scratch reused across build_slot_map calls (estimators
  /// are per-link, so no aliasing between links).
  mutable std::vector<double> snr_scratch_;
};

}  // namespace efd::plc

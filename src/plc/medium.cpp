#include "src/plc/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/plc/mac.hpp"

namespace efd::plc {

PlcMedium::PlcMedium(sim::Simulator& simulator, const PlcChannel& channel, sim::Rng rng)
    : sim_(simulator), channel_(channel), rng_(rng) {}

void PlcMedium::register_mac(PlcMac& mac) { macs_.push_back(&mac); }

void PlcMedium::enable_beacons(sim::Time period, sim::Time duration) {
  assert(!beacons_enabled_ && "beacons already enabled");
  assert(duration < period);
  beacons_enabled_ = true;
  beacon_period_ = period;
  beacon_duration_ = duration;
  sim_.after_inline(period, [this] { beacon_tick(); });
}

void PlcMedium::beacon_tick() {
  ++beacons_;
  // The beacon region reserves the medium. If a frame exchange is in
  // flight, the region follows it: charge the hold to the next contention.
  // If the medium is idle, hold it busy for the beacon duration directly.
  if (busy_ || contention_scheduled_) {
    pending_beacon_hold_ += beacon_duration_;
  } else {
    busy_ = true;
    sim_.after_inline(beacon_duration_, [this] {
      busy_ = false;
      for (PlcMac* m : macs_) {
        if (m->has_pending()) {
          schedule_contention();
          break;
        }
      }
    });
  }
  sim_.after_inline(beacon_period_, [this] { beacon_tick(); });
}

PlcMedium::SnifferId PlcMedium::add_sniffer(
    std::function<void(const SofRecord&)> sniffer) {
  assert(sniffer && "sniffer callback must be callable");
  std::uint32_t slot;
  if (sniffer_free_.empty()) {
    slot = static_cast<std::uint32_t>(sniffers_.size());
    sniffers_.emplace_back();
  } else {
    slot = sniffer_free_.back();
    sniffer_free_.pop_back();
  }
  sniffers_[slot].fn = std::move(sniffer);
  ++sniffer_count_;
  return (static_cast<SnifferId>(sniffers_[slot].gen) << 32) | slot;
}

void PlcMedium::remove_sniffer(SnifferId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= sniffers_.size()) return;
  SnifferSlot& s = sniffers_[slot];
  if (s.gen != gen || !s.fn) return;  // stale or already-removed id
  s.fn = nullptr;
  ++s.gen;
  sniffer_free_.push_back(slot);
  --sniffer_count_;
}

void PlcMedium::notify_ready(PlcMac&) {
  if (!busy_ && !contention_scheduled_) schedule_contention();
}

void PlcMedium::schedule_contention() {
  contention_scheduled_ = true;
  const sim::Time delay = kCifs + pending_beacon_hold_;
  pending_beacon_hold_ = sim::Time{};
  sim_.after_inline(delay, [this] { resolve_contention(); });
}

void PlcMedium::emit_sof(const PlcFrame& f) const {
  if (sniffer_count_ == 0) return;
  const SofRecord rec{f.start,
                      f.end,
                      f.src,
                      f.dst,
                      f.slot,
                      f.ble_mbps,
                      static_cast<int>(f.pbs.size()),
                      f.n_symbols,
                      f.robo,
                      f.sound,
                      f.dst == net::kBroadcast};
  for (const SnifferSlot& s : sniffers_) {
    if (s.fn) s.fn(rec);
  }
}

void PlcMedium::resolve_contention() {
  contention_scheduled_ = false;
  if (busy_) return;

  std::vector<PlcMac*> contenders;
  for (PlcMac* m : macs_) {
    if (m->has_pending()) contenders.push_back(m);
  }
  if (contenders.empty()) return;

  // Priority resolution (the PRS0/PRS1 symbols of IEEE 1901): stations
  // signal their CA class and only the highest class proceeds to backoff.
  // Lower-priority stations defer without consuming backoff slots.
  int top_priority = 0;
  for (PlcMac* m : contenders) {
    top_priority = std::max(top_priority, m->current_priority());
  }
  std::erase_if(contenders, [&](PlcMac* m) {
    return m->current_priority() < top_priority;
  });

  // Then slotted backoff: the smallest counter transmits; equal minima
  // collide. Losers sensed `min_backoff` idle slots followed by a busy
  // medium (deferral-counter bookkeeping in the MAC).
  int min_backoff = std::numeric_limits<int>::max();
  for (PlcMac* m : contenders) {
    min_backoff = std::min(min_backoff, m->current_backoff());
  }
  std::vector<PlcMac*> winners;
  for (PlcMac* m : contenders) {
    if (m->current_backoff() == min_backoff) {
      winners.push_back(m);
    } else {
      m->on_medium_busy(min_backoff);
    }
  }

  busy_ = true;
  const sim::Time tx_start = sim_.now() + kPrs + (min_backoff + 1) * kSlot;
  sim_.at_inline(tx_start, [this, winners] {
    // A winner may have lost its backlog between contention resolution and
    // the preamble (modem-reset / queue-stall fault injection); it cannot
    // transmit. On the no-fault path every winner still has PBs pending.
    std::vector<PlcFrame> frames;
    std::vector<PlcMac*> senders;
    frames.reserve(winners.size());
    senders.reserve(winners.size());
    for (PlcMac* m : winners) {
      if (!m->has_pending()) continue;
      senders.push_back(m);
      frames.push_back(m->build_frame(sim_.now()));
    }
    if (frames.empty()) {
      busy_ = false;
      for (PlcMac* m : macs_) {
        if (m->has_pending()) {
          schedule_contention();
          break;
        }
      }
      return;
    }
    finish_round(std::move(frames), std::move(senders));
  });
}

void PlcMedium::finish_round(std::vector<PlcFrame> frames,
                             std::vector<PlcMac*> senders) {
  assert(!frames.empty() && frames.size() == senders.size());
  const bool collision = frames.size() > 1;
  if (collision) ++collisions_;
  frames_ += frames.size();

  sim::Time payload_end = frames[0].end;
  for (const PlcFrame& f : frames) payload_end = std::max(payload_end, f.end);

  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    const PlcFrame& f = frames[fi];
    PlcMac* sender = senders[fi];

    // SACK collision: frames of (nearly) equal length end together and so
    // do their receivers' SACKs — neither sender learns anything, both
    // infer a collision and retransmit wholesale. No PB-error report ever
    // reaches the estimator, which is why equal-length (saturated or
    // burst-probe) collisions leave BLE untouched while a short probe
    // captured inside a long frame poisons it (§8.2, Fig. 24).
    bool sack_collides = false;
    for (std::size_t gi = 0; collision && gi < frames.size(); ++gi) {
      if (gi == fi) continue;
      const auto gap = f.end >= frames[gi].end ? f.end - frames[gi].end
                                               : frames[gi].end - f.end;
      if (gap < channel_.phy().delimiter) sack_collides = true;
    }

    // SNR advantage of this frame over the strongest concurrent interferer
    // at receiver `rx` — positive and large enough means capture.
    const auto advantage_db = [&](net::StationId rx) {
      if (!collision) return 1e9;
      const double own = channel_.mean_snr_db(f.src, rx, f.slot, f.start);
      double worst = -1e9;
      for (std::size_t gi = 0; gi < frames.size(); ++gi) {
        if (gi == fi) continue;
        worst = std::max(worst,
                         channel_.mean_snr_db(frames[gi].src, rx, f.slot, f.start));
      }
      return own - worst;
    };
    double max_overlap = 0.0;
    for (std::size_t gi = 0; gi < frames.size(); ++gi) {
      if (gi == fi) continue;
      const PlcFrame& g = frames[gi];
      const double ov =
          std::min(f.end, g.end).seconds() - std::max(f.start, g.start).seconds();
      const double len = (f.end - f.start).seconds();
      if (len > 0.0) max_overlap = std::max(max_overlap, std::clamp(ov / len, 0.0, 1.0));
    }

    // Decode attempt at one receiver; returns false when the SoF is lost
    // or the frame exchange cannot complete (SACK collision).
    const auto receive_at = [&](PlcMac& rx_mac) -> bool {
      if (sack_collides && f.dst != net::kBroadcast) return false;
      const double adv = advantage_db(rx_mac.id());
      if (collision && adv < kCaptureThresholdDb) return false;
      double p = channel_.pb_error_probability(f.tone_map, f.src, rx_mac.id(),
                                               f.slot, f.start);
      if (fault_pberr_ > 0.0) {
        // Injected impulsive noise rides on top of the channel's own error
        // floor; the estimator cannot tell the two apart (exactly like
        // capture-effect losses, §8.2).
        p = 1.0 - (1.0 - p) * (1.0 - fault_pberr_);
      }
      if (collision) {
        // Captured frame: interference corrupts PBs during the overlap —
        // errors the estimator cannot tell from channel noise (§8.2).
        const double p_extra =
            0.85 * max_overlap * std::exp(-(adv - kCaptureThresholdDb) / 8.0);
        p = 1.0 - (1.0 - p) * (1.0 - p_extra);
      }
      std::vector<int> errored;
      for (std::size_t i = 0; i < f.pbs.size(); ++i) {
        if (rng_.bernoulli(p)) errored.push_back(static_cast<int>(i));
      }
      rx_mac.on_frame_received(f, errored, payload_end);
      if (f.dst != net::kBroadcast) {
        const sim::Time sack_end = payload_end + kRifs + channel_.phy().delimiter;
        sim_.at(sack_end, [sender, f, errored] { sender->on_sack(f, errored); });
      }
      return true;
    };

    bool decodable = false;
    if (f.dst == net::kBroadcast) {
      for (PlcMac* m : macs_) {
        if (m != sender && receive_at(*m)) decodable = true;
      }
      sim_.at(payload_end, [sender, f] { sender->on_no_sack(f); });
    } else {
      PlcMac* rx_mac = nullptr;
      for (PlcMac* m : macs_) {
        if (m->id() == f.dst) {
          rx_mac = m;
          break;
        }
      }
      if (rx_mac != nullptr) decodable = receive_at(*rx_mac);
      if (!decodable) {
        // No SACK will come: the sender times out and infers a collision.
        const sim::Time timeout = payload_end + kRifs + channel_.phy().delimiter;
        sim_.at(timeout, [sender, f] { sender->on_no_sack(f); });
      }
    }
    if (decodable || !collision) emit_sof(f);
  }

  // Medium idles after the longest payload plus the SACK exchange.
  const sim::Time idle_at = payload_end + kRifs + channel_.phy().delimiter;
  sim_.at_inline(idle_at, [this] {
    busy_ = false;
    for (PlcMac* m : macs_) {
      if (m->has_pending()) {
        schedule_contention();
        break;
      }
    }
  });
}

}  // namespace efd::plc

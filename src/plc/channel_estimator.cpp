#include "src/plc/channel_estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/obs/obs.hpp"

namespace efd::plc {

ChannelEstimator::ChannelEstimator(const PlcChannel& channel, net::StationId tx,
                                   net::StationId rx, sim::Rng rng, Config config)
    : channel_(channel), tx_(tx), rx_(rx), rng_(rng), cfg_(config) {
  maps_.robo = ToneMap::robo(channel_.phy());
}

double ChannelEstimator::current_uncertainty_db() const {
  return cfg_.uncertainty_db /
         std::sqrt(1.0 + static_cast<double>(pb_samples_) / cfg_.uncertainty_n0);
}

ToneMap ChannelEstimator::build_slot_map(int slot, sim::Time now, double margin_db,
                                         std::uint32_t id) const {
  const PhyParams& phy = channel_.phy();
  const auto& static_snr = channel_.static_snr_db(tx_, rx_, slot, now);
  snr_scratch_.assign(static_snr.begin(), static_snr.end());
  std::vector<double>& snr = snr_scratch_;
  // The receiver's measurements include part of the instantaneous noise and
  // a per-carrier estimation error that shrinks with accumulated samples.
  const double offset = channel_.fast_offset_db(rx_, now) * cfg_.offset_tracking;
  const double sigma = 0.3 * current_uncertainty_db();
  for (double& v : snr) {
    v -= offset;
    if (sigma > 0.0) v += rng_.normal(0.0, sigma);
  }
  // The bit loader maximizes *goodput*, rate * (1 - PBerr): on carriers
  // near a constellation threshold it can pay to load aggressively and
  // accept block errors — which is why real HPAV links run at PBerr up to
  // ~0.4 (paper Figs. 7, 22). Try a ladder of margins below the safe one
  // and keep the best expected goodput; Definition 1's expected PBerr is
  // whatever the winning map predicts on the typical (static) channel.
  // Gambling below the safe margin requires *knowing* the channel: scale
  // the ladder's depth by confidence, so a freshly reset device starts
  // conservative and earns its aggressiveness with samples (Fig. 16).
  const double depth =
      std::clamp(1.0 - current_uncertainty_db() / 6.0, 0.0, 1.0);
  const auto& true_snr = channel_.static_snr_db(tx_, rx_, slot, now);
  ToneMap best;
  double best_score = -1.0;
  double best_expected = 0.0;
  for (double m : {margin_db, margin_db - 1.5 * depth, margin_db - 3.0 * depth,
                   margin_db - 4.5 * depth}) {
    ToneMap candidate = ToneMap::from_snr(snr, m, phy, 0.0, id);
    const double expected =
        std::min(candidate.pb_error_probability(true_snr, phy), 0.45);
    const double score = candidate.phy_rate_mbps() * (1.0 - expected);
    if (score > best_score) {
      best_score = score;
      best_expected = expected;
      best = std::move(candidate);
    }
  }
  return ToneMap::from_carriers(best.carriers(), phy, best_expected, id);
}

namespace {

Modulation demote(Modulation m) {
  switch (m) {
    case Modulation::kQam1024: return Modulation::kQam256;
    case Modulation::kQam256: return Modulation::kQam64;
    case Modulation::kQam64: return Modulation::kQam16;
    case Modulation::kQam16: return Modulation::kQam8;
    case Modulation::kQam8: return Modulation::kQpsk;
    case Modulation::kQpsk: return Modulation::kBpsk;
    default: return Modulation::kOff;
  }
}

}  // namespace

void ChannelEstimator::clamp_to_rate(ToneMap& map, double rate_mbps,
                                     const PhyParams& phy, std::uint32_t id) {
  if (map.ble_mbps() <= rate_mbps) return;
  // With single-PB, single-symbol frames, spare rate buys no airtime — only
  // errors. Demote carriers one constellation step at a time (round-robin
  // passes) until the BLE lands at the single-symbol rate.
  std::vector<Modulation> carriers = map.carriers();
  const double bits_target = rate_mbps * phy.symbol.us() /
                             (phy.fec_rate * (1.0 - map.expected_pberr()));
  double bits = 0.0;
  for (Modulation m : carriers) bits += bits_per_symbol(m);
  for (int pass = 0; pass < kModulationCount && bits > bits_target; ++pass) {
    for (Modulation& m : carriers) {
      if (bits <= bits_target) break;
      const Modulation lower = demote(m);
      bits -= bits_per_symbol(m) - bits_per_symbol(lower);
      m = lower;
    }
  }
  map = ToneMap::from_carriers(std::move(carriers), phy, map.expected_pberr(), id);
}

void ChannelEstimator::retune(sim::Time now, bool error_triggered) {
  EFD_PROF_SCOPE("plc.tonemap_adapt");
  const PhyParams& phy = channel_.phy();
  if (error_triggered) {
    // Severity-scaled back-off: *sustained* error pressure (capture-effect
    // collisions under background traffic) makes the vendor algorithm
    // return very low BLE values (§6.2's HPAV500 observation, §8.2), while
    // the ~1% error duty of ordinary impulse noise stays below the knee and
    // costs only small dips (the paper's good-link behaviour in Fig. 10).
    const double sustained =
        std::max(0.0, pberr_ewma_slow_ - expected_pberr_ - 0.03);
    const double severity = 1.0 + 8.0 * std::min(1.0, sustained / 0.1);
    panic_margin_db_ += cfg_.panic_margin_db * severity;
    panic_margin_db_ = std::min(panic_margin_db_, 14.0);
  } else {
    panic_margin_db_ *= cfg_.panic_decay;
    if (panic_margin_db_ < 0.05) panic_margin_db_ = 0.0;
  }
  const double margin =
      cfg_.base_margin_db + current_uncertainty_db() + panic_margin_db_;
  margin_at_last_retune_ = margin;

  maps_.slots.clear();
  maps_.slots.reserve(static_cast<std::size_t>(phy.tone_map_slots));
  const bool clamp =
      pbs_per_frame_ewma_ <= cfg_.clamp_pb_threshold && pb_samples_ > 50;
  double expected_sum = 0.0;
  for (int s = 0; s < phy.tone_map_slots; ++s) {
    ToneMap tm = build_slot_map(s, now, margin, next_id_++);
    if (clamp) {
      clamp_to_rate(tm, phy.single_pb_symbol_rate_mbps(), phy, next_id_++);
    }
    expected_sum += tm.expected_pberr();
    maps_.slots.push_back(std::move(tm));
  }
  expected_pberr_ = expected_sum / phy.tone_map_slots;
  has_maps_ = true;
  created_ = now;
  last_update_ = now;
  ++update_count_;
  EFD_COUNTER_INC("plc.est.tonemap_updates");
  if (error_triggered) EFD_COUNTER_INC("plc.est.error_retunes");
  // Errors that triggered this retune are presumed handled.
  if (error_triggered) pberr_ewma_ *= 0.25;
}

void ChannelEstimator::on_sound_frame(sim::Time now) {
  EFD_COUNTER_INC("plc.est.sound_frames");
  // A handful of sound PBs seed the statistics.
  pb_samples_ += 3;
  if (!has_maps_) retune(now, /*error_triggered=*/false);
}

void ChannelEstimator::on_frame_received(int slot, int n_pbs, int n_errors,
                                         int n_symbols, sim::Time now) {
  (void)slot;
  assert(n_pbs >= 0 && n_errors >= 0 && n_errors <= n_pbs);
  EFD_COUNTER_ADD("plc.est.pbs_rx", n_pbs);
  EFD_COUNTER_ADD("plc.est.pb_errors", n_errors);
  pb_samples_ += static_cast<std::uint64_t>(n_pbs);
  if (n_pbs > 0) {
    const double frame_err =
        static_cast<double>(n_errors) / static_cast<double>(n_pbs);
    pberr_ewma_ += cfg_.pberr_alpha * (frame_err - pberr_ewma_);
    pberr_ewma_slow_ += 0.02 * (frame_err - pberr_ewma_slow_);
    ampstat_ewma_ += 0.03 * (frame_err - ampstat_ewma_);
    symbols_per_frame_ewma_ +=
        0.05 * (static_cast<double>(n_symbols) - symbols_per_frame_ewma_);
    pbs_per_frame_ewma_ +=
        0.05 * (static_cast<double>(n_pbs) - pbs_per_frame_ewma_);
  }
  if (!has_maps_) {
    retune(now, false);
    return;
  }
  // Error trigger is *relative* to the map's expected residual error rate:
  // an aggressively loaded map is supposed to see its design PBerr.
  if (pberr_ewma_ - expected_pberr_ > cfg_.error_retune_threshold) {
    retune(now, /*error_triggered=*/true);
    return;
  }
  // Improvement-driven retune: enough new samples have accumulated that the
  // bit loading would change materially. This is what makes the estimated
  // capacity converge faster at higher probe rates (Fig. 16).
  const double margin_now =
      cfg_.base_margin_db + current_uncertainty_db() + panic_margin_db_;
  if (now - last_update_ >= cfg_.improve_min_interval &&
      std::abs(margin_now - margin_at_last_retune_) > cfg_.improve_margin_db) {
    retune(now, /*error_triggered=*/false);
    return;
  }
  maybe_expire(now);
}

void ChannelEstimator::maybe_expire(sim::Time now) {
  if (!has_maps_) return;
  if (now - created_ >= cfg_.expiry) retune(now, /*error_triggered=*/false);
}

void ChannelEstimator::reset(sim::Time now) {
  maps_.slots.clear();
  maps_.robo = ToneMap::robo(channel_.phy());
  has_maps_ = false;
  created_ = now;
  last_update_ = now;
  pb_samples_ = 0;
  expected_pberr_ = 0.0;
  pberr_ewma_ = 0.0;
  pberr_ewma_slow_ = 0.0;
  ampstat_ewma_ = 0.0;
  panic_margin_db_ = 0.0;
  symbols_per_frame_ewma_ = 10.0;
  pbs_per_frame_ewma_ = 10.0;
}

void ChannelEstimator::invalidate_tone_maps(sim::Time now) {
  maps_.slots.clear();
  has_maps_ = false;
  created_ = now;
  // Relax the trigger EWMAs: the error burst that killed the maps should
  // not immediately re-trip the error retune once fresh maps exist.
  pberr_ewma_ = 0.0;
  pberr_ewma_slow_ = 0.0;
}

double ChannelEstimator::ble_mbps(int slot) const {
  if (!has_maps_) return maps_.robo.ble_mbps();
  assert(slot >= 0 && slot < static_cast<int>(maps_.slots.size()));
  return maps_.slots[static_cast<std::size_t>(slot)].ble_mbps();
}

}  // namespace efd::plc

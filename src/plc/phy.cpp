// phy.hpp is header-only; see PhyParams and RoboMode.
#include "src/plc/phy.hpp"

// PlcStation is defined inline; construction lives in PlcNetwork.
#include "src/plc/station.hpp"

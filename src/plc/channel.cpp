#include "src/plc/channel.hpp"

#include <cassert>
#include <cmath>

#include "src/grid/simd.hpp"
#include "src/obs/obs.hpp"

namespace efd::plc {

namespace {
/// Per-thread scratch for cache-miss rebuilds and offset-shifted SNR
/// copies: keeps the hot path allocation-free without threading a
/// workspace through every caller.
grid::CarrierWorkspace& scratch() {
  thread_local grid::CarrierWorkspace ws;
  return ws;
}
}  // namespace

void PlcChannel::attach_station(net::StationId id, int outlet) {
  assert(outlet >= 0 && outlet < grid_.node_count());
  outlets_[id] = outlet;
}

int PlcChannel::outlet(net::StationId id) const {
  const auto it = outlets_.find(id);
  assert(it != outlets_.end() && "station not attached to the grid");
  return it->second;
}

int PlcChannel::slot_at(sim::Time t) const {
  const double phase = grid::Mains::half_cycle_phase(t);
  const int slot = static_cast<int>(phase * phy_.tone_map_slots);
  return std::min(slot, phy_.tone_map_slots - 1);
}

PlcChannel::SnrEntry& PlcChannel::entry(net::StationId a, net::StationId b, int slot,
                                        sim::Time t) const {
  const std::uint64_t epoch = grid_.state_epoch(t);
  if (!cache_epoch_valid_ || cache_epoch_ != epoch) {
    // Appliance state moved: every cached vector and memo is stale. Evict
    // wholesale so entries for links that are never queried again cannot
    // accumulate across epochs.
    EFD_COUNTER_INC("plc.channel.cache_evictions");
    cache_.clear();
    atten_cache_.clear();
    cache_epoch_ = epoch;
    cache_epoch_valid_ = true;
  }
  SnrEntry& e = cache_[link_key(a, b, slot)];
  if (e.epoch == epoch && !e.snr_db.empty()) {
    EFD_COUNTER_INC("plc.channel.snr_cache_hits");
    return e;
  }
  EFD_COUNTER_INC("plc.channel.snr_cache_misses");

  const int oa = outlet(a);
  const int ob = outlet(b);
  AttenEntry& ae = atten_cache_[link_key(a, b, 0x3f)];
  if (ae.epoch != epoch || ae.att_db.empty()) {
    grid_.attenuation_db(oa, ob, phy_.band, t, ae.att_db);
    ae.epoch = epoch;
  }
  const auto& att = ae.att_db;
  const auto noise =
      grid_.noise_psd_db(ob, phy_.band, t, slot, phy_.tone_map_slots, scratch());
  e.snr_db.resize(att.size());
  grid::simd::active_kernels().assemble_snr_n(phy_.tx_psd_db, att.data(),
                                              noise.data(), e.snr_db.data(),
                                              att.size());
  e.epoch = epoch;
  e.pberr.clear();
  return e;
}

const std::vector<double>& PlcChannel::static_snr_db(net::StationId a, net::StationId b,
                                                     int slot, sim::Time t) const {
  return entry(a, b, slot, t).snr_db;
}

double PlcChannel::fast_offset_db(net::StationId b, sim::Time t) const {
  return grid_.fast_noise_offset_db(outlet(b), t);
}

std::vector<double> PlcChannel::snr_db(net::StationId a, net::StationId b, int slot,
                                       sim::Time t) const {
  std::vector<double> snr = entry(a, b, slot, t).snr_db;
  const double offset = fast_offset_db(b, t);
  grid::simd::active_kernels().shift_n(snr.data(), offset, snr.data(), snr.size());
  return snr;
}

std::span<const double> PlcChannel::snr_db(net::StationId a, net::StationId b, int slot,
                                           sim::Time t,
                                           grid::CarrierWorkspace& ws) const {
  const auto& snr = entry(a, b, slot, t).snr_db;
  const double offset = fast_offset_db(b, t);
  grid::CarrierWorkspace::Guard guard(ws);
  ws.snr_db.resize(snr.size());
  grid::simd::active_kernels().shift_n(snr.data(), offset, ws.snr_db.data(),
                                       snr.size());
  return ws.snr_db;
}

double PlcChannel::pb_error_probability(const ToneMap& tm, net::StationId a,
                                        net::StationId b, int slot, sim::Time t) const {
  SnrEntry& e = entry(a, b, slot, t);
  const double offset = fast_offset_db(b, t);
  // Quantize the scalar offset to 0.25 dB buckets for memoization.
  const auto bucket = static_cast<std::int64_t>(std::lround(offset * 4.0));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(tm.id()) << 20) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(bucket + 512));
  const auto it = e.pberr.find(key);
  if (it != e.pberr.end()) {
    EFD_COUNTER_INC("plc.channel.pberr_memo_hits");
    return it->second;
  }
  EFD_COUNTER_INC("plc.channel.pberr_memo_misses");

  // Shift into per-thread scratch instead of copying the 917-entry vector.
  grid::CarrierWorkspace& ws = scratch();
  grid::CarrierWorkspace::Guard guard(ws);
  const double off = static_cast<double>(bucket) / 4.0;
  ws.snr_db.resize(e.snr_db.size());
  grid::simd::active_kernels().shift_n(e.snr_db.data(), off, ws.snr_db.data(),
                                       e.snr_db.size());
  const double p = tm.pb_error_probability(ws.snr_db, phy_);
  // Bound the memo: tone maps churn on bad links, so evict wholesale.
  if (e.pberr.size() > 4096) e.pberr.clear();
  e.pberr[key] = p;
  return p;
}

double PlcChannel::cable_distance(net::StationId a, net::StationId b) const {
  return grid_.cable_distance(outlet(a), outlet(b));
}

double PlcChannel::mean_snr_db(net::StationId a, net::StationId b, int slot,
                               sim::Time t) const {
  const auto snr = snr_db(a, b, slot, t);
  double sum = 0.0;
  for (double v : snr) sum += v;
  return snr.empty() ? 0.0 : sum / static_cast<double>(snr.size());
}

}  // namespace efd::plc

#pragma once

#include <array>
#include <deque>
#include <functional>
#include <unordered_map>

#include "src/net/interface.hpp"
#include "src/plc/channel.hpp"
#include "src/plc/channel_estimator.hpp"
#include "src/plc/frame.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/simulator.hpp"

namespace efd::plc {

class PlcMedium;

/// Lookup of the receiver-side channel estimator for a directed link; the
/// tone-map exchange via management messages (§2.2) is abstracted as shared
/// state between the two endpoints.
class EstimatorDirectory {
 public:
  virtual ~EstimatorDirectory() = default;
  /// Estimator maintained by `rx` for frames arriving from `tx`.
  virtual ChannelEstimator& estimator(net::StationId rx, net::StationId tx) = 0;
};

/// IEEE 1901 CSMA/CA MAC for one station (§2.2): PB segmentation, frame
/// aggregation driven by the current slot's BLE, SACK-based selective PB
/// retransmission, and the CW / deferral-counter backoff of 1901.
class PlcMac final : public net::Interface {
 public:
  struct Config {
    /// Queue bound in PBs (~200 full-size packets); PLC adapter queues are
    /// non-blocking: excess packets are dropped (paper §7.4 footnote).
    std::size_t queue_limit_pbs = 600;
    int max_pb_retries = 31;
    /// CW per backoff stage (IEEE 1901 CA0/CA1 class).
    std::array<int, 4> cw = {8, 16, 32, 64};
    /// Deferral counter per stage (IEEE 1901).
    std::array<int, 4> dc = {0, 1, 3, 15};
    /// Use plain 802.11-style backoff instead of the 1901 deferral rule;
    /// kept for the ablation bench.
    bool disable_deferral = false;

    /// Backoff tables for a channel-access class: CA0/CA1 use the wide
    /// ladder above; CA2/CA3 (delay-sensitive traffic) use the standard's
    /// tighter one.
    static Config for_ca_class(int ca) {
      Config c;
      if (ca >= 2) {
        c.cw = {8, 16, 16, 32};
      }
      return c;
    }
  };

  PlcMac(sim::Simulator& simulator, PlcMedium& medium, const PlcChannel& channel,
         EstimatorDirectory& directory, net::StationId self, sim::Rng rng,
         Config config);

  // net::Interface
  bool enqueue(const net::Packet& p) override;
  [[nodiscard]] std::size_t queue_length() const override;
  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }
  void clear_queue() override {
    pb_queue_.clear();
    queued_pbs_ = 0;
  }

  /// Remove and return queued packets (each once, despite PB segmentation);
  /// failover salvages a dead interface's backlog through this.
  std::vector<net::Packet> take_queue() override;

  [[nodiscard]] net::StationId id() const { return self_; }

  // --- Fault hooks (fault::FaultInjector) ----------------------------------

  /// Queue-stall fault: the transmit path wedges — enqueue still accepts,
  /// but the MAC stops contending until the stall clears.
  void set_stalled(bool stalled);
  [[nodiscard]] bool stalled() const { return stalled_; }

  /// Modem reset fault: flush the queue and reassembly state and restart
  /// the backoff machinery, as a power-cycled adapter would (§7.1).
  void reset_modem();

  // --- Hooks driven by the medium -----------------------------------------

  [[nodiscard]] bool has_pending() const { return !stalled_ && !pb_queue_.empty(); }

  /// Channel-access priority the station will signal in the priority-
  /// resolution slots: the priority of the frame at the queue head.
  [[nodiscard]] int current_priority() const {
    return pb_queue_.empty() ? 0 : pb_queue_.front().packet->priority;
  }

  /// Draw/continue the backoff counter for a contention round.
  [[nodiscard]] int current_backoff();

  /// The station sensed the medium busy without transmitting: consume the
  /// counted-down slots and apply the 1901 deferral-counter rule.
  void on_medium_busy(int slots_elapsed);

  /// Build the frame to transmit now (the station won contention).
  [[nodiscard]] PlcFrame build_frame(sim::Time now);

  /// Outcome of a transmission: SACK arrived with `errored` PB indices
  /// (positions within the frame), or no SACK at all (collision inferred).
  void on_sack(const PlcFrame& frame, const std::vector<int>& errored_pbs);
  void on_no_sack(const PlcFrame& frame);

  /// A frame addressed to this station (or broadcast) was decodable;
  /// `errored_pbs` lists corrupted PB positions. Feeds reassembly, delivery
  /// and the receiver-side channel estimator.
  void on_frame_received(const PlcFrame& frame, const std::vector<int>& errored_pbs,
                         sim::Time now);

  // --- Stats ---------------------------------------------------------------
  /// Current IEEE 1901 deferral counter (the dc ladder of §2.2). Exposed for
  /// the testkit's MAC invariants: the rule decrements it only while it is
  /// positive (zero escalates the stage instead), so an observable value
  /// below zero means the accounting is broken.
  [[nodiscard]] int deferral_counter() const { return dc_; }
  [[nodiscard]] std::uint64_t frames_transmitted() const { return frames_tx_; }
  [[nodiscard]] std::uint64_t pb_retransmissions() const { return pb_retx_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return drops_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }

 private:
  void redraw_backoff();
  void enter_next_stage();

  sim::Simulator& sim_;
  PlcMedium& medium_;
  const PlcChannel& channel_;
  EstimatorDirectory& directory_;
  net::StationId self_;
  sim::Rng rng_;
  Config cfg_;
  RxHandler rx_;

  std::deque<PbUnit> pb_queue_;
  std::size_t queued_pbs_ = 0;
  bool stalled_ = false;

  int stage_ = 0;
  int backoff_ = -1;  ///< -1: not drawn
  int dc_ = 0;

  /// Receiver-side reassembly: packet id -> bitmap of received PBs.
  struct Reassembly {
    std::shared_ptr<const net::Packet> packet;
    std::uint64_t received_mask = 0;
    int total = 0;
  };
  std::unordered_map<std::uint64_t, Reassembly> reassembly_;

  std::uint64_t frames_tx_ = 0;
  std::uint64_t pb_retx_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace efd::plc

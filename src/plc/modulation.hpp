#pragma once

#include <string>

namespace efd::plc {

/// Per-carrier constellations of HomePlug AV / IEEE 1901 (§2.1 of the
/// paper). Unlike 802.11, every OFDM carrier picks its own constellation.
enum class Modulation {
  kOff,      ///< carrier not used (notched or hopeless SNR)
  kBpsk,
  kQpsk,
  kQam8,
  kQam16,
  kQam64,
  kQam256,
  kQam1024,
};

inline constexpr int kModulationCount = 8;

/// Bits carried per OFDM symbol on one carrier.
[[nodiscard]] int bits_per_symbol(Modulation m);

/// Minimum carrier SNR (dB) at which the bit-loader selects `m`, assuming
/// the standard's rate-16/21 turbo FEC. Calibrated so that operating at the
/// threshold leaves a small residual PB error rate, as HPAV does.
[[nodiscard]] double required_snr_db(Modulation m);

/// Largest constellation whose threshold is at or below `snr_db`.
[[nodiscard]] Modulation pick_modulation(double snr_db);

/// Approximate uncoded bit-error rate of `m` at the given carrier SNR.
/// Standard Gray-coded square-QAM approximation; used to derive PB error
/// probabilities for tone maps that are mismatched to the channel.
///
/// Backed by a per-modulation lookup table over SNR quantized at 0.1 dB
/// with linear interpolation — this sits in the innermost per-carrier loop
/// of `ToneMap::pb_error_probability`, where the closed form's
/// pow/sqrt/erfc triple dominates multi-day trace generation. Matches
/// `uncoded_ber_exact` within 1e-4 absolute everywhere (regression-tested).
[[nodiscard]] double uncoded_ber(Modulation m, double snr_db);

/// The exact closed form (Q-function / erfc); kept as the reference the
/// LUT is built from and verified against.
[[nodiscard]] double uncoded_ber_exact(Modulation m, double snr_db);

[[nodiscard]] std::string to_string(Modulation m);

}  // namespace efd::plc

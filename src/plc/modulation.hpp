#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "src/grid/simd.hpp"

namespace efd::plc {

/// Per-carrier constellations of HomePlug AV / IEEE 1901 (§2.1 of the
/// paper). Unlike 802.11, every OFDM carrier picks its own constellation.
enum class Modulation {
  kOff,      ///< carrier not used (notched or hopeless SNR)
  kBpsk,
  kQpsk,
  kQam8,
  kQam16,
  kQam64,
  kQam256,
  kQam1024,
};

inline constexpr int kModulationCount = 8;

/// Bits carried per OFDM symbol on one carrier, indexed by Modulation. The
/// tone-map layer builds structure-of-arrays bit vectors straight from this
/// table; `bits_per_symbol` is a thin wrapper over it.
inline constexpr std::array<int, kModulationCount> kBitsPerSymbol = {
    0,   // kOff
    1,   // kBpsk
    2,   // kQpsk
    3,   // kQam8
    4,   // kQam16
    6,   // kQam64
    8,   // kQam256
    10,  // kQam1024
};

/// Bits carried per OFDM symbol on one carrier.
[[nodiscard]] constexpr int bits_per_symbol(Modulation m) {
  return kBitsPerSymbol[static_cast<std::size_t>(m)];
}

/// View of the uncoded-BER lookup table for the batch carrier kernels
/// (grid::simd::CarrierKernels::ber_weighted_sum_n): kModulationCount rows of
/// samples every 0.1 dB. Row offsets are `modulation_index * view.size`; the
/// kOff row is all-zero, so off carriers gather 0.0 and (with bit weight 0)
/// contribute nothing to the reduction — no branch needed.
[[nodiscard]] grid::simd::InterpTableView ber_lut_view();

/// Minimum carrier SNR (dB) at which the bit-loader selects `m`, assuming
/// the standard's rate-16/21 turbo FEC. Calibrated so that operating at the
/// threshold leaves a small residual PB error rate, as HPAV does.
[[nodiscard]] double required_snr_db(Modulation m);

/// Largest constellation whose threshold is at or below `snr_db`.
[[nodiscard]] Modulation pick_modulation(double snr_db);

/// Approximate uncoded bit-error rate of `m` at the given carrier SNR.
/// Standard Gray-coded square-QAM approximation; used to derive PB error
/// probabilities for tone maps that are mismatched to the channel.
///
/// Backed by a per-modulation lookup table over SNR quantized at 0.1 dB
/// with linear interpolation — this sits in the innermost per-carrier loop
/// of `ToneMap::pb_error_probability`, where the closed form's
/// pow/sqrt/erfc triple dominates multi-day trace generation. Matches
/// `uncoded_ber_exact` within 1e-4 absolute everywhere (regression-tested).
[[nodiscard]] double uncoded_ber(Modulation m, double snr_db);

/// The exact closed form (Q-function / erfc); kept as the reference the
/// LUT is built from and verified against.
[[nodiscard]] double uncoded_ber_exact(Modulation m, double snr_db);

[[nodiscard]] std::string to_string(Modulation m);

}  // namespace efd::plc

#pragma once

#include <functional>
#include <vector>

#include "src/plc/channel.hpp"
#include "src/plc/frame.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/simulator.hpp"

namespace efd::plc {

class PlcMac;

/// The shared power-line bus: one contention domain in which every attached
/// MAC hears every transmission (the paper's office floor has no hidden PLC
/// terminals; the two logical networks of Fig. 2 are modelled as two
/// mediums, isolated by the ~200 m inter-board attenuation).
///
/// Contention is resolved in rounds: whenever the medium goes idle, every
/// MAC with pending PBs participates with its current backoff counter. The
/// smallest counter transmits; ties collide. Losing stations "sense the
/// medium busy", which drives the IEEE 1901 deferral-counter rule that
/// distinguishes 1901 from 802.11 (§2.2, [19]): a station whose deferral
/// counter is exhausted jumps to the next backoff stage *without* a
/// collision.
class PlcMedium {
 public:
  /// IEEE 1901 CA1 timing.
  static constexpr sim::Time kSlot = sim::microseconds(35.84);
  static constexpr sim::Time kPrs = sim::microseconds(2 * 35.84);
  static constexpr sim::Time kCifs = sim::microseconds(100.0);
  static constexpr sim::Time kRifs = sim::microseconds(140.0);

  /// SINR advantage (dB) above which a receiver captures the stronger of
  /// two colliding frames and decodes it with elevated PB errors (§8.2's
  /// "capture effect").
  static constexpr double kCaptureThresholdDb = 10.0;

  PlcMedium(sim::Simulator& simulator, const PlcChannel& channel, sim::Rng rng);

  /// Enable the IEEE 1901 beacon region: the CCo transmits a beacon every
  /// `period` (nominally two mains cycles, 40 ms at 50 Hz), during which the
  /// medium is reserved for `duration`. Purely an airtime cost in this
  /// model (network management rides in it); disabled by default so the
  /// CSMA-only calibration stays put — enable for standard-fidelity runs.
  void enable_beacons(sim::Time period = sim::milliseconds(40),
                      sim::Time duration = sim::microseconds(600));

  void register_mac(PlcMac& mac);

  /// Subscribe a sniffer callback, invoked for every decodable SoF.
  /// Returns a token for `remove_sniffer` — a subscriber whose lifetime is
  /// shorter than the medium's MUST unregister before it dies. The token is
  /// a {generation, slot} pair (same scheme as sim::EventHandle): removal is
  /// O(1), slots are recycled, and a stale id can never unregister a later
  /// subscriber that reused its slot.
  using SnifferId = std::uint64_t;
  SnifferId add_sniffer(std::function<void(const SofRecord&)> sniffer);
  void remove_sniffer(SnifferId id);

  /// A MAC signals that it has PBs pending (queue went non-empty).
  void notify_ready(PlcMac& mac);

  /// Fault injection (fault::FaultKind::kPlcBlackout / kPacketCorruption):
  /// every PB decode additionally fails with probability `p` — an appliance
  /// surge's impulsive noise floor. 1.0 blacks the bus out entirely (no PB
  /// survives, SACKs report total loss, estimators retune away and drop
  /// their maps). 0 restores the clean channel; the default path draws the
  /// same RNG sequence as before the hook existed, so no-fault runs stay
  /// byte-identical.
  void set_fault_pb_error(double p) { fault_pberr_ = p; }
  [[nodiscard]] double fault_pb_error() const { return fault_pberr_; }

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_; }
  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_; }

 private:
  void schedule_contention();
  void resolve_contention();
  void finish_round(std::vector<PlcFrame> frames, std::vector<PlcMac*> senders);
  void emit_sof(const PlcFrame& frame) const;
  void beacon_tick();

  /// Sniffer slot map entry: `fn` empty means the slot is free and its index
  /// is on `sniffer_free_`; `gen` advances on every removal.
  struct SnifferSlot {
    std::function<void(const SofRecord&)> fn;
    std::uint32_t gen = 0;
  };

  sim::Simulator& sim_;
  const PlcChannel& channel_;
  mutable sim::Rng rng_;
  std::vector<PlcMac*> macs_;
  std::vector<SnifferSlot> sniffers_;
  std::vector<std::uint32_t> sniffer_free_;
  std::size_t sniffer_count_ = 0;
  bool busy_ = false;
  bool contention_scheduled_ = false;
  double fault_pberr_ = 0.0;  ///< injected impulsive-noise PB error floor
  std::uint64_t collisions_ = 0;
  std::uint64_t frames_ = 0;
  bool beacons_enabled_ = false;
  sim::Time beacon_period_{};
  sim::Time beacon_duration_{};
  sim::Time pending_beacon_hold_{};  ///< beacon airtime owed by the next round
  std::uint64_t beacons_ = 0;
};

}  // namespace efd::plc

#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "src/grid/carrier_workspace.hpp"
#include "src/grid/mains.hpp"
#include "src/grid/power_grid.hpp"
#include "src/net/packet.hpp"
#include "src/plc/phy.hpp"
#include "src/plc/tone_map.hpp"

namespace efd::plc {

/// The PLC channel between stations: binds a PowerGrid (attenuation/noise
/// physics) to a PHY parameterization and a station->outlet attachment,
/// and serves per-carrier SNR and PB error probabilities to the MAC and the
/// channel estimator.
///
/// Performance: per-carrier vectors are cached per (link, slot) and the
/// whole cache is evicted when the grid's appliance state epoch changes
/// (stale entries for links no longer queried would otherwise accumulate
/// across epochs); the fast (cycle-scale) noise term is a scalar uniformly
/// shifting SNR, so cached vectors stay valid across it. PB error
/// probabilities are memoized per (link, slot, tone map, quantized fast
/// offset), which keeps saturated frame-level simulation cheap. Internal
/// per-carrier scratch lives in a thread_local grid::CarrierWorkspace, so
/// cache-miss rebuilds allocate nothing once warm; the channel itself is
/// not thread-safe — parallel experiments use one channel per thread.
class PlcChannel {
 public:
  PlcChannel(const grid::PowerGrid& grid, PhyParams phy)
      : grid_(grid), phy_(std::move(phy)) {}

  /// Attach station `id` to grid outlet node `outlet`.
  void attach_station(net::StationId id, int outlet);

  [[nodiscard]] int outlet(net::StationId id) const;
  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] const grid::PowerGrid& grid() const { return grid_; }

  /// Tone-map slot index active at simulated time `t` (position within the
  /// AC half cycle, paper §6.1).
  [[nodiscard]] int slot_at(sim::Time t) const;

  /// Per-carrier SNR (dB) of directed link a->b for tone-map slot `slot`,
  /// including the cycle-scale noise offset at time `t`.
  [[nodiscard]] std::vector<double> snr_db(net::StationId a, net::StationId b, int slot,
                                           sim::Time t) const;

  /// Allocation-free variant: writes into `ws.snr_db` and returns a span
  /// over it (valid until the workspace is next used).
  std::span<const double> snr_db(net::StationId a, net::StationId b, int slot,
                                 sim::Time t, grid::CarrierWorkspace& ws) const;

  /// Static per-carrier SNR without the fast offset (cached); the offset to
  /// subtract is `fast_offset_db`.
  [[nodiscard]] const std::vector<double>& static_snr_db(net::StationId a, net::StationId b,
                                                         int slot, sim::Time t) const;
  [[nodiscard]] double fast_offset_db(net::StationId b, sim::Time t) const;

  /// PB error probability when tone map `tm` is used on a->b at `t` in
  /// `slot`. Memoized; safe to call per-frame in saturated simulations.
  [[nodiscard]] double pb_error_probability(const ToneMap& tm, net::StationId a,
                                            net::StationId b, int slot,
                                            sim::Time t) const;

  [[nodiscard]] double cable_distance(net::StationId a, net::StationId b) const;

  /// Mean SNR across carriers (diagnostic / link classification aid).
  [[nodiscard]] double mean_snr_db(net::StationId a, net::StationId b, int slot,
                                   sim::Time t) const;

 private:
  struct SnrEntry {
    std::uint64_t epoch = 0;
    std::vector<double> snr_db;
    /// pberr memo: key = tone map id * 4096 + quantized offset bucket.
    std::unordered_map<std::uint64_t, double> pberr;
  };

  /// Attenuation is independent of the tone-map slot; share it across the
  /// per-slot SNR entries.
  struct AttenEntry {
    std::uint64_t epoch = 0;
    std::vector<double> att_db;
  };

  [[nodiscard]] std::uint64_t link_key(net::StationId a, net::StationId b, int slot) const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 40) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(b)) << 16) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot));
  }

  SnrEntry& entry(net::StationId a, net::StationId b, int slot, sim::Time t) const;

  const grid::PowerGrid& grid_;
  PhyParams phy_;
  std::unordered_map<net::StationId, int> outlets_;
  mutable std::unordered_map<std::uint64_t, SnrEntry> cache_;
  mutable std::unordered_map<std::uint64_t, AttenEntry> atten_cache_;
  /// Epoch the caches were filled under; both maps are cleared wholesale
  /// when it moves (like the per-entry pberr memo), bounding cache growth.
  mutable std::uint64_t cache_epoch_ = 0;
  mutable bool cache_epoch_valid_ = false;
};

}  // namespace efd::plc

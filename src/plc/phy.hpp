#pragma once

#include "src/grid/power_grid.hpp"
#include "src/sim/time.hpp"

namespace efd::plc {

/// PHY-layer constants of a HomePlug generation. Two presets reproduce the
/// paper's hardware: HomePlug AV (Intellon INT6300, the main testbed) and
/// HPAV500 (Netgear XAVB5101 / QCA7400, the validation devices; §3.1
/// footnote: AV500 extends the band to 1.8-68 MHz).
struct PhyParams {
  grid::CarrierBand band{1.8, 30.0, 917};
  /// OFDM symbol duration including the guard interval. 40.96 µs FFT +
  /// 5.56 µs GI = 46.52 µs; this makes the single-PB symbol rate
  /// 520*8/46.52 ≈ 89.4 Mb/s, the clamp the paper derives in §7.2.
  sim::Time symbol = sim::microseconds(46.52);
  double fec_rate = 16.0 / 21.0;
  int tone_map_slots = 6;       ///< per AC half-cycle (§2.1)
  double tx_psd_db = 68.0;      ///< transmit PSD relative to the noise floor
  /// Fraction of payload symbol bits that carry PB data; the rest is MAC
  /// framing, AES block alignment, per-PB CRC and padding. Calibrated so
  /// saturated UDP throughput tracks the paper's BLE = 1.7*T - 0.65 fit.
  double pb_wire_efficiency = 0.80;
  /// Physical block: 520 B including the 8 B PB header (§2.2 and §7.2).
  /// Packet bytes map into the 520 B block; per-PB header/CRC overhead is
  /// folded into `pb_wire_efficiency`, so a 520 B probe occupies exactly
  /// one PB (the paper's Fig. 18 clamp boundary) and R1sym = 520*8/Tsym.
  static constexpr int kPbPayloadBytes = 520;
  static constexpr int kPbTotalBytes = 520;

  /// Frame-control / preamble airtime of one delimiter (SoF, SACK).
  sim::Time delimiter = sim::microseconds(110.48);
  /// Maximum PLC frame payload duration (HPAV: 2501.12 µs).
  sim::Time max_frame = sim::microseconds(2501.12);

  [[nodiscard]] static PhyParams hpav() { return {}; }
  [[nodiscard]] static PhyParams hpav500() {
    PhyParams p;
    p.band = {1.8, 68.0, 2232};
    return p;
  }

  /// Rate (Mb/s) when one PB occupies one OFDM symbol: the §7.2 clamp.
  [[nodiscard]] double single_pb_symbol_rate_mbps() const {
    return kPbTotalBytes * 8.0 / symbol.us();
  }

  /// Bits a PB contributes, including its header.
  [[nodiscard]] static double pb_bits() { return kPbTotalBytes * 8.0; }
};

/// Robust OFDM (ROBO) mode: QPSK on all carriers with heavy repetition.
/// Used for broadcast/multicast and initial channel estimation (§2.1), which
/// is why broadcast probing cannot reflect link quality (§8.1).
struct RoboMode {
  int repetitions = 4;
  /// Effective PHY rate in Mb/s for the given parameters.
  [[nodiscard]] double rate_mbps(const PhyParams& p) const {
    const double bits =
        2.0 * p.band.n_carriers * p.fec_rate / repetitions;  // per symbol
    return bits / p.symbol.us();
  }
};

}  // namespace efd::plc

#include "src/plc/mac.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/obs/obs.hpp"
#include "src/plc/medium.hpp"

namespace efd::plc {

namespace {
int pbs_for(std::size_t bytes) {
  return static_cast<int>(
      (bytes + PhyParams::kPbPayloadBytes - 1) / PhyParams::kPbPayloadBytes);
}
}  // namespace

PlcMac::PlcMac(sim::Simulator& simulator, PlcMedium& medium, const PlcChannel& channel,
               EstimatorDirectory& directory, net::StationId self, sim::Rng rng,
               Config config)
    : sim_(simulator),
      medium_(medium),
      channel_(channel),
      directory_(directory),
      self_(self),
      rng_(rng),
      cfg_(config) {
  dc_ = cfg_.dc[0];
  // Register the MAC's metric names up front: contention-dependent counters
  // (deferrals, collisions) then show up in snapshots as explicit zeros for
  // uncontended runs instead of being absent.
  static const bool obs_names_registered = [] {
    auto& reg = obs::MetricsRegistry::instance();
    for (const char* name :
         {"plc.mac.drops", "plc.mac.backoff_redraws", "plc.mac.csma_deferrals",
          "plc.mac.frames_tx", "plc.mac.pbs_tx", "plc.mac.sacks_rx",
          "plc.mac.pb_errors", "plc.mac.pb_retx", "plc.mac.collisions",
          "plc.mac.packets_delivered"}) {
      (void)reg.counter_id(name);
    }
    (void)reg.histogram_id("plc.mac.frame_pbs");
    return true;
  }();
  (void)obs_names_registered;
}

bool PlcMac::enqueue(const net::Packet& p) {
  const int n = pbs_for(p.size_bytes);
  if (queued_pbs_ + static_cast<std::size_t>(n) > cfg_.queue_limit_pbs) {
    ++drops_;
    EFD_COUNTER_INC("plc.mac.drops");
    return false;
  }
  auto shared = std::make_shared<const net::Packet>(p);
  for (int i = 0; i < n; ++i) {
    pb_queue_.push_back(PbUnit{shared, i, n, 0});
  }
  queued_pbs_ += static_cast<std::size_t>(n);
  if (queued_pbs_ == static_cast<std::size_t>(n)) {
    medium_.notify_ready(*this);
  }
  return true;
}

std::size_t PlcMac::queue_length() const {
  return queued_pbs_ / 3;  // rough packets-outstanding figure
}

std::vector<net::Packet> PlcMac::take_queue() {
  std::vector<net::Packet> out;
  std::unordered_set<std::uint64_t> seen;
  for (const PbUnit& pb : pb_queue_) {
    if (seen.insert(pb.packet->id).second) out.push_back(*pb.packet);
  }
  pb_queue_.clear();
  queued_pbs_ = 0;
  return out;
}

void PlcMac::set_stalled(bool stalled) {
  stalled_ = stalled;
  if (!stalled_ && !pb_queue_.empty()) medium_.notify_ready(*this);
}

void PlcMac::reset_modem() {
  pb_queue_.clear();
  queued_pbs_ = 0;
  reassembly_.clear();
  stage_ = 0;
  backoff_ = -1;
  dc_ = cfg_.dc[0];
}

void PlcMac::redraw_backoff() {
  EFD_COUNTER_INC("plc.mac.backoff_redraws");
  backoff_ = static_cast<int>(
      rng_.uniform_int(0, cfg_.cw[static_cast<std::size_t>(stage_)] - 1));
  dc_ = cfg_.dc[static_cast<std::size_t>(stage_)];
}

void PlcMac::enter_next_stage() {
  stage_ = std::min<int>(stage_ + 1, static_cast<int>(cfg_.cw.size()) - 1);
  redraw_backoff();
}

int PlcMac::current_backoff() {
  if (backoff_ < 0) redraw_backoff();
  return backoff_;
}

void PlcMac::on_medium_busy(int slots_elapsed) {
  if (backoff_ < 0) return;
  backoff_ = std::max(0, backoff_ - slots_elapsed);
  if (cfg_.disable_deferral) return;  // 802.11-style: only collisions escalate
  // IEEE 1901 deferral counter: sensing the medium busy with an exhausted
  // deferral counter escalates the backoff stage without any collision.
  if (dc_ == 0) {
    EFD_COUNTER_INC("plc.mac.csma_deferrals");
    enter_next_stage();
  } else {
    --dc_;
  }
}

PlcFrame PlcMac::build_frame(sim::Time now) {
  assert(!pb_queue_.empty());
  const PhyParams& phy = channel_.phy();
  PlcFrame frame;
  frame.src = self_;
  frame.dst = pb_queue_.front().packet->dst;
  frame.slot = channel_.slot_at(now);
  frame.start = now;

  const bool broadcast = frame.dst == net::kBroadcast;
  const ToneMap* tm = nullptr;
  if (broadcast) {
    frame.robo = true;
    static const ToneMap kRobo = ToneMap::robo(phy);
    tm = &kRobo;
  } else {
    ChannelEstimator& est = directory_.estimator(frame.dst, self_);
    if (!est.has_tone_maps()) {
      frame.robo = true;
      frame.sound = true;
      tm = &est.tone_maps().robo;
    } else {
      tm = &est.tone_maps().slots[static_cast<std::size_t>(frame.slot)];
    }
  }
  frame.tone_map_id = tm->id();
  frame.ble_mbps = tm->ble_mbps();
  frame.tone_map = *tm;

  // Bits one OFDM symbol carries under this tone map (post-FEC payload),
  // discounted by MAC framing / AES alignment / per-PB CRC overhead.
  const double bits_per_symbol = std::max(
      1.0, tm->phy_rate_mbps() * phy.symbol.us() * phy.pb_wire_efficiency);
  const auto max_symbols =
      std::max<int>(1, static_cast<int>(phy.max_frame.ns() / phy.symbol.ns()));

  // Aggregate PBs from the queue head — retransmissions were pushed to the
  // front, so they leave first (Fig. 1's PB queue). Stop at the frame's
  // symbol budget; never split below one PB.
  int n_pbs = 0;
  while (!pb_queue_.empty()) {
    const int symbols_with_next = static_cast<int>(
        std::ceil((n_pbs + 1) * PhyParams::pb_bits() / bits_per_symbol));
    if (n_pbs > 0 && symbols_with_next > max_symbols) break;
    // Frames are unicast to one destination; stop at a destination switch.
    if (pb_queue_.front().packet->dst != frame.dst) break;
    frame.pbs.push_back(pb_queue_.front());
    pb_queue_.pop_front();
    --queued_pbs_;
    ++n_pbs;
  }
  frame.n_symbols = std::max(
      1, static_cast<int>(std::ceil(n_pbs * PhyParams::pb_bits() / bits_per_symbol)));
  frame.end = now + phy.delimiter + frame.n_symbols * phy.symbol;
  ++frames_tx_;
  EFD_COUNTER_INC("plc.mac.frames_tx");
  EFD_COUNTER_ADD("plc.mac.pbs_tx", n_pbs);
  EFD_HISTO_OBSERVE("plc.mac.frame_pbs", n_pbs);
  return frame;
}

void PlcMac::on_sack(const PlcFrame& frame, const std::vector<int>& errored_pbs) {
  EFD_COUNTER_INC("plc.mac.sacks_rx");
  EFD_COUNTER_ADD("plc.mac.pb_errors", errored_pbs.size());
  stage_ = 0;
  backoff_ = -1;
  dc_ = cfg_.dc[0];
  // Selective retransmission: only corrupted PBs go back, to the queue
  // front, unless they exhausted their retry budget.
  for (auto it = errored_pbs.rbegin(); it != errored_pbs.rend(); ++it) {
    PbUnit pb = frame.pbs[static_cast<std::size_t>(*it)];
    if (pb.retries >= cfg_.max_pb_retries) continue;
    ++pb.retries;
    ++pb_retx_;
    EFD_COUNTER_INC("plc.mac.pb_retx");
    pb_queue_.push_front(pb);
    ++queued_pbs_;
  }
  if (!pb_queue_.empty()) medium_.notify_ready(*this);
}

void PlcMac::on_no_sack(const PlcFrame& frame) {
  if (frame.dst == net::kBroadcast) {
    // Broadcast is never SACKed; nothing to retransmit.
    stage_ = 0;
    backoff_ = -1;
    dc_ = cfg_.dc[0];
    if (!pb_queue_.empty()) medium_.notify_ready(*this);
    return;
  }
  // Collision inferred: whole frame returns to the queue, stage escalates.
  EFD_COUNTER_INC("plc.mac.collisions");
  for (auto it = frame.pbs.rbegin(); it != frame.pbs.rend(); ++it) {
    PbUnit pb = *it;
    if (pb.retries >= cfg_.max_pb_retries) continue;
    ++pb.retries;
    pb_queue_.push_front(pb);
    ++queued_pbs_;
  }
  enter_next_stage();
  if (!pb_queue_.empty()) medium_.notify_ready(*this);
}

void PlcMac::on_frame_received(const PlcFrame& frame,
                               const std::vector<int>& errored_pbs, sim::Time now) {
  // Feed the receiver-side channel estimator. Sound frames trigger the
  // initial estimation; collision-corrupted PBs arrive through the same
  // path and are indistinguishable from channel errors (§8.2).
  if (frame.dst != net::kBroadcast) {
    ChannelEstimator& est = directory_.estimator(self_, frame.src);
    if (frame.sound) est.on_sound_frame(now);
    est.on_frame_received(frame.slot, static_cast<int>(frame.pbs.size()),
                          static_cast<int>(errored_pbs.size()), frame.n_symbols, now);
  }

  // Reassemble packets from clean PBs.
  std::vector<bool> errored(frame.pbs.size(), false);
  for (int i : errored_pbs) errored[static_cast<std::size_t>(i)] = true;
  for (std::size_t i = 0; i < frame.pbs.size(); ++i) {
    if (errored[i]) continue;
    const PbUnit& pb = frame.pbs[i];
    Reassembly& r = reassembly_[pb.packet->id];
    if (r.total == 0) {
      r.packet = pb.packet;
      r.total = pb.total;
    }
    const std::uint64_t bit = 1ULL << (pb.index % 64);
    if (r.received_mask & bit) continue;  // duplicate PB
    r.received_mask |= bit;
    const int have = std::popcount(r.received_mask);
    if (have == r.total) {
      ++delivered_;
      EFD_COUNTER_INC("plc.mac.packets_delivered");
      if (rx_) rx_(*r.packet, now);
      reassembly_.erase(pb.packet->id);
    }
  }
  // Bound the reassembly table: abandoned entries (all-PB-dropped packets)
  // must not accumulate over day-long runs.
  if (reassembly_.size() > 4096) reassembly_.clear();
}

}  // namespace efd::plc

#include "src/plc/tone_map.hpp"

#include <cassert>
#include <cmath>

#include "src/grid/db_units.hpp"
#include "src/obs/obs.hpp"

namespace efd::plc {

namespace {

/// Coding gain of the rate-16/21 turbo code, applied when evaluating error
/// probabilities (the bit-loading thresholds in modulation.cpp already net
/// it out).
constexpr double kCodingGainDb = 7.0;

/// Map a mean uncoded BER to a PB (512 B block) error probability through a
/// turbo-decoder waterfall: blocks survive below ~1e-4 BER and are lost
/// almost surely above ~1e-2.
double fec_waterfall(double mean_ber) {
  if (mean_ber <= 0.0) return 0.0;
  const double x = std::log10(mean_ber);
  const double p = 1.0 / (1.0 + std::exp(-6.0 * (x + 2.7)));
  return p;
}

}  // namespace

void ToneMap::recompute() {
  EFD_PROF_SCOPE("plc.tonemap_recompute");
  const std::size_t n = carriers_.size();
  const std::int32_t row_len = ber_lut_view().size;
  lut_rows_.resize(n);
  bits_.resize(n);
  double bits = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int b = efd::plc::bits_per_symbol(carriers_[i]);
    bits += b;
    bits_[i] = static_cast<double>(b);
    lut_rows_[i] = static_cast<std::int32_t>(carriers_[i]) * row_len;
  }
  bits /= robo_repetitions_;
  bits_per_symbol_ = bits;
  phy_rate_mbps_ = bits * fec_rate_ / symbol_us_;
  ble_mbps_ = phy_rate_mbps_ * (1.0 - expected_pberr_);
}

ToneMap ToneMap::from_snr(std::span<const double> snr_db, double margin_db,
                          const PhyParams& phy, double expected_pberr,
                          std::uint32_t id) {
  ToneMap tm;
  tm.fec_rate_ = phy.fec_rate;
  tm.symbol_us_ = phy.symbol.us();
  tm.expected_pberr_ = expected_pberr;
  tm.id_ = id;
  tm.carriers_.reserve(snr_db.size());
  for (double snr : snr_db) {
    tm.carriers_.push_back(pick_modulation(snr - margin_db));
  }
  tm.recompute();
  return tm;
}

ToneMap ToneMap::from_carriers(std::vector<Modulation> carriers, const PhyParams& phy,
                               double expected_pberr, std::uint32_t id) {
  ToneMap tm;
  tm.fec_rate_ = phy.fec_rate;
  tm.symbol_us_ = phy.symbol.us();
  tm.expected_pberr_ = expected_pberr;
  tm.id_ = id;
  tm.carriers_ = std::move(carriers);
  tm.recompute();
  return tm;
}

ToneMap ToneMap::robo(const PhyParams& phy, const RoboMode& robo) {
  ToneMap tm;
  tm.fec_rate_ = 0.5;  // ROBO uses the robust rate-1/2 code
  tm.symbol_us_ = phy.symbol.us();
  tm.expected_pberr_ = 0.0;
  tm.id_ = 0;
  tm.robo_repetitions_ = robo.repetitions;
  tm.carriers_.assign(static_cast<std::size_t>(phy.band.n_carriers),
                      Modulation::kQpsk);
  tm.recompute();
  return tm;
}

double ToneMap::pb_error_probability(std::span<const double> actual_snr_db,
                                     const PhyParams& phy) const {
  return pb_error_probability(actual_snr_db, phy, grid::simd::active_kernels());
}

double ToneMap::pb_error_probability(
    std::span<const double> actual_snr_db, const PhyParams& phy,
    const grid::simd::CarrierKernels& kernels) const {
  (void)phy;
  EFD_PROF_SCOPE("plc.pberr");
  EFD_PROF_SCOPE(kernels.name);  // nests under plc.pberr
  assert(actual_snr_db.size() == carriers_.size());
  if (robo_repetitions_ > 1) {
    // ROBO interleaves each bit's copies across *different* carriers, so a
    // copy landing in a deep notch is rescued by copies on clean carriers:
    // combining approximates summing the linear SNRs of the copies, i.e.
    // repetitions times the mean linear SNR. This is what makes broadcast
    // frames decodable on links whose data quality is poor (§8.1).
    const double mean_linear =
        kernels.sum_db_to_linear_n(actual_snr_db.data(), actual_snr_db.size()) /
        static_cast<double>(actual_snr_db.size());
    const double combined_db =
        grid::linear_to_db(robo_repetitions_ * std::max(1e-6, mean_linear));
    const double ber =
        uncoded_ber(Modulation::kQpsk, combined_db + kCodingGainDb);
    return fec_waterfall(ber);
  }
  double weighted_ber = 0.0;
  double total_bits = 0.0;
  kernels.ber_weighted_sum_n(ber_lut_view(), lut_rows_.data(), bits_.data(),
                             actual_snr_db.data(), kCodingGainDb,
                             actual_snr_db.size(), &weighted_ber, &total_bits);
  if (total_bits == 0.0) return 1.0;  // nothing loaded: undecodable
  return fec_waterfall(weighted_ber / total_bits);
}

double ToneMapSet::average_ble_mbps() const {
  if (slots.empty()) return robo.ble_mbps();
  double sum = 0.0;
  for (const ToneMap& tm : slots) sum += tm.ble_mbps();
  return sum / static_cast<double>(slots.size());
}

}  // namespace efd::plc

#include "src/plc/tone_map.hpp"

#include <cassert>
#include <cmath>

#include "src/grid/db_units.hpp"

namespace efd::plc {

namespace {

/// Coding gain of the rate-16/21 turbo code, applied when evaluating error
/// probabilities (the bit-loading thresholds in modulation.cpp already net
/// it out).
constexpr double kCodingGainDb = 7.0;

/// Map a mean uncoded BER to a PB (512 B block) error probability through a
/// turbo-decoder waterfall: blocks survive below ~1e-4 BER and are lost
/// almost surely above ~1e-2.
double fec_waterfall(double mean_ber) {
  if (mean_ber <= 0.0) return 0.0;
  const double x = std::log10(mean_ber);
  const double p = 1.0 / (1.0 + std::exp(-6.0 * (x + 2.7)));
  return p;
}

}  // namespace

void ToneMap::recompute() {
  double bits = 0.0;
  for (Modulation m : carriers_) bits += efd::plc::bits_per_symbol(m);
  bits /= robo_repetitions_;
  bits_per_symbol_ = bits;
  phy_rate_mbps_ = bits * fec_rate_ / symbol_us_;
  ble_mbps_ = phy_rate_mbps_ * (1.0 - expected_pberr_);
}

ToneMap ToneMap::from_snr(std::span<const double> snr_db, double margin_db,
                          const PhyParams& phy, double expected_pberr,
                          std::uint32_t id) {
  ToneMap tm;
  tm.fec_rate_ = phy.fec_rate;
  tm.symbol_us_ = phy.symbol.us();
  tm.expected_pberr_ = expected_pberr;
  tm.id_ = id;
  tm.carriers_.reserve(snr_db.size());
  for (double snr : snr_db) {
    tm.carriers_.push_back(pick_modulation(snr - margin_db));
  }
  tm.recompute();
  return tm;
}

ToneMap ToneMap::from_carriers(std::vector<Modulation> carriers, const PhyParams& phy,
                               double expected_pberr, std::uint32_t id) {
  ToneMap tm;
  tm.fec_rate_ = phy.fec_rate;
  tm.symbol_us_ = phy.symbol.us();
  tm.expected_pberr_ = expected_pberr;
  tm.id_ = id;
  tm.carriers_ = std::move(carriers);
  tm.recompute();
  return tm;
}

ToneMap ToneMap::robo(const PhyParams& phy, const RoboMode& robo) {
  ToneMap tm;
  tm.fec_rate_ = 0.5;  // ROBO uses the robust rate-1/2 code
  tm.symbol_us_ = phy.symbol.us();
  tm.expected_pberr_ = 0.0;
  tm.id_ = 0;
  tm.robo_repetitions_ = robo.repetitions;
  tm.carriers_.assign(static_cast<std::size_t>(phy.band.n_carriers),
                      Modulation::kQpsk);
  tm.recompute();
  return tm;
}

double ToneMap::pb_error_probability(std::span<const double> actual_snr_db,
                                     const PhyParams& phy) const {
  (void)phy;
  assert(actual_snr_db.size() == carriers_.size());
  if (robo_repetitions_ > 1) {
    // ROBO interleaves each bit's copies across *different* carriers, so a
    // copy landing in a deep notch is rescued by copies on clean carriers:
    // combining approximates summing the linear SNRs of the copies, i.e.
    // repetitions times the mean linear SNR. This is what makes broadcast
    // frames decodable on links whose data quality is poor (§8.1).
    double mean_linear = 0.0;
    for (double snr : actual_snr_db) {
      mean_linear += grid::db_to_linear(snr);
    }
    mean_linear /= static_cast<double>(actual_snr_db.size());
    const double combined_db =
        grid::linear_to_db(robo_repetitions_ * std::max(1e-6, mean_linear));
    const double ber =
        uncoded_ber(Modulation::kQpsk, combined_db + kCodingGainDb);
    return fec_waterfall(ber);
  }
  double weighted_ber = 0.0;
  double total_bits = 0.0;
  for (std::size_t i = 0; i < carriers_.size(); ++i) {
    const int b = efd::plc::bits_per_symbol(carriers_[i]);
    if (b == 0) continue;
    const double eff_snr = actual_snr_db[i] + kCodingGainDb;
    weighted_ber += uncoded_ber(carriers_[i], eff_snr) * b;
    total_bits += b;
  }
  if (total_bits == 0.0) return 1.0;  // nothing loaded: undecodable
  return fec_waterfall(weighted_ber / total_bits);
}

double ToneMapSet::average_ble_mbps() const {
  if (slots.empty()) return robo.ble_mbps();
  double sum = 0.0;
  for (const ToneMap& tm : slots) sum += tm.ble_mbps();
  return sum / static_cast<double>(slots.size());
}

}  // namespace efd::plc

#include "src/plc/network.hpp"

#include <cassert>

namespace efd::plc {

PlcNetwork::PlcNetwork(sim::Simulator& simulator, const PlcChannel& channel,
                       sim::Rng rng, Config config)
    : sim_(simulator),
      channel_(channel),
      rng_(rng),
      cfg_(config),
      medium_(simulator, channel, rng.fork(0xeadULL)) {}

PlcStation& PlcNetwork::add_station(net::StationId id, int outlet) {
  assert(!stations_.contains(id));
  auto station = std::unique_ptr<PlcStation>(new PlcStation(id, outlet));
  station->mac_ = std::make_unique<PlcMac>(sim_, medium_, channel_, *this, id,
                                           rng_.fork(++rng_streams_), cfg_.mac);
  medium_.register_mac(*station->mac_);
  PlcStation& ref = *station;
  stations_.emplace(id, std::move(station));
  if (cco_ == -1) cco_ = id;  // first station plugged becomes CCo (§3.1)
  return ref;
}

PlcStation& PlcNetwork::station(net::StationId id) {
  const auto it = stations_.find(id);
  assert(it != stations_.end());
  return *it->second;
}

ChannelEstimator& PlcNetwork::estimator(net::StationId rx, net::StationId tx) {
  PlcStation& st = station(rx);
  auto it = st.estimators_.find(tx);
  if (it == st.estimators_.end()) {
    it = st.estimators_
             .emplace(tx, std::make_unique<ChannelEstimator>(
                              channel_, tx, rx, rng_.fork(++rng_streams_),
                              cfg_.estimator))
             .first;
  }
  return *it->second;
}

double PlcNetwork::mm_average_ble(net::StationId tx, net::StationId rx) {
  return estimator(rx, tx).average_ble_mbps();
}

double PlcNetwork::mm_pberr(net::StationId tx, net::StationId rx) {
  return estimator(rx, tx).measured_pberr();
}

void PlcNetwork::reset_link_estimation(net::StationId tx, net::StationId rx) {
  estimator(rx, tx).reset(sim_.now());
}

bool PlcNetwork::inject_boundary(const net::Packet& p) {
  assert(gateway_ >= 0 && "inject_boundary before set_boundary_gateway");
  ++boundary_ingress_;
  return station(gateway_).mac().enqueue(p);
}

}  // namespace efd::plc

#include "src/plc/modulation.hpp"

#include <cmath>

namespace efd::plc {

namespace {
/// Gaussian tail function.
double q_func(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }
}  // namespace

int bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kOff: return 0;
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam8: return 3;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
    case Modulation::kQam256: return 8;
    case Modulation::kQam1024: return 10;
  }
  return 0;
}

double required_snr_db(Modulation m) {
  // Net thresholds after the ~7 dB coding gain of the rate-16/21 turbo code.
  switch (m) {
    case Modulation::kOff: return -1e9;
    case Modulation::kBpsk: return 2.0;
    case Modulation::kQpsk: return 5.0;
    case Modulation::kQam8: return 8.5;
    case Modulation::kQam16: return 11.5;
    case Modulation::kQam64: return 17.5;
    case Modulation::kQam256: return 23.5;
    case Modulation::kQam1024: return 29.5;
  }
  return 1e9;
}

Modulation pick_modulation(double snr_db) {
  static constexpr Modulation kAll[] = {
      Modulation::kQam1024, Modulation::kQam256, Modulation::kQam64,
      Modulation::kQam16,   Modulation::kQam8,   Modulation::kQpsk,
      Modulation::kBpsk,
  };
  for (Modulation m : kAll) {
    if (snr_db >= required_snr_db(m)) return m;
  }
  return Modulation::kOff;
}

double uncoded_ber(Modulation m, double snr_db) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  switch (m) {
    case Modulation::kOff:
      return 0.0;  // carrier unused: contributes no bits, no errors
    case Modulation::kBpsk:
      return q_func(std::sqrt(2.0 * snr));
    case Modulation::kQpsk:
      return q_func(std::sqrt(snr));
    default: {
      const int b = bits_per_symbol(m);
      const double mm = std::pow(2.0, b);
      // Gray-coded square/cross QAM approximation.
      const double arg = std::sqrt(3.0 * snr / (mm - 1.0));
      return (4.0 / b) * (1.0 - 1.0 / std::sqrt(mm)) * q_func(arg);
    }
  }
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kOff: return "off";
    case Modulation::kBpsk: return "bpsk";
    case Modulation::kQpsk: return "qpsk";
    case Modulation::kQam8: return "8-qam";
    case Modulation::kQam16: return "16-qam";
    case Modulation::kQam64: return "64-qam";
    case Modulation::kQam256: return "256-qam";
    case Modulation::kQam1024: return "1024-qam";
  }
  return "unknown";
}

}  // namespace efd::plc

#include "src/plc/modulation.hpp"

#include <array>
#include <cmath>
#include <cstddef>

namespace efd::plc {

namespace {
/// Gaussian tail function.
double q_func(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// LUT domain: 0.1 dB steps over [-80, 60] dB. Below -80 dB every BER has
/// flattened to within 1e-4 of its 0-SNR limit; above 60 dB every BER has
/// underflowed to 0 for all supported constellations.
constexpr double kLutMinDb = -80.0;
constexpr double kLutMaxDb = 60.0;
constexpr double kLutStepDb = 0.1;
constexpr std::size_t kLutSize =
    static_cast<std::size_t>((kLutMaxDb - kLutMinDb) / kLutStepDb) + 1;

struct BerTables {
  // One table per Modulation enumerator (kOff's stays all-zero).
  std::array<std::array<double, kLutSize>, kModulationCount> ber{};

  BerTables() {
    for (int m = 0; m < kModulationCount; ++m) {
      if (static_cast<Modulation>(m) == Modulation::kOff) continue;
      for (std::size_t i = 0; i < kLutSize; ++i) {
        const double snr_db = kLutMinDb + static_cast<double>(i) * kLutStepDb;
        ber[static_cast<std::size_t>(m)][i] =
            uncoded_ber_exact(static_cast<Modulation>(m), snr_db);
      }
    }
  }
};

const BerTables& ber_tables() {
  static const BerTables tables;
  return tables;
}
}  // namespace

grid::simd::InterpTableView ber_lut_view() {
  const BerTables& t = ber_tables();
  return {
      t.ber[0].data(),
      kModulationCount,
      static_cast<std::int32_t>(kLutSize),
      kLutMinDb,
      kLutStepDb,
  };
}

double required_snr_db(Modulation m) {
  // Net thresholds after the ~7 dB coding gain of the rate-16/21 turbo code.
  switch (m) {
    case Modulation::kOff: return -1e9;
    case Modulation::kBpsk: return 2.0;
    case Modulation::kQpsk: return 5.0;
    case Modulation::kQam8: return 8.5;
    case Modulation::kQam16: return 11.5;
    case Modulation::kQam64: return 17.5;
    case Modulation::kQam256: return 23.5;
    case Modulation::kQam1024: return 29.5;
  }
  return 1e9;
}

Modulation pick_modulation(double snr_db) {
  static constexpr Modulation kAll[] = {
      Modulation::kQam1024, Modulation::kQam256, Modulation::kQam64,
      Modulation::kQam16,   Modulation::kQam8,   Modulation::kQpsk,
      Modulation::kBpsk,
  };
  for (Modulation m : kAll) {
    if (snr_db >= required_snr_db(m)) return m;
  }
  return Modulation::kOff;
}

double uncoded_ber(Modulation m, double snr_db) {
  if (m == Modulation::kOff) return 0.0;
  const auto& table = ber_tables().ber[static_cast<std::size_t>(m)];
  const double pos = (snr_db - kLutMinDb) / kLutStepDb;
  if (pos <= 0.0) return table.front();
  if (pos >= static_cast<double>(kLutSize - 1)) return table.back();
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  return table[idx] + frac * (table[idx + 1] - table[idx]);
}

double uncoded_ber_exact(Modulation m, double snr_db) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  switch (m) {
    case Modulation::kOff:
      return 0.0;  // carrier unused: contributes no bits, no errors
    case Modulation::kBpsk:
      return q_func(std::sqrt(2.0 * snr));
    case Modulation::kQpsk:
      return q_func(std::sqrt(snr));
    default: {
      const int b = bits_per_symbol(m);
      const double mm = std::pow(2.0, b);
      // Gray-coded square/cross QAM approximation.
      const double arg = std::sqrt(3.0 * snr / (mm - 1.0));
      return (4.0 / b) * (1.0 - 1.0 / std::sqrt(mm)) * q_func(arg);
    }
  }
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kOff: return "off";
    case Modulation::kBpsk: return "bpsk";
    case Modulation::kQpsk: return "qpsk";
    case Modulation::kQam8: return "8-qam";
    case Modulation::kQam16: return "16-qam";
    case Modulation::kQam64: return "64-qam";
    case Modulation::kQam256: return "256-qam";
    case Modulation::kQam1024: return "1024-qam";
  }
  return "unknown";
}

}  // namespace efd::plc

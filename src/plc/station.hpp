#pragma once

#include <memory>
#include <unordered_map>

#include "src/plc/mac.hpp"

namespace efd::plc {

class PlcNetwork;

/// One PLC adapter: a MAC plus the receiver-side channel estimators it
/// maintains for every peer that transmits to it (tone maps are estimated
/// at the receiver, §2.1).
class PlcStation {
 public:
  PlcStation(const PlcStation&) = delete;
  PlcStation& operator=(const PlcStation&) = delete;

  [[nodiscard]] net::StationId id() const { return id_; }
  [[nodiscard]] int outlet() const { return outlet_; }
  [[nodiscard]] PlcMac& mac() { return *mac_; }
  [[nodiscard]] const PlcMac& mac() const { return *mac_; }

 private:
  friend class PlcNetwork;
  PlcStation(net::StationId id, int outlet) : id_(id), outlet_(outlet) {}

  net::StationId id_;
  int outlet_;
  std::unique_ptr<PlcMac> mac_;
  /// Estimators for incoming links, keyed by transmitter id.
  std::unordered_map<net::StationId, std::unique_ptr<ChannelEstimator>> estimators_;
};

}  // namespace efd::plc

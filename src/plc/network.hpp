#pragma once

#include <map>
#include <memory>

#include "src/plc/medium.hpp"
#include "src/plc/station.hpp"

namespace efd::plc {

/// A HomePlug AV logical network (AVLN): a set of stations sharing one
/// medium and one network encryption key, managed by a central coordinator
/// (CCo, §3.1). The paper's testbed forms two such networks, one per
/// distribution board, with statically set CCos (stations 11 and 15).
class PlcNetwork final : public EstimatorDirectory {
 public:
  struct Config {
    PlcMac::Config mac;
    ChannelEstimator::Config estimator;
  };

  PlcNetwork(sim::Simulator& simulator, const PlcChannel& channel, sim::Rng rng,
             Config config = {});

  /// Create a station attached at grid outlet `outlet`. The station id must
  /// be unique across the simulation (it doubles as the MAC address).
  PlcStation& add_station(net::StationId id, int outlet);

  [[nodiscard]] PlcStation& station(net::StationId id);
  [[nodiscard]] bool has_station(net::StationId id) const {
    return stations_.contains(id);
  }

  /// Statically pin the CCo, as the paper does with the Atheros toolkit.
  void set_cco(net::StationId id) { cco_ = id; }
  [[nodiscard]] net::StationId cco() const { return cco_; }

  [[nodiscard]] PlcMedium& medium() { return medium_; }
  [[nodiscard]] const PlcChannel& channel() const { return channel_; }

  // EstimatorDirectory: receiver-side estimator for frames tx -> rx,
  // created lazily on first use.
  ChannelEstimator& estimator(net::StationId rx, net::StationId tx) override;

  /// `int6krate`-style management query: average BLE over the tone-map
  /// slots for the directed link tx -> rx (Table 2).
  [[nodiscard]] double mm_average_ble(net::StationId tx, net::StationId rx);

  /// `ampstat`-style management query: smoothed PB error rate on tx -> rx.
  [[nodiscard]] double mm_pberr(net::StationId tx, net::StationId rx);

  /// Reset a station's estimation state for a given incoming link (the
  /// paper power-cycles devices between convergence runs, §7.1).
  void reset_link_estimation(net::StationId tx, net::StationId rx);

  /// Mark `id` as this AVLN's boundary gateway: the station through which
  /// ALL off-board traffic enters and leaves. The medium itself never
  /// crosses a distribution board (the sharded engine keeps it cell-local);
  /// the gateway is the one explicit crossing point.
  void set_boundary_gateway(net::StationId id) { gateway_ = id; }
  [[nodiscard]] net::StationId boundary_gateway() const { return gateway_; }

  /// Ingress half of a boundary crossing: hand a packet that arrived from
  /// another board to the gateway MAC, which contends for the local medium
  /// like any station. Returns false when the gateway queue drops it.
  bool inject_boundary(const net::Packet& p);

  /// Egress accounting: the campus layer calls this when the gateway hands
  /// a packet off-board.
  void record_boundary_egress() { ++boundary_egress_; }
  [[nodiscard]] std::uint64_t boundary_ingress() const { return boundary_ingress_; }
  [[nodiscard]] std::uint64_t boundary_egress() const { return boundary_egress_; }

 private:
  sim::Simulator& sim_;
  const PlcChannel& channel_;
  sim::Rng rng_;
  Config cfg_;
  PlcMedium medium_;
  std::map<net::StationId, std::unique_ptr<PlcStation>> stations_;
  net::StationId cco_ = -1;
  net::StationId gateway_ = -1;
  std::uint64_t boundary_ingress_ = 0;
  std::uint64_t boundary_egress_ = 0;
  std::uint64_t rng_streams_ = 0;
};

}  // namespace efd::plc

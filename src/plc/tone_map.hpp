#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/plc/modulation.hpp"
#include "src/plc/phy.hpp"

namespace efd::plc {

/// A tone map: one modulation per OFDM carrier plus the FEC rate and the
/// PB error rate expected when it was generated (IEEE 1901; paper §2.1 and
/// Definition 1). The receiver estimates it and sends it to the source; the
/// BLE in every SoF delimiter is derived from it via Eq. (1):
///
///     BLE = B * R * (1 - PBerr) / Tsym
class ToneMap {
 public:
  ToneMap() = default;

  /// Bit-load from a per-carrier SNR estimate: each carrier gets the largest
  /// constellation whose threshold plus `margin_db` is at or below its SNR.
  static ToneMap from_snr(std::span<const double> snr_db, double margin_db,
                          const PhyParams& phy, double expected_pberr,
                          std::uint32_t id);

  /// Build from an explicit per-carrier assignment (used by the estimator's
  /// rate clamping, which demotes individual carriers).
  static ToneMap from_carriers(std::vector<Modulation> carriers, const PhyParams& phy,
                               double expected_pberr, std::uint32_t id);

  /// The default/ROBO tone map used for sound frames and broadcast (§2.1).
  static ToneMap robo(const PhyParams& phy, const RoboMode& robo = {});

  /// Eq. (1), in Mb/s.
  [[nodiscard]] double ble_mbps() const { return ble_mbps_; }

  /// Raw PHY rate B*R/Tsym in Mb/s (no PBerr discount): the rate at which
  /// PB bits are clocked onto the wire, used for airtime computation.
  [[nodiscard]] double phy_rate_mbps() const { return phy_rate_mbps_; }

  /// B: total bits per OFDM symbol across carriers.
  [[nodiscard]] double bits_per_symbol() const { return bits_per_symbol_; }

  [[nodiscard]] double expected_pberr() const { return expected_pberr_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] bool is_robo() const { return robo_repetitions_ > 1; }
  [[nodiscard]] int robo_repetitions() const { return robo_repetitions_; }
  [[nodiscard]] const std::vector<Modulation>& carriers() const { return carriers_; }

  /// PB error probability if this tone map is used while the channel
  /// actually provides `actual_snr_db` per carrier: mean uncoded BER over
  /// loaded carriers pushed through the turbo-FEC waterfall. Runs on the
  /// process-wide carrier kernels (grid::simd::active_kernels()).
  [[nodiscard]] double pb_error_probability(std::span<const double> actual_snr_db,
                                            const PhyParams& phy) const;

  /// Same, on an explicit kernel entry — lets the differential tests and the
  /// odd-tail sweeps pin every compiled-in implementation.
  [[nodiscard]] double pb_error_probability(
      std::span<const double> actual_snr_db, const PhyParams& phy,
      const grid::simd::CarrierKernels& kernels) const;

 private:
  std::vector<Modulation> carriers_;
  // Structure-of-arrays mirrors of carriers_, rebuilt by recompute(): the
  // BER-LUT row offset (modulation * row length) and the bit weight of each
  // carrier, in the exact layout ber_weighted_sum_n consumes. kOff carriers
  // keep row 0 (all-zero) and weight 0.0, so the batch reduction needs no
  // "carrier off" branch.
  std::vector<std::int32_t> lut_rows_;
  std::vector<double> bits_;
  double fec_rate_ = 16.0 / 21.0;
  double symbol_us_ = 46.52;
  double expected_pberr_ = 0.0;
  std::uint32_t id_ = 0;
  int robo_repetitions_ = 1;
  // Cached derived quantities.
  double bits_per_symbol_ = 0.0;
  double phy_rate_mbps_ = 0.0;
  double ble_mbps_ = 0.0;

  void recompute();
};

/// The up-to-7 tone maps of a link direction: one per tone-map slot of the
/// AC half cycle plus the ROBO default (§2.1).
struct ToneMapSet {
  std::vector<ToneMap> slots;  ///< size = PhyParams::tone_map_slots
  ToneMap robo;

  /// Average BLE over the slots — what `int6krate` reports and what the
  /// paper calls "average BLE" (Table 2, §6).
  [[nodiscard]] double average_ble_mbps() const;
};

}  // namespace efd::plc

#pragma once

#include <memory>
#include <vector>

#include "src/net/packet.hpp"
#include "src/plc/tone_map.hpp"
#include "src/sim/time.hpp"

namespace efd::plc {

/// One 512-byte physical block (PB, §2.2): the retransmission unit. A PB
/// carries a slice of exactly one Ethernet packet in this model; the packet
/// completes at the receiver when all its PBs have arrived.
struct PbUnit {
  std::shared_ptr<const net::Packet> packet;
  int index = 0;    ///< which PB of the packet (0-based)
  int total = 1;    ///< PBs the packet segments into
  int retries = 0;  ///< times this PB has been (re)transmitted
};

/// A PLC frame on the wire: SoF delimiter + aggregated PBs (§2.2, Fig. 1).
struct PlcFrame {
  net::StationId src = 0;
  net::StationId dst = 0;  ///< net::kBroadcast for broadcast
  std::vector<PbUnit> pbs;
  int slot = 0;                ///< tone-map slot at transmission start
  std::uint32_t tone_map_id = 0;
  double ble_mbps = 0.0;       ///< the BLEs advertised in the SoF delimiter
  /// Snapshot of the tone map in force at transmission time (the estimator
  /// may retune while the frame is in flight).
  ToneMap tone_map;
  bool robo = false;           ///< sent with the default/ROBO tone map
  bool sound = false;          ///< triggers channel estimation at receiver
  int n_symbols = 1;
  sim::Time start;
  sim::Time end;
};

/// What a passive sniffer captures from a start-of-frame delimiter (§2.2,
/// Table 2): the arrival timestamp and the BLE, plus frame geometry. This is
/// the exact observable surface of the Atheros toolkit's sniffer mode.
struct SofRecord {
  sim::Time start;
  sim::Time end;
  net::StationId src = 0;
  net::StationId dst = 0;
  int slot = 0;
  double ble_mbps = 0.0;
  int n_pbs = 0;
  int n_symbols = 1;
  bool robo = false;
  bool sound = false;
  bool broadcast = false;
};

}  // namespace efd::plc

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.hpp"

namespace efd::sim {

/// Handle to a scheduled event; allows cancellation. Copies share state, so a
/// handle can be stashed by the component that scheduled the event and
/// cancelled later (e.g. a retransmission timer disarmed by a SACK).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() { if (cancelled_) *cancelled_ = true; }

  /// True if the handle refers to an event that is still pending.
  [[nodiscard]] bool pending() const { return cancelled_ && !*cancelled_ && !*fired_; }

 private:
  friend class Simulator;
  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<bool> fired_;
};

/// Discrete-event simulator: a clock plus a time-ordered queue of callbacks.
/// Events scheduled for the same instant fire in scheduling order (FIFO),
/// which keeps MAC-layer tie-breaking deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  EventHandle at(Time t, std::function<void()> fn);

  /// Schedule `fn` after a relative delay from now.
  EventHandle after(Time delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue drains or the clock would pass `end`.
  /// The clock is left at `end` (or at the last event if the queue drained).
  void run_until(Time end);

  /// Run until the event queue is empty.
  void run();

  /// Number of events dispatched since construction.
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Drop all pending events and reset the clock to zero.
  void reset();

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    std::shared_ptr<bool> fired;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_{};
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace efd::sim

#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/inline_function.hpp"
#include "src/sim/time.hpp"

namespace efd::sim {

class Simulator;

/// The event engine's callback type: 48 bytes of inline capture, heap-boxed
/// beyond that (see InlineFunction). 48 covers every MAC-timer shape in the
/// codebase — `this` plus a few ids/Times, or a captured vector of winners.
using EventFn = InlineFunction<void(), 48>;

/// True when scheduling a callable of type `F` performs no heap allocation.
/// Hot call sites pin themselves to this via `at_inline`/`after_inline`.
template <typename F>
inline constexpr bool fits_inline = EventFn::stores_inline<F>;

/// Handle to a scheduled event; allows cancellation. A handle is a
/// {slab slot, generation} pair: copies refer to the same slot, so one can be
/// stashed by the component that scheduled the event and cancelled later
/// (e.g. a retransmission timer disarmed by a SACK). Once the event fires or
/// its cancellation is collected, the slot's generation advances and every
/// outstanding handle to it goes inert — a stale handle can never cancel an
/// event that recycled the slot.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent. Cancellation is a
  /// lazy tombstone: the slot is reclaimed when the dispatch loop pops it.
  inline void cancel();

  /// True if the handle refers to an event that is still pending.
  [[nodiscard]] inline bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Discrete-event simulator: a clock plus a time-ordered queue of callbacks.
/// Events scheduled for the same instant fire in scheduling order (FIFO),
/// which keeps MAC-layer tie-breaking deterministic.
///
/// Engine layout (DESIGN.md §9): event records live in a generation-counted
/// slab with free-list reuse; the ready queue is a 4-ary min-heap of slim
/// {time, seq, slot} nodes ordered by (time, seq). In steady state —
/// slab and heap at capacity, inline-capture callbacks — schedule + dispatch
/// performs zero heap allocations (pinned by sim_event_engine_test).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  EventHandle at(Time t, EventFn fn);

  /// Schedule `fn` after a relative delay from now.
  EventHandle after(Time delay, EventFn fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// `at`, statically guaranteed allocation-free: the capture must fit the
  /// EventFn inline buffer. Hot per-symbol/per-slot call sites use this so a
  /// capture that grows past the buffer fails to compile instead of silently
  /// degrading to one heap allocation per event.
  template <typename F>
  EventHandle at_inline(Time t, F&& fn) {
    static_assert(fits_inline<std::decay_t<F>>,
                  "hot-path event capture spills out of the inline buffer");
    return at(t, EventFn(std::forward<F>(fn)));
  }

  template <typename F>
  EventHandle after_inline(Time delay, F&& fn) {
    return at_inline<F>(now_ + delay, std::forward<F>(fn));
  }

  /// Run events until the queue drains or the clock would pass `end`.
  /// The clock is left at `end` (or at the last event if the queue drained).
  void run_until(Time end);

  /// Move the clock forward to `t` without dispatching anything. Every
  /// pending event must lie at or after `t` (asserted): the sharded engine
  /// uses this to place the clock exactly on a boundary-event timestamp
  /// after run_until(t - 1ns), so arrival handlers observe now() == t and
  /// schedule follow-ups normally. Tombstoned events earlier than `t` are
  /// reaped here, like the dispatch loop would.
  void advance_to(Time t);

  /// Run until the event queue is empty.
  void run();

  /// Number of events dispatched since construction or the last reset().
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// FIFO sequence counter: events ever scheduled since construction or the
  /// last reset(). Together with events_dispatched() and the pending set it
  /// fingerprints the engine state for checkpoints (DESIGN.md §15).
  [[nodiscard]] std::uint64_t sequence() const { return seq_; }

  /// Visit every pending heap entry as (t_ns, seq), in unspecified order
  /// (heap layout). Checkpointing sorts the pairs before digesting so the
  /// fingerprint does not depend on the internal layout.
  template <typename F>
  void visit_pending(F&& fn) const {
    for (const HeapNode& n : heap_) fn(n.t_ns, n.seq);
  }

  /// Events scheduled but not yet fired or collected (tombstoned events
  /// count until the dispatch loop reaps them).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }

  /// Slab slots currently live (scheduled or tombstoned-awaiting-reap).
  [[nodiscard]] std::size_t slab_occupancy() const {
    return slots_.size() - free_.size();
  }

  /// Slab slots ever allocated (high-water mark of concurrent events).
  [[nodiscard]] std::size_t slab_capacity() const { return slots_.size(); }

  /// Drop all pending events and restore the as-constructed state: clock,
  /// FIFO sequence counter, and dispatch count all return to zero, so a
  /// reset simulator replays identical event orderings. Slot generations are
  /// NOT reset — handles from before the reset stay inert even when their
  /// slot is recycled.
  void reset();

 private:
  friend class EventHandle;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    bool cancelled = false;
    bool occupied = false;
  };

  /// Heap node: the sort keys plus the slab slot, kept slim so sifts move
  /// 24 bytes instead of a fat event record.
  struct HeapNode {
    std::int64_t t_ns;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const HeapNode& a, const HeapNode& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_top();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  std::vector<Slot> slots_;           ///< event record slab
  std::vector<std::uint32_t> free_;   ///< free slot stack (LIFO reuse)
  std::vector<HeapNode> heap_;        ///< 4-ary min-heap over (t, seq)
  Time now_{};
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

inline void EventHandle::cancel() {
  if (sim_ == nullptr || slot_ >= sim_->slots_.size()) return;
  Simulator::Slot& s = sim_->slots_[slot_];
  if (s.gen == gen_ && s.occupied) s.cancelled = true;
}

inline bool EventHandle::pending() const {
  if (sim_ == nullptr || slot_ >= sim_->slots_.size()) return false;
  const Simulator::Slot& s = sim_->slots_[slot_];
  return s.gen == gen_ && s.occupied && !s.cancelled;
}

}  // namespace efd::sim

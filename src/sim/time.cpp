#include "src/sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace efd::sim {

std::string Time::str() const {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", seconds());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", us());
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace efd::sim

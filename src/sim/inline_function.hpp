#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace efd::sim {

/// Move-only type-erased callable with a fixed inline buffer. The event
/// engine's replacement for `std::function<void()>`: a capture that fits the
/// buffer (and is nothrow-move-constructible, so relocation cannot throw) is
/// stored in place and scheduling it performs no heap allocation. Oversized
/// captures fall back to a single heap box — still cheaper than
/// `std::function` plus the old per-event control blocks, but hot call sites
/// should pin themselves to the inline path via `Simulator::at_inline` /
/// `after_inline` or `fits_inline<F>`.
template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  static_assert(Capacity >= sizeof(void*));

  /// True when `F` takes the allocation-free inline path.
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::ops;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { destroy(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "calling an empty InlineFunction");
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct BoxedOps {
    static R invoke(void* p, Args&&... args) {
      return (**static_cast<Fn**>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(*static_cast<Fn**>(src));
    }
    static void destroy(void* p) noexcept { delete *static_cast<Fn**>(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void steal(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace efd::sim

#pragma once

// Deterministic checkpoints of the sharded event engine (DESIGN.md §15).
//
// Engine events are type-erased closures, so a checkpoint cannot serialize
// the queue itself. Instead it captures a *fingerprint* of the quiescent
// engine — per-shard clocks/counters plus an order-independent FNV-1a
// digest of the pending (time, seq) set, and per-mailbox counters plus a
// FIFO-order digest of undelivered boundary events. Restore is
// reset-and-replay: rebuild the world, replay deterministically to the
// checkpoint time, then verify the replayed engine produces the *same*
// fingerprint. The byte form (to_bytes/from_bytes) carries a trailing
// digest of its own payload, so a truncated or corrupted checkpoint is
// rejected instead of silently "verifying".

#include <cstdint>
#include <vector>

namespace efd::sim {

/// FNV-1a over little-endian u64 words; the same constants every digest
/// stream in the repo uses, so checkpoint fingerprints fold naturally into
/// campus-level digests.
struct Fnv1a64 {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
};

/// Fingerprint of one shard's slab Simulator at a horizon.
struct ShardCheckpoint {
  std::int64_t horizon_ns = 0;   ///< published conservative horizon
  std::int64_t now_ns = 0;       ///< engine clock
  std::uint64_t dispatched = 0;  ///< events dispatched since construction
  std::uint64_t sequence = 0;    ///< FIFO sequence counter
  std::uint64_t pending = 0;     ///< events still queued
  std::uint64_t pending_digest = 0;  ///< FNV over sorted (t, seq) pairs

  bool operator==(const ShardCheckpoint&) const = default;
};

/// Fingerprint of one directed boundary mailbox.
struct MailboxCheckpoint {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t pending_digest = 0;  ///< FNV over undelivered events, FIFO order

  bool operator==(const MailboxCheckpoint&) const = default;
};

/// Fingerprint of the whole engine, taken quiescently (between run_until
/// calls). ShardedSimulator::checkpoint() produces one;
/// ShardedSimulator::matches() re-derives and compares after a replay.
struct EngineCheckpoint {
  std::int64_t t_ns = 0;  ///< exclusive horizon the run reached
  std::int32_t n_cells = 0;
  std::int32_t n_shards = 0;
  std::vector<ShardCheckpoint> shards;
  std::vector<MailboxCheckpoint> mailboxes;

  bool operator==(const EngineCheckpoint&) const = default;

  /// Order-exact FNV-1a fold of every field; two engines with equal
  /// digest() are byte-identical at the fingerprint granularity.
  [[nodiscard]] std::uint64_t digest() const;

  /// Serialize as little-endian u64 words: magic, header, shard records,
  /// mailbox records, then an FNV-1a digest of all preceding bytes.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// Parse and verify bytes produced by to_bytes(). Returns false (leaving
  /// `out` untouched) on bad magic, short/oversized payload, or digest
  /// mismatch.
  [[nodiscard]] static bool from_bytes(const std::vector<std::uint8_t>& bytes,
                                       EngineCheckpoint& out);
};

}  // namespace efd::sim

#include "src/sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "src/obs/obs.hpp"

namespace efd::sim {

namespace {
/// 4-ary heap geometry: children of i are 4i+1..4i+4, parent is (i-1)/4.
/// Shallower than a binary heap (half the levels), so a sift touches fewer
/// cache lines; the 4-way child scan is branch-cheap on slim 24-byte nodes.
constexpr std::size_t kArity = 4;
}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (free_.empty()) {
    slots_.emplace_back();
    // The free stack must absorb every live slot without reallocating, or
    // release_slot allocates while a pre-scheduled batch (a fault plan, a
    // bursty source) drains — paid here, where the slab grows anyway.
    if (free_.capacity() < slots_.capacity()) free_.reserve(slots_.capacity());
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = EventFn{};
  s.cancelled = false;
  s.occupied = false;
  ++s.gen;  // every outstanding handle to this slot goes inert
  free_.push_back(slot);
}

void Simulator::sift_up(std::size_t i) {
  const HeapNode node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void Simulator::sift_down(std::size_t i) {
  const HeapNode node = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

void Simulator::pop_top() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

EventHandle Simulator::at(Time t, EventFn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  EFD_COUNTER_INC("sim.events_scheduled");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.occupied = true;
  heap_.push_back(HeapNode{t.ns(), seq_++, slot});
  sift_up(heap_.size() - 1);
  return EventHandle{this, slot, s.gen};
}

void Simulator::run_until(Time end) {
  // One scope per dispatch batch, not per event: a per-event scope would
  // dominate the ~100ns schedule+dispatch budget this engine exists for.
  EFD_PROF_SCOPE("sim.run");
  EFD_GAUGE_SET("sim.queue_depth", heap_.size());
  EFD_GAUGE_SET("sim.slab_occupancy", slab_occupancy());
  while (!heap_.empty() && heap_[0].t_ns <= end.ns()) {
    const HeapNode top = heap_[0];
    pop_top();
    now_ = Time{top.t_ns};
    Slot& s = slots_[top.slot];
    if (s.cancelled) {
      EFD_COUNTER_INC("sim.events_cancelled");
      release_slot(top.slot);
      continue;
    }
    // Move the callback out and free the slot *before* invoking: the
    // callback may schedule (growing the slab) or cancel other events, and a
    // handle to the now-firing event must already be inert.
    EventFn fn = std::move(s.fn);
    release_slot(top.slot);
    ++dispatched_;
    EFD_COUNTER_INC("sim.events_dispatched");
    fn();
  }
  if (now_ < end) now_ = end;
}

void Simulator::advance_to(Time t) {
  assert(t >= now_ && "cannot advance the clock backwards");
  while (!heap_.empty() && heap_[0].t_ns < t.ns() &&
         slots_[heap_[0].slot].cancelled) {
    const HeapNode top = heap_[0];
    EFD_COUNTER_INC("sim.events_cancelled");
    pop_top();
    release_slot(top.slot);
  }
  assert((heap_.empty() || heap_[0].t_ns >= t.ns()) &&
         "advance_to would skip a live event");
  now_ = t;
}

void Simulator::run() {
  EFD_PROF_SCOPE("sim.run");
  EFD_GAUGE_SET("sim.queue_depth", heap_.size());
  EFD_GAUGE_SET("sim.slab_occupancy", slab_occupancy());
  while (!heap_.empty()) {
    const HeapNode top = heap_[0];
    pop_top();
    now_ = Time{top.t_ns};
    Slot& s = slots_[top.slot];
    if (s.cancelled) {
      EFD_COUNTER_INC("sim.events_cancelled");
      release_slot(top.slot);
      continue;
    }
    EventFn fn = std::move(s.fn);
    release_slot(top.slot);
    ++dispatched_;
    EFD_COUNTER_INC("sim.events_dispatched");
    fn();
  }
}

void Simulator::reset() {
  heap_.clear();
  free_.clear();
  // Free every slot, highest index first, so the post-reset acquisition
  // order (0, 1, 2, ...) matches a freshly constructed simulator's.
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& s = slots_[i];
    if (s.occupied) {
      s.fn = EventFn{};
      s.cancelled = false;
      s.occupied = false;
      ++s.gen;
    }
    free_.push_back(static_cast<std::uint32_t>(i));
  }
  now_ = Time{};
  seq_ = 0;
  dispatched_ = 0;
}

}  // namespace efd::sim

#include "src/sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "src/obs/obs.hpp"

namespace efd::sim {

EventHandle Simulator::at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  EFD_COUNTER_INC("sim.events_scheduled");
  Event ev{t, seq_++, std::move(fn), std::make_shared<bool>(false),
           std::make_shared<bool>(false)};
  EventHandle h;
  h.cancelled_ = ev.cancelled;
  h.fired_ = ev.fired;
  queue_.push(std::move(ev));
  return h;
}

void Simulator::run_until(Time end) {
  EFD_GAUGE_SET("sim.queue_depth", queue_.size());
  while (!queue_.empty() && queue_.top().t <= end) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    if (*ev.cancelled) {
      EFD_COUNTER_INC("sim.events_cancelled");
      continue;
    }
    *ev.fired = true;
    ++dispatched_;
    EFD_COUNTER_INC("sim.events_dispatched");
    ev.fn();
  }
  if (now_ < end) now_ = end;
}

void Simulator::run() {
  EFD_GAUGE_SET("sim.queue_depth", queue_.size());
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    if (*ev.cancelled) {
      EFD_COUNTER_INC("sim.events_cancelled");
      continue;
    }
    *ev.fired = true;
    ++dispatched_;
    EFD_COUNTER_INC("sim.events_dispatched");
    ev.fn();
  }
}

void Simulator::reset() {
  queue_ = {};
  now_ = Time{};
}

}  // namespace efd::sim

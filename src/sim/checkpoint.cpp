#include "src/sim/checkpoint.hpp"

#include <cstring>

namespace efd::sim {

namespace {

constexpr std::uint64_t kMagic = 0x454644434b505431ULL;  // "EFDCKPT1"

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t digest_bytes(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t EngineCheckpoint::digest() const {
  Fnv1a64 f;
  f.mix(t_ns);
  f.mix(static_cast<std::uint64_t>(n_cells));
  f.mix(static_cast<std::uint64_t>(n_shards));
  f.mix(static_cast<std::uint64_t>(shards.size()));
  for (const ShardCheckpoint& s : shards) {
    f.mix(s.horizon_ns);
    f.mix(s.now_ns);
    f.mix(s.dispatched);
    f.mix(s.sequence);
    f.mix(s.pending);
    f.mix(s.pending_digest);
  }
  f.mix(static_cast<std::uint64_t>(mailboxes.size()));
  for (const MailboxCheckpoint& m : mailboxes) {
    f.mix(m.pushed);
    f.mix(m.popped);
    f.mix(m.pending_digest);
  }
  return f.h;
}

std::vector<std::uint8_t> EngineCheckpoint::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(8 * (6 + 6 * shards.size() + 3 * mailboxes.size()));
  put_u64(out, kMagic);
  put_u64(out, static_cast<std::uint64_t>(t_ns));
  put_u64(out, static_cast<std::uint64_t>(n_cells));
  put_u64(out, static_cast<std::uint64_t>(n_shards));
  put_u64(out, shards.size());
  put_u64(out, mailboxes.size());
  for (const ShardCheckpoint& s : shards) {
    put_u64(out, static_cast<std::uint64_t>(s.horizon_ns));
    put_u64(out, static_cast<std::uint64_t>(s.now_ns));
    put_u64(out, s.dispatched);
    put_u64(out, s.sequence);
    put_u64(out, s.pending);
    put_u64(out, s.pending_digest);
  }
  for (const MailboxCheckpoint& m : mailboxes) {
    put_u64(out, m.pushed);
    put_u64(out, m.popped);
    put_u64(out, m.pending_digest);
  }
  put_u64(out, digest_bytes(out.data(), out.size()));
  return out;
}

bool EngineCheckpoint::from_bytes(const std::vector<std::uint8_t>& bytes,
                                  EngineCheckpoint& out) {
  constexpr std::size_t kHeader = 8 * 6;
  if (bytes.size() < kHeader + 8 || bytes.size() % 8 != 0) return false;
  const std::size_t payload = bytes.size() - 8;
  if (get_u64(bytes.data() + payload) != digest_bytes(bytes.data(), payload)) {
    return false;
  }
  if (get_u64(bytes.data()) != kMagic) return false;

  EngineCheckpoint cp;
  cp.t_ns = static_cast<std::int64_t>(get_u64(bytes.data() + 8));
  cp.n_cells = static_cast<std::int32_t>(get_u64(bytes.data() + 16));
  cp.n_shards = static_cast<std::int32_t>(get_u64(bytes.data() + 24));
  const std::uint64_t n_shard_recs = get_u64(bytes.data() + 32);
  const std::uint64_t n_mail_recs = get_u64(bytes.data() + 40);
  // Bound the counts before the size arithmetic so a forged header cannot
  // overflow it into a "consistent" payload length.
  if (n_shard_recs > (1u << 24) || n_mail_recs > (1u << 24)) return false;
  if (payload != kHeader + 8 * (6 * n_shard_recs + 3 * n_mail_recs)) return false;

  const std::uint8_t* p = bytes.data() + kHeader;
  cp.shards.resize(n_shard_recs);
  for (ShardCheckpoint& s : cp.shards) {
    s.horizon_ns = static_cast<std::int64_t>(get_u64(p)); p += 8;
    s.now_ns = static_cast<std::int64_t>(get_u64(p)); p += 8;
    s.dispatched = get_u64(p); p += 8;
    s.sequence = get_u64(p); p += 8;
    s.pending = get_u64(p); p += 8;
    s.pending_digest = get_u64(p); p += 8;
  }
  cp.mailboxes.resize(n_mail_recs);
  for (MailboxCheckpoint& m : cp.mailboxes) {
    m.pushed = get_u64(p); p += 8;
    m.popped = get_u64(p); p += 8;
    m.pending_digest = get_u64(p); p += 8;
  }
  out = std::move(cp);
  return true;
}

}  // namespace efd::sim

// Rng is header-only; this translation unit exists so the library has a
// stable archive member even if all other sources become header-only.
#include "src/sim/rng.hpp"

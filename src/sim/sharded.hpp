#pragma once

// efd::sim::ShardedSimulator — conservative parallel discrete-event engine
// (DESIGN.md §14).
//
// The simulated world is partitioned into `cells` (the campus layer maps one
// distribution board to one cell). Cells interact ONLY through time-stamped
// BoundaryEvents posted over declared directed links, each with a strictly
// positive lookahead: an event posted while the sender's clock reads `s`
// must be delivered at t >= s + lookahead. Cells are grouped into `shards`
// (contiguous blocks); each shard owns one slab Simulator that interleaves
// the events of all its cells, and runs on its own worker thread.
//
// Synchronization is conservative (Chandy–Misra–Bryant style, without null
// messages): every shard publishes a horizon H — "I have executed everything
// strictly below H, and will never post an event with delivery time below
// H + lookahead" — and advances in windows to
//
//     T = min over inbound inter-shard links (H_source + lookahead)
//
// processing, strictly below T, the deterministic merge of (a) its own
// event queue and (b) boundary arrivals, which are consumed in
// (timestamp, source cell, mailbox FIFO) order and always BEFORE local
// events at an equal timestamp. Because cells share no mutable state and
// the merge rule never depends on the window bounds, every cell observes
// the exact same event sequence for ANY shard count — the digest of a
// sharded run is byte-identical across EFD_SHARDS=1|2|8 (the PR 5
// determinism gate extended to parallel engines).
//
// Fault-tolerance surface (DESIGN.md §15): a wall-clock watchdog flags
// shards that stop making progress (run aborts with ShardStallError instead
// of hanging), mailboxes carry a soft capacity with producer backpressure
// at horizon boundaries, and checkpoint() fingerprints the quiescent engine
// for the reset-and-replay restore protocol.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <stop_token>
#include <vector>

#include "src/sim/checkpoint.hpp"
#include "src/sim/shard_mailbox.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace efd::sim {

/// Thrown (out of run_until) when the watchdog declares a shard stalled or
/// abort was requested mid-run. The engine state is indeterminate afterwards
/// — reset() before reusing it.
class ShardStallError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ShardedSimulator {
 public:
  /// Directed boundary link between two cells. `lookahead` must be > 0 and
  /// is the conservative bound the whole protocol rests on: it is physical
  /// (backbone propagation plus the minimum store-and-forward time the
  /// crossing's attenuation budget allows), not a tuning knob.
  struct Link {
    int src = 0;
    int dst = 0;
    Time lookahead{};
  };

  /// Watchdog policy: a shard that advances neither its horizon nor its
  /// progress beat within `budget_ns` of wall clock is declared stalled —
  /// diagnostics are dumped (stderr + efd::obs) and the run aborts with
  /// ShardStallError instead of hanging. budget_ns == 0 disables the
  /// watchdog. The beat granularity is one engine window chunk, so the
  /// budget must comfortably exceed the wall time of the largest chunk
  /// (milliseconds in practice; CI uses tens of seconds).
  struct WatchdogConfig {
    std::int64_t budget_ns = 0;
    std::int64_t poll_ns = 20'000'000;  ///< sampling period
  };

  struct Config {
    int n_cells = 1;
    /// Requested shard (worker) count; clamped to [1, n_cells]. 1 runs the
    /// identical window protocol inline on the calling thread.
    int n_shards = 1;
    std::vector<Link> links;
    /// Soft per-mailbox capacity (events); 0 = unbounded. A producer whose
    /// outbound inter-shard mailbox exceeds it stalls at its next horizon
    /// boundary — after publishing the horizon, so the consumer can always
    /// drain — until the consumer catches up. Backpressure never reorders
    /// events: digests are identical with any capacity.
    std::size_t mailbox_capacity = 0;
    WatchdogConfig watchdog;
  };

  /// Handler for boundary events arriving at a cell. Runs on the owning
  /// shard's thread with the shard simulator's clock at exactly e.t_ns.
  using CellHandler = std::function<void(const BoundaryEvent& e, Simulator& sim)>;

  explicit ShardedSimulator(Config cfg);

  [[nodiscard]] int n_cells() const { return cfg_.n_cells; }
  [[nodiscard]] int n_shards() const { return n_shards_; }
  [[nodiscard]] int shard_of(int cell) const { return shard_of_[static_cast<std::size_t>(cell)]; }

  /// The slab engine executing `cell`. Build the cell's world onto it (and
  /// schedule its initial events) before run_until; during a run only the
  /// owning shard thread may touch it.
  [[nodiscard]] Simulator& cell_sim(int cell) {
    return shards_[static_cast<std::size_t>(shard_of(cell))]->sim;
  }
  [[nodiscard]] Simulator& shard_sim(int shard) {
    return shards_[static_cast<std::size_t>(shard)]->sim;
  }

  void set_cell_handler(int cell, CellHandler handler);

  /// Post a boundary event over the (e.src_cell -> e.dst_cell) link. Must
  /// be called from the source cell's executing shard (or from the main
  /// thread before the first run). Asserts the link exists and that
  /// e.t_ns respects its lookahead.
  void post(const BoundaryEvent& e);

  /// Advance every cell through `end` (inclusive, run_until semantics).
  /// Spawns one worker per shard (n_shards == 1 runs inline); callable
  /// repeatedly with increasing `end`. Throws ShardStallError if the
  /// watchdog aborts the run, or rethrows the first cell exception.
  void run_until(Time end);

  /// Cooperatively abort an in-flight run: every shard throws
  /// ShardStallError at its next window or wait-loop check. Long-running
  /// cell events can poll abort_requested() to bail out early.
  void request_abort() { abort_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool abort_requested() const {
    return abort_.load(std::memory_order_relaxed);
  }

  /// Sum of events dispatched by every shard engine. Shard-count-invariant:
  /// the union of per-cell event sequences does not depend on the grouping.
  [[nodiscard]] std::uint64_t events_dispatched() const;

  struct ShardStats {
    std::uint64_t events_dispatched = 0;  ///< engine events this shard ran
    std::uint64_t boundary_posted = 0;    ///< events sent over its out-links
    std::uint64_t boundary_delivered = 0; ///< arrivals handed to its cells
    std::uint64_t windows = 0;            ///< conservative windows executed
    std::uint64_t backpressure_waits = 0; ///< yields spent over mailbox capacity
    std::int64_t busy_ns = 0;             ///< wall time executing (not waiting)
    std::int64_t wait_ns = 0;             ///< wall time blocked on horizons
  };
  [[nodiscard]] const std::vector<ShardStats>& shard_stats() const { return stats_; }

  /// High-water mark of undelivered events over all boundary mailboxes
  /// since construction or the last reset().
  [[nodiscard]] std::uint64_t mailbox_peak_occupancy() const;

  /// Fingerprint the quiescent engine (between run_until calls; never
  /// during a run). See checkpoint.hpp for the restore protocol.
  [[nodiscard]] EngineCheckpoint checkpoint() const;

  /// True when the engine's current fingerprint equals `cp` — the verify
  /// half of reset-and-replay restore.
  [[nodiscard]] bool matches(const EngineCheckpoint& cp) const {
    return checkpoint() == cp;
  }

  /// Drop all engine/mailbox state and return to the as-constructed state:
  /// every shard Simulator reset, every mailbox drained (counters zeroed),
  /// horizons back to zero. Cell worlds must then be rebuilt (their event
  /// chains died with the engines) — the reset-replay gate rebuilds and
  /// expects a byte-identical digest.
  void reset();

  /// EFD_SHARDS from the environment, hardened (core::env_count): unset,
  /// empty, zero, negative or non-numeric values return `fallback`.
  [[nodiscard]] static int env_shards(int fallback = 1);

 private:
  /// Mailbox endpoint of one directed link, in a shard's inbound list.
  /// Inbound lists are sorted by (src, dst) so same-timestamp arrivals are
  /// consumed in a grouping-independent order.
  struct Inbound {
    int link = 0;       ///< index into cfg_.links
    int src_cell = 0;
    int dst_cell = 0;
    bool inter = false; ///< source cell lives in another shard
  };

  struct Shard {
    Simulator sim;
    std::vector<int> cells;
    std::vector<Inbound> inbound;        ///< sorted by (src_cell, dst_cell)
    /// Inter-shard horizon terms: for each source shard with a link into
    /// this shard, the minimum lookahead over those links.
    std::vector<std::pair<int, std::int64_t>> horizon_terms;
    /// Outbound inter-shard links as (link index, consuming shard); the
    /// backpressure check walks these at horizon boundaries.
    std::vector<std::pair<int, int>> out_inter;
    std::int64_t lookahead_intra_ns = 0; ///< min over intra-shard links (0 = none)
    /// Published horizon: everything strictly below has been executed.
    alignas(64) std::atomic<std::int64_t> horizon{0};
    /// Progress beat, bumped once per window chunk and backpressure yield;
    /// the watchdog reads it (with the horizon) to tell "slow" from
    /// "stuck". Relaxed: it carries liveness, not data.
    std::atomic<std::uint64_t> beats{0};
    /// Pending-event depth published at each window boundary, so the
    /// watchdog's diagnostics never touch another thread's Simulator.
    std::atomic<std::uint64_t> heap_depth{0};
  };

  void run_shard(int shard, std::int64_t end_exclusive_ns);
  [[nodiscard]] std::int64_t safe_target(const Shard& s,
                                         std::int64_t end_exclusive_ns) const;
  /// Run one window [sim.now, target): the deterministic local/arrival
  /// merge described in the header comment.
  void run_window(int shard, Shard& s, std::int64_t target_ns);
  /// Soft-capacity stall after a horizon publish (see Config comment).
  void wait_backpressure(Shard& s, ShardStats& st, std::int64_t horizon_ns,
                         std::int64_t end_exclusive_ns);
  [[noreturn]] void throw_stall(int shard) const;
  /// Watchdog thread body: samples horizons/beats every poll_ns and aborts
  /// the run when one shard makes no progress for budget_ns.
  void watch(const std::stop_token& st, std::int64_t end_exclusive_ns);
  void dump_stall_diagnostics(std::int64_t end_exclusive_ns) const;

  Config cfg_;
  int n_shards_ = 1;
  std::vector<int> shard_of_;                      ///< cell -> shard
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardMailbox>> mail_; ///< one per cfg_.links entry
  std::vector<int> link_index_;                    ///< src*n_cells+dst -> link (-1)
  std::vector<CellHandler> handlers_;              ///< one per cell
  std::vector<ShardStats> stats_;
  std::atomic<bool> abort_{false};
  std::atomic<int> stalled_shard_{-1};
};

}  // namespace efd::sim

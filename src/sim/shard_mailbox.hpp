#pragma once

// Cross-shard boundary-event transport for the sharded event engine
// (DESIGN.md §14). One mailbox per *directed boundary link* (source cell ->
// destination cell), so each mailbox has exactly one producing thread (the
// shard executing the source cell) and one consuming thread (the shard
// executing the destination cell) — a true SPSC channel, lock-free on both
// hot paths.
//
// Memory model: events are written into fixed-size chunks; the producer
// publishes an event by a release-store of the chunk's `filled` counter and
// a new chunk by a release-store of the predecessor's `next` pointer. The
// consumer acquire-loads both, so every field of a BoundaryEvent it reads
// happened-before the load that revealed it. Spent chunks are recycled
// through a mutex-guarded free list (cold path, touched once every
// kChunkEvents events), which keeps the steady state allocation-free.

#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "src/sim/time.hpp"

namespace efd::sim {

/// One time-stamped event crossing a shard boundary. `t_ns` is the delivery
/// time at the destination cell and must respect the link's lookahead:
/// t_ns >= (sender's clock at post time) + lookahead. The payload words are
/// opaque to the engine; the campus layer packs packet metadata into them.
struct BoundaryEvent {
  std::int64_t t_ns = 0;     ///< delivery time at the destination cell
  std::int32_t src_cell = 0;
  std::int32_t dst_cell = 0;
  std::uint32_t kind = 0;    ///< caller-defined discriminator
  std::uint32_t bytes = 0;   ///< wire size, for airtime/accounting
  std::uint64_t a = 0;       ///< opaque payload
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Unbounded single-producer single-consumer FIFO of BoundaryEvents.
/// Unbounded on purpose: a bounded ring would make the producing shard
/// block on a full ring while the consuming shard waits for the producer's
/// horizon — a deadlock the conservative protocol cannot break. Chunks make
/// "unbounded" cheap: the producer allocates only when the free list is
/// empty, and the consumer returns spent chunks for reuse.
class SpscMailbox {
 public:
  static constexpr std::size_t kChunkEvents = 256;

  SpscMailbox() {
    head_ = tail_ = new Chunk();
  }

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  ~SpscMailbox() {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
    for (Chunk* f : free_) delete f;
  }

  /// Producer side. Events must be pushed in non-decreasing `t_ns` order
  /// (they are: the producer's simulation clock is monotone and every link
  /// applies one fixed lookahead).
  void push(const BoundaryEvent& e) {
    Chunk* t = tail_;
    const std::size_t n = t->filled.load(std::memory_order_relaxed);
    if (n == kChunkEvents) {
      Chunk* fresh = acquire_chunk();
      fresh->events[0] = e;
      fresh->filled.store(1, std::memory_order_release);
      t->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      return;
    }
    t->events[n] = e;
    t->filled.store(n + 1, std::memory_order_release);
  }

  /// Consumer side: the oldest undelivered event, or nullptr when none is
  /// visible. A non-null pointer stays valid until the next pop().
  [[nodiscard]] const BoundaryEvent* peek() {
    Chunk* h = head_;
    if (read_ < h->filled.load(std::memory_order_acquire)) {
      return &h->events[read_];
    }
    if (read_ == kChunkEvents) {
      Chunk* next = h->next.load(std::memory_order_acquire);
      if (next == nullptr) return nullptr;
      release_chunk(h);
      head_ = next;
      read_ = 0;
      return peek();
    }
    return nullptr;
  }

  /// Consumer side: discard the event peek() returned.
  void pop() { ++read_; }

 private:
  struct Chunk {
    BoundaryEvent events[kChunkEvents];
    std::atomic<std::size_t> filled{0};
    std::atomic<Chunk*> next{nullptr};
  };

  Chunk* acquire_chunk() {
    {
      const std::scoped_lock lock(free_mutex_);
      if (!free_.empty()) {
        Chunk* c = free_.back();
        free_.pop_back();
        c->filled.store(0, std::memory_order_relaxed);
        c->next.store(nullptr, std::memory_order_relaxed);
        return c;
      }
    }
    return new Chunk();
  }

  void release_chunk(Chunk* c) {
    const std::scoped_lock lock(free_mutex_);
    free_.push_back(c);
  }

  alignas(64) Chunk* tail_;       ///< producer-owned
  alignas(64) Chunk* head_;       ///< consumer-owned
  std::size_t read_ = 0;          ///< consumer cursor within head_
  std::mutex free_mutex_;
  std::vector<Chunk*> free_;
};

}  // namespace efd::sim

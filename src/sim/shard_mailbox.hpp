#pragma once

// Cross-shard boundary-event transport for the sharded event engine
// (DESIGN.md §14, §15). One mailbox per *directed boundary link* (source
// cell -> destination cell), so each mailbox has exactly one producing
// thread (the shard executing the source cell) and one consuming thread
// (the shard executing the destination cell) — a true SPSC channel,
// lock-free on both hot paths.
//
// Memory model: events are written into fixed-size chunks; the producer
// publishes an event by a release-store of the chunk's `filled` counter and
// a new chunk by a release-store of the predecessor's `next` pointer. The
// consumer acquire-loads both, so every field of a BoundaryEvent it reads
// happened-before the load that revealed it. Spent chunks are recycled
// through a mutex-guarded free list (cold path, touched once every
// kChunkEvents events), which keeps the steady state allocation-free.
//
// Capacity and backpressure (DESIGN.md §15): storage stays unbounded — a
// push that blocked inside the mailbox while the consuming shard waits for
// the producer's horizon is a deadlock the conservative protocol cannot
// break. Instead the mailbox carries monotone pushed/popped counters; the
// engine reads occupancy() at shard-horizon boundaries (after publishing
// its horizon, so the consumer can always catch up) and stalls the producer
// there when a configured soft capacity is exceeded. peak_occupancy() is
// the producer-maintained high-water mark surfaced in bench metrics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "src/sim/time.hpp"

namespace efd::sim {

/// One time-stamped event crossing a shard boundary. `t_ns` is the delivery
/// time at the destination cell and must respect the link's lookahead:
/// t_ns >= (sender's clock at post time) + lookahead. The payload words are
/// opaque to the engine; the campus layer packs packet metadata into them.
struct BoundaryEvent {
  std::int64_t t_ns = 0;     ///< delivery time at the destination cell
  std::int32_t src_cell = 0;
  std::int32_t dst_cell = 0;
  std::uint32_t kind = 0;    ///< caller-defined discriminator
  std::uint32_t bytes = 0;   ///< wire size, for airtime/accounting
  std::uint64_t a = 0;       ///< opaque payload
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Single-producer single-consumer FIFO of BoundaryEvents with unbounded
/// storage and counter-based occupancy accounting (see the header comment
/// for why blocking lives in the engine, not here). Chunks make
/// "unbounded" cheap: the producer allocates only when the free list is
/// empty, and the consumer returns spent chunks for reuse.
class ShardMailbox {
 public:
  static constexpr std::size_t kChunkEvents = 256;

  ShardMailbox() {
    head_ = tail_ = new Chunk();
  }

  ShardMailbox(const ShardMailbox&) = delete;
  ShardMailbox& operator=(const ShardMailbox&) = delete;

  ~ShardMailbox() {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
    for (Chunk* f : free_) delete f;
  }

  /// Producer side. Events must be pushed in non-decreasing `t_ns` order
  /// (they are: the producer's simulation clock is monotone and every link
  /// applies one fixed lookahead).
  void push(const BoundaryEvent& e) {
    Chunk* t = tail_;
    const std::size_t n = t->filled.load(std::memory_order_relaxed);
    if (n == kChunkEvents) {
      Chunk* fresh = acquire_chunk();
      fresh->events[0] = e;
      fresh->filled.store(1, std::memory_order_release);
      t->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
    } else {
      t->events[n] = e;
      t->filled.store(n + 1, std::memory_order_release);
    }
    const std::uint64_t pushed =
        pushed_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t occ = pushed - popped_.load(std::memory_order_relaxed);
    if (occ > peak_.load(std::memory_order_relaxed)) {
      peak_.store(occ, std::memory_order_relaxed);
    }
  }

  /// Consumer side: the oldest undelivered event, or nullptr when none is
  /// visible. A non-null pointer stays valid until the next pop().
  [[nodiscard]] const BoundaryEvent* peek() {
    Chunk* h = head_;
    if (read_ < h->filled.load(std::memory_order_acquire)) {
      return &h->events[read_];
    }
    if (read_ == kChunkEvents) {
      Chunk* next = h->next.load(std::memory_order_acquire);
      if (next == nullptr) return nullptr;
      release_chunk(h);
      head_ = next;
      read_ = 0;
      return peek();
    }
    return nullptr;
  }

  /// Consumer side: discard the event peek() returned.
  void pop() {
    ++read_;
    popped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Undelivered events (pushed minus popped). Safe from any thread; the
  /// two counters are read independently so a concurrent reader may see a
  /// value off by in-flight operations — fine for the soft-capacity check.
  [[nodiscard]] std::uint64_t occupancy() const {
    const std::uint64_t pushed = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t popped = popped_.load(std::memory_order_relaxed);
    return pushed >= popped ? pushed - popped : 0;
  }

  /// High-water mark of occupancy() since construction or the last reset().
  [[nodiscard]] std::uint64_t peak_occupancy() const {
    return peak_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_popped() const {
    return popped_.load(std::memory_order_relaxed);
  }

  /// Visit every undelivered event in FIFO order without consuming it.
  /// Quiescent-only (no concurrent producer): the checkpoint path walks the
  /// chunk chain from the consumer cursor.
  template <typename F>
  void for_each_pending(F&& fn) const {
    std::size_t cursor = read_;
    for (const Chunk* c = head_; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      const std::size_t filled = c->filled.load(std::memory_order_acquire);
      for (std::size_t i = cursor; i < filled; ++i) fn(c->events[i]);
      cursor = 0;
    }
  }

  /// Drain every pending event and zero the counters. Quiescent-only; the
  /// engine's reset() uses this so a checkpoint taken after reset+replay
  /// reproduces the original run's mailbox counters exactly.
  void reset() {
    while (peek() != nullptr) pop();
    pushed_.store(0, std::memory_order_relaxed);
    popped_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    BoundaryEvent events[kChunkEvents];
    std::atomic<std::size_t> filled{0};
    std::atomic<Chunk*> next{nullptr};
  };

  Chunk* acquire_chunk() {
    {
      const std::scoped_lock lock(free_mutex_);
      if (!free_.empty()) {
        Chunk* c = free_.back();
        free_.pop_back();
        c->filled.store(0, std::memory_order_relaxed);
        c->next.store(nullptr, std::memory_order_relaxed);
        return c;
      }
    }
    return new Chunk();
  }

  void release_chunk(Chunk* c) {
    const std::scoped_lock lock(free_mutex_);
    free_.push_back(c);
  }

  alignas(64) Chunk* tail_;       ///< producer-owned
  std::atomic<std::uint64_t> pushed_{0};   ///< producer-written
  std::atomic<std::uint64_t> peak_{0};     ///< producer-written high-water
  alignas(64) Chunk* head_;       ///< consumer-owned
  std::size_t read_ = 0;          ///< consumer cursor within head_
  std::atomic<std::uint64_t> popped_{0};   ///< consumer-written
  std::mutex free_mutex_;
  std::vector<Chunk*> free_;
};

/// Pre-PR-9 name, kept for call sites that predate the capacity work.
using SpscMailbox = ShardMailbox;

}  // namespace efd::sim

#include "src/sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "src/core/env.hpp"
#include "src/obs/obs.hpp"

namespace efd::sim {

namespace {

constexpr std::int64_t kForever = std::numeric_limits<std::int64_t>::max();

[[nodiscard]] std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardedSimulator::ShardedSimulator(Config cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.n_cells >= 1);
  n_shards_ = std::clamp(cfg_.n_shards, 1, cfg_.n_cells);

  const auto n = static_cast<std::size_t>(cfg_.n_cells);
  shard_of_.resize(n);
  for (int c = 0; c < cfg_.n_cells; ++c) {
    // Balanced contiguous blocks: cell c belongs to shard floor(c*k/n).
    shard_of_[static_cast<std::size_t>(c)] = static_cast<int>(
        (static_cast<std::int64_t>(c) * n_shards_) / cfg_.n_cells);
  }

  shards_.reserve(static_cast<std::size_t>(n_shards_));
  for (int s = 0; s < n_shards_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (int c = 0; c < cfg_.n_cells; ++c) {
    shards_[static_cast<std::size_t>(shard_of(c))]->cells.push_back(c);
  }

  handlers_.resize(n);
  stats_.resize(static_cast<std::size_t>(n_shards_));
  link_index_.assign(n * n, -1);
  mail_.reserve(cfg_.links.size());

  for (std::size_t li = 0; li < cfg_.links.size(); ++li) {
    const Link& l = cfg_.links[li];
    assert(l.src >= 0 && l.src < cfg_.n_cells);
    assert(l.dst >= 0 && l.dst < cfg_.n_cells);
    assert(l.src != l.dst && "a cell does not link to itself");
    assert(l.lookahead > Time{} && "conservative sync needs lookahead > 0");
    assert(link_index_[static_cast<std::size_t>(l.src) * n +
                       static_cast<std::size_t>(l.dst)] < 0 &&
           "duplicate directed link");
    link_index_[static_cast<std::size_t>(l.src) * n +
                static_cast<std::size_t>(l.dst)] = static_cast<int>(li);
    mail_.push_back(std::make_unique<SpscMailbox>());

    Shard& dst_shard = *shards_[static_cast<std::size_t>(shard_of(l.dst))];
    dst_shard.inbound.push_back(Inbound{static_cast<int>(li), l.src, l.dst,
                                        shard_of(l.src) != shard_of(l.dst)});
  }

  for (const auto& shard : shards_) {
    Shard& s = *shard;
    // Deterministic arrival-merge order: arrivals at an equal timestamp are
    // consumed in (src_cell, dst_cell) order, independent of the grouping.
    std::sort(s.inbound.begin(), s.inbound.end(),
              [](const Inbound& a, const Inbound& b) {
                if (a.src_cell != b.src_cell) return a.src_cell < b.src_cell;
                return a.dst_cell < b.dst_cell;
              });
    std::int64_t intra = 0;
    for (const Inbound& in : s.inbound) {
      const std::int64_t la = cfg_.links[static_cast<std::size_t>(in.link)]
                                  .lookahead.ns();
      if (in.inter) {
        const int src_shard = shard_of(in.src_cell);
        auto it = std::find_if(s.horizon_terms.begin(), s.horizon_terms.end(),
                               [&](const auto& t) { return t.first == src_shard; });
        if (it == s.horizon_terms.end()) {
          s.horizon_terms.emplace_back(src_shard, la);
        } else {
          it->second = std::min(it->second, la);
        }
      } else {
        intra = intra == 0 ? la : std::min(intra, la);
      }
    }
    s.lookahead_intra_ns = intra;
  }
}

void ShardedSimulator::set_cell_handler(int cell, CellHandler handler) {
  handlers_[static_cast<std::size_t>(cell)] = std::move(handler);
}

void ShardedSimulator::post(const BoundaryEvent& e) {
  const auto n = static_cast<std::size_t>(cfg_.n_cells);
  const int li = link_index_[static_cast<std::size_t>(e.src_cell) * n +
                             static_cast<std::size_t>(e.dst_cell)];
  assert(li >= 0 && "post over an undeclared boundary link");
  assert(e.t_ns >= cell_sim(e.src_cell).now().ns() +
                       cfg_.links[static_cast<std::size_t>(li)].lookahead.ns() &&
         "boundary event violates the link's lookahead");
  mail_[static_cast<std::size_t>(li)]->push(e);
  ++stats_[static_cast<std::size_t>(shard_of(e.src_cell))].boundary_posted;
  EFD_COUNTER_INC("sim.shard.boundary_posted");
}

std::int64_t ShardedSimulator::safe_target(const Shard& s,
                                           std::int64_t end_exclusive_ns) const {
  std::int64_t target = end_exclusive_ns;
  for (const auto& [src_shard, la] : s.horizon_terms) {
    const std::int64_t h = shards_[static_cast<std::size_t>(src_shard)]
                               ->horizon.load(std::memory_order_acquire);
    if (h == kForever) continue;  // aborting shard: stop holding us back
    target = std::min(target, h + la);
  }
  return target;
}

void ShardedSimulator::run_window(int shard, Shard& s, std::int64_t target_ns) {
  Simulator& sim = s.sim;
  ShardStats& st = stats_[static_cast<std::size_t>(shard)];
  for (;;) {
    // Earliest visible arrival strictly below the window bound.
    std::int64_t arrival = kForever;
    for (const Inbound& in : s.inbound) {
      const BoundaryEvent* e = mail_[static_cast<std::size_t>(in.link)]->peek();
      if (e != nullptr && e->t_ns < target_ns && e->t_ns < arrival) {
        arrival = e->t_ns;
      }
    }
    // Local events may post intra-shard boundary events; lookahead bounds
    // how soon those can land, so advance in chunks of the intra lookahead
    // and rescan. Without intra links the chunk spans the whole window.
    const std::int64_t clock = sim.now().ns();
    const std::int64_t intra_bound =
        s.lookahead_intra_ns > 0 ? clock + s.lookahead_intra_ns : kForever;
    const std::int64_t bound = std::min({arrival, target_ns, intra_bound});
    sim.run_until(Time{bound - 1});
    if (arrival == bound && arrival < target_ns) {
      // Boundary arrivals fire BEFORE local events at the same instant, in
      // inbound (src_cell, dst_cell) order, FIFO within a mailbox.
      sim.advance_to(Time{arrival});
      for (const Inbound& in : s.inbound) {
        SpscMailbox& m = *mail_[static_cast<std::size_t>(in.link)];
        while (const BoundaryEvent* e = m.peek()) {
          if (e->t_ns != arrival) break;
          handlers_[static_cast<std::size_t>(e->dst_cell)](*e, sim);
          ++st.boundary_delivered;
          EFD_COUNTER_INC("sim.shard.boundary_delivered");
          m.pop();
        }
      }
      continue;
    }
    if (bound >= target_ns) break;
  }
}

void ShardedSimulator::run_shard(int shard, std::int64_t end_exclusive_ns) {
  EFD_PROF_SCOPE("shard.run");
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  ShardStats& st = stats_[static_cast<std::size_t>(shard)];
  std::int64_t horizon = s.horizon.load(std::memory_order_relaxed);
  while (horizon < end_exclusive_ns) {
    const std::int64_t target = safe_target(s, end_exclusive_ns);
    if (target <= horizon) {
      const std::int64_t t0 = wall_ns();
      std::this_thread::yield();
      st.wait_ns += wall_ns() - t0;
      continue;
    }
    const std::int64_t t0 = wall_ns();
    run_window(shard, s, target);
    st.busy_ns += wall_ns() - t0;
    ++st.windows;
    horizon = target;
    s.horizon.store(target, std::memory_order_release);
  }
  st.events_dispatched = s.sim.events_dispatched();
}

void ShardedSimulator::run_until(Time end) {
  const std::int64_t endx = end.ns() + 1;
  EFD_GAUGE_SET("sim.shard.count", n_shards_);
  if (n_shards_ == 1) {
    run_shard(0, endx);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(n_shards_));
    for (int i = 0; i < n_shards_; ++i) {
      pool.emplace_back([&, i] {
        try {
          run_shard(i, endx);
        } catch (...) {
          {
            const std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          // Release neighbors waiting on this shard's horizon so the run
          // drains instead of deadlocking; the error is rethrown below.
          shards_[static_cast<std::size_t>(i)]->horizon.store(
              kForever, std::memory_order_release);
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t ShardedSimulator::events_dispatched() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim.events_dispatched();
  return total;
}

void ShardedSimulator::reset() {
  for (auto& shard : shards_) {
    shard->sim.reset();
    shard->horizon.store(0, std::memory_order_relaxed);
  }
  for (auto& m : mail_) {
    while (m->peek() != nullptr) m->pop();
  }
  std::fill(stats_.begin(), stats_.end(), ShardStats{});
  std::fill(handlers_.begin(), handlers_.end(), CellHandler{});
}

int ShardedSimulator::env_shards(int fallback) {
  return core::env_count("EFD_SHARDS", fallback, 1024);
}

}  // namespace efd::sim

#include "src/sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/core/env.hpp"
#include "src/obs/obs.hpp"

namespace efd::sim {

namespace {

constexpr std::int64_t kForever = std::numeric_limits<std::int64_t>::max();

[[nodiscard]] std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardedSimulator::ShardedSimulator(Config cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.n_cells >= 1);
  n_shards_ = std::clamp(cfg_.n_shards, 1, cfg_.n_cells);

  const auto n = static_cast<std::size_t>(cfg_.n_cells);
  shard_of_.resize(n);
  for (int c = 0; c < cfg_.n_cells; ++c) {
    // Balanced contiguous blocks: cell c belongs to shard floor(c*k/n).
    shard_of_[static_cast<std::size_t>(c)] = static_cast<int>(
        (static_cast<std::int64_t>(c) * n_shards_) / cfg_.n_cells);
  }

  shards_.reserve(static_cast<std::size_t>(n_shards_));
  for (int s = 0; s < n_shards_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (int c = 0; c < cfg_.n_cells; ++c) {
    shards_[static_cast<std::size_t>(shard_of(c))]->cells.push_back(c);
  }

  handlers_.resize(n);
  stats_.resize(static_cast<std::size_t>(n_shards_));
  link_index_.assign(n * n, -1);
  mail_.reserve(cfg_.links.size());

  for (std::size_t li = 0; li < cfg_.links.size(); ++li) {
    const Link& l = cfg_.links[li];
    assert(l.src >= 0 && l.src < cfg_.n_cells);
    assert(l.dst >= 0 && l.dst < cfg_.n_cells);
    assert(l.src != l.dst && "a cell does not link to itself");
    assert(l.lookahead > Time{} && "conservative sync needs lookahead > 0");
    assert(link_index_[static_cast<std::size_t>(l.src) * n +
                       static_cast<std::size_t>(l.dst)] < 0 &&
           "duplicate directed link");
    link_index_[static_cast<std::size_t>(l.src) * n +
                static_cast<std::size_t>(l.dst)] = static_cast<int>(li);
    mail_.push_back(std::make_unique<ShardMailbox>());

    Shard& dst_shard = *shards_[static_cast<std::size_t>(shard_of(l.dst))];
    dst_shard.inbound.push_back(Inbound{static_cast<int>(li), l.src, l.dst,
                                        shard_of(l.src) != shard_of(l.dst)});
    if (shard_of(l.src) != shard_of(l.dst)) {
      shards_[static_cast<std::size_t>(shard_of(l.src))]->out_inter.emplace_back(
          static_cast<int>(li), shard_of(l.dst));
    }
  }

  for (const auto& shard : shards_) {
    Shard& s = *shard;
    // Deterministic arrival-merge order: arrivals at an equal timestamp are
    // consumed in (src_cell, dst_cell) order, independent of the grouping.
    std::sort(s.inbound.begin(), s.inbound.end(),
              [](const Inbound& a, const Inbound& b) {
                if (a.src_cell != b.src_cell) return a.src_cell < b.src_cell;
                return a.dst_cell < b.dst_cell;
              });
    std::int64_t intra = 0;
    for (const Inbound& in : s.inbound) {
      const std::int64_t la = cfg_.links[static_cast<std::size_t>(in.link)]
                                  .lookahead.ns();
      if (in.inter) {
        const int src_shard = shard_of(in.src_cell);
        auto it = std::find_if(s.horizon_terms.begin(), s.horizon_terms.end(),
                               [&](const auto& t) { return t.first == src_shard; });
        if (it == s.horizon_terms.end()) {
          s.horizon_terms.emplace_back(src_shard, la);
        } else {
          it->second = std::min(it->second, la);
        }
      } else {
        intra = intra == 0 ? la : std::min(intra, la);
      }
    }
    s.lookahead_intra_ns = intra;
  }
}

void ShardedSimulator::set_cell_handler(int cell, CellHandler handler) {
  handlers_[static_cast<std::size_t>(cell)] = std::move(handler);
}

void ShardedSimulator::post(const BoundaryEvent& e) {
  const auto n = static_cast<std::size_t>(cfg_.n_cells);
  const int li = link_index_[static_cast<std::size_t>(e.src_cell) * n +
                             static_cast<std::size_t>(e.dst_cell)];
  assert(li >= 0 && "post over an undeclared boundary link");
  assert(e.t_ns >= cell_sim(e.src_cell).now().ns() +
                       cfg_.links[static_cast<std::size_t>(li)].lookahead.ns() &&
         "boundary event violates the link's lookahead");
  mail_[static_cast<std::size_t>(li)]->push(e);
  ++stats_[static_cast<std::size_t>(shard_of(e.src_cell))].boundary_posted;
  EFD_COUNTER_INC("sim.shard.boundary_posted");
}

std::int64_t ShardedSimulator::safe_target(const Shard& s,
                                           std::int64_t end_exclusive_ns) const {
  std::int64_t target = end_exclusive_ns;
  for (const auto& [src_shard, la] : s.horizon_terms) {
    const std::int64_t h = shards_[static_cast<std::size_t>(src_shard)]
                               ->horizon.load(std::memory_order_acquire);
    if (h == kForever) continue;  // aborting shard: stop holding us back
    target = std::min(target, h + la);
  }
  return target;
}

void ShardedSimulator::throw_stall(int shard) const {
  const int stalled = stalled_shard_.load(std::memory_order_relaxed);
  std::string msg = "sharded run aborted (shard " + std::to_string(shard) + ")";
  if (stalled >= 0) {
    msg += ": watchdog declared shard " + std::to_string(stalled) +
           " stalled (no horizon/beat progress within the wall-clock budget)";
  } else {
    msg += ": abort requested";
  }
  throw ShardStallError(msg);
}

void ShardedSimulator::run_window(int shard, Shard& s, std::int64_t target_ns) {
  Simulator& sim = s.sim;
  ShardStats& st = stats_[static_cast<std::size_t>(shard)];
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) throw_stall(shard);
    s.beats.fetch_add(1, std::memory_order_relaxed);
    // Earliest visible arrival strictly below the window bound.
    std::int64_t arrival = kForever;
    for (const Inbound& in : s.inbound) {
      const BoundaryEvent* e = mail_[static_cast<std::size_t>(in.link)]->peek();
      if (e != nullptr && e->t_ns < target_ns && e->t_ns < arrival) {
        arrival = e->t_ns;
      }
    }
    // Local events may post intra-shard boundary events; lookahead bounds
    // how soon those can land, so advance in chunks of the intra lookahead
    // and rescan. Without intra links the chunk spans the whole window.
    const std::int64_t clock = sim.now().ns();
    const std::int64_t intra_bound =
        s.lookahead_intra_ns > 0 ? clock + s.lookahead_intra_ns : kForever;
    const std::int64_t bound = std::min({arrival, target_ns, intra_bound});
    sim.run_until(Time{bound - 1});
    if (arrival == bound && arrival < target_ns) {
      // Boundary arrivals fire BEFORE local events at the same instant, in
      // inbound (src_cell, dst_cell) order, FIFO within a mailbox.
      sim.advance_to(Time{arrival});
      for (const Inbound& in : s.inbound) {
        ShardMailbox& m = *mail_[static_cast<std::size_t>(in.link)];
        while (const BoundaryEvent* e = m.peek()) {
          if (e->t_ns != arrival) break;
          handlers_[static_cast<std::size_t>(e->dst_cell)](*e, sim);
          ++st.boundary_delivered;
          EFD_COUNTER_INC("sim.shard.boundary_delivered");
          m.pop();
        }
      }
      continue;
    }
    if (bound >= target_ns) break;
  }
}

void ShardedSimulator::wait_backpressure(Shard& s, ShardStats& st,
                                         std::int64_t horizon_ns,
                                         std::int64_t end_exclusive_ns) {
  // Runs AFTER this shard published horizon_ns, so every consumer below can
  // reach horizon_ns regardless of what we do here. Stalling only while the
  // consumer's horizon is strictly behind ours keeps the protocol live: the
  // globally minimal shard never stalls, and its progress unblocks the rest.
  for (const auto& [li, consumer] : s.out_inter) {
    ShardMailbox& m = *mail_[static_cast<std::size_t>(li)];
    while (m.occupancy() > cfg_.mailbox_capacity) {
      const std::int64_t ch = shards_[static_cast<std::size_t>(consumer)]
                                  ->horizon.load(std::memory_order_acquire);
      if (ch >= horizon_ns || ch >= end_exclusive_ns || ch == kForever) break;
      if (abort_.load(std::memory_order_relaxed)) return;  // drain, don't hang
      ++st.backpressure_waits;
      EFD_COUNTER_INC("sim.shard.backpressure_waits");
      s.beats.fetch_add(1, std::memory_order_relaxed);
      const std::int64_t t0 = wall_ns();
      std::this_thread::yield();
      st.wait_ns += wall_ns() - t0;
    }
  }
}

void ShardedSimulator::run_shard(int shard, std::int64_t end_exclusive_ns) {
  EFD_PROF_SCOPE("shard.run");
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  ShardStats& st = stats_[static_cast<std::size_t>(shard)];
  std::int64_t horizon = s.horizon.load(std::memory_order_relaxed);
  while (horizon < end_exclusive_ns) {
    if (abort_.load(std::memory_order_relaxed)) throw_stall(shard);
    const std::int64_t target = safe_target(s, end_exclusive_ns);
    if (target <= horizon) {
      const std::int64_t t0 = wall_ns();
      std::this_thread::yield();
      st.wait_ns += wall_ns() - t0;
      continue;
    }
    const std::int64_t t0 = wall_ns();
    run_window(shard, s, target);
    st.busy_ns += wall_ns() - t0;
    ++st.windows;
    s.heap_depth.store(s.sim.pending_events(), std::memory_order_relaxed);
    horizon = target;
    s.horizon.store(target, std::memory_order_release);
    if (cfg_.mailbox_capacity > 0) {
      wait_backpressure(s, st, horizon, end_exclusive_ns);
    }
  }
  // An abort raised during the final window (a cell event calling
  // request_abort, or the watchdog firing late) must still fail the run —
  // the loop condition above is already false by the time it lands.
  if (abort_.load(std::memory_order_relaxed)) throw_stall(shard);
  st.events_dispatched = s.sim.events_dispatched();
}

void ShardedSimulator::watch(const std::stop_token& st,
                             std::int64_t end_exclusive_ns) {
  const std::int64_t budget = cfg_.watchdog.budget_ns;
  const std::int64_t poll = std::max<std::int64_t>(cfg_.watchdog.poll_ns, 1'000'000);
  struct Last {
    std::int64_t horizon = 0;
    std::uint64_t beats = 0;
    std::int64_t progressed_at = 0;
  };
  std::vector<Last> last(static_cast<std::size_t>(n_shards_));
  const std::int64_t start = wall_ns();
  for (int i = 0; i < n_shards_; ++i) {
    Shard& s = *shards_[static_cast<std::size_t>(i)];
    last[static_cast<std::size_t>(i)] = {
        s.horizon.load(std::memory_order_acquire),
        s.beats.load(std::memory_order_relaxed), start};
  }
  while (!st.stop_requested()) {
    // Sleep in small slices so request_stop() is honored promptly.
    std::int64_t slept = 0;
    while (slept < poll && !st.stop_requested()) {
      const std::int64_t slice = std::min<std::int64_t>(poll - slept, 10'000'000);
      std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
      slept += slice;
    }
    if (st.stop_requested()) return;
    const std::int64_t now = wall_ns();
    bool all_done = true;
    for (int i = 0; i < n_shards_; ++i) {
      Shard& s = *shards_[static_cast<std::size_t>(i)];
      Last& l = last[static_cast<std::size_t>(i)];
      const std::int64_t h = s.horizon.load(std::memory_order_acquire);
      const std::uint64_t b = s.beats.load(std::memory_order_relaxed);
      if (h >= end_exclusive_ns) continue;  // this shard already finished
      all_done = false;
      if (h != l.horizon || b != l.beats) {
        l = {h, b, now};
      } else if (now - l.progressed_at > budget) {
        stalled_shard_.store(i, std::memory_order_relaxed);
        EFD_COUNTER_INC("sim.shard.watchdog_stalls");
        dump_stall_diagnostics(end_exclusive_ns);
        abort_.store(true, std::memory_order_relaxed);
        return;
      }
    }
    if (all_done) return;
  }
}

void ShardedSimulator::dump_stall_diagnostics(
    std::int64_t end_exclusive_ns) const {
  const int stalled = stalled_shard_.load(std::memory_order_relaxed);
  std::fprintf(stderr,
               "[efd] shard watchdog: shard %d made no progress within %.3fs "
               "(run target %" PRId64 " ns); per-shard state:\n",
               stalled, static_cast<double>(cfg_.watchdog.budget_ns) / 1e9,
               end_exclusive_ns);
  std::uint64_t stalled_inbox = 0;
  for (int i = 0; i < n_shards_; ++i) {
    const Shard& s = *shards_[static_cast<std::size_t>(i)];
    std::uint64_t inbox = 0;
    for (const Inbound& in : s.inbound) {
      if (in.inter) inbox += mail_[static_cast<std::size_t>(in.link)]->occupancy();
    }
    std::uint64_t outbox = 0;
    for (const auto& [li, consumer] : s.out_inter) {
      outbox += mail_[static_cast<std::size_t>(li)]->occupancy();
    }
    if (i == stalled) stalled_inbox = inbox;
    std::fprintf(stderr,
                 "[efd]   shard %d: horizon=%" PRId64 "ns beats=%" PRIu64
                 " heap_depth=%" PRIu64 " inbox=%" PRIu64 " outbox=%" PRIu64
                 " cells=%zu%s\n",
                 i, s.horizon.load(std::memory_order_acquire),
                 s.beats.load(std::memory_order_relaxed),
                 s.heap_depth.load(std::memory_order_relaxed), inbox, outbox,
                 s.cells.size(), i == stalled ? "  <-- stalled" : "");
  }
  if (stalled >= 0) {
    const Shard& s = *shards_[static_cast<std::size_t>(stalled)];
    EFD_GAUGE_SET("sim.shard.stall.shard", stalled);
    EFD_GAUGE_SET("sim.shard.stall.horizon_ns",
                  s.horizon.load(std::memory_order_acquire));
    EFD_GAUGE_SET("sim.shard.stall.heap_depth",
                  static_cast<std::int64_t>(
                      s.heap_depth.load(std::memory_order_relaxed)));
    EFD_GAUGE_SET("sim.shard.stall.inbox",
                  static_cast<std::int64_t>(stalled_inbox));
  }
}

void ShardedSimulator::run_until(Time end) {
  const std::int64_t endx = end.ns() + 1;
  abort_.store(false, std::memory_order_relaxed);
  stalled_shard_.store(-1, std::memory_order_relaxed);
  EFD_GAUGE_SET("sim.shard.count", n_shards_);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::optional<std::jthread> dog;
    if (cfg_.watchdog.budget_ns > 0) {
      dog.emplace([this, endx](const std::stop_token& st) { watch(st, endx); });
    }
    if (n_shards_ == 1) {
      try {
        run_shard(0, endx);
      } catch (...) {
        first_error = std::current_exception();
      }
    } else {
      std::vector<std::jthread> pool;
      pool.reserve(static_cast<std::size_t>(n_shards_));
      for (int i = 0; i < n_shards_; ++i) {
        pool.emplace_back([&, i] {
          try {
            run_shard(i, endx);
          } catch (...) {
            {
              const std::scoped_lock lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            // Release neighbors waiting on this shard's horizon so the run
            // drains instead of deadlocking; the error is rethrown below.
            shards_[static_cast<std::size_t>(i)]->horizon.store(
                kForever, std::memory_order_release);
          }
        });
      }
    }  // shard jthreads join here
    if (dog) dog->request_stop();
  }  // watchdog joins here
  std::uint64_t peak = 0;
  for (const auto& m : mail_) peak = std::max(peak, m->peak_occupancy());
  EFD_GAUGE_SET("sim.shard.mailbox_peak", static_cast<std::int64_t>(peak));
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t ShardedSimulator::events_dispatched() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim.events_dispatched();
  return total;
}

std::uint64_t ShardedSimulator::mailbox_peak_occupancy() const {
  std::uint64_t peak = 0;
  for (const auto& m : mail_) peak = std::max(peak, m->peak_occupancy());
  return peak;
}

EngineCheckpoint ShardedSimulator::checkpoint() const {
  EngineCheckpoint cp;
  cp.n_cells = cfg_.n_cells;
  cp.n_shards = n_shards_;
  cp.t_ns = kForever;
  cp.shards.reserve(static_cast<std::size_t>(n_shards_));
  std::vector<std::pair<std::int64_t, std::uint64_t>> pend;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    ShardCheckpoint sc;
    sc.horizon_ns = s.horizon.load(std::memory_order_acquire);
    sc.now_ns = s.sim.now().ns();
    sc.dispatched = s.sim.events_dispatched();
    sc.sequence = s.sim.sequence();
    sc.pending = s.sim.pending_events();
    pend.clear();
    s.sim.visit_pending([&pend](std::int64_t t_ns, std::uint64_t seq) {
      pend.emplace_back(t_ns, seq);
    });
    std::sort(pend.begin(), pend.end());
    Fnv1a64 f;
    for (const auto& [t_ns, seq] : pend) {
      f.mix(t_ns);
      f.mix(seq);
    }
    sc.pending_digest = f.h;
    cp.t_ns = std::min(cp.t_ns, sc.horizon_ns);
    cp.shards.push_back(sc);
  }
  cp.mailboxes.reserve(mail_.size());
  for (const auto& m : mail_) {
    MailboxCheckpoint mc;
    mc.pushed = m->total_pushed();
    mc.popped = m->total_popped();
    Fnv1a64 f;
    m->for_each_pending([&f](const BoundaryEvent& e) {
      f.mix(e.t_ns);
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.src_cell)));
      f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.dst_cell)));
      f.mix((static_cast<std::uint64_t>(e.kind) << 32) | e.bytes);
      f.mix(e.a);
      f.mix(e.b);
      f.mix(e.c);
    });
    mc.pending_digest = f.h;
    cp.mailboxes.push_back(mc);
  }
  return cp;
}

void ShardedSimulator::reset() {
  for (auto& shard : shards_) {
    shard->sim.reset();
    shard->horizon.store(0, std::memory_order_relaxed);
    shard->beats.store(0, std::memory_order_relaxed);
    shard->heap_depth.store(0, std::memory_order_relaxed);
  }
  for (auto& m : mail_) m->reset();
  abort_.store(false, std::memory_order_relaxed);
  stalled_shard_.store(-1, std::memory_order_relaxed);
  std::fill(stats_.begin(), stats_.end(), ShardStats{});
  std::fill(handlers_.begin(), handlers_.end(), CellHandler{});
}

int ShardedSimulator::env_shards(int fallback) {
  return core::env_count("EFD_SHARDS", fallback, 1024);
}

}  // namespace efd::sim

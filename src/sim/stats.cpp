#include "src/sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace efd::sim {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) { *this = other; return; }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

}  // namespace efd::sim

#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace efd::sim {

/// Seeded random-number source. Every stochastic component takes an `Rng`
/// (or forks one) so that whole experiments are reproducible from a single
/// seed. `fork` derives an independent, deterministic substream, which keeps
/// results stable when unrelated components add or remove draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_base_(mix(seed)), engine_(seed_base_) {}

  /// Derive an independent substream for component `stream`.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    return Rng{seed_base_ ^ mix(0x9e3779b97f4a7c15ULL * (stream + 1))};
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>{0.0, 1.0}(engine_); }

  /// Uniform double in [a, b).
  double uniform(double a, double b) {
    return std::uniform_real_distribution<double>{a, b}(engine_);
  }

  /// Uniform integer in [a, b] inclusive.
  std::int64_t uniform_int(std::int64_t a, std::int64_t b) {
    return std::uniform_int_distribution<std::int64_t>{a, b}(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Exponential with the given mean (not rate).
  double exponential_mean(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Log-normal such that the *linear-scale* mean is `mean` with spread
  /// factor `sigma_log` in natural-log units.
  double lognormal(double mean, double sigma_log) {
    const double mu = std::log(mean) - 0.5 * sigma_log * sigma_log;
    return std::lognormal_distribution<double>{mu, sigma_log}(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: decorrelates adjacent seeds.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t seed_base_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace efd::sim

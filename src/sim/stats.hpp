#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace efd::sim {

/// Streaming mean / variance / min / max (Welford's algorithm). Used for
/// every "average and standard deviation over an experiment" number in the
/// paper's figures.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical CDF over a sample set; evaluation and inverse (quantiles).
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// F(x): fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const { return samples_; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;  // sorted ascending
};

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Least-squares line through (x[i], y[i]). Requires x.size() == y.size() >= 2.
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient; 0 if either series is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace efd::sim

#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace efd::sim {

/// Simulation time, an integer count of nanoseconds since the start of the
/// simulation. An integer representation avoids the floating-point drift
/// that plagues long (multi-day) simulated experiments.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time d) { ns_ += d.ns_; return *this; }
  constexpr Time& operator-=(Time d) { ns_ -= d.ns_; return *this; }

  /// Time remaining until `t`, saturating at zero for past instants.
  [[nodiscard]] constexpr Time until(Time t) const {
    return Time{t.ns_ > ns_ ? t.ns_ - ns_ : 0};
  }

  /// Human-readable rendering, e.g. "12.500ms".
  [[nodiscard]] std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr Time operator+(Time a, Time b) { return Time{a.ns() + b.ns()}; }
constexpr Time operator-(Time a, Time b) { return Time{a.ns() - b.ns()}; }
constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns() * k}; }
constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
constexpr std::int64_t operator/(Time a, Time b) { return a.ns() / b.ns(); }

constexpr Time nanoseconds(std::int64_t n) { return Time{n}; }
constexpr Time microseconds(double u) { return Time{static_cast<std::int64_t>(u * 1e3)}; }
constexpr Time milliseconds(double m) { return Time{static_cast<std::int64_t>(m * 1e6)}; }
constexpr Time seconds(double s) { return Time{static_cast<std::int64_t>(s * 1e9)}; }
constexpr Time minutes(double m) { return seconds(m * 60.0); }
constexpr Time hours(double h) { return seconds(h * 3600.0); }
constexpr Time days(double d) { return hours(d * 24.0); }

}  // namespace efd::sim

# Cross-compile for aarch64 and run test binaries under qemu-user — the CI
# leg that keeps the NEON carrier kernels honest on x86 runners. Use with:
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake
# Requires g++-aarch64-linux-gnu and qemu-user-static (Ubuntu packages).

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# ctest/gtest_discover_tests transparently run the cross binaries through
# qemu; -L points qemu at the target sysroot for the dynamic loader.
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64-static;-L;/usr/aarch64-linux-gnu")

set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY BOTH)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE BOTH)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE BOTH)

// Fig. 19 + §7.3: probing frequency vs estimation accuracy — CDF of the
// estimation error for fixed 5 s probing, fixed 80 s probing, and the
// paper's quality-adaptive method (bad links at 5 s, average 8x slower,
// good 16x slower), which cuts probing overhead ~32% at almost no accuracy
// cost.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 19", "estimation-error CDF for probing policies",
                "the adaptive method matches the 5 s-everywhere accuracy while "
                "cutting probe overhead ~32%; 80 s-everywhere is cheap but "
                "inaccurate on bad links");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  // Collect a 200 s, 50 ms-resolution BLE trace per live link (§6.2 data).
  std::vector<std::vector<core::BleSample>> traces;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 5.0) continue;
    bench::warm_link(tb, a, b);
    auto& est = tb.plc_network_of(b).estimator(b, a);
    core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b,
                                   sim::Rng{tb.seed() ^ 0x19cULL});
    const sim::Time start = sim.now();
    traces.push_back(sampler.run(start, start + sim::seconds(200)));
  }
  std::printf("links traced: %zu\n", traces.size());

  struct PolicyRun {
    const char* name;
    std::unique_ptr<core::ProbingPolicy> policy;
    std::vector<double> errors;
    std::uint64_t probes = 0;
  };
  std::vector<PolicyRun> runs;
  runs.push_back({"probing per 5 s", std::make_unique<core::FixedIntervalPolicy>(
                                         sim::seconds(5)),
                  {}, 0});
  runs.push_back({"probing per 80 s", std::make_unique<core::FixedIntervalPolicy>(
                                          sim::seconds(80)),
                  {}, 0});
  runs.push_back({"our method (adaptive)",
                  std::make_unique<core::QualityAdaptivePolicy>(), {}, 0});

  for (auto& run : runs) {
    for (const auto& trace : traces) {
      const auto eval = core::evaluate_policy(trace, *run.policy);
      run.errors.insert(run.errors.end(), eval.errors_mbps.begin(),
                        eval.errors_mbps.end());
      run.probes += eval.probes;
    }
  }

  bench::section("estimation-error CDF (Mb/s)");
  std::printf("%-24s %8s %8s %8s %8s %8s %10s\n", "policy", "p50", "p75", "p90",
              "p95", "p99", "probes");
  for (auto& run : runs) {
    const sim::Cdf cdf{run.errors};
    std::printf("%-24s %8.2f %8.2f %8.2f %8.2f %8.2f %10llu\n", run.name,
                cdf.quantile(0.50), cdf.quantile(0.75), cdf.quantile(0.90),
                cdf.quantile(0.95), cdf.quantile(0.99),
                static_cast<unsigned long long>(run.probes));
  }

  bench::section("overhead");
  const double reduction = 100.0 * (1.0 - static_cast<double>(runs[2].probes) /
                                              static_cast<double>(runs[0].probes));
  std::printf("adaptive vs 5 s-everywhere: %.0f%% fewer probes (paper: 32%%)\n",
              reduction);
  std::printf("mean error: 5 s %.2f | 80 s %.2f | adaptive %.2f Mb/s\n",
              sim::Cdf{runs[0].errors}.quantile(0.5),
              sim::Cdf{runs[1].errors}.quantile(0.5),
              sim::Cdf{runs[2].errors}.quantile(0.5));
  return 0;
}

// Fig. 9 + §6.1: invariance-scale variation — instantaneous BLEs from
// captured frames of saturated traffic, showing the 10 ms periodicity of
// the tone-map slots over the AC half cycle.
//
// Sweep modes (EFD_BENCH_THREADS): unset -> legacy sequential captures on
// one shared testbed; n >= 1 -> per-link testbeds fanned out via
// ParallelRunner. Capture and printing are separate stages so parallel
// tasks never interleave output.
#include "src/testbed/parallel_runner.hpp"

#include "bench_util.hpp"

using namespace efd;

namespace {

struct CaptureResult {
  struct Frame {
    double t_ms;  // relative to the first frame in the 80 ms window
    int slot;
    double ble_mbps;
  };
  std::vector<Frame> frames;
  double slot_mean[6] = {};
  bool empty = true;
};

CaptureResult capture_link(testbed::Testbed& tb, int a, int b) {
  auto& medium = tb.plc_network_of(a).medium();
  core::SofCapture capture(medium);
  capture.filter(a, b);
  bench::warm_link(tb, a, b);
  (void)testbed::measure_plc_throughput(tb, a, b, sim::seconds(2));

  CaptureResult out;
  const auto& records = capture.records();
  if (records.empty()) return out;
  out.empty = false;

  // Last ~80 ms of frames, as in the paper's plot.
  const sim::Time cutoff = records.back().start - sim::milliseconds(80);
  double t0 = -1.0;
  sim::RunningStats per_slot[6];
  for (const auto& r : records) {
    if (r.start < cutoff) continue;
    if (t0 < 0.0) t0 = r.start.ms();
    out.frames.push_back({r.start.ms() - t0, r.slot, r.ble_mbps});
  }
  for (const auto& r : records) {
    per_slot[static_cast<std::size_t>(r.slot)].add(r.ble_mbps);
  }
  for (int s = 0; s < 6; ++s) {
    out.slot_mean[s] = per_slot[static_cast<std::size_t>(s)].mean();
  }
  return out;
}

double print_capture(const CaptureResult& c, const char* label) {
  bench::section(std::string(label) + ": BLEs of captured frames (last 80 ms)");
  std::printf("%10s %6s %12s\n", "t (ms)", "slot", "BLEs (Mb/s)");
  if (c.empty) return 0.0;
  for (const auto& f : c.frames) {
    std::printf("%10.2f %6d %12.1f\n", f.t_ms, f.slot, f.ble_mbps);
  }
  std::printf("per-slot mean BLEs over the whole run:\n  slot:");
  for (int s = 0; s < 6; ++s) std::printf(" %8d", s);
  std::printf("\n  BLEs:");
  double lo = 1e9, hi = 0.0;
  for (int s = 0; s < 6; ++s) {
    lo = std::min(lo, c.slot_mean[s]);
    hi = std::max(hi, c.slot_mean[s]);
    std::printf(" %8.1f", c.slot_mean[s]);
  }
  std::printf("\n  slot swing: %.1f Mb/s (paper: significant even on good links)\n",
              hi - lo);
  return hi - lo;
}

}  // namespace

int main() {
  bench::header("Fig. 9", "invariance-scale variation of BLEs (tone-map slots)",
                "BLEs changes periodically with period 10 ms (half mains cycle); "
                "each frame uses the tone map of the slot it lands in; visible "
                "slot-to-slot differences on both good and average links");
  bench::JsonReporter json("fig09");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  struct Link {
    int a, b;
    const char* label;
  };
  const Link links[] = {{5, 6, "average link (paper: link 6-1)"},
                        {11, 10, "good link (paper: link 0-2)"}};

  std::vector<CaptureResult> captures;
  const int threads = testbed::ParallelRunner::env_threads();
  if (threads == 0) {
    for (const auto& l : links) captures.push_back(capture_link(tb, l.a, l.b));
  } else {
    std::printf("sweep: per-link testbeds on %d worker(s)\n", threads);
    const testbed::ParallelRunner pool(threads);
    captures = pool.map_with_sim<CaptureResult>(
        static_cast<int>(std::size(links)),
        [&links, &cfg](int i, sim::Simulator& task_sim) {
          testbed::Testbed task_tb(task_sim, cfg);
          task_sim.run_until(testbed::weekday_afternoon());
          const Link& l = links[static_cast<std::size_t>(i)];
          return capture_link(task_tb, l.a, l.b);
        });
  }

  for (std::size_t i = 0; i < std::size(links); ++i) {
    const double swing = print_capture(captures[i], links[i].label);
    json.add(std::string("slot_swing_") + std::to_string(links[i].a) + "_" +
                 std::to_string(links[i].b),
             swing, "Mb/s");
  }
  return 0;
}

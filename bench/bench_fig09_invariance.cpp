// Fig. 9 + §6.1: invariance-scale variation — instantaneous BLEs from
// captured frames of saturated traffic, showing the 10 ms periodicity of
// the tone-map slots over the AC half cycle.
#include "bench_util.hpp"

using namespace efd;

namespace {

void capture_link(testbed::Testbed& tb, int a, int b, const char* label) {
  auto& medium = tb.plc_network_of(a).medium();
  core::SofCapture capture(medium);
  capture.filter(a, b);
  bench::warm_link(tb, a, b);
  (void)testbed::measure_plc_throughput(tb, a, b, sim::seconds(2));

  // Last ~80 ms of frames, as in the paper's plot.
  const auto& records = capture.records();
  bench::section(std::string(label) + ": BLEs of captured frames (last 80 ms)");
  std::printf("%10s %6s %12s\n", "t (ms)", "slot", "BLEs (Mb/s)");
  if (records.empty()) return;
  const sim::Time cutoff = records.back().start - sim::milliseconds(80);
  double t0 = -1.0;
  sim::RunningStats per_slot[6];
  for (const auto& r : records) {
    if (r.start < cutoff) continue;
    if (t0 < 0.0) t0 = r.start.ms();
    std::printf("%10.2f %6d %12.1f\n", r.start.ms() - t0, r.slot, r.ble_mbps);
  }
  for (const auto& r : records) {
    per_slot[static_cast<std::size_t>(r.slot)].add(r.ble_mbps);
  }
  std::printf("per-slot mean BLEs over the whole run:\n  slot:");
  for (int s = 0; s < 6; ++s) std::printf(" %8d", s);
  std::printf("\n  BLEs:");
  double lo = 1e9, hi = 0.0;
  for (int s = 0; s < 6; ++s) {
    const double m = per_slot[static_cast<std::size_t>(s)].mean();
    lo = std::min(lo, m);
    hi = std::max(hi, m);
    std::printf(" %8.1f", m);
  }
  std::printf("\n  slot swing: %.1f Mb/s (paper: significant even on good links)\n",
              hi - lo);
}

}  // namespace

int main() {
  bench::header("Fig. 9", "invariance-scale variation of BLEs (tone-map slots)",
                "BLEs changes periodically with period 10 ms (half mains cycle); "
                "each frame uses the tone map of the slot it lands in; visible "
                "slot-to-slot differences on both good and average links");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  capture_link(tb, 5, 6, "average link (paper: link 6-1)");
  capture_link(tb, 11, 10, "good link (paper: link 0-2)");
  return 0;
}

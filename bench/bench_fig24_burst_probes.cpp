// Fig. 24 + §8.2: taming metric sensitivity with probe bursts — sending the
// same 150 kb/s probing rate as 20-packet bursts makes the probe frames as
// long as the saturated background frames, collisions lose whole frames
// instead of being captured with partial errors, and BLE stays clean.
#include "bench_util.hpp"

using namespace efd;

namespace {

struct Phase {
  sim::RunningStats ble;
  sim::RunningStats pberr;
};

std::pair<Phase, Phase> run(testbed::Testbed& tb, int a, int b, int c, int d,
                            int burst) {
  sim::Simulator& sim = tb.simulator();
  bench::warm_link(tb, a, b);
  auto& net_ab = tb.plc_network_of(a);

  net::ProbeSource::Config pcfg;
  pcfg.src = a;
  pcfg.dst = b;
  pcfg.packet_bytes = 1500;
  pcfg.burst_count = burst;
  pcfg.interval = sim::milliseconds(75.0 * burst);  // same offered rate
  net::ProbeSource probes(sim, tb.plc_station(a).mac(), pcfg);

  net::UdpSource::Config bcfg;
  bcfg.src = c;
  bcfg.dst = d;
  bcfg.rate_bps = 400e6;  // saturated background
  net::UdpSource background(sim, tb.plc_station(c).mac(), bcfg);

  const sim::Time start = sim.now();
  probes.run(start, start + sim::seconds(400));
  background.run(start + sim::seconds(200), start + sim::seconds(400));

  Phase before, during;
  for (int s = 5; s < 400; s += 5) {
    sim.run_until(start + sim::seconds(s));
    Phase& phase = s < 200 ? before : during;
    phase.ble.add(net_ab.mm_average_ble(a, b));
    phase.pberr.add(net_ab.mm_pberr(a, b));
  }
  background.stop();
  probes.stop();
  sim.run_until(sim.now() + sim::seconds(1));
  return {before, during};
}

}  // namespace

int main() {
  bench::header("Fig. 24", "burst probing under saturated background traffic",
                "single-packet probes: BLE collapses when the background "
                "activates; 20-packet bursts at the same rate: BLE unaffected");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  // Same capture-prone pair search as Fig. 23.
  auto& ch = tb.plc_channel();
  int a = -1, b = -1, c = -1, d = -1;
  for (const auto& [pa, pb] : tb.plc_links()) {
    if (ch.mean_snr_db(pa, pb, 0, sim.now()) < 20.0) continue;
    for (const auto& [pc, pd] : tb.plc_links()) {
      if (pc == pa || pc == pb || pd == pa || pd == pb) continue;
      if (!tb.same_plc_network(pa, pc)) continue;
      if (ch.mean_snr_db(pc, pd, 0, sim.now()) < 12.0) continue;
      const double adv = ch.mean_snr_db(pa, pb, 0, sim.now()) -
                         ch.mean_snr_db(pc, pb, 0, sim.now());
      if (adv > 12.0) {
        a = pa; b = pb; c = pc; d = pd;
        break;
      }
    }
    if (a >= 0) break;
  }
  std::printf("probe %d->%d, saturated background %d->%d\n\n", a, b, c, d);

  const auto [s1_before, s1_during] = run(tb, a, b, c, d, 1);
  const auto [s20_before, s20_during] = run(tb, a, b, c, d, 20);

  bench::section("BLE of the probed link before -> during background");
  std::printf("%-28s %8.1f -> %8.1f Mb/s  (PBerr %.3f -> %.3f)\n",
              "single-packet probes:", s1_before.ble.mean(), s1_during.ble.mean(),
              s1_before.pberr.mean(), s1_during.pberr.mean());
  std::printf("%-28s %8.1f -> %8.1f Mb/s  (PBerr %.3f -> %.3f)\n",
              "20-packet bursts:", s20_before.ble.mean(), s20_during.ble.mean(),
              s20_before.pberr.mean(), s20_during.pberr.mean());

  const double drop_single =
      s1_before.ble.mean() - s1_during.ble.mean();
  const double drop_burst =
      s20_before.ble.mean() - s20_during.ble.mean();
  std::printf("\nBLE drop: single %.1f vs bursts %.1f Mb/s (paper: bursts "
              "remove the sensitivity)\n",
              drop_single, drop_burst);
  return 0;
}

// Fig. 21 + §8.1: loss rate of broadcast probes vs link throughput and vs
// PBerr, during day and night. Broadcast frames ride the ROBO modulation,
// so losses are ~1e-4 across a wide quality range: broadcast-based ETX is a
// noisy, misleading metric on PLC.
#include "bench_util.hpp"

using namespace efd;

namespace {

struct LinkLoss {
  int src, dst;
  double loss_day, loss_night;
  double throughput, pberr;
};

/// Each station in turn broadcasts probes; every other station of its
/// network counts sequence gaps (the paper's §8.1 protocol).
void broadcast_round(testbed::Testbed& tb, double seconds, bool day,
                     std::vector<LinkLoss>& out) {
  sim::Simulator& sim = tb.simulator();
  for (int src = 0; src < testbed::Testbed::kStations; ++src) {
    std::vector<std::unique_ptr<net::LossMeter>> meters;
    std::vector<int> receivers;
    for (int rx = 0; rx < testbed::Testbed::kStations; ++rx) {
      if (rx == src || !tb.same_plc_network(src, rx)) continue;
      receivers.push_back(rx);
      meters.push_back(std::make_unique<net::LossMeter>());
      net::LossMeter* meter = meters.back().get();
      tb.plc_station(rx).mac().set_rx_handler(
          [meter](const net::Packet& p, sim::Time t) { meter->on_packet(p, t); });
    }
    net::ProbeSource::Config cfg;
    cfg.src = src;
    cfg.dst = net::kBroadcast;
    cfg.interval = sim::milliseconds(20);  // 50 probes/s to resolve ~1e-3
    cfg.packet_bytes = 1500;
    net::ProbeSource probes(sim, tb.plc_station(src).mac(), cfg);
    probes.run(sim.now(), sim.now() + sim::seconds(seconds));
    sim.run_until(sim.now() + sim::seconds(seconds) + sim::milliseconds(200));

    for (std::size_t i = 0; i < receivers.size(); ++i) {
      const int rx = receivers[i];
      auto it = std::find_if(out.begin(), out.end(), [&](const LinkLoss& l) {
        return l.src == src && l.dst == rx;
      });
      if (it == out.end()) {
        out.push_back({src, rx, 0.0, 0.0, 0.0, 0.0});
        it = out.end() - 1;
      }
      (day ? it->loss_day : it->loss_night) = meters[i]->loss_rate();
    }
  }
}

}  // namespace

int main() {
  bench::header("Fig. 21", "broadcast probe loss vs throughput and PBerr",
                "a wide range of link qualities shows ~1e-4 (or zero) broadcast "
                "loss; only the worst links lose >1e-1; day and night are "
                "barely distinguishable — broadcast ETX says nothing useful");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);

  std::vector<LinkLoss> links;
  // Night round.
  sim.run_until(testbed::weekend_night());
  broadcast_round(tb, 60.0, /*day=*/false, links);
  // Day round.
  sim.run_until(sim::days(8) + sim::hours(14));
  broadcast_round(tb, 60.0, /*day=*/true, links);

  // Unicast quality context: throughput + PBerr per link (night).
  sim.run_until(sim.now() + sim::hours(1));
  for (auto& l : links) {
    if (tb.plc_channel().mean_snr_db(l.src, l.dst, 0, sim.now()) < 2.0) continue;
    bench::warm_link(tb, l.src, l.dst);
    l.throughput =
        testbed::measure_plc_throughput(tb, l.src, l.dst, sim::seconds(4)).mean_mbps;
    l.pberr = tb.plc_network_of(l.dst).mm_pberr(l.src, l.dst);
  }

  bench::section("loss rate vs link throughput (bucket means)");
  std::printf("%-14s %14s %14s %8s\n", "T bucket", "night loss", "day loss",
              "links");
  const double edges[] = {0, 10, 25, 40, 55, 70, 95};
  for (std::size_t e = 0; e + 1 < std::size(edges); ++e) {
    sim::RunningStats day, night;
    for (const auto& l : links) {
      if (l.throughput < edges[e] || l.throughput >= edges[e + 1]) continue;
      day.add(l.loss_day);
      night.add(l.loss_night);
    }
    if (day.count() == 0) continue;
    std::printf("%4.0f-%-6.0f    %14.5f %14.5f %8zu\n", edges[e], edges[e + 1],
                night.mean(), day.mean(), day.count());
  }

  bench::section("discriminative power");
  int healthy_low_loss = 0, healthy = 0, dead_links = 0;
  for (const auto& l : links) {
    if (l.throughput > 10.0) {
      ++healthy;
      if (l.loss_night < 1e-2) ++healthy_low_loss;
    }
    if (l.throughput <= 1.0 && l.loss_night > 0.1) ++dead_links;
  }
  std::printf("healthy links (>10 Mb/s) with <1%% broadcast loss: %d/%d\n",
              healthy_low_loss, healthy);
  std::printf("only effectively dead links show >10%% loss: %d\n", dead_links);
  std::printf("(paper: low loss rates carry no information about quality; high "
              "loss only flags the worst links)\n");
  return 0;
}

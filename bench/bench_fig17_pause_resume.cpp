// Fig. 17 + §7.1: devices keep their channel-estimation statistics across a
// probing pause — the estimate resumes from its pre-pause value, so the
// convergence cost is paid only once in realistic probing.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 17", "estimation across a probing pause (20 pkt/s)",
                "after a reset the estimate climbs; pausing probes for 7 min at "
                "t=2300 s changes nothing — the estimate resumes where it was");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  // Four links of different qualities, as in the paper (1-0, 1-6, 1-10, 1-5).
  std::vector<std::pair<int, int>> links;
  double bands[][2] = {{35, 99}, {22, 30}, {15, 20}, {9, 13}};
  for (const auto& band : bands) {
    for (const auto& [a, b] : tb.plc_links()) {
      const double snr = tb.plc_channel().mean_snr_db(a, b, 0, sim.now());
      if (snr >= band[0] && snr <= band[1]) {
        links.emplace_back(a, b);
        break;
      }
    }
  }

  for (const auto& [a, b] : links) {
    auto& est = tb.plc_network_of(b).estimator(b, a);
    est.reset(sim.now());
    core::ProbeTraceSampler::Config scfg;
    scfg.packets_per_second = 20.0;
    scfg.packet_bytes = 1300;
    core::ProbeTraceSampler sampler(tb.plc_channel(), est, a, b,
                                    sim::Rng{tb.seed() ^ 0x17aULL}, scfg);
    const sim::Time start = sim.now();
    // Probe until t=2300 s.
    auto trace = sampler.run(start, start + sim::seconds(2300), sim::seconds(10));
    const double before_pause = trace.back().ble_mbps;
    // Pause ~7 minutes: no probes at all.
    const sim::Time resume = start + sim::seconds(2300) + sim::minutes(7);
    const double at_resume = est.average_ble_mbps();
    // Resume probing to t=5000 s.
    auto tail = sampler.run(resume, start + sim::seconds(5000), sim::seconds(10));
    const double after_resume = tail.front().ble_mbps;
    const double end_value = tail.back().ble_mbps;

    bench::section("link " + std::to_string(a) + "->" + std::to_string(b));
    std::printf("estimate at t=100 s: %.1f;  just before pause (t=2300 s): %.1f\n",
                trace[10].ble_mbps, before_pause);
    std::printf("during pause: %.1f;  first sample after resume: %.1f;  "
                "t=5000 s: %.1f Mb/s\n",
                at_resume, after_resume, end_value);
    std::printf("pause penalty: %+.1f Mb/s (paper: none — statistics persist)\n",
                after_resume - before_pause);
  }
  return 0;
}

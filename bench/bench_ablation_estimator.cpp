// Ablation (§7.1): what the estimator's convergence machinery buys.
//  (a) uncertainty penalty off -> probes converge instantly (no Fig. 16);
//  (b) naive offset tracking on -> maps chase instantaneous noise and BLE
//      gets noisier on jittery links.
#include "bench_util.hpp"

using namespace efd;

namespace {

/// 1 pkt/s probing after reset; returns (estimate at t=100 s, final).
std::pair<double, double> probe_run(const plc::ChannelEstimator::Config& cfg) {
  grid::PowerGrid grid;
  const int a = grid.add_node("a");
  const int b = grid.add_node("b");
  grid.add_cable(a, b, 10.0, 30.0);
  plc::PlcChannel channel(grid, plc::PhyParams::hpav());
  channel.attach_station(0, a);
  channel.attach_station(1, b);
  plc::ChannelEstimator est(channel, 0, 1, sim::Rng{11}, cfg);
  core::ProbeTraceSampler::Config scfg;
  scfg.packets_per_second = 1.0;
  scfg.packet_bytes = 1300;
  core::ProbeTraceSampler sampler(channel, est, 0, 1, sim::Rng{2}, scfg);
  const sim::Time start = sim::days(1) + sim::hours(12);
  const auto trace = sampler.run(start, start + sim::seconds(2000), sim::seconds(10));
  double at_100 = 0.0;
  for (const auto& s : trace) {
    if ((s.t - start).seconds() >= 100.0) {
      at_100 = s.ble_mbps;
      break;
    }
  }
  return {at_100, trace.back().ble_mbps};
}

/// Saturated sampling on a jittery link; returns the BLE stddev.
double jitter_run(const plc::ChannelEstimator::Config& cfg) {
  grid::PowerGrid grid;
  const int a = grid.add_node("a");
  const int j = grid.add_node("j");
  const int b = grid.add_node("b");
  grid.add_cable(a, j, 30.0, 16.0);
  grid.add_cable(j, b, 3.0);
  auto fridge = grid::make_appliance(grid::ApplianceType::kFridge, j, 7);
  fridge.schedule = grid::ActivitySchedule::always_on();
  fridge.noise.jitter_db = 5.0;
  grid.add_appliance(fridge);
  plc::PlcChannel channel(grid, plc::PhyParams::hpav());
  channel.attach_station(0, a);
  channel.attach_station(1, b);
  plc::ChannelEstimator est(channel, 0, 1, sim::Rng{11}, cfg);
  core::LinkTraceSampler sampler(channel, est, 0, 1, sim::Rng{3});
  const sim::Time start = sim::days(1) + sim::hours(12);
  const auto trace = sampler.run(start, start + sim::seconds(120));
  sim::RunningStats stats;
  for (std::size_t i = trace.size() / 3; i < trace.size(); ++i) {
    stats.add(trace[i].ble_mbps);
  }
  return stats.stddev();
}

}  // namespace

int main() {
  bench::header("Ablation: estimator design", "uncertainty penalty / offset tracking",
                "without the sample-count uncertainty there is no Fig. 16 "
                "convergence; trusting instantaneous SNR makes BLE noisy");

  bench::section("uncertainty penalty (10 pkt/s probing after reset)");
  plc::ChannelEstimator::Config with_unc;
  plc::ChannelEstimator::Config no_unc;
  no_unc.uncertainty_db = 0.0;
  const auto [u100, ufinal] = probe_run(with_unc);
  const auto [n100, nfinal] = probe_run(no_unc);
  std::printf("%-28s estimate@100s %8.1f   final %8.1f\n",
              "with uncertainty (default):", u100, ufinal);
  std::printf("%-28s estimate@100s %8.1f   final %8.1f\n",
              "without uncertainty:", n100, nfinal);
  std::printf("(without the penalty the estimate starts at its final value — "
              "the convergence the paper measures in Fig. 16 disappears)\n");

  bench::section("offset tracking (saturated sampling, jittery link)");
  plc::ChannelEstimator::Config averaged;  // default: offset_tracking = 0
  plc::ChannelEstimator::Config naive;
  naive.offset_tracking = 1.0;
  std::printf("%-34s BLE std %6.2f Mb/s\n",
              "SNR averaged over frames (default):", jitter_run(averaged));
  std::printf("%-34s BLE std %6.2f Mb/s\n",
              "instantaneous SNR baked into maps:", jitter_run(naive));
  return 0;
}

// Fig. 6 + §5: throughput asymmetry of PLC links — both directions of every
// link, the most asymmetric pairs, and the fraction of pairs above 1.5x.
//
// Sweep modes (EFD_BENCH_THREADS): unset -> legacy sweep on one shared
// testbed; n >= 1 -> per-pair testbeds fanned out via ParallelRunner.
#include <algorithm>

#include "src/testbed/parallel_runner.hpp"

#include "bench_util.hpp"

using namespace efd;

namespace {

struct PairResult {
  int a = 0, b = 0;
  double fwd = 0.0, rev = 0.0;
  [[nodiscard]] double ratio() const {
    const double lo = std::min(fwd, rev), hi = std::max(fwd, rev);
    return lo > 0.1 ? hi / lo : 100.0;
  }
};

PairResult measure_pair(testbed::Testbed& tb, int a, int b) {
  bench::warm_link(tb, a, b);
  bench::warm_link(tb, b, a);
  PairResult r{a, b, 0, 0};
  r.fwd = testbed::measure_plc_throughput(tb, a, b, sim::seconds(8)).mean_mbps;
  r.rev = testbed::measure_plc_throughput(tb, b, a, sim::seconds(8)).mean_mbps;
  return r;
}

}  // namespace

int main() {
  bench::header("Fig. 6", "PLC throughput asymmetry",
                "~30% of station pairs show >1.5x asymmetry; examples where one "
                "direction is <60% of the other");
  bench::JsonReporter json("fig06");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  std::vector<std::pair<int, int>> links;
  for (const auto& [a, b] : tb.plc_links()) {
    if (a > b) continue;  // one entry per undirected pair
    links.emplace_back(a, b);
  }

  std::vector<PairResult> measured;
  const int threads = testbed::ParallelRunner::env_threads();
  if (threads == 0) {
    for (const auto& [a, b] : links) measured.push_back(measure_pair(tb, a, b));
  } else {
    std::printf("sweep: per-pair testbeds on %d worker(s)\n", threads);
    const testbed::ParallelRunner pool(threads);
    measured = pool.map_with_sim<PairResult>(
        static_cast<int>(links.size()),
        [&links, &cfg](int i, sim::Simulator& task_sim) {
          testbed::Testbed task_tb(task_sim, cfg);
          task_sim.run_until(testbed::weekday_afternoon());
          return measure_pair(task_tb, links[static_cast<std::size_t>(i)].first,
                              links[static_cast<std::size_t>(i)].second);
        });
  }

  std::vector<PairResult> pairs;
  for (const auto& r : measured) {
    if (r.fwd > 0.5 || r.rev > 0.5) pairs.push_back(r);
  }

  int above_15 = 0;
  for (const auto& p : pairs) {
    if (p.ratio() > 1.5) ++above_15;
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const PairResult& x, const PairResult& y) {
              return x.ratio() > y.ratio();
            });

  bench::section("most asymmetric pairs (paper bar chart, 11 links)");
  std::printf("%-8s %10s %10s %8s\n", "link", "x->y Mb/s", "y->x Mb/s", "ratio");
  for (std::size_t i = 0; i < std::min<std::size_t>(11, pairs.size()); ++i) {
    const auto& p = pairs[i];
    std::printf("%2d-%-5d %10.1f %10.1f %7.1fx\n", p.a, p.b, p.fwd, p.rev,
                p.ratio());
  }

  bench::section("aggregate");
  std::printf("pairs measured: %zu\n", pairs.size());
  std::printf("pairs with >1.5x asymmetry: %.0f%%  (paper: ~30%%)\n",
              100.0 * above_15 / std::max<std::size_t>(1, pairs.size()));
  json.add("pairs_measured", static_cast<double>(pairs.size()), "pairs");
  json.add("pct_above_1.5x",
           100.0 * above_15 / std::max<std::size_t>(1, pairs.size()), "%");
  return 0;
}

// Fig. 6 + §5: throughput asymmetry of PLC links — both directions of every
// link, the most asymmetric pairs, and the fraction of pairs above 1.5x.
#include <algorithm>

#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 6", "PLC throughput asymmetry",
                "~30% of station pairs show >1.5x asymmetry; examples where one "
                "direction is <60% of the other");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  struct PairResult {
    int a, b;
    double fwd, rev;
    [[nodiscard]] double ratio() const {
      const double lo = std::min(fwd, rev), hi = std::max(fwd, rev);
      return lo > 0.1 ? hi / lo : 100.0;
    }
  };
  std::vector<PairResult> pairs;
  for (const auto& [a, b] : tb.plc_links()) {
    if (a > b) continue;  // one entry per undirected pair
    bench::warm_link(tb, a, b);
    bench::warm_link(tb, b, a);
    PairResult r{a, b, 0, 0};
    r.fwd = testbed::measure_plc_throughput(tb, a, b, sim::seconds(8)).mean_mbps;
    r.rev = testbed::measure_plc_throughput(tb, b, a, sim::seconds(8)).mean_mbps;
    if (r.fwd > 0.5 || r.rev > 0.5) pairs.push_back(r);
  }

  int above_15 = 0;
  for (const auto& p : pairs) {
    if (p.ratio() > 1.5) ++above_15;
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const PairResult& x, const PairResult& y) {
              return x.ratio() > y.ratio();
            });

  bench::section("most asymmetric pairs (paper bar chart, 11 links)");
  std::printf("%-8s %10s %10s %8s\n", "link", "x->y Mb/s", "y->x Mb/s", "ratio");
  for (std::size_t i = 0; i < std::min<std::size_t>(11, pairs.size()); ++i) {
    const auto& p = pairs[i];
    std::printf("%2d-%-5d %10.1f %10.1f %7.1fx\n", p.a, p.b, p.fwd, p.rev,
                p.ratio());
  }

  bench::section("aggregate");
  std::printf("pairs measured: %zu\n", pairs.size());
  std::printf("pairs with >1.5x asymmetry: %.0f%%  (paper: ~30%%)\n",
              100.0 * above_15 / std::max<std::size_t>(1, pairs.size()));
  return 0;
}

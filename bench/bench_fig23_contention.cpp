// Fig. 23 + §8.2: sensitivity of link metrics to background traffic. A link
// sends 150 kb/s probe traffic; at t=200 s a second link activates. On some
// link pairs the capture effect corrupts a few PBs per collision, the
// channel estimator cannot tell those errors from channel noise, and BLE
// collapses while PBerr explodes; other pairs are insensitive.
#include "bench_util.hpp"

using namespace efd;

namespace {

struct Phase {
  sim::RunningStats ble;
  sim::RunningStats pberr;
};

/// Probe link (a->b) with background (c->d) activating at t=200 s.
/// Returns BLE/PBerr of a->b before and during the background traffic.
std::pair<Phase, Phase> run_pair(testbed::Testbed& tb, int a, int b, int c, int d,
                                 double bg_rate_bps, int probe_burst) {
  sim::Simulator& sim = tb.simulator();
  bench::warm_link(tb, a, b);
  auto& net_ab = tb.plc_network_of(a);

  net::ProbeSource::Config pcfg;
  pcfg.src = a;
  pcfg.dst = b;
  pcfg.packet_bytes = 1500;
  pcfg.burst_count = probe_burst;
  // Keep the probing *rate* constant: bursts stretch the interval.
  pcfg.interval = sim::milliseconds(75.0 * probe_burst);
  net::ProbeSource probes(sim, tb.plc_station(a).mac(), pcfg);

  net::UdpSource::Config bcfg;
  bcfg.src = c;
  bcfg.dst = d;
  bcfg.rate_bps = bg_rate_bps;
  net::UdpSource background(sim, tb.plc_station(c).mac(), bcfg);

  const sim::Time start = sim.now();
  probes.run(start, start + sim::seconds(400));
  background.run(start + sim::seconds(200), start + sim::seconds(400));

  Phase before, during;
  for (int s = 5; s < 400; s += 5) {
    sim.run_until(start + sim::seconds(s));
    Phase& phase = s < 200 ? before : during;
    phase.ble.add(net_ab.mm_average_ble(a, b));
    phase.pberr.add(net_ab.mm_pberr(a, b));
  }
  background.stop();
  probes.stop();
  sim.run_until(sim.now() + sim::seconds(1));
  return {before, during};
}

void report(const char* label, const Phase& before, const Phase& during) {
  std::printf("%-34s BLE %6.1f -> %6.1f Mb/s   PBerr %.3f -> %.3f\n", label,
              before.ble.mean(), during.ble.mean(), before.pberr.mean(),
              during.pberr.mean());
}

}  // namespace

int main() {
  bench::header("Fig. 23", "link-metric sensitivity to background traffic",
                "BLE is insensitive to low-rate background traffic everywhere; "
                "saturated background collapses BLE (and explodes PBerr) on "
                "capture-prone pairs only");
  bench::JsonReporter json("fig23");

  // Phases nest under the reporter's root "bench" scope: pair selection is
  // "phase.setup", the four run_pair sweeps are "phase.sweep".
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  int sa = -1, sb = -1, sc = -1, sd = -1;  // sensitive
  int ia = -1, ib = -1, ic = -1, id = -1;  // insensitive
  {
    EFD_PROF_SCOPE("phase.setup");
    sim.run_until(testbed::weekend_night());

    // Find a capture-prone pair: background transmitter electrically close
    // to the probe receiver (large SNR advantage of probe at its receiver),
    // and an insensitive pair (comparable strengths -> full-frame
    // collisions).
    auto& ch = tb.plc_channel();
    for (const auto& [a, b] : tb.plc_links()) {
      if (ch.mean_snr_db(a, b, 0, sim.now()) < 20.0) continue;
      for (const auto& [c, d] : tb.plc_links()) {
        if (c == a || c == b || d == a || d == b) continue;
        if (!tb.same_plc_network(a, c)) continue;
        if (ch.mean_snr_db(c, d, 0, sim.now()) < 12.0) continue;
        const double adv = ch.mean_snr_db(a, b, 0, sim.now()) -
                           ch.mean_snr_db(c, b, 0, sim.now());
        if (sa < 0 && adv > 12.0) {
          sa = a; sb = b; sc = c; sd = d;
        }
        if (ia < 0 && adv < 6.0 && adv > -6.0) {
          ia = a; ib = b; ic = c; id = d;
        }
        if (sa >= 0 && ia >= 0) break;
      }
      if (sa >= 0 && ia >= 0) break;
    }
  }
  std::printf("sensitive pair: probe %d->%d, background %d->%d\n", sa, sb, sc, sd);
  std::printf("insensitive pair: probe %d->%d, background %d->%d\n\n", ia, ib, ic,
              id);

  EFD_PROF_SCOPE("phase.sweep");
  bench::section("sensitive pair (paper: 6-11 with 1-0 background)");
  {
    const auto [b1, d1] = run_pair(tb, sa, sb, sc, sd, 150e3, 1);
    report("150 kb/s background:", b1, d1);
    const auto [b2, d2] = run_pair(tb, sa, sb, sc, sd, 400e6, 1);
    report("saturated background:", b2, d2);
    json.add("sensitive_ble_before", b2.ble.mean(), "Mb/s");
    json.add("sensitive_ble_during", d2.ble.mean(), "Mb/s");
    json.add("sensitive_pberr_during", d2.pberr.mean(), "ratio");
  }

  bench::section("insensitive pair (paper: 0-11 with 1-6 background)");
  {
    const auto [b1, d1] = run_pair(tb, ia, ib, ic, id, 150e3, 1);
    report("150 kb/s background:", b1, d1);
    const auto [b2, d2] = run_pair(tb, ia, ib, ic, id, 400e6, 1);
    report("saturated background:", b2, d2);
    json.add("insensitive_ble_before", b2.ble.mean(), "Mb/s");
    json.add("insensitive_ble_during", d2.ble.mean(), "Mb/s");
    json.add("insensitive_pberr_during", d2.pberr.mean(), "ratio");
  }
  std::printf("\n(the sensitive receiver captures colliding frames and decodes "
              "them with errored PBs; the estimator cannot distinguish those "
              "from channel errors and lowers BLE)\n");
  return 0;
}

// Fig. 12 + §6.3: random-scale variation over two days — throughput/BLE and
// PBerr averaged over 1-minute intervals, showing the electrical-load
// rhythm of the building and the 21:00 lights-off step.
#include "bench_util.hpp"

using namespace efd;

namespace {

void run_two_days(testbed::Testbed& tb, int a, int b, const char* label) {
  auto& est = tb.plc_network_of(b).estimator(b, a);
  core::LinkTraceSampler::Config scfg;
  scfg.step = sim::seconds(1);
  scfg.pbs_per_step = 26000;
  core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b,
                                 sim::Rng{tb.seed() ^ 0x12cULL}, scfg);

  bench::section(std::string(label) + ": 2-day trace, hourly means of 1-min "
                 "averages");
  std::printf("%-14s %10s %8s %10s\n", "time", "BLE Mb/s", "PBerr",
              "appliances-on");
  const sim::Time start = tb.simulator().now();
  sim::RunningStats minute_ble, hour_ble, hour_pberr;
  double around_9pm_before = 0.0, around_9pm_after = 0.0;
  for (int s = 0; s < 2 * 24 * 3600; ++s) {
    const sim::Time t = start + sim::seconds(s);
    const double ble = sampler.step(t);
    minute_ble.add(ble);
    if (s % 60 == 59) {
      hour_ble.add(minute_ble.mean());
      hour_pberr.add(est.measured_pberr());
      minute_ble = {};
    }
    if (s % 3600 == 3599) {
      const double hour = grid::Calendar::hour_of_day(t);
      std::printf("day %lld %02.0f:00 %10.1f %8.4f %10d\n",
                  static_cast<long long>(grid::Calendar::day_index(t)), hour,
                  hour_ble.mean(), hour_pberr.mean(),
                  tb.grid().appliances_on(t));
      if (std::abs(hour - 20.0) < 0.1) around_9pm_before = hour_ble.mean();
      if (std::abs(hour - 22.0) < 0.1) around_9pm_after = hour_ble.mean();
      hour_ble = {};
      hour_pberr = {};
    }
  }
  std::printf("21:00 lights-off step: BLE %.1f -> %.1f Mb/s "
              "(paper: clear upward step every day at 9 pm)\n",
              around_9pm_before, around_9pm_after);
}

}  // namespace

int main() {
  bench::header("Fig. 12", "random-scale variation over 2 days (1-min averages)",
                "quality follows the electrical load: lower during working "
                "hours, stepping up at the nightly 21:00 lights-off; PBerr "
                "moves inversely");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  // Start Tuesday 15:00, as in the paper's figure (3 PM tick first).
  sim.run_until(sim::days(1) + sim::hours(15));

  // A mid-quality link crossing the office (sensitive to load) and a good
  // link (the paper's 15-16 and 0-1 analogues).
  int mid_a = -1, mid_b = -1, good_a = -1, good_b = -1;
  double best = 0.0;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 6.0) continue;
    const double ble = bench::warmed_ble(tb, a, b);
    if (mid_a < 0 && ble > 25.0 && ble < 70.0) {
      mid_a = a;
      mid_b = b;
    }
    if (ble > best) {
      best = ble;
      good_a = a;
      good_b = b;
    }
  }
  run_two_days(tb, mid_a, mid_b, "average link (paper: 15-16)");
  run_two_days(tb, good_a, good_b, "good link (paper: 0-1)");
  return 0;
}

// Fig. 3 + §4.1: WiFi vs PLC for all station pairs — mean and standard
// deviation of back-to-back saturated throughput, connectivity, and the
// performance/variability ratios vs floor distance.
//
// Sweep modes (EFD_BENCH_THREADS): unset -> legacy back-to-back sweep on one
// shared testbed (byte-identical to the historical output); n >= 1 -> each
// pair measured on its own per-task testbed via ParallelRunner, output
// identical for every worker count.
#include "src/testbed/parallel_runner.hpp"

#include "bench_util.hpp"

using namespace efd;

namespace {

struct PairResult {
  int a = 0, b = 0;
  double dist_m = 0.0;
  testbed::ThroughputResult plc;
  testbed::ThroughputResult wifi;
};

PairResult measure_pair(testbed::Testbed& tb, int a, int b) {
  const auto duration = sim::seconds(8.0 * bench::duration_scale());
  PairResult r;
  r.a = a;
  r.b = b;
  r.dist_m = tb.floor_distance_m(a, b);
  if (tb.same_plc_network(a, b)) {
    bench::warm_link(tb, a, b);
    r.plc = testbed::measure_plc_throughput(tb, a, b, duration);
  }
  r.wifi = testbed::measure_wifi_throughput(tb, a, b, duration);
  return r;
}

}  // namespace

int main() {
  bench::header(
      "Fig. 3", "WiFi vs PLC spatial comparison (all pairs, back-to-back saturation)",
      "PLC connects 100% of WiFi-connected pairs; WiFi misses ~19% of PLC pairs; "
      "~52% of pairs faster on PLC; sigma_W up to ~19 Mb/s vs sigma_P < 4 Mb/s; "
      "no WiFi connectivity beyond ~35 m while PLC still delivers");
  bench::JsonReporter json("fig03");

  // Bench phases nest under the reporter's root "bench" scope; the folded
  // tree in BENCH_fig03.json then attributes the run to setup/sweep/report.
  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  std::unique_ptr<testbed::Testbed> tb;
  {
    EFD_PROF_SCOPE("phase.setup");
    tb = std::make_unique<testbed::Testbed>(sim, cfg);
    sim.run_until(testbed::weekday_afternoon());
  }

  std::vector<PairResult> results;
  {
    EFD_PROF_SCOPE("phase.sweep");
    const int threads = testbed::ParallelRunner::env_threads();
    if (threads == 0) {
      for (const auto& [a, b] : tb->all_pairs()) {
        results.push_back(measure_pair(*tb, a, b));
      }
    } else {
      std::printf("sweep: per-pair testbeds on %d worker(s)\n", threads);
      const auto pairs = tb->all_pairs();
      const testbed::ParallelRunner pool(threads);
      results = pool.map_with_sim<PairResult>(
          static_cast<int>(pairs.size()),
          [&pairs, &cfg](int i, sim::Simulator& task_sim) {
            testbed::Testbed task_tb(task_sim, cfg);
            task_sim.run_until(testbed::weekday_afternoon());
            return measure_pair(task_tb,
                                pairs[static_cast<std::size_t>(i)].first,
                                pairs[static_cast<std::size_t>(i)].second);
          });
    }
  }

  EFD_PROF_SCOPE("phase.report");
  const auto connected = [](const testbed::ThroughputResult& t) {
    return t.mean_mbps > 1.0;
  };

  int plc_conn = 0, wifi_conn = 0, both = 0, wifi_only = 0, plc_only = 0;
  int plc_faster = 0, comparable_pairs = 0;
  double max_plc_gain = 0.0, max_wifi_gain = 0.0;
  sim::RunningStats sigma_w, sigma_p;
  for (const auto& r : results) {
    const bool pc = connected(r.plc);
    const bool wc = connected(r.wifi);
    plc_conn += pc;
    wifi_conn += wc;
    both += pc && wc;
    wifi_only += wc && !pc;
    plc_only += pc && !wc;
    if (pc || wc) {
      ++comparable_pairs;
      if (r.plc.mean_mbps > r.wifi.mean_mbps) ++plc_faster;
      if (pc && wc) {
        // Gains are compared on mutually connected pairs, as in the paper
        // (its examples: 40.1 vs 2.2 and 46.3 vs 3.8 Mb/s).
        max_plc_gain = std::max(max_plc_gain, r.plc.mean_mbps / r.wifi.mean_mbps);
        max_wifi_gain = std::max(max_wifi_gain, r.wifi.mean_mbps / r.plc.mean_mbps);
      }
      if (wc) sigma_w.add(r.wifi.std_mbps);
      if (pc) sigma_p.add(r.plc.std_mbps);
    }
  }

  json.add("pairs_total", static_cast<double>(results.size()), "pairs");
  json.add("plc_connected", plc_conn, "pairs");
  json.add("wifi_connected", wifi_conn, "pairs");
  json.add("pct_faster_on_plc",
           100.0 * plc_faster / std::max(1, comparable_pairs), "%");
  json.add("sigma_wifi_max", sigma_w.max(), "Mb/s");
  json.add("sigma_plc_max", sigma_p.max(), "Mb/s");

  bench::section("connectivity");
  std::printf("pairs total: %zu (PLC possible on %zu same-network pairs)\n",
              results.size(), tb->plc_links().size());
  std::printf("PLC connected:  %d   WiFi connected: %d\n", plc_conn, wifi_conn);
  std::printf("WiFi-connected pairs also on PLC: %.0f%%  (paper: 100%%)\n",
              both + wifi_only == 0
                  ? 0.0
                  : 100.0 * both / std::max(1, wifi_conn));
  std::printf("PLC-connected pairs also on WiFi: %.0f%%  (paper: 81%%)\n",
              100.0 * both / std::max(1, plc_conn));

  bench::section("average performance");
  std::printf("pairs faster on PLC: %.0f%%  (paper: 52%%)\n",
              100.0 * plc_faster / std::max(1, comparable_pairs));
  std::printf("max PLC/WiFi gain: %.1fx  (paper: 18x)\n", max_plc_gain);
  std::printf("max WiFi/PLC gain: %.1fx  (paper: 12x)\n", max_wifi_gain);

  bench::section("variability");
  std::printf("sigma_W: mean %.1f  max %.1f Mb/s  (paper max ~19.2)\n",
              sigma_w.mean(), sigma_w.max());
  std::printf("sigma_P: mean %.1f  max %.1f Mb/s  (paper: vast majority < 4)\n",
              sigma_p.mean(), sigma_p.max());

  bench::section("ratio vs distance (floor-distance buckets)");
  std::printf("%-12s %8s %8s %10s %10s %8s\n", "distance", "T_W", "T_P", "T_W/T_P",
              "sW/sP", "pairs");
  const double edges[] = {0, 10, 15, 20, 25, 30, 35, 45, 80};
  for (std::size_t e = 0; e + 1 < std::size(edges); ++e) {
    sim::RunningStats tw, tp, ratio_t, ratio_s;
    int n = 0;
    for (const auto& r : results) {
      if (r.dist_m < edges[e] || r.dist_m >= edges[e + 1]) continue;
      ++n;
      tw.add(r.wifi.mean_mbps);
      tp.add(r.plc.mean_mbps);
      if (r.plc.mean_mbps > 1.0) ratio_t.add(r.wifi.mean_mbps / r.plc.mean_mbps);
      if (r.plc.std_mbps > 0.1 && r.wifi.mean_mbps > 1.0) {
        ratio_s.add(r.wifi.std_mbps / r.plc.std_mbps);
      }
    }
    if (n == 0) continue;
    std::printf("%5.0f-%-5.0fm %8.1f %8.1f %10.2f %10.2f %8d\n", edges[e],
                edges[e + 1], tw.mean(), tp.mean(), ratio_t.mean(), ratio_s.mean(),
                n);
  }

  bench::section("long-distance blind spots (floor distance > 35 m)");
  for (const auto& r : results) {
    if (r.dist_m <= 35.0 || connected(r.wifi) || !connected(r.plc)) continue;
    std::printf("  %2d->%2d  %4.0f m: WiFi %5.1f Mb/s, PLC %5.1f Mb/s\n", r.a, r.b,
                r.dist_m, r.wifi.mean_mbps, r.plc.mean_mbps);
  }
  std::printf("(paper: PLC delivers up to 41 Mb/s where WiFi is blind)\n");
  return 0;
}

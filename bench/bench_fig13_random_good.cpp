// Fig. 13 + §6.3: random-scale variation of a *good* link over two weeks —
// hour-of-day BLE averages with standard deviation, weekdays vs weekends.
// Good links barely move (y-span of a few Mb/s) and could be probed every
// minute or hour.
#include "bench_util.hpp"

using namespace efd;

namespace {

struct HourProfile {
  sim::RunningStats weekday[24];
  sim::RunningStats weekend[24];
};

HourProfile profile_link(testbed::Testbed& tb, int a, int b, int days) {
  auto& est = tb.plc_network_of(b).estimator(b, a);
  core::LinkTraceSampler::Config scfg;
  scfg.step = sim::seconds(5);
  scfg.pbs_per_step = 130000;
  core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b,
                                 sim::Rng{tb.seed() ^ 0x13dULL}, scfg);
  HourProfile profile;
  const sim::Time start = tb.simulator().now();
  for (int s = 0; s < days * 24 * 3600; s += 5) {
    const sim::Time t = start + sim::seconds(s);
    const double ble = sampler.step(t);
    const int hour = static_cast<int>(grid::Calendar::hour_of_day(t));
    auto& bucket = grid::Calendar::is_weekend(t) ? profile.weekend[hour]
                                                 : profile.weekday[hour];
    bucket.add(ble);
  }
  return profile;
}

void print_profile(const HourProfile& p) {
  std::printf("%6s %14s %14s %12s %12s\n", "hour", "weekday BLE", "weekend BLE",
              "wd std", "we std");
  for (int h = 0; h < 24; h += 2) {
    std::printf("%5d: %14.1f %14.1f %12.2f %12.2f\n", h, p.weekday[h].mean(),
                p.weekend[h].mean(), p.weekday[h].stddev(),
                p.weekend[h].stddev());
  }
  sim::RunningStats all_wd, all_we;
  for (int h = 0; h < 24; ++h) {
    all_wd.add(p.weekday[h].mean());
    all_we.add(p.weekend[h].mean());
  }
  std::printf("weekday span: %.1f Mb/s; weekend span: %.1f Mb/s\n",
              all_wd.max() - all_wd.min(), all_we.max() - all_we.min());
}

}  // namespace

int main() {
  bench::header("Fig. 13", "good link over 2 weeks: hour-of-day BLE profile",
                "a good link's BLE spans only a few Mb/s (paper: 88-96) with "
                "tiny error bars; weekends are flatter than weekdays");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);

  // A good link that sits just *below* the 150 Mb/s ceiling stands in for
  // the paper's link 1-8 (which rides at 88-96 Mb/s): at the cap the BLE
  // quantizes flat; just below it the daily load rhythm stays visible.
  int ga = 0, gb = 1;
  double best = 0.0;
  for (const auto& [a, b] : tb.plc_links()) {
    const double noon_snr = tb.plc_channel().mean_snr_db(
        a, b, 0, sim::days(1) + sim::hours(12));
    if (noon_snr > best && noon_snr < 30.0) {
      best = noon_snr;
      ga = a;
      gb = b;
    }
  }
  sim.run_until(sim::hours(0.1));
  best = bench::warmed_ble(tb, ga, gb);
  std::printf("good link: %d->%d (BLE %.0f Mb/s)\n", ga, gb, best);
  const auto profile = profile_link(tb, ga, gb, 14);
  print_profile(profile);
  return 0;
}

// Fig. 7 + §5: saturated throughput vs cable distance for every link, with
// both HomePlug AV and HPAV500; plus PBerr vs throughput (right panel).
//
// Sweep modes (EFD_BENCH_THREADS): unset -> legacy sweep on one shared
// testbed; n >= 1 -> per-link testbeds fanned out via ParallelRunner.
#include "src/testbed/parallel_runner.hpp"

#include "bench_util.hpp"

using namespace efd;

namespace {

struct Row {
  int a = 0, b = 0;
  double dist = 0.0;
  double t_av = 0.0, t_av500 = 0.0;
  double pberr_av = 0.0;
};

Row measure_link(testbed::Testbed& tb, int a, int b) {
  Row r{a, b, tb.plc_channel().cable_distance(a, b), 0, 0, 0};
  bench::warm_link(tb, a, b, testbed::PlcGeneration::kHpav);
  r.t_av = testbed::measure_plc_throughput(tb, a, b, sim::seconds(8),
                                           testbed::PlcGeneration::kHpav)
               .mean_mbps;
  r.pberr_av = tb.plc_network_of(b).mm_pberr(a, b);
  bench::warm_link(tb, a, b, testbed::PlcGeneration::kHpav500);
  r.t_av500 = testbed::measure_plc_throughput(tb, a, b, sim::seconds(8),
                                              testbed::PlcGeneration::kHpav500)
                  .mean_mbps;
  return r;
}

}  // namespace

int main() {
  bench::header("Fig. 7", "throughput vs cable distance (AV and AV500); PBerr vs T",
                "clear degradation with distance; <30 m guarantees good links, "
                "30-100 m can be good or bad; AV500 revives some dead AV links "
                "(with severe asymmetry); PBerr decreases as throughput rises");
  bench::JsonReporter json("fig07");

  sim::Simulator sim;
  testbed::Testbed tb(sim);  // both generations
  sim.run_until(testbed::weekday_afternoon());

  std::vector<Row> rows;
  const int threads = testbed::ParallelRunner::env_threads();
  if (threads == 0) {
    for (const auto& [a, b] : tb.plc_links()) {
      rows.push_back(measure_link(tb, a, b));
    }
  } else {
    std::printf("sweep: per-link testbeds on %d worker(s)\n", threads);
    const auto links = tb.plc_links();
    const testbed::ParallelRunner pool(threads);
    rows = pool.map_with_sim<Row>(
        static_cast<int>(links.size()), [&links](int i, sim::Simulator& task_sim) {
          testbed::Testbed task_tb(task_sim);  // both generations
          task_sim.run_until(testbed::weekday_afternoon());
          return measure_link(task_tb, links[static_cast<std::size_t>(i)].first,
                              links[static_cast<std::size_t>(i)].second);
        });
  }

  bench::section("throughput vs cable distance (bucket means and ranges)");
  std::printf("%-12s %8s %16s %8s %18s\n", "cable dist", "T_AV", "range_AV",
              "T_AV500", "range_AV500");
  const double edges[] = {0, 20, 30, 40, 50, 60, 70, 85, 110};
  for (std::size_t e = 0; e + 1 < std::size(edges); ++e) {
    sim::RunningStats av, av500;
    for (const auto& r : rows) {
      if (r.dist < edges[e] || r.dist >= edges[e + 1]) continue;
      av.add(r.t_av);
      av500.add(r.t_av500);
    }
    if (av.count() == 0) continue;
    std::printf("%4.0f-%-6.0fm %8.1f %7.1f-%-8.1f %8.1f %8.1f-%-8.1f\n", edges[e],
                edges[e + 1], av.mean(), av.min(), av.max(), av500.mean(),
                av500.min(), av500.max());
  }

  bench::section("links dead on AV but alive on AV500");
  int revived = 0;
  for (const auto& r : rows) {
    if (r.t_av < 1.0 && r.t_av500 > 2.0) {
      ++revived;
      if (revived <= 8) {
        std::printf("  %2d->%2d  %5.1f m: AV %.1f, AV500 %.1f Mb/s\n", r.a, r.b,
                    r.dist, r.t_av, r.t_av500);
      }
    }
  }
  std::printf("total revived links: %d (paper: e.g. link 10-2, 10x asymmetry)\n",
              revived);
  json.add("links_measured", static_cast<double>(rows.size()), "links");
  json.add("revived_on_av500", revived, "links");

  bench::section("PBerr vs throughput (AV)");
  std::printf("%-14s %10s %8s\n", "T bucket", "mean PBerr", "links");
  const double tb_edges[] = {0, 10, 20, 30, 40, 55, 70, 95};
  for (std::size_t e = 0; e + 1 < std::size(tb_edges); ++e) {
    sim::RunningStats p;
    for (const auto& r : rows) {
      if (r.t_av < tb_edges[e] || r.t_av >= tb_edges[e + 1]) continue;
      p.add(r.pberr_av);
    }
    if (p.count() == 0) continue;
    std::printf("%4.0f-%-6.0f    %10.4f %8zu\n", tb_edges[e], tb_edges[e + 1],
                p.mean(), p.count());
  }
  std::printf("(paper: PBerr falls with throughput, up to ~0.4 on bad links)\n");
  return 0;
}

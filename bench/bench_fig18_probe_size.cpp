// Fig. 18 + §7.2: probe-packet size matters — 1 probe/s with payloads of at
// most one PB (<= 520 B) clamps the estimated capacity at the single-PB
// symbol rate R1sym = 520*8/Tsym ≈ 89.4 Mb/s; 521 B (2 PBs) and 1300 B
// escape the clamp.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 18", "estimated capacity vs probe size (1 pkt/s)",
                "200 B and 520 B probes converge to ~89.4 Mb/s and stay there; "
                "521 B and 1300 B probes converge to the true capacity");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  // A high-capacity link, like the paper's 11-6 (true capacity ~120+).
  int la = -1, lb = -1;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) > 35.0) {
      la = a;
      lb = b;
      break;
    }
  }
  std::printf("link %d->%d; R1sym = %.1f Mb/s\n", la, lb,
              tb.plc_channel().phy().single_pb_symbol_rate_mbps());

  bench::section("estimated capacity (Mb/s) vs time, by probe size");
  const std::size_t sizes[] = {200, 520, 521, 1300};
  const double checkpoints_s[] = {200, 1000, 3000, 6000, 9800};
  std::printf("%8s", "size");
  for (double cp : checkpoints_s) std::printf(" %9.0f", cp);
  std::printf("\n");
  for (std::size_t size : sizes) {
    auto& est = tb.plc_network_of(lb).estimator(lb, la);
    est.reset(sim.now());
    core::ProbeTraceSampler::Config scfg;
    scfg.packets_per_second = 1.0;
    scfg.packet_bytes = size;
    core::ProbeTraceSampler sampler(tb.plc_channel(), est, la, lb,
                                    sim::Rng{tb.seed() ^ 0x18bULL}, scfg);
    const sim::Time start = sim.now();
    const auto trace =
        sampler.run(start, start + sim::seconds(10000), sim::seconds(20));
    std::printf("%7zuB", size);
    std::size_t ci = 0;
    for (const auto& s : trace) {
      if (ci < std::size(checkpoints_s) &&
          (s.t - start).seconds() >= checkpoints_s[ci]) {
        std::printf(" %9.1f", s.ble_mbps);
        ++ci;
      }
    }
    std::printf("\n");
  }
  std::printf("\n(520 B fits one PB: with single-PB, single-symbol frames the "
              "rate adaptation has no airtime gradient above R1sym and "
              "converges there; 521 B needs a second PB and escapes)\n");
  return 0;
}

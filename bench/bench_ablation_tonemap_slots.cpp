// Ablation (§6.1): the value of per-slot tone maps. HomePlug adapts to the
// mains-synchronous noise with 6 tone maps per AC half cycle; a single tone
// map must carry enough margin for the worst slot, losing rate on the good
// slots. Compares converged capacity with L=1 vs L=6 slots.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Ablation: tone-map slots", "L=1 vs L=6 tone maps per half cycle",
                "per-slot adaptation recovers the rate the invariance-scale "
                "noise structure would otherwise cost");

  sim::Simulator sim;
  grid::PowerGrid grid;
  const int a = grid.add_node("a");
  const int j = grid.add_node("j");
  const int b = grid.add_node("b");
  grid.add_cable(a, j, 12.0, 10.0);
  grid.add_cable(j, b, 8.0);
  // Strong mains-synchronous noise sources near the receiver.
  for (std::uint64_t s = 1; s <= 3; ++s) {
    auto appliance = grid::make_appliance(grid::ApplianceType::kLightBank, j, s);
    appliance.schedule = grid::ActivitySchedule::always_on();
    appliance.noise.sync_db = 12.0;  // exaggerate the slot structure
    grid.add_appliance(appliance);
  }

  std::printf("%-8s %14s %14s %12s\n", "slots", "avg BLE", "worst slot",
              "best slot");
  for (int slots : {1, 2, 3, 6}) {
    plc::PhyParams phy = plc::PhyParams::hpav();
    phy.tone_map_slots = slots;
    plc::PlcChannel channel(grid, phy);
    channel.attach_station(0, a);
    channel.attach_station(1, b);
    plc::ChannelEstimator est(channel, 0, 1, sim::Rng{5}, {});
    core::LinkTraceSampler sampler(channel, est, 0, 1, sim::Rng{6});
    const sim::Time start = sim::days(1) + sim::hours(12);
    (void)sampler.run(start, start + sim::seconds(30));
    double worst = 1e9, best = 0.0;
    for (int s = 0; s < slots; ++s) {
      worst = std::min(worst, est.ble_mbps(s));
      best = std::max(best, est.ble_mbps(s));
    }
    std::printf("%-8d %14.1f %14.1f %12.1f\n", slots, est.average_ble_mbps(),
                worst, best);
  }
  std::printf("\n(with one tone map the whole half cycle runs at a compromise "
              "rate; six slots track the noise trough and crest — the paper's "
              "Fig. 9 motivation for averaging BLE over the mains cycle)\n");
  return 0;
}

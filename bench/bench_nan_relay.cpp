// NAN relay figure: delivery vs hop budget for multi-hop PLC relaying.
// With an aggressive connectivity threshold, below-threshold meters only
// reach the concentrator through intermediate meters; sweeping the planner's
// hop budget from 1 (relaying off — direct link only) upward shows how many
// meters each extra hop rescues and what the store-and-forward traffic
// costs. Shape metrics are byte-identical across EFD_SHARDS and EFD_SIMD.
#include "bench_util.hpp"

#include <chrono>
#include <cstdio>

#include "src/sim/sharded.hpp"
#include "src/testbed/nan.hpp"

using namespace efd;

namespace {

std::uint64_t digest6(std::uint64_t h) { return h % 1'000'000; }

}  // namespace

int main() {
  const int shards = sim::ShardedSimulator::env_shards(1);
  bench::JsonReporter json("nan_relay");
  json.add("n_shards", shards, "shards");

  std::printf("NAN multi-hop PLC relay  (EFD_SHARDS=%d, duration scale %.2f)\n",
              shards, bench::duration_scale());
  std::printf("%8s %9s %9s %8s %12s %12s %9s  %s\n", "max_hops", "offered",
              "delivered", "ratio", "relay_meters", "forwards", "hops_max",
              "digest");

  for (const int max_hops : {1, 2, 3, 4}) {
    testbed::NanRunConfig cfg;
    cfg.nan.n_meters = 96;
    cfg.nan.meters_per_transformer = 16;
    cfg.nan.transformers_per_feeder = 3;
    cfg.nan.stations_per_transformer = 8;
    cfg.nan.seed = 19;
    cfg.n_shards = shards;
    cfg.duration = sim::milliseconds(200.0 * bench::duration_scale());
    cfg.report_interval = sim::milliseconds(2);
    cfg.p_remote = 0.15;
    cfg.mode = testbed::DiversityMode::kPlcOnly;
    cfg.relay_enabled = max_hops > 1;
    cfg.relay.connect_etx = 1.8;  // force marginal meters onto relay paths
    cfg.relay.max_hops = max_hops;

    const auto t0 = std::chrono::steady_clock::now();
    const testbed::NanResult r = testbed::run_nan(cfg);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const double ratio =
        r.offered > 0 ? static_cast<double>(r.delivered + r.delivered_remote) /
                            static_cast<double>(r.offered)
                      : 0.0;
    std::printf("%8d %9llu %9llu %8.3f %12llu %12llu %9d  %016llx  (%.2fs)\n",
                max_hops, static_cast<unsigned long long>(r.offered),
                static_cast<unsigned long long>(r.delivered + r.delivered_remote),
                ratio, static_cast<unsigned long long>(r.relay_meters),
                static_cast<unsigned long long>(r.relay_forwards),
                r.relay_hops_max, static_cast<unsigned long long>(r.digest),
                wall_s);

    const std::string tag = std::to_string(max_hops);
    json.add("digest6_h" + tag, static_cast<double>(digest6(r.digest)),
             "digest");
    json.add("offered_h" + tag, static_cast<double>(r.offered), "packets");
    json.add("delivered_h" + tag,
             static_cast<double>(r.delivered + r.delivered_remote), "packets");
    json.add("relay_meters_h" + tag, static_cast<double>(r.relay_meters),
             "meters");
    json.add("forwards_h" + tag, static_cast<double>(r.relay_forwards),
             "packets");
    json.add("hops_max_h" + tag, static_cast<double>(r.relay_hops_max),
             "hops");
  }
  return 0;
}

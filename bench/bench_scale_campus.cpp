// Campus scale sweep for the sharded conservative engine (DESIGN.md §14):
// 10 -> 10,000 outlets, one distribution board per 20 outlets, boards
// partitioned into EFD_SHARDS shards. Reports events/s and the per-shard
// load balance, and — the headline correctness property — a per-size digest
// that is byte-identical for every shard count: run with EFD_SHARDS=1|2|8
// and diff the JSON.
#include "bench_util.hpp"

#include <chrono>
#include <cstring>

#include "src/sim/sharded.hpp"
#include "src/testbed/campus.hpp"

using namespace efd;

namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

/// Shape metrics go through JsonReporter's %.6g formatting, so a digest must
/// fit six significant digits to round-trip exactly.
std::uint64_t digest6(std::uint64_t h) { return h % 1'000'000; }

}  // namespace

int main(int argc, char** argv) {
  int max_outlets = 10'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-outlets") == 0 && i + 1 < argc) {
      max_outlets = std::atoi(argv[++i]);
    }
  }

  const int shards = sim::ShardedSimulator::env_shards(1);
  bench::JsonReporter json("scale_campus");
  json.add("n_shards", shards, "shards");

  std::printf("campus scale sweep  (EFD_SHARDS=%d, duration scale %.2f)\n",
              shards, bench::duration_scale());
  std::printf("%8s %7s %7s %10s %12s %9s %8s %8s  %s\n", "outlets", "boards",
              "shards", "events", "events/s", "delivered", "remote",
              "balance", "digest");

  Fnv1a sweep;
  double worst_balance = 1.0;
  for (const int outlets : {10, 100, 1'000, 10'000}) {
    if (outlets > max_outlets) continue;
    testbed::CampusRunConfig cfg;
    cfg.campus.n_outlets = outlets;
    cfg.campus.outlets_per_board = 20;
    cfg.campus.stations_per_board = 4;
    cfg.campus.seed = 7;
    cfg.n_shards = shards;
    cfg.duration = sim::milliseconds(200.0 * bench::duration_scale());

    testbed::CampusWorld world(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    world.run();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const testbed::CampusResult r = world.result();

    const double eps =
        wall_s > 0.0 ? static_cast<double>(r.events) / wall_s : 0.0;
    std::printf("%8d %7d %7d %10llu %12.0f %9llu %8llu %8.2f  %016llx\n",
                outlets, r.n_boards, r.n_shards,
                static_cast<unsigned long long>(r.events), eps,
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.packets_remote),
                r.load_balance, static_cast<unsigned long long>(r.digest));

    const std::string tag = std::to_string(outlets);
    json.add("digest6_" + tag, static_cast<double>(digest6(r.digest)),
             "digest");
    json.add("delivered_" + tag, static_cast<double>(r.delivered), "packets");
    json.add("remote_" + tag, static_cast<double>(r.packets_remote),
             "packets");
    json.add("boundary_" + tag, static_cast<double>(r.boundary_delivered),
             "events");
    sweep.mix(r.digest);
    worst_balance = std::max(worst_balance, r.load_balance);
  }

  json.add("sweep_digest6", static_cast<double>(digest6(sweep.h)), "digest");
  // Warn-only in bench_compare: load balance depends on host scheduling.
  json.add("shard_load_balance", worst_balance, "ratio");
  std::printf("sweep digest6 %llu   worst load balance %.2f\n",
              static_cast<unsigned long long>(digest6(sweep.h)),
              worst_balance);
  return 0;
}

// Fig. 16 + §7.1: estimated capacity vs time for different probe rates
// (1/10/50/200 packets per second of 1300 B), after a device reset. The
// estimate converges to the same value at every rate, but the convergence
// time shrinks as the rate grows.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 16", "capacity-estimation convergence vs probe rate",
                "all rates converge to the same capacity; 200 pkt/s converges "
                "within minutes while 1 pkt/s needs thousands of seconds");
  bench::JsonReporter json("fig16");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  // One good and one average link, as in the paper (links 1-11 and 1-5).
  struct LinkPick { int a, b; const char* label; };
  std::vector<LinkPick> picks;
  for (const auto& [a, b] : tb.plc_links()) {
    const double snr = tb.plc_channel().mean_snr_db(a, b, 0, sim.now());
    if (picks.empty() && snr > 35.0) picks.push_back({a, b, "good link"});
    if (picks.size() == 1 && snr > 14.0 && snr < 19.0) {
      picks.push_back({a, b, "average link"});
      break;
    }
  }

  const double rates[] = {1.0, 10.0, 50.0, 200.0};
  const double checkpoints_s[] = {50, 200, 500, 1000, 2000, 4000, 8000};

  for (const auto& pick : picks) {
    bench::section(std::string(pick.label) + " " + std::to_string(pick.a) + "->" +
                   std::to_string(pick.b) + ": estimated capacity (Mb/s) vs time");
    std::printf("%12s", "t (s)");
    for (double cp : checkpoints_s) std::printf(" %8.0f", cp);
    std::printf("   converge@95%%\n");
    for (double rate : rates) {
      // Device reset before each run (§7.1).
      auto& est = tb.plc_network_of(pick.b).estimator(pick.b, pick.a);
      est.reset(sim.now());
      core::ProbeTraceSampler::Config scfg;
      scfg.packets_per_second = rate;
      scfg.packet_bytes = 1300;
      core::ProbeTraceSampler sampler(tb.plc_channel(), est, pick.a, pick.b,
                                      sim::Rng{tb.seed() ^ 0x16fULL}, scfg);
      const sim::Time start = sim.now();
      const auto trace = sampler.run(start, start + sim::seconds(8000),
                                     sim::seconds(10));
      std::printf("%6.0f pkt/s", rate);
      std::size_t ci = 0;
      double converge_at = 8000.0;
      const double final_ble = trace.back().ble_mbps;
      bool converged = false;
      for (const auto& s : trace) {
        const double elapsed = (s.t - start).seconds();
        if (ci < std::size(checkpoints_s) && elapsed >= checkpoints_s[ci]) {
          std::printf(" %8.1f", s.ble_mbps);
          ++ci;
        }
        if (!converged && s.ble_mbps >= 0.95 * final_ble) {
          converge_at = elapsed;
          converged = true;
        }
      }
      std::printf("   %8.0f s\n", converge_at);
      json.add("converge_s_" + std::to_string(pick.a) + "_" +
                   std::to_string(pick.b) + "_" + std::to_string(static_cast<int>(rate)),
               converge_at, "s");
    }
  }
  std::printf("\n(the convergence time falls with probe rate because per-"
              "carrier statistics need PB samples; the final value does not "
              "depend on the rate)\n");
  return 0;
}

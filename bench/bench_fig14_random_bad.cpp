// Fig. 14 + §6.3: random-scale variation of a *bad* link over two weeks —
// hour-of-day BLE profile plus a daily trace of BLE and throughput. Bad
// links swing tens of Mb/s with the building load and their variability
// (std) grows as quality falls.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 14", "bad link over 2 weeks: hour-of-day BLE and daily trace",
                "the bad link swings widely with the electrical load (paper: "
                "25-50 Mb/s over the day) and weekends sit above weekdays");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(sim::hours(0.1));

  // A weak-but-alive link stands in for the paper's link 2-11.
  int ba = -1, bb = -1;
  double worst = 1e9;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 7.0) continue;
    const double ble = bench::warmed_ble(tb, a, b);
    if (ble > 15.0 && ble < worst) {
      worst = ble;
      ba = a;
      bb = b;
    }
  }
  std::printf("bad link: %d->%d (BLE %.0f Mb/s)\n", ba, bb, worst);

  auto& est = tb.plc_network_of(bb).estimator(bb, ba);
  core::LinkTraceSampler::Config scfg;
  scfg.step = sim::seconds(5);
  scfg.pbs_per_step = 130000;
  core::LinkTraceSampler sampler(tb.plc_channel(), est, ba, bb,
                                 sim::Rng{tb.seed() ^ 0x14eULL}, scfg);
  core::BleCapacityEstimator capacity;

  sim::RunningStats weekday[24], weekend[24];
  std::vector<double> daily_mean;
  sim::RunningStats day_acc;
  const sim::Time start = sim.now();
  for (int s = 0; s < 14 * 24 * 3600; s += 5) {
    const sim::Time t = start + sim::seconds(s);
    const double ble = sampler.step(t);
    const int hour = static_cast<int>(grid::Calendar::hour_of_day(t));
    (grid::Calendar::is_weekend(t) ? weekend[hour] : weekday[hour]).add(ble);
    day_acc.add(ble);
    if (s % (24 * 3600) == 24 * 3600 - 5) {
      daily_mean.push_back(day_acc.mean());
      day_acc = {};
    }
  }

  bench::section("hour-of-day profile (weekdays vs weekends)");
  std::printf("%6s %14s %12s %14s\n", "hour", "weekday BLE", "wd std",
              "weekend BLE");
  for (int h = 0; h < 24; h += 2) {
    std::printf("%5d: %14.1f %12.2f %14.1f\n", h, weekday[h].mean(),
                weekday[h].stddev(), weekend[h].mean());
  }

  bench::section("daily means across the fortnight (BLE and predicted T)");
  std::printf("%6s %10s %14s\n", "day", "BLE Mb/s", "pred. T Mb/s");
  for (std::size_t d = 0; d < daily_mean.size(); ++d) {
    std::printf("%6zu %10.1f %14.1f\n", d, daily_mean[d],
                capacity.throughput_from_ble(daily_mean[d]));
  }

  sim::RunningStats wd_span, we_span;
  for (int h = 0; h < 24; ++h) {
    wd_span.add(weekday[h].mean());
    we_span.add(weekend[h].mean());
  }
  std::printf("\nweekday daily swing: %.1f Mb/s (paper: ~25 Mb/s on link 2-11); "
              "weekend swing: %.1f\n",
              wd_span.max() - wd_span.min(), we_span.max() - we_span.min());
  return 0;
}

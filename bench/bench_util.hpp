#pragma once

// Shared plumbing for the paper-reproduction benches: every bench builds the
// Fig. 2 testbed, runs one experiment, and prints the rows/series of the
// corresponding paper table or figure plus the reference shape to compare
// against. See DESIGN.md §4 for the experiment index.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/core/sampler.hpp"
#include "src/core/sof_capture.hpp"
#include "src/grid/simd.hpp"
#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/stats.hpp"
#include "src/testbed/experiment.hpp"

namespace efd::bench {

/// Multiplier for simulated experiment durations, from the EFD_BENCH_SCALE
/// environment variable (default 1.0). CI's bench smoke job sets a fraction
/// so a full figure bench finishes in seconds; the output keeps its shape,
/// only the statistical weight drops.
inline double duration_scale() {
  static const double scale = [] {
    const char* env = std::getenv("EFD_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

/// Machine-readable bench results: collects (name, value, unit) metrics and
/// writes `BENCH_<figure>.json` next to the human-readable table on
/// destruction, including the run's wall-clock and a full `metrics_snapshot`
/// block from efd::obs (every layer's counters/gauges/histograms, merged
/// across ParallelRunner workers). Downstream tooling diffs these files
/// across commits to track the perf/shape trajectory.
class JsonReporter {
 public:
  explicit JsonReporter(std::string figure)
      : figure_(std::move(figure)), start_(std::chrono::steady_clock::now()) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  void add(const std::string& name, double value, const std::string& unit) {
    metrics_.push_back({name, unit, value});
  }

  ~JsonReporter() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    // Event-engine throughput, the headline the perf CI gate tracks: total
    // dispatched events (merged across ParallelRunner workers) over the
    // bench's wall clock. Zero when efd::obs is runtime-disabled.
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    const auto events =
        static_cast<double>(snap.counter("sim.events_dispatched"));
    metrics_.push_back({"sim_events_dispatched", "events", events});
    metrics_.push_back(
        {"sim_events_per_sec", "events/s", wall_s > 0.0 ? events / wall_s : 0.0});
    // Which carrier-kernel dispatch entry produced this run (index into
    // grid::simd::available_kernels(): 0 = scalar). Comparing runs made with
    // different entries is still valid — shape metrics are ISA-independent —
    // but the comparator surfaces the mismatch instead of hiding it.
    metrics_.push_back({"carrier_math_impl", "index",
                        static_cast<double>(grid::simd::active_impl_index())});
    // Fault/backpressure machine metrics (DESIGN.md §15), present in every
    // BENCH_*.json so the comparator can surface chaos-profile drift
    // (warn-only: both depend on the bench's fault plan and scheduling).
    const auto fault_events =
        static_cast<double>(snap.counter("fault.injector.applied") +
                            snap.counter("fault.injector.cleared") +
                            snap.counter("fault.injector.recovery_events"));
    metrics_.push_back({"fault_events", "events", fault_events});
    metrics_.push_back(
        {"mailbox_peak_occupancy", "events",
         static_cast<double>(snap.gauge("sim.shard.mailbox_peak"))});
    const std::string path = "BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n", escaped(figure_).c_str());
    std::fprintf(f, "  \"wall_clock_s\": %.3f,\n", wall_s);
    std::fprintf(f, "  \"metrics\": [\n");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                   escaped(m.name).c_str(), m.value, escaped(m.unit).c_str(),
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"metrics_snapshot\": %s\n}\n",
                 obs::snapshot_json(/*indent=*/2).c_str());
    std::fclose(f);
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    double value;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string figure_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Metric> metrics_;
  /// Root profiler scope covering the reporter's lifetime — i.e. the whole
  /// bench, since every figure bench constructs its reporter first. Member
  /// destructors run after the destructor body, so this scope is still open
  /// while ~JsonReporter snapshots; the snapshot's open-frame accounting
  /// then makes the emitted profile root track the bench wall clock (the CI
  /// smoke job asserts within 5%).
  obs::ProfScope prof_{"bench"};
};

inline void header(const char* figure, const char* title, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// Drive a ChannelEstimator for a link with emulated saturated traffic
/// until it converges (the paper's devices are long-converged when
/// measured).
inline void warm_link(testbed::Testbed& tb, net::StationId src, net::StationId dst,
                      testbed::PlcGeneration g = testbed::PlcGeneration::kHpav,
                      double seconds = 3.0) {
  auto& est = tb.plc_network_of(dst, g).estimator(dst, src);
  core::LinkTraceSampler sampler(tb.plc_channel(g), est, src, dst,
                                 sim::Rng{tb.seed() ^ 0x3a3aULL});
  const sim::Time now = tb.simulator().now();
  (void)sampler.run(now, now + sim::seconds(seconds));
}

/// Average BLE of a link after warming it (cheap capacity classification
/// used by several benches to pick representative links).
inline double warmed_ble(testbed::Testbed& tb, net::StationId src, net::StationId dst,
                         testbed::PlcGeneration g = testbed::PlcGeneration::kHpav) {
  warm_link(tb, src, dst, g);
  return tb.plc_network_of(dst, g).estimator(dst, src).average_ble_mbps();
}

}  // namespace efd::bench

#pragma once

// Shared plumbing for the paper-reproduction benches: every bench builds the
// Fig. 2 testbed, runs one experiment, and prints the rows/series of the
// corresponding paper table or figure plus the reference shape to compare
// against. See DESIGN.md §4 for the experiment index.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/core/sampler.hpp"
#include "src/core/sof_capture.hpp"
#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/sim/stats.hpp"
#include "src/testbed/experiment.hpp"

namespace efd::bench {

inline void header(const char* figure, const char* title, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// Drive a ChannelEstimator for a link with emulated saturated traffic
/// until it converges (the paper's devices are long-converged when
/// measured).
inline void warm_link(testbed::Testbed& tb, net::StationId src, net::StationId dst,
                      testbed::PlcGeneration g = testbed::PlcGeneration::kHpav,
                      double seconds = 3.0) {
  auto& est = tb.plc_network_of(dst, g).estimator(dst, src);
  core::LinkTraceSampler sampler(tb.plc_channel(g), est, src, dst,
                                 sim::Rng{tb.seed() ^ 0x3a3aULL});
  const sim::Time now = tb.simulator().now();
  (void)sampler.run(now, now + sim::seconds(seconds));
}

/// Average BLE of a link after warming it (cheap capacity classification
/// used by several benches to pick representative links).
inline double warmed_ble(testbed::Testbed& tb, net::StationId src, net::StationId dst,
                         testbed::PlcGeneration g = testbed::PlcGeneration::kHpav) {
  warm_link(tb, src, dst, g);
  return tb.plc_network_of(dst, g).estimator(dst, src).average_ble_mbps();
}

}  // namespace efd::bench

// Fig. 10 + §6.2: cycle-scale variation of the average BLE for links of
// different qualities — 200 s traces at the 50 ms MM polling cadence during
// a quiet night (no random-scale events).
#include <algorithm>

#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 10", "cycle-scale BLE traces by link quality (night)",
                "bad links retune often with large BLE std; average links keep "
                "tone maps for seconds; good links stay flat for tens of "
                "seconds with <1% wiggles or small impulsive drops");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  // Pick two links of each quality class from the live floor.
  struct Pick {
    int a, b;
    double ble;
  };
  std::vector<Pick> bad, avg, good;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 5.0) continue;
    const double ble = bench::warmed_ble(tb, a, b);
    Pick p{a, b, ble};
    if (ble < 60.0 && bad.size() < 2) bad.push_back(p);
    if (ble >= 60.0 && ble <= 100.0 && avg.size() < 2) avg.push_back(p);
    // "Good" in the paper's sense: enough SNR headroom that noise cannot
    // touch the tone maps — these ride at/near the 150 Mb/s ceiling.
    if (ble > 145.0 && good.size() < 2) good.push_back(p);
  }

  const auto trace_link = [&](const Pick& p, const char* klass) {
    auto& est = tb.plc_network_of(p.b).estimator(p.b, p.a);
    core::LinkTraceSampler sampler(tb.plc_channel(), est, p.a, p.b,
                                   sim::Rng{tb.seed() ^ 0x10aULL});
    const sim::Time start = tb.simulator().now();
    const auto updates_before = est.update_count();
    const auto trace = sampler.run(start, start + sim::seconds(200));
    sim::RunningStats stats;
    for (const auto& s : trace) stats.add(s.ble_mbps);
    const auto updates = est.update_count() - updates_before;
    bench::section(std::string(klass) + " link " + std::to_string(p.a) + "-" +
                   std::to_string(p.b));
    std::printf("BLE mean %.1f, std %.2f, min %.1f, max %.1f Mb/s; "
                "tone-map updates in 200 s: %llu (alpha ~ %.0f ms)\n",
                stats.mean(), stats.stddev(), stats.min(), stats.max(),
                static_cast<unsigned long long>(updates),
                updates > 0 ? 200000.0 / static_cast<double>(updates) : 1e9);
    std::printf("trace every 10 s: ");
    for (std::size_t i = 0; i < trace.size(); i += 200) {
      std::printf("%.0f ", trace[i].ble_mbps);
    }
    std::printf("\n");
  };

  for (const auto& p : bad) trace_link(p, "bad");
  for (const auto& p : avg) trace_link(p, "average");
  for (const auto& p : good) trace_link(p, "good");

  bench::section("asymmetry in temporal variability (paper: links 15-18 / 18-15)");
  if (!avg.empty()) {
    const Pick fwd = avg.front();
    const Pick rev{fwd.b, fwd.a, 0.0};
    trace_link(fwd, "forward");
    trace_link(rev, "reverse");
  }
  return 0;
}

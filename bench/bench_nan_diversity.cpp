// NAN diversity figure: per-packet duplication vs capacity-proportional
// load balancing (and the single-medium baselines) on a smart-grid
// neighborhood-area network, clean and under a deterministic fault storm.
// Prices the redundancy (duplicate bytes, suppressed losers, wins per
// medium) against what it buys (delivered reports when a medium dies).
// Every shape metric is a pure function of the config: run with
// EFD_SHARDS=1|4 or EFD_SIMD=scalar and diff the JSON.
#include "bench_util.hpp"

#include <chrono>
#include <cstdio>

#include "src/fault/fault.hpp"
#include "src/sim/sharded.hpp"
#include "src/testbed/nan.hpp"

using namespace efd;

namespace {

std::uint64_t digest6(std::uint64_t h) { return h % 1'000'000; }

testbed::NanRunConfig base_config(int shards) {
  testbed::NanRunConfig cfg;
  cfg.nan.n_meters = 60;
  cfg.nan.meters_per_transformer = 10;
  cfg.nan.transformers_per_feeder = 3;
  cfg.nan.stations_per_transformer = 6;
  cfg.nan.seed = 7;
  cfg.n_shards = shards;
  cfg.duration = sim::milliseconds(200.0 * bench::duration_scale());
  cfg.report_interval = sim::milliseconds(2);
  cfg.p_remote = 0.25;
  return cfg;
}

/// Storm covering both media and a crossing, with onsets scaled so the
/// whole arc fits any EFD_BENCH_SCALE.
fault::FaultPlan storm_plan() {
  const double s = bench::duration_scale();
  fault::FaultPlan plan;
  plan.blackout(sim::milliseconds(30.0 * s), sim::milliseconds(60.0 * s), 1, 1.0)
      .wifi_jam(sim::milliseconds(50.0 * s), sim::milliseconds(70.0 * s), 3, 200.0)
      .board_brownout(sim::milliseconds(80.0 * s), sim::milliseconds(60.0 * s), 4, 0.6)
      .link_partition(sim::milliseconds(60.0 * s), sim::milliseconds(50.0 * s), 0);
  return plan;
}

}  // namespace

int main() {
  const int shards = sim::ShardedSimulator::env_shards(1);
  bench::JsonReporter json("nan_diversity");
  json.add("n_shards", shards, "shards");

  std::printf("NAN diversity workloads  (EFD_SHARDS=%d, duration scale %.2f)\n",
              shards, bench::duration_scale());
  std::printf("%-12s %-6s %9s %9s %8s %10s %10s %8s %8s  %s\n", "mode", "env",
              "offered", "delivered", "remote", "dup_bytes", "suppressed",
              "wins_plc", "wins_wifi", "digest");

  const testbed::DiversityMode modes[] = {
      testbed::DiversityMode::kPlcOnly, testbed::DiversityMode::kWifiOnly,
      testbed::DiversityMode::kLoadBalance, testbed::DiversityMode::kDiversity};
  for (const bool storm : {false, true}) {
    for (const testbed::DiversityMode mode : modes) {
      testbed::NanRunConfig cfg = base_config(shards);
      cfg.mode = mode;
      if (storm) cfg.faults = storm_plan();

      const auto t0 = std::chrono::steady_clock::now();
      const testbed::NanResult r = testbed::run_nan(cfg);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();

      const char* env = storm ? "storm" : "clean";
      std::printf("%-12s %-6s %9llu %9llu %8llu %10llu %10llu %8llu %8llu  %016llx  (%.2fs)\n",
                  to_string(mode), env,
                  static_cast<unsigned long long>(r.offered),
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.delivered_remote),
                  static_cast<unsigned long long>(r.dup_bytes),
                  static_cast<unsigned long long>(r.suppressed),
                  static_cast<unsigned long long>(r.wins_plc),
                  static_cast<unsigned long long>(r.wins_wifi),
                  static_cast<unsigned long long>(r.digest), wall_s);

      const std::string tag = std::string(to_string(mode)) + "_" + env;
      json.add("digest6_" + tag, static_cast<double>(digest6(r.digest)),
               "digest");
      json.add("delivered_" + tag, static_cast<double>(r.delivered), "packets");
      json.add("remote_" + tag, static_cast<double>(r.delivered_remote),
               "packets");
      json.add("dup_bytes_" + tag, static_cast<double>(r.dup_bytes), "bytes");
      json.add("suppressed_" + tag, static_cast<double>(r.suppressed),
               "packets");
      json.add("wins_plc_" + tag, static_cast<double>(r.wins_plc), "packets");
      json.add("wins_wifi_" + tag, static_cast<double>(r.wins_wifi), "packets");
    }
  }
  return 0;
}

// Fig. 22 + §8.1: unicast ETX from sniffed SoF timestamps — U-ETX vs BLE
// and vs PBerr across the testbed, with the closed-form prediction from the
// selective-retransmission model.
#include <algorithm>

#include "bench_util.hpp"

#include "src/core/etx.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 22", "U-ETX vs BLE and vs PBerr (150 kb/s unicast probes)",
                "U-ETX falls with BLE and rises almost linearly with PBerr; "
                "high-BLE links also have a small std of the transmission "
                "count (quality and variability are negatively correlated)");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  struct Row {
    int a, b;
    double ble, pberr, u_etx, tx_std, predicted;
  };
  std::vector<Row> rows;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 4.0) continue;
    bench::warm_link(tb, a, b);
    auto& medium = tb.plc_network_of(a).medium();
    core::SofCapture capture(medium);
    capture.filter(a, b);
    // 1500 B every 75 ms = the paper's 150 kb/s unicast probing.
    net::ProbeSource::Config pcfg;
    pcfg.src = a;
    pcfg.dst = b;
    pcfg.interval = sim::milliseconds(75);
    pcfg.packet_bytes = 1500;
    net::ProbeSource probes(sim, tb.plc_station(a).mac(), pcfg);
    // Average the MM PBerr over the run (a final snapshot right after an
    // error-triggered retune reads near zero).
    sim::RunningStats pberr_acc;
    sim::EventHandle poller;
    std::function<void()> poll = [&] {
      pberr_acc.add(tb.plc_network_of(b).mm_pberr(a, b));
      poller = sim.after(sim::milliseconds(500), poll);
    };
    poller = sim.after(sim::milliseconds(500), poll);
    probes.run(sim.now(), sim.now() + sim::seconds(40));
    sim.run_until(sim.now() + sim::seconds(41));
    poller.cancel();
    // Flush any retransmission backlog before the next link's run.
    tb.plc_station(a).mac().clear_queue();
    sim.run_until(sim.now() + sim::milliseconds(100));

    const auto result = core::UnicastEtxEstimator{}.analyze(capture.records());
    if (result.tx_counts.size() < 100) continue;
    Row r{a, b, 0, 0, 0, 0, 0};
    r.ble = tb.plc_network_of(b).mm_average_ble(a, b);
    r.pberr = pberr_acc.mean();
    r.u_etx = result.u_etx();
    r.tx_std = result.tx_count_stddev();
    r.predicted = core::predicted_u_etx(r.pberr, 3);
    rows.push_back(r);
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.ble < y.ble; });

  bench::section("U-ETX vs BLE (sorted by BLE; every 5th link)");
  std::printf("%-8s %8s %8s %8s %8s %10s\n", "link", "BLE", "PBerr", "U-ETX",
              "std", "predicted");
  for (std::size_t i = 0; i < rows.size(); i += 5) {
    const Row& r = rows[i];
    std::printf("%2d->%-5d %8.1f %8.3f %8.2f %8.2f %10.2f\n", r.a, r.b, r.ble,
                r.pberr, r.u_etx, r.tx_std, r.predicted);
  }

  bench::section("correlations");
  std::vector<double> ble, pberr, uetx, txstd;
  for (const Row& r : rows) {
    ble.push_back(r.ble);
    pberr.push_back(r.pberr);
    uetx.push_back(r.u_etx);
    txstd.push_back(r.tx_std);
  }
  std::printf("corr(U-ETX, BLE)   = %+.2f (paper: negative)\n",
              sim::pearson(uetx, ble));
  std::printf("corr(U-ETX, PBerr) = %+.2f (paper: ~linear positive)\n",
              sim::pearson(uetx, pberr));
  std::printf("corr(U-ETX, std)   = %+.2f (paper: higher U-ETX, higher std)\n",
              sim::pearson(uetx, txstd));
  const auto fit = sim::fit_line(pberr, uetx);
  std::printf("U-ETX = %.2f * PBerr + %.2f (R^2 %.2f)\n", fit.slope,
              fit.intercept, fit.r2);
  return 0;
}

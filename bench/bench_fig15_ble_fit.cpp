// Fig. 15 + §7.1: BLE as a capacity estimator — saturated throughput and
// average BLE for every link, and the linear fit the paper reports:
// BLE = 1.7 * T - 0.65.
#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 15", "average BLE vs saturated throughput, all links",
                "BLE is an exact linear predictor of application throughput: "
                "BLE = 1.7*T - 0.65 with normally distributed residuals");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  std::vector<double> throughput, ble;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 5.0) continue;
    bench::warm_link(tb, a, b);
    // Poll the MM alongside the saturated run, as the paper averages BLE
    // over the whole test.
    sim::RunningStats ble_acc;
    sim::EventHandle poller;
    std::function<void()> poll = [&] {
      ble_acc.add(tb.plc_network_of(b).mm_average_ble(a, b));
      poller = sim.after(sim::milliseconds(500), poll);
    };
    poller = sim.after(sim::milliseconds(500), poll);
    const auto r = testbed::measure_plc_throughput(tb, a, b, sim::seconds(12));
    poller.cancel();
    if (r.mean_mbps < 1.0) continue;
    throughput.push_back(r.mean_mbps);
    ble.push_back(ble_acc.mean());
  }

  const auto fit = sim::fit_line(throughput, ble);
  bench::section("fit");
  std::printf("links fitted: %zu\n", throughput.size());
  std::printf("BLE = %.2f * T %+.2f   (paper: BLE = 1.70 * T - 0.65)\n",
              fit.slope, fit.intercept);
  std::printf("R^2 = %.3f  (paper: residuals normally distributed)\n", fit.r2);

  bench::section("sample points (T, BLE)");
  std::printf("%10s %10s %12s\n", "T (Mb/s)", "BLE (Mb/s)", "1.7*T-0.65");
  for (std::size_t i = 0; i < throughput.size(); i += 9) {
    std::printf("%10.1f %10.1f %12.1f\n", throughput[i], ble[i],
                1.7 * throughput[i] - 0.65);
  }

  // Residual sanity: mean ~0, bounded spread.
  sim::RunningStats residuals;
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    residuals.add(ble[i] - (fit.slope * throughput[i] + fit.intercept));
  }
  std::printf("\nresiduals: mean %+.2f, std %.2f Mb/s\n", residuals.mean(),
              residuals.stddev());
  return 0;
}

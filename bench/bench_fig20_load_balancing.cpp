// Fig. 20 + §7.4: bandwidth aggregation with the capacity-proportional load
// balancer — per-medium and hybrid throughput on one pair, the round-robin
// baseline, and 600 MB file completion times (WiFi vs hybrid) across pairs.
#include "bench_util.hpp"

#include "src/hybrid/device.hpp"

using namespace efd;

namespace {

struct HybridRun {
  double throughput_mbps = 0.0;
  double jitter_ms = 0.0;
  std::uint64_t plc_share = 0, wifi_share = 0;
};

HybridRun run_hybrid(testbed::Testbed& tb, int src, int dst, double seconds,
                     bool round_robin, double plc_cap, double wifi_cap) {
  sim::Simulator& sim = tb.simulator();
  // The paper's round-robin baseline has Click's blocking pull semantics:
  // strict alternation with head-of-line stalls (RoundRobinSplitter);
  // the capacity-proportional balancer pushes probabilistically.
  std::unique_ptr<net::Interface> tx_if;
  hybrid::HybridDevice* tx_dev = nullptr;
  if (round_robin) {
    tx_if = std::make_unique<hybrid::RoundRobinSplitter>(
        sim,
        std::vector<net::Interface*>{&tb.plc_station(src).mac(),
                                     &tb.wifi_station(src)});
  } else {
    auto dev = std::make_unique<hybrid::HybridDevice>(
        sim,
        std::vector<net::Interface*>{&tb.plc_station(src).mac(),
                                     &tb.wifi_station(src)},
        std::make_unique<hybrid::CapacityScheduler>(sim::Rng{7}));
    dev->set_capacities({plc_cap, wifi_cap});
    tx_dev = dev.get();
    tx_if = std::move(dev);
  }
  hybrid::HybridDevice rx(sim, {&tb.plc_station(dst).mac(), &tb.wifi_station(dst)},
                          std::make_unique<hybrid::RoundRobinScheduler>(2));
  net::ThroughputMeter meter;
  net::JitterMeter jitter;
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    meter.on_packet(p, t);
    jitter.on_packet(p, t);
  });
  rx.start_receiving();

  net::UdpSource::Config cfg;
  cfg.src = src;
  cfg.dst = dst;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, *tx_if, cfg);
  const sim::Time start = sim.now();
  source.run(start, start + sim::seconds(seconds));
  sim.run_until(start + sim::seconds(seconds));
  meter.finish(sim.now());
  source.stop();
  // Drain before tearing down.
  sim.run_until(sim.now() + sim::milliseconds(500));

  HybridRun out;
  out.throughput_mbps = meter.average_mbps(sim::seconds(seconds));
  out.jitter_ms = jitter.mean_jitter_ms();
  if (tx_dev != nullptr) {
    out.plc_share = tx_dev->sent_per_interface(0);
    out.wifi_share = tx_dev->sent_per_interface(1);
  }
  return out;
}

/// Time to deliver `megabytes` over an interface pair (saturated source
/// until the sink has the bytes).
double completion_time_s(testbed::Testbed& tb, net::Interface& tx, net::Interface& rx,
                         int src, int dst, double megabytes) {
  sim::Simulator& sim = tb.simulator();
  const auto target = static_cast<std::uint64_t>(megabytes * 1e6);
  std::uint64_t received = 0;
  sim::Time done{};
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    if (received < target) {
      received += p.size_bytes;
      if (received >= target) done = t;
    }
  });
  net::UdpSource::Config cfg;
  cfg.src = src;
  cfg.dst = dst;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, tx, cfg);
  const sim::Time start = sim.now();
  source.run(start, start + sim::seconds(3000));
  while (received < target && sim.now() < start + sim::seconds(3000)) {
    sim.run_until(sim.now() + sim::seconds(5));
  }
  source.stop();
  sim.run_until(sim.now() + sim::milliseconds(500));
  if (received < target) return -1.0;
  return (done - start).seconds();
}

}  // namespace

int main() {
  bench::header("Fig. 20", "hybrid WiFi+PLC bandwidth aggregation",
                "hybrid ~ sum of the two mediums; round-robin bottlenecks at "
                "~2x the slower medium; hybrid cuts 600 MB download times "
                "drastically vs WiFi alone");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekday_afternoon());

  // A pair where both mediums work but differ (the paper's link 0-4).
  int src = -1, dst = -1;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 18.0) continue;
    const double wifi_snr = tb.wifi().channel().mean_snr_db(a, b);
    if (wifi_snr > 12.0 && wifi_snr < 25.0) {
      src = a;
      dst = b;
      break;
    }
  }
  std::printf("pair %d->%d\n", src, dst);
  bench::warm_link(tb, src, dst);

  const auto plc = testbed::measure_plc_throughput(tb, src, dst, sim::seconds(20));
  const auto wifi = testbed::measure_wifi_throughput(tb, src, dst, sim::seconds(20));
  const auto hyb = run_hybrid(tb, src, dst, 20.0, false, plc.mean_mbps,
                              wifi.mean_mbps);
  const auto rr = run_hybrid(tb, src, dst, 20.0, true, plc.mean_mbps,
                             wifi.mean_mbps);

  bench::section("throughput on one pair (paper: link 0-4)");
  std::printf("%-22s %10s %12s\n", "mode", "T (Mb/s)", "jitter (ms)");
  std::printf("%-22s %10.1f %12s\n", "PLC only", plc.mean_mbps, "-");
  std::printf("%-22s %10.1f %12s\n", "WiFi only", wifi.mean_mbps, "-");
  std::printf("%-22s %10.1f %12.2f\n", "Hybrid (capacity)", hyb.throughput_mbps,
              hyb.jitter_ms);
  std::printf("%-22s %10.1f %12.2f\n", "Round-robin", rr.throughput_mbps,
              rr.jitter_ms);
  std::printf("sum of mediums: %.1f;  2x min: %.1f Mb/s\n",
              plc.mean_mbps + wifi.mean_mbps,
              2.0 * std::min(plc.mean_mbps, wifi.mean_mbps));
  std::printf("hybrid packet split: PLC %llu / WiFi %llu\n",
              static_cast<unsigned long long>(hyb.plc_share),
              static_cast<unsigned long long>(hyb.wifi_share));

  bench::section("150 MB completion times, WiFi vs hybrid (paper: 600 MB)");
  std::printf("%-8s %12s %12s %10s\n", "link", "WiFi (s)", "Hybrid (s)", "gain");
  int printed = 0;
  for (const auto& [a, b] : tb.plc_links()) {
    if (printed >= 10) break;
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 12.0) continue;
    const double wifi_snr = tb.wifi().channel().mean_snr_db(a, b);
    if (wifi_snr < 8.0) continue;
    bench::warm_link(tb, a, b);
    const auto p = testbed::measure_plc_throughput(tb, a, b, sim::seconds(5));
    const auto w = testbed::measure_wifi_throughput(tb, a, b, sim::seconds(5));
    if (w.mean_mbps < 2.0) continue;
    const double wifi_time = completion_time_s(tb, tb.wifi_station(a),
                                               tb.wifi_station(b), a, b, 150.0);

    hybrid::HybridDevice tx(sim, {&tb.plc_station(a).mac(), &tb.wifi_station(a)},
                            std::make_unique<hybrid::CapacityScheduler>(sim::Rng{9}));
    hybrid::HybridDevice rx(sim, {&tb.plc_station(b).mac(), &tb.wifi_station(b)},
                            std::make_unique<hybrid::RoundRobinScheduler>(2));
    std::uint64_t received = 0;
    const auto target = static_cast<std::uint64_t>(150.0 * 1e6);
    sim::Time done{};
    rx.set_rx_handler([&](const net::Packet& p2, sim::Time t) {
      if (received < target) {
        received += p2.size_bytes;
        if (received >= target) done = t;
      }
    });
    rx.start_receiving();
    tx.set_capacities({p.mean_mbps, w.mean_mbps});
    net::UdpSource::Config scfg;
    scfg.src = a;
    scfg.dst = b;
    scfg.rate_bps = 400e6;
    net::UdpSource source(sim, tx, scfg);
    const sim::Time start = sim.now();
    source.run(start, start + sim::seconds(3000));
    while (received < target && sim.now() < start + sim::seconds(3000)) {
      sim.run_until(sim.now() + sim::seconds(5));
    }
    source.stop();
    sim.run_until(sim.now() + sim::milliseconds(500));
    const double hybrid_time = received >= target ? (done - start).seconds() : -1.0;

    std::printf("%2d-%-5d %12.0f %12.0f %9.1fx\n", a, b, wifi_time, hybrid_time,
                wifi_time > 0 && hybrid_time > 0 ? wifi_time / hybrid_time : 0.0);
    ++printed;
  }
  std::printf("(paper: drastic decrease in completion times with both mediums)\n");
  return 0;
}

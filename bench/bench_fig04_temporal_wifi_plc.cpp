// Fig. 4 + §4.2: concurrent temporal variation of WiFi and PLC capacity on
// a good link and an average link over working hours. Capacity is the MCS
// PHY rate for WiFi and BLE for PLC, averaged over 50 packets.
#include "bench_util.hpp"

using namespace efd;

namespace {

struct Series {
  sim::RunningStats stats;
  std::vector<double> samples;
};

void run_link(testbed::Testbed& tb, int a, int b, double hours,
              Series& plc_out, Series& wifi_out) {
  auto& est = tb.plc_network_of(b).estimator(b, a);
  core::LinkTraceSampler::Config scfg;
  scfg.step = sim::seconds(1);
  scfg.pbs_per_step = 26000;  // saturated traffic between 1 s samples
  core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b,
                                 sim::Rng{tb.seed() ^ 0x44ULL}, scfg);
  const sim::Time start = tb.simulator().now();
  for (double s = 0.0; s < hours * 3600.0; s += 1.0) {
    const sim::Time t = start + sim::seconds(s);
    const double ble = sampler.step(t);
    // WiFi capacity: MCS of the current channel state (frame control).
    const double mcs = tb.wifi().mcs_capacity_mbps(a, b, t);
    plc_out.stats.add(ble);
    plc_out.samples.push_back(ble);
    wifi_out.stats.add(mcs);
    wifi_out.samples.push_back(mcs);
  }
}

void print_series(const char* name, const Series& plc, const Series& wifi) {
  bench::section(name);
  std::printf("%-6s %12s %12s\n", "medium", "mean (Mb/s)", "std (Mb/s)");
  std::printf("%-6s %12.1f %12.1f\n", "PLC", plc.stats.mean(), plc.stats.stddev());
  std::printf("%-6s %12.1f %12.1f\n", "WiFi", wifi.stats.mean(), wifi.stats.stddev());
  std::printf("capacity every 10 min (Mb/s):\n  t(min)   PLC  WiFi\n");
  for (std::size_t i = 0; i < plc.samples.size(); i += 600) {
    std::printf("  %6zu %5.1f %5.1f\n", i / 60, plc.samples[i], wifi.samples[i]);
  }
}

}  // namespace

int main() {
  bench::header("Fig. 4",
                "temporal variation of capacity, WiFi vs PLC, working hours",
                "good link: WiFi varies strongly, PLC nearly flat (even at the "
                "18:00 office exodus); average link: both vary, WiFi more");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  // Start 16:30 on a weekday, as in the paper's link 3-8 run (4:30 pm).
  sim.run_until(sim::days(1) + sim::hours(16.5));

  // Pick links by measured quality, like the paper's "good" (3-8) and
  // "average" (4-0) examples: the best link of the floor, and one around
  // 80-110 Mb/s BLE whose WiFi side is also alive.
  int good_a = -1, good_b = -1, avg_a = -1, avg_b = -1;
  double best_ble = 0.0, best_avg_score = 1e9;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 8.0) continue;
    const double ble = bench::warmed_ble(tb, a, b);
    if (ble > best_ble && tb.floor_distance_m(a, b) < 15.0) {
      best_ble = ble;
      good_a = a;
      good_b = b;
    }
    const double score = std::abs(ble - 95.0);
    if (score < best_avg_score && tb.floor_distance_m(a, b) < 20.0) {
      best_avg_score = score;
      avg_a = a;
      avg_b = b;
    }
  }
  std::printf("good link: %d->%d (BLE %.0f); average link: %d->%d\n", good_a,
              good_b, best_ble, avg_a, avg_b);
  // Let both estimators settle before logging, as on the paper's testbed.
  bench::warm_link(tb, good_a, good_b, testbed::PlcGeneration::kHpav, 30.0);
  bench::warm_link(tb, avg_a, avg_b, testbed::PlcGeneration::kHpav, 30.0);

  Series plc_good, wifi_good, plc_avg, wifi_avg;
  run_link(tb, good_a, good_b, 2.0, plc_good, wifi_good);
  run_link(tb, avg_a, avg_b, 2.0, plc_avg, wifi_avg);

  print_series("good link (paper: link 3-8, 4:30 pm)", plc_good, wifi_good);
  print_series("average link (paper: link 4-0, 11:30 am)", plc_avg, wifi_avg);

  bench::section("variability ratio");
  std::printf("good link: std_W / std_P = %.1f (paper: WiFi clearly higher)\n",
              wifi_good.stats.stddev() / std::max(0.1, plc_good.stats.stddev()));
  std::printf("avg  link: std_W / std_P = %.1f\n",
              wifi_avg.stats.stddev() / std::max(0.1, plc_avg.stats.stddev()));
  return 0;
}

// Microbenchmarks (google-benchmark) for the simulation's hot kernels —
// the loops that dominate multi-day trace generation. Useful when touching
// the channel cache, the tone-map builder, or the event queue.
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/fault/injector.hpp"
#include "src/grid/appliance.hpp"
#include "src/grid/carrier_workspace.hpp"
#include "src/grid/simd.hpp"
#include "src/sim/rng.hpp"
#include "src/hybrid/device.hpp"
#include "src/obs/obs.hpp"
#include "src/plc/channel.hpp"
#include "src/plc/channel_estimator.hpp"
#include "src/plc/modulation.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace efd;

struct Rig {
  grid::PowerGrid grid;
  std::unique_ptr<plc::PlcChannel> channel;

  Rig() {
    const int a = grid.add_node("a");
    const int j = grid.add_node("j");
    const int b = grid.add_node("b");
    grid.add_cable(a, j, 12.0);
    grid.add_cable(j, b, 10.0);
    for (std::uint64_t s = 0; s < 6; ++s) {
      grid.add_appliance(grid::make_appliance(
          s % 2 == 0 ? grid::ApplianceType::kWorkstation
                     : grid::ApplianceType::kLightBank,
          s < 3 ? j : b, s));
    }
    channel = std::make_unique<plc::PlcChannel>(grid, plc::PhyParams::hpav());
    channel->attach_station(0, a);
    channel->attach_station(1, b);
  }
};

void BM_EventQueueSchedule(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (auto _ : state) {
    sim.at(sim::Time{t += 10}, [] {});
    if (t % 1024 == 0) sim.run_until(sim::Time{t});
  }
  sim.run();
}
BENCHMARK(BM_EventQueueSchedule);

// --- event engine vs the pre-slab baseline (DESIGN.md §9) ------------------
// `engine_baseline` replicates the engine this repo shipped before the
// slab/4-ary-heap rewrite — std::priority_queue sifting fat events, each
// carrying a type-erased std::function plus two shared_ptr<bool> control
// blocks (three heap allocations per event). The BM_EventEngine* pairs run
// the same workload on both so the schedule+dispatch speedup is measured
// in-binary, not across commits.

namespace engine_baseline {

class OldSimulator {
 public:
  void at(sim::Time t, std::function<void()> fn) {
    EFD_COUNTER_INC("sim.events_scheduled");
    queue_.push(Event{t, seq_++, std::move(fn),
                      std::make_shared<bool>(false),
                      std::make_shared<bool>(false)});
  }

  void run_until(sim::Time end) {
    EFD_GAUGE_SET("sim.queue_depth", queue_.size());
    while (!queue_.empty() && queue_.top().t <= end) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.t;
      if (*ev.cancelled) continue;
      *ev.fired = true;
      EFD_COUNTER_INC("sim.events_dispatched");
      ev.fn();
    }
    if (now_ < end) now_ = end;
  }

  void run() { run_until(sim::Time{std::numeric_limits<std::int64_t>::max()}); }

 private:
  struct Event {
    sim::Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    std::shared_ptr<bool> fired;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  sim::Time now_{};
  std::uint64_t seq_ = 0;
};

}  // namespace engine_baseline

void BM_EventEngineBaselineScheduleDispatch(benchmark::State& state) {
  engine_baseline::OldSimulator sim;
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim.at(sim::Time{t += 10}, [&sink] { ++sink; });
    if (t % 1024 == 0) sim.run_until(sim::Time{t});
  }
  sim.run();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventEngineBaselineScheduleDispatch);

void BM_EventEngineScheduleDispatch(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim.at_inline(sim::Time{t += 10}, [&sink] { ++sink; });
    if (t % 1024 == 0) sim.run_until(sim::Time{t});
  }
  sim.run();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventEngineScheduleDispatch);

void BM_EventEngineScheduleCancelDrain(benchmark::State& state) {
  // Tombstone path: every event is cancelled after scheduling, the dispatch
  // loop only reaps tombstones.
  sim::Simulator sim;
  std::int64_t t = 0;
  for (auto _ : state) {
    sim::EventHandle h = sim.at_inline(sim::Time{t += 10}, [] {});
    h.cancel();
    if (t % 1024 == 0) sim.run_until(sim::Time{t});
  }
  sim.run();
}
BENCHMARK(BM_EventEngineScheduleCancelDrain);

void BM_EventEngineTimerChurn(benchmark::State& state) {
  // MAC-retry shape: 64 self-rescheduling timers with staggered periods, the
  // steady-state pattern of PlcMedium/WifiMedium contention rounds.
  sim::Simulator sim;
  struct Timer {
    sim::Simulator* sim;
    sim::Time period;
    std::uint64_t fires = 0;
    void arm() {
      sim->after_inline(period, [this] {
        ++fires;
        arm();
      });
    }
  };
  std::vector<Timer> timers;
  timers.reserve(64);
  for (int i = 0; i < 64; ++i) {
    timers.push_back(Timer{&sim, sim::nanoseconds(900 + 7 * i)});
    timers.back().arm();
  }
  std::int64_t end = 0;
  for (auto _ : state) {
    sim.run_until(sim::Time{end += 1000});
  }
  std::uint64_t total = 0;
  for (const Timer& timer : timers) total += timer.fires;
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_EventEngineTimerChurn);

void BM_GridAttenuation(benchmark::State& state) {
  Rig rig;
  const auto t = sim::days(1) + sim::hours(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.grid.attenuation_db(0, 2, rig.channel->phy().band, t));
  }
}
BENCHMARK(BM_GridAttenuation);

void BM_GridAttenuationWorkspace(benchmark::State& state) {
  Rig rig;
  grid::CarrierWorkspace ws;
  const auto t = sim::days(1) + sim::hours(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.grid.attenuation_db(0, 2, rig.channel->phy().band, t, ws));
  }
}
BENCHMARK(BM_GridAttenuationWorkspace);

void BM_GridNoisePsd(benchmark::State& state) {
  Rig rig;
  const auto t = sim::days(1) + sim::hours(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.grid.noise_psd_db(2, rig.channel->phy().band, t, 2, 6));
  }
}
BENCHMARK(BM_GridNoisePsd);

void BM_GridNoisePsdWorkspace(benchmark::State& state) {
  Rig rig;
  grid::CarrierWorkspace ws;
  const auto t = sim::days(1) + sim::hours(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.grid.noise_psd_db(2, rig.channel->phy().band, t, 2, 6, ws));
  }
}
BENCHMARK(BM_GridNoisePsdWorkspace);

void BM_ChannelSnrCached(benchmark::State& state) {
  Rig rig;
  const auto t = sim::days(1) + sim::hours(12);
  (void)rig.channel->static_snr_db(0, 1, 0, t);  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.channel->static_snr_db(0, 1, 0, t));
  }
}
BENCHMARK(BM_ChannelSnrCached);

void BM_ToneMapFromSnr(benchmark::State& state) {
  Rig rig;
  const auto snr =
      rig.channel->snr_db(0, 1, 0, sim::days(1) + sim::hours(12));
  const plc::PhyParams phy = plc::PhyParams::hpav();
  std::uint32_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plc::ToneMap::from_snr(snr, 1.5, phy, 0.01, ++id));
  }
}
BENCHMARK(BM_ToneMapFromSnr);

void BM_PbErrorCold(benchmark::State& state) {
  // The un-memoized kernel: mean LUT-backed uncoded BER over 917 loaded
  // carriers pushed through the FEC waterfall.
  Rig rig;
  const auto t = sim::days(1) + sim::hours(12);
  const auto snr = rig.channel->snr_db(0, 1, 0, t);
  const auto tm = plc::ToneMap::from_snr(snr, 1.5, rig.channel->phy(), 0.01, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.pb_error_probability(snr, rig.channel->phy()));
  }
}
BENCHMARK(BM_PbErrorCold);

void BM_UncodedBer(benchmark::State& state) {
  double snr = -40.0;
  for (auto _ : state) {
    snr += 0.37;
    if (snr > 40.0) snr = -40.0;
    benchmark::DoNotOptimize(
        plc::uncoded_ber(plc::Modulation::kQam64, snr));
  }
}
BENCHMARK(BM_UncodedBer);

void BM_UncodedBerExact(benchmark::State& state) {
  double snr = -40.0;
  for (auto _ : state) {
    snr += 0.37;
    if (snr > 40.0) snr = -40.0;
    benchmark::DoNotOptimize(
        plc::uncoded_ber_exact(plc::Modulation::kQam64, snr));
  }
}
BENCHMARK(BM_UncodedBerExact);

void BM_PbErrorMemoized(benchmark::State& state) {
  Rig rig;
  const auto t = sim::days(1) + sim::hours(12);
  const auto snr = rig.channel->snr_db(0, 1, 0, t);
  const auto tm = plc::ToneMap::from_snr(snr, 1.5, rig.channel->phy(), 0.01, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.channel->pb_error_probability(tm, 0, 1, 0, t));
  }
}
BENCHMARK(BM_PbErrorMemoized);

void BM_BuildSlotMap(benchmark::State& state) {
  // One slot's full bit-loading pass (perturbed-SNR copy + margin ladder),
  // the kernel behind every estimator retune.
  Rig rig;
  plc::ChannelEstimator est(*rig.channel, 0, 1, sim::Rng{3}, {});
  const sim::Time now = sim::days(1) + sim::hours(12);
  est.on_sound_frame(now);
  std::uint32_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.build_slot_map(2, now, 1.5, ++id));
  }
}
BENCHMARK(BM_BuildSlotMap);

// --- efd::obs overhead (DESIGN.md §8) -------------------------------------
// The instrumentation's three cost tiers: enabled (relaxed RMW on a
// thread-local shard), runtime-disabled (one relaxed load + branch — what
// every instrumented kernel above pays when EFD_OBS=0), and the histogram
// path. Compile-time removal (EFD_OBS_ENABLED=0) has no bench: there is
// nothing left to time.

void BM_ObsCounterInc(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  for (auto _ : state) {
    EFD_COUNTER_INC("bench.obs.counter");
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsCounterIncDisabled(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  for (auto _ : state) {
    EFD_COUNTER_INC("bench.obs.counter");
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsCounterIncDisabled);

void BM_ObsHistogramObserve(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  std::uint64_t v = 0;
  for (auto _ : state) {
    EFD_HISTO_OBSERVE("bench.obs.histogram", ++v & 0xfff);
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSnapshot(benchmark::State& state) {
  EFD_COUNTER_INC("bench.obs.counter");  // ensure something is registered
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::MetricsRegistry::instance().snapshot());
  }
}
BENCHMARK(BM_ObsSnapshot);

// Profiler scope tiers (DESIGN.md §13). Named prof/... — outside the
// kernel/ prefix — so the CI speedup gate ignores them. The enabled scope
// does real work inside so the measured delta is the instrumentation cost
// on a realistic (non-empty) region, matching the <2% budget the CI
// compile-out leg checks at whole-bench granularity. Guarded so the
// compile-out build references no profiler symbol at all (its nm check
// relies on profile.o never being pulled from the archive).
#if EFD_OBS_ENABLED
void BM_ProfScopeEnabled(benchmark::State& state) {
  const bool was_enabled = obs::prof_enabled();
  obs::set_prof_enabled(true);
  std::uint64_t v = 1;
  for (auto _ : state) {
    EFD_PROF_SCOPE("bench.prof.scope");
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    benchmark::DoNotOptimize(v);
  }
  obs::set_prof_enabled(was_enabled);
}
BENCHMARK(BM_ProfScopeEnabled)->Name("prof/scope_enabled");

void BM_ProfScopeDisabled(benchmark::State& state) {
  const bool was_enabled = obs::prof_enabled();
  obs::set_prof_enabled(false);
  std::uint64_t v = 1;
  for (auto _ : state) {
    EFD_PROF_SCOPE("bench.prof.scope");
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    benchmark::DoNotOptimize(v);
  }
  obs::set_prof_enabled(was_enabled);
}
BENCHMARK(BM_ProfScopeDisabled)->Name("prof/scope_disabled");

void BM_ProfSnapshot(benchmark::State& state) {
  {
    EFD_PROF_SCOPE("bench.prof.scope");  // ensure the tree is non-empty
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::ProfileRegistry::instance().snapshot());
  }
}
BENCHMARK(BM_ProfSnapshot)->Name("prof/snapshot");
#endif  // EFD_OBS_ENABLED

// --- fault layer overhead (DESIGN.md §10) ---------------------------------
// The robustness machinery must be free when unused: with no FaultPlan
// installed an injector schedules nothing, and a HybridDevice without
// enable_failover() pays exactly one untaken branch per enqueue. The pair
// below measures the data path with the fault layer absent vs armed (all
// members healthy), so any creep in the disabled-path cost shows up as the
// two converging away from zero rather than staying within noise.

struct SinkInterface final : net::Interface {
  bool enqueue(const net::Packet&) override {
    ++accepted;
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return 0; }
  void set_rx_handler(RxHandler) override {}
  void clear_queue() override {}
  std::uint64_t accepted = 0;
};

void BM_HybridEnqueueFaultLayerOff(benchmark::State& state) {
  sim::Simulator sim;
  SinkInterface a, b;
  hybrid::HybridDevice dev(sim, {&a, &b},
                           std::make_unique<hybrid::RoundRobinScheduler>(2));
  net::Packet p;
  p.size_bytes = 1316;
  for (auto _ : state) {
    ++p.seq;
    benchmark::DoNotOptimize(dev.enqueue(p));
  }
  benchmark::DoNotOptimize(a.accepted + b.accepted);
}
BENCHMARK(BM_HybridEnqueueFaultLayerOff);

void BM_HybridEnqueueFailoverArmed(benchmark::State& state) {
  sim::Simulator sim;
  SinkInterface a, b;
  hybrid::HybridDevice dev(sim, {&a, &b},
                           std::make_unique<hybrid::RoundRobinScheduler>(2));
  hybrid::HybridDevice::FailoverConfig fc;
  fc.health.probe_interval = sim::hours(1);  // no probe fires mid-bench
  dev.enable_failover(fc);
  net::Packet p;
  p.size_bytes = 1316;
  for (auto _ : state) {
    ++p.seq;
    benchmark::DoNotOptimize(dev.enqueue(p));
  }
  benchmark::DoNotOptimize(a.accepted + b.accepted);
}
BENCHMARK(BM_HybridEnqueueFailoverArmed);

void BM_FaultInjectorIdleChurn(benchmark::State& state) {
  // The 64-timer churn workload with an armed-but-empty injector alongside:
  // hooks installed, no plan, so the dispatch rate must match
  // BM_EventEngineTimerChurn (an idle fault layer executes nothing).
  sim::Simulator sim;
  fault::FaultInjector inj(sim);
  inj.set_hooks(fault::FaultKind::kPlcBlackout,
                {[](const fault::FaultSpec&, sim::Time) {},
                 [](const fault::FaultSpec&, sim::Time) {}});
  inj.install(fault::FaultPlan{});
  struct Timer {
    sim::Simulator* sim;
    sim::Time period;
    std::uint64_t fires = 0;
    void arm() {
      sim->after_inline(period, [this] {
        ++fires;
        arm();
      });
    }
  };
  std::vector<Timer> timers;
  timers.reserve(64);
  for (int i = 0; i < 64; ++i) {
    timers.push_back(Timer{&sim, sim::nanoseconds(900 + 7 * i)});
    timers.back().arm();
  }
  std::int64_t end = 0;
  for (auto _ : state) {
    sim.run_until(sim::Time{end += 1000});
  }
  std::uint64_t total = 0;
  for (const Timer& timer : timers) total += timer.fires;
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_FaultInjectorIdleChurn);

void BM_EstimatorFrameUpdate(benchmark::State& state) {
  Rig rig;
  plc::ChannelEstimator est(*rig.channel, 0, 1, sim::Rng{3}, {});
  sim::Time now = sim::days(1) + sim::hours(12);
  est.on_sound_frame(now);
  for (auto _ : state) {
    now += sim::milliseconds(3);
    est.on_frame_received(rig.channel->slot_at(now), 50, 0, 40, now);
  }
}
BENCHMARK(BM_EstimatorFrameUpdate);

// --- per-kernel dispatch-table benchmarks ----------------------------------
// One benchmark per (kernel, implementation, carrier count), registered
// dynamically because the implementation list depends on the host CPU. Names
// follow "kernel/<kernel>/<impl>/<n>"; tools/bench_compare.py --gbench turns
// the scalar-vs-vector time ratio per (kernel, n) into a host-independent
// speedup gate.
const bool kKernelBenchesRegistered = [] {
  static sim::Rng rng{0xbe9c4ULL};
  for (const grid::simd::CarrierKernels* kp : grid::simd::available_kernels()) {
    const grid::simd::CarrierKernels& k = *kp;
    for (const std::size_t n : {std::size_t{917}, std::size_t{2232}}) {
      const auto name = [&](const char* kernel) {
        return std::string("kernel/") + kernel + "/" + k.name + "/" +
               std::to_string(n);
      };
      auto db = std::make_shared<std::vector<double>>(n);
      auto lin = std::make_shared<std::vector<double>>(n);
      auto out = std::make_shared<std::vector<double>>(n);
      for (std::size_t i = 0; i < n; ++i) {
        (*db)[i] = rng.uniform(-60.0, 50.0);
        (*lin)[i] = std::pow(10.0, (*db)[i] / 10.0);
      }
      benchmark::RegisterBenchmark(
          name("db_to_linear").c_str(), [&k, db, out, n](benchmark::State& state) {
            for (auto _ : state) {
              k.db_to_linear_n(db->data(), out->data(), n);
              benchmark::DoNotOptimize(out->data());
            }
          });
      benchmark::RegisterBenchmark(
          name("linear_to_db").c_str(), [&k, lin, out, n](benchmark::State& state) {
            for (auto _ : state) {
              k.linear_to_db_n(lin->data(), out->data(), n);
              benchmark::DoNotOptimize(out->data());
            }
          });
      benchmark::RegisterBenchmark(
          name("attenuation").c_str(), [&k, db, lin, out, n](benchmark::State& state) {
            // The attenuation assembly pair: affine base + one notch pass.
            for (auto _ : state) {
              k.affine_n(12.5, 0.036, db->data(), out->data(), n);
              k.accumulate_notch_n(0.4, 6.5, lin->data(), out->data(), n);
              benchmark::DoNotOptimize(out->data());
            }
          });
      benchmark::RegisterBenchmark(
          name("noise_sum").c_str(), [&k, lin, out, n](benchmark::State& state) {
            // Noise accumulation + dB conversion (the noise_psd_into pair).
            for (auto _ : state) {
              k.accumulate_scaled_n(0.21, lin->data(), out->data(), n);
              k.linear_to_db_n(lin->data(), out->data(), n);
              benchmark::DoNotOptimize(out->data());
            }
          });
      benchmark::RegisterBenchmark(
          name("snr_assemble").c_str(), [&k, db, lin, out, n](benchmark::State& state) {
            for (auto _ : state) {
              k.assemble_snr_n(-50.0, db->data(), lin->data(), out->data(), n);
              benchmark::DoNotOptimize(out->data());
            }
          });
      benchmark::RegisterBenchmark(
          name("robo_sum").c_str(), [&k, db, n](benchmark::State& state) {
            for (auto _ : state) {
              benchmark::DoNotOptimize(k.sum_db_to_linear_n(db->data(), n));
            }
          });
      auto rows = std::make_shared<std::vector<std::int32_t>>(n);
      auto bits = std::make_shared<std::vector<double>>(n);
      const grid::simd::InterpTableView lut = plc::ber_lut_view();
      for (std::size_t i = 0; i < n; ++i) {
        const int m = rng.uniform_int(0, plc::kModulationCount - 1);
        (*rows)[i] = m * lut.size;
        (*bits)[i] =
            static_cast<double>(plc::kBitsPerSymbol[static_cast<std::size_t>(m)]);
      }
      benchmark::RegisterBenchmark(
          name("ber_reduce").c_str(),
          [&k, rows, bits, db, lut, n](benchmark::State& state) {
            double wb = 0.0, tb = 0.0;
            for (auto _ : state) {
              k.ber_weighted_sum_n(lut, rows->data(), bits->data(), db->data(),
                                   7.0, n, &wb, &tb);
              benchmark::DoNotOptimize(wb);
              benchmark::DoNotOptimize(tb);
            }
          });
    }
  }
  return true;
}();

}  // namespace

BENCHMARK_MAIN();

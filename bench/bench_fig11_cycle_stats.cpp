// Fig. 11 + §6.2: cycle-scale statistics across the whole testbed — the
// average tone-map update inter-arrival time (alpha) and the BLE standard
// deviation as functions of link quality (average BLE).
#include <algorithm>

#include "bench_util.hpp"

using namespace efd;

int main() {
  bench::header("Fig. 11", "alpha and std(BLE) vs link quality, all links (night)",
                "good links update tone maps orders of magnitude less often "
                "(alpha up to ~10 s vs ~100 ms) and show smaller BLE std (0-6 "
                "Mb/s range, falling with quality)");

  sim::Simulator sim;
  testbed::Testbed::Config cfg;
  cfg.with_hpav500 = false;
  testbed::Testbed tb(sim, cfg);
  sim.run_until(testbed::weekend_night());

  struct Row {
    int a, b;
    double ble;
    double alpha_ms;
    double std_ble;
  };
  std::vector<Row> rows;
  for (const auto& [a, b] : tb.plc_links()) {
    if (tb.plc_channel().mean_snr_db(a, b, 0, sim.now()) < 5.0) continue;
    bench::warm_link(tb, a, b);
    auto& est = tb.plc_network_of(b).estimator(b, a);
    core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b,
                                   sim::Rng{tb.seed() ^ 0x11bULL});
    const sim::Time start = tb.simulator().now();
    const auto updates_before = est.update_count();
    const auto trace = sampler.run(start, start + sim::seconds(120));
    sim::RunningStats stats;
    for (const auto& s : trace) stats.add(s.ble_mbps);
    const auto updates = est.update_count() - updates_before;
    rows.push_back({a, b, stats.mean(),
                    updates > 0 ? 120000.0 / static_cast<double>(updates) : 120000.0,
                    stats.stddev()});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.ble < y.ble; });

  bench::section("per-link statistics (sorted by average BLE)");
  std::printf("%-8s %10s %12s %12s\n", "link", "BLE Mb/s", "alpha (ms)",
              "std (Mb/s)");
  for (std::size_t i = 0; i < rows.size(); i += 6) {  // print every 6th
    const Row& r = rows[i];
    std::printf("%2d->%-5d %10.1f %12.0f %12.2f\n", r.a, r.b, r.ble, r.alpha_ms,
                r.std_ble);
  }

  bench::section("correlations");
  std::vector<double> ble, alpha, stddev;
  for (const Row& r : rows) {
    ble.push_back(r.ble);
    alpha.push_back(std::log10(r.alpha_ms));
    stddev.push_back(r.std_ble);
  }
  std::printf("corr(BLE, log alpha) = %+.2f  (paper: positive — good links "
              "update less)\n",
              sim::pearson(ble, alpha));
  std::printf("corr(BLE, std BLE)   = %+.2f  (paper: negative — good links "
              "vary less)\n",
              sim::pearson(ble, stddev));

  sim::RunningStats std_good, std_bad;
  for (const Row& r : rows) {
    (r.ble > 100.0 ? std_good : std_bad).add(r.std_ble);
  }
  std::printf("mean std(BLE): links >100 Mb/s: %.2f; links <=100: %.2f "
              "(paper: 0-6 Mb/s range)\n",
              std_good.mean(), std_bad.mean());
  return 0;
}

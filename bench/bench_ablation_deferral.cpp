// Ablation (§2.2): the IEEE 1901 deferral counter vs plain 802.11-style
// backoff. 1901 stations escalate their contention window after merely
// *sensing* the medium busy, spreading stations without paying collisions;
// 802.11 only escalates after a collision.
#include "bench_util.hpp"

#include "src/plc/network.hpp"

using namespace efd;

namespace {

struct Result {
  double aggregate_mbps = 0.0;
  double collision_rate = 0.0;
  double jitter_ms = 0.0;
};

Result run(int n_flows, bool disable_deferral) {
  sim::Simulator sim;
  grid::PowerGrid grid;
  const int strip = grid.add_node("strip");
  plc::PlcChannel channel(grid, plc::PhyParams::hpav());
  plc::PlcNetwork::Config cfg;
  cfg.mac.disable_deferral = disable_deferral;
  plc::PlcNetwork network(sim, channel, sim::Rng{17}, cfg);
  for (int i = 0; i < 2 * n_flows; ++i) {
    const int outlet = grid.add_node("o" + std::to_string(i));
    grid.add_cable(strip, outlet, 2.0 + i);
    channel.attach_station(i, outlet);
    network.add_station(i, outlet);
  }

  std::vector<std::unique_ptr<net::UdpSource>> sources;
  std::vector<std::unique_ptr<net::ThroughputMeter>> meters;
  net::JitterMeter jitter;
  for (int i = 0; i < n_flows; ++i) {
    meters.push_back(std::make_unique<net::ThroughputMeter>());
    net::ThroughputMeter* meter = meters.back().get();
    const bool first = i == 0;
    network.station(i + n_flows)
        .mac()
        .set_rx_handler([meter, first, &jitter](const net::Packet& p, sim::Time t) {
          meter->on_packet(p, t);
          if (first) jitter.on_packet(p, t);
        });
    net::UdpSource::Config scfg;
    scfg.src = i;
    scfg.dst = i + n_flows;
    scfg.rate_bps = 400e6;
    scfg.flow_id = i;
    sources.push_back(
        std::make_unique<net::UdpSource>(sim, network.station(i).mac(), scfg));
    sources.back()->run(sim::Time{}, sim::seconds(10));
  }
  sim.run_until(sim::seconds(10));

  Result r;
  for (auto& m : meters) r.aggregate_mbps += m->average_mbps(sim::seconds(10));
  r.collision_rate = static_cast<double>(network.medium().collisions()) /
                     static_cast<double>(network.medium().frames_sent());
  r.jitter_ms = jitter.mean_jitter_ms();
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation: 1901 deferral counter", "vs plain 802.11 backoff",
                "the deferral counter trades a little short-term fairness for "
                "fewer collisions under load (the paper's [19]/[21] analyses)");

  std::printf("%-8s | %28s | %28s\n", "", "IEEE 1901 (deferral)", "802.11-style");
  std::printf("%-8s | %9s %9s %8s | %9s %9s %8s\n", "flows", "Mb/s", "coll/frm",
              "jit ms", "Mb/s", "coll/frm", "jit ms");
  for (int flows : {1, 2, 4, 8}) {
    const Result d = run(flows, false);
    const Result n = run(flows, true);
    std::printf("%-8d | %9.1f %9.3f %8.2f | %9.1f %9.3f %8.2f\n", flows,
                d.aggregate_mbps, d.collision_rate, d.jitter_ms, n.aggregate_mbps,
                n.collision_rate, n.jitter_ms);
  }
  std::printf("\n(collision rate grows faster without the deferral counter as "
              "the number of saturated stations rises)\n");
  return 0;
}

#include "src/sim/rng.hpp"

#include <gtest/gtest.h>

#include "src/sim/stats.hpp"

namespace efd::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{7}, b{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{7}, b{8};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng base{7};
  Rng f1 = base.fork(1);
  Rng f2 = Rng{7}.fork(1);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(f1.uniform(), f2.uniform());
}

TEST(Rng, ForksAreIndependentStreams) {
  Rng base{7};
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.uniform() == f2.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDoesNotDisturbParent) {
  Rng a{9}, b{9};
  (void)a.fork(3);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformAbRange) {
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{1};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 7);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng{2};
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng{3};
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential_mean(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.2);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{4};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{5};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, LognormalLinearMean) {
  Rng rng{6};
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.lognormal(5.0, 0.3));
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
}

/// Pearson chi-squared statistic of the joint distribution of interleaved
/// draws from two streams, bucketed into an 8x8 contingency table against
/// the uniform-independence expectation.
double chi_squared_interleaved(Rng a, Rng b, int n_pairs) {
  constexpr int kBins = 8;
  int counts[kBins][kBins] = {};
  for (int i = 0; i < n_pairs; ++i) {
    const int ba = std::min(kBins - 1, static_cast<int>(a.uniform() * kBins));
    const int bb = std::min(kBins - 1, static_cast<int>(b.uniform() * kBins));
    ++counts[ba][bb];
  }
  const double expect = static_cast<double>(n_pairs) / (kBins * kBins);
  double chi2 = 0.0;
  for (const auto& row : counts) {
    for (int c : row) {
      const double d = c - expect;
      chi2 += d * d / expect;
    }
  }
  return chi2;
}

TEST(Rng, SiblingStreamsAreIndependent) {
  // Adjacent fork() streams of one parent must behave as independent
  // uniform sources: chi-squared over the 8x8 joint histogram has 63
  // degrees of freedom, whose 99.9th percentile is ~103.4. The seeds are
  // fixed, so the bound is deterministic; a systematic stream correlation
  // (e.g. a weak fork mix) blows far past it.
  for (std::uint64_t parent : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const Rng base{parent};
    for (std::uint64_t k : {0ULL, 1ULL, 7ULL}) {
      const double chi2 =
          chi_squared_interleaved(base.fork(k), base.fork(k + 1), 20000);
      EXPECT_LT(chi2, 103.4) << "parent " << parent << " streams " << k
                             << "," << k + 1;
    }
  }
}

TEST(Rng, SiblingStreamsAreSeriallyUncorrelated) {
  // Lag-0 Pearson correlation between the i-th draws of adjacent streams.
  const Rng base{11};
  Rng a = base.fork(3);
  Rng b = base.fork(4);
  const int n = 20000;
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double r = cov / std::sqrt(var_a * var_b);
  // |r| for independent streams is O(1/sqrt(n)) ~ 0.007; allow 4x.
  EXPECT_LT(std::abs(r), 0.03);
}

}  // namespace
}  // namespace efd::sim

#include <gtest/gtest.h>

#include <vector>

#include "src/net/meters.hpp"
#include "src/net/sources.hpp"

namespace efd::net {
namespace {

/// Interface stub that records enqueued packets and can simulate drops.
class SinkInterface final : public Interface {
 public:
  bool enqueue(const Packet& p) override {
    if (fail_every_ > 0 &&
        static_cast<int>(packets.size() + drops_) % fail_every_ == fail_every_ - 1) {
      ++drops_;
      return false;
    }
    packets.push_back(p);
    if (rx_) rx_(p, p.created);
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return 0; }
  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }

  void fail_every(int n) { fail_every_ = n; }

  std::vector<Packet> packets;

 private:
  int fail_every_ = 0;
  std::uint64_t drops_ = 0;
  RxHandler rx_;
};

TEST(UdpSource, EmitsAtConfiguredRate) {
  sim::Simulator sim;
  SinkInterface sink;
  UdpSource::Config cfg;
  cfg.rate_bps = 8e6;        // 1 MB/s
  cfg.packet_bytes = 1000;   // => 1000 packets/s
  UdpSource source(sim, sink, cfg);
  source.run(sim::Time{}, sim::seconds(2));
  sim.run_until(sim::seconds(3));
  EXPECT_NEAR(static_cast<double>(sink.packets.size()), 2000.0, 2.0);
}

TEST(UdpSource, SequencesAndMetadata) {
  sim::Simulator sim;
  SinkInterface sink;
  UdpSource::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.packet_bytes = 1000;
  cfg.src = 3;
  cfg.dst = 7;
  cfg.flow_id = 42;
  UdpSource source(sim, sink, cfg);
  source.run(sim::Time{}, sim::milliseconds(100));
  sim.run_until(sim::seconds(1));
  ASSERT_GT(sink.packets.size(), 10u);
  for (std::size_t i = 0; i < sink.packets.size(); ++i) {
    const Packet& p = sink.packets[i];
    EXPECT_EQ(p.seq, i);
    EXPECT_EQ(p.src, 3);
    EXPECT_EQ(p.dst, 7);
    EXPECT_EQ(p.flow_id, 42);
    EXPECT_EQ(p.size_bytes, 1000u);
  }
}

TEST(UdpSource, CountsDrops) {
  sim::Simulator sim;
  SinkInterface sink;
  sink.fail_every(3);
  UdpSource::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.packet_bytes = 1000;
  UdpSource source(sim, sink, cfg);
  source.run(sim::Time{}, sim::milliseconds(300));
  sim.run_until(sim::seconds(1));
  EXPECT_GT(source.dropped_packets(), 50u);
  EXPECT_EQ(source.offered_packets(),
            sink.packets.size() + source.dropped_packets());
}

TEST(UdpSource, StopHaltsEmission) {
  sim::Simulator sim;
  SinkInterface sink;
  UdpSource::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.packet_bytes = 1000;
  UdpSource source(sim, sink, cfg);
  source.run(sim::Time{}, sim::seconds(10));
  sim.run_until(sim::milliseconds(100));
  source.stop();
  const auto count = sink.packets.size();
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(sink.packets.size(), count);
}

TEST(ProbeSource, SingleProbesAtInterval) {
  sim::Simulator sim;
  SinkInterface sink;
  ProbeSource::Config cfg;
  cfg.interval = sim::milliseconds(100);
  cfg.packet_bytes = 1300;
  ProbeSource probes(sim, sink, cfg);
  probes.run(sim::Time{}, sim::seconds(1));
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(probes.sent(), 10u);
}

TEST(ProbeSource, BurstsKeepRateButClump) {
  sim::Simulator sim;
  SinkInterface sink;
  ProbeSource::Config cfg;
  cfg.interval = sim::milliseconds(500);
  cfg.burst_count = 5;
  ProbeSource probes(sim, sink, cfg);
  probes.run(sim::Time{}, sim::seconds(2));
  sim.run_until(sim::seconds(3));
  EXPECT_EQ(probes.sent(), 20u);  // 4 bursts of 5
  // All packets of one burst share the same creation instant.
  EXPECT_EQ(sink.packets[0].created, sink.packets[4].created);
  EXPECT_NE(sink.packets[4].created, sink.packets[5].created);
}

TEST(ProbeSource, ResumeContinuesSequence) {
  sim::Simulator sim;
  SinkInterface sink;
  ProbeSource::Config cfg;
  cfg.interval = sim::milliseconds(100);
  ProbeSource probes(sim, sink, cfg);
  probes.run(sim::Time{}, sim::milliseconds(350));
  sim.run_until(sim::seconds(1));
  const auto first_batch = probes.sent();
  probes.resume(sim::seconds(2), sim::seconds(2) + sim::milliseconds(250));
  sim.run_until(sim::seconds(3));
  EXPECT_GT(probes.sent(), first_batch);
  // Sequence numbers keep counting across the pause.
  EXPECT_EQ(sink.packets.back().seq, probes.sent() - 1);
}

TEST(ThroughputMeter, WindowsAndTotals) {
  ThroughputMeter meter{sim::milliseconds(100)};
  Packet p;
  p.size_bytes = 1250;  // 1250 B per packet
  // 10 packets in each of 3 windows => 1 Mb/s per window.
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 10; ++i) {
      meter.on_packet(p, sim::milliseconds(w * 100 + i * 10 + 1));
    }
  }
  meter.finish(sim::milliseconds(300));
  ASSERT_EQ(meter.samples_mbps().size(), 3u);
  for (double mbps : meter.samples_mbps()) EXPECT_NEAR(mbps, 1.0, 1e-9);
  EXPECT_EQ(meter.total_bytes(), 37500u);
  EXPECT_EQ(meter.total_packets(), 30u);
  EXPECT_NEAR(meter.average_mbps(sim::milliseconds(300)), 1.0, 1e-9);
}

TEST(ThroughputMeter, EmptyWindowsAreZero) {
  ThroughputMeter meter{sim::milliseconds(100)};
  Packet p;
  p.size_bytes = 1000;
  meter.on_packet(p, sim::milliseconds(10));
  meter.on_packet(p, sim::milliseconds(310));  // two silent windows between
  meter.finish(sim::milliseconds(400));
  ASSERT_EQ(meter.samples_mbps().size(), 4u);
  EXPECT_GT(meter.samples_mbps()[0], 0.0);
  EXPECT_DOUBLE_EQ(meter.samples_mbps()[1], 0.0);
  EXPECT_DOUBLE_EQ(meter.samples_mbps()[2], 0.0);
}

TEST(JitterMeter, ConstantTransitIsZeroJitter) {
  JitterMeter meter;
  Packet p;
  for (int i = 0; i < 100; ++i) {
    p.created = sim::milliseconds(i * 10);
    meter.on_packet(p, sim::milliseconds(i * 10 + 5));  // constant 5 ms transit
  }
  EXPECT_NEAR(meter.jitter_ms(), 0.0, 1e-9);
}

TEST(JitterMeter, VariableTransitGrowsJitter) {
  JitterMeter meter;
  Packet p;
  for (int i = 0; i < 100; ++i) {
    p.created = sim::milliseconds(i * 10);
    const double transit = i % 2 == 0 ? 2.0 : 8.0;  // 6 ms swing
    meter.on_packet(p, p.created + sim::milliseconds(transit));
  }
  EXPECT_GT(meter.jitter_ms(), 1.0);
  EXPECT_LT(meter.jitter_ms(), 6.0);
  EXPECT_GT(meter.mean_jitter_ms(), 0.5);
}

TEST(LossMeter, CountsGapsBySequence) {
  LossMeter meter;
  Packet p;
  for (std::uint32_t s : {0u, 1u, 2u, 5u, 6u}) {  // 3 and 4 lost
    p.seq = s;
    meter.on_packet(p, sim::Time{});
  }
  EXPECT_EQ(meter.received(), 5u);
  EXPECT_EQ(meter.lost(), 2u);
  EXPECT_NEAR(meter.loss_rate(), 2.0 / 7.0, 1e-12);
}

TEST(LossMeter, NoTrafficNoLoss) {
  LossMeter meter;
  EXPECT_EQ(meter.lost(), 0u);
  EXPECT_DOUBLE_EQ(meter.loss_rate(), 0.0);
}

TEST(LossMeter, OutOfOrderIsNotLoss) {
  LossMeter meter;
  Packet p;
  for (std::uint32_t s : {1u, 0u, 3u, 2u}) {
    p.seq = s;
    meter.on_packet(p, sim::Time{});
  }
  EXPECT_EQ(meter.lost(), 0u);
}

TEST(OrderMeter, CountsReordering) {
  OrderMeter meter;
  Packet p;
  for (std::uint32_t s : {0u, 1u, 3u, 2u, 4u}) {
    p.seq = s;
    meter.on_packet(p, sim::Time{});
  }
  EXPECT_EQ(meter.received(), 5u);
  EXPECT_EQ(meter.out_of_order(), 1u);
}

}  // namespace
}  // namespace efd::net

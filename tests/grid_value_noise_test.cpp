#include "src/grid/value_noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace efd::grid {
namespace {

TEST(ValueNoise, Hash01Range) {
  for (int i = -500; i < 500; ++i) {
    const double h = ValueNoise::hash01(42, i);
    EXPECT_GE(h, 0.0);
    EXPECT_LT(h, 1.0);
  }
}

TEST(ValueNoise, Hash01Deterministic) {
  EXPECT_DOUBLE_EQ(ValueNoise::hash01(7, 100), ValueNoise::hash01(7, 100));
  EXPECT_NE(ValueNoise::hash01(7, 100), ValueNoise::hash01(8, 100));
  EXPECT_NE(ValueNoise::hash01(7, 100), ValueNoise::hash01(7, 101));
}

TEST(ValueNoise, SampleRange) {
  for (double x = -10.0; x < 10.0; x += 0.037) {
    const double v = ValueNoise::sample(3, x);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ValueNoise, SampleInterpolatesLatticeValues) {
  const double at5 = ValueNoise::sample(9, 5.0);
  EXPECT_DOUBLE_EQ(at5, 2.0 * ValueNoise::hash01(9, 5) - 1.0);
}

TEST(ValueNoise, SampleIsContinuous) {
  // Adjacent samples differ by at most the lattice swing times the step.
  double prev = ValueNoise::sample(11, 0.0);
  for (double x = 0.001; x < 5.0; x += 0.001) {
    const double cur = ValueNoise::sample(11, x);
    EXPECT_LT(std::abs(cur - prev), 0.02);
    prev = cur;
  }
}

TEST(ValueNoise, FractalRangeAndDeterminism) {
  for (double x = 0.0; x < 20.0; x += 0.13) {
    const double v = ValueNoise::fractal(21, x, 3);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
    EXPECT_DOUBLE_EQ(v, ValueNoise::fractal(21, x, 3));
  }
}

TEST(ValueNoise, FractalOctavesAddDetail) {
  // More octaves => more sign changes over a fixed span.
  int flips1 = 0, flips4 = 0;
  double p1 = 0, p4 = 0;
  for (double x = 0.0; x < 50.0; x += 0.05) {
    const double v1 = ValueNoise::fractal(5, x, 1);
    const double v4 = ValueNoise::fractal(5, x, 4);
    if (v1 * p1 < 0) ++flips1;
    if (v4 * p4 < 0) ++flips4;
    p1 = v1;
    p4 = v4;
  }
  EXPECT_GT(flips4, flips1);
}

TEST(ValueNoise, ZeroMeanOverLongSpan) {
  double sum = 0.0;
  int n = 0;
  for (double x = 0.0; x < 2000.0; x += 0.5) {
    sum += ValueNoise::sample(33, x);
    ++n;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

}  // namespace
}  // namespace efd::grid

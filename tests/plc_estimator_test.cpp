#include "src/plc/channel_estimator.hpp"

#include <gtest/gtest.h>

#include "src/grid/appliance.hpp"

namespace efd::plc {
namespace {

/// Two stations over a quiet 10 m link: a good, stable channel.
struct EstimatorFixture : ::testing::Test {
  grid::PowerGrid grid;
  PlcChannel channel{grid, PhyParams::hpav()};
  ChannelEstimator::Config cfg;

  void SetUp() override {
    const int a = grid.add_node("a");
    const int b = grid.add_node("b");
    // 22 dB of lumped loss puts the link around 41 dB SNR: enough headroom
    // to ride out background impulses at the 150 Mb/s ceiling, while the
    // initial high-uncertainty margin still costs real rate.
    grid.add_cable(a, b, 10.0, 22.0);
    channel.attach_station(0, a);
    channel.attach_station(1, b);
  }

  ChannelEstimator make(std::uint64_t seed = 1) {
    return ChannelEstimator(channel, 0, 1, sim::Rng{seed}, cfg);
  }

  static sim::Time t0() { return sim::days(1) + sim::hours(12); }

  /// Feed saturated-style frames for `seconds` of simulated time.
  static void feed(ChannelEstimator& est, const PlcChannel& ch, double seconds,
                   sim::Time start, int pbs_per_frame = 60, int symbols = 40) {
    sim::Rng rng{7};
    for (double s = 0.0; s < seconds; s += 0.01) {
      const sim::Time now = start + sim::seconds(s);
      const int slot = ch.slot_at(now);
      const ToneMap& tm = est.has_tone_maps()
                              ? est.tone_maps().slots[static_cast<std::size_t>(slot)]
                              : est.tone_maps().robo;
      const double p = ch.pb_error_probability(tm, 0, 1, slot, now);
      int errors = 0;
      for (int i = 0; i < pbs_per_frame; ++i) errors += rng.bernoulli(p) ? 1 : 0;
      est.on_frame_received(slot, pbs_per_frame, errors, symbols, now);
    }
  }
};

TEST_F(EstimatorFixture, StartsWithoutToneMaps) {
  auto est = make();
  EXPECT_FALSE(est.has_tone_maps());
  // Without maps, reported BLE falls back to the ROBO default.
  EXPECT_LT(est.average_ble_mbps(), 10.0);
}

TEST_F(EstimatorFixture, SoundFrameBootstraps) {
  auto est = make();
  est.on_sound_frame(t0());
  EXPECT_TRUE(est.has_tone_maps());
  EXPECT_EQ(static_cast<int>(est.tone_maps().slots.size()),
            channel.phy().tone_map_slots);
  EXPECT_GT(est.average_ble_mbps(), 10.0);
}

TEST_F(EstimatorFixture, ConvergesUpwardWithTraffic) {
  auto est = make();
  est.on_sound_frame(t0());
  const double initial = est.average_ble_mbps();
  feed(est, channel, 10.0, t0());
  const double converged = est.average_ble_mbps();
  EXPECT_GT(converged, initial + 10.0);
  // The quiet 10 m link should sustain near the 150 Mb/s ceiling.
  EXPECT_GT(converged, 130.0);
}

TEST_F(EstimatorFixture, UncertaintyShrinksWithSamples) {
  auto est = make();
  est.on_sound_frame(t0());
  const auto few = est.pb_samples();
  feed(est, channel, 2.0, t0());
  EXPECT_GT(est.pb_samples(), few + 1000);
}

TEST_F(EstimatorFixture, ResetDropsEverything) {
  auto est = make();
  est.on_sound_frame(t0());
  feed(est, channel, 3.0, t0());
  ASSERT_TRUE(est.has_tone_maps());
  est.reset(t0() + sim::seconds(3));
  EXPECT_FALSE(est.has_tone_maps());
  EXPECT_EQ(est.pb_samples(), 0u);
  EXPECT_DOUBLE_EQ(est.measured_pberr(), 0.0);
}

TEST_F(EstimatorFixture, StatisticsPersistAcrossPause) {
  // Fig. 17: pausing the probing does not reset the estimation — BLE
  // resumes from its pre-pause value.
  auto est = make();
  est.on_sound_frame(t0());
  feed(est, channel, 10.0, t0());
  const double before = est.average_ble_mbps();
  // 7 minutes of silence, then one more batch.
  const sim::Time resume = t0() + sim::seconds(10) + sim::minutes(7);
  feed(est, channel, 0.2, resume);
  EXPECT_NEAR(est.average_ble_mbps(), before, before * 0.1);
}

TEST_F(EstimatorFixture, ExpiryTriggersRetune) {
  auto est = make();
  est.on_sound_frame(t0());
  feed(est, channel, 5.0, t0());
  const auto updates = est.update_count();
  // A single frame far beyond the 30 s expiry forces a refresh.
  est.on_frame_received(0, 10, 0, 5, t0() + sim::seconds(5) + sim::seconds(40));
  EXPECT_GT(est.update_count(), updates);
}

TEST_F(EstimatorFixture, ErrorBurstTriggersRetuneAndBleDrop) {
  auto est = make();
  est.on_sound_frame(t0());
  feed(est, channel, 10.0, t0());
  const double before = est.average_ble_mbps();
  const auto updates = est.update_count();
  // A burst of heavily errored frames (e.g. capture-effect collisions).
  sim::Time now = t0() + sim::seconds(10);
  for (int i = 0; i < 10; ++i) {
    now += sim::seconds(1);
    est.on_frame_received(0, 10, 6, 5, now);
  }
  EXPECT_GT(est.update_count(), updates);
  EXPECT_LT(est.average_ble_mbps(), before);
}

TEST_F(EstimatorFixture, PanicMarginDecaysAfterCleanTraffic) {
  auto est = make();
  est.on_sound_frame(t0());
  feed(est, channel, 10.0, t0());
  sim::Time now = t0() + sim::seconds(10);
  for (int i = 0; i < 10; ++i) {
    now += sim::seconds(1);
    est.on_frame_received(0, 10, 6, 5, now);
  }
  const double dropped = est.average_ble_mbps();
  // Clean traffic afterwards: BLE recovers within a few retunes (Fig. 10's
  // impulsive drops with convergence back).
  feed(est, channel, 80.0, now + sim::seconds(1));
  EXPECT_GT(est.average_ble_mbps(), dropped);
}

TEST_F(EstimatorFixture, SinglePbProbesClampAtR1sym) {
  // Fig. 18: 1 probe/s with <= 1 PB converges to ~89.4 Mb/s even though the
  // channel supports ~150.
  auto est = make();
  est.on_sound_frame(t0());
  sim::Time now = t0();
  sim::Rng rng{3};
  for (int i = 0; i < 600; ++i) {
    now += sim::seconds(1);
    const int slot = channel.slot_at(now);
    est.on_frame_received(slot, 1, 0, 1, now);
  }
  EXPECT_NEAR(est.average_ble_mbps(),
              channel.phy().single_pb_symbol_rate_mbps(), 4.0);
}

TEST_F(EstimatorFixture, MultiPbProbesDoNotClamp) {
  // 1300 B probes (3 PBs) escape the clamp.
  auto est = make();
  est.on_sound_frame(t0());
  sim::Time now = t0();
  for (int i = 0; i < 600; ++i) {
    now += sim::seconds(1);
    const int slot = channel.slot_at(now);
    est.on_frame_received(slot, 3, 0, 2, now);
  }
  EXPECT_GT(est.average_ble_mbps(), 120.0);
}

TEST_F(EstimatorFixture, BleSlotAccessorMatchesSet) {
  auto est = make();
  est.on_sound_frame(t0());
  double sum = 0.0;
  for (int s = 0; s < channel.phy().tone_map_slots; ++s) sum += est.ble_mbps(s);
  EXPECT_NEAR(est.average_ble_mbps(), sum / channel.phy().tone_map_slots, 1e-9);
}

class ProbeRateSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProbeRateSweep, HigherRateConvergesFaster) {
  // Core Fig. 16 property: more probes per second, faster convergence.
  grid::PowerGrid grid;
  const int a = grid.add_node("a");
  const int b = grid.add_node("b");
  grid.add_cable(a, b, 10.0);
  PlcChannel channel{grid, PhyParams::hpav()};
  channel.attach_station(0, a);
  channel.attach_station(1, b);

  const int rate = GetParam();
  ChannelEstimator est(channel, 0, 1, sim::Rng{5}, {});
  const sim::Time t0 = sim::days(1) + sim::hours(12);
  est.on_sound_frame(t0);
  // 60 simulated seconds of probing at `rate` packets (3 PBs each) per s.
  sim::Time now = t0;
  for (int s = 0; s < 60; ++s) {
    for (int k = 0; k < rate; ++k) {
      now += sim::seconds(1.0 / rate);
      est.on_frame_received(channel.slot_at(now), 3, 0, 2, now);
    }
  }
  // Samples scale with rate; the uncertainty-driven margin shrinks with it.
  EXPECT_GE(est.pb_samples(), static_cast<std::uint64_t>(rate) * 60 * 3);
}

INSTANTIATE_TEST_SUITE_P(Rates, ProbeRateSweep, ::testing::Values(1, 10, 50));

}  // namespace
}  // namespace efd::plc

#include "src/plc/tone_map.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace efd::plc {
namespace {

std::vector<double> flat_snr(int carriers, double snr) {
  return std::vector<double>(static_cast<std::size_t>(carriers), snr);
}

TEST(ToneMap, Eq1BleFromUniform1024Qam) {
  const PhyParams phy = PhyParams::hpav();
  const auto snr = flat_snr(phy.band.n_carriers, 40.0);
  const ToneMap tm = ToneMap::from_snr(snr, 0.0, phy, 0.0, 1);
  // B = 917 * 10 bits, R = 16/21, Tsym = 46.52 us => ~150.2 Mb/s. This is
  // the paper's "highest PLC data-rate is 150 Mbps" (§4.1).
  EXPECT_NEAR(tm.ble_mbps(), 917 * 10 * (16.0 / 21.0) / 46.52, 0.2);
  EXPECT_NEAR(tm.ble_mbps(), 150.2, 0.5);
}

TEST(ToneMap, Eq1PberrDiscountsBle) {
  const PhyParams phy = PhyParams::hpav();
  const auto snr = flat_snr(phy.band.n_carriers, 40.0);
  const ToneMap clean = ToneMap::from_snr(snr, 0.0, phy, 0.0, 1);
  const ToneMap lossy = ToneMap::from_snr(snr, 0.0, phy, 0.1, 2);
  EXPECT_NEAR(lossy.ble_mbps(), clean.ble_mbps() * 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(lossy.phy_rate_mbps(), clean.phy_rate_mbps());
}

TEST(ToneMap, SinglePbSymbolRateMatchesPaper) {
  // §7.2: R1sym = 520 * 8 / Tsym ≈ 89.4 Mb/s.
  EXPECT_NEAR(PhyParams::hpav().single_pb_symbol_rate_mbps(), 89.4, 0.1);
}

TEST(ToneMap, MarginLowersOrKeepsBle) {
  const PhyParams phy = PhyParams::hpav();
  std::vector<double> snr(static_cast<std::size_t>(phy.band.n_carriers));
  for (std::size_t i = 0; i < snr.size(); ++i) {
    snr[i] = 5.0 + 30.0 * static_cast<double>(i) / snr.size();
  }
  double prev = 1e9;
  for (double margin = 0.0; margin <= 12.0; margin += 1.0) {
    const ToneMap tm = ToneMap::from_snr(snr, margin, phy, 0.0, 1);
    EXPECT_LE(tm.ble_mbps(), prev + 1e-9);
    prev = tm.ble_mbps();
  }
}

TEST(ToneMap, PerCarrierAdaptationBeatsFlatRate) {
  // The PLC advantage of §4.1: with a frequency-selective channel, loading
  // each carrier independently preserves rate on the good carriers.
  const PhyParams phy = PhyParams::hpav();
  std::vector<double> snr(static_cast<std::size_t>(phy.band.n_carriers), 35.0);
  for (std::size_t i = 0; i < snr.size(); i += 4) snr[i] = 2.0;  // deep notches
  const ToneMap tm = ToneMap::from_snr(snr, 0.0, phy, 0.0, 1);
  // Carriers in notches fall back to BPSK while others stay at 1024-QAM.
  EXPECT_GT(tm.ble_mbps(), 100.0);
  EXPECT_LT(tm.ble_mbps(), 150.0);
}

TEST(ToneMap, RoboIsSlowAndRobust) {
  const PhyParams phy = PhyParams::hpav();
  const ToneMap robo = ToneMap::robo(phy);
  EXPECT_TRUE(robo.is_robo());
  EXPECT_LT(robo.ble_mbps(), 10.0);
  EXPECT_GT(robo.ble_mbps(), 2.0);
  // Decodable at SNR levels where even BPSK data would struggle.
  const auto poor = flat_snr(phy.band.n_carriers, 1.0);
  EXPECT_LT(robo.pb_error_probability(poor, phy), 0.05);
}

TEST(ToneMap, PbErrorZeroWithBigMarginOneWithNone) {
  const PhyParams phy = PhyParams::hpav();
  const auto snr = flat_snr(phy.band.n_carriers, 25.0);
  const ToneMap tm = ToneMap::from_snr(snr, 3.0, phy, 0.0, 1);
  EXPECT_LT(tm.pb_error_probability(snr, phy), 0.01);
  // Channel collapses by 12 dB: the map is now hopeless.
  const auto collapsed = flat_snr(phy.band.n_carriers, 13.0);
  EXPECT_GT(tm.pb_error_probability(collapsed, phy), 0.5);
}

TEST(ToneMap, PbErrorMonotoneInChannelQuality) {
  const PhyParams phy = PhyParams::hpav();
  const auto design = flat_snr(phy.band.n_carriers, 25.0);
  const ToneMap tm = ToneMap::from_snr(design, 2.0, phy, 0.0, 1);
  double prev = 1.0;
  for (double snr = 10.0; snr <= 30.0; snr += 1.0) {
    const double p = tm.pb_error_probability(flat_snr(phy.band.n_carriers, snr), phy);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ToneMap, AllCarriersOffIsUndecodable) {
  const PhyParams phy = PhyParams::hpav();
  const auto dead = flat_snr(phy.band.n_carriers, -30.0);
  const ToneMap tm = ToneMap::from_snr(dead, 0.0, phy, 0.0, 1);
  EXPECT_DOUBLE_EQ(tm.ble_mbps(), 0.0);
  EXPECT_DOUBLE_EQ(tm.pb_error_probability(dead, phy), 1.0);
}

TEST(ToneMapSet, AverageBleOverSlots) {
  const PhyParams phy = PhyParams::hpav();
  ToneMapSet set;
  set.robo = ToneMap::robo(phy);
  for (int s = 0; s < 6; ++s) {
    const auto snr = flat_snr(phy.band.n_carriers, 20.0 + s);
    set.slots.push_back(ToneMap::from_snr(snr, 0.0, phy, 0.0, s + 1));
  }
  double sum = 0;
  for (const auto& tm : set.slots) sum += tm.ble_mbps();
  EXPECT_NEAR(set.average_ble_mbps(), sum / 6.0, 1e-9);
}

TEST(ToneMapSet, EmptySlotsFallBackToRobo) {
  const PhyParams phy = PhyParams::hpav();
  ToneMapSet set;
  set.robo = ToneMap::robo(phy);
  EXPECT_DOUBLE_EQ(set.average_ble_mbps(), set.robo.ble_mbps());
}

TEST(ToneMap, Hpav500BandIsWider) {
  const PhyParams av500 = PhyParams::hpav500();
  const auto snr = flat_snr(av500.band.n_carriers, 40.0);
  const ToneMap tm = ToneMap::from_snr(snr, 0.0, av500, 0.0, 1);
  // 2232 carriers: the AV500 ceiling is far above AV's 150 Mb/s.
  EXPECT_GT(tm.ble_mbps(), 300.0);
}

class WaterfallSweep : public ::testing::TestWithParam<double> {};

TEST_P(WaterfallSweep, PbErrorIsAProbability) {
  const PhyParams phy = PhyParams::hpav();
  const auto design = flat_snr(phy.band.n_carriers, GetParam());
  const ToneMap tm = ToneMap::from_snr(design, 1.0, phy, 0.0, 1);
  for (double offset = -10.0; offset <= 10.0; offset += 2.5) {
    const double p = tm.pb_error_probability(
        flat_snr(phy.band.n_carriers, GetParam() + offset), phy);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(DesignPoints, WaterfallSweep,
                         ::testing::Values(5.0, 12.0, 18.0, 25.0, 32.0, 40.0));

}  // namespace
}  // namespace efd::plc

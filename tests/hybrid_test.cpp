#include "src/hybrid/device.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/hybrid/link_metrics.hpp"
#include "src/net/meters.hpp"

namespace efd::hybrid {
namespace {

/// Interface stub delivering packets after a fixed latency, with a fixed
/// service rate — a stand-in "medium" for scheduler/reorder tests.
class PipeInterface final : public net::Interface {
 public:
  PipeInterface(sim::Simulator& sim, sim::Time latency) : sim_(sim), latency_(latency) {}

  bool enqueue(const net::Packet& p) override {
    ++enqueued_;
    sim_.after(latency_, [this, p] {
      if (rx_) rx_(p, sim_.now());
    });
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return 0; }
  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }

  std::uint64_t enqueued_ = 0;

 private:
  sim::Simulator& sim_;
  sim::Time latency_;
  RxHandler rx_;
};

TEST(CapacityScheduler, SplitsProportionally) {
  CapacityScheduler sched{sim::Rng{4}};
  sched.set_capacities({30.0, 90.0});
  int counts[2] = {0, 0};
  net::Packet p;
  for (int i = 0; i < 20000; ++i) ++counts[sched.pick(p)];
  EXPECT_NEAR(counts[1] / static_cast<double>(counts[0] + counts[1]), 0.75, 0.02);
}

TEST(CapacityScheduler, ZeroCapacityInterfaceGetsNothing) {
  CapacityScheduler sched{sim::Rng{4}};
  sched.set_capacities({0.0, 50.0});
  net::Packet p;
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sched.pick(p), 1);
}

TEST(CapacityScheduler, NoCapacitiesDefaultsToFirst) {
  CapacityScheduler sched{sim::Rng{4}};
  net::Packet p;
  EXPECT_EQ(sched.pick(p), 0);
}

TEST(CapacityScheduler, AllZeroCapacitiesFallBackToRoundRobin) {
  // Cold start / every-member-tripped: proportional weights are undefined,
  // so the scheduler must keep cycling all interfaces instead of pinning
  // everything on interface 0.
  CapacityScheduler sched{sim::Rng{4}};
  sched.set_capacities({0.0, 0.0, 0.0});
  net::Packet p;
  EXPECT_EQ(sched.pick(p), 0);
  EXPECT_EQ(sched.pick(p), 1);
  EXPECT_EQ(sched.pick(p), 2);
  EXPECT_EQ(sched.pick(p), 0);
  // Restoring real capacities leaves the proportional path intact.
  sched.set_capacities({0.0, 50.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sched.pick(p), 1);
}

TEST(RoundRobinScheduler, AlternatesExactly) {
  RoundRobinScheduler sched{3};
  net::Packet p;
  EXPECT_EQ(sched.pick(p), 0);
  EXPECT_EQ(sched.pick(p), 1);
  EXPECT_EQ(sched.pick(p), 2);
  EXPECT_EQ(sched.pick(p), 0);
}

TEST(ReorderBuffer, ReleasesInSequenceAfterWarmup) {
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); });
  net::Packet p;
  for (std::uint32_t seq : {0u, 2u, 1u, 3u}) {
    p.seq = seq;
    rb.on_packet(p, sim.now());
  }
  EXPECT_TRUE(out.empty());  // warm-up holds the flow start briefly
  sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(rb.buffered(), 0u);
}

TEST(ReorderBuffer, WarmupAbsorbsOutOfOrderFlowStart) {
  // The flow's first sequence rides the slower medium and arrives second;
  // warm-up prevents it from being treated as a late straggler.
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 1;  // fast-medium packet first
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(5));
  p.seq = 0;  // true first packet arrives late via the slow medium
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(20));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
}

TEST(ReorderBuffer, TimeoutSkipsGap) {
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  p.seq = 2;  // 1 is lost
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(12));  // warm-up done: 0 out, gap at 1
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  sim.run_until(sim::milliseconds(30));  // gap timed out: 2 released
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(rb.timeouts(), 1u);
}

TEST(ReorderBuffer, LateStragglerAfterGapTimeoutIsDropped) {
  // Permanent-loss semantics: once a gap is abandoned, a late copy of the
  // missing packet must NOT be delivered out of order — it is dropped and
  // the flow continues strictly in sequence.
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(5);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  p.seq = 2;
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(15));  // warm-up + gap timeout: 0, 2 out
  ASSERT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
  p.seq = 1;  // straggler arrives after its gap was skipped
  rb.on_packet(p, sim.now());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(rb.stragglers_dropped(), 1u);
  EXPECT_EQ(rb.duplicates_dropped(), 0u);  // late != stale: distinct counters
  p.seq = 3;  // the live flow is unaffected
  rb.on_packet(p, sim.now());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(ReorderBuffer, DuplicateOfDeliveredPacketIsDropped) {
  // Failover salvage can re-send a packet that actually made it through on
  // the dying interface; the duplicate must not reach the app layer.
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(5);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(10));  // warm-up done, 0 delivered
  p.seq = 1;
  rb.on_packet(p, sim.now());
  ASSERT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
  p.seq = 0;  // duplicate of an already-delivered packet
  rb.on_packet(p, sim.now());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
  // A stale copy of a *delivered* sequence is a duplicate, not a late
  // straggler — the two drop reasons have separate counters.
  EXPECT_EQ(rb.duplicates_dropped(), 1u);
  EXPECT_EQ(rb.stragglers_dropped(), 0u);
}

TEST(ReorderBuffer, ClearResetsToFreshState) {
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(5);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  p.seq = 2;
  rb.on_packet(p, sim.now());
  EXPECT_EQ(rb.buffered(), 2u);
  rb.clear();
  EXPECT_EQ(rb.buffered(), 0u);
  EXPECT_TRUE(out.empty());
  // A fresh flow (new sequence range) starts cleanly after the reset.
  sim.run_until(sim::milliseconds(1));
  p.seq = 100;
  rb.on_packet(p, sim.now());
  p.seq = 101;
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(20));  // warm-up relocks onto 100
  EXPECT_EQ(out, (std::vector<std::uint32_t>{100, 101}));
}

TEST(ReorderBuffer, HandlesBurstLossOverflow) {
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::seconds(100);  // effectively never
  cfg.max_buffered = 16;
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  // Sequence 1 never arrives; 2..40 pile up until the overflow valve opens.
  for (std::uint32_t s = 2; s <= 40; ++s) {
    p.seq = s;
    rb.on_packet(p, sim.now());
  }
  EXPECT_GT(out.size(), 16u);
}

TEST(ReorderBuffer, StragglerExactlyAtGapTimeoutBoundaryIsDropped) {
  // Razor's edge of the gap timeout: the missing packet arrives at the
  // very instant the hold expires. The timeout event was armed when the
  // gap started blocking, so at the shared timestamp it is already in the
  // queue and fires first — the gap is abandoned, delivery skips ahead,
  // and the boundary packet is a straggler, not a rescue. One-nanosecond
  // earlier arrivals (tested below) are rescued instead.
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(11));  // warm-up elapsed, 0 delivered
  ASSERT_EQ(out, (std::vector<std::uint32_t>{0}));
  p.seq = 2;  // gap at 1 starts blocking now
  rb.on_packet(p, sim.now());
  const sim::Time boundary = sim.now() + cfg.hold_timeout;
  sim.run_until(boundary);  // the hold expires exactly now: 2 released
  ASSERT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(rb.timeouts(), 1u);
  p.seq = 1;  // arrives at the boundary instant, after the timeout fired
  rb.on_packet(p, sim.now());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(rb.stragglers_dropped(), 1u);
  EXPECT_EQ(rb.duplicates_dropped(), 0u);
  EXPECT_EQ(rb.buffered(), 0u);
}

TEST(ReorderBuffer, ArrivalOneTickBeforeGapTimeoutIsRescued) {
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(11));
  p.seq = 2;
  rb.on_packet(p, sim.now());
  const sim::Time boundary = sim.now() + cfg.hold_timeout;
  sim.run_until(boundary - sim::Time{1});  // 1 ns before the hold expires
  p.seq = 1;
  rb.on_packet(p, sim.now());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(rb.timeouts(), 0u);
  EXPECT_EQ(rb.stragglers_dropped(), 0u);
  EXPECT_EQ(rb.duplicates_dropped(), 0u);
  sim.run_until(boundary + sim::milliseconds(5));  // stale timer is harmless
  EXPECT_EQ(rb.timeouts(), 0u);
}

TEST(ReorderBuffer, ClearMidGapCancelsTimerAndSupportsReuse) {
  // Adapter reset while a gap is actively blocking: the armed hold timer
  // must die with the buffered packets (no ghost timeout against the next
  // flow), counters survive, and the buffer relocks cleanly on reuse.
  sim::Simulator sim;
  std::vector<std::uint32_t> out;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  ReorderBuffer rb(sim, [&](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
                   cfg);
  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now());
  sim.run_until(sim::milliseconds(11));  // locked, 0 delivered
  p.seq = 2;
  rb.on_packet(p, sim.now());  // gap at 1: blocked, timer armed
  p.seq = 1;                   // deliberate straggler bump pre-reset
  sim.run_until(sim::milliseconds(13));
  rb.clear();                  // reset mid-gap, timer pending
  EXPECT_EQ(rb.buffered(), 0u);
  sim.run_until(sim::milliseconds(40));  // past the would-be timeout
  EXPECT_EQ(rb.timeouts(), 0u);          // cancelled timer never fired
  ASSERT_EQ(out, (std::vector<std::uint32_t>{0}));

  // Reuse: a new flow, lower sequence range than the pre-reset one. Without
  // the next_seq_ reset it would all be misclassified as stragglers.
  for (std::uint32_t s : {0u, 2u, 1u}) {
    p.seq = s;
    rb.on_packet(p, sim.now());
  }
  sim.run_until(sim::milliseconds(80));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 0, 1, 2}));
  EXPECT_EQ(rb.buffered(), 0u);
  EXPECT_EQ(rb.stragglers_dropped(), 0u);
  EXPECT_EQ(rb.duplicates_dropped(), 0u);
}

TEST(HybridDevice, AggregatesTwoPipes) {
  sim::Simulator sim;
  PipeInterface fast(sim, sim::milliseconds(2));
  PipeInterface slow(sim, sim::milliseconds(8));
  auto sched = std::make_unique<CapacityScheduler>(sim::Rng{7});
  HybridDevice tx_dev(sim, {&fast, &slow}, std::move(sched));
  tx_dev.set_capacities({80.0, 20.0});

  HybridDevice rx_dev(sim, {&fast, &slow},
                      std::make_unique<RoundRobinScheduler>(2));
  net::OrderMeter order;
  std::uint64_t delivered = 0;
  rx_dev.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    order.on_packet(p, t);
    ++delivered;
  });
  rx_dev.start_receiving();

  net::Packet p;
  for (std::uint32_t s = 0; s < 500; ++s) {
    p.seq = s;
    p.created = sim.now();
    tx_dev.enqueue(p);
    sim.run_until(sim.now() + sim::microseconds(100.0));
  }
  sim.run_until(sim.now() + sim::seconds(1));
  EXPECT_EQ(delivered, 500u);
  EXPECT_EQ(order.out_of_order(), 0u);  // reorder buffer restored sequence
  // Proportional split: the fast pipe carried roughly 80 %.
  const double frac = tx_dev.sent_per_interface(0) /
                      static_cast<double>(500);
  EXPECT_NEAR(frac, 0.8, 0.07);
}

/// Loopback pipe whose wire can be cut: while `dead_`, enqueued packets
/// pile up in a salvageable queue instead of being delivered. Packets (and
/// probe echoes) otherwise return to this pipe's own rx handler after a
/// fixed latency, which lets a single HybridDevice exercise the full
/// probe -> echo -> result round trip.
class KillablePipe final : public net::Interface {
 public:
  KillablePipe(sim::Simulator& sim, sim::Time latency) : sim_(sim), latency_(latency) {}

  bool enqueue(const net::Packet& p) override {
    ++enqueued_;
    if (dead_) {
      queued_.push_back(p);
      return true;
    }
    sim_.after(latency_, [this, p] {
      if (!dead_ && rx_) rx_(p, sim_.now());
    });
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return queued_.size(); }
  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }
  void clear_queue() override { queued_.clear(); }
  std::vector<net::Packet> take_queue() override {
    std::vector<net::Packet> out;
    out.swap(queued_);
    return out;
  }

  bool dead_ = false;
  std::uint64_t enqueued_ = 0;
  std::vector<net::Packet> queued_;

 private:
  sim::Simulator& sim_;
  sim::Time latency_;
  RxHandler rx_;
};

TEST(HybridDevice, ClearQueueFansOutToMembersAndReorder) {
  sim::Simulator sim;
  KillablePipe a(sim, sim::milliseconds(1));
  KillablePipe b(sim, sim::milliseconds(1));
  HybridDevice dev(sim, {&a, &b}, std::make_unique<RoundRobinScheduler>(2));
  std::vector<std::uint32_t> out;
  dev.set_rx_handler([&](const net::Packet& p, sim::Time) { out.push_back(p.seq); });
  dev.start_receiving();

  // Park an out-of-order packet in the reorder buffer (warm-up holds it)...
  net::Packet p;
  p.seq = 7;
  dev.enqueue(p);
  sim.run_until(sim::milliseconds(5));
  EXPECT_EQ(dev.reorder().buffered(), 1u);

  // ...and a backlog in both member queues.
  a.dead_ = b.dead_ = true;
  for (std::uint32_t s = 0; s < 10; ++s) {
    p.seq = s;
    dev.enqueue(p);
  }
  EXPECT_EQ(dev.queue_length(), 10u);

  // The logical interface's flush reaches every member and the resequencer.
  dev.clear_queue();
  EXPECT_EQ(dev.queue_length(), 0u);
  EXPECT_EQ(dev.reorder().buffered(), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(HybridDevice, FailoverTripsSalvagesAndRecovers) {
  sim::Simulator sim;
  KillablePipe a(sim, sim::milliseconds(1));
  KillablePipe b(sim, sim::milliseconds(1));
  HybridDevice dev(sim, {&a, &b},
                   std::make_unique<CapacityScheduler>(sim::Rng{9}));
  dev.set_capacities({50.0, 50.0});

  std::vector<std::pair<int, fault::HealthMonitor::State>> transitions;
  HybridDevice::FailoverConfig fc;
  fc.health.probe_interval = sim::milliseconds(10);
  fc.health.probe_timeout = sim::milliseconds(5);
  fc.health.trip_threshold = 2;
  fc.health.backoff_initial = sim::milliseconds(20);
  fc.health.backoff_max = sim::milliseconds(40);
  fc.health.recovery_successes = 2;
  fc.on_transition = [&](int m, fault::HealthMonitor::State s, sim::Time) {
    transitions.emplace_back(m, s);
  };
  dev.enable_failover(fc);

  sim.run_until(sim::milliseconds(100));
  EXPECT_TRUE(dev.member_live(0));
  EXPECT_TRUE(dev.member_live(1));
  EXPECT_GT(dev.monitor(0).probes_sent(), 0u);
  EXPECT_EQ(dev.monitor(0).trips(), 0u);

  // Cut member 0's wire with traffic queued on it: the breaker must trip
  // and the backlog must move to the survivor.
  a.dead_ = true;
  net::Packet p;
  for (std::uint32_t s = 0; s < 40; ++s) {
    p.seq = s;
    dev.enqueue(p);
  }
  ASSERT_GT(a.queue_length(), 0u);
  const std::uint64_t b_before_salvage = b.enqueued_;
  sim.run_until(sim::milliseconds(200));
  EXPECT_FALSE(dev.member_live(0));
  EXPECT_TRUE(dev.member_live(1));
  EXPECT_EQ(dev.monitor(0).trips(), 1u);
  EXPECT_GT(dev.salvaged_packets(), 0u);
  EXPECT_GE(b.enqueued_, b_before_salvage + dev.salvaged_packets());

  // While tripped, new packets avoid the dead member entirely.
  const std::uint64_t a_before = a.enqueued_;
  const std::uint64_t b_before = b.enqueued_;
  for (std::uint32_t s = 100; s < 150; ++s) {
    p.seq = s;
    dev.enqueue(p);
  }
  EXPECT_EQ(a.enqueued_, a_before);  // only reprobes may touch the dead pipe
  EXPECT_EQ(b.enqueued_, b_before + 50);

  // Wire restored: the breaker walks open -> half-open -> closed and the
  // member rejoins the split.
  a.dead_ = false;
  sim.run_until(sim::milliseconds(500));
  EXPECT_TRUE(dev.member_live(0));
  EXPECT_GE(dev.monitor(0).recoveries(), 1u);

  bool saw_open = false, saw_closed_after_open = false;
  for (const auto& [m, s] : transitions) {
    if (m != 0) continue;
    if (s == fault::HealthMonitor::State::kOpen) saw_open = true;
    if (saw_open && s == fault::HealthMonitor::State::kClosed) {
      saw_closed_after_open = true;
    }
  }
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(saw_closed_after_open);
}

TEST(RoundRobinSplitter, AlternatesStrictly) {
  sim::Simulator sim;
  PipeInterface a(sim, sim::milliseconds(1));
  PipeInterface b(sim, sim::milliseconds(1));
  RoundRobinSplitter splitter(sim, {&a, &b});
  net::Packet p;
  for (std::uint32_t s = 0; s < 10; ++s) {
    p.seq = s;
    splitter.enqueue(p);
  }
  EXPECT_EQ(a.enqueued_, 5u);
  EXPECT_EQ(b.enqueued_, 5u);
}

/// Interface stub with a controllable queue length, to exercise the
/// head-of-line blocking semantics.
class StubQueue final : public net::Interface {
 public:
  bool enqueue(const net::Packet&) override {
    ++accepted_;
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return depth_; }
  void set_rx_handler(RxHandler) override {}
  std::size_t depth_ = 0;
  std::uint64_t accepted_ = 0;
};

TEST(RoundRobinSplitter, HeadOfLineBlocksBothInterfaces) {
  sim::Simulator sim;
  StubQueue slow, fast;
  slow.depth_ = 1000;  // permanently over the watermark
  RoundRobinSplitter splitter(sim, {&slow, &fast});
  net::Packet p;
  for (std::uint32_t s = 0; s < 20; ++s) {
    p.seq = s;
    splitter.enqueue(p);
  }
  sim.run_until(sim::seconds(1));
  // Strict alternation: the stalled slow interface starves the fast one —
  // this is exactly the paper's round-robin bottleneck (Fig. 20).
  EXPECT_EQ(slow.accepted_, 0u);
  EXPECT_EQ(fast.accepted_, 0u);
  EXPECT_EQ(splitter.queue_length(), 20u);
  // The moment the slow queue drains, the stage flushes in order.
  slow.depth_ = 0;
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(slow.accepted_, 10u);
  EXPECT_EQ(fast.accepted_, 10u);
}

TEST(RoundRobinSplitter, StageLimitDropsExcess) {
  sim::Simulator sim;
  StubQueue blocked;
  blocked.depth_ = 1000;
  RoundRobinSplitter::Config cfg;
  cfg.stage_limit = 8;
  RoundRobinSplitter splitter(sim, {&blocked}, cfg);
  net::Packet p;
  int accepted = 0;
  for (std::uint32_t s = 0; s < 20; ++s) {
    p.seq = s;
    accepted += splitter.enqueue(p) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 8);
}

TEST(LinkMetricTable, UpdateAndGet) {
  LinkMetricTable table;
  EXPECT_FALSE(table.get(0, 1, Medium::kPlc).has_value());
  table.update(0, 1, Medium::kPlc, {120.0, 0.01, sim::seconds(10)});
  const auto m = table.get(0, 1, Medium::kPlc);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->capacity_mbps, 120.0);
  // Directed and per-medium: the reverse/other-medium entries are absent.
  EXPECT_FALSE(table.get(1, 0, Medium::kPlc).has_value());
  EXPECT_FALSE(table.get(0, 1, Medium::kWifi).has_value());
}

TEST(LinkMetricTable, FreshnessWindow) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kWifi, {65.0, 0.0, sim::seconds(10)});
  EXPECT_DOUBLE_EQ(table.fresh_capacity_mbps(0, 1, Medium::kWifi, sim::seconds(12),
                                             sim::seconds(5)),
                   65.0);
  EXPECT_DOUBLE_EQ(table.fresh_capacity_mbps(0, 1, Medium::kWifi, sim::seconds(30),
                                             sim::seconds(5)),
                   0.0);
}

TEST(LinkMetricTable, EntriesEnumerates) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, {100.0, 0.0, {}});
  table.update(0, 1, Medium::kWifi, {60.0, 0.0, {}});
  table.update(2, 3, Medium::kPlc, {40.0, 0.1, {}});
  EXPECT_EQ(table.entries().size(), 3u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(MediumNames, ToString) {
  EXPECT_EQ(to_string(Medium::kPlc), "plc");
  EXPECT_EQ(to_string(Medium::kWifi), "wifi");
}

}  // namespace
}  // namespace efd::hybrid

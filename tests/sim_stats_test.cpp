#include "src/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/rng.hpp"

namespace efd::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{11};
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Cdf, EvaluationAndQuantiles) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
}

TEST(Cdf, EmptyIsSafe) {
  Cdf cdf({});
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Cdf, UnsortedInputIsSorted) {
  Cdf cdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.sorted_samples()[0], 1.0);
  EXPECT_DOUBLE_EQ(cdf.sorted_samples()[2], 3.0);
}

TEST(Cdf, MonotoneNondecreasing) {
  Rng rng{13};
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal(0.0, 1.0));
  Cdf cdf(std::move(samples));
  double prev = -1.0;
  for (double x = -4.0; x <= 4.0; x += 0.05) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(1.7 * i - 0.65);
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 1.7, 1e-9);
  EXPECT_NEAR(fit.intercept, -0.65, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  Rng rng{17};
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.1);
    y.push_back(2.0 * i * 0.1 + 1.0 + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(LinearFit, ConstantXIsDegenerateButSafe) {
  const LinearFit fit = fit_line({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> ny{-2, -4, -6, -8, -10};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

class CdfQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(CdfQuantileSweep, QuantileAndCdfAreConsistent) {
  Rng rng{19};
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform(0.0, 100.0));
  Cdf cdf(std::move(samples));
  const double q = GetParam();
  const double x = cdf.quantile(q);
  EXPECT_NEAR(cdf.at(x), q, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, CdfQuantileSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95));

}  // namespace
}  // namespace efd::sim

// IEEE 1901 channel-access priority classes (CA0..CA3): the priority-
// resolution slots let delay-sensitive traffic pre-empt bulk transfers.
#include <gtest/gtest.h>

#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/plc/network.hpp"

namespace efd::plc {
namespace {

struct PriorityFixture : ::testing::Test {
  sim::Simulator sim;
  grid::PowerGrid grid;
  std::unique_ptr<PlcChannel> channel;
  std::unique_ptr<PlcNetwork> network;

  void build(int n_stations) {
    const int strip = grid.add_node("strip");
    channel = std::make_unique<PlcChannel>(grid, PhyParams::hpav());
    network = std::make_unique<PlcNetwork>(sim, *channel, sim::Rng{9},
                                           PlcNetwork::Config{});
    for (int i = 0; i < n_stations; ++i) {
      const int outlet = grid.add_node("s" + std::to_string(i));
      grid.add_cable(strip, outlet, 2.0 + i);
      channel->attach_station(i, outlet);
      network->add_station(i, outlet);
    }
  }
};

TEST_F(PriorityFixture, HighPriorityPreemptsBulkTraffic) {
  build(4);
  net::ThroughputMeter bulk_meter, voice_meter;
  net::JitterMeter voice_jitter;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { bulk_meter.on_packet(p, t); });
  network->station(3).mac().set_rx_handler([&](const net::Packet& p, sim::Time t) {
    voice_meter.on_packet(p, t);
    voice_jitter.on_packet(p, t);
  });

  net::UdpSource::Config bulk_cfg;
  bulk_cfg.src = 0;
  bulk_cfg.dst = 1;
  bulk_cfg.rate_bps = 400e6;
  bulk_cfg.priority = 1;  // CA1 best effort
  net::UdpSource bulk(sim, network->station(0).mac(), bulk_cfg);

  net::UdpSource::Config voice_cfg;
  voice_cfg.src = 2;
  voice_cfg.dst = 3;
  voice_cfg.rate_bps = 2e6;
  voice_cfg.packet_bytes = 400;
  voice_cfg.priority = 3;  // CA3 voice
  net::UdpSource voice(sim, network->station(2).mac(), voice_cfg);

  bulk.run(sim::Time{}, sim::seconds(5));
  voice.run(sim::Time{}, sim::seconds(5));
  sim.run_until(sim::seconds(5));
  voice_meter.finish(sim.now());
  bulk_meter.finish(sim.now());

  // The 2 Mb/s CA3 stream rides through essentially unscathed.
  EXPECT_NEAR(voice_meter.average_mbps(sim::seconds(5)), 2.0, 0.2);
  // The bulk flow still gets the bulk of the airtime.
  EXPECT_GT(bulk_meter.average_mbps(sim::seconds(5)), 50.0);
  // Voice jitter stays within one bulk-frame time (~3 ms).
  EXPECT_LT(voice_jitter.mean_jitter_ms(), 3.0);
}

TEST_F(PriorityFixture, EqualPrioritiesShareAirtime) {
  build(4);
  net::ThroughputMeter m1, m2;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { m1.on_packet(p, t); });
  network->station(3).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { m2.on_packet(p, t); });
  net::UdpSource::Config c1, c2;
  c1.src = 0; c1.dst = 1; c1.rate_bps = 400e6; c1.priority = 2;
  c2.src = 2; c2.dst = 3; c2.rate_bps = 400e6; c2.priority = 2;
  net::UdpSource s1(sim, network->station(0).mac(), c1);
  net::UdpSource s2(sim, network->station(2).mac(), c2);
  s1.run(sim::Time{}, sim::seconds(5));
  s2.run(sim::Time{}, sim::seconds(5));
  sim.run_until(sim::seconds(5));
  const double t1 = m1.average_mbps(sim::seconds(5));
  const double t2 = m2.average_mbps(sim::seconds(5));
  // Jain fairness for two flows stays high.
  const double jain = (t1 + t2) * (t1 + t2) / (2.0 * (t1 * t1 + t2 * t2));
  EXPECT_GT(jain, 0.9);
}

TEST_F(PriorityFixture, HigherClassStarvesLowerUnderSaturation) {
  build(4);
  net::ThroughputMeter high_meter, low_meter;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { high_meter.on_packet(p, t); });
  network->station(3).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { low_meter.on_packet(p, t); });
  net::UdpSource::Config hi, lo;
  hi.src = 0; hi.dst = 1; hi.rate_bps = 400e6; hi.priority = 2;
  lo.src = 2; lo.dst = 3; lo.rate_bps = 400e6; lo.priority = 1;
  net::UdpSource sh(sim, network->station(0).mac(), hi);
  net::UdpSource sl(sim, network->station(2).mac(), lo);
  sh.run(sim::Time{}, sim::seconds(5));
  sl.run(sim::Time{}, sim::seconds(5));
  sim.run_until(sim::seconds(5));
  // Strict priority: the CA2 flow takes virtually all airtime (this is why
  // 1901 maps only delay-critical traffic to CA2/CA3).
  EXPECT_GT(high_meter.average_mbps(sim::seconds(5)),
            20.0 * std::max(0.5, low_meter.average_mbps(sim::seconds(5))));
}

TEST_F(PriorityFixture, Ca2ConfigUsesTighterLadder) {
  const auto c = PlcMac::Config::for_ca_class(2);
  EXPECT_EQ(c.cw[2], 16);
  EXPECT_EQ(c.cw[3], 32);
  const auto c1 = PlcMac::Config::for_ca_class(1);
  EXPECT_EQ(c1.cw[3], 64);
}

TEST_F(PriorityFixture, CurrentPriorityTracksQueueHead) {
  build(2);
  auto& mac = network->station(0).mac();
  EXPECT_EQ(mac.current_priority(), 0);  // empty queue
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 400;
  p.priority = 3;
  mac.enqueue(p);
  EXPECT_EQ(mac.current_priority(), 3);
}

}  // namespace
}  // namespace efd::plc

// Edge cases of the slab-backed event engine (DESIGN.md §9): handle
// generations across slot reuse, lazy-tombstone cancellation, FIFO
// tie-breaks at scale, run_until boundary semantics, reset() sequencing, and
// the zero-steady-state-allocation contract (via the counting operator new
// in alloc_count.hpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc_count.hpp"
#include "src/sim/inline_function.hpp"
#include "src/sim/simulator.hpp"

namespace efd::sim {
namespace {

// --- InlineFunction -------------------------------------------------------

TEST(InlineFunction, SmallCapturesAreStoredInline) {
  int x = 0;
  auto small = [&x] { ++x; };
  static_assert(fits_inline<decltype(small)>);
  EventFn fn(small);
  fn();
  fn();
  EXPECT_EQ(x, 2);
}

TEST(InlineFunction, OversizedCapturesFallBackToOneBox) {
  struct Big {
    char data[96];
  };
  Big big{};
  big.data[0] = 7;
  int got = 0;
  auto fat = [big, &got] { got = big.data[0]; };
  static_assert(!fits_inline<decltype(fat)>);
  const testsupport::AllocationWindow window;
  EventFn fn(fat);
  EXPECT_EQ(window.count(), 1u);  // exactly the one heap box
  fn();
  EXPECT_EQ(got, 7);
}

TEST(InlineFunction, MoveTransfersTheCallable) {
  int x = 0;
  EventFn a([&x] { ++x; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(x, 2);
}

TEST(InlineFunction, DestructorReleasesTheCapture) {
  const auto token = std::make_shared<int>(42);
  {
    EventFn fn([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// --- handle generations over slot reuse -----------------------------------

TEST(EventEngine, StaleHandleDoesNotCancelRecycledSlot) {
  Simulator sim;
  EventHandle stale = sim.at(seconds(1), [] {});
  sim.run();  // fires; the slot is freed and its generation advances
  EXPECT_FALSE(stale.pending());

  bool fired = false;
  EventHandle fresh = sim.at(seconds(2), [&] { fired = true; });
  stale.cancel();  // stale generation: must not touch the recycled slot
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EventEngine, StaleHandleAfterCancelCollectionIsInert) {
  Simulator sim;
  EventHandle a = sim.at(seconds(1), [] {});
  a.cancel();
  sim.run();  // collects the tombstone, freeing the slot

  int fired = 0;
  EventHandle b = sim.at(seconds(2), [&] { ++fired; });
  a.cancel();  // must not cancel b's event in the recycled slot
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventEngine, CancelAfterFireIsIdempotent) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.at(seconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();
  h.cancel();  // repeated cancels: no effect, no crash
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventEngine, HandleToFiringEventIsInertInsideItsCallback) {
  Simulator sim;
  EventHandle h;
  bool was_pending = true;
  h = sim.at(seconds(1), [&] { was_pending = h.pending(); });
  sim.run();
  EXPECT_FALSE(was_pending);
}

// --- tombstones and slab accounting ---------------------------------------

TEST(EventEngine, CancelledEventsAreReapedNotDispatched) {
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.at(seconds(1), [&] { ++fired; }));
  }
  for (int i = 0; i < 100; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(sim.slab_occupancy(), 100u);  // tombstones still hold slots
  sim.run();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.events_dispatched(), 50u);
  EXPECT_EQ(sim.slab_occupancy(), 0u);  // every slot reclaimed
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventEngine, SlabReusesSlotsInsteadOfGrowing) {
  Simulator sim;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      sim.after(nanoseconds(i + 1), [] {});
    }
    sim.run();
  }
  EXPECT_LE(sim.slab_capacity(), 8u);
}

// --- FIFO tie-break at scale ----------------------------------------------

TEST(EventEngine, TenThousandSameTimestampEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  order.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    sim.at(seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "FIFO broken at " << i;
  }
}

TEST(EventEngine, SameInstantFifoSurvivesInterleavedCancels) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.at(seconds(1), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 1000; i += 3) handles[static_cast<std::size_t>(i)].cancel();
  sim.run();
  int expect = 0;
  std::size_t at = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 == 0) continue;
    ASSERT_LT(at, order.size());
    EXPECT_EQ(order[at++], i) << "survivor order broken at " << expect;
    ++expect;
  }
  EXPECT_EQ(at, order.size());
}

// --- run_until boundary ----------------------------------------------------

TEST(EventEngine, RunUntilIsInclusiveOfTheBoundaryInstant) {
  Simulator sim;
  int fired = 0;
  sim.at(seconds(5), [&] { ++fired; });
  sim.at(seconds(5) + nanoseconds(1), [&] { ++fired; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);  // t == end fires, t == end + 1ns does not
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(6));
  EXPECT_EQ(fired, 2);
}

TEST(EventEngine, ClockRestsAtLastEventWhenQueueDrains) {
  Simulator sim;
  sim.at(seconds(3), [] {});
  sim.run_until(seconds(10));
  EXPECT_EQ(sim.now(), seconds(10));  // run_until pins the clock to end
  Simulator sim2;
  sim2.at(seconds(3), [] {});
  sim2.run();  // run() leaves the clock at the last dispatched event
  EXPECT_EQ(sim2.now(), seconds(3));
}

TEST(EventEngine, EventAtTheCurrentInstantFires) {
  Simulator sim;
  sim.run_until(seconds(2));
  bool fired = false;
  sim.at(sim.now(), [&] { fired = true; });
  sim.run_until(sim.now());
  EXPECT_TRUE(fired);
}

// --- reset() ---------------------------------------------------------------

TEST(EventEngine, ResetZeroesDispatchCountAndClock) {
  Simulator sim;
  sim.at(seconds(1), [] {});
  sim.at(seconds(2), [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 2u);
  sim.reset();
  EXPECT_EQ(sim.now(), Time{});
  EXPECT_EQ(sim.events_dispatched(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.slab_occupancy(), 0u);
}

TEST(EventEngine, ResetSimulatorReplaysIdenticalEventOrderings) {
  // The ParallelRunner reuse contract: the same schedule replayed on a reset
  // simulator produces the same FIFO sequencing as a fresh one.
  const auto record_run = [](Simulator& sim) {
    std::vector<int> order;
    for (int i = 0; i < 32; ++i) {
      sim.at(seconds(i % 4), [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  Simulator fresh;
  const std::vector<int> want = record_run(fresh);

  Simulator reused;
  reused.at(seconds(9), [] {});  // leave pending + dispatched state behind
  reused.at(seconds(1), [] {});
  reused.run_until(seconds(2));
  reused.reset();
  EXPECT_EQ(record_run(reused), want);
  EXPECT_EQ(reused.events_dispatched(), 32u);
}

TEST(EventEngine, HandlesFromBeforeResetAreInert) {
  Simulator sim;
  EventHandle pre = sim.at(seconds(5), [] {});
  sim.reset();
  EXPECT_FALSE(pre.pending());

  bool fired = false;
  EventHandle post = sim.at(seconds(1), [&] { fired = true; });
  pre.cancel();  // stale pre-reset handle must not cancel the new event
  EXPECT_TRUE(post.pending());
  sim.run();
  EXPECT_TRUE(fired);
}

// --- zero-allocation contract ---------------------------------------------

TEST(EventEngine, SteadyStateInlineScheduleDispatchIsAllocationFree) {
  Simulator sim;
  std::uint64_t ticks = 0;
  // Warm-up: grow the slab, heap vector, free list, and the obs shard /
  // metric-id statics outside the measured window.
  for (int i = 0; i < 256; ++i) {
    sim.after_inline(nanoseconds(10 + i), [&ticks] { ++ticks; });
  }
  sim.run();

  const testsupport::AllocationWindow window;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      sim.after_inline(nanoseconds(10 + i), [&ticks] { ++ticks; });
    }
    sim.run_until(sim.now() + nanoseconds(1000));
  }
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(ticks, 256u + 6400u);
}

TEST(EventEngine, SteadyStateCancelIsAllocationFree) {
  Simulator sim;
  // Warm-up covers the tombstone-reap path too, so the lazily registered
  // "sim.events_cancelled" metric id is resolved outside the window.
  for (int i = 0; i < 64; ++i) sim.after_inline(nanoseconds(10), [] {});
  sim.after_inline(nanoseconds(10), [] {}).cancel();
  sim.run();

  const testsupport::AllocationWindow window;
  for (int round = 0; round < 100; ++round) {
    EventHandle h = sim.after_inline(nanoseconds(10), [] {});
    h.cancel();
    sim.run_until(sim.now() + nanoseconds(100));
  }
  EXPECT_EQ(window.count(), 0u);
}

}  // namespace
}  // namespace efd::sim

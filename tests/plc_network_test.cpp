#include "src/plc/network.hpp"

#include <gtest/gtest.h>

namespace efd::plc {
namespace {

struct NetworkFixture : ::testing::Test {
  sim::Simulator sim;
  grid::PowerGrid grid;
  std::unique_ptr<PlcChannel> channel;
  std::unique_ptr<PlcNetwork> network;

  void SetUp() override {
    const int strip = grid.add_node("strip");
    channel = std::make_unique<PlcChannel>(grid, PhyParams::hpav());
    network = std::make_unique<PlcNetwork>(sim, *channel, sim::Rng{5},
                                           PlcNetwork::Config{});
    for (int i = 0; i < 3; ++i) {
      const int outlet = grid.add_node("o" + std::to_string(i));
      grid.add_cable(strip, outlet, 3.0 + i);
      channel->attach_station(i, outlet);
      network->add_station(i, outlet);
    }
  }
};

TEST_F(NetworkFixture, FirstStationBecomesCco) {
  EXPECT_EQ(network->cco(), 0);
}

TEST_F(NetworkFixture, CcoCanBePinnedStatically) {
  network->set_cco(2);  // the paper pins CCos with the Atheros toolkit
  EXPECT_EQ(network->cco(), 2);
}

TEST_F(NetworkFixture, StationLookup) {
  EXPECT_TRUE(network->has_station(1));
  EXPECT_FALSE(network->has_station(9));
  EXPECT_EQ(network->station(1).id(), 1);
  EXPECT_EQ(network->station(2).mac().id(), 2);
}

TEST_F(NetworkFixture, EstimatorsAreLazyAndStable) {
  ChannelEstimator& e1 = network->estimator(1, 0);
  ChannelEstimator& e2 = network->estimator(1, 0);
  EXPECT_EQ(&e1, &e2);  // same directed link: same estimator
  ChannelEstimator& reverse = network->estimator(0, 1);
  EXPECT_NE(&e1, &reverse);  // reverse direction is a different estimator
}

TEST_F(NetworkFixture, MmQueriesReflectEstimatorState) {
  auto& est = network->estimator(1, 0);
  EXPECT_LT(network->mm_average_ble(0, 1), 10.0);  // ROBO fallback pre-sound
  est.on_sound_frame(sim::seconds(1));
  EXPECT_GT(network->mm_average_ble(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(network->mm_pberr(0, 1), est.measured_pberr());
}

TEST_F(NetworkFixture, ResetLinkEstimationDropsState) {
  auto& est = network->estimator(1, 0);
  est.on_sound_frame(sim::seconds(1));
  ASSERT_TRUE(est.has_tone_maps());
  network->reset_link_estimation(0, 1);
  EXPECT_FALSE(est.has_tone_maps());
}

TEST_F(NetworkFixture, MediumIsShared) {
  // Every station registered on the one medium: a frame from 0 to 1 is
  // heard by the sniffer exactly once.
  int sofs = 0;
  network->medium().add_sniffer([&](const SofRecord&) { ++sofs; });
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1000;
  network->station(0).mac().enqueue(p);
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(sofs, 1);
}

TEST_F(NetworkFixture, SnifferRemovalStopsDelivery) {
  int sofs = 0;
  const auto id = network->medium().add_sniffer([&](const SofRecord&) { ++sofs; });
  network->medium().remove_sniffer(id);
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1000;
  network->station(0).mac().enqueue(p);
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(sofs, 0);
}

}  // namespace
}  // namespace efd::plc

#include "src/plc/network.hpp"

#include <gtest/gtest.h>

namespace efd::plc {
namespace {

struct NetworkFixture : ::testing::Test {
  sim::Simulator sim;
  grid::PowerGrid grid;
  std::unique_ptr<PlcChannel> channel;
  std::unique_ptr<PlcNetwork> network;

  void SetUp() override {
    const int strip = grid.add_node("strip");
    channel = std::make_unique<PlcChannel>(grid, PhyParams::hpav());
    network = std::make_unique<PlcNetwork>(sim, *channel, sim::Rng{5},
                                           PlcNetwork::Config{});
    for (int i = 0; i < 3; ++i) {
      const int outlet = grid.add_node("o" + std::to_string(i));
      grid.add_cable(strip, outlet, 3.0 + i);
      channel->attach_station(i, outlet);
      network->add_station(i, outlet);
    }
  }
};

TEST_F(NetworkFixture, FirstStationBecomesCco) {
  EXPECT_EQ(network->cco(), 0);
}

TEST_F(NetworkFixture, CcoCanBePinnedStatically) {
  network->set_cco(2);  // the paper pins CCos with the Atheros toolkit
  EXPECT_EQ(network->cco(), 2);
}

TEST_F(NetworkFixture, StationLookup) {
  EXPECT_TRUE(network->has_station(1));
  EXPECT_FALSE(network->has_station(9));
  EXPECT_EQ(network->station(1).id(), 1);
  EXPECT_EQ(network->station(2).mac().id(), 2);
}

TEST_F(NetworkFixture, EstimatorsAreLazyAndStable) {
  ChannelEstimator& e1 = network->estimator(1, 0);
  ChannelEstimator& e2 = network->estimator(1, 0);
  EXPECT_EQ(&e1, &e2);  // same directed link: same estimator
  ChannelEstimator& reverse = network->estimator(0, 1);
  EXPECT_NE(&e1, &reverse);  // reverse direction is a different estimator
}

TEST_F(NetworkFixture, MmQueriesReflectEstimatorState) {
  auto& est = network->estimator(1, 0);
  EXPECT_LT(network->mm_average_ble(0, 1), 10.0);  // ROBO fallback pre-sound
  est.on_sound_frame(sim::seconds(1));
  EXPECT_GT(network->mm_average_ble(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(network->mm_pberr(0, 1), est.measured_pberr());
}

TEST_F(NetworkFixture, ResetLinkEstimationDropsState) {
  auto& est = network->estimator(1, 0);
  est.on_sound_frame(sim::seconds(1));
  ASSERT_TRUE(est.has_tone_maps());
  network->reset_link_estimation(0, 1);
  EXPECT_FALSE(est.has_tone_maps());
}

TEST_F(NetworkFixture, MediumIsShared) {
  // Every station registered on the one medium: a frame from 0 to 1 is
  // heard by the sniffer exactly once.
  int sofs = 0;
  network->medium().add_sniffer([&](const SofRecord&) { ++sofs; });
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1000;
  network->station(0).mac().enqueue(p);
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(sofs, 1);
}

// A deliberately lossy direct link for the fault-hook tests: ~35 dB of
// extra cable loss puts the static SNR in the mid-20s dB, where the bit
// loader's margin actually moves the constellation choice. The default
// fixture's 3 m cables are so clean (~60 dB SNR) that even the capped
// 14 dB panic margin cannot demote QAM-1024, which would make the
// estimator's fault reaction invisible in BLE.
struct LossyLinkFixture : ::testing::Test {
  sim::Simulator sim;
  grid::PowerGrid grid;
  std::unique_ptr<PlcChannel> channel;
  std::unique_ptr<PlcNetwork> network;
  std::uint64_t next_id = 1;

  void SetUp() override {
    const int a = grid.add_node("a");
    const int b = grid.add_node("b");
    grid.add_cable(a, b, 30.0, /*extra_loss_db=*/35.0);
    channel = std::make_unique<PlcChannel>(grid, PhyParams::hpav());
    network = std::make_unique<PlcNetwork>(sim, *channel, sim::Rng{5},
                                           PlcNetwork::Config{});
    channel->attach_station(0, a);
    network->add_station(0, a);
    channel->attach_station(1, b);
    network->add_station(1, b);
  }

  /// Paced saturation 0 -> 1: a batch every 1.7 ms, coprime with the 10 ms
  /// AC half cycle, so frame starts precess through every tone-map slot
  /// instead of strobing on a single phase (10 ms pacing would pin every
  /// batch to the same slot).
  void drive(int batches) {
    net::Packet p;
    p.src = 0;
    p.dst = 1;
    p.size_bytes = 1400;
    for (int batch = 0; batch < batches; ++batch) {
      for (int i = 0; i < 5; ++i) {
        p.id = next_id++;
        p.seq = static_cast<std::uint32_t>(p.id);
        network->station(0).mac().enqueue(p);
      }
      sim.run_until(sim.now() + sim::microseconds(1700));
    }
  }
};

TEST_F(LossyLinkFixture, FaultPbErrorReachesEstimatorInEverySlot) {
  // The medium's fault hook forces a floor on the PB error probability of
  // every frame, regardless of which tone-map slot the frame lands in. The
  // receiver-side estimator must observe it in ALL slots — traffic spans
  // many AC half cycles, so frames cross every slot boundary — and retune
  // its maps downward, not just in the slot active when the hook was set.
  auto& est = network->estimator(1, 0);
  est.on_sound_frame(sim.now());
  ASSERT_TRUE(est.has_tone_maps());
  const int n_slots = channel->phy().tone_map_slots;
  std::vector<double> clean_ble;
  for (int s = 0; s < n_slots; ++s) clean_ble.push_back(est.ble_mbps(s));
  const std::uint64_t updates_before = est.update_count();

  network->medium().set_fault_pb_error(0.4);
  std::vector<int> slots_hit(static_cast<std::size_t>(n_slots), 0);
  network->medium().add_sniffer(
      [&](const SofRecord& sof) { ++slots_hit[static_cast<std::size_t>(sof.slot)]; });
  drive(200);

  for (int s = 0; s < n_slots; ++s) {
    EXPECT_GT(slots_hit[static_cast<std::size_t>(s)], 0) << "slot " << s;
  }
  // The error pressure forced retunes, and the ampstat-style measured
  // PBerr converged near the injected floor.
  EXPECT_GT(est.update_count(), updates_before);
  EXPECT_GT(est.measured_pberr(), 0.2);
  // Every slot's map retuned below its clean-channel rate: the panic
  // margin applies to all slots of the rebuilt set, not just the slot
  // that was active when the errors were observed.
  for (int s = 0; s < n_slots; ++s) {
    EXPECT_LT(est.ble_mbps(s), clean_ble[static_cast<std::size_t>(s)])
        << "slot " << s;
  }
}

TEST_F(LossyLinkFixture, FaultPbErrorClearRestoresCleanEstimation) {
  // set_fault_pb_error(0) must restore the clean channel: estimation
  // recovers once the expiry-driven retune sees error-free frames again.
  auto& est = network->estimator(1, 0);
  est.on_sound_frame(sim.now());
  network->medium().set_fault_pb_error(0.4);
  drive(200);
  const double faulted = est.average_ble_mbps();
  EXPECT_GT(est.measured_pberr(), 0.2);

  network->medium().set_fault_pb_error(0.0);
  EXPECT_DOUBLE_EQ(network->medium().fault_pb_error(), 0.0);
  // Ride past the 30 s tone-map expiry so the next frames force a retune
  // from clean statistics; the panic margin decays with each clean retune.
  sim.run_until(sim.now() + sim::seconds(40));
  drive(200);
  EXPECT_GT(est.average_ble_mbps(), faulted);
  EXPECT_LT(est.measured_pberr(), 0.1);
}

TEST_F(NetworkFixture, SlotAttributionAtHalfCycleBoundaries) {
  // slot_at() partitions the AC half cycle (10 ms) into tone_map_slots
  // equal windows: the first instant of the half cycle is slot 0, the last
  // nanosecond belongs to the final slot, and the next half cycle wraps
  // back to slot 0 — the boundaries the estimator's per-slot accounting
  // relies on when the fault hook errors frames near a slot edge.
  const int n_slots = channel->phy().tone_map_slots;
  const sim::Time half = grid::Mains::half_cycle();
  const sim::Time base = sim::seconds(100);  // aligned: 10 s = 1000 half cycles
  EXPECT_EQ(channel->slot_at(base), 0);
  EXPECT_EQ(channel->slot_at(base + half - sim::Time{1}), n_slots - 1);
  EXPECT_EQ(channel->slot_at(base + half), 0);
  for (int s = 0; s < n_slots; ++s) {
    // Slot s spans [ceil(half*s/n), ceil(half*(s+1)/n)) in integer ns.
    const auto start_ns = (half.ns() * s + n_slots - 1) / n_slots;
    const auto end_ns = (half.ns() * (s + 1) + n_slots - 1) / n_slots - 1;
    EXPECT_EQ(channel->slot_at(base + sim::Time{start_ns}), s) << "slot " << s;
    EXPECT_EQ(channel->slot_at(base + sim::Time{end_ns}), s)
        << "last tick of slot " << s;
  }
}

TEST_F(NetworkFixture, SnifferRemovalStopsDelivery) {
  int sofs = 0;
  const auto id = network->medium().add_sniffer([&](const SofRecord&) { ++sofs; });
  network->medium().remove_sniffer(id);
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1000;
  network->station(0).mac().enqueue(p);
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(sofs, 0);
}

}  // namespace
}  // namespace efd::plc

// Compiled with EFD_OBS_ENABLED=0 (see tests/CMakeLists.txt): the EFD_*
// macros must vanish entirely — no registrations, no allocations, no side
// effects — so shipping builds can compile out observability wholesale.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "src/obs/obs.hpp"

#if EFD_OBS_ENABLED
#error "obs_disabled_test must be compiled with EFD_OBS_ENABLED=0"
#endif

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Count every heap allocation in the process so the test can prove the
// disabled macros never touch the allocator.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace efd {
namespace {

TEST(ObsDisabledTest, MacrosAddZeroAllocations) {
  // Warm anything lazily initialized outside the measured window.
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    EFD_COUNTER_INC("disabled.counter");
    EFD_COUNTER_ADD("disabled.counter_add", i);
    EFD_GAUGE_SET("disabled.gauge", i * 0.5);
    EFD_HISTO_OBSERVE("disabled.histogram", i);
    EFD_TRACE_EVENT("disabled", "event");
    EFD_TRACE_SPAN("disabled", "span");
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST(ObsDisabledTest, MacrosRegisterNothing) {
  EFD_COUNTER_INC("disabled.should_not_exist");
  EFD_GAUGE_SET("disabled.gauge_should_not_exist", 1.0);
  EFD_HISTO_OBSERVE("disabled.histo_should_not_exist", 1.0);
  const std::string json = obs::snapshot_json();
  EXPECT_EQ(json.find("disabled."), std::string::npos);
}

TEST(ObsDisabledTest, MacroArgumentsAreNotEvaluated) {
  int evaluations = 0;
  const auto count = [&evaluations] { return ++evaluations; };
  (void)count;  // referenced only inside macros that expand to nothing
  EFD_COUNTER_ADD("disabled.arg", count());
  EFD_GAUGE_SET("disabled.arg", count());
  EFD_HISTO_OBSERVE("disabled.arg", count());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace efd

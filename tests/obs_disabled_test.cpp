// Compiled with EFD_OBS_ENABLED=0 (see tests/CMakeLists.txt): the EFD_*
// macros must vanish entirely — no registrations, no allocations, no side
// effects — so shipping builds can compile out observability wholesale.
#include <gtest/gtest.h>

#include <string>

#include "alloc_count.hpp"
#include "src/obs/obs.hpp"

#if EFD_OBS_ENABLED
#error "obs_disabled_test must be compiled with EFD_OBS_ENABLED=0"
#endif

namespace efd {
namespace {

TEST(ObsDisabledTest, MacrosAddZeroAllocations) {
  // Warm anything lazily initialized outside the measured window.
  const testsupport::AllocationWindow window;
  for (int i = 0; i < 10000; ++i) {
    EFD_COUNTER_INC("disabled.counter");
    EFD_COUNTER_ADD("disabled.counter_add", i);
    EFD_GAUGE_SET("disabled.gauge", i * 0.5);
    EFD_HISTO_OBSERVE("disabled.histogram", i);
    EFD_TRACE_EVENT("disabled", "event");
    EFD_TRACE_SPAN("disabled", "span");
    EFD_PROF_SCOPE("disabled.prof");
  }
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(window.bytes(), 0u);
}

TEST(ObsDisabledTest, ProfScopeIsAnEmptyClass) {
  // The compiled-out ProfScope must carry no state: if it grew any, the
  // EFD_PROF_SCOPE expansion would no longer be free in disabled builds.
  // (The absent-"profile"-key and no-profiler-symbols properties need the
  // whole project built with EFD_OBS_ENABLED=0 — the CI compile-out leg
  // asserts those with nm on bench_micro_kernels.)
  EXPECT_EQ(sizeof(obs::ProfScope), 1u);  // empty class minimum
}

TEST(ObsDisabledTest, MacrosRegisterNothing) {
  EFD_COUNTER_INC("disabled.should_not_exist");
  EFD_GAUGE_SET("disabled.gauge_should_not_exist", 1.0);
  EFD_HISTO_OBSERVE("disabled.histo_should_not_exist", 1.0);
  const std::string json = obs::snapshot_json();
  EXPECT_EQ(json.find("disabled."), std::string::npos);
}

TEST(ObsDisabledTest, MacroArgumentsAreNotEvaluated) {
  int evaluations = 0;
  const auto count = [&evaluations] { return ++evaluations; };
  (void)count;  // referenced only inside macros that expand to nothing
  EFD_COUNTER_ADD("disabled.arg", count());
  EFD_GAUGE_SET("disabled.arg", count());
  EFD_HISTO_OBSERVE("disabled.arg", count());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace efd

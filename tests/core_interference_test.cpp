#include "src/core/interference.hpp"

#include <gtest/gtest.h>

#include "src/net/sources.hpp"
#include "src/plc/network.hpp"

namespace efd::core {
namespace {

sim::Time at(int i) { return sim::seconds(i); }

TEST(InterferenceDetector, QuietLinkNeverFlags) {
  InterferenceDetector det;
  for (int i = 0; i < 100; ++i) {
    det.on_sample(120.0, 0.001, at(i));
  }
  EXPECT_FALSE(det.interference_suspected());
  EXPECT_EQ(det.flagged_samples(), 0u);
}

TEST(InterferenceDetector, CollisionSignatureFlags) {
  InterferenceDetector det;
  for (int i = 0; i < 10; ++i) det.on_sample(120.0, 0.0, at(i));
  // Background traffic activates: BLE sags, measured PBerr stays elevated.
  for (int i = 10; i < 20; ++i) det.on_sample(85.0, 0.08, at(i));
  EXPECT_TRUE(det.interference_suspected());
  EXPECT_GT(det.flagged_samples(), 0u);
}

TEST(InterferenceDetector, ErrorsWithoutBleDeclineDoNotFlag) {
  // A link that always ran at this BLE with modest errors: no signature.
  InterferenceDetector det;
  for (int i = 0; i < 50; ++i) det.on_sample(60.0, 0.05, at(i));
  EXPECT_FALSE(det.interference_suspected());
}

TEST(InterferenceDetector, BleDeclineWithoutErrorsDoesNotFlag) {
  // Channel genuinely degraded and the estimator retuned cleanly: errors
  // stay low, so this is a channel change, not interference.
  InterferenceDetector det;
  for (int i = 0; i < 10; ++i) det.on_sample(120.0, 0.0, at(i));
  for (int i = 10; i < 30; ++i) det.on_sample(80.0, 0.002, at(i));
  EXPECT_FALSE(det.interference_suspected());
}

TEST(InterferenceDetector, RequiresConsecutiveConfirmation) {
  InterferenceDetector::Config cfg;
  cfg.confirm_samples = 3;
  InterferenceDetector det(cfg);
  for (int i = 0; i < 10; ++i) det.on_sample(120.0, 0.0, at(i));
  det.on_sample(80.0, 0.1, at(10));
  det.on_sample(80.0, 0.1, at(11));
  EXPECT_FALSE(det.interference_suspected());  // only 2 in a row
  det.on_sample(120.0, 0.0, at(12));           // streak broken
  det.on_sample(80.0, 0.1, at(13));
  det.on_sample(80.0, 0.1, at(14));
  EXPECT_FALSE(det.interference_suspected());
  det.on_sample(80.0, 0.1, at(15));
  EXPECT_TRUE(det.interference_suspected());
}

TEST(InterferenceDetector, PeakLeaksSoChronicDeclineStopsFlagging) {
  InterferenceDetector det;
  for (int i = 0; i < 10; ++i) det.on_sample(120.0, 0.0, at(i));
  // Long-lived lower plateau with errors: flags at first...
  for (int i = 10; i < 20; ++i) det.on_sample(80.0, 0.05, at(i));
  EXPECT_TRUE(det.interference_suspected());
  // ...but after hundreds of samples the leaked peak approaches the
  // plateau and the "decline" evidence evaporates.
  for (int i = 20; i < 800; ++i) det.on_sample(80.0, 0.05, at(i));
  EXPECT_FALSE(det.interference_suspected());
}

TEST(InterferenceDetector, ResetClearsState) {
  InterferenceDetector det;
  for (int i = 0; i < 10; ++i) det.on_sample(120.0, 0.0, at(i));
  for (int i = 10; i < 20; ++i) det.on_sample(80.0, 0.1, at(i));
  ASSERT_TRUE(det.interference_suspected());
  det.reset();
  EXPECT_FALSE(det.interference_suspected());
  EXPECT_EQ(det.flagged_samples(), 0u);
}

/// End-to-end: the detector fed from live MMs flags a capture-effect
/// contention scenario and stays quiet without it.
TEST(InterferenceDetector, EndToEndOnPowerStrip) {
  sim::Simulator sim;
  grid::PowerGrid grid;
  const int strip = grid.add_node("strip");
  plc::PlcChannel channel(grid, plc::PhyParams::hpav());
  plc::PlcNetwork network(sim, channel, sim::Rng{9}, plc::PlcNetwork::Config{});
  // Probe pair 0->1 close together; background pair 2->3 behind a lossy
  // sub-panel, so the probe's receiver *captures* colliding probe frames
  // (its own signal is >>10 dB above the interference) and decodes them
  // with errored PBs.
  int outlets[4];
  const double branch[4] = {2.0, 3.0, 40.0, 42.0};
  // The probe link sits at ~30 dB SNR (demotable under error pressure);
  // the background transmitter reaches the probe receiver ~13 dB weaker.
  const double panel[4] = {26.0, 0.0, 42.0, 0.0};
  for (int i = 0; i < 4; ++i) {
    outlets[i] = grid.add_node("o" + std::to_string(i));
    grid.add_cable(strip, outlets[i], branch[i], panel[i]);
    channel.attach_station(i, outlets[i]);
    network.add_station(i, outlets[i]);
  }
  // Background receiver sits on the same sub-panel as its transmitter.
  grid.add_cable(outlets[2], outlets[3], 2.0);

  net::ProbeSource::Config pcfg;
  pcfg.src = 0;
  pcfg.dst = 1;
  pcfg.interval = sim::milliseconds(75);
  pcfg.packet_bytes = 1500;
  net::ProbeSource probes(sim, network.station(0).mac(), pcfg);
  probes.run(sim::Time{}, sim::seconds(120));

  net::UdpSource::Config bcfg;
  bcfg.src = 2;
  bcfg.dst = 3;
  bcfg.rate_bps = 400e6;
  net::UdpSource background(sim, network.station(2).mac(), bcfg);
  background.run(sim::seconds(60), sim::seconds(120));

  // The ampstat reading is jumpy (the EWMA is relaxed at every retune), so
  // detect on a lower floor with a short confirmation streak.
  InterferenceDetector::Config dcfg;
  dcfg.pberr_floor = 0.004;
  dcfg.confirm_samples = 2;
  InterferenceDetector det(dcfg);
  bool flagged_before = false, flagged_during = false;
  for (int s = 2; s < 120; s += 2) {
    sim.run_until(sim::seconds(s));
    det.on_sample(network.mm_average_ble(0, 1), network.mm_pberr(0, 1),
                  sim.now());
    if (s < 60) flagged_before |= det.interference_suspected();
    if (s > 80) flagged_during |= det.interference_suspected();
  }
  EXPECT_FALSE(flagged_before);
  EXPECT_TRUE(flagged_during);
}

}  // namespace
}  // namespace efd::core

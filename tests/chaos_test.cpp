// Chaos harness (ISSUE 4 tentpole): scripted fault storms against the full
// hybrid stack — real PLC + WiFi MACs on the Fig. 2 testbed, a HybridDevice
// pair with health-monitored failover — asserting the recovery invariants:
//
//   * delivery never stops while at least one medium survives;
//   * the app layer sees no duplicate or out-of-order packet, faults or not;
//   * a tripped member rejoins within the reprobe budget of the fault
//     clearing, and the fault/recovery trace is byte-identical across runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/fault/injector.hpp"
#include "src/hybrid/device.hpp"
#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/testbed/experiment.hpp"

namespace efd {
namespace {

struct Pair {
  int src = -1;
  int dst = -1;
};

/// A pair where both mediums hold a usable link, so failover has a genuine
/// survivor to fall back on.
Pair pick_pair(testbed::Testbed& tb, sim::Time now) {
  for (const auto& [a, b] : tb.plc_links()) {
    const double plc_snr = tb.plc_channel().mean_snr_db(a, b, 0, now);
    const double wifi_snr = tb.wifi().channel().mean_snr_db(a, b);
    if (plc_snr > 22.0 && wifi_snr > 16.0) return {a, b};
  }
  return {tb.plc_links().front().first, tb.plc_links().front().second};
}

hybrid::HybridDevice::FailoverConfig failover_config(int src, int dst,
                                                     fault::FaultInjector& inj) {
  hybrid::HybridDevice::FailoverConfig fc;
  fc.self = src;
  fc.peer = dst;
  fc.health.probe_interval = sim::milliseconds(100);
  fc.health.probe_timeout = sim::milliseconds(60);
  fc.health.trip_threshold = 3;
  fc.health.backoff_initial = sim::milliseconds(200);
  fc.health.backoff_max = sim::seconds(1);
  fc.health.recovery_successes = 2;
  fc.seed = 0xFEED;
  // Every breaker transition flows into the injector's recovery trace
  // (member 0 = PLC, member 1 = WiFi).
  fc.on_transition = [&inj](int m, fault::HealthMonitor::State s, sim::Time) {
    using State = fault::HealthMonitor::State;
    const auto kind =
        m == 0 ? fault::FaultKind::kPlcBlackout : fault::FaultKind::kWifiJam;
    if (s == State::kOpen) inj.record(fault::FaultPhase::kTrip, kind, m);
    if (s == State::kHalfOpen) inj.record(fault::FaultPhase::kHalfOpen, kind, m);
    if (s == State::kClosed) inj.record(fault::FaultPhase::kRecover, kind, m);
  };
  return fc;
}

struct BlackoutRun {
  std::string trace;
  std::uint64_t delivered = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t pre_fault = 0;      ///< delivered in [0 s, 4 s)
  std::uint64_t during_fault = 0;   ///< delivered in [4.5 s, 8 s)
  std::uint64_t post_recovery = 0;  ///< delivered in [9.5 s, 13 s)
  std::uint64_t trips = 0;
  std::uint64_t recoveries = 0;
  std::int64_t recovered_at_ns = -1;  ///< first kClosed after the trip, rel. t0
};

/// 13 s of 12 Mb/s UDP over the hybrid pair with a total PLC blackout in
/// [4 s, 8 s).
BlackoutRun run_blackout_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  testbed::Testbed::Config tcfg;
  tcfg.seed = seed;
  tcfg.with_hpav500 = false;
  testbed::Testbed tb(sim, tcfg);
  sim.run_until(testbed::weekday_afternoon());
  const Pair pair = pick_pair(tb, sim.now());

  // Warm the PLC estimator, then take the capacity baselines.
  (void)testbed::measure_plc_throughput(tb, pair.src, pair.dst, sim::seconds(3));
  const auto plc_cap =
      testbed::measure_plc_throughput(tb, pair.src, pair.dst, sim::seconds(2));
  const auto wifi_cap =
      testbed::measure_wifi_throughput(tb, pair.src, pair.dst, sim::seconds(2));

  const sim::Time t0 = sim.now();
  hybrid::HybridDevice tx(
      sim, {&tb.plc_station(pair.src).mac(), &tb.wifi_station(pair.src)},
      std::make_unique<hybrid::CapacityScheduler>(sim::Rng{3}));
  hybrid::HybridDevice rx(
      sim, {&tb.plc_station(pair.dst).mac(), &tb.wifi_station(pair.dst)},
      std::make_unique<hybrid::RoundRobinScheduler>(2));

  BlackoutRun r;
  net::OrderMeter order;
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    order.on_packet(p, t);
    ++r.delivered;
    const sim::Time rel = t - t0;
    if (rel < sim::seconds(4)) ++r.pre_fault;
    if (rel >= sim::milliseconds(4500) && rel < sim::seconds(8)) ++r.during_fault;
    if (rel >= sim::milliseconds(9500) && rel < sim::seconds(13)) ++r.post_recovery;
  });
  rx.start_receiving();
  tx.set_capacities({plc_cap.mean_mbps, wifi_cap.mean_mbps});

  fault::FaultInjector inj(sim);
  plc::PlcMedium& plc_medium = tb.plc_network_of(pair.src).medium();
  inj.set_hooks(
      fault::FaultKind::kPlcBlackout,
      {[&](const fault::FaultSpec& s, sim::Time t) {
         plc_medium.set_fault_pb_error(s.severity);
         // The surge also invalidates the link's negotiated tone maps.
         tb.plc_network_of(pair.src).estimator(pair.dst, pair.src)
             .invalidate_tone_maps(t);
       },
       [&](const fault::FaultSpec&, sim::Time) {
         plc_medium.set_fault_pb_error(0.0);
       }});

  tx.enable_failover(failover_config(pair.src, pair.dst, inj));
  fault::FaultPlan plan;
  plan.blackout(t0 + sim::seconds(4), sim::seconds(4), /*target=*/0,
                /*severity=*/1.0);
  inj.install(plan);

  net::UdpSource::Config scfg;
  scfg.src = pair.src;
  scfg.dst = pair.dst;
  scfg.rate_bps = 12e6;
  scfg.packet_bytes = 1316;
  net::UdpSource source(sim, tx, scfg);
  source.run(t0, t0 + sim::seconds(13));
  sim.run_until(t0 + sim::seconds(14));

  r.out_of_order = order.out_of_order();
  r.trips = tx.monitor(0).trips();
  r.recoveries = tx.monitor(0).recoveries();
  // First PLC-member recovery after the blackout onset at t0 + 4 s.
  for (const fault::FaultEvent& e : inj.trace()) {
    if (e.phase == fault::FaultPhase::kRecover && e.target == 0 &&
        e.t > t0 + sim::seconds(4)) {
      r.recovered_at_ns = (e.t - t0).ns();
      break;
    }
  }
  r.trace = inj.trace_lines();
  return r;
}

TEST(ChaosBlackout, FailsOverAndRecovers) {
  const BlackoutRun r = run_blackout_scenario(/*seed=*/42);

  // Ordering invariant: the app layer never sees duplicate or out-of-order
  // delivery, blackout or not.
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_GT(r.delivered, 1000u);

  // The PLC breaker tripped during the blackout and closed again after it.
  EXPECT_GE(r.trips, 1u);
  EXPECT_GE(r.recoveries, 1u);

  // Graceful degradation: traffic kept flowing on the WiFi survivor while
  // the PLC medium was dead...
  EXPECT_GT(r.pre_fault, 0u);
  EXPECT_GT(r.during_fault, 0u);
  // ...and aggregate delivery resumed after the fault cleared.
  EXPECT_GT(r.post_recovery, 0u);

  // Recovery deadline: the member rejoined within the reprobe budget
  // (backoff cap 1 s + jitter + 2 recovery probes) of the 8 s clear.
  ASSERT_GE(r.recovered_at_ns, 0);
  EXPECT_LE(r.recovered_at_ns, sim::milliseconds(8000 + 2500).ns());
}

TEST(ChaosBlackout, TraceIsByteIdenticalAcrossRuns) {
  const BlackoutRun a = run_blackout_scenario(/*seed=*/42);
  const BlackoutRun b = run_blackout_scenario(/*seed=*/42);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.during_fault, b.during_fault);
}

TEST(ChaosStorm, ScriptedStormDegradesGracefullyAndDrains) {
  sim::Simulator sim;
  testbed::Testbed::Config tcfg;
  tcfg.seed = 42;
  tcfg.with_hpav500 = false;
  testbed::Testbed tb(sim, tcfg);
  sim.run_until(testbed::weekday_afternoon());
  const Pair pair = pick_pair(tb, sim.now());

  (void)testbed::measure_plc_throughput(tb, pair.src, pair.dst, sim::seconds(3));
  const auto plc_cap =
      testbed::measure_plc_throughput(tb, pair.src, pair.dst, sim::seconds(2));
  const auto wifi_cap =
      testbed::measure_wifi_throughput(tb, pair.src, pair.dst, sim::seconds(2));

  const sim::Time t0 = sim.now();
  hybrid::HybridDevice tx(
      sim, {&tb.plc_station(pair.src).mac(), &tb.wifi_station(pair.src)},
      std::make_unique<hybrid::CapacityScheduler>(sim::Rng{3}));
  hybrid::HybridDevice rx(
      sim, {&tb.plc_station(pair.dst).mac(), &tb.wifi_station(pair.dst)},
      std::make_unique<hybrid::RoundRobinScheduler>(2));

  net::OrderMeter order;
  std::uint64_t delivered = 0, after_storm = 0;
  const sim::Time storm_end = t0 + sim::seconds(8);
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    order.on_packet(p, t);
    ++delivered;
    if (t >= storm_end + sim::seconds(2)) ++after_storm;
  });
  rx.start_receiving();
  tx.set_capacities({plc_cap.mean_mbps, wifi_cap.mean_mbps});

  fault::FaultInjector inj(sim);
  plc::PlcMedium& plc_medium = tb.plc_network_of(pair.src).medium();
  wifi::WifiMedium& wifi_medium = tb.wifi().medium();
  inj.set_hooks(fault::FaultKind::kPacketCorruption,
                {[&](const fault::FaultSpec& s, sim::Time) {
                   plc_medium.set_fault_pb_error(s.severity);
                 },
                 [&](const fault::FaultSpec&, sim::Time) {
                   plc_medium.set_fault_pb_error(0.0);
                 }});
  inj.set_hooks(fault::FaultKind::kWifiJam,
                {[&](const fault::FaultSpec& s, sim::Time) {
                   wifi_medium.set_jamming_db(40.0 * s.severity);
                 },
                 [&](const fault::FaultSpec&, sim::Time) {
                   wifi_medium.set_jamming_db(0.0);
                 }});
  inj.set_hooks(fault::FaultKind::kQueueStall,
                {[&](const fault::FaultSpec& s, sim::Time) {
                   if (s.target % 2 == 0) {
                     tb.plc_station(pair.src).mac().set_stalled(true);
                   } else {
                     tb.wifi_station(pair.src).set_stalled(true);
                   }
                 },
                 [&](const fault::FaultSpec& s, sim::Time) {
                   if (s.target % 2 == 0) {
                     tb.plc_station(pair.src).mac().set_stalled(false);
                   } else {
                     tb.wifi_station(pair.src).set_stalled(false);
                   }
                 }});
  inj.set_hooks(fault::FaultKind::kModemReset,
                {[&](const fault::FaultSpec&, sim::Time) {
                   tb.plc_station(pair.src).mac().reset_modem();
                   tb.plc_network_of(pair.src)
                       .reset_link_estimation(pair.src, pair.dst);
                 },
                 {}});

  tx.enable_failover(failover_config(pair.src, pair.dst, inj));

  fault::FaultPlan::StormConfig storm;
  storm.start = t0 + sim::seconds(1);
  storm.horizon = storm_end - sim::seconds(1);  // every onset well inside
  storm.n_faults = 6;
  storm.min_duration = sim::milliseconds(300);
  storm.max_duration = sim::milliseconds(900);
  storm.n_targets = 2;
  storm.kinds = {fault::FaultKind::kPacketCorruption, fault::FaultKind::kWifiJam,
                 fault::FaultKind::kQueueStall, fault::FaultKind::kModemReset};
  const fault::FaultPlan plan = fault::FaultPlan::random_storm(sim::Rng{99}, storm);
  inj.install(plan);

  net::UdpSource::Config scfg;
  scfg.src = pair.src;
  scfg.dst = pair.dst;
  scfg.rate_bps = 12e6;
  scfg.packet_bytes = 1316;
  net::UdpSource source(sim, tx, scfg);
  source.run(t0, storm_end + sim::seconds(5));
  sim.run_until(storm_end + sim::seconds(6));

  // Every duration-bearing fault was applied and cleared.
  EXPECT_EQ(inj.active_faults(), 0);
  EXPECT_GE(inj.faults_applied(), 6u);

  // Ordering invariant holds through arbitrary overlapping faults.
  EXPECT_EQ(order.out_of_order(), 0u);

  // Delivery survived the storm and continues after it drains.
  EXPECT_GT(delivered, 1000u);
  EXPECT_GT(after_storm, 0u);

  // With every fault cleared and the grace period elapsed, both members
  // are live again (trip-and-stay-dead would violate graceful recovery).
  EXPECT_TRUE(tx.member_live(0));
  EXPECT_TRUE(tx.member_live(1));
}

}  // namespace
}  // namespace efd

#include "src/core/probing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace efd::core {
namespace {

std::vector<BleSample> constant_trace(double ble, double seconds,
                                      sim::Time step = sim::milliseconds(50)) {
  std::vector<BleSample> trace;
  for (sim::Time t{}; t < sim::seconds(seconds); t += step) {
    trace.push_back({t, ble});
  }
  return trace;
}

TEST(LinkQualityClassifier, PaperThresholds) {
  const LinkQualityClassifier c;
  EXPECT_EQ(c.classify(30.0), LinkQuality::kBad);
  EXPECT_EQ(c.classify(59.9), LinkQuality::kBad);
  EXPECT_EQ(c.classify(60.0), LinkQuality::kAverage);
  EXPECT_EQ(c.classify(100.0), LinkQuality::kAverage);
  EXPECT_EQ(c.classify(100.1), LinkQuality::kGood);
  EXPECT_EQ(c.classify(150.0), LinkQuality::kGood);
}

TEST(FixedIntervalPolicy, IgnoresQuality) {
  const FixedIntervalPolicy p{sim::seconds(5)};
  EXPECT_EQ(p.interval(10.0), sim::seconds(5));
  EXPECT_EQ(p.interval(140.0), sim::seconds(5));
}

TEST(QualityAdaptivePolicy, PaperIntervals) {
  const QualityAdaptivePolicy p;
  EXPECT_EQ(p.interval(30.0), sim::seconds(5));    // bad: base
  EXPECT_EQ(p.interval(80.0), sim::seconds(40));   // average: 8x slower
  EXPECT_EQ(p.interval(140.0), sim::seconds(80));  // good: 16x slower
}

TEST(EvaluatePolicy, ConstantTraceHasZeroError) {
  const auto trace = constant_trace(100.0, 60.0);
  const auto eval = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(5)});
  ASSERT_FALSE(eval.errors_mbps.empty());
  for (double e : eval.errors_mbps) EXPECT_DOUBLE_EQ(e, 0.0);
  EXPECT_EQ(eval.probes, 12u);
  EXPECT_DOUBLE_EQ(eval.mean_error(), 0.0);
}

TEST(EvaluatePolicy, ProbeCountScalesInverselyWithInterval) {
  const auto trace = constant_trace(100.0, 160.0);
  const auto fast = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(5)});
  const auto slow = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(80)});
  EXPECT_EQ(fast.probes, 32u);
  EXPECT_EQ(slow.probes, 2u);
}

TEST(EvaluatePolicy, AdaptiveReducesOverheadOnGoodLinks) {
  const auto trace = constant_trace(140.0, 160.0);
  const auto fixed = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(5)});
  const auto adaptive = evaluate_policy(trace, QualityAdaptivePolicy{});
  EXPECT_LT(adaptive.probes * 10, fixed.probes);  // 16x fewer probes
}

TEST(EvaluatePolicy, AdaptiveKeepsBadLinksAtBaseRate) {
  const auto trace = constant_trace(20.0, 160.0);
  const auto fixed = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(5)});
  const auto adaptive = evaluate_policy(trace, QualityAdaptivePolicy{});
  EXPECT_EQ(adaptive.probes, fixed.probes);
}

TEST(EvaluatePolicy, StepTraceShowsEstimationError) {
  // BLE steps from 100 to 60 halfway through a long blind window.
  std::vector<BleSample> trace;
  for (sim::Time t{}; t < sim::seconds(80); t += sim::milliseconds(50)) {
    trace.push_back({t, t < sim::seconds(40) ? 100.0 : 60.0});
  }
  const auto slow = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(80)});
  ASSERT_EQ(slow.errors_mbps.size(), 1u);
  EXPECT_NEAR(slow.errors_mbps[0], 20.0, 0.5);  // estimate 100, truth ~80
  const auto fast = evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(5)});
  EXPECT_LT(fast.mean_error(), slow.mean_error());
}

TEST(EvaluatePolicy, EmptyTrace) {
  const auto eval = evaluate_policy({}, FixedIntervalPolicy{sim::seconds(5)});
  EXPECT_EQ(eval.probes, 0u);
  EXPECT_TRUE(eval.errors_mbps.empty());
}

TEST(EvaluatePolicy, AdaptiveTracksQualityChanges) {
  // A link that degrades from good to bad mid-trace: the adaptive policy
  // probes slowly at first, then falls back to the base interval.
  std::vector<BleSample> trace;
  for (sim::Time t{}; t < sim::seconds(200); t += sim::milliseconds(50)) {
    trace.push_back({t, t < sim::seconds(100) ? 140.0 : 30.0});
  }
  const auto eval = evaluate_policy(trace, QualityAdaptivePolicy{});
  // First half: 2 probes (80 s apart); second half: 8 probes (5 s apart
  // once the drop is noticed at t = 160 s).
  EXPECT_GE(eval.probes, 9u);
  EXPECT_LE(eval.probes, 12u);
}

class IntervalSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSweep, ErrorsAreNonNegativeAndBounded) {
  std::vector<BleSample> trace;
  for (sim::Time t{}; t < sim::seconds(120); t += sim::milliseconds(50)) {
    trace.push_back({t, 80.0 + 20.0 * std::sin(t.seconds() / 7.0)});
  }
  const auto eval =
      evaluate_policy(trace, FixedIntervalPolicy{sim::seconds(GetParam())});
  for (double e : eval.errors_mbps) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 40.0);  // bounded by the trace swing
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, IntervalSweep, ::testing::Values(1, 5, 20, 80));

}  // namespace
}  // namespace efd::core

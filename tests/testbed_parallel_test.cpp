#include "src/testbed/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/testbed/experiment.hpp"
#include "src/testbed/testbed.hpp"

namespace efd::testbed {
namespace {

TEST(ParallelRunner, MapCollectsResultsByIndex) {
  const ParallelRunner pool(4);
  const auto out = pool.map<int>(64, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, RunVisitsEveryTaskExactlyOnce) {
  const ParallelRunner pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.run(50, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, ZeroTasksIsANoop) {
  const ParallelRunner pool(4);
  pool.run(0, [](int) { FAIL() << "no task should run"; });
}

TEST(ParallelRunner, TaskExceptionIsRethrown) {
  const ParallelRunner pool(4);
  EXPECT_THROW(pool.run(16,
                        [](int i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
}

TEST(ParallelRunner, DefaultThreadCountIsPositive) {
  EXPECT_GE(ParallelRunner().thread_count(), 1);
  EXPECT_EQ(ParallelRunner(5).thread_count(), 5);
}

/// The contract that makes the figure-bench fan-out safe: a task that
/// builds its own Simulator + Testbed is a pure function of its index, so
/// the result vector is bit-identical for any worker count.
double per_task_testbed_metric(int i) {
  sim::Simulator sim;
  Testbed::Config cfg;
  cfg.with_hpav500 = false;
  Testbed tb(sim, cfg);
  sim.run_until(weekday_afternoon());
  const auto& links = tb.plc_links();
  const auto& [a, b] = links[static_cast<std::size_t>(i) % links.size()];
  const auto snr = tb.plc_channel().snr_db(a, b, i % 6, sim.now());
  return std::accumulate(snr.begin(), snr.end(), 0.0);
}

TEST(ParallelRunner, PerTaskTestbedsAreBitIdenticalAcrossWorkerCounts) {
  constexpr int kTasks = 6;
  const auto serial =
      ParallelRunner(1).map<double>(kTasks, per_task_testbed_metric);
  const auto parallel =
      ParallelRunner(4).map<double>(kTasks, per_task_testbed_metric);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int i = 0; i < kTasks; ++i) {
    // Exact equality on purpose: parallelism may change wall-clock only,
    // never output.
    EXPECT_EQ(serial[static_cast<std::size_t>(i)],
              parallel[static_cast<std::size_t>(i)])
        << "task " << i;
  }
}

/// Same metric as per_task_testbed_metric but on a runner-provided (reset)
/// simulator, the worker-reuse formulation.
double reused_sim_testbed_metric(int i, sim::Simulator& sim) {
  Testbed::Config cfg;
  cfg.with_hpav500 = false;
  Testbed tb(sim, cfg);
  sim.run_until(weekday_afternoon());
  const auto& links = tb.plc_links();
  const auto& [a, b] = links[static_cast<std::size_t>(i) % links.size()];
  const auto snr = tb.plc_channel().snr_db(a, b, i % 6, sim.now());
  return std::accumulate(snr.begin(), snr.end(), 0.0);
}

TEST(ParallelRunner, ReusedWorkerSimulatorsMatchPerTaskConstruction) {
  // Simulator::reset must make a reused engine indistinguishable from a
  // fresh one: same results for every task, any worker count.
  constexpr int kTasks = 6;
  const auto fresh =
      ParallelRunner(1).map<double>(kTasks, per_task_testbed_metric);
  const auto reused_serial =
      ParallelRunner(1).map_with_sim<double>(kTasks, reused_sim_testbed_metric);
  const auto reused_parallel =
      ParallelRunner(4).map_with_sim<double>(kTasks, reused_sim_testbed_metric);
  ASSERT_EQ(fresh.size(), reused_serial.size());
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(fresh[static_cast<std::size_t>(i)],
              reused_serial[static_cast<std::size_t>(i)])
        << "task " << i;
    EXPECT_EQ(fresh[static_cast<std::size_t>(i)],
              reused_parallel[static_cast<std::size_t>(i)])
        << "task " << i;
  }
}

TEST(ParallelRunner, RunWithSimResetsBetweenTasks) {
  const ParallelRunner pool(1);
  std::vector<std::uint64_t> dispatched;
  pool.run_with_sim(3, [&](int, sim::Simulator& sim) {
    EXPECT_EQ(sim.now(), sim::Time{});
    EXPECT_EQ(sim.events_dispatched(), 0u);
    for (int k = 0; k < 5; ++k) sim.after(sim::seconds(k + 1), [] {});
    sim.run();
    dispatched.push_back(sim.events_dispatched());
  });
  ASSERT_EQ(dispatched.size(), 3u);
  for (const auto d : dispatched) EXPECT_EQ(d, 5u);
}

}  // namespace
}  // namespace efd::testbed

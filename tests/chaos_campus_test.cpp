// Campus-scale fault domains (DESIGN.md §15): board blackouts/brownouts and
// boundary-link partitions injected at shard horizons, with the acceptance
// gates of PR 9 — fault traces and per-board digests byte-identical across
// shard counts, checkpoint -> restore -> replay reproducing the
// uninterrupted run's digests exactly, and corrupted checkpoints rejected.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/grid/campus.hpp"
#include "src/sim/checkpoint.hpp"
#include "src/sim/rng.hpp"
#include "src/testbed/campus.hpp"

namespace efd::testbed {
namespace {

/// 5 boards over 2 buildings: small enough for tier-like runtimes, big
/// enough to have both backbone and WiFi-bridge crossings.
CampusRunConfig small_campus(int n_shards) {
  CampusRunConfig cfg;
  cfg.campus.n_outlets = 60;
  cfg.campus.outlets_per_board = 12;
  cfg.campus.stations_per_board = 3;
  cfg.campus.boards_per_building = 3;
  cfg.campus.seed = 42;
  cfg.n_shards = n_shards;
  cfg.duration = sim::milliseconds(80);
  cfg.p_remote = 0.4;
  return cfg;
}

/// First link of each boundary kind in the generated topology (-1 if the
/// campus has none of that kind).
struct LinkPick {
  int bridge = -1;
  int backbone = -1;
};

LinkPick pick_links(const grid::CampusConfig& cc) {
  const grid::CampusTopology topo = grid::CampusTopology::generate(cc);
  LinkPick pick;
  for (std::size_t i = 0; i < topo.links().size(); ++i) {
    const auto& l = topo.links()[i];
    if (l.kind == grid::BoundaryKind::kWifiBridge && pick.bridge < 0) {
      pick.bridge = static_cast<int>(i);
    }
    if (l.kind == grid::BoundaryKind::kPlcBackbone && pick.backbone < 0) {
      pick.backbone = static_cast<int>(i);
    }
  }
  return pick;
}

/// A deliberate storm touching every fault-domain kind: one board dies, one
/// browns out, a bridge and a backbone crossing are both severed.
CampusRunConfig stormy_campus(int n_shards) {
  CampusRunConfig cfg = small_campus(n_shards);
  const LinkPick pick = pick_links(cfg.campus);
  cfg.faults.board_blackout(sim::milliseconds(20), sim::milliseconds(25), 1)
      .board_brownout(sim::milliseconds(30), sim::milliseconds(30), 3, 0.6);
  if (pick.bridge >= 0) {
    cfg.faults.link_partition(sim::milliseconds(25), sim::milliseconds(30),
                              pick.bridge);
  }
  if (pick.backbone >= 0) {
    cfg.faults.link_partition(sim::milliseconds(35), sim::milliseconds(20),
                              pick.backbone);
  }
  return cfg;
}

// --- Shard-count invariance under faults -----------------------------------

TEST(ChaosCampus, StormTracesAndDigestsAreShardCountInvariant) {
  const CampusResult r1 = run_campus(stormy_campus(1));
  ASSERT_GT(r1.events, 0u);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r1.fault_events, 0u);
  ASSERT_FALSE(r1.fault_trace.empty());
  ASSERT_EQ(r1.board_digests.size(), 5u);
  // The blackout board must actually have dropped ingress while dead.
  EXPECT_GT(r1.dead_drops, 0u);
  for (const int shards : {2, 4}) {
    const CampusResult r = run_campus(stormy_campus(shards));
    EXPECT_EQ(r.digest, r1.digest) << "shards=" << shards;
    EXPECT_EQ(r.board_digests, r1.board_digests) << "shards=" << shards;
    EXPECT_EQ(r.fault_trace, r1.fault_trace) << "shards=" << shards;
    EXPECT_EQ(r.fault_events, r1.fault_events) << "shards=" << shards;
    EXPECT_EQ(r.dead_drops, r1.dead_drops) << "shards=" << shards;
    EXPECT_EQ(r.partition_drops, r1.partition_drops) << "shards=" << shards;
    EXPECT_EQ(r.failovers, r1.failovers) << "shards=" << shards;
    EXPECT_EQ(r.failbacks, r1.failbacks) << "shards=" << shards;
  }
}

TEST(ChaosCampus, StormChangesTheDigestButNotTheFaultFreeOne) {
  const CampusResult clean = run_campus(small_campus(2));
  const CampusResult storm = run_campus(stormy_campus(2));
  // Faults must bite: a dead board and severed crossings change delivery.
  EXPECT_NE(storm.digest, clean.digest);
  EXPECT_EQ(clean.fault_events, 0u);
  EXPECT_TRUE(clean.fault_trace.empty());
  EXPECT_EQ(clean.dead_drops, 0u);
  EXPECT_EQ(clean.partition_drops + clean.failovers, 0u);
}

TEST(ChaosCampus, BridgePartitionFailsOverToTheBackbone) {
  CampusRunConfig cfg = small_campus(2);
  const LinkPick pick = pick_links(cfg.campus);
  ASSERT_GE(pick.bridge, 0) << "campus has no WiFi bridge to partition";
  cfg.faults.link_partition(sim::milliseconds(10), sim::milliseconds(50),
                            pick.bridge);
  const CampusResult r = run_campus(cfg);
  // The bridge has a powerline fallback, so the partition reroutes instead
  // of dropping; restoration fails back to the primary path.
  EXPECT_GT(r.failovers, 0u);
  EXPECT_GT(r.failbacks, 0u);
  EXPECT_EQ(r.dead_drops, 0u);
}

TEST(ChaosCampus, RandomCampusStormIsSeedDeterministic) {
  fault::FaultPlan::CampusStormConfig sc;
  sc.n_boards = 5;
  sc.n_links = 4;
  sc.horizon = sim::milliseconds(60);
  const fault::FaultPlan plan = fault::FaultPlan::random_campus_storm(sim::Rng{7}, sc);
  ASSERT_EQ(plan.size(), 6u);  // 2 blackouts + 2 brownouts + 2 partitions
  CampusRunConfig a = small_campus(1);
  a.faults = plan;
  CampusRunConfig b = small_campus(4);
  b.faults = fault::FaultPlan::random_campus_storm(sim::Rng{7}, sc);
  const CampusResult ra = run_campus(a);
  const CampusResult rb = run_campus(b);
  EXPECT_GT(ra.fault_events, 0u);
  EXPECT_EQ(rb.digest, ra.digest);
  EXPECT_EQ(rb.fault_trace, ra.fault_trace);
  EXPECT_EQ(rb.board_digests, ra.board_digests);
}

// --- Checkpoint / restore ---------------------------------------------------

TEST(ChaosCampus, CheckpointRestoreReplaysTheUninterruptedDigests) {
  // Reference: one uninterrupted run through the full duration.
  const CampusResult full = run_campus(stormy_campus(2));

  // Interrupted run: stop mid-storm, fingerprint, keep going — continuing
  // from a quiescent horizon must not perturb the timeline.
  CampusWorld world(stormy_campus(2));
  world.run_until(sim::milliseconds(40));
  const CampusCheckpoint cp = world.checkpoint();
  EXPECT_EQ(cp.engine.n_shards, 2);
  EXPECT_EQ(cp.engine.n_cells, 5);
  world.run_until(sim::milliseconds(80));
  const CampusResult continued = world.result();
  EXPECT_EQ(continued.digest, full.digest);
  EXPECT_EQ(continued.fault_trace, full.fault_trace);
  EXPECT_EQ(continued.board_digests, full.board_digests);

  // Restore rewinds to the checkpoint (reset + deterministic replay,
  // FNV-verified) and replaying to the end reproduces the same digests.
  ASSERT_TRUE(world.restore(cp));
  world.run_until(sim::milliseconds(80));
  const CampusResult replayed = world.result();
  EXPECT_EQ(replayed.digest, full.digest);
  EXPECT_EQ(replayed.fault_trace, full.fault_trace);
  EXPECT_EQ(replayed.board_digests, full.board_digests);
  EXPECT_EQ(replayed.delivered, full.delivered);
  EXPECT_EQ(replayed.dead_drops, full.dead_drops);
}

TEST(ChaosCampus, RestoreRejectsACorruptedCheckpoint) {
  CampusWorld world(stormy_campus(1));
  world.run_until(sim::milliseconds(30));
  const CampusCheckpoint good = world.checkpoint();

  CampusCheckpoint bad = good;
  bad.world_digest ^= 1;
  EXPECT_FALSE(world.restore(bad));

  CampusCheckpoint tampered = good;
  ASSERT_FALSE(tampered.engine.shards.empty());
  tampered.engine.shards[0].pending_digest ^= 1;
  EXPECT_FALSE(world.restore(tampered));

  // The genuine fingerprint still restores after the failed attempts.
  EXPECT_TRUE(world.restore(good));
}

TEST(ChaosCampus, EngineCheckpointBytesRoundTripAndRejectCorruption) {
  CampusWorld world(stormy_campus(2));
  world.run_until(sim::milliseconds(40));
  const sim::EngineCheckpoint cp = world.checkpoint().engine;
  ASSERT_FALSE(cp.shards.empty());
  ASSERT_FALSE(cp.mailboxes.empty());

  const std::vector<std::uint8_t> bytes = cp.to_bytes();
  sim::EngineCheckpoint parsed;
  ASSERT_TRUE(sim::EngineCheckpoint::from_bytes(bytes, parsed));
  EXPECT_EQ(parsed, cp);
  EXPECT_EQ(parsed.digest(), cp.digest());

  // Any single flipped byte breaks the trailing payload digest.
  for (const std::size_t at : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[at] ^= 0x40;
    sim::EngineCheckpoint out;
    EXPECT_FALSE(sim::EngineCheckpoint::from_bytes(corrupt, out)) << "at=" << at;
  }
  // Truncation, misalignment, and empty input are rejected too.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 8);
  sim::EngineCheckpoint out;
  EXPECT_FALSE(sim::EngineCheckpoint::from_bytes(truncated, out));
  std::vector<std::uint8_t> ragged(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(sim::EngineCheckpoint::from_bytes(ragged, out));
  EXPECT_FALSE(sim::EngineCheckpoint::from_bytes({}, out));
}

// --- Backpressure under faults ----------------------------------------------

TEST(ChaosCampus, BoundedMailboxesPreserveTheStormDigest) {
  const CampusResult unbounded = run_campus(stormy_campus(4));
  CampusRunConfig cfg = stormy_campus(4);
  cfg.mailbox_capacity = 1;  // worst case: stall at every occupied horizon
  const CampusResult bounded = run_campus(cfg);
  EXPECT_EQ(bounded.digest, unbounded.digest);
  EXPECT_EQ(bounded.fault_trace, unbounded.fault_trace);
  EXPECT_EQ(bounded.board_digests, unbounded.board_digests);
  EXPECT_GT(bounded.mailbox_peak, 0u);
}

}  // namespace
}  // namespace efd::testbed
